(* Tests for the fleet health assessment. *)

module Fleet = Modchecker.Pool_health
module Cloud = Mc_hypervisor.Cloud
module Infect = Mc_malware.Infect
module Orchestrator = Modchecker.Orchestrator

let check = Alcotest.check

let test_clean_fleet () =
  let cloud = Cloud.create ~vms:4 ~seed:701L () in
  let r = Fleet.assess cloud in
  Alcotest.(check bool) "clean" true r.Fleet.fr_clean;
  check Alcotest.int "standard catalog covered"
    (List.length Mc_pe.Catalog.standard_modules)
    (List.length r.Fleet.fr_modules);
  check Alcotest.(list (pair int int)) "nobody suspected" [] r.Fleet.fr_suspicion;
  Alcotest.(check bool) "summary says clean" true
    (String.length (Fleet.summary r) > 0 && r.Fleet.fr_clean);
  List.iter
    (fun s ->
      check Alcotest.int (s.Fleet.ms_module ^ " on all VMs") 4
        s.Fleet.ms_present_on)
    r.Fleet.fr_modules

let test_fleet_finds_hash_deviant () =
  let cloud = Cloud.create ~vms:4 ~seed:702L () in
  (match Infect.inline_hook cloud ~vm:1 with
  | Ok _ -> ()
  | Error e -> Alcotest.fail e);
  let r = Fleet.assess cloud in
  Alcotest.(check bool) "not clean" false r.Fleet.fr_clean;
  let hal = List.find (fun s -> s.Fleet.ms_module = "hal.dll") r.Fleet.fr_modules in
  check Alcotest.(list int) "hal deviant on Dom2" [ 1 ] hal.Fleet.ms_deviants;
  check Alcotest.(list (pair int int)) "Dom2 tops suspicion" [ (1, 1) ]
    r.Fleet.fr_suspicion

let test_fleet_finds_hidden_module () =
  let cloud = Cloud.create ~vms:4 ~seed:703L () in
  (match Infect.hide_module cloud ~vm:2 ~module_name:"tcpip.sys" with
  | Ok _ -> ()
  | Error e -> Alcotest.fail e);
  let r = Fleet.assess cloud in
  let tcpip =
    List.find (fun s -> s.Fleet.ms_module = "tcpip.sys") r.Fleet.fr_modules
  in
  check Alcotest.(list int) "missing recorded" [ 2 ] tcpip.Fleet.ms_missing;
  Alcotest.(check bool) "not clean" false r.Fleet.fr_clean

let test_fleet_combined_attacks () =
  let cloud = Cloud.create ~vms:5 ~seed:704L () in
  (match Infect.inline_hook cloud ~vm:1 with
  | Ok _ -> ()
  | Error e -> Alcotest.fail e);
  (match Infect.hide_module cloud ~vm:1 ~module_name:"http.sys" with
  | Ok _ -> ()
  | Error e -> Alcotest.fail e);
  let r =
    Fleet.assess
      ~config:
        Orchestrator.Config.(default |> with_strategy Orchestrator.Canonical)
      cloud
  in
  (* Two independent findings implicate the same VM. *)
  match r.Fleet.fr_suspicion with
  | (1, 2) :: _ -> ()
  | other ->
      Alcotest.fail
        (Printf.sprintf "expected Dom2 with 2 findings, got [%s]"
           (String.concat "; "
              (List.map (fun (v, n) -> Printf.sprintf "(%d,%d)" v n) other)))

let test_fleet_partial_module_ok () =
  (* A driver loaded on a minority of VMs is surveyed among its holders
     but nobody is blamed for not having it. *)
  let cloud = Cloud.create ~vms:5 ~seed:705L () in
  let file = (Mc_pe.Catalog.image "hello.sys").Mc_pe.Catalog.file in
  List.iter
    (fun vm ->
      Infect.write_module_file (Cloud.vm cloud vm) ~name:"hello.sys" file;
      match Infect.load_driver (Cloud.vm cloud vm) ~name:"hello.sys" with
      | Ok _ -> ()
      | Error e -> Alcotest.fail (Mc_winkernel.Kernel.error_to_string e))
    [ 0; 3 ];
  let r = Fleet.assess cloud in
  let hello =
    List.find (fun s -> s.Fleet.ms_module = "hello.sys") r.Fleet.fr_modules
  in
  check Alcotest.int "present on two" 2 hello.Fleet.ms_present_on;
  check Alcotest.(list int) "nobody blamed" [] hello.Fleet.ms_missing;
  Alcotest.(check bool) "fleet still clean" true r.Fleet.fr_clean

let test_heterogeneous_pool_clean () =
  (* Two patch levels in one pool: the version split is legitimate, so a
     clean mixed pool must assess clean — cohort voting, no deviants. *)
  let cloud = Cloud.create ~vms:5 ~seed:706L ~patch_levels:[ 1; 1; 1; 2; 2 ] () in
  let r = Fleet.assess cloud in
  Alcotest.(check bool) "mixed clean pool is clean" true r.Fleet.fr_clean;
  check
    Alcotest.(list (pair int int))
    "no skew suspicion" [] r.Fleet.fr_suspicion

let test_heterogeneous_missing_heuristic () =
  (* Regression for the whole-pool majority rule: hello.sys deployed to
     the level-1 cohort only. 3 holders out of 5 VMs was a pool-wide
     majority under the old rule, which blamed the level-2 VMs for not
     having it. The cohort rule blames only a minority *within its own
     cohort* — here, nobody. *)
  let cloud = Cloud.create ~vms:5 ~seed:707L ~patch_levels:[ 1; 1; 1; 2; 2 ] () in
  let file = (Mc_pe.Catalog.image "hello.sys").Mc_pe.Catalog.file in
  List.iter
    (fun vm ->
      Infect.write_module_file (Cloud.vm cloud vm) ~name:"hello.sys" file;
      match Infect.load_driver (Cloud.vm cloud vm) ~name:"hello.sys" with
      | Ok _ -> ()
      | Error e -> Alcotest.fail (Mc_winkernel.Kernel.error_to_string e))
    [ 0; 1; 2 ];
  let r = Fleet.assess cloud in
  let hello =
    List.find (fun s -> s.Fleet.ms_module = "hello.sys") r.Fleet.fr_modules
  in
  check Alcotest.(list int) "other cohort not blamed" [] hello.Fleet.ms_missing;
  Alcotest.(check bool) "still clean" true r.Fleet.fr_clean;
  (* But inside the deployed cohort the majority rule still bites: hide
     it on one level-1 VM and that VM is implicated. *)
  (match Infect.hide_module cloud ~vm:1 ~module_name:"hello.sys" with
  | Ok _ -> ()
  | Error e -> Alcotest.fail e);
  let r' = Fleet.assess cloud in
  let hello' =
    List.find (fun s -> s.Fleet.ms_module = "hello.sys") r'.Fleet.fr_modules
  in
  check Alcotest.(list int) "cohort minority blamed" [ 1 ]
    hello'.Fleet.ms_missing;
  Alcotest.(check bool) "not clean" false r'.Fleet.fr_clean

(* The old name must keep working for one deprecation cycle. *)
module Deprecated_alias = struct
  [@@@ocaml.warning "-3"]

  let test () =
    let cloud = Cloud.create ~vms:3 ~seed:708L () in
    let r = Modchecker.Fleet.assess cloud in
    Alcotest.(check bool) "Fleet alias still assesses" true
      r.Modchecker.Fleet.fr_clean
end

let () =
  Alcotest.run "fleet"
    [
      ( "assess",
        [
          Alcotest.test_case "clean" `Quick test_clean_fleet;
          Alcotest.test_case "hash deviant" `Quick test_fleet_finds_hash_deviant;
          Alcotest.test_case "hidden module" `Quick
            test_fleet_finds_hidden_module;
          Alcotest.test_case "combined attacks" `Quick
            test_fleet_combined_attacks;
          Alcotest.test_case "partial module" `Quick
            test_fleet_partial_module_ok;
        ] );
      ( "cohorts",
        [
          Alcotest.test_case "heterogeneous clean" `Quick
            test_heterogeneous_pool_clean;
          Alcotest.test_case "missing heuristic" `Quick
            test_heterogeneous_missing_heuristic;
          Alcotest.test_case "deprecated Fleet alias" `Quick
            Deprecated_alias.test;
        ] );
    ]
