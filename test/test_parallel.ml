(* Tests for the domain pool: channel, deferred cells, and parallel map. *)

module Chan = Mc_parallel.Chan
module Deferred = Mc_parallel.Deferred
module Pool = Mc_parallel.Pool

let check = Alcotest.check

let test_chan_fifo () =
  let c = Chan.create () in
  Chan.push c 1;
  Chan.push c 2;
  Chan.push c 3;
  check Alcotest.int "len" 3 (Chan.length c);
  check Alcotest.int "fifo 1" 1 (Chan.pop c);
  check Alcotest.int "fifo 2" 2 (Chan.pop c);
  check Alcotest.(option int) "try_pop" (Some 3) (Chan.try_pop c);
  check Alcotest.(option int) "empty" None (Chan.try_pop c);
  check Alcotest.int "len 0" 0 (Chan.length c)

let test_chan_cross_domain () =
  let c = Chan.create () in
  let producer =
    Domain.spawn (fun () ->
        for i = 1 to 100 do
          Chan.push c i
        done)
  in
  let sum = ref 0 in
  for _ = 1 to 100 do
    sum := !sum + Chan.pop c
  done;
  Domain.join producer;
  check Alcotest.int "all received" 5050 !sum

let test_deferred () =
  let d = Deferred.create () in
  Alcotest.(check bool) "not filled" false (Deferred.is_filled d);
  Deferred.fill d (Ok 42);
  Alcotest.(check bool) "filled" true (Deferred.is_filled d);
  check Alcotest.int "await" 42 (Deferred.await d);
  check Alcotest.int "await is idempotent" 42 (Deferred.await d);
  Alcotest.check_raises "double fill"
    (Invalid_argument "Deferred.fill: already filled") (fun () ->
      Deferred.fill d (Ok 0))

let test_deferred_error () =
  let d = Deferred.create () in
  Deferred.fill d (Error Exit);
  Alcotest.check_raises "re-raises" Exit (fun () -> ignore (Deferred.await d))

let test_pool_run () =
  Pool.with_pool 2 (fun pool ->
      check Alcotest.int "size" 2 (Pool.size pool);
      let d = Pool.run pool (fun () -> 6 * 7) in
      check Alcotest.int "result" 42 (Deferred.await d))

let test_pool_parallel_map_order () =
  Pool.with_pool 3 (fun pool ->
      let xs = List.init 50 Fun.id in
      let ys = Pool.parallel_map pool (fun x -> x * x) xs in
      check Alcotest.(list int) "order preserved" (List.map (fun x -> x * x) xs) ys)

let test_pool_parallel_map_exception () =
  Pool.with_pool 2 (fun pool ->
      Alcotest.check_raises "propagates" Exit (fun () ->
          ignore
            (Pool.parallel_map pool
               (fun x -> if x = 3 then raise Exit else x)
               [ 1; 2; 3; 4 ])));
  (* The pool that raised is still shut down cleanly by with_pool. *)
  ()

let test_pool_shutdown_idempotent () =
  let pool = Pool.create 2 in
  ignore (Deferred.await (Pool.run pool (fun () -> 1)));
  Pool.shutdown pool;
  Pool.shutdown pool;
  Alcotest.check_raises "run after shutdown"
    (Invalid_argument "Pool.run: pool is shut down") (fun () ->
      ignore (Pool.run pool (fun () -> 2)))

let test_pool_create_invalid () =
  Alcotest.check_raises "zero workers"
    (Invalid_argument "Pool.create: need a positive worker count") (fun () ->
      ignore (Pool.create 0))

let test_pool_heavy_tasks () =
  (* Many tasks, shared result check — exercises queueing beyond pool size. *)
  Pool.with_pool 4 (fun pool ->
      let results =
        Pool.parallel_map pool
          (fun i ->
            let h = Mc_md5.Md5.to_hex (Mc_md5.Md5.digest_string (string_of_int i)) in
            String.length h)
          (List.init 200 Fun.id)
      in
      Alcotest.(check bool) "all 32" true (List.for_all (fun n -> n = 32) results))

let test_chan_close () =
  let c = Chan.create () in
  Chan.push c 1;
  Chan.push c 2;
  Chan.close c;
  Alcotest.(check bool) "is_closed" true (Chan.is_closed c);
  Alcotest.check_raises "push after close" Chan.Closed (fun () ->
      Chan.push c 3);
  (* Queued elements drain before the closure is observed... *)
  check Alcotest.int "drain 1" 1 (Chan.pop c);
  check Alcotest.int "drain 2" 2 (Chan.pop c);
  (* ...then pop fails fast instead of blocking forever. *)
  Alcotest.check_raises "pop after drain" Chan.Closed (fun () ->
      ignore (Chan.pop c));
  check Alcotest.(option int) "try_pop after drain" None (Chan.try_pop c);
  Chan.close c (* idempotent *)

let test_deferred_timeout () =
  let d = Deferred.create () in
  check Alcotest.(option int) "empty cell times out" None
    (Deferred.await_timeout d 0.05);
  (* The timeout poisoned the cell: a late fill is discarded... *)
  Alcotest.(check bool) "late fill discarded" false (Deferred.try_fill d (Ok 1));
  (* ...and a plain await sees the poison rather than hanging. *)
  Alcotest.check_raises "await raises Timed_out" Deferred.Timed_out (fun () ->
      ignore (Deferred.await d));
  let f = Deferred.create () in
  Deferred.fill f (Ok 9);
  check
    Alcotest.(option int)
    "filled cell returns promptly" (Some 9)
    (Deferred.await_timeout f 0.05)

(* Regression: [Pool.run] used to check [alive], then push — a shutdown
   between the two left the task unqueued and its deferred unfilled, so
   awaiting it hung forever. Now a run racing shutdown either executes or
   fails fast with the shut-down exception; the deferred always settles. *)
let test_pool_shutdown_run_race () =
  for _round = 1 to 25 do
    let pool = Pool.create 2 in
    let go = Atomic.make false in
    let submitter =
      Domain.spawn (fun () ->
          while not (Atomic.get go) do
            Domain.cpu_relax ()
          done;
          let ds = ref [] in
          (try
             for i = 1 to 200 do
               ds := Pool.run pool (fun () -> i) :: !ds
             done
           with Invalid_argument _ -> ());
          !ds)
    in
    Atomic.set go true;
    Pool.shutdown pool;
    let ds = Domain.join submitter in
    List.iter
      (fun d ->
        match Deferred.await_timeout d 5.0 with
        | Some _ -> ()
        | None -> Alcotest.fail "shutdown race left a deferred unfilled"
        | exception Invalid_argument _ -> ())
      ds
  done

let test_parallel_map_timeout () =
  Pool.with_pool 2 (fun pool ->
      let rs =
        Pool.parallel_map_timeout pool ~timeout_s:0.15
          (fun x ->
            if x = 2 then Unix.sleepf 0.6;
            x * 10)
          [ 1; 2; 3 ]
      in
      match rs with
      | [ Ok 10; Error Deferred.Timed_out; Ok 30 ] -> ()
      | _ -> Alcotest.fail "expected the slow element (only) to time out")

let test_parallel_map_timeout_errors () =
  Pool.with_pool 2 (fun pool ->
      let rs =
        Pool.parallel_map_timeout pool ~timeout_s:5.0
          (fun x -> if x = 1 then raise Exit else x)
          [ 1; 2 ]
      in
      match rs with
      | [ Error Exit; Ok 2 ] -> ()
      | _ -> Alcotest.fail "expected Error Exit then Ok 2")

exception Task_boom

(* Kept non-tail-recursive so the task leaves identifiable frames. *)
let rec depth_charge n = if n = 0 then raise Task_boom else 1 + depth_charge (n - 1)

let string_contains s sub =
  let n = String.length s and m = String.length sub in
  let rec go i = i + m <= n && (String.sub s i m = sub || go (i + 1)) in
  go 0

let test_pool_error_backtrace () =
  Printexc.record_backtrace true;
  Pool.with_pool 2 @@ fun pool ->
  match Pool.parallel_map pool (fun n -> depth_charge n) [ 5 ] with
  | _ -> Alcotest.fail "expected Task_boom"
  | exception Task_boom ->
      (* parallel_map re-raises with the worker's backtrace, so the trace
         must point into the failing task, not into the await site. *)
      let bt = Printexc.get_backtrace () in
      Alcotest.(check bool)
        (Printf.sprintf "backtrace reaches the task: %s" bt)
        true
        (string_contains bt "test_parallel")

let () =
  Alcotest.run "parallel"
    [
      ( "chan",
        [
          Alcotest.test_case "fifo" `Quick test_chan_fifo;
          Alcotest.test_case "cross-domain" `Quick test_chan_cross_domain;
          Alcotest.test_case "close semantics" `Quick test_chan_close;
        ] );
      ( "deferred",
        [
          Alcotest.test_case "fill/await" `Quick test_deferred;
          Alcotest.test_case "error" `Quick test_deferred_error;
          Alcotest.test_case "timeout poisons" `Quick test_deferred_timeout;
        ] );
      ( "pool",
        [
          Alcotest.test_case "run" `Quick test_pool_run;
          Alcotest.test_case "map order" `Quick test_pool_parallel_map_order;
          Alcotest.test_case "map exception" `Quick
            test_pool_parallel_map_exception;
          Alcotest.test_case "error backtrace" `Quick test_pool_error_backtrace;
          Alcotest.test_case "shutdown" `Quick test_pool_shutdown_idempotent;
          Alcotest.test_case "shutdown/run race" `Quick
            test_pool_shutdown_run_race;
          Alcotest.test_case "map timeout" `Quick test_parallel_map_timeout;
          Alcotest.test_case "map timeout errors" `Quick
            test_parallel_map_timeout_errors;
          Alcotest.test_case "create invalid" `Quick test_pool_create_invalid;
          Alcotest.test_case "heavy tasks" `Quick test_pool_heavy_tasks;
        ] );
    ]
