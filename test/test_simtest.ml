(* The simulation harness's own tests: determinism (same seed, byte-identical
   transcript), script round-tripping, a clean soak, and the oracle's teeth —
   a deliberately broken checker (one flipped digest byte in the incremental
   cache) must fail within one campaign and shrink to a replayable scenario. *)

module Event = Mc_simtest.Event
module Gen = Mc_simtest.Gen
module Runner = Mc_simtest.Runner

let test_determinism () =
  let sc = Gen.scenario ~seed:7L ~steps:25 in
  let a = Runner.run sc in
  let b = Runner.run sc in
  Alcotest.(check string) "same scenario, same transcript" a.Runner.r_transcript
    b.Runner.r_transcript;
  let sc' = Gen.scenario ~seed:7L ~steps:25 in
  Alcotest.(check string) "same seed, same script"
    (Event.scenario_to_script sc)
    (Event.scenario_to_script sc')

let test_campaigns_deterministic () =
  let run () =
    Mc_simtest.run_campaigns ~seed:42L ~steps:20 ~campaigns:2 ()
  in
  let a = run () in
  let b = run () in
  Alcotest.(check string) "campaign transcripts identical"
    a.Mc_simtest.cr_transcript b.Mc_simtest.cr_transcript;
  Alcotest.(check int) "no failures" 0 (List.length a.Mc_simtest.cr_failures)

let test_script_roundtrip () =
  let sc = Gen.scenario ~seed:12345L ~steps:40 in
  let script = Event.scenario_to_script sc in
  match Event.scenario_of_script script with
  | Error e -> Alcotest.failf "round-trip parse failed: %s" e
  | Ok sc' ->
      Alcotest.(check string) "script round-trips" script
        (Event.scenario_to_script sc')

let test_clean_soak () =
  let r = Mc_simtest.run_campaigns ~seed:100L ~steps:30 ~campaigns:3 () in
  (match r.Mc_simtest.cr_failures with
  | [] -> ()
  | cf :: _ -> Alcotest.failf "clean soak failed:\n%s" (Mc_simtest.render_failure cf));
  Alcotest.(check int) "all campaigns ran" 3 r.Mc_simtest.cr_campaigns;
  Alcotest.(check bool) "events were applied" true (r.Mc_simtest.cr_applied > 0)

let test_broken_checker_caught () =
  let r =
    Mc_simtest.run_campaigns ~break_checker:true ~shrink_budget:150 ~seed:42L
      ~steps:40 ~campaigns:1 ()
  in
  match r.Mc_simtest.cr_failures with
  | [] ->
      Alcotest.fail
        "a checker with a flipped cached digest byte passed the oracle"
  | cf :: _ ->
      (* Shrinking terminated within budget and preserved the failure. *)
      Alcotest.(check bool) "shrink ran within budget" true
        (cf.Mc_simtest.cf_shrink_runs <= 150);
      let shrunk = cf.Mc_simtest.cf_shrunk in
      Alcotest.(check bool) "shrunk scenario is no larger" true
        (List.length shrunk.Event.sc_events
        <= List.length
             (Gen.scenario ~seed:cf.Mc_simtest.cf_seed ~steps:40).Event.sc_events);
      let replayed = Mc_simtest.replay ~break_checker:true shrunk in
      (match replayed.Runner.r_failure with
      | Some _ -> ()
      | None -> Alcotest.fail "shrunk scenario no longer fails");
      (* The rendered script replays to the same failure. *)
      (match Event.scenario_of_script (Event.scenario_to_script shrunk) with
      | Error e -> Alcotest.failf "shrunk script does not parse: %s" e
      | Ok sc' -> (
          match
            (Mc_simtest.replay ~break_checker:true sc').Runner.r_failure
          with
          | Some _ -> ()
          | None -> Alcotest.fail "parsed shrunk script no longer fails"))

let () =
  Alcotest.run "simtest"
    [
      ( "simtest",
        [
          Alcotest.test_case "same seed, same transcript" `Quick
            test_determinism;
          Alcotest.test_case "campaign runs are deterministic" `Quick
            test_campaigns_deterministic;
          Alcotest.test_case "scripts round-trip" `Quick test_script_roundtrip;
          Alcotest.test_case "clean campaigns pass the oracle" `Quick
            test_clean_soak;
          Alcotest.test_case "broken checker is caught and shrunk" `Quick
            test_broken_checker_caught;
        ] );
    ]
