(* The simulation harness's own tests: determinism (same seed, byte-identical
   transcript), script round-tripping, a clean soak, and the oracle's teeth —
   a deliberately broken checker (one flipped digest byte in the incremental
   cache) must fail within one campaign and shrink to a replayable scenario. *)

module Event = Mc_simtest.Event
module Gen = Mc_simtest.Gen
module Runner = Mc_simtest.Runner

let test_determinism () =
  let sc = Gen.scenario ~seed:7L ~steps:25 in
  let a = Runner.run sc in
  let b = Runner.run sc in
  Alcotest.(check string) "same scenario, same transcript" a.Runner.r_transcript
    b.Runner.r_transcript;
  let sc' = Gen.scenario ~seed:7L ~steps:25 in
  Alcotest.(check string) "same seed, same script"
    (Event.scenario_to_script sc)
    (Event.scenario_to_script sc')

let test_campaigns_deterministic () =
  let run () =
    Mc_simtest.run_campaigns ~seed:42L ~steps:20 ~campaigns:2 ()
  in
  let a = run () in
  let b = run () in
  Alcotest.(check string) "campaign transcripts identical"
    a.Mc_simtest.cr_transcript b.Mc_simtest.cr_transcript;
  Alcotest.(check int) "no failures" 0 (List.length a.Mc_simtest.cr_failures)

let test_script_roundtrip () =
  let sc = Gen.scenario ~seed:12345L ~steps:40 in
  let script = Event.scenario_to_script sc in
  match Event.scenario_of_script script with
  | Error e -> Alcotest.failf "round-trip parse failed: %s" e
  | Ok sc' ->
      Alcotest.(check string) "script round-trips" script
        (Event.scenario_to_script sc')

let test_clean_soak () =
  let r = Mc_simtest.run_campaigns ~seed:100L ~steps:30 ~campaigns:3 () in
  (match r.Mc_simtest.cr_failures with
  | [] -> ()
  | cf :: _ -> Alcotest.failf "clean soak failed:\n%s" (Mc_simtest.render_failure cf));
  Alcotest.(check int) "all campaigns ran" 3 r.Mc_simtest.cr_campaigns;
  Alcotest.(check bool) "events were applied" true (r.Mc_simtest.cr_applied > 0)

let test_broken_checker_caught () =
  let r =
    Mc_simtest.run_campaigns ~break_checker:true ~shrink_budget:150 ~seed:42L
      ~steps:40 ~campaigns:1 ()
  in
  match r.Mc_simtest.cr_failures with
  | [] ->
      Alcotest.fail
        "a checker with a flipped cached digest byte passed the oracle"
  | cf :: _ ->
      (* Shrinking terminated within budget and preserved the failure. *)
      Alcotest.(check bool) "shrink ran within budget" true
        (cf.Mc_simtest.cf_shrink_runs <= 150);
      let shrunk = cf.Mc_simtest.cf_shrunk in
      Alcotest.(check bool) "shrunk scenario is no larger" true
        (List.length shrunk.Event.sc_events
        <= List.length
             (Gen.scenario ~seed:cf.Mc_simtest.cf_seed ~steps:40).Event.sc_events);
      let replayed = Mc_simtest.replay ~break_checker:true shrunk in
      (match replayed.Runner.r_failure with
      | Some _ -> ()
      | None -> Alcotest.fail "shrunk scenario no longer fails");
      (* The rendered script replays to the same failure. *)
      (match Event.scenario_of_script (Event.scenario_to_script shrunk) with
      | Error e -> Alcotest.failf "shrunk script does not parse: %s" e
      | Ok sc' -> (
          match
            (Mc_simtest.replay ~break_checker:true sc').Runner.r_failure
          with
          | Some _ -> ()
          | None -> Alcotest.fail "parsed shrunk script no longer fails"))

let test_coverage_accounting_names_starved_classes () =
  (* A soak too small to exercise everything must say so: the required
     classes it never fired land in [cr_starved] by name, and the ones
     it did fire are accounted in [cr_coverage]. *)
  let r =
    Mc_simtest.run_campaigns ~require_coverage:Gen.weighted_classes ~seed:100L
      ~steps:3 ~campaigns:1 ()
  in
  Alcotest.(check bool) "a 3-step campaign starves most classes" true
    (r.Mc_simtest.cr_starved <> []);
  List.iter
    (fun k ->
      Alcotest.(check bool)
        (k ^ " is a real generator class")
        true
        (List.mem k Gen.weighted_classes);
      Alcotest.(check bool)
        (k ^ " is absent from the coverage table")
        false
        (List.mem_assoc k r.Mc_simtest.cr_coverage))
    r.Mc_simtest.cr_starved;
  (* A class outside the generator's universe can never fire. *)
  let r' =
    Mc_simtest.run_campaigns ~require_coverage:[ "evade.quantum" ] ~seed:100L
      ~steps:5 ~campaigns:1 ()
  in
  Alcotest.(check (list string))
    "impossible class reported by name" [ "evade.quantum" ]
    r'.Mc_simtest.cr_starved

let test_evasion_soak_covers_all_strategies () =
  (* The acceptance soak: 20 campaigns x 10 steps fires all four
     adversary strategies with zero oracle divergences, and the whole
     run is byte-for-byte reproducible. *)
  let required =
    [ "evade.toctou"; "evade.pager"; "evade.race"; "evade.tamper" ]
  in
  let run () =
    Mc_simtest.run_campaigns ~require_coverage:required ~seed:2100L ~steps:10
      ~campaigns:20 ()
  in
  let r = run () in
  (match r.Mc_simtest.cr_failures with
  | [] -> ()
  | cf :: _ ->
      Alcotest.failf "evasion soak failed:\n%s" (Mc_simtest.render_failure cf));
  Alcotest.(check (list string)) "every strategy fired" [] r.Mc_simtest.cr_starved;
  Alcotest.(check string) "transcripts byte-identical" r.Mc_simtest.cr_transcript
    (run ()).Mc_simtest.cr_transcript

let test_failing_evasion_campaign_shrinks_small () =
  (* ddmin over a 200-event campaign whose timeline includes live
     adversaries: the failure must reduce to a handful of events and
     still fail, with the evade event surviving the cut when it is
     load-bearing. *)
  let sc = Gen.scenario ~seed:3001L ~steps:200 in
  Alcotest.(check bool) "the campaign contains adversaries" true
    (List.exists
       (function Event.Evade _ -> true | _ -> false)
       sc.Event.sc_events);
  let r =
    Mc_simtest.run_campaigns ~break_checker:true ~shrink_budget:400 ~seed:3001L
      ~steps:200 ~campaigns:1 ()
  in
  match r.Mc_simtest.cr_failures with
  | [] -> Alcotest.fail "broken checker survived an evasion campaign"
  | cf :: _ ->
      let shrunk = cf.Mc_simtest.cf_shrunk in
      Alcotest.(check bool)
        (Printf.sprintf "shrunk to %d event(s), wanted <= 10"
           (List.length shrunk.Event.sc_events))
        true
        (List.length shrunk.Event.sc_events <= 10);
      (match
         (Mc_simtest.replay ~break_checker:true shrunk).Runner.r_failure
       with
      | Some _ -> ()
      | None -> Alcotest.fail "shrunk evasion scenario no longer fails")

let () =
  Alcotest.run "simtest"
    [
      ( "simtest",
        [
          Alcotest.test_case "same seed, same transcript" `Quick
            test_determinism;
          Alcotest.test_case "campaign runs are deterministic" `Quick
            test_campaigns_deterministic;
          Alcotest.test_case "scripts round-trip" `Quick test_script_roundtrip;
          Alcotest.test_case "clean campaigns pass the oracle" `Quick
            test_clean_soak;
          Alcotest.test_case "broken checker is caught and shrunk" `Quick
            test_broken_checker_caught;
        ] );
      ( "coverage",
        [
          Alcotest.test_case "starved classes are named" `Quick
            test_coverage_accounting_names_starved_classes;
          Alcotest.test_case "evasion soak covers all strategies" `Slow
            test_evasion_soak_covers_all_strategies;
        ] );
      ( "shrink",
        [
          Alcotest.test_case "failing evasion campaign shrinks small" `Quick
            test_failing_evasion_campaign_shrinks_small;
        ] );
    ]
