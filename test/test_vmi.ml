(* Tests for the VMI (libVMI-equivalent) layer. *)

module Cloud = Mc_hypervisor.Cloud
module Dom = Mc_hypervisor.Dom
module Meter = Mc_hypervisor.Meter
module Xenctl = Mc_hypervisor.Xenctl
module Vmi = Mc_vmi.Vmi
module Symbols = Mc_vmi.Symbols
module Kernel = Mc_winkernel.Kernel
module Layout = Mc_winkernel.Layout
module As = Mc_memsim.Addr_space
module Phys = Mc_memsim.Phys

let check = Alcotest.check

let cloud = lazy (Cloud.create ~vms:2 ~cores:4 ~seed:31L ())

let dom () = Cloud.vm (Lazy.force cloud) 0

let test_symbols () =
  check Alcotest.(option int) "PsLoadedModuleList"
    (Some Layout.ps_loaded_module_list)
    (Symbols.lookup Symbols.windows_xp_sp2 "PsLoadedModuleList");
  check Alcotest.(option int) "unknown" None
    (Symbols.lookup Symbols.windows_xp_sp2 "NoSuchSymbol");
  Alcotest.check_raises "lookup_exn" Not_found (fun () ->
      ignore (Symbols.lookup_exn Symbols.windows_xp_sp2 "NoSuchSymbol"))

let test_read_ksym () =
  let vmi = Vmi.init (dom ()) Symbols.windows_xp_sp2 in
  check Alcotest.int "ksym" Layout.ps_loaded_module_list
    (Vmi.read_ksym vmi "PsLoadedModuleList")

let test_translate_matches_guest () =
  let vmi = Vmi.init (dom ()) Symbols.windows_xp_sp2 in
  let kernel = Dom.kernel_exn (dom ()) in
  let va = Layout.ps_loaded_module_list in
  check
    Alcotest.(option int)
    "external walk equals guest MMU"
    (As.translate (Kernel.aspace kernel) va)
    (Vmi.translate_kv2p vmi va);
  check Alcotest.(option int) "unmapped is None" None
    (Vmi.translate_kv2p vmi 0x10000000)

let test_read_va_matches_guest () =
  let vmi = Vmi.init (dom ()) Symbols.windows_xp_sp2 in
  let kernel = Dom.kernel_exn (dom ()) in
  let e = Option.get (Kernel.find_module kernel "hal.dll") in
  let via_vmi = Vmi.read_va vmi e.dll_base 0x2000 in
  let via_guest = As.read_bytes (Kernel.aspace kernel) e.dll_base 0x2000 in
  Alcotest.(check bool) "contents equal (cross-page)" true
    (Bytes.equal via_vmi via_guest)

let test_read_va_invalid () =
  let vmi = Vmi.init (dom ()) Symbols.windows_xp_sp2 in
  Alcotest.check_raises "invalid address" (Vmi.Invalid_address 0x10000000)
    (fun () -> ignore (Vmi.read_va vmi 0x10000000 4));
  check Alcotest.(option string) "try_read None" None
    (Option.map Bytes.to_string (Vmi.try_read_va vmi 0x10000000 4))

let test_read_va_padded () =
  let vmi = Vmi.init (dom ()) Symbols.windows_xp_sp2 in
  let kernel = Dom.kernel_exn (dom ()) in
  let e = Option.get (Kernel.find_module kernel "hal.dll") in
  (* A range straddling the end of the module: mapped then unmapped. *)
  let page = Phys.frame_size in
  let start = e.dll_base + e.size_of_image - page in
  let b = Vmi.read_va_padded vmi start (3 * page) in
  check Alcotest.int "full length" (3 * page) (Bytes.length b);
  let tail = Bytes.sub b page (2 * page) in
  Alcotest.(check bool) "unmapped tail zero-filled" true
    (Bytes.for_all (fun c -> c = '\000') tail)

let test_page_cache_and_metering () =
  let meter = Meter.create () in
  Meter.set_phase meter Meter.Searcher;
  let vmi = Vmi.init ~meter (dom ()) Symbols.windows_xp_sp2 in
  check Alcotest.int "session metered" 1
    (Meter.get meter Meter.Searcher).Meter.vm_sessions;
  let e =
    Option.get (Kernel.find_module (Dom.kernel_exn (dom ())) "hal.dll")
  in
  ignore (Vmi.read_va vmi e.dll_base 4096);
  let pages_first = (Meter.get meter Meter.Searcher).Meter.pages_mapped in
  Alcotest.(check bool) "mapped at least data+tables" true (pages_first >= 1);
  ignore (Vmi.read_va vmi e.dll_base 4096);
  check Alcotest.int "cache prevents remapping" pages_first
    (Meter.get meter Meter.Searcher).Meter.pages_mapped;
  Alcotest.(check bool) "bytes metered" true
    ((Meter.get meter Meter.Searcher).Meter.bytes_copied >= 8192);
  Alcotest.(check bool) "cache populated" true (Vmi.pages_cached vmi > 0);
  Vmi.flush_cache vmi;
  check Alcotest.int "cache flushed" 0 (Vmi.pages_cached vmi);
  ignore (Vmi.read_va vmi e.dll_base 4096);
  Alcotest.(check bool) "remapped after flush" true
    ((Meter.get meter Meter.Searcher).Meter.pages_mapped > pages_first)

(* Regression: the page cache used to serve stale copies forever. A guest
   write mid-session must be visible through the SAME session. *)
let test_cache_staleness_on_guest_write () =
  let cloud = Cloud.create ~vms:2 ~cores:4 ~seed:97L () in
  let d = Cloud.vm cloud 0 in
  let vmi = Vmi.init d Symbols.windows_xp_sp2 in
  let e = Option.get (Kernel.find_module (Dom.kernel_exn d) "hal.dll") in
  let before = Vmi.read_va_padded vmi e.dll_base e.size_of_image in
  (match Mc_malware.Infect.inline_hook cloud ~vm:0 with
  | Ok _ -> ()
  | Error msg -> Alcotest.fail msg);
  let after = Vmi.read_va_padded vmi e.dll_base e.size_of_image in
  Alcotest.(check bool) "same session sees the infection" false
    (Bytes.equal before after)

let test_resume_flushes_cache () =
  let vmi = Vmi.init (dom ()) Symbols.windows_xp_sp2 in
  ignore (Vmi.read_va vmi Layout.ps_loaded_module_list 8);
  Alcotest.(check bool) "cached" true (Vmi.pages_cached vmi > 0);
  Vmi.resume vmi;
  check Alcotest.int "flushed on resume" 0 (Vmi.pages_cached vmi)

let test_footprint () =
  let cloud = Cloud.create ~vms:1 ~cores:4 ~seed:98L () in
  let d = Cloud.vm cloud 0 in
  let vmi = Vmi.init d Symbols.windows_xp_sp2 in
  ignore (Vmi.read_va vmi Layout.ps_loaded_module_list 8);
  let fp = Vmi.footprint vmi in
  Alcotest.(check bool) "covers data and page tables" true
    (Array.length fp >= 2);
  Alcotest.(check bool) "currently unchanged" true
    (Xenctl.pages_unchanged d ~epoch:(Xenctl.memory_epoch d) fp);
  let kernel = Dom.kernel_exn d in
  Mc_memsim.Addr_space.write_bytes (Kernel.aspace kernel)
    Layout.ps_loaded_module_list (Bytes.of_string "XXXX");
  Alcotest.(check bool) "guest write breaks the footprint" false
    (Xenctl.pages_unchanged d ~epoch:(Xenctl.memory_epoch d) fp)

let test_shared_cache_across_sessions () =
  let cloud = Cloud.create ~vms:1 ~cores:4 ~seed:99L () in
  let d = Cloud.vm cloud 0 in
  let cache = Vmi.create_cache () in
  let meter = Meter.create () in
  Meter.set_phase meter Meter.Searcher;
  let s1 = Vmi.init ~meter ~cache d Symbols.windows_xp_sp2 in
  ignore (Vmi.read_va s1 Layout.ps_loaded_module_list 8);
  let mapped = (Meter.get meter Meter.Searcher).Meter.pages_mapped in
  let s2 = Vmi.init ~meter ~cache d Symbols.windows_xp_sp2 in
  ignore (Vmi.read_va s2 Layout.ps_loaded_module_list 8);
  check Alcotest.int "second session reuses mapped pages" mapped
    (Meter.get meter Meter.Searcher).Meter.pages_mapped

let test_pause_resume () =
  let d = dom () in
  let vmi = Vmi.init d Symbols.windows_xp_sp2 in
  Vmi.pause vmi;
  Alcotest.(check bool) "paused" true d.Dom.paused;
  Vmi.resume vmi;
  Alcotest.(check bool) "resumed" false d.Dom.paused

let test_read_pa () =
  let d = dom () in
  let vmi = Vmi.init d Symbols.windows_xp_sp2 in
  let kernel = Dom.kernel_exn d in
  (* Translate a known VA with the guest MMU, then read the PA directly. *)
  let va = Layout.ps_loaded_module_list in
  let pa = Option.get (As.translate (Kernel.aspace kernel) va) in
  let via_pa = Vmi.read_pa vmi pa 8 in
  let via_va = Vmi.read_va vmi va 8 in
  Alcotest.(check bool) "PA and VA views agree" true (Bytes.equal via_pa via_va)

let test_u32_u16_accessors () =
  let d = dom () in
  let vmi = Vmi.init d Symbols.windows_xp_sp2 in
  let kernel = Dom.kernel_exn d in
  let e = Option.get (Kernel.find_module kernel "hal.dll") in
  (* The module's first two bytes are "MZ". *)
  check Alcotest.int "u16 MZ" Mc_pe.Flags.dos_magic (Vmi.read_va_u16 vmi e.dll_base);
  check Alcotest.int "u32 int"
    (As.read_u32_int (Kernel.aspace kernel) e.dll_base)
    (Vmi.read_va_u32_int vmi e.dll_base)

let test_xenctl_cr3 () =
  let d = dom () in
  check Alcotest.int "cr3 from vcpu context"
    (Kernel.cr3 (Dom.kernel_exn d))
    (Xenctl.get_vcpu_cr3 d)

let () =
  Alcotest.run "vmi"
    [
      ( "symbols",
        [
          Alcotest.test_case "profile" `Quick test_symbols;
          Alcotest.test_case "read_ksym" `Quick test_read_ksym;
        ] );
      ( "translation",
        [
          Alcotest.test_case "kv2p" `Quick test_translate_matches_guest;
          Alcotest.test_case "cr3" `Quick test_xenctl_cr3;
        ] );
      ( "reads",
        [
          Alcotest.test_case "read_va" `Quick test_read_va_matches_guest;
          Alcotest.test_case "invalid" `Quick test_read_va_invalid;
          Alcotest.test_case "padded" `Quick test_read_va_padded;
          Alcotest.test_case "read_pa" `Quick test_read_pa;
          Alcotest.test_case "accessors" `Quick test_u32_u16_accessors;
        ] );
      ( "sessions",
        [
          Alcotest.test_case "cache + metering" `Quick
            test_page_cache_and_metering;
          Alcotest.test_case "pause/resume" `Quick test_pause_resume;
          Alcotest.test_case "staleness regression" `Quick
            test_cache_staleness_on_guest_write;
          Alcotest.test_case "resume flushes" `Quick test_resume_flushes_cache;
          Alcotest.test_case "footprint" `Quick test_footprint;
          Alcotest.test_case "shared cache" `Quick
            test_shared_cache_across_sessions;
        ] );
    ]
