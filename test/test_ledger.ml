(* Mc_ledger: the hash-chained attestation ledger. The contract under
   test: the serialized chain is tamper-evident offline — any flipped
   byte, dropped, reordered, or truncated entry fails verification and
   names the first bad entry — and a real serving session's ledger
   verifies end to end. *)

module Ledger = Mc_ledger
module Traffic = Mc_simtest.Traffic
module Exit_code = Modchecker.Exit_code

let check = Alcotest.check

let reparse json =
  match Mc_util.Json.of_string (Mc_util.Json.to_string json) with
  | Ok j -> j
  | Error e -> Alcotest.fail ("reprinted JSON does not parse: " ^ e)

(* A deterministic chain with some variety in every field. *)
let build_chain n =
  let t = Ledger.create () in
  for i = 0 to n - 1 do
    ignore
      (Ledger.append t
         ~key:(Printf.sprintf "check:%d:hal.dll" (i mod 4))
         ~verdict:(if i mod 5 = 0 then "infected" else "intact")
         ~surveyed:5
         ~responded:(4 + (i mod 2))
         ?root:(if i mod 3 = 0 then Some (Printf.sprintf "%032x" i) else None)
         ~meter:[ ("checker.md5_blocks", 100 + i) ]
         ~body:(Printf.sprintf "{\"seq\":%d}" i)
         ())
  done;
  t

(* --- chain mechanics ------------------------------------------------------ *)

let test_chain_grows () =
  let t = Ledger.create () in
  check Alcotest.string "empty head is genesis" Ledger.genesis (Ledger.head t);
  let e0 =
    Ledger.append t ~key:"check:0:hal.dll" ~verdict:"intact" ~surveyed:5
      ~responded:5 ~root:"deadbeef" ~meter:[ ("checker.md5_blocks", 7) ]
      ~body:"{}" ()
  in
  check Alcotest.string "entry 0 chains from genesis" Ledger.genesis
    e0.Ledger.en_prev;
  check Alcotest.string "head follows the append" e0.Ledger.en_hash
    (Ledger.head t);
  let e1 =
    Ledger.append t ~key:"survey:-:hal.dll" ~verdict:"infected" ~surveyed:5
      ~responded:4 ~meter:[] ~body:"{\"v\":1}" ()
  in
  check Alcotest.string "entry 1 chains from entry 0" e0.Ledger.en_hash
    e1.Ledger.en_prev;
  check Alcotest.int "length" 2 (Ledger.length t);
  match Ledger.verify ~expect_head:(Ledger.head t) (Ledger.contents t) with
  | Ok s ->
      check Alcotest.int "entries" 2 s.Ledger.sum_entries;
      check Alcotest.string "verified head" (Ledger.head t) s.Ledger.sum_head;
      check
        Alcotest.(list (pair string int))
        "verdict histogram"
        [ ("infected", 1); ("intact", 1) ]
        s.Ledger.sum_verdicts
  | Error e -> Alcotest.fail e.Ledger.ve_reason

let test_entry_json_roundtrip () =
  let t = Ledger.create () in
  let e =
    Ledger.append t ~key:"lists" ~verdict:"intact" ~surveyed:0 ~responded:0
      ~meter:[ ("searcher.vm_reads", 12) ]
      ~body:"{\"t\":\"lists\"}" ()
  in
  (match Ledger.entry_of_json (reparse (Ledger.entry_to_json e)) with
  | Ok e' -> check Alcotest.bool "round-trip equal" true (e' = e)
  | Error err -> Alcotest.fail err);
  match Ledger.verify (Ledger.entry_line e) with
  | Ok s -> check Alcotest.int "canonical line verifies" 1 s.Ledger.sum_entries
  | Error err -> Alcotest.fail err.Ledger.ve_reason

let test_sink_streams () =
  let buf = Buffer.create 256 in
  let t = Ledger.create ~sink:(Buffer.add_string buf) () in
  for i = 0 to 4 do
    ignore
      (Ledger.append t
         ~key:(Printf.sprintf "check:%d:hal.dll" i)
         ~verdict:"intact" ~surveyed:3 ~responded:3 ~meter:[] ~body:"{}" ())
  done;
  (match Ledger.contents t with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "contents must raise with a custom sink");
  match Ledger.verify ~expect_head:(Ledger.head t) (Buffer.contents buf) with
  | Ok s -> check Alcotest.int "sinked lines verify" 5 s.Ledger.sum_entries
  | Error e -> Alcotest.fail e.Ledger.ve_reason

(* --- tamper evidence ------------------------------------------------------ *)

let test_truncation_detected () =
  let t = build_chain 8 in
  let full = Ledger.contents t in
  let head = Ledger.head t in
  let cut = String.rindex (String.trim full) '\n' in
  let truncated = String.sub full 0 (cut + 1) in
  (match Ledger.verify truncated with
  | Ok s ->
      check Alcotest.int "a shorter prefix still chains" 7 s.Ledger.sum_entries
  | Error e -> Alcotest.fail e.Ledger.ve_reason);
  match Ledger.verify ~expect_head:head truncated with
  | Ok _ -> Alcotest.fail "truncation must fail against a pinned head"
  | Error e -> check Alcotest.int "named at the cut" 7 e.Ledger.ve_index

let split_lines t =
  Array.of_list (String.split_on_char '\n' (String.trim (Ledger.contents t)))

let test_reorder_detected () =
  let arr = split_lines (build_chain 6) in
  let tmp = arr.(2) in
  arr.(2) <- arr.(3);
  arr.(3) <- tmp;
  match Ledger.verify (String.concat "\n" (Array.to_list arr)) with
  | Ok _ -> Alcotest.fail "reordered chain verified"
  | Error e -> check Alcotest.int "first bad entry" 2 e.Ledger.ve_index

let test_dropped_entry_detected () =
  let arr = split_lines (build_chain 6) in
  let kept =
    List.filteri (fun i _ -> i <> 2) (Array.to_list arr)
  in
  match Ledger.verify (String.concat "\n" kept) with
  | Ok _ -> Alcotest.fail "gapped chain verified"
  | Error e -> check Alcotest.int "first bad entry" 2 e.Ledger.ve_index

(* qcheck: flipping any single non-newline byte fails verification at
   exactly the line holding the byte. *)
let prop_byte_flip_localized =
  let t = build_chain 12 in
  let chain = Ledger.contents t in
  let head = Ledger.head t in
  QCheck.Test.make ~count:300 ~name:"a flipped byte names its entry"
    (QCheck.make QCheck.Gen.(int_bound (String.length chain - 1)))
    (fun pos ->
      let c = chain.[pos] in
      if c = '\n' then true
      else
        let b = Bytes.of_string chain in
        Bytes.set b pos (if c = 'x' then 'y' else 'x');
        let expected = ref 0 in
        String.iteri
          (fun i ch -> if i < pos && ch = '\n' then incr expected)
          chain;
        match Ledger.verify ~expect_head:head (Bytes.to_string b) with
        | Ok _ ->
            QCheck.Test.fail_reportf "tampered chain verified (byte %d)" pos
        | Error e ->
            if e.Ledger.ve_index = !expected then true
            else
              QCheck.Test.fail_reportf
                "byte %d blamed entry %d, expected %d (%s)" pos
                e.Ledger.ve_index !expected e.Ledger.ve_reason)

(* --- a real session's ledger ---------------------------------------------- *)

let test_replay_attested () =
  let ledger = Ledger.create () in
  let o =
    Traffic.replay ~shards:2 ~infect_vm:3 ~ledger ~seed:2024L ~requests:300 ()
  in
  check Alcotest.(list string) "oracle violations" [] o.Traffic.to_violations;
  check Alcotest.bool "duplicates coalesced" true (o.Traffic.to_coalesced > 0);
  check Alcotest.int "infection reaches the exit" Exit_code.infected
    o.Traffic.to_exit;
  check Alcotest.int "every response ledgered" o.Traffic.to_responses
    (Ledger.length ledger);
  match Ledger.verify ~expect_head:(Ledger.head ledger) (Ledger.contents ledger)
  with
  | Ok s ->
      check Alcotest.int "chain covers the session" o.Traffic.to_responses
        s.Ledger.sum_entries;
      check Alcotest.bool "the session convicted someone" true
        (List.mem_assoc "infected" s.Ledger.sum_verdicts)
  | Error e -> Alcotest.fail e.Ledger.ve_reason

let () =
  Alcotest.run "ledger"
    [
      ( "chain",
        [
          Alcotest.test_case "append chains and verifies" `Quick
            test_chain_grows;
          Alcotest.test_case "entry JSON round-trip" `Quick
            test_entry_json_roundtrip;
          Alcotest.test_case "custom sink streams" `Quick test_sink_streams;
        ] );
      ( "tamper",
        [
          Alcotest.test_case "truncation detected" `Quick
            test_truncation_detected;
          Alcotest.test_case "reorder detected" `Quick test_reorder_detected;
          Alcotest.test_case "dropped entry detected" `Quick
            test_dropped_entry_detected;
          QCheck_alcotest.to_alcotest prop_byte_flip_localized;
        ] );
      ( "replay",
        [ Alcotest.test_case "attested traffic replay" `Quick
            test_replay_attested ] );
    ]
