(* Tests for the t-way canonical RVA adjustment and the O(t) survey
   strategy built on it. *)

module Rva = Modchecker.Rva
module Orchestrator = Modchecker.Orchestrator
module Report = Modchecker.Report
module Cloud = Mc_hypervisor.Cloud
module Meter = Mc_hypervisor.Meter
module Costs = Mc_hypervisor.Costs
module Le = Mc_util.Le
module Rng = Mc_util.Rng

let check = Alcotest.check

let make_buffer ~len ~fill ~slots ~base =
  let b = Bytes.init len fill in
  List.iter (fun (off, rva) -> Le.set_u32_int b off (base + rva)) slots;
  b

let bases3 = [| 0xF8000000; 0xF8100000; 0xF8230000 |]

let test_unanimous () =
  let slots = [ (4, 0x111); (16, 0x2222) ] in
  let buffers =
    Array.map
      (fun base -> make_buffer ~len:32 ~fill:(fun _ -> '\x90') ~slots ~base)
      bases3
  in
  let stats = Rva.canonicalize ~bases:bases3 buffers in
  check Alcotest.int "slots detected" 2 stats.Rva.slots_detected;
  check Alcotest.int "unanimous" 2 stats.Rva.slots_unanimous;
  check Alcotest.int "no majority-only slots" 0 stats.Rva.slots_majority;
  Alcotest.(check bool) "all buffers now equal" true
    (Bytes.equal buffers.(0) buffers.(1) && Bytes.equal buffers.(1) buffers.(2));
  check Alcotest.int "slot holds the RVA" 0x111 (Le.get_u32_int buffers.(0) 4)

let test_majority_with_deviant () =
  let slots = [ (8, 0x500) ] in
  let buffers =
    Array.map
      (fun base -> make_buffer ~len:24 ~fill:(fun _ -> '\x90') ~slots ~base)
      bases3
  in
  (* VM 2's pointer was patched by malware to point somewhere else. *)
  Le.set_u32_int buffers.(2) 8 (bases3.(2) + 0x999);
  let stats = Rva.canonicalize ~bases:bases3 buffers in
  check Alcotest.int "majority slot" 1 stats.Rva.slots_majority;
  (match stats.Rva.deviants with
  | [ (8, [ 2 ]) ] -> ()
  | _ -> Alcotest.fail "expected VM 2 deviating at slot 8");
  (* The two clean buffers collapsed; the deviant did not. *)
  Alcotest.(check bool) "clean pair equal" true
    (Bytes.equal buffers.(0) buffers.(1));
  Alcotest.(check bool) "deviant still differs" false
    (Bytes.equal buffers.(0) buffers.(2))

let test_shared_bases_carry_one_vote () =
  (* Base allocation is randomized, so several VMs can load a module at
     the same base. Copies sharing a base imply the same RVA at every
     byte range, so at a content divergence (an infection, not a slot)
     they must not combine into a spurious majority that rewrites
     themselves and frames the remaining clean VM as a deviant. *)
  let bases = [| 0xF8000000; 0xF8100000; 0xF8200000; 0xF8100000; 0xF8100000 |] in
  let slots = [ (8, 0x500) ] in
  let buffers =
    Array.map
      (fun base -> make_buffer ~len:32 ~fill:(fun _ -> '\x90') ~slots ~base)
      bases
  in
  (* Cave payload on VM 0 only: pure content divergence. *)
  Bytes.blit_string "\xCC\xCC\xCC\xCC" 0 buffers.(0) 16 4;
  let stats = Rva.canonicalize ~bases buffers in
  check Alcotest.int "genuine slot is unanimous" 1 stats.Rva.slots_unanimous;
  check Alcotest.int "no manufactured majority" 0 stats.Rva.slots_majority;
  Alcotest.(check bool) "clean buffers all collapse" true
    (Bytes.equal buffers.(1) buffers.(2)
    && Bytes.equal buffers.(2) buffers.(3)
    && Bytes.equal buffers.(3) buffers.(4));
  Alcotest.(check bool) "infected buffer still differs" false
    (Bytes.equal buffers.(0) buffers.(1))

let test_content_coincidence_rejected () =
  (* A misaligned word inside an infected copy's divergence can satisfy
     [v0 - base0 = v2 - base2] against one clean copy by coincidence.
     That must not form a majority "slot": the two clean copies hold the
     same raw word at different bases, which proves the position is
     content — rewriting would split the clean copies apart. *)
  let bases = [| 0xF8560000; 0xF84E0000; 0xF8550000 |] in
  let buffers =
    Array.map
      (fun _ -> make_buffer ~len:24 ~fill:(fun _ -> '\x90') ~slots:[] ~base:0)
      bases
  in
  let clean_word = 0x11223344 in
  Le.set_u32_int buffers.(1) 8 clean_word;
  Le.set_u32_int buffers.(2) 8 clean_word;
  (* Infected copy 0: same implied RVA as clean copy 2 at this offset. *)
  Le.set_u32_int buffers.(0) 8 (clean_word + bases.(0) - bases.(2));
  let stats = Rva.canonicalize ~bases buffers in
  check Alcotest.int "no majority slot" 0 stats.Rva.slots_majority;
  check Alcotest.int "no unanimous slot" 0 stats.Rva.slots_unanimous;
  Alcotest.(check bool) "clean copies still equal" true
    (Bytes.equal buffers.(1) buffers.(2));
  check Alcotest.int "clean word untouched" clean_word
    (Le.get_u32_int buffers.(1) 8)

let test_coordinated_content_does_not_veto_clean_majority () =
  (* Regression (found by the evasion soak, seed 50): two coordinated
     copies of the same infection hold identical divergent bytes over a
     genuine relocation slot. As a distinct-base equal-word pair they
     used to veto the slot for everyone, leaving the clean majority
     holding per-base absolute addresses — five distinct digests, and
     the whole pool read deviant. The veto may only fire when such a
     pair touches the winning RVA group. *)
  let bases =
    [| 0xF8000000; 0xF8100000; 0xF8200000; 0xF8300000; 0xF8400000 |]
  in
  let slots = [ (8, 0x500) ] in
  let buffers =
    Array.map
      (fun base -> make_buffer ~len:24 ~fill:(fun _ -> '\x90') ~slots ~base)
      bases
  in
  (* VMs 0 and 1 carry the same patch: plain content where the slot was. *)
  Le.set_u32_int buffers.(0) 8 0x11223344;
  Le.set_u32_int buffers.(1) 8 0x11223344;
  let stats = Rva.canonicalize ~bases buffers in
  check Alcotest.int "clean majority still adjusts the slot" 1
    stats.Rva.slots_majority;
  (match stats.Rva.deviants with
  | [ (8, [ 0; 1 ]) ] -> ()
  | _ -> Alcotest.fail "expected VMs 0 and 1 deviating at slot 8");
  Alcotest.(check bool) "clean copies collapse" true
    (Bytes.equal buffers.(2) buffers.(3) && Bytes.equal buffers.(3) buffers.(4));
  check Alcotest.int "infected word untouched" 0x11223344
    (Le.get_u32_int buffers.(0) 8)

let test_no_majority_left_raw () =
  let bases = [| 0xF8000000; 0xF8100000 |] in
  let buffers =
    [|
      make_buffer ~len:16 ~fill:(fun _ -> '\x90') ~slots:[ (4, 0x100) ]
        ~base:bases.(0);
      make_buffer ~len:16 ~fill:(fun _ -> '\x90') ~slots:[ (4, 0x200) ]
        ~base:bases.(1);
    |]
  in
  let stats = Rva.canonicalize ~bases buffers in
  (* 1-1 split on two VMs: no strict majority, slot stays raw. *)
  check Alcotest.int "no unanimity" 0 stats.Rva.slots_unanimous;
  check Alcotest.int "no majority" 0 stats.Rva.slots_majority;
  Alcotest.(check bool) "buffers still differ" false
    (Bytes.equal buffers.(0) buffers.(1))

let test_validation () =
  Alcotest.check_raises "needs >= 2"
    (Invalid_argument "Rva.canonicalize: need at least two buffers") (fun () ->
      ignore (Rva.canonicalize ~bases:[| 1 |] [| Bytes.create 8 |]));
  Alcotest.check_raises "length mismatch"
    (Invalid_argument "Rva.canonicalize: buffers must have equal length")
    (fun () ->
      ignore
        (Rva.canonicalize ~bases:[| 1; 2 |] [| Bytes.create 8; Bytes.create 4 |]))

(* Property: canonicalizing a clean relocated pool makes all buffers
   bit-identical and agrees with pairwise adjustment verdicts. *)
let prop_canonical_clean_pool =
  let gen =
    QCheck.Gen.(
      let* n_vms = int_range 2 6 in
      let* len = int_range 32 256 in
      let* n_slots = int_range 0 (len / 16) in
      let* grid = list_size (return n_slots) (int_range 0 ((len / 8) - 1)) in
      let slots = List.sort_uniq compare (List.map (fun g -> g * 8) grid) in
      let* rvas = list_size (return (List.length slots)) (int_range 0 0xFFFF) in
      let* base_slots = list_size (return n_vms) (int_range 0 0x7FF) in
      let* seed = int in
      return (len, List.combine slots rvas, base_slots, seed))
  in
  QCheck.Test.make ~count:200 ~name:"canonicalize reconciles clean pools"
    (QCheck.make gen)
    (fun (len, slots, base_slots, seed) ->
      let rng = Rng.create (Int64.of_int seed) in
      let fill_bytes = Rng.bytes rng len in
      let fill i = Bytes.get fill_bytes i in
      let bases =
        Array.of_list
          (List.map (fun s -> 0xF8000000 + (s * 0x10000)) base_slots)
      in
      let buffers =
        Array.map (fun base -> make_buffer ~len ~fill ~slots ~base) bases
      in
      ignore (Rva.canonicalize ~bases buffers);
      Array.for_all (fun b -> Bytes.equal b buffers.(0)) buffers)

(* --- survey strategy equivalence -------------------------------------- *)

let deviants strategy cloud name =
  (Orchestrator.survey
     ~config:Orchestrator.Config.(default |> with_strategy strategy)
     cloud ~module_name:name)
    .Report.deviant_vms

let test_survey_strategies_agree_clean () =
  let cloud = Cloud.create ~vms:5 ~seed:410L () in
  List.iter
    (fun name ->
      check
        Alcotest.(list int)
        (name ^ " same verdicts")
        (deviants Orchestrator.Pairwise cloud name)
        (deviants Orchestrator.Canonical cloud name))
    [ "hal.dll"; "http.sys"; "hello_missing_everywhere" ]

let test_survey_strategies_agree_infected () =
  let cloud = Cloud.create ~vms:5 ~seed:411L () in
  (match Mc_malware.Infect.inline_hook cloud ~vm:2 with
  | Ok _ -> ()
  | Error e -> Alcotest.fail e);
  check Alcotest.(list int) "pairwise finds Dom3" [ 2 ]
    (deviants Orchestrator.Pairwise cloud "hal.dll");
  check Alcotest.(list int) "canonical finds Dom3" [ 2 ]
    (deviants Orchestrator.Canonical cloud "hal.dll")

let test_survey_strategies_agree_dll_inject () =
  let cloud = Cloud.create ~vms:4 ~seed:412L () in
  (match Mc_malware.Infect.dll_injection cloud ~vm:1 with
  | Ok _ -> ()
  | Error e -> Alcotest.fail e);
  (* The infected copy has different section sizes: the canonical path must
     fall back to raw digests for that artifact and still convict. *)
  check Alcotest.(list int) "pairwise" [ 1 ]
    (deviants Orchestrator.Pairwise cloud "dummy.sys");
  check Alcotest.(list int) "canonical" [ 1 ]
    (deviants Orchestrator.Canonical cloud "dummy.sys")

let test_survey_after_reboot_base_collision () =
  (* Regression (found by simtest, seed 132): with this cloud seed,
     rebooting VM 1 re-randomizes hal.dll onto the base VMs 3 and 4
     already share. Three identical-base clean copies then outvoted the
     rest at VM 0's cave bytes and the canonical survey framed VM 2. *)
  let cloud = Cloud.create ~vms:5 ~cores:4 ~seed:508329946526276438L () in
  (match Mc_malware.Infect.pointer_hook cloud ~vm:0 with
  | Ok _ -> ()
  | Error e -> Alcotest.fail e);
  Cloud.reboot_vm cloud 1;
  check Alcotest.(list int) "only the hooked VM deviates" [ 0 ]
    (deviants Orchestrator.Canonical cloud "hal.dll");
  check Alcotest.(list int) "pairwise agrees" [ 0 ]
    (deviants Orchestrator.Pairwise cloud "hal.dll")

let test_survey_shifted_code_coincidence () =
  (* Regression (found by simtest, seed 2796): the opcode patch grows an
     instruction, shifting ~100 bytes of code on the infected VM. While
     scanning that divergence, a misaligned word coincidentally
     rva-matched one clean copy and the 2-of-3 "majority" rewrite split
     the two clean VMs apart ([0,1,2] instead of [0]). *)
  let cloud = Cloud.create ~vms:3 ~cores:4 ~seed:(-6576296963831931136L) () in
  Cloud.reboot_vm cloud 0;
  Cloud.reboot_vm cloud 2;
  (match
     Mc_malware.Infect.single_opcode_replacement ~module_name:"atapi.sys"
       ~func:"devicemgr_24" cloud ~vm:0
   with
  | Ok _ -> ()
  | Error e -> Alcotest.fail e);
  check Alcotest.(list int) "canonical flags only the patched VM" [ 0 ]
    (deviants Orchestrator.Canonical cloud "atapi.sys");
  check Alcotest.(list int) "pairwise agrees" [ 0 ]
    (deviants Orchestrator.Pairwise cloud "atapi.sys")

let test_survey_coordinated_race_overlay () =
  (* Cloud-level regression for the same bug: a coordinated two-VM
     opcode patch (the instruction grows, shifting ~100 bytes of code
     over 11 real slots) must leave canonical and pairwise agreeing on
     exactly the infected pair. *)
  let cloud = Cloud.create ~vms:5 ~cores:6 ~seed:(-4789845029019759313L) () in
  let m =
    match
      Mc_malware.Strategy.race ~module_name:"disk.sys" ~func:"devhal_114"
        cloud ~vms:[ 0; 1 ] ~start:1.0
    with
    | Ok m -> m
    | Error e -> Alcotest.fail e
  in
  (match Mc_malware.Strategy.tick m ~now:2.0 with
  | Ok _ -> ()
  | Error e -> Alcotest.fail e);
  check Alcotest.(list int) "canonical flags the coordinated pair" [ 0; 1 ]
    (deviants Orchestrator.Canonical cloud "disk.sys");
  check Alcotest.(list int) "pairwise agrees" [ 0; 1 ]
    (deviants Orchestrator.Pairwise cloud "disk.sys")

let test_canonical_cheaper () =
  let cloud = Cloud.create ~vms:8 ~seed:413L () in
  let cost strategy =
    let meter = Meter.create () in
    ignore
      (Orchestrator.survey
         ~config:Orchestrator.Config.(default |> with_strategy strategy)
         ~meter cloud ~module_name:"http.sys");
    (Meter.get meter Meter.Checker).Meter.bytes_hashed
  in
  let pairwise = cost Orchestrator.Pairwise in
  let canonical = cost Orchestrator.Canonical in
  Alcotest.(check bool)
    (Printf.sprintf "canonical hashes less (%d < %d)" canonical pairwise)
    true
    (canonical * 3 < pairwise)

let () =
  Alcotest.run "canonical"
    [
      ( "canonicalize",
        [
          Alcotest.test_case "unanimous" `Quick test_unanimous;
          Alcotest.test_case "majority + deviant" `Quick
            test_majority_with_deviant;
          Alcotest.test_case "shared bases carry one vote" `Quick
            test_shared_bases_carry_one_vote;
          Alcotest.test_case "content coincidence rejected" `Quick
            test_content_coincidence_rejected;
          Alcotest.test_case "coordinated content does not veto" `Quick
            test_coordinated_content_does_not_veto_clean_majority;
          Alcotest.test_case "no majority" `Quick test_no_majority_left_raw;
          Alcotest.test_case "validation" `Quick test_validation;
        ] );
      ( "survey",
        [
          Alcotest.test_case "agree on clean" `Quick
            test_survey_strategies_agree_clean;
          Alcotest.test_case "agree on infected" `Quick
            test_survey_strategies_agree_infected;
          Alcotest.test_case "agree on resize" `Quick
            test_survey_strategies_agree_dll_inject;
          Alcotest.test_case "reboot base collision" `Quick
            test_survey_after_reboot_base_collision;
          Alcotest.test_case "shifted-code coincidence" `Quick
            test_survey_shifted_code_coincidence;
          Alcotest.test_case "coordinated race overlay" `Quick
            test_survey_coordinated_race_overlay;
          Alcotest.test_case "cheaper" `Quick test_canonical_cheaper;
        ] );
      ( "properties",
        List.map QCheck_alcotest.to_alcotest [ prop_canonical_clean_pool ] );
    ]
