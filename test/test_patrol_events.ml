(* Tests for event-driven (write-trap) patrol and the patrol bugfix
   sweep that rode along with it. *)

module Patrol = Modchecker.Patrol
module Orchestrator = Modchecker.Orchestrator
module Cloud = Mc_hypervisor.Cloud
module Faultplan = Mc_memsim.Faultplan
module Infect = Mc_malware.Infect

let check = Alcotest.check

let expect_ok = function Ok v -> v | Error e -> Alcotest.fail e

let small_config =
  {
    Patrol.default_config with
    Patrol.watch = [ "hal.dll"; "http.sys" ];
    interval_s = 10.0;
  }

(* Normalize an alarm list to a comparable set. *)
let alarm_set alarms =
  List.sort_uniq compare
    (List.map
       (fun a ->
         ( Patrol.alarm_kind_key a.Patrol.kind,
           a.Patrol.alarm_module,
           a.Patrol.alarm_vms ))
       alarms)

let integrity_set alarms =
  alarm_set
    (List.filter
       (fun a -> a.Patrol.kind <> Patrol.Quorum_loss)
       alarms)

(* --- bugfix regressions ---------------------------------------------------- *)

(* run_driven used to drain scheduled events only at the top of each
   sweep iteration, so an event landing between the final sweep's start
   and [until] never fired at all. *)
let test_late_event_still_fires () =
  let cloud = Cloud.create ~vms:2 ~seed:801L () in
  let fired = ref false in
  let driver () =
    { Patrol.sw_surveys = []; sw_lists = None; sw_anchors = []; sw_overhead = None }
  in
  let config = { small_config with Patrol.interval_s = 30.0 } in
  (* Sweeps start at 0, 30, 60, 90; the loop exits with the clock jumped
     to 120 > until. The event at 95 is inside the window and must fire
     on exit. *)
  let o =
    Patrol.run_driven ~config
      ~events:[ (95.0, fun _ -> fired := true) ]
      cloud ~until:100.0 driver
  in
  Alcotest.(check bool) "in-window event fired" true !fired;
  check Alcotest.int "four sweeps" 4 o.Patrol.sweeps

let test_out_of_window_event_does_not_fire () =
  let cloud = Cloud.create ~vms:2 ~seed:802L () in
  let fired = ref false in
  let driver () =
    { Patrol.sw_surveys = []; sw_lists = None; sw_anchors = []; sw_overhead = None }
  in
  ignore
    (Patrol.run_driven ~config:small_config
       ~events:[ (100.5, fun _ -> fired := true) ]
       cloud ~until:100.0 driver);
  Alcotest.(check bool) "event past the horizon never fires" false !fired

(* time_to_detect used to match alarms by module name alone, so a
   degraded sweep's Quorum_loss (or a list alarm) on the same module
   read as an instant detection. *)
let test_ttd_ignores_non_integrity_alarms () =
  let outcome =
    {
      Patrol.alarms =
        [
          {
            Patrol.at = 40.0;
            alarm_module = "hal.dll";
            alarm_vms = [ 2 ];
            kind = Patrol.Quorum_loss;
          };
          {
            Patrol.at = 55.0;
            alarm_module = "hal.dll";
            alarm_vms = [];
            kind = Patrol.List_discrepancy;
          };
          {
            Patrol.at = 70.0;
            alarm_module = "hal.dll";
            alarm_vms = [ 1 ];
            kind = Patrol.Hash_deviation;
          };
        ];
      sweeps = 3;
      reactions = 0;
      virtual_elapsed = 80.0;
      cpu_spent = 0.1;
      mean_sweep_wall = 0.01;
      sweep_cpus = [];
      latencies_s = [];
    }
  in
  (match Patrol.time_to_detect outcome ~module_name:"hal.dll" ~infected_at:35.0 with
  | Some ttd ->
      check (Alcotest.float 1e-9) "first integrity alarm, not the degraded sweep"
        35.0 ttd
  | None -> Alcotest.fail "hash deviation must count as detection");
  let only_noise =
    { outcome with Patrol.alarms = [ List.hd outcome.Patrol.alarms ] }
  in
  Alcotest.(check bool) "quorum loss alone is not a detection" true
    (Patrol.time_to_detect only_noise ~module_name:"hal.dll" ~infected_at:35.0
    = None)

(* --- event-driven patrol --------------------------------------------------- *)

let test_event_driven_detects_fast () =
  let cloud = Cloud.create ~vms:3 ~seed:803L () in
  let infect cloud = ignore (expect_ok (Infect.inline_hook cloud ~vm:1)) in
  let o =
    Patrol.run_events ~config:small_config ~events:[ (35.0, infect) ] cloud
      ~until:100.0
  in
  let hits =
    List.filter
      (fun a ->
        a.Patrol.alarm_module = "hal.dll"
        && a.Patrol.kind = Patrol.Hash_deviation)
      o.Patrol.alarms
  in
  Alcotest.(check bool) "alarm raised" true (hits <> []);
  Alcotest.(check bool) "at least one reaction" true (o.Patrol.reactions >= 1);
  (match Patrol.time_to_detect o ~module_name:"hal.dll" ~infected_at:35.0 with
  | Some ttd ->
      Alcotest.(check bool)
        (Printf.sprintf "TTD %.4fs is way below the 10s interval" ttd)
        true
        (ttd >= 0.0 && ttd < small_config.Patrol.interval_s /. 10.0)
  | None -> Alcotest.fail "event-driven patrol must detect");
  Alcotest.(check bool) "latency recorded" true (o.Patrol.latencies_s <> []);
  List.iter
    (fun l ->
      Alcotest.(check bool)
        (Printf.sprintf "latency %.4fs sane" l)
        true
        (l >= 0.0 && l < small_config.Patrol.interval_s))
    o.Patrol.latencies_s

let test_benign_touch_reacts_without_alarm () =
  let cloud = Cloud.create ~vms:3 ~seed:804L () in
  let touch cloud =
    ignore (expect_ok (Infect.benign_touch ~module_name:"hal.dll" cloud ~vm:0))
  in
  let o =
    Patrol.run_events ~config:small_config ~events:[ (20.0, touch) ] cloud
      ~until:60.0
  in
  Alcotest.(check bool) "the write trapped and was rechecked" true
    (o.Patrol.reactions >= 1);
  check Alcotest.int "no alarms from a benign write" 0
    (List.length o.Patrol.alarms)

let test_idle_pool_costs_nothing_extra () =
  (* No guest writes → no traps → the only work after the baseline is the
     (rare) safety sweep. Acceptance: ≤ 1/10 of 30s-interval polling. *)
  let until = 600.0 in
  let poll =
    let cloud = Cloud.create ~vms:4 ~seed:805L () in
    let config = { small_config with Patrol.interval_s = 30.0 } in
    Patrol.run ~config cloud ~until
  in
  let trap =
    let cloud = Cloud.create ~vms:4 ~seed:805L () in
    let config = { small_config with Patrol.interval_s = 30.0 } in
    Patrol.run_events ~config cloud ~until
  in
  check Alcotest.int "no reactions on an idle pool" 0 trap.Patrol.reactions;
  (* Steady state: everything after each mode's first (cold) sweep. *)
  let steady o =
    match o.Patrol.sweep_cpus with
    | first :: _ -> o.Patrol.cpu_spent -. first
    | [] -> 0.0
  in
  let poll_steady = steady poll and trap_steady = steady trap in
  Alcotest.(check bool)
    (Printf.sprintf "trap steady %.6fs ≤ poll steady %.6fs / 10" trap_steady
       poll_steady)
    true
    (trap_steady <= poll_steady /. 10.0)

let test_reboot_rearms_and_detects () =
  (* single_opcode_replacement patches the disk image and reboots the
     victim: the new memory epoch silently voids that VM's watches. The
     session must notice, recheck everything on it, and re-arm. *)
  let cloud = Cloud.create ~vms:3 ~seed:806L () in
  let infect cloud =
    ignore (expect_ok (Infect.single_opcode_replacement cloud ~vm:1))
  in
  let o =
    Patrol.run_events ~config:small_config ~events:[ (25.0, infect) ] cloud
      ~until:80.0
  in
  match Patrol.time_to_detect o ~module_name:"hal.dll" ~infected_at:25.0 with
  | Some ttd ->
      Alcotest.(check bool)
        (Printf.sprintf "detected across the reboot in %.4fs" ttd)
        true
        (ttd >= 0.0 && ttd < small_config.Patrol.interval_s)
  | None -> Alcotest.fail "epoch change must trigger a full VM recheck"

(* --- parity: event-driven ≡ polling, across all six techniques ------------- *)

let techniques =
  [
    ("opcode", "hal.dll", fun c -> ignore (expect_ok (Infect.single_opcode_replacement c ~vm:1)));
    ("hook", "hal.dll", fun c -> ignore (expect_ok (Infect.inline_hook c ~vm:1)));
    ("stub", "hello.sys", fun c -> ignore (expect_ok (Infect.stub_modification c ~vm:1)));
    ("dll-inject", "dummy.sys", fun c -> ignore (expect_ok (Infect.dll_injection c ~vm:1)));
    ("ptr", "hal.dll", fun c -> ignore (expect_ok (Infect.pointer_hook c ~vm:1)));
    ("hide", "http.sys", fun c -> ignore (expect_ok (Infect.hide_module c ~vm:1 ~module_name:"http.sys")));
  ]

let watch_for target =
  if List.mem target small_config.Patrol.watch then small_config.Patrol.watch
  else target :: small_config.Patrol.watch

let run_both ~seed ~fault_spec ~technique:(_, target, infect) =
  let interval = 10.0 and infected_at = 23.0 and until = 90.0 in
  let config = { small_config with Patrol.watch = watch_for target; interval_s = interval } in
  let events = [ (infected_at, infect) ] in
  let with_faults cloud =
    match fault_spec with
    | None -> cloud
    | Some spec ->
        Cloud.set_fault_spec cloud (Some spec);
        cloud
  in
  let poll =
    Patrol.run ~config ~events (with_faults (Cloud.create ~vms:4 ~seed ())) ~until
  in
  let trap =
    Patrol.run_events ~config ~events
      (with_faults (Cloud.create ~vms:4 ~seed ()))
      ~until
  in
  (config, target, infected_at, poll, trap)

let assert_parity ~name (_, target, infected_at, poll, trap) =
  Alcotest.(check (list (triple string string (list int))))
    (name ^ ": same integrity alarm set")
    (integrity_set poll.Patrol.alarms)
    (integrity_set trap.Patrol.alarms);
  let poll_ttd = Patrol.time_to_detect poll ~module_name:target ~infected_at in
  let trap_ttd = Patrol.time_to_detect trap ~module_name:target ~infected_at in
  match (poll_ttd, trap_ttd) with
  | Some p, Some t ->
      Alcotest.(check bool)
        (Printf.sprintf "%s: trap TTD %.4fs ≤ poll TTD %.4fs" name t p)
        true
        (t <= p +. 1e-9);
      (p, t)
  | _ ->
      Alcotest.fail
        (Printf.sprintf "%s: both modes must detect (poll %b, trap %b)" name
           (poll_ttd <> None) (trap_ttd <> None))

let test_six_technique_parity_and_latency () =
  let ratios =
    List.map
      (fun ((name, _, _) as technique) ->
        let r = run_both ~seed:807L ~fault_spec:None ~technique in
        let p, t = assert_parity ~name r in
        let (config, _, _, _, _) = r in
        Alcotest.(check bool)
          (Printf.sprintf "%s: trap TTD %.4fs at least 10x below interval" name t)
          true
          (t < config.Patrol.interval_s /. 10.0);
        p /. Float.max t 1e-9)
      techniques
  in
  (* 6/6 detected in both modes (assert_parity failed otherwise), and
     every technique saw a real latency win. *)
  check Alcotest.int "all six techniques ran" 6 (List.length ratios);
  List.iter
    (fun r -> Alcotest.(check bool) "trap beats poll" true (r >= 1.0))
    ratios

let prop_parity_under_faults =
  QCheck.Test.make ~count:8
    ~name:"event-driven ≡ polling alarm set (random technique, 5% faults)"
    QCheck.(pair (int_bound 100000) (int_bound 5))
    (fun (seed, ti) ->
      let ((name, _, _) as technique) = List.nth techniques ti in
      let fault_spec =
        match Faultplan.of_string (Printf.sprintf "transient=0.05,seed=%d" (seed + 1)) with
        | Ok s -> Some s
        | Error e -> failwith e
      in
      let r =
        run_both ~seed:(Int64.of_int (seed + 11)) ~fault_spec ~technique
      in
      ignore (assert_parity ~name r);
      true)

let () =
  Alcotest.run "patrol-events"
    [
      ( "bugfixes",
        [
          Alcotest.test_case "late event fires" `Quick test_late_event_still_fires;
          Alcotest.test_case "out-of-window event dropped" `Quick
            test_out_of_window_event_does_not_fire;
          Alcotest.test_case "ttd integrity kinds only" `Quick
            test_ttd_ignores_non_integrity_alarms;
        ] );
      ( "event-driven",
        [
          Alcotest.test_case "fast detection" `Quick test_event_driven_detects_fast;
          Alcotest.test_case "benign touch no alarm" `Quick
            test_benign_touch_reacts_without_alarm;
          Alcotest.test_case "idle pool near-zero cost" `Quick
            test_idle_pool_costs_nothing_extra;
          Alcotest.test_case "reboot re-arms" `Quick test_reboot_rearms_and_detects;
        ] );
      ( "parity",
        Alcotest.test_case "six techniques, latency 10x" `Slow
          test_six_technique_parity_and_latency
        :: List.map QCheck_alcotest.to_alcotest [ prop_parity_under_faults ] );
    ]
