(* Tests for the hypervisor layer: domains, cloud cloning, the
   proportional-share scheduler, the cost model and meters. *)

module Cloud = Mc_hypervisor.Cloud
module Dom = Mc_hypervisor.Dom
module Sched = Mc_hypervisor.Sched
module Costs = Mc_hypervisor.Costs
module Meter = Mc_hypervisor.Meter
module Xenctl = Mc_hypervisor.Xenctl
module Kernel = Mc_winkernel.Kernel
module Fs = Mc_winkernel.Fs
module Stress = Mc_workload.Stress
module Ldr = Mc_winkernel.Ldr

let check = Alcotest.check

let feq = Alcotest.float 1e-9

(* --- Cloud ---------------------------------------------------------------- *)

let test_cloud_shape () =
  let cloud = Cloud.create ~vms:3 ~cores:4 ~seed:5L () in
  check Alcotest.int "vm count" 3 (Cloud.vm_count cloud);
  check Alcotest.int "cores" 4 cloud.Cloud.cores;
  check Alcotest.string "dom0 name" "Domain-0" cloud.Cloud.dom0.Dom.dom_name;
  Alcotest.(check bool) "dom0 privileged" true (Dom.is_privileged cloud.Cloud.dom0);
  check Alcotest.string "domu name" "Dom2" (Cloud.vm cloud 1).Dom.dom_name;
  Alcotest.(check bool) "domu not privileged" false
    (Dom.is_privileged (Cloud.vm cloud 1));
  Alcotest.check_raises "out of range"
    (Invalid_argument "Cloud.vm: no DomU index 3") (fun () ->
      ignore (Cloud.vm cloud 3))

let test_cloud_identical_disks () =
  let cloud = Cloud.create ~vms:2 ~seed:5L () in
  let file i =
    Option.get
      (Fs.read_file
         (Kernel.fs (Dom.kernel_exn (Cloud.vm cloud i)))
         (Fs.module_path "hal.dll"))
  in
  Alcotest.(check bool) "clones share file content" true
    (Bytes.equal (file 0) (file 1))

let test_cloud_disks_isolated () =
  let cloud = Cloud.create ~vms:2 ~seed:5L () in
  let fs0 = Kernel.fs (Dom.kernel_exn (Cloud.vm cloud 0)) in
  Fs.write_file fs0 (Fs.module_path "hal.dll") (Bytes.of_string "infected");
  let f1 =
    Option.get
      (Fs.read_file
         (Kernel.fs (Dom.kernel_exn (Cloud.vm cloud 1)))
         (Fs.module_path "hal.dll"))
  in
  Alcotest.(check bool) "other VM unaffected" true
    (Bytes.length f1 > 100)

let test_cloud_bases_differ_across_vms () =
  let cloud = Cloud.create ~vms:3 ~seed:5L () in
  let base i =
    (Option.get (Kernel.find_module (Dom.kernel_exn (Cloud.vm cloud i)) "hal.dll"))
      .Ldr.dll_base
  in
  let bases = [ base 0; base 1; base 2 ] in
  check Alcotest.int "all distinct" 3 (List.length (List.sort_uniq compare bases))

let test_cloud_reboot () =
  let cloud = Cloud.create ~vms:2 ~seed:5L () in
  let kernel_before = Dom.kernel_exn (Cloud.vm cloud 0) in
  let gen_before = Kernel.generation kernel_before in
  Cloud.reboot_vm cloud 0;
  let kernel_after = Dom.kernel_exn (Cloud.vm cloud 0) in
  check Alcotest.int "generation bumped" (gen_before + 1)
    (Kernel.generation kernel_after);
  Alcotest.(check bool) "fresh kernel object" true
    (kernel_before != kernel_after);
  Alcotest.(check bool) "same filesystem survives" true
    (Kernel.fs kernel_before == Kernel.fs kernel_after)

let test_workloads_and_busy_counts () =
  let cloud = Cloud.create ~vms:4 ~seed:5L () in
  check Alcotest.int "idle cloud" 0 (Cloud.busy_guest_vcpus cloud);
  check Alcotest.int "no bus pressure" 0 (Cloud.busy_vms cloud);
  (Cloud.vm cloud 0).Dom.workload <- Stress.cpu_only;
  check Alcotest.int "one busy" 1 (Cloud.busy_guest_vcpus cloud);
  Cloud.set_workload_all cloud Stress.heavyload;
  check Alcotest.int "all busy" 4 (Cloud.busy_guest_vcpus cloud);
  check Alcotest.int "all on the bus" 4 (Cloud.busy_vms cloud);
  (Cloud.vm cloud 1).Dom.paused <- true;
  check Alcotest.int "paused not busy" 3 (Cloud.busy_guest_vcpus cloud)

(* --- Stress -------------------------------------------------------------- *)

let test_stress () =
  Alcotest.(check bool) "idle not busy" false (Stress.is_cpu_busy Stress.idle);
  Alcotest.(check bool) "heavyload busy" true (Stress.is_cpu_busy Stress.heavyload);
  check feq "idle no pressure" 0.0 (Stress.bus_pressure Stress.idle);
  check feq "heavyload saturates" 1.0 (Stress.bus_pressure Stress.heavyload);
  Alcotest.(check bool) "cpu-only modest pressure" true
    (Stress.bus_pressure Stress.cpu_only < 0.5)

(* --- Sched --------------------------------------------------------------- *)

let test_share () =
  check feq "undercommit full speed" 1.0 (Sched.share ~cores:8 ~runnable:4);
  check feq "exact fit" 1.0 (Sched.share ~cores:8 ~runnable:8);
  check feq "2x overcommit" 0.5 (Sched.share ~cores:8 ~runnable:16);
  check feq "degenerate" 1.0 (Sched.share ~cores:8 ~runnable:0)

let test_run_jobs_single () =
  (* One job, no contention: wall == work. *)
  check feq "no contention" 0.25
    (Sched.run_jobs ~cores:8 ~busy_guest_vcpus:0 ~workers:1 [ 0.25 ]);
  (* Sequential jobs add. *)
  check feq "sequential sum" 0.6
    (Sched.run_jobs ~cores:8 ~busy_guest_vcpus:0 ~workers:1 [ 0.1; 0.2; 0.3 ])

let test_run_jobs_contention () =
  (* 1 worker + 15 busy vcpus on 8 cores: share = 8/16, wall doubles. *)
  check feq "saturated doubles" 0.2
    (Sched.run_jobs ~cores:8 ~busy_guest_vcpus:15 ~workers:1 [ 0.1 ]);
  (* Below saturation nothing changes. *)
  check feq "below knee unchanged" 0.1
    (Sched.run_jobs ~cores:8 ~busy_guest_vcpus:5 ~workers:1 [ 0.1 ])

let test_run_jobs_parallel () =
  (* 4 equal jobs on 4 workers, idle guests, enough cores: wall = one job. *)
  check feq "perfect parallelism" 0.1
    (Sched.run_jobs ~cores:8 ~busy_guest_vcpus:0 ~workers:4
       [ 0.1; 0.1; 0.1; 0.1 ]);
  (* 2 workers: two waves. *)
  check feq "two waves" 0.2
    (Sched.run_jobs ~cores:8 ~busy_guest_vcpus:0 ~workers:2
       [ 0.1; 0.1; 0.1; 0.1 ]);
  (* Workers exceeding cores contend with each other. *)
  check feq "workers self-contend" 0.2
    (Sched.run_jobs ~cores:2 ~busy_guest_vcpus:0 ~workers:4
       [ 0.1; 0.1; 0.1; 0.1 ])

let test_run_jobs_uneven () =
  (* List scheduling of uneven jobs: 0.3 on one worker, 0.1+0.2 on the
     other -> wall 0.3. *)
  check feq "uneven balanced" 0.3
    (Sched.run_jobs ~cores:8 ~busy_guest_vcpus:0 ~workers:2 [ 0.3; 0.1; 0.2 ])

let test_run_jobs_edge_cases () =
  check feq "no jobs" 0.0 (Sched.run_jobs ~cores:8 ~busy_guest_vcpus:0 ~workers:2 []);
  check feq "zero-cost jobs skipped" 0.0
    (Sched.run_jobs ~cores:8 ~busy_guest_vcpus:0 ~workers:1 [ 0.0; 0.0 ]);
  Alcotest.check_raises "workers must be positive"
    (Invalid_argument "Sched.run_jobs: need at least one worker") (fun () ->
      ignore (Sched.run_jobs ~cores:8 ~busy_guest_vcpus:0 ~workers:0 [ 1.0 ]))

let test_bus_factor () =
  let costs = Costs.default in
  check feq "no busy VMs" 1.0 (Sched.bus_factor costs ~busy_vms:0 ~cores:8);
  Alcotest.(check bool) "grows with load" true
    (Sched.bus_factor costs ~busy_vms:4 ~cores:8
    < Sched.bus_factor costs ~busy_vms:8 ~cores:8);
  check feq "saturates at core count"
    (Sched.bus_factor costs ~busy_vms:8 ~cores:8)
    (Sched.bus_factor costs ~busy_vms:100 ~cores:8)

(* --- Meter / Costs --------------------------------------------------------- *)

let test_meter_phases () =
  let m = Meter.create () in
  Meter.set_phase m Meter.Searcher;
  Meter.add_pages_mapped m 3;
  Meter.set_phase m Meter.Checker;
  Meter.add_bytes_hashed m 100;
  check Alcotest.int "searcher pages" 3 (Meter.get m Meter.Searcher).Meter.pages_mapped;
  check Alcotest.int "checker pages" 0 (Meter.get m Meter.Checker).Meter.pages_mapped;
  check Alcotest.int "checker hashed" 100
    (Meter.get m Meter.Checker).Meter.bytes_hashed;
  Meter.reset m;
  check Alcotest.int "reset" 0 (Meter.get m Meter.Searcher).Meter.pages_mapped

let test_meter_pricing () =
  let costs = Costs.default in
  let m = Meter.create () in
  Meter.set_phase m Meter.Searcher;
  Meter.add_pages_mapped m 10;
  Meter.add_bytes_copied m 1000;
  let expected =
    (10.0 *. costs.Costs.page_map_s) +. (1000.0 *. costs.Costs.copy_byte_s)
  in
  check feq "priced" expected (Meter.cpu_seconds costs (Meter.get m Meter.Searcher));
  check feq "total across phases" expected (Meter.total_cpu_seconds costs m)

let test_phase_names () =
  check Alcotest.string "searcher" "Module-Searcher" (Meter.phase_name Meter.Searcher);
  check Alcotest.string "parser" "Module-Parser" (Meter.phase_name Meter.Parser);
  check Alcotest.string "checker" "Integrity-Checker"
    (Meter.phase_name Meter.Checker)

let test_meter_merge () =
  let a = Meter.create () and b = Meter.create () in
  Meter.set_phase a Meter.Searcher;
  Meter.add_pages_mapped a 3;
  Meter.set_phase b Meter.Searcher;
  Meter.add_pages_mapped b 4;
  Meter.set_phase b Meter.Checker;
  Meter.add_bytes_hashed b 100;
  Meter.add_hypercalls b 2;
  Meter.add_pfns_checked b 50;
  Meter.merge a b;
  check Alcotest.int "searcher summed" 7
    (Meter.get a Meter.Searcher).Meter.pages_mapped;
  check Alcotest.int "checker hashed" 100
    (Meter.get a Meter.Checker).Meter.bytes_hashed;
  check Alcotest.int "hypercalls" 2 (Meter.get a Meter.Checker).Meter.hypercalls;
  check Alcotest.int "pfns" 50 (Meter.get a Meter.Checker).Meter.pfns_checked;
  (* Source is untouched and the destination's selected phase survives. *)
  check Alcotest.int "src intact" 4 (Meter.get b Meter.Searcher).Meter.pages_mapped;
  check Alcotest.string "dst phase" "Module-Searcher"
    (Meter.phase_name Meter.Searcher)

let test_hypercall_pricing () =
  let costs = Costs.default in
  let m = Meter.create () in
  Meter.set_phase m Meter.Searcher;
  Meter.add_hypercalls m 2;
  Meter.add_pfns_checked m 100;
  let expected =
    (2.0 *. costs.Costs.hypercall_s) +. (100.0 *. costs.Costs.dirty_scan_pfn_s)
  in
  check feq "priced" expected (Meter.total_cpu_seconds costs m)

(* --- Xenctl ---------------------------------------------------------------- *)

let test_xenctl_foreign_page () =
  let cloud = Cloud.create ~vms:1 ~seed:5L () in
  let d = Cloud.vm cloud 0 in
  let meter = Meter.create () in
  let kernel = Dom.kernel_exn d in
  let e = Option.get (Kernel.find_module kernel "hal.dll") in
  let pa =
    Option.get (Mc_memsim.Addr_space.translate (Kernel.aspace kernel) e.Ldr.dll_base)
  in
  let page = Xenctl.map_foreign_page ~meter d (pa / Mc_memsim.Phys.frame_size) in
  check Alcotest.int "MZ in mapped page" Mc_pe.Flags.dos_magic
    (Bytes.get_uint16_le page (pa mod Mc_memsim.Phys.frame_size));
  check Alcotest.int "metered" 1 (Meter.get meter Meter.Searcher).Meter.pages_mapped

let test_read_foreign_pa_zero_len () =
  (* A zero-length read used to meter [last - first + 1] pages with
     [last] one page before [first] — a bogus negative-ish charge. It
     must map and copy nothing. *)
  let cloud = Cloud.create ~vms:1 ~seed:5L () in
  let d = Cloud.vm cloud 0 in
  let meter = Meter.create () in
  Xenctl.read_foreign_pa ~meter d (3 * Mc_memsim.Phys.frame_size) Bytes.empty 0 0;
  let k = Meter.get meter Meter.Searcher in
  check Alcotest.int "no pages mapped" 0 k.Meter.pages_mapped;
  check Alcotest.int "no bytes copied" 0 k.Meter.bytes_copied;
  (* And a 1-byte read still meters exactly one page. *)
  Xenctl.read_foreign_pa ~meter d (3 * Mc_memsim.Phys.frame_size) (Bytes.create 1) 0 1;
  check Alcotest.int "one page for one byte" 1 k.Meter.pages_mapped

let test_watch_hypercalls () =
  let cloud = Cloud.create ~vms:1 ~seed:5L () in
  let d = Cloud.vm cloud 0 in
  let meter = Meter.create () in
  let kernel = Dom.kernel_exn d in
  let phys = Kernel.phys kernel in
  let pfn = Mc_memsim.Phys.alloc_frame phys in
  Xenctl.watch_pages ~meter d [ pfn ];
  let k = Meter.get meter Meter.Searcher in
  check Alcotest.int "arm: one hypercall" 1 k.Meter.hypercalls;
  check Alcotest.int "arm: one watch-arm unit" 1 k.Meter.watch_arms;
  (* Draining an empty ring is free — delivery is push. *)
  check Alcotest.int "nothing pending" 0 (Xenctl.pending_trap_events d);
  ignore (Xenctl.drain_events ~meter d);
  check Alcotest.int "empty drain costs nothing" 1 k.Meter.hypercalls;
  Xenctl.set_trap_clock d 42.0;
  Mc_memsim.Phys.write phys (pfn * Mc_memsim.Phys.frame_size)
    (Bytes.of_string "x") 0 1;
  (match Xenctl.drain_events ~meter d with
  | [ e ] ->
      check Alcotest.int "trapped pfn" pfn e.Mc_memsim.Phys.we_pfn;
      check (Alcotest.float 1e-9) "trap clock" 42.0 e.Mc_memsim.Phys.we_at
  | evs -> Alcotest.fail (Printf.sprintf "expected 1 event, got %d" (List.length evs)));
  check Alcotest.int "drain: second hypercall" 2 k.Meter.hypercalls;
  check Alcotest.int "drain: one trap-event unit" 1 k.Meter.trap_events;
  (* The new counters price into CPU seconds. *)
  check feq "watch work priced"
    ((2.0 *. Costs.default.Costs.hypercall_s)
    +. Costs.default.Costs.watch_arm_pfn_s
    +. Costs.default.Costs.trap_event_s)
    (Meter.cpu_seconds Costs.default k)

let test_dom_kernel_exn () =
  let d = Dom.create ~dom_id:0 ~dom_name:"Domain-0" None in
  Alcotest.check_raises "no kernel" (Failure "domain Domain-0 has no kernel")
    (fun () -> ignore (Dom.kernel_exn d))

let test_log_dirty () =
  let cloud = Cloud.create ~vms:1 ~seed:5L () in
  let d = Cloud.vm cloud 0 in
  let meter = Meter.create () in
  Xenctl.enable_log_dirty ~meter d;
  check Alcotest.(list int) "clean start" [] (Xenctl.peek_dirty d);
  let kernel = Dom.kernel_exn d in
  let e = Option.get (Kernel.find_module kernel "hal.dll") in
  Mc_memsim.Addr_space.write_bytes (Kernel.aspace kernel) e.Ldr.dll_base
    (Bytes.of_string "XY");
  let dirty = Xenctl.peek_dirty ~meter d in
  check Alcotest.bool "write recorded" true (dirty <> []);
  check Alcotest.(list int) "clean drains" dirty (Xenctl.clean_dirty d);
  check Alcotest.(list int) "drained" [] (Xenctl.peek_dirty d);
  check Alcotest.int "hypercalls metered" 2
    (Meter.get meter Meter.Searcher).Meter.hypercalls

let test_pages_unchanged () =
  let cloud = Cloud.create ~vms:1 ~seed:5L () in
  let d = Cloud.vm cloud 0 in
  let kernel = Dom.kernel_exn d in
  let e = Option.get (Kernel.find_module kernel "hal.dll") in
  let pa =
    Option.get
      (Mc_memsim.Addr_space.translate (Kernel.aspace kernel) e.Ldr.dll_base)
  in
  let pfn = pa / Mc_memsim.Phys.frame_size in
  let epoch = Xenctl.memory_epoch d in
  let fp = [| (pfn, Xenctl.page_version d pfn) |] in
  let meter = Meter.create () in
  check Alcotest.bool "unchanged" true
    (Xenctl.pages_unchanged ~meter d ~epoch fp);
  check Alcotest.int "probe metered" 1
    (Meter.get meter Meter.Searcher).Meter.pfns_checked;
  Mc_memsim.Addr_space.write_bytes (Kernel.aspace kernel) e.Ldr.dll_base
    (Bytes.of_string "Z");
  check Alcotest.bool "write invalidates" false
    (Xenctl.pages_unchanged d ~epoch fp);
  check Alcotest.bool "epoch change invalidates" false
    (Xenctl.pages_unchanged d ~epoch:(epoch + 1) [||])

let () =
  Alcotest.run "hypervisor"
    [
      ( "cloud",
        [
          Alcotest.test_case "shape" `Quick test_cloud_shape;
          Alcotest.test_case "identical disks" `Quick test_cloud_identical_disks;
          Alcotest.test_case "isolated disks" `Quick test_cloud_disks_isolated;
          Alcotest.test_case "distinct bases" `Quick
            test_cloud_bases_differ_across_vms;
          Alcotest.test_case "reboot" `Quick test_cloud_reboot;
          Alcotest.test_case "busy counts" `Quick test_workloads_and_busy_counts;
        ] );
      ("stress", [ Alcotest.test_case "descriptors" `Quick test_stress ]);
      ( "sched",
        [
          Alcotest.test_case "share" `Quick test_share;
          Alcotest.test_case "single worker" `Quick test_run_jobs_single;
          Alcotest.test_case "contention" `Quick test_run_jobs_contention;
          Alcotest.test_case "parallel" `Quick test_run_jobs_parallel;
          Alcotest.test_case "uneven" `Quick test_run_jobs_uneven;
          Alcotest.test_case "edge cases" `Quick test_run_jobs_edge_cases;
          Alcotest.test_case "bus factor" `Quick test_bus_factor;
        ] );
      ( "meter",
        [
          Alcotest.test_case "phases" `Quick test_meter_phases;
          Alcotest.test_case "pricing" `Quick test_meter_pricing;
          Alcotest.test_case "names" `Quick test_phase_names;
          Alcotest.test_case "merge" `Quick test_meter_merge;
          Alcotest.test_case "hypercall pricing" `Quick test_hypercall_pricing;
        ] );
      ( "xenctl",
        [
          Alcotest.test_case "foreign page" `Quick test_xenctl_foreign_page;
          Alcotest.test_case "zero-length read" `Quick
            test_read_foreign_pa_zero_len;
          Alcotest.test_case "write-trap hypercalls" `Quick
            test_watch_hypercalls;
          Alcotest.test_case "kernel_exn" `Quick test_dom_kernel_exn;
          Alcotest.test_case "log-dirty" `Quick test_log_dirty;
          Alcotest.test_case "pages_unchanged" `Quick test_pages_unchanged;
        ] );
    ]
