(* Federation: hierarchical voting across hosts must add nothing and
   lose nothing. A 1-host fleet is bit-identical to the standalone
   orchestrator (property-tested over all six scenarios); version skew
   across hosts never votes; a whole-host outage degrades the verdict
   instead of corrupting the majority; and a coordinated pool-wide
   infection — invisible to the infected host's own vote — is caught by
   the cross-host ballot. *)

module F = Mc_federation
module Topo = F.Topology
module Co = F.Coordinator
module O = Modchecker.Orchestrator
module R = Modchecker.Report
module EC = Modchecker.Exit_code
module Infect = Mc_malware.Infect
module Cloud = Mc_hypervisor.Cloud

let check = Alcotest.(check bool)
let check_int = Alcotest.(check int)

let contains haystack needle =
  let nl = String.length needle and hl = String.length haystack in
  let rec go i =
    i + nl <= hl && (String.sub haystack i nl = needle || go (i + 1))
  in
  go 0

let verdict_eq a b =
  match (a, b) with
  | R.Intact, R.Intact | R.Infected, R.Infected -> true
  | R.Degraded _, R.Degraded _ -> true
  | _ -> false

let one_host_spec ~vms ~seed =
  {
    Topo.default_spec with
    Topo.regions = 1;
    racks_per_region = 1;
    hosts_per_rack = 1;
    vms_per_host = vms;
    seed;
  }

(* The six detection scenarios, staged identically on any cloud. Each
   returns the module whose integrity the infection disturbs. *)
let scenarios =
  [
    ( "opcode",
      fun cloud ->
        (match Infect.single_opcode_replacement cloud ~vm:1 with
        | Ok _ -> ()
        | Error e -> failwith e);
        "hal.dll" );
    ( "inline-hook",
      fun cloud ->
        (match Infect.inline_hook cloud ~vm:2 with
        | Ok _ -> ()
        | Error e -> failwith e);
        "hal.dll" );
    ( "stub",
      fun cloud ->
        (match Infect.stub_modification cloud ~vm:3 with
        | Ok _ -> ()
        | Error e -> failwith e);
        "hello.sys" );
    ( "dll-injection",
      fun cloud ->
        (match Infect.dll_injection cloud ~vm:0 with
        | Ok _ -> ()
        | Error e -> failwith e);
        "dummy.sys" );
    ( "dkom-hide",
      fun cloud ->
        (match Infect.hide_module cloud ~vm:2 ~module_name:"http.sys" with
        | Ok _ -> ()
        | Error e -> failwith e);
        "http.sys" );
    ( "pointer-hook",
      fun cloud ->
        (match Infect.pointer_hook cloud ~vm:1 with
        | Ok _ -> ()
        | Error e -> failwith e);
        "hal.dll" );
  ]

(* Satellite: a 1-host federation is the standalone checker, bit for
   bit — same deviants, same missing set, same verdict class, same exit
   codes, for every scenario and any seed. *)
let prop_single_host_parity =
  let gen = QCheck.Gen.(pair (int_range 0 5) (int_range 0 1000)) in
  QCheck.Test.make ~count:12
    ~name:"1-host federation == standalone orchestrator"
    (QCheck.make gen)
    (fun (which, seed_i) ->
      let vms = 4 in
      let seed = Int64.of_int (7000 + (seed_i * 13)) in
      let _, stage = List.nth scenarios which in
      let standalone = Cloud.create ~vms ~seed () in
      let topo = Topo.create ~spec:(one_host_spec ~vms ~seed) () in
      let fleet_cloud = (Topo.host topo 0).F.Host.cloud in
      let module_name = stage standalone in
      let module_name' = stage fleet_cloud in
      assert (String.equal module_name module_name');
      (* Survey parity. *)
      let s = O.survey standalone ~module_name in
      let r = Co.survey topo ~module_name in
      let fleet_deviants = List.map snd r.Co.fb_deviant_vms in
      let fleet_missing = List.map snd r.Co.fb_missing_vms in
      let ok_survey =
        fleet_deviants = s.R.deviant_vms
        && fleet_missing = s.R.missing_on
        && verdict_eq r.Co.fb_verdict
             (if s.R.deviant_vms <> [] || s.R.missing_on <> [] then R.Infected
              else s.R.s_verdict)
        && Co.exit_code r = EC.of_survey s
      in
      (* List-walk parity. *)
      let lc = O.survey_module_lists standalone in
      let fl = Co.survey_lists topo in
      let ok_lists =
        Co.exit_code_lists fl = EC.of_lists lc
        && List.length fl.Co.fl_per_host = 1
        &&
        match (List.hd fl.Co.fl_per_host).Co.hl_outcome with
        | Ok lc' ->
            List.length lc'.O.lc_discrepancies
            = List.length lc.O.lc_discrepancies
        | Error _ -> false
      in
      (* Targeted-check parity, routed to the host. *)
      let target = 1 in
      let ok_check =
        match
          ( O.check_module standalone ~target_vm:target ~module_name,
            Co.check topo ~host:0 ~vm:target ~module_name )
        with
        | Ok a, Ok b ->
            verdict_eq a.O.report.R.verdict b.O.report.R.verdict
            && a.O.report.R.flagged_artifacts = b.O.report.R.flagged_artifacts
            && a.O.report.R.matches = b.O.report.R.matches
            && a.O.report.R.total = b.O.report.R.total
        | Error _, Error _ -> true
        | _ -> false
      in
      Topo.shutdown topo;
      ok_survey && ok_lists && ok_check)

(* Satellite regression: a legitimate version split across hosts is not
   an infection. Two cohorts, zero deviants, exit 0. *)
let test_version_skew_clean () =
  let spec =
    {
      Topo.default_spec with
      Topo.hosts_per_rack = 4;
      vms_per_host = 3;
      patch_levels = [ 1; 2 ];
      seed = 41L;
    }
  in
  let topo = Topo.create ~spec () in
  let r = Co.survey topo ~module_name:"ndis.sys" in
  check "clean skewed fleet is intact" true (r.Co.fb_verdict = R.Intact);
  check_int "two cohorts" 2 (List.length r.Co.fb_cohorts);
  check "no deviant hosts" true (r.Co.fb_deviant_hosts = []);
  check "no deviant VMs" true (r.Co.fb_deviant_vms = []);
  check_int "all hosts responded" 4 r.Co.fb_hosts_responded;
  check_int "exit 0" EC.ok (Co.exit_code r);
  List.iter
    (fun (c : Co.cohort) ->
      check_int
        (Printf.sprintf "cohort %d agrees" c.Co.ch_level)
        1
        (List.length c.Co.ch_agreement))
    r.Co.fb_cohorts;
  Topo.shutdown topo

(* Acceptance: >= 8 hosts, three kernel builds cycled across them, fault
   injection armed — all six scenarios detected with their exact deviant
   sets and zero false positives from version skew. *)
let test_acceptance_heterogeneous_fleet () =
  let spec =
    {
      Topo.default_spec with
      Topo.hosts_per_rack = 4;
      racks_per_region = 2;
      vms_per_host = 3;
      patch_levels = [ 1; 2; 3 ];
      seed = 2012L;
      fault_spec =
        (match Mc_memsim.Faultplan.of_string "transient=0.01,seed=5" with
        | Ok s -> Some s
        | Error e -> failwith e);
    }
  in
  let topo = Topo.create ~spec () in
  check_int "eight hosts" 8 (Topo.host_count topo);
  check_int "three builds" 3 (List.length (Topo.distinct_levels topo));
  let cloud_of h = (Topo.host topo h).F.Host.cloud in
  let stage name = function
    | Ok (_ : Infect.infection) -> ()
    | Error e -> Alcotest.failf "staging %s: %s" name e
  in
  (* E1, E2, X-PTR all disturb hal.dll, on three different hosts (and
     three different builds). *)
  stage "opcode" (Infect.single_opcode_replacement (cloud_of 0) ~vm:1);
  stage "inline hook" (Infect.inline_hook (cloud_of 1) ~vm:0);
  stage "pointer hook" (Infect.pointer_hook (cloud_of 5) ~vm:2);
  (* E3 and E4 each bring their own driver. *)
  stage "stub" (Infect.stub_modification (cloud_of 2) ~vm:1);
  stage "dll injection" (Infect.dll_injection (cloud_of 3) ~vm:2);
  (* X-DKOM hides a module on one VM of host 4. *)
  stage "dkom" (Infect.hide_module (cloud_of 4) ~vm:1 ~module_name:"http.sys");
  let survey m = Co.survey topo ~module_name:m in
  let expect name m deviants missing =
    let r = survey m in
    Alcotest.(check (list (pair int int)))
      (name ^ ": deviant (host, vm) set") deviants r.Co.fb_deviant_vms;
    Alcotest.(check (list (pair int int)))
      (name ^ ": missing (host, vm) set") missing r.Co.fb_missing_vms;
    check (name ^ ": verdict infected") true (r.Co.fb_verdict = R.Infected);
    check_int (name ^ ": exit 2") EC.infected (Co.exit_code r);
    check (name ^ ": no skew deviant hosts") true (r.Co.fb_deviant_hosts = [])
  in
  expect "hal.dll" "hal.dll" [ (0, 1); (1, 0); (5, 2) ] [];
  expect "hello.sys" "hello.sys" [ (2, 1) ] [];
  expect "dummy.sys" "dummy.sys" [ (3, 2) ] [];
  (* The hidden module is a list-walk signal, host-local. *)
  let fl = Co.survey_lists topo in
  check "dkom detected" true (fl.Co.fl_verdict = R.Infected);
  let disc_hosts =
    List.filter_map
      (fun (h : Co.host_lists) ->
        match h.Co.hl_outcome with
        | Ok lc when lc.O.lc_discrepancies <> [] -> Some h.Co.hl_host
        | _ -> None)
      fl.Co.fl_per_host
  in
  (* Host 3's injected inject.dll shows up in its load list too — a
     genuine signal, not a false positive. No clean host is flagged. *)
  check "list discrepancies only on hosts 3 and 4" true
    (disc_hosts = [ 3; 4 ]);
  (* A module nobody touched stays clean across all three builds. *)
  let clean = survey "tcpip.sys" in
  check "tcpip.sys intact" true (clean.Co.fb_verdict = R.Intact);
  check_int "tcpip.sys: three cohorts" 3 (List.length clean.Co.fb_cohorts);
  check "tcpip.sys: zero skew false positives" true
    (clean.Co.fb_deviant_vms = [] && clean.Co.fb_deviant_hosts = []);
  Topo.shutdown topo

(* Satellite regression: a whole-host outage must degrade the verdict
   (exit 3) rather than silently shrink the electorate — even while a
   real infection is in view. *)
let test_host_outage_degrades () =
  let spec =
    {
      Topo.default_spec with
      Topo.hosts_per_rack = 3;
      vms_per_host = 4;
      seed = 99L;
    }
  in
  let topo = Topo.create ~spec () in
  (match Infect.inline_hook (Topo.host topo 0).F.Host.cloud ~vm:1 with
  | Ok _ -> ()
  | Error e -> Alcotest.failf "staging hook: %s" e);
  Topo.set_host_down topo 2;
  let r = Co.survey topo ~module_name:"hal.dll" in
  check "verdict degraded" true
    (match r.Co.fb_verdict with R.Degraded _ -> true | _ -> false);
  check_int "exit 3 outranks the infection" EC.degraded (Co.exit_code r);
  check "the infection is still reported" true
    (List.mem (0, 1) r.Co.fb_deviant_vms);
  check_int "one unreachable host" 1 (List.length r.Co.fb_unreachable_hosts);
  check_int "host 2 is the unreachable one" 2
    (fst (List.hd r.Co.fb_unreachable_hosts));
  check_int "responded" 2 r.Co.fb_hosts_responded;
  (* Bring it back: the fleet verdict recovers to plain Infected. *)
  Topo.set_host_up topo 2;
  let r' = Co.survey topo ~module_name:"hal.dll" in
  check "recovered to infected" true (r'.Co.fb_verdict = R.Infected);
  check_int "exit 2 after recovery" EC.infected (Co.exit_code r');
  Topo.shutdown topo

(* The layer the paper's single pool cannot have: every VM of one host
   infected identically. The host's own vote sees a unanimous (wrong)
   pool; only the cross-host ballot can out it. *)
let test_coordinated_host_infection () =
  let spec =
    {
      Topo.default_spec with
      Topo.hosts_per_rack = 3;
      vms_per_host = 3;
      seed = 4242L;
    }
  in
  let topo = Topo.create ~spec () in
  let victim = (Topo.host topo 1).F.Host.cloud in
  for vm = 0 to Cloud.vm_count victim - 1 do
    match Infect.inline_hook victim ~vm with
    | Ok _ -> ()
    | Error e -> Alcotest.failf "hooking vm %d: %s" vm e
  done;
  let r = Co.survey topo ~module_name:"hal.dll" in
  check "fleet verdict infected" true (r.Co.fb_verdict = R.Infected);
  let host1_vms_deviant =
    List.filter (fun (h, _) -> h = 1) r.Co.fb_deviant_vms
  in
  check "host 1 is outed (by ballot or by its own split)" true
    (r.Co.fb_deviant_hosts = [ 1 ] || List.length host1_vms_deviant = 3);
  check "hosts 0 and 2 are clean" true
    (List.for_all (fun (h, _) -> h = 1) r.Co.fb_deviant_vms
    && not (List.mem 0 r.Co.fb_deviant_hosts)
    && not (List.mem 2 r.Co.fb_deviant_hosts));
  check_int "exit 2" EC.infected (Co.exit_code r);
  Topo.shutdown topo

(* A slow rack pushing hosts past the deadline is an availability fault,
   not an integrity one. *)
let test_slow_rack_deadline () =
  let spec =
    {
      Topo.default_spec with
      Topo.racks_per_region = 2;
      hosts_per_rack = 2;
      vms_per_host = 3;
      slow_racks = [ (1, 50.0) ];
      seed = 7L;
    }
  in
  let topo = Topo.create ~spec () in
  (* A deadline generous for nominal hosts, hopeless at 50x. *)
  let nominal =
    let r =
      Co.survey
        ~config:{ Co.default_config with Co.host_deadline_s = None }
        topo ~module_name:"ndis.sys"
    in
    r.Co.fb_critical_path_s /. 50.0
  in
  let config =
    { Co.default_config with Co.host_deadline_s = Some (nominal *. 25.0) }
  in
  let r = Co.survey ~config topo ~module_name:"ndis.sys" in
  check "slow rack degrades" true
    (match r.Co.fb_verdict with R.Degraded _ -> true | _ -> false);
  check_int "both slow hosts missed" 2 (List.length r.Co.fb_unreachable_hosts);
  check "the slow hosts are rack 1's" true
    (List.map fst r.Co.fb_unreachable_hosts = [ 2; 3 ]);
  check "no integrity signal" true (r.Co.fb_deviant_vms = []);
  Topo.shutdown topo

(* Engine-backed hosts answer exactly like direct orchestrator calls. *)
let test_engine_parity () =
  let spec =
    {
      Topo.default_spec with
      Topo.hosts_per_rack = 2;
      vms_per_host = 3;
      seed = 3030L;
    }
  in
  let run use_engines =
    let topo = Topo.create ~spec () in
    (match Infect.stub_modification (Topo.host topo 1).F.Host.cloud ~vm:2 with
    | Ok _ -> ()
    | Error e -> Alcotest.failf "staging stub: %s" e);
    let config = { Co.default_config with Co.use_engines; Co.workers = 2 } in
    let r = Co.survey ~config topo ~module_name:"hello.sys" in
    let fl = Co.survey_lists ~config topo in
    Topo.shutdown topo;
    (r.Co.fb_deviant_vms, r.Co.fb_missing_vms, Co.exit_code r,
     Co.exit_code_lists fl)
  in
  let direct = run false and engined = run true in
  let d1, m1, e1, l1 = direct and d2, m2, e2, l2 = engined in
  Alcotest.(check (list (pair int int))) "same deviants" d1 d2;
  Alcotest.(check (list (pair int int))) "same missing" m1 m2;
  check_int "same exit" e1 e2;
  check_int "same lists exit" l1 l2;
  check "the stub VM was caught" true (List.mem (1, 2) d1)

(* The federation simtest: generated campaigns of host outages,
   coordinated infections, and version skew must agree with the fleet
   oracle sweep after sweep, deterministically. *)
let test_fedsim_campaigns () =
  let module FS = Mc_simtest.Fedsim in
  let r = FS.run_campaigns ~seed:900L ~steps:10 ~campaigns:3 () in
  check_int "no oracle disagreements" 0 (List.length r.FS.fc_failures);
  check "sweeps actually ran" true (r.FS.fc_sweeps > 0);
  let r' = FS.run_campaigns ~seed:900L ~steps:10 ~campaigns:3 () in
  check "byte-identical transcript on replay" true
    (String.equal r.FS.fc_transcript r'.FS.fc_transcript)

(* JSON/table renderings stay total and tagged. *)
let test_renderings () =
  let topo = Topo.create ~spec:(one_host_spec ~vms:3 ~seed:11L) () in
  let r = Co.survey topo ~module_name:"hal.dll" in
  let json = Mc_util.Json.to_string (Co.to_json r) in
  check "json schema tag" true (contains json "modchecker/federation@1");
  let table = Co.to_table topo r in
  check "table names host0" true (contains table "host0");
  check "summary prefixed" true (contains (Co.summary r) "FLEET");
  Topo.shutdown topo

let () =
  Alcotest.run "federation"
    [
      ( "parity",
        List.map QCheck_alcotest.to_alcotest [ prop_single_host_parity ] );
      ( "voting",
        [
          Alcotest.test_case "version skew clean" `Quick
            test_version_skew_clean;
          Alcotest.test_case "coordinated host infection" `Quick
            test_coordinated_host_infection;
        ] );
      ( "faults",
        [
          Alcotest.test_case "host outage degrades" `Quick
            test_host_outage_degrades;
          Alcotest.test_case "slow rack deadline" `Quick
            test_slow_rack_deadline;
        ] );
      ( "acceptance",
        [
          Alcotest.test_case "heterogeneous fleet, six scenarios" `Quick
            test_acceptance_heterogeneous_fleet;
        ] );
      ( "engine",
        [
          Alcotest.test_case "engine parity" `Quick test_engine_parity;
          Alcotest.test_case "renderings" `Quick test_renderings;
        ] );
      ( "simtest",
        [
          Alcotest.test_case "fedsim campaigns" `Quick test_fedsim_campaigns;
        ] );
    ]
