(* Mc_engine: the long-lived sharded checking service. The contract under
   test: the engine changes who does the work and what it costs — never
   what is decided. Plus the service-level guarantees: coalescing,
   backpressure, and drain settling every admitted deferred. *)

module Cloud = Mc_hypervisor.Cloud
module Meter = Mc_hypervisor.Meter
module Costs = Mc_hypervisor.Costs
module Orchestrator = Modchecker.Orchestrator
module Report = Modchecker.Report
module Artifact = Modchecker.Artifact
module Patrol = Modchecker.Patrol
module Infect = Mc_malware.Infect
module Engine = Mc_engine
module Wire = Mc_engine.Wire
module Serve = Mc_engine.Serve
module Exit_code = Modchecker.Exit_code
module Deferred = Mc_parallel.Deferred

let check = Alcotest.check

let expect_ok = function Ok _ -> () | Error e -> failwith e

let ok_cell = function
  | Ok c -> c
  | Error r -> Alcotest.fail (Engine.rejection_message r)

let verdict_key = function
  | Report.Intact -> "intact"
  | Report.Infected -> "infected"
  | Report.Degraded _ -> "degraded"

(* --- verdict parity: engine vs standalone, all six scenarios -------------- *)

(* Same cloud, same question: the standalone one-shot answer and the
   engine's answer must agree artifact-for-artifact. Checks don't mutate
   cloud state, so running both against one cloud is an exact A/B. *)
let check_parity ~seed ~infect ~module_name () =
  let cloud = Cloud.create ~vms:5 ~seed () in
  expect_ok (infect cloud);
  let standalone =
    match Orchestrator.check_module cloud ~target_vm:1 ~module_name with
    | Ok o -> o.Orchestrator.report
    | Error e -> Alcotest.fail e
  in
  let engine = Engine.create ~shards:2 cloud in
  let r = Engine.run engine (Engine.Check { vm = 1; module_name }) in
  Engine.drain engine;
  match r.Engine.r_outcome with
  | Engine.Checked (Ok o) ->
      let er = o.Orchestrator.report in
      check Alcotest.string "verdict"
        (verdict_key standalone.Report.verdict)
        (verdict_key er.Report.verdict);
      check
        Alcotest.(list string)
        "flagged artifacts"
        (List.map Artifact.kind_name standalone.Report.flagged_artifacts)
        (List.map Artifact.kind_name er.Report.flagged_artifacts);
      check Alcotest.int "matches" standalone.Report.matches er.Report.matches;
      check Alcotest.int "total" standalone.Report.total er.Report.total
  | Engine.Checked (Error e) -> Alcotest.fail ("engine check errored: " ^ e)
  | _ -> Alcotest.fail "engine returned a non-check outcome"

let test_parity_e1_opcode () =
  check_parity ~seed:921L
    ~infect:(fun c -> Infect.single_opcode_replacement c ~vm:1)
    ~module_name:"hal.dll" ()

let test_parity_e2_hook () =
  check_parity ~seed:922L
    ~infect:(fun c -> Infect.inline_hook c ~vm:1)
    ~module_name:"hal.dll" ()

let test_parity_e3_stub () =
  check_parity ~seed:923L
    ~infect:(fun c -> Infect.stub_modification c ~vm:1)
    ~module_name:"hello.sys" ()

let test_parity_e4_injection () =
  check_parity ~seed:924L
    ~infect:(fun c -> Infect.dll_injection c ~vm:1)
    ~module_name:"dummy.sys" ()

let test_parity_ext_pointer_hook () =
  check_parity ~seed:925L
    ~infect:(fun c -> Infect.pointer_hook c ~vm:1)
    ~module_name:"hal.dll" ()

(* Scenario six: a DKOM-hidden module betrays itself through the list
   comparison — as a Lists request it must find the same discrepancy. *)
let test_parity_ext_dkom_lists () =
  let cloud = Cloud.create ~vms:5 ~seed:926L () in
  expect_ok (Infect.hide_module cloud ~vm:2 ~module_name:"tcpip.sys");
  let standalone = Orchestrator.survey_module_lists cloud in
  let engine = Engine.create cloud in
  let r = Engine.run engine Engine.Lists in
  Engine.drain engine;
  match r.Engine.r_outcome with
  | Engine.Listed lc ->
      let names (c : Orchestrator.list_comparison) =
        List.map
          (fun d -> d.Orchestrator.ld_module)
          c.Orchestrator.lc_discrepancies
      in
      check Alcotest.(list string) "discrepant modules" (names standalone)
        (names lc);
      check Alcotest.bool "hidden module found" true
        (List.mem "tcpip.sys" (names lc));
      let missing (c : Orchestrator.list_comparison) =
        List.concat_map
          (fun d -> d.Orchestrator.missing_on)
          c.Orchestrator.lc_discrepancies
      in
      check Alcotest.(list int) "missing-on sets" (missing standalone)
        (missing lc)
  | _ -> Alcotest.fail "engine returned a non-lists outcome"

(* And survey parity on an infected pool: same deviants, same verdict. *)
let test_parity_survey () =
  let cloud = Cloud.create ~vms:6 ~seed:927L () in
  expect_ok (Infect.inline_hook cloud ~vm:3);
  let standalone = Orchestrator.survey cloud ~module_name:"hal.dll" in
  let engine = Engine.create cloud in
  let r = Engine.run engine (Engine.Survey { module_name = "hal.dll" }) in
  Engine.drain engine;
  match r.Engine.r_outcome with
  | Engine.Surveyed s ->
      check Alcotest.(list int) "deviants" standalone.Report.deviant_vms
        s.Report.deviant_vms;
      check Alcotest.(list int) "missing" standalone.Report.missing_on
        s.Report.missing_on;
      check Alcotest.string "verdict"
        (verdict_key standalone.Report.s_verdict)
        (verdict_key s.Report.s_verdict)
  | _ -> Alcotest.fail "engine returned a non-survey outcome"

(* --- coalescing ----------------------------------------------------------- *)

(* One shard services sequentially, so a duplicate submitted behind a
   long blocker is deterministically still queued — it must join the
   first submission's deferred, not run again. *)
let test_coalesce_duplicates () =
  let cloud = Cloud.create ~vms:6 ~seed:930L () in
  let engine = Engine.create ~shards:1 ~workers_per_shard:2 cloud in
  let blocker =
    ok_cell (Engine.submit engine (Engine.Survey { module_name = "ntoskrnl.exe" }))
  in
  let a = ok_cell (Engine.submit engine (Engine.Survey { module_name = "hal.dll" })) in
  let b = ok_cell (Engine.submit engine (Engine.Survey { module_name = "hal.dll" })) in
  check Alcotest.bool "duplicate shares the deferred" true (a == b);
  let ra = Deferred.await a in
  ignore (Deferred.await blocker);
  Engine.drain engine;
  (match ra.Engine.r_outcome with
  | Engine.Surveyed s ->
      check Alcotest.(list int) "clean pool" [] s.Report.deviant_vms
  | _ -> Alcotest.fail "expected a survey outcome");
  let st = Engine.stats engine in
  check Alcotest.int "one coalesce hit" 1 st.Engine.st_coalesced;
  check Alcotest.int "two admitted" 2 st.Engine.st_submitted;
  check Alcotest.int "two serviced" 2 st.Engine.st_completed

(* The acceptance criterion: a batch of N overlapping requests through
   one engine performs measurably fewer metered VMI operations than the
   same N requests run standalone. Coalescing eats exact duplicates and
   the shared incremental state eats re-asks; either way the engine's
   merged meter must come in far under N independent runs. *)
let test_batch_cheaper_than_standalone () =
  let seed = 931L in
  let modules = [ "hal.dll"; "http.sys"; "ntoskrnl.exe" ] in
  let dup = 4 in
  let cloud = Cloud.create ~vms:8 ~seed () in
  let standalone = Meter.create () in
  List.iter
    (fun m ->
      for _ = 1 to dup do
        ignore (Orchestrator.survey ~meter:standalone cloud ~module_name:m)
      done)
    modules;
  let engine = Engine.create ~shards:2 ~workers_per_shard:2 cloud in
  let cells =
    List.concat_map
      (fun m ->
        List.init dup (fun _ ->
            ok_cell (Engine.submit engine (Engine.Survey { module_name = m }))))
      modules
  in
  List.iter (fun c -> ignore (Deferred.await c)) cells;
  Engine.drain engine;
  let costs = Costs.default in
  let standalone_s = Meter.total_cpu_seconds costs standalone in
  let engine_s = Meter.total_cpu_seconds costs (Engine.meter engine) in
  check Alcotest.bool
    (Printf.sprintf "engine %.4fs < half of standalone %.4fs" engine_s
       standalone_s)
    true
    (engine_s < standalone_s /. 2.0);
  let st = Engine.stats engine in
  check Alcotest.bool "some submissions coalesced" true
    (st.Engine.st_coalesced > 0);
  check Alcotest.int "every admitted request serviced" st.Engine.st_submitted
    st.Engine.st_completed

(* --- priority ------------------------------------------------------------- *)

let test_priority_jumps_queue () =
  let cloud = Cloud.create ~vms:10 ~seed:932L () in
  let engine = Engine.create ~shards:1 ~workers_per_shard:2 cloud in
  (* A slow blocker occupies the single shard; everything submitted in
     the next few microseconds queues behind it. *)
  let blocker =
    ok_cell (Engine.submit engine (Engine.Survey { module_name = "ntoskrnl.exe" }))
  in
  let low =
    ok_cell
      (Engine.submit ~priority:Engine.Low engine
         (Engine.Survey { module_name = "hal.dll" }))
  in
  let high =
    ok_cell
      (Engine.submit ~priority:Engine.High engine
         (Engine.Survey { module_name = "http.sys" }))
  in
  let rl = Deferred.await low in
  let rh = Deferred.await high in
  ignore (Deferred.await blocker);
  Engine.drain engine;
  check Alcotest.bool "high-priority request waited less than the low one"
    true
    (rh.Engine.r_wait_s < rl.Engine.r_wait_s)

(* --- backpressure --------------------------------------------------------- *)

let test_backpressure_rejects_beyond_bound () =
  let cloud = Cloud.create ~vms:6 ~seed:933L () in
  let engine =
    Engine.create ~shards:1 ~workers_per_shard:1 ~queue_bound:2 cloud
  in
  (* Six distinct submissions land within microseconds; a bound-2 queue
     behind a single shard cannot admit them all. *)
  let results =
    List.map
      (fun m -> Engine.submit engine (Engine.Survey { module_name = m }))
      [
        "hal.dll"; "http.sys"; "ntoskrnl.exe"; "tcpip.sys"; "ntfs.sys";
        "win32k.sys";
      ]
  in
  let accepted = List.filter_map Result.to_option results in
  let rejected =
    List.filter_map
      (function
        | Error (Engine.Queue_full n) -> Some n
        | Error Engine.Draining ->
            Alcotest.fail "draining rejection before drain"
        | Ok _ -> None)
      results
  in
  check Alcotest.bool "at least one Queue_full" true (rejected <> []);
  List.iter (fun n -> check Alcotest.int "reported bound" 2 n) rejected;
  check Alcotest.bool "the bound's worth was admitted" true
    (List.length accepted >= 2);
  Engine.drain engine;
  List.iter
    (fun c ->
      check Alcotest.bool "accepted deferred settled" true
        (Deferred.is_filled c);
      ignore (Deferred.await c))
    accepted;
  let st = Engine.stats engine in
  check Alcotest.int "rejections counted" (List.length rejected)
    st.Engine.st_rejected;
  check Alcotest.bool "queue depth never exceeded the bound" true
    (st.Engine.st_max_queue_depth <= 2)

(* --- drain ---------------------------------------------------------------- *)

(* Drain's contract: every deferred ever returned by submit is settled
   when drain returns — including requests that error (absent modules,
   out-of-range VMs) on a pool under fault injection. *)
let test_drain_settles_everything_under_faults () =
  let faults =
    {
      Mc_memsim.Faultplan.none with
      Mc_memsim.Faultplan.transient_rate = 0.15;
      paged_out_rate = 0.05;
      fault_seed = 11;
    }
  in
  let cloud = Cloud.create ~vms:6 ~seed:934L ~fault_spec:faults () in
  let engine = Engine.create ~shards:2 ~workers_per_shard:2 cloud in
  let requests =
    [
      Engine.Check { vm = 0; module_name = "hal.dll" };
      Engine.Check { vm = 1; module_name = "http.sys" };
      Engine.Check { vm = 2; module_name = "no_such.sys" };
      Engine.Check { vm = 99; module_name = "hal.dll" };
      Engine.Survey { module_name = "ntoskrnl.exe" };
      Engine.Survey { module_name = "also_missing.sys" };
      Engine.Lists;
    ]
  in
  let cells = List.map (fun r -> ok_cell (Engine.submit engine r)) requests in
  (* No awaiting first: drain alone must settle them. *)
  Engine.drain engine;
  List.iteri
    (fun i c ->
      check Alcotest.bool
        (Printf.sprintf "request %d settled by drain" i)
        true (Deferred.is_filled c))
    cells;
  (* Settled means answered or poisoned — an await never hangs now. A
     check of a VM outside the pool surfaces as its error/exception. *)
  List.iter (fun c -> try ignore (Deferred.await c) with _ -> ()) cells;
  (* Drain is idempotent and the engine admits nothing afterwards. *)
  Engine.drain engine;
  (match Engine.submit engine Engine.Lists with
  | Error Engine.Draining -> ()
  | Ok _ -> Alcotest.fail "submit admitted after drain"
  | Error (Engine.Queue_full _) -> Alcotest.fail "wrong rejection after drain");
  match Engine.run engine Engine.Lists with
  | exception Failure _ -> ()
  | _ -> Alcotest.fail "run must raise after drain"

(* --- patrol through the engine -------------------------------------------- *)

let test_engine_patrol_detects () =
  let cloud = Cloud.create ~vms:5 ~seed:935L () in
  let engine = Engine.create ~shards:2 cloud in
  let config =
    {
      Patrol.default_config with
      Patrol.watch = [ "hal.dll"; "http.sys" ];
      interval_s = 30.0;
    }
  in
  let infect c = expect_ok (Infect.inline_hook c ~vm:2) in
  let o =
    Engine.patrol ~config ~events:[ (50.0, infect) ] engine ~until:130.0
  in
  (* The engine stays serviceable after a patrol... *)
  let r = Engine.run engine (Engine.Survey { module_name = "hal.dll" }) in
  Engine.drain engine;
  (match Patrol.time_to_detect o ~module_name:"hal.dll" ~infected_at:50.0 with
  | Some ttd ->
      check Alcotest.bool "detected within one sweep interval" true
        (ttd <= 31.0)
  | None -> Alcotest.fail "patrol through the engine missed the infection");
  match r.Engine.r_outcome with
  | Engine.Surveyed s ->
      check Alcotest.bool "post-patrol survey sees the deviant" true
        (List.mem 2 s.Report.deviant_vms)
  | _ -> Alcotest.fail "expected a survey outcome"

(* --- request parsing ------------------------------------------------------ *)

let test_request_parsing () =
  (match Wire.parse_line "check 0 hal.dll high" with
  | Ok
      {
        Wire.f_priority = Engine.High;
        f_request = Engine.Check { vm = 0; module_name = "hal.dll" };
      } ->
      ()
  | Ok _ -> Alcotest.fail "wrong frame"
  | Error e -> Alcotest.fail e);
  (match Wire.parse_line "survey - http.sys" with
  | Ok
      {
        Wire.f_priority = Engine.Normal;
        f_request = Engine.Survey { module_name = "http.sys" };
      } ->
      ()
  | Ok _ -> Alcotest.fail "wrong frame"
  | Error e -> Alcotest.fail e);
  (match Wire.parse_line "lists - -" with
  | Ok { Wire.f_request = Engine.Lists; _ } -> ()
  | Ok _ -> Alcotest.fail "wrong frame"
  | Error e -> Alcotest.fail e);
  (match Wire.parse_line "frobnicate - -" with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "unknown kind must not parse");
  (match Wire.parse_line "check 0 hal.dll low" with
  | Ok { Wire.f_priority = Engine.Low; _ } -> ()
  | _ -> Alcotest.fail "priority field");
  (match Wire.parse_line "survey - http.sys" with
  | Ok { Wire.f_priority = Engine.Normal; _ } -> ()
  | _ -> Alcotest.fail "default priority");
  match Wire.parse_line "check 1 hal.dll -" with
  | Ok { Wire.f_priority = Engine.Normal; _ } -> ()
  | _ -> Alcotest.fail "dash priority defaults"

(* --- run: bounded-exponential backoff ------------------------------------- *)

let test_backoff_schedule () =
  let d0 = Engine.backoff_delay_s ~attempt:0 in
  check (Alcotest.float 1e-9) "base delay" 0.0005 d0;
  check (Alcotest.float 1e-9) "doubles per attempt" (2.0 *. d0)
    (Engine.backoff_delay_s ~attempt:1);
  let rec monotone a =
    a > 16
    || Engine.backoff_delay_s ~attempt:a
       <= Engine.backoff_delay_s ~attempt:(a + 1) +. 1e-12
       && monotone (a + 1)
  in
  check Alcotest.bool "monotone nondecreasing" true (monotone 0);
  check (Alcotest.float 1e-9) "capped at 50 ms" 0.05
    (Engine.backoff_delay_s ~attempt:1000)

(* The old `run` slept a fixed interval on a full queue; the regression
   guard: stuff the queue to rejection, then `run` must wait its turn by
   metered backoff — and still come back with a verdict. *)
let test_run_backs_off_on_full_queue () =
  let cloud = Cloud.create ~vms:5 ~seed:951L () in
  let engine =
    Engine.create ~shards:1 ~workers_per_shard:1 ~queue_bound:2 cloud
  in
  let stuffing =
    [ "hal.dll"; "ntoskrnl.exe"; "tcpip.sys"; "http.sys"; "dummy.sys";
      "hello.sys" ]
  in
  let cells =
    List.filter_map
      (fun m ->
        match Engine.submit engine (Engine.Survey { module_name = m }) with
        | Ok c -> Some c
        | Error _ -> None)
      stuffing
  in
  let r = Engine.run engine (Engine.Check { vm = 1; module_name = "hal.dll" }) in
  let st = Engine.stats engine in
  Engine.drain engine;
  List.iter (fun c -> ignore (Deferred.await c)) cells;
  (match r.Engine.r_outcome with
  | Engine.Checked (Ok _) -> ()
  | Engine.Checked (Error e) -> Alcotest.fail e
  | _ -> Alcotest.fail "expected a check outcome");
  check Alcotest.bool "run backed off at least once" true
    (st.Engine.st_run_backoffs > 0)

(* --- stream vs batch: same lines, same verdicts, same exit ----------------- *)

let serve_session ~seed ~infect ~request_lines ~window () =
  let cloud = Cloud.create ~vms:5 ~seed () in
  expect_ok (infect cloud);
  let engine = Engine.create ~shards:2 cloud in
  let remaining = ref request_lines in
  let next () =
    match !remaining with
    | [] -> None
    | l :: tl ->
        remaining := tl;
        Some l
  in
  let verdicts = ref [] in
  let emit = function
    | Wire.Resp r -> verdicts := (r.Wire.rs_seq, Wire.verdict_key r) :: !verdicts
    | _ -> ()
  in
  let sv = Serve.run ~window ~emit engine ~next in
  Engine.drain engine;
  (List.sort compare !verdicts, sv.Serve.sv_exit)

(* A window-1 stream and a whole-file batch must decide identically for
   every detection scenario — the window changes pacing, never verdicts. *)
let test_stream_batch_parity () =
  let scenarios =
    [
      ( "E1 opcode", 931L,
        (fun c -> Infect.single_opcode_replacement c ~vm:1),
        [ "check 1 hal.dll high"; "survey - hal.dll"; "check 2 hal.dll low" ] );
      ( "E2 inline hook", 932L,
        (fun c -> Infect.inline_hook c ~vm:1),
        [ "check 1 hal.dll"; "survey - hal.dll -"; "lists - -" ] );
      ( "E3 stub", 933L,
        (fun c -> Infect.stub_modification c ~vm:1),
        [ "check 1 hello.sys"; "survey - hello.sys" ] );
      ( "E4 injection", 934L,
        (fun c -> Infect.dll_injection c ~vm:1),
        [ "check 1 dummy.sys high"; "survey - dummy.sys low" ] );
      ( "X pointer hook", 935L,
        (fun c -> Infect.pointer_hook c ~vm:1),
        [ "check 1 hal.dll"; "check 1 hal.dll"; "survey - hal.dll" ] );
      ( "X DKOM lists", 936L,
        (fun c -> Infect.hide_module c ~vm:2 ~module_name:"tcpip.sys"),
        [ "lists - -"; "check 0 hal.dll" ] );
    ]
  in
  List.iter
    (fun (name, seed, infect, request_lines) ->
      let batch_v, batch_exit =
        serve_session ~seed ~infect ~request_lines ~window:max_int ()
      in
      let stream_v, stream_exit =
        serve_session ~seed ~infect ~request_lines ~window:1 ()
      in
      check
        Alcotest.(list (pair int string))
        (name ^ ": per-request verdicts") batch_v stream_v;
      check Alcotest.int (name ^ ": exit code") batch_exit stream_exit;
      check Alcotest.int
        (name ^ ": infection reaches the exit status")
        Exit_code.infected stream_exit)
    scenarios

(* --- versioned report JSON ------------------------------------------------ *)

let reparse json =
  match Mc_util.Json.of_string (Mc_util.Json.to_string json) with
  | Ok j -> j
  | Error e -> Alcotest.fail ("reprinted JSON does not parse: " ^ e)

let test_report_json_roundtrip () =
  let cloud = Cloud.create ~vms:5 ~seed:940L () in
  expect_ok (Infect.inline_hook cloud ~vm:2);
  let report =
    match Orchestrator.check_module cloud ~target_vm:2 ~module_name:"hal.dll" with
    | Ok o -> o.Orchestrator.report
    | Error e -> Alcotest.fail e
  in
  match Report.of_json (reparse (Report.to_json report)) with
  | Ok r -> check Alcotest.bool "round-trip equal" true (r = report)
  | Error e -> Alcotest.fail e

let test_survey_json_roundtrip () =
  let cloud = Cloud.create ~vms:6 ~seed:941L () in
  expect_ok (Infect.dll_injection cloud ~vm:3);
  let s = Orchestrator.survey cloud ~module_name:"dummy.sys" in
  match Report.survey_of_json (reparse (Report.survey_to_json s)) with
  | Ok s' -> check Alcotest.bool "round-trip equal" true (s' = s)
  | Error e -> Alcotest.fail e

let test_json_schema_rejected () =
  let cloud = Cloud.create ~vms:3 ~seed:942L () in
  let report =
    match Orchestrator.check_module cloud ~target_vm:0 ~module_name:"hal.dll" with
    | Ok o -> o.Orchestrator.report
    | Error e -> Alcotest.fail e
  in
  let json = Report.to_json report in
  (* A survey document is not a module report, and vice versa. *)
  (match Report.survey_of_json json with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "survey_of_json must reject a report document");
  match Report.of_json (Report.survey_to_json (Orchestrator.survey cloud ~module_name:"hal.dll")) with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "of_json must reject a survey document"

(* qcheck: round-trip holds for arbitrary well-formed records, not just
   ones the pipeline happens to produce. *)

let gen_hex =
  QCheck.Gen.(map (Printf.sprintf "%08x") (int_bound 0xFFFFFF))

let gen_kind =
  QCheck.Gen.oneofl
    Artifact.
      [
        Dos_header; Nt_header; File_header; Optional_header;
        Section_header ".text"; Section_data ".text"; Section_data ".rdata";
        Section_data "PAGE";
      ]

let gen_verdict =
  QCheck.Gen.(
    oneof
      [
        return Report.Intact;
        return Report.Infected;
        map (fun n -> Report.Degraded (Printf.sprintf "%d of 5 responded" n))
          (int_bound 4);
      ])

let gen_artifact_verdict =
  QCheck.Gen.(
    map
      (fun (kind, m, d1, d2, adj) ->
        {
          Modchecker.Checker.av_kind = kind;
          av_match = m;
          av_digest1 = d1;
          av_digest2 = d2;
          av_adjusted = adj;
        })
      (tup5 gen_kind bool gen_hex gen_hex (int_bound 64)))

let gen_comparison =
  QCheck.Gen.(
    map
      (fun (vm, verdicts, adj) ->
        let all_match =
          List.for_all (fun v -> v.Modchecker.Checker.av_match) verdicts
        in
        {
          Report.other_vm = vm;
          result =
            { Modchecker.Checker.verdicts; all_match; total_adjusted = adj };
        })
      (tup3 (int_bound 15) (list_size (int_bound 6) gen_artifact_verdict)
         (int_bound 512)))

let gen_module_report =
  QCheck.Gen.(
    map
      (fun ((name, vm, comparisons, verdict), (unreachable, surveyed)) ->
        let total = List.length comparisons in
        let matches =
          List.length
            (List.filter (fun c -> c.Report.result.Modchecker.Checker.all_match)
               comparisons)
        in
        {
          Report.module_name = name;
          target_vm = vm;
          comparisons;
          matches;
          total;
          majority_ok = 2 * matches > total;
          flagged_artifacts =
            List.sort_uniq compare
              (List.concat_map
                 (fun c ->
                   List.filter_map
                     (fun v ->
                       if v.Modchecker.Checker.av_match then None
                       else Some v.Modchecker.Checker.av_kind)
                     c.Report.result.Modchecker.Checker.verdicts)
                 comparisons);
          unreachable;
          surveyed;
          responded = surveyed - List.length unreachable;
          voted = total;
          verdict;
        })
      (tup2
         (tup4
            (oneofl [ "hal.dll"; "ntoskrnl.exe"; "hello.sys" ])
            (int_bound 15)
            (list_size (int_bound 5) gen_comparison)
            gen_verdict)
         (tup2
            (list_size (int_bound 3)
               (tup2 (int_bound 15) (oneofl [ "unreachable"; "timed out" ])))
            (int_bound 15))))

let gen_survey =
  QCheck.Gen.(
    map
      (fun ((name, vms, missing, deviants), (classes, pairs, unreachable, verdict)) ->
        {
          Report.survey_module = name;
          vm_indices = vms;
          missing_on = missing;
          deviant_vms = deviants;
          agreement_classes = classes;
          pairwise_matches = pairs;
          unreachable_on = unreachable;
          s_surveyed = List.length vms;
          s_responded = List.length vms - List.length unreachable;
          s_voted = List.length vms - List.length missing;
          s_verdict = verdict;
        })
      (tup2
         (tup4
            (oneofl [ "hal.dll"; "tcpip.sys" ])
            (list_size (int_bound 8) (int_bound 15))
            (list_size (int_bound 3) (int_bound 15))
            (list_size (int_bound 3) (int_bound 15)))
         (tup4
            (list_size (int_bound 3) (list_size (int_bound 4) (int_bound 15)))
            (list_size (int_bound 6)
               (tup2 (tup2 (int_bound 15) (int_bound 15)) bool))
            (list_size (int_bound 2)
               (tup2 (int_bound 15) (oneofl [ "gone"; "torn" ])))
            gen_verdict)))

let prop_report_roundtrip =
  QCheck.Test.make ~count:200 ~name:"report JSON round-trips"
    (QCheck.make gen_module_report) (fun r ->
      match Report.of_json (reparse (Report.to_json r)) with
      | Ok r' -> r' = r
      | Error e -> QCheck.Test.fail_reportf "parse failed: %s" e)

let prop_survey_roundtrip =
  QCheck.Test.make ~count:200 ~name:"survey JSON round-trips"
    (QCheck.make gen_survey) (fun s ->
      match Report.survey_of_json (reparse (Report.survey_to_json s)) with
      | Ok s' -> s' = s
      | Error e -> QCheck.Test.fail_reportf "parse failed: %s" e)

(* qcheck: the wire reply codec round-trips arbitrary well-formed frames.
   Floats are drawn as multiples of 1/64 — exact in binary, so the
   emitter's shortest-form printing cannot perturb them. *)

let gen_q64 = QCheck.Gen.(map (fun n -> float_of_int n /. 64.0) (int_bound 4096))

let gen_priority = QCheck.Gen.oneofl [ Engine.High; Engine.Normal; Engine.Low ]

let gen_request =
  QCheck.Gen.(
    oneof
      [
        map2
          (fun vm m -> Engine.Check { vm; module_name = m })
          (int_bound 15)
          (oneofl [ "hal.dll"; "http.sys" ]);
        map
          (fun m -> Engine.Survey { module_name = m })
          (oneofl [ "hal.dll"; "tcpip.sys" ]);
        return Engine.Lists;
      ])

let gen_frame =
  QCheck.Gen.(
    map2
      (fun p r -> { Wire.f_priority = p; f_request = r })
      gen_priority gen_request)

let gen_lists_comparison =
  QCheck.Gen.(
    map2
      (fun ds unreachable ->
        { Orchestrator.lc_discrepancies = ds; lc_unreachable = unreachable })
      (list_size (int_bound 3)
         (map
            (fun (m, p, miss) ->
              { Orchestrator.ld_module = m; present_on = p; missing_on = miss })
            (tup3
               (oneofl [ "tcpip.sys"; "rootkit.sys" ])
               (list_size (int_bound 4) (int_bound 15))
               (list_size (int_bound 4) (int_bound 15)))))
      (list_size (int_bound 2)
         (tup2 (int_bound 15) (oneofl [ "gone"; "mute" ]))))

(* The body shape follows the request kind, so the generator keys the
   body on the frame — exactly the invariant the decoder relies on. *)
let gen_resp =
  QCheck.Gen.(
    gen_frame >>= fun frame ->
    let gen_err =
      map
        (fun e -> Wire.Error_body e)
        (oneofl [ "Dom3 unreachable: powered off"; "module not found" ])
    in
    let gen_body =
      match frame.Wire.f_request with
      | Engine.Check _ ->
          oneof [ map (fun r -> Wire.Report_body r) gen_module_report; gen_err ]
      | Engine.Survey _ ->
          oneof [ map (fun s -> Wire.Survey_body s) gen_survey; gen_err ]
      | Engine.Lists ->
          oneof
            [ map (fun lc -> Wire.Lists_body lc) gen_lists_comparison; gen_err ]
    in
    map
      (fun ((seq, shard, wait, service), (meter, root, body)) ->
        {
          Wire.rs_seq = seq;
          rs_frame = frame;
          rs_shard = shard;
          rs_wait_s = wait;
          rs_service_s = service;
          rs_meter = meter;
          rs_root = root;
          rs_body = body;
        })
      (tup2
         (tup4 (int_bound 10000) (int_bound 7) gen_q64 gen_q64)
         (tup3
            (list_size (int_bound 4)
               (tup2
                  (oneofl
                     [ "searcher.vm_reads"; "parser.headers";
                       "checker.md5_blocks" ])
                  (int_bound 5000)))
            (opt gen_hex) gen_body)))

let gen_reply =
  QCheck.Gen.(
    oneof
      [
        map (fun r -> Wire.Resp r) gen_resp;
        map
          (fun (seq, retry, bound) ->
            Wire.Busy
              { b_seq = seq; b_retry_after_s = retry; b_queue_bound = bound })
          (tup3 (int_bound 10000) gen_q64 (int_bound 256));
        map (fun seq -> Wire.Draining { d_seq = seq }) (int_bound 10000);
        map
          (fun (seq, e) -> Wire.Invalid { i_seq = seq; i_error = e })
          (tup2 (int_bound 10000)
             (oneofl
                [ "unknown request kind frobnicate"; "check: VM index expected" ]));
      ])

let prop_wire_reply_roundtrip =
  QCheck.Test.make ~count:200 ~name:"wire reply JSON round-trips"
    (QCheck.make gen_reply) (fun reply ->
      match Wire.reply_of_json (reparse (Wire.reply_to_json reply)) with
      | Ok reply' -> reply' = reply
      | Error e -> QCheck.Test.fail_reportf "parse failed: %s" e)

let prop_frame_line_roundtrip =
  QCheck.Test.make ~count:200 ~name:"frame/line round-trips"
    (QCheck.make gen_frame) (fun f ->
      match Wire.parse_line (Wire.line_of_frame f) with
      | Ok f' -> f' = f
      | Error e -> QCheck.Test.fail_reportf "parse failed: %s" e)

let () =
  Alcotest.run "engine"
    [
      ( "parity",
        [
          Alcotest.test_case "E1 opcode" `Quick test_parity_e1_opcode;
          Alcotest.test_case "E2 inline hook" `Quick test_parity_e2_hook;
          Alcotest.test_case "E3 stub" `Quick test_parity_e3_stub;
          Alcotest.test_case "E4 injection" `Quick test_parity_e4_injection;
          Alcotest.test_case "X pointer hook" `Quick
            test_parity_ext_pointer_hook;
          Alcotest.test_case "X DKOM lists" `Quick test_parity_ext_dkom_lists;
          Alcotest.test_case "survey parity" `Quick test_parity_survey;
        ] );
      ( "service",
        [
          Alcotest.test_case "coalesces duplicates" `Quick
            test_coalesce_duplicates;
          Alcotest.test_case "batch cheaper than standalone" `Quick
            test_batch_cheaper_than_standalone;
          Alcotest.test_case "priority jumps queue" `Quick
            test_priority_jumps_queue;
          Alcotest.test_case "backpressure" `Quick
            test_backpressure_rejects_beyond_bound;
          Alcotest.test_case "drain settles everything" `Quick
            test_drain_settles_everything_under_faults;
          Alcotest.test_case "patrol via engine" `Quick
            test_engine_patrol_detects;
          Alcotest.test_case "request parsing" `Quick test_request_parsing;
          Alcotest.test_case "backoff schedule" `Quick test_backoff_schedule;
          Alcotest.test_case "run backs off on full queue" `Quick
            test_run_backs_off_on_full_queue;
          Alcotest.test_case "stream/batch parity" `Quick
            test_stream_batch_parity;
        ] );
      ( "report-json",
        [
          Alcotest.test_case "report round-trip" `Quick
            test_report_json_roundtrip;
          Alcotest.test_case "survey round-trip" `Quick
            test_survey_json_roundtrip;
          Alcotest.test_case "schema rejected" `Quick test_json_schema_rejected;
          QCheck_alcotest.to_alcotest prop_report_roundtrip;
          QCheck_alcotest.to_alcotest prop_survey_roundtrip;
        ] );
      ( "wire-json",
        [
          QCheck_alcotest.to_alcotest prop_wire_reply_roundtrip;
          QCheck_alcotest.to_alcotest prop_frame_line_roundtrip;
        ] );
    ]
