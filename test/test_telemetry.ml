(* Tests for the mc_telemetry subsystem: span nesting and ordering,
   metric instruments, exporter round-trip through the JSON parser, the
   Meter bridge, and concurrent recording from pool workers. *)

module Span = Mc_telemetry.Span
module Metric = Mc_telemetry.Metric
module Registry = Mc_telemetry.Registry
module Export = Mc_telemetry.Export
module Bridge = Mc_telemetry.Bridge
module Json = Mc_util.Json
module Pool = Mc_parallel.Pool

let check = Alcotest.check

let contains ~needle hay =
  let nl = String.length needle and hl = String.length hay in
  let rec at i = i + nl <= hl && (String.sub hay i nl = needle || at (i + 1)) in
  at 0

(* Every test drives the one global registry: start from a clean slate and
   never leak an enabled registry into the next test. *)
let with_registry f () =
  Registry.reset ();
  Registry.set_enabled true;
  Fun.protect
    ~finally:(fun () ->
      Registry.set_enabled false;
      Registry.reset ())
    f

(* --- spans -------------------------------------------------------------- *)

let test_span_nesting =
  with_registry (fun () ->
      Registry.with_span "outer" (fun outer ->
          Registry.with_span "inner" (fun inner ->
              check Alcotest.(option int) "inner parented to outer"
                (Some outer.Span.id) inner.Span.parent);
          Registry.with_span "sibling" (fun sibling ->
              check Alcotest.(option int) "sibling parented to outer"
                (Some outer.Span.id) sibling.Span.parent));
      let snap = Registry.snapshot () in
      let names = List.map (fun (s : Span.t) -> s.Span.name) snap.snap_spans in
      (* Completion order: children close before their parent. *)
      check
        Alcotest.(list string)
        "completion order" [ "inner"; "sibling"; "outer" ] names;
      let outer =
        List.find (fun (s : Span.t) -> s.Span.name = "outer") snap.snap_spans
      in
      check Alcotest.(option int) "outer is a root" None outer.Span.parent;
      List.iter
        (fun (s : Span.t) ->
          Alcotest.(check bool)
            (s.Span.name ^ " has a finite duration")
            true
            (Float.is_finite (Span.wall_duration s) && Span.wall_duration s >= 0.0))
        snap.snap_spans)

let test_span_explicit_parent =
  with_registry (fun () ->
      let root_id =
        Registry.with_span "root" (fun root ->
            check Alcotest.(option int) "current = root" (Some root.Span.id)
              (Registry.current_span_id ());
            root.Span.id)
      in
      Registry.with_span ~parent:root_id "adopted" (fun s ->
          check Alcotest.(option int) "explicit parent wins" (Some root_id)
            s.Span.parent))

let test_span_exception_closes =
  with_registry (fun () ->
      (try
         Registry.with_span "durable" (fun _ -> raise Exit)
       with Exit -> ());
      match (Registry.snapshot ()).snap_spans with
      | [ s ] ->
          check Alcotest.string "collected despite raise" "durable" s.Span.name;
          Alcotest.(check bool)
            "closed" true
            (Float.is_finite s.Span.wall_end)
      | spans -> Alcotest.failf "expected 1 span, got %d" (List.length spans))

let test_disabled_is_inert () =
  Registry.reset ();
  check Alcotest.bool "disabled by default here" false (Registry.enabled ());
  Registry.with_span "ghost" (fun s ->
      check Alcotest.int "dummy span id" 0 s.Span.id;
      Span.set_attr s "k" (Span.Int 1);
      check Alcotest.bool "dummy attrs ignored" true (s.Span.attrs = []));
  Registry.add "ghost.counter" 5;
  Registry.observe "ghost.histo" 1.0;
  let snap = Registry.snapshot () in
  check Alcotest.int "no spans" 0 (List.length snap.snap_spans);
  check Alcotest.int "no counters" 0 (List.length snap.snap_counters);
  check Alcotest.int "no histograms" 0 (List.length snap.snap_histograms)

(* --- metrics ------------------------------------------------------------ *)

let test_counter_gauge =
  with_registry (fun () ->
      Registry.add "c" 2;
      Registry.add "c" 3;
      Registry.set_gauge "g" 1.25;
      Registry.set_gauge "g" 2.5;
      let snap = Registry.snapshot () in
      check
        Alcotest.(list (pair string int))
        "counter summed" [ ("c", 5) ] snap.snap_counters;
      check
        Alcotest.(list (pair string (float 1e-9)))
        "gauge keeps last" [ ("g", 2.5) ] snap.snap_gauges;
      Alcotest.check_raises "counters are monotonic"
        (Invalid_argument "Metric.counter_add: counters are monotonic")
        (fun () -> Metric.counter_add (Registry.counter "c") (-1)))

let test_instrument_kind_clash =
  with_registry (fun () ->
      Registry.add "dual" 1;
      Alcotest.(check bool)
        "kind clash raises" true
        (try
           ignore (Registry.histogram "dual");
           false
         with Invalid_argument _ -> true))

let test_histogram_summary =
  with_registry (fun () ->
      List.iter (Registry.observe "h") [ 0.001; 0.002; 0.004; 0.004; 1.0 ];
      Registry.observe "h" nan (* dropped *);
      match (Registry.snapshot ()).snap_histograms with
      | [ s ] ->
          check Alcotest.int "count" 5 s.Metric.h_count;
          check (Alcotest.float 1e-9) "min" 0.001 s.Metric.h_min;
          check (Alcotest.float 1e-9) "max" 1.0 s.Metric.h_max;
          check (Alcotest.float 1e-9) "sum" 1.011 s.Metric.h_sum;
          let p50 = Metric.quantile s 0.5 in
          Alcotest.(check bool)
            "p50 inside data range" true
            (p50 >= 0.001 && p50 <= 1.0);
          check (Alcotest.float 1e-9) "p0 is min" 0.001 (Metric.quantile s 0.0);
          check (Alcotest.float 1e-9) "p100 is max" 1.0 (Metric.quantile s 1.0)
      | hs -> Alcotest.failf "expected 1 histogram, got %d" (List.length hs))

let prop_quantiles_monotone_bounded =
  QCheck.Test.make ~count:200 ~name:"histogram quantiles monotone and bounded"
    QCheck.(list_of_size Gen.(int_range 1 200) (int_bound 10_000_000))
    (fun samples ->
      let h = Metric.histogram_create "q" in
      List.iter
        (fun raw -> Metric.observe h (float_of_int raw /. 1000.0))
        samples;
      let s = Metric.histogram_summary h in
      let qs = [ 0.0; 0.1; 0.25; 0.5; 0.75; 0.9; 0.99; 1.0 ] in
      let vs = List.map (Metric.quantile s) qs in
      let bounded = List.for_all (fun v -> v >= s.h_min && v <= s.h_max) vs in
      let rec monotone = function
        | a :: (b :: _ as rest) -> a <= b && monotone rest
        | _ -> true
      in
      bounded && monotone vs)

(* --- exporter round-trip ------------------------------------------------ *)

let field name = function
  | Json.Obj fields -> List.assoc_opt name fields
  | _ -> None

let test_export_roundtrip =
  with_registry (fun () ->
      Registry.with_span ~attrs:[ ("module", Span.String "hal.dll") ]
        "check_module" (fun sp ->
          Span.set_virtual sp ~start:30.25 ~finish:30.5;
          Registry.with_span "searcher" (fun _ -> ()));
      Registry.add "meter.searcher.bytes_copied" 4096;
      Registry.observe "pool.queue_wait_s" 0.002;
      let lines = Export.jsonl (Registry.snapshot ()) in
      check Alcotest.int "2 spans + 1 counter + 1 histogram" 4
        (List.length lines);
      let parsed =
        List.map
          (fun line ->
            match Json.of_string line with
            | Ok v -> v
            | Error e -> Alcotest.failf "unparseable line %s: %s" line e)
          lines
      in
      let find ty name =
        match
          List.find_opt
            (fun v ->
              field "type" v = Some (Json.String ty)
              && field "name" v = Some (Json.String name))
            parsed
        with
        | Some v -> v
        | None -> Alcotest.failf "no %s %s in export" ty name
      in
      let root = find "span" "check_module" in
      check Alcotest.bool "root has null parent" true
        (field "parent" root = Some Json.Null);
      (match field "attrs" root with
      | Some attrs ->
          check Alcotest.bool "module attr survives" true
            (field "module" attrs = Some (Json.String "hal.dll"))
      | None -> Alcotest.fail "root span lost its attrs");
      check Alcotest.bool "virtual clock exported" true
        (field "virt_start_s" root = Some (Json.Float 30.25));
      let child = find "span" "searcher" in
      check Alcotest.bool "child parent = root id" true
        (field "parent" child = field "id" root);
      let counter = find "counter" "meter.searcher.bytes_copied" in
      check Alcotest.bool "counter value survives" true
        (field "value" counter = Some (Json.Int 4096));
      let histo = find "histogram" "pool.queue_wait_s" in
      check Alcotest.bool "histogram count survives" true
        (field "count" histo = Some (Json.Int 1));
      (* write/read back through a file too *)
      let path = Filename.temp_file "mc_trace" ".jsonl" in
      Fun.protect
        ~finally:(fun () -> Sys.remove path)
        (fun () ->
          Export.write ~path (Registry.snapshot ());
          let ic = open_in path in
          let rec count acc =
            match input_line ic with
            | line ->
                (match Json.of_string line with
                | Ok _ -> ()
                | Error e -> Alcotest.failf "file line unparseable: %s" e);
                count (acc + 1)
            | exception End_of_file -> acc
          in
          let n = count 0 in
          close_in ic;
          check Alcotest.int "file line count" 4 n))

let test_summary_renders =
  with_registry (fun () ->
      Registry.with_span "survey" (fun _ -> ());
      Registry.add "survey.runs" 1;
      Registry.observe "patrol.sweep_wall_virtual_s" 0.2;
      let text = Export.summary (Registry.snapshot ()) in
      List.iter
        (fun needle ->
          Alcotest.(check bool)
            (Printf.sprintf "summary mentions %s" needle)
            true
            (contains ~needle text))
        [ "survey"; "survey.runs"; "patrol.sweep_wall_virtual_s"; "p99" ])

(* --- meter bridge ------------------------------------------------------- *)

let test_meter_bridge =
  with_registry (fun () ->
      let meter = Mc_hypervisor.Meter.create () in
      Mc_hypervisor.Meter.add_pages_mapped meter 7;
      Mc_hypervisor.Meter.add_bytes_copied meter 4096;
      Mc_hypervisor.Meter.set_phase meter Mc_hypervisor.Meter.Checker;
      Mc_hypervisor.Meter.add_bytes_hashed meter 512;
      List.iter
        (fun phase ->
          Bridge.add_counts
            ~prefix:("meter." ^ Mc_hypervisor.Meter.phase_key phase)
            (Mc_hypervisor.Meter.pairs (Mc_hypervisor.Meter.get meter phase)))
        [ Mc_hypervisor.Meter.Searcher; Mc_hypervisor.Meter.Parser;
          Mc_hypervisor.Meter.Checker ];
      let snap = Registry.snapshot () in
      check
        Alcotest.(list (pair string int))
        "only nonzero counts bridged, names phase-prefixed"
        [
          ("meter.checker.bytes_hashed", 512);
          ("meter.searcher.bytes_copied", 4096);
          ("meter.searcher.pages_mapped", 7);
        ]
        snap.snap_counters)

(* End-to-end agreement: run a real check with telemetry on and compare
   the bridged totals against the meters the orchestrator returns. *)
let test_check_module_totals_agree =
  with_registry (fun () ->
      let cloud = Mc_hypervisor.Cloud.create ~vms:4 ~seed:7L () in
      let outcome =
        match
          Modchecker.Orchestrator.check_module cloud ~target_vm:0
            ~module_name:"hal.dll"
        with
        | Ok o -> o
        | Error e -> Alcotest.fail e
      in
      let meter_total phase field =
        List.fold_left
          (fun acc (w : Modchecker.Orchestrator.vm_work) ->
            acc
            + List.assoc field
                (Mc_hypervisor.Meter.pairs
                   (Mc_hypervisor.Meter.get w.work_meter phase)))
          0 outcome.work
      in
      let counter name =
        Option.value ~default:0
          (List.assoc_opt name (Registry.snapshot ()).snap_counters)
      in
      check Alcotest.int "searcher bytes_copied agree"
        (meter_total Mc_hypervisor.Meter.Searcher "bytes_copied")
        (counter "meter.searcher.bytes_copied");
      check Alcotest.int "checker bytes_hashed agree"
        (meter_total Mc_hypervisor.Meter.Checker "bytes_hashed")
        (counter "meter.checker.bytes_hashed");
      check Alcotest.int "vmi counter agrees with searcher meter"
        (meter_total Mc_hypervisor.Meter.Searcher "bytes_copied")
        (counter "vmi.bytes_copied");
      (* Span structure: one vm_check per VM, nested phases. *)
      let spans = (Registry.snapshot ()).snap_spans in
      let count name =
        List.length (List.filter (fun (s : Span.t) -> s.Span.name = name) spans)
      in
      check Alcotest.int "vm_check spans" 4 (count "vm_check");
      check Alcotest.int "searcher spans" 4 (count "searcher");
      check Alcotest.int "checker spans" 3 (count "checker"))

(* --- concurrency -------------------------------------------------------- *)

let test_pool_worker_spans =
  with_registry (fun () ->
      let n = 40 in
      let results =
        Pool.with_pool 4 (fun pool ->
            Registry.with_span "fanout" (fun root ->
                Pool.parallel_map pool
                  (fun i ->
                    Registry.with_span ~parent:root.Span.id
                      ~attrs:[ ("i", Span.Int i) ] "task"
                      (fun _ ->
                        Registry.add "tasks.done" 1;
                        i * 2))
                  (List.init n Fun.id)))
      in
      check Alcotest.int "all results" n (List.length results);
      let snap = Registry.snapshot () in
      check Alcotest.int "one span per task + root" (n + 1)
        (List.length snap.snap_spans);
      let tasks =
        List.filter (fun (s : Span.t) -> s.Span.name = "task") snap.snap_spans
      in
      let root =
        List.find (fun (s : Span.t) -> s.Span.name = "fanout") snap.snap_spans
      in
      Alcotest.(check bool)
        "every task parented to fanout" true
        (List.for_all
           (fun (s : Span.t) -> s.Span.parent = Some root.Span.id)
           tasks);
      let is =
        List.sort compare
          (List.filter_map
             (fun (s : Span.t) ->
               match List.assoc_opt "i" s.Span.attrs with
               | Some (Span.Int i) -> Some i
               | _ -> None)
             tasks)
      in
      check Alcotest.(list int) "no task span lost or duplicated"
        (List.init n Fun.id) is;
      check Alcotest.(option (pair string int)) "counter saw every task"
        (Some ("tasks.done", n))
        (List.find_opt (fun (k, _) -> k = "tasks.done") snap.snap_counters);
      (* Pool instrumentation observed every task. *)
      let histo name =
        List.find_opt
          (fun (h : Metric.histogram_summary) -> h.Metric.h_name = name)
          snap.snap_histograms
      in
      (match histo "pool.task_run_s" with
      | Some h -> check Alcotest.int "task_run_s count" n h.Metric.h_count
      | None -> Alcotest.fail "pool.task_run_s histogram missing");
      match histo "pool.queue_wait_s" with
      | Some h -> check Alcotest.int "queue_wait_s count" n h.Metric.h_count
      | None -> Alcotest.fail "pool.queue_wait_s histogram missing")

(* --- json parser -------------------------------------------------------- *)

let prop_json_roundtrip =
  let gen =
    QCheck.Gen.(
      sized @@ fix (fun self size ->
          let scalar =
            oneof
              [
                return Json.Null;
                map (fun b -> Json.Bool b) bool;
                map (fun i -> Json.Int i) small_signed_int;
                (* (16f+1)/16 is never integral (would emit/reparse as Int)
                   and is exactly representable, so equality is exact. *)
                map
                  (fun f -> Json.Float (Float.of_int ((16 * f) + 1) /. 16.0))
                  (int_range (-60000) 60000);
                map (fun s -> Json.String s) (string_size (int_bound 12));
              ]
          in
          if size <= 0 then scalar
          else
            oneof
              [
                scalar;
                map
                  (fun l -> Json.List l)
                  (list_size (int_bound 4) (self (size / 2)));
                map
                  (fun kvs ->
                    (* Duplicate keys would not round-trip through assoc. *)
                    let seen = Hashtbl.create 8 in
                    Json.Obj
                      (List.filter
                         (fun (k, _) ->
                           if Hashtbl.mem seen k then false
                           else begin
                             Hashtbl.add seen k ();
                             true
                           end)
                         kvs))
                  (list_size (int_bound 4)
                     (pair (string_size (int_bound 8)) (self (size / 2))));
              ]))
  in
  QCheck.Test.make ~count:300 ~name:"json emit/parse roundtrip"
    (QCheck.make gen) (fun v ->
      match Json.of_string (Json.to_string v) with
      | Ok v' -> v = v'
      | Error _ -> false)

let () =
  Alcotest.run "telemetry"
    [
      ( "spans",
        [
          Alcotest.test_case "nesting" `Quick test_span_nesting;
          Alcotest.test_case "explicit parent" `Quick test_span_explicit_parent;
          Alcotest.test_case "exception closes" `Quick
            test_span_exception_closes;
          Alcotest.test_case "disabled is inert" `Quick test_disabled_is_inert;
        ] );
      ( "metrics",
        [
          Alcotest.test_case "counter/gauge" `Quick test_counter_gauge;
          Alcotest.test_case "kind clash" `Quick test_instrument_kind_clash;
          Alcotest.test_case "histogram summary" `Quick test_histogram_summary;
          QCheck_alcotest.to_alcotest prop_quantiles_monotone_bounded;
        ] );
      ( "export",
        [
          Alcotest.test_case "jsonl roundtrip" `Quick test_export_roundtrip;
          Alcotest.test_case "summary renders" `Quick test_summary_renders;
          QCheck_alcotest.to_alcotest prop_json_roundtrip;
        ] );
      ( "bridge",
        [
          Alcotest.test_case "meter counts" `Quick test_meter_bridge;
          Alcotest.test_case "check_module totals agree" `Quick
            test_check_module_totals_agree;
        ] );
      ( "concurrency",
        [ Alcotest.test_case "pool worker spans" `Quick test_pool_worker_spans ]
      );
    ]
