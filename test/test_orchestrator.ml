(* Tests for the orchestrator: the full ModChecker pipeline, majority
   voting, surveys, module-list comparison, and reports. *)

module Cloud = Mc_hypervisor.Cloud
module Costs = Mc_hypervisor.Costs
module Orchestrator = Modchecker.Orchestrator
module Report = Modchecker.Report
module Artifact = Modchecker.Artifact
module Infect = Mc_malware.Infect
module Pool = Mc_parallel.Pool

let check = Alcotest.check

let check_exn ?mode ?others cloud ~target_vm ~module_name =
  let config =
    Orchestrator.Config.default
    |> (match mode with
       | Some m -> Orchestrator.Config.with_mode m
       | None -> Fun.id)
    |> match others with
       | Some o -> Orchestrator.Config.with_others o
       | None -> Fun.id
  in
  match Orchestrator.check_module ~config cloud ~target_vm ~module_name with
  | Ok o -> o
  | Error e -> Alcotest.fail e

let test_clean_cloud_intact () =
  let cloud = Cloud.create ~vms:4 ~seed:100L () in
  List.iter
    (fun module_name ->
      let o = check_exn cloud ~target_vm:0 ~module_name in
      Alcotest.(check bool) (module_name ^ " intact") true
        o.report.Report.majority_ok;
      check Alcotest.int "full agreement" o.report.Report.total
        o.report.Report.matches;
      check Alcotest.int "t-1 comparisons" 3 o.report.Report.total;
      check
        Alcotest.(list string)
        "nothing flagged" []
        (List.map Artifact.kind_name o.report.Report.flagged_artifacts))
    [ "hal.dll"; "http.sys"; "ntoskrnl.exe" ]

let test_infected_vm_flagged () =
  let cloud = Cloud.create ~vms:4 ~seed:100L () in
  (match Infect.single_opcode_replacement cloud ~vm:2 with
  | Ok _ -> ()
  | Error e -> Alcotest.fail e);
  let o = check_exn cloud ~target_vm:2 ~module_name:"hal.dll" in
  Alcotest.(check bool) "suspicious" false o.report.Report.majority_ok;
  check Alcotest.int "no matches" 0 o.report.Report.matches;
  check
    Alcotest.(list string)
    "only .text" [ ".text" ]
    (List.map Artifact.kind_name o.report.Report.flagged_artifacts)

let test_clean_vm_sees_one_deviant_peer () =
  (* From a clean VM's viewpoint, one infected peer costs one match but
     does not break the majority, and nothing is flagged as the target's
     fault. *)
  let cloud = Cloud.create ~vms:4 ~seed:100L () in
  (match Infect.single_opcode_replacement cloud ~vm:2 with
  | Ok _ -> ()
  | Error e -> Alcotest.fail e);
  let o = check_exn cloud ~target_vm:0 ~module_name:"hal.dll" in
  Alcotest.(check bool) "still intact" true o.report.Report.majority_ok;
  check Alcotest.int "one failed comparison" 2 o.report.Report.matches;
  check
    Alcotest.(list string)
    "no artifact pinned on the target" []
    (List.map Artifact.kind_name o.report.Report.flagged_artifacts)

let test_others_subset () =
  let cloud = Cloud.create ~vms:5 ~seed:100L () in
  let o = check_exn ~others:[ 1; 2 ] cloud ~target_vm:0 ~module_name:"hal.dll" in
  check Alcotest.int "two comparisons" 2 o.report.Report.total;
  check
    Alcotest.(list int)
    "compared against the requested VMs" [ 1; 2 ]
    (List.map (fun c -> c.Report.other_vm) o.report.Report.comparisons)

let test_no_comparison_vms () =
  let cloud = Cloud.create ~vms:1 ~seed:100L () in
  match Orchestrator.check_module cloud ~target_vm:0 ~module_name:"hal.dll" with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "single-VM cloud cannot vote"

let test_module_missing_on_target () =
  let cloud = Cloud.create ~vms:3 ~seed:100L () in
  match Orchestrator.check_module cloud ~target_vm:0 ~module_name:"ghost.sys" with
  | Error msg ->
      Alcotest.(check bool) "mentions module" true
        (String.length msg > 0)
  | Ok _ -> Alcotest.fail "missing module must error"

let test_module_missing_on_peer () =
  (* hello.sys loaded only on the target: every comparison fails, which is
     a (conservative) alarm, not an error. *)
  let cloud = Cloud.create ~vms:3 ~seed:100L () in
  let clean = (Mc_pe.Catalog.image "hello.sys").Mc_pe.Catalog.file in
  Infect.write_module_file (Cloud.vm cloud 0) ~name:"hello.sys" clean;
  (match Infect.load_driver (Cloud.vm cloud 0) ~name:"hello.sys" with
  | Ok _ -> ()
  | Error e -> Alcotest.fail (Mc_winkernel.Kernel.error_to_string e));
  let o = check_exn cloud ~target_vm:0 ~module_name:"hello.sys" in
  Alcotest.(check bool) "not intact" false o.report.Report.majority_ok;
  check Alcotest.int "zero matches" 0 o.report.Report.matches

let test_parallel_equals_sequential () =
  let cloud = Cloud.create ~vms:5 ~seed:100L () in
  (match Infect.inline_hook cloud ~vm:3 with
  | Ok _ -> ()
  | Error e -> Alcotest.fail e);
  let seq = check_exn cloud ~target_vm:3 ~module_name:"hal.dll" in
  let pool = Pool.create 3 in
  let par =
    check_exn ~mode:(Orchestrator.Parallel pool) cloud ~target_vm:3
      ~module_name:"hal.dll"
  in
  Pool.shutdown pool;
  check Alcotest.int "same matches" seq.report.Report.matches
    par.report.Report.matches;
  check Alcotest.bool "same verdict" seq.report.Report.majority_ok
    par.report.Report.majority_ok;
  check
    Alcotest.(list string)
    "same flags"
    (List.map Artifact.kind_name seq.report.Report.flagged_artifacts)
    (List.map Artifact.kind_name par.report.Report.flagged_artifacts)

let test_survey () =
  let cloud = Cloud.create ~vms:5 ~seed:100L () in
  (match Infect.single_opcode_replacement cloud ~vm:1 with
  | Ok _ -> ()
  | Error e -> Alcotest.fail e);
  let s = Orchestrator.survey cloud ~module_name:"hal.dll" in
  check Alcotest.(list int) "deviant VM found" [ 1 ] s.Report.deviant_vms;
  check Alcotest.(list int) "none missing" [] s.Report.missing_on;
  check Alcotest.int "all pairs compared" 10
    (List.length s.Report.pairwise_matches)

let test_survey_clean () =
  let cloud = Cloud.create ~vms:4 ~seed:100L () in
  let s = Orchestrator.survey cloud ~module_name:"http.sys" in
  check Alcotest.(list int) "no deviants" [] s.Report.deviant_vms

let test_survey_missing () =
  let cloud = Cloud.create ~vms:3 ~seed:100L () in
  (match Infect.hide_module cloud ~vm:1 ~module_name:"http.sys" with
  | Ok _ -> ()
  | Error e -> Alcotest.fail e);
  let s = Orchestrator.survey cloud ~module_name:"http.sys" in
  check Alcotest.(list int) "missing recorded" [ 1 ] s.Report.missing_on

let test_mass_infection_factions () =
  (* §III-B's SQL-Slammer discussion: when an identical infection spreads
     to half the pool, there is no trustworthy majority. The survey splits
     the pool into two agreement classes and flags every VM. *)
  let cloud = Cloud.create ~vms:4 ~seed:100L () in
  let infected_file =
    match
      Mc_malware.Opcode_patch.infect_file ~module_name:"hal.dll"
        ~func:"HalInitSystem" ()
    with
    | Ok (f, _) -> f
    | Error e -> Alcotest.fail e
  in
  List.iter
    (fun vm ->
      Infect.write_module_file (Cloud.vm cloud vm) ~name:"hal.dll" infected_file;
      Cloud.reboot_vm cloud vm)
    [ 1; 3 ];
  let s = Orchestrator.survey cloud ~module_name:"hal.dll" in
  check Alcotest.int "two factions" 2 (List.length s.Report.agreement_classes);
  check
    Alcotest.(list (list int))
    "factions are the two halves"
    [ [ 0; 2 ]; [ 1; 3 ] ]
    (List.sort compare s.Report.agreement_classes);
  check Alcotest.(list int) "nobody can be trusted: all flagged" [ 0; 1; 2; 3 ]
    (List.sort compare s.Report.deviant_vms)

let test_agreement_classes_clean () =
  let cloud = Cloud.create ~vms:3 ~seed:100L () in
  let s = Orchestrator.survey cloud ~module_name:"hal.dll" in
  check Alcotest.(list (list int)) "single faction" [ [ 0; 1; 2 ] ]
    s.Report.agreement_classes

let test_compare_module_lists () =
  let cloud = Cloud.create ~vms:3 ~seed:100L () in
  check Alcotest.int "uniform cloud has no discrepancies" 0
    (List.length (Orchestrator.compare_module_lists cloud));
  (match Infect.hide_module cloud ~vm:2 ~module_name:"tcpip.sys" with
  | Ok _ -> ()
  | Error e -> Alcotest.fail e);
  match Orchestrator.compare_module_lists cloud with
  | [ d ] ->
      check Alcotest.string "module name" "tcpip.sys" d.Orchestrator.ld_module;
      check Alcotest.(list int) "missing on" [ 2 ] d.Orchestrator.missing_on;
      check Alcotest.(list int) "present on" [ 0; 1 ] d.Orchestrator.present_on
  | l -> Alcotest.fail (Printf.sprintf "expected 1 discrepancy, got %d" (List.length l))

let test_phase_and_vm_seconds () =
  let cloud = Cloud.create ~vms:4 ~seed:100L () in
  let o = check_exn cloud ~target_vm:0 ~module_name:"http.sys" in
  let costs = Costs.default in
  let p = Orchestrator.phase_seconds costs o in
  Alcotest.(check bool) "searcher cost dominates parser" true
    (p.Orchestrator.searcher_s > p.Orchestrator.parser_s);
  Alcotest.(check bool) "all phases positive" true
    (p.Orchestrator.searcher_s > 0.0 && p.Orchestrator.parser_s > 0.0
   && p.Orchestrator.checker_s > 0.0);
  let jobs = Orchestrator.per_vm_seconds costs o in
  check Alcotest.int "one job per VM incl. target" 4 (List.length jobs);
  List.iter (fun j -> Alcotest.(check bool) "positive job" true (j > 0.0)) jobs

let test_report_json () =
  let cloud = Cloud.create ~vms:3 ~seed:100L () in
  let o = check_exn cloud ~target_vm:0 ~module_name:"hal.dll" in
  let json = Mc_util.Json.to_string (Report.to_json o.report) in
  let contains needle =
    let hl = String.length json and nl = String.length needle in
    let rec go i = i + nl <= hl && (String.sub json i nl = needle || go (i + 1)) in
    go 0
  in
  Alcotest.(check bool) "module field" true
    (contains "\"module\":\"hal.dll\"");
  Alcotest.(check bool) "verdict field" true (contains "\"majority_ok\":true");
  Alcotest.(check bool) "digests present" true (contains "\"md5_target\":");
  let sjson =
    Mc_util.Json.to_string
      (Report.survey_to_json (Orchestrator.survey cloud ~module_name:"hal.dll"))
  in
  Alcotest.(check bool) "survey classes serialized" true
    (let needle = "\"agreement_classes\":" in
     let hl = String.length sjson and nl = String.length needle in
     let rec go i = i + nl <= hl && (String.sub sjson i nl = needle || go (i + 1)) in
     go 0)

let test_report_rendering () =
  let cloud = Cloud.create ~vms:3 ~seed:100L () in
  let o = check_exn cloud ~target_vm:0 ~module_name:"hal.dll" in
  let table = Report.to_table o.report in
  Alcotest.(check bool) "table mentions artifacts" true
    (String.length table > 100);
  let v = Report.verdict_string o.report in
  check Alcotest.string "verdict" "INTACT (2/2)" v;
  let s = Format.asprintf "%a" Report.pp o.report in
  Alcotest.(check bool) "pp mentions module" true
    (String.length s > 0)

let test_majority_edge_two_vms () =
  (* t = 2: one comparison; n must exceed (t-1)/2 = 0.5, so a single match
     suffices and a single mismatch condemns. *)
  let cloud = Cloud.create ~vms:2 ~seed:100L () in
  let o = check_exn cloud ~target_vm:0 ~module_name:"hal.dll" in
  Alcotest.(check bool) "clean pair intact" true o.report.Report.majority_ok;
  (match Infect.inline_hook cloud ~vm:1 with
  | Ok _ -> ()
  | Error e -> Alcotest.fail e);
  let o = check_exn cloud ~target_vm:0 ~module_name:"hal.dll" in
  Alcotest.(check bool) "cannot vote around a bad peer at t=2" false
    o.report.Report.majority_ok

let () =
  Alcotest.run "orchestrator"
    [
      ( "check",
        [
          Alcotest.test_case "clean intact" `Quick test_clean_cloud_intact;
          Alcotest.test_case "infected flagged" `Quick test_infected_vm_flagged;
          Alcotest.test_case "clean view of deviant" `Quick
            test_clean_vm_sees_one_deviant_peer;
          Alcotest.test_case "others subset" `Quick test_others_subset;
          Alcotest.test_case "no comparison VMs" `Quick test_no_comparison_vms;
          Alcotest.test_case "missing on target" `Quick
            test_module_missing_on_target;
          Alcotest.test_case "missing on peer" `Quick test_module_missing_on_peer;
          Alcotest.test_case "parallel == sequential" `Quick
            test_parallel_equals_sequential;
          Alcotest.test_case "majority at t=2" `Quick test_majority_edge_two_vms;
        ] );
      ( "survey",
        [
          Alcotest.test_case "finds deviant" `Quick test_survey;
          Alcotest.test_case "clean" `Quick test_survey_clean;
          Alcotest.test_case "missing" `Quick test_survey_missing;
          Alcotest.test_case "module lists" `Quick test_compare_module_lists;
          Alcotest.test_case "mass infection factions" `Quick
            test_mass_infection_factions;
          Alcotest.test_case "clean single class" `Quick
            test_agreement_classes_clean;
        ] );
      ( "accounting",
        [
          Alcotest.test_case "phase seconds" `Quick test_phase_and_vm_seconds;
          Alcotest.test_case "report rendering" `Quick test_report_rendering;
          Alcotest.test_case "report json" `Quick test_report_json;
        ] );
    ]
