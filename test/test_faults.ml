(* Fault injection: hostile or corrupted guest state must degrade
   gracefully, never crash Dom0 tooling. Also covers the OS-variant
   profile machinery. *)

module Cloud = Mc_hypervisor.Cloud
module Dom = Mc_hypervisor.Dom
module Kernel = Mc_winkernel.Kernel
module Layout = Mc_winkernel.Layout
module Ldr = Mc_winkernel.Ldr
module As = Mc_memsim.Addr_space
module Vmi = Mc_vmi.Vmi
module Symbols = Mc_vmi.Symbols
module Searcher = Modchecker.Searcher
module Orchestrator = Modchecker.Orchestrator
module Le = Mc_util.Le

let check = Alcotest.check

let l_flink = Layout.Ldr_entry.in_load_order_links_flink

(* --- OS variants --------------------------------------------------------- *)

let test_sp3_cloud_works () =
  let cloud = Cloud.create ~vms:3 ~seed:601L ~os_variant:Layout.Xp_sp3 () in
  (match
     Orchestrator.check_module cloud ~target_vm:0 ~module_name:"hal.dll"
   with
  | Ok o ->
      Alcotest.(check bool) "sp3 pool checks clean" true
        o.report.Modchecker.Report.majority_ok
  | Error e -> Alcotest.fail e);
  (* And detection still works end to end. *)
  (match Mc_malware.Infect.inline_hook cloud ~vm:1 with
  | Ok _ -> ()
  | Error e -> Alcotest.fail e);
  match Orchestrator.check_module cloud ~target_vm:1 ~module_name:"hal.dll" with
  | Ok o ->
      Alcotest.(check bool) "sp3 detection" false
        o.report.Modchecker.Report.majority_ok
  | Error e -> Alcotest.fail e

let test_wrong_profile_reads_nothing () =
  (* An SP2 guest introspected with the SP3 profile: the symbol address
     reads zeros, so the walk is empty — no crash, no modules. *)
  let cloud = Cloud.create ~vms:1 ~seed:602L () in
  let vmi = Vmi.init (Cloud.vm cloud 0) Symbols.windows_xp_sp3 in
  check Alcotest.int "empty module list" 0
    (List.length (Searcher.list_modules vmi));
  Alcotest.(check bool) "find returns None" true
    (Searcher.find_module vmi ~name:"hal.dll" = None)

let test_profile_of_variant () =
  check Alcotest.string "sp2" "WinXPSP2x86"
    (Symbols.of_variant Layout.Xp_sp2).Symbols.os_name;
  check Alcotest.string "sp3" "WinXPSP3x86"
    (Symbols.of_variant Layout.Xp_sp3).Symbols.os_name;
  Alcotest.(check bool) "different head addresses" true
    (Layout.list_head_of_variant Layout.Xp_sp2
    <> Layout.list_head_of_variant Layout.Xp_sp3)

let test_kernel_variant_recorded () =
  let cloud = Cloud.create ~vms:1 ~seed:603L ~os_variant:Layout.Xp_sp3 () in
  let kernel = Dom.kernel_exn (Cloud.vm cloud 0) in
  Alcotest.(check bool) "variant stored" true
    (Kernel.os_variant kernel = Layout.Xp_sp3);
  check Alcotest.int "list head per variant" Layout.ps_loaded_module_list_sp3
    (Kernel.list_head kernel)

(* --- corrupted guest structures ------------------------------------------ *)

let fresh () =
  let cloud = Cloud.create ~vms:1 ~seed:604L () in
  let dom = Cloud.vm cloud 0 in
  (cloud, dom, Dom.kernel_exn dom)

let test_cyclic_module_list () =
  let _, dom, kernel = fresh () in
  (* Point the second entry's Flink back at the first: an infinite loop
     for a naive walker. *)
  let aspace = Kernel.aspace kernel in
  let head = Kernel.list_head kernel in
  let first = As.read_u32_int aspace head in
  let second = As.read_u32_int aspace (first + l_flink) in
  As.write_u32_int aspace (second + l_flink) first;
  let vmi = Vmi.init dom Symbols.windows_xp_sp2 in
  let listed = Searcher.list_modules vmi in
  (* Bounded: the cycle guard stops at the budget. *)
  Alcotest.(check bool) "walk terminates" true (List.length listed <= 4096)

let test_null_flink () =
  let _, dom, kernel = fresh () in
  let aspace = Kernel.aspace kernel in
  let head = Kernel.list_head kernel in
  let first = As.read_u32_int aspace head in
  As.write_u32_int aspace (first + l_flink) 0;
  let vmi = Vmi.init dom Symbols.windows_xp_sp2 in
  check Alcotest.int "walk stops at the null link" 1
    (List.length (Searcher.list_modules vmi))

let test_flink_to_unmapped_memory () =
  let _, dom, kernel = fresh () in
  let aspace = Kernel.aspace kernel in
  let head = Kernel.list_head kernel in
  let first = As.read_u32_int aspace head in
  As.write_u32_int aspace (first + l_flink) 0xDEAD0000;
  let vmi = Vmi.init dom Symbols.windows_xp_sp2 in
  check Alcotest.int "walk stops at the bad pointer" 1
    (List.length (Searcher.list_modules vmi))

let test_absurd_size_of_image () =
  let _, dom, kernel = fresh () in
  let aspace = Kernel.aspace kernel in
  let entry = Option.get (Kernel.find_module kernel "hal.dll") in
  As.write_u32_int aspace
    (entry.Ldr.entry_va + Layout.Ldr_entry.size_of_image)
    0x7FFF0000;
  let vmi = Vmi.init dom Symbols.windows_xp_sp2 in
  (* fetch refuses to allocate 2 GB and reports the module as unavailable
     rather than raising. *)
  Alcotest.(check bool) "fetch degrades to None" true
    (Searcher.fetch vmi ~name:"hal.dll" = None)

let test_corrupt_headers_in_guest () =
  let cloud = Cloud.create ~vms:4 ~seed:605L () in
  let kernel = Dom.kernel_exn (Cloud.vm cloud 1) in
  let entry = Option.get (Kernel.find_module kernel "hal.dll") in
  (* Smash the in-memory MZ magic on one VM. *)
  As.write_u32_int (Kernel.aspace kernel) entry.Ldr.dll_base 0;
  (* The victim cannot even be parsed: checking it from Dom0 errors... *)
  (match Orchestrator.check_module cloud ~target_vm:1 ~module_name:"hal.dll" with
  | Error _ -> ()
  | Ok o ->
      (* ...or (depending on viewpoint) it simply fails all comparisons. *)
      Alcotest.(check bool) "if it parses it must not pass" false
        o.report.Modchecker.Report.majority_ok);
  (* A clean VM checking against the pool still works: the corrupt peer
     costs one of three comparisons. *)
  match Orchestrator.check_module cloud ~target_vm:0 ~module_name:"hal.dll" with
  | Ok o ->
      Alcotest.(check bool) "clean VM still votes" true
        o.report.Modchecker.Report.majority_ok;
      check Alcotest.int "one comparison lost" 2
        o.report.Modchecker.Report.matches
  | Error e -> Alcotest.fail e

let test_name_buffer_unmapped () =
  let _, dom, kernel = fresh () in
  let aspace = Kernel.aspace kernel in
  let entry = Option.get (Kernel.find_module kernel "http.sys") in
  (* Point BaseDllName.Buffer at unmapped memory. *)
  As.write_u32_int aspace
    (entry.Ldr.entry_va + Layout.Ldr_entry.base_dll_name
   + Layout.Unicode_string.buffer)
    0xDEAD0000;
  let vmi = Vmi.init dom Symbols.windows_xp_sp2 in
  let listed = Searcher.list_modules vmi in
  (* The damaged entry reads with an empty name; the rest are intact. *)
  check Alcotest.int "all entries still listed"
    (List.length Mc_pe.Catalog.standard_modules)
    (List.length listed);
  Alcotest.(check bool) "damaged entry has empty name" true
    (List.exists (fun (i : Searcher.module_info) -> i.mi_name = "") listed)

let test_survey_with_one_corrupt_vm () =
  let cloud = Cloud.create ~vms:4 ~seed:606L () in
  let kernel = Dom.kernel_exn (Cloud.vm cloud 3) in
  let entry = Option.get (Kernel.find_module kernel "http.sys") in
  As.write_u32_int (Kernel.aspace kernel) entry.Ldr.dll_base 0;
  let s = Orchestrator.survey cloud ~module_name:"http.sys" in
  (* The corrupt VM is either missing (parse failure) or deviant. *)
  Alcotest.(check bool) "corrupt VM isolated" true
    (List.mem 3 s.Modchecker.Report.missing_on
    || List.mem 3 s.Modchecker.Report.deviant_vms);
  Alcotest.(check bool) "no clean VM blamed" true
    (List.for_all (fun v -> v = 3) s.Modchecker.Report.deviant_vms)

(* --- injected fault plans: determinism, retries, quorum ------------------ *)

module Faultplan = Mc_memsim.Faultplan
module Report = Modchecker.Report
module Patrol = Modchecker.Patrol

let test_plan_parse_roundtrip () =
  match Faultplan.of_string "transient=0.05,paged=0.01,torn=0.02,seed=7" with
  | Error e -> Alcotest.fail e
  | Ok spec ->
      check (Alcotest.float 1e-9) "transient" 0.05 spec.Faultplan.transient_rate;
      check (Alcotest.float 1e-9) "paged" 0.01 spec.Faultplan.paged_out_rate;
      check (Alcotest.float 1e-9) "torn" 0.02 spec.Faultplan.torn_rate;
      check Alcotest.int "seed" 7 spec.Faultplan.fault_seed;
      (match Faultplan.of_string (Faultplan.to_string spec) with
      | Ok spec2 -> Alcotest.(check bool) "roundtrip" true (spec = spec2)
      | Error e -> Alcotest.fail e)

let test_plan_rejects_garbage () =
  let bad s = Alcotest.(check bool) s true
      (Result.is_error (Faultplan.of_string s))
  in
  bad "transient=1.5";
  bad "transient=-0.1";
  bad "bogus=0.1";
  bad "transient=abc"

let test_plan_deterministic () =
  let spec =
    { Faultplan.none with Faultplan.transient_rate = 0.3; fault_seed = 5 }
  in
  let p1 = Faultplan.create ~salt:1 spec in
  let p2 = Faultplan.create ~salt:1 spec in
  let same = ref true and cross_differs = ref false in
  let p3 = Faultplan.create ~salt:2 spec in
  for pfn = 0 to 499 do
    for attempt = 1 to 3 do
      if
        Faultplan.map_outcome p1 ~pfn ~attempt
        <> Faultplan.map_outcome p2 ~pfn ~attempt
      then same := false
    done;
    if
      Faultplan.map_outcome p1 ~pfn ~attempt:1
      <> Faultplan.map_outcome p3 ~pfn ~attempt:1
    then cross_differs := true
  done;
  Alcotest.(check bool) "same salt, same decisions" true !same;
  Alcotest.(check bool) "different salts decorrelate" true !cross_differs

let test_transient_faults_absorbed_by_retries () =
  (* 10% per-attempt transient failures: every read succeeds within the
     retry budget, so the verdict is exactly the fault-free one. *)
  let spec =
    { Faultplan.none with Faultplan.transient_rate = 0.1; fault_seed = 3 }
  in
  let cloud = Cloud.create ~vms:4 ~seed:610L ~fault_spec:spec () in
  match Orchestrator.check_module cloud ~target_vm:0 ~module_name:"hal.dll" with
  | Error e -> Alcotest.fail e
  | Ok o ->
      Alcotest.(check bool) "verdict intact" true
        (o.report.Report.verdict = Report.Intact);
      check Alcotest.int "everyone answered" o.report.Report.surveyed
        o.report.Report.responded

let all_paged_out =
  { Faultplan.none with Faultplan.paged_out_rate = 1.0; fault_seed = 1 }

(* Arm a fault plan on a single DomU (the cloud-wide knob sets all). *)
let poison_vm cloud vm =
  let dom = Cloud.vm cloud vm in
  dom.Dom.faults <-
    Some (Faultplan.create ~salt:dom.Dom.dom_id all_paged_out)

let test_unreachable_vm_excluded_from_vote () =
  let cloud = Cloud.create ~vms:5 ~seed:611L () in
  poison_vm cloud 2;
  match Orchestrator.check_module cloud ~target_vm:0 ~module_name:"hal.dll" with
  | Error e -> Alcotest.fail e
  | Ok o ->
      Alcotest.(check bool) "still intact" true
        (o.report.Report.verdict = Report.Intact);
      check Alcotest.int "surveyed" 4 o.report.Report.surveyed;
      check Alcotest.int "responded" 3 o.report.Report.responded;
      check Alcotest.int "voted" 3 o.report.Report.voted;
      (match o.report.Report.unreachable with
      | [ (2, reason) ] ->
          Alcotest.(check bool)
            (Printf.sprintf "reason names the fault: %s" reason)
            true
            (String.length reason > 0)
      | _ -> Alcotest.fail "expected exactly Dom3 unreachable")

let test_quorum_loss_degrades_not_infects () =
  (* An infected target with most comparison VMs unreachable: the verdict
     must be Degraded — the availability failure may not be read as (or
     hide behind) an integrity one. *)
  let cloud = Cloud.create ~vms:5 ~seed:612L () in
  (match Mc_malware.Infect.inline_hook cloud ~vm:0 with
  | Ok _ -> ()
  | Error e -> Alcotest.fail e);
  List.iter (poison_vm cloud) [ 1; 2; 3 ];
  match Orchestrator.check_module cloud ~target_vm:0 ~module_name:"hal.dll" with
  | Error e -> Alcotest.fail e
  | Ok o ->
      (match o.report.Report.verdict with
      | Report.Degraded _ -> ()
      | Report.Intact -> Alcotest.fail "1/4 responses may not claim INTACT"
      | Report.Infected ->
          Alcotest.fail "1/4 responses may not claim SUSPICIOUS");
      check Alcotest.int "responded" 1 o.report.Report.responded;
      Alcotest.(check bool) "string verdict says DEGRADED" true
        (String.length (Report.verdict_string o.report) > 0
        && String.sub (Report.verdict_string o.report) 0 8 = "DEGRADED")

let test_survey_quorum_loss () =
  let cloud = Cloud.create ~vms:5 ~seed:613L () in
  List.iter (poison_vm cloud) [ 0; 1; 2; 3 ];
  let s = Orchestrator.survey cloud ~module_name:"hal.dll" in
  check Alcotest.int "unreachable count" 4
    (List.length s.Report.unreachable_on);
  Alcotest.(check bool) "degraded" true
    (match s.Report.s_verdict with Report.Degraded _ -> true | _ -> false);
  (* The unreachable VMs are not reported missing: no answer is not
     evidence of absence. *)
  check Alcotest.(list int) "missing_on empty" [] s.Report.missing_on;
  check Alcotest.(list int) "no deviants" [] s.Report.deviant_vms

let test_patrol_raises_quorum_loss_only () =
  let cloud = Cloud.create ~vms:5 ~seed:614L () in
  (* Infect one VM *and* cripple the pool: patrol must raise the quorum
     alarm and keep every integrity alarm suppressed for that sweep. *)
  (match Mc_malware.Infect.inline_hook cloud ~vm:1 with
  | Ok _ -> ()
  | Error e -> Alcotest.fail e);
  List.iter (poison_vm cloud) [ 2; 3; 4 ];
  let config =
    { Patrol.default_config with Patrol.watch = [ "hal.dll" ]; interval_s = 30.0 }
  in
  let o = Patrol.run ~config cloud ~until:40.0 in
  Alcotest.(check bool) "alarms raised" true (o.Patrol.alarms <> []);
  List.iter
    (fun a ->
      match a.Patrol.kind with
      | Patrol.Quorum_loss -> ()
      | k ->
          Alcotest.fail
            (Printf.sprintf "unexpected integrity alarm under quorum loss: %s"
               (Patrol.alarm_kind_string k)))
    o.Patrol.alarms

(* --- satellite: loud reloc-catalog fallback ------------------------------ *)

let counter name =
  Mc_telemetry.Metric.counter_value (Mc_telemetry.Registry.counter name)

let test_reloc_fallback_is_loud () =
  (* The catalog synthesizes an image for any name, so break the parse
     path for real: corrupt the cached image of a probe module (smash the
     MZ magic) and ask for its relocs. The old code swallowed this into a
     silent []; now it must still return [] but warn and count. *)
  let built = Mc_pe.Catalog.image "reloc_fallback_probe.sys" in
  Bytes.fill built.Mc_pe.Catalog.file 0 64 '\x00';
  let was = Mc_telemetry.Registry.enabled () in
  Mc_telemetry.Registry.set_enabled true;
  let before = counter "digest.reloc_fallbacks" in
  check Alcotest.(list int) "unparsable module yields no relocs" []
    (Orchestrator.module_relocs "reloc_fallback_probe.sys");
  let after = counter "digest.reloc_fallbacks" in
  Mc_telemetry.Registry.set_enabled was;
  Alcotest.(check bool) "fallback counted" true (after > before);
  (* The golden path must not touch the counter. *)
  Mc_telemetry.Registry.set_enabled true;
  let before = counter "digest.reloc_fallbacks" in
  Alcotest.(check bool) "hal.dll has relocs" true
    (Orchestrator.module_relocs "hal.dll" <> []);
  let after = counter "digest.reloc_fallbacks" in
  Mc_telemetry.Registry.set_enabled was;
  check Alcotest.int "no fallback on catalog module" before after

(* --- satellite: absent comparison VMs are visible in the report ---------- *)

let test_hidden_module_on_comparison_vm_reported () =
  let cloud = Cloud.create ~vms:4 ~seed:615L () in
  (* Hide http.sys on a *comparison* VM; the target's report must show
     the absence as a failed comparison, not silently shrink the vote. *)
  (match Mc_malware.Infect.hide_module cloud ~vm:2 ~module_name:"http.sys" with
  | Ok _ -> ()
  | Error e -> Alcotest.fail e);
  match
    Orchestrator.check_module cloud ~target_vm:0 ~module_name:"http.sys"
  with
  | Error e -> Alcotest.fail e
  | Ok o ->
      check Alcotest.int "all three comparisons present" 3
        (List.length o.report.Report.comparisons);
      check Alcotest.int "absence answered, so everyone responded" 3
        o.report.Report.responded;
      check Alcotest.int "two matches" 2 o.report.Report.matches;
      Alcotest.(check bool) "majority still carries the target" true
        (o.report.Report.verdict = Report.Intact);
      let absent_cmp =
        List.find_opt
          (fun c -> c.Report.other_vm = 2)
          o.report.Report.comparisons
      in
      (match absent_cmp with
      | None -> Alcotest.fail "Dom3's comparison missing from the report"
      | Some c ->
          Alcotest.(check bool) "its comparison failed" false
            c.Report.result.Modchecker.Checker.all_match;
          Alcotest.(check bool) "digests say (absent)" true
            (List.for_all
               (fun v -> v.Modchecker.Checker.av_digest2 = "(absent)")
               c.Report.result.Modchecker.Checker.verdicts))

let () =
  Alcotest.run "faults"
    [
      ( "profiles",
        [
          Alcotest.test_case "sp3 cloud" `Quick test_sp3_cloud_works;
          Alcotest.test_case "wrong profile" `Quick
            test_wrong_profile_reads_nothing;
          Alcotest.test_case "of_variant" `Quick test_profile_of_variant;
          Alcotest.test_case "kernel records variant" `Quick
            test_kernel_variant_recorded;
        ] );
      ( "corruption",
        [
          Alcotest.test_case "cyclic list" `Quick test_cyclic_module_list;
          Alcotest.test_case "null flink" `Quick test_null_flink;
          Alcotest.test_case "unmapped flink" `Quick
            test_flink_to_unmapped_memory;
          Alcotest.test_case "absurd size" `Quick test_absurd_size_of_image;
          Alcotest.test_case "corrupt headers" `Quick
            test_corrupt_headers_in_guest;
          Alcotest.test_case "unmapped name buffer" `Quick
            test_name_buffer_unmapped;
          Alcotest.test_case "survey with corrupt VM" `Quick
            test_survey_with_one_corrupt_vm;
        ] );
      ( "fault plan",
        [
          Alcotest.test_case "parse roundtrip" `Quick test_plan_parse_roundtrip;
          Alcotest.test_case "rejects garbage" `Quick test_plan_rejects_garbage;
          Alcotest.test_case "deterministic" `Quick test_plan_deterministic;
        ] );
      ( "retries and quorum",
        [
          Alcotest.test_case "transient absorbed" `Quick
            test_transient_faults_absorbed_by_retries;
          Alcotest.test_case "unreachable excluded" `Quick
            test_unreachable_vm_excluded_from_vote;
          Alcotest.test_case "quorum loss degrades" `Quick
            test_quorum_loss_degrades_not_infects;
          Alcotest.test_case "survey quorum loss" `Quick
            test_survey_quorum_loss;
          Alcotest.test_case "patrol quorum alarm" `Quick
            test_patrol_raises_quorum_loss_only;
        ] );
      ( "loud fallbacks",
        [
          Alcotest.test_case "reloc fallback counted" `Quick
            test_reloc_fallback_is_loud;
          Alcotest.test_case "hidden module reported" `Quick
            test_hidden_module_on_comparison_vm_reported;
        ] );
    ]
