(* Merkle section hashing: the O(dirty) fingerprint hot path. The
   contract under test: trees change the price of a sweep, never its
   verdicts — root equality is digest equality, a k-dirty refresh equals
   a from-scratch build, and descent localizes exactly the deviant
   pages. Plus the digest-cache probe/store race regression. *)

module Cloud = Mc_hypervisor.Cloud
module Xenctl = Mc_hypervisor.Xenctl
module Meter = Mc_hypervisor.Meter
module Md5 = Mc_md5.Md5
module Merkle = Mc_md5.Merkle
module Orchestrator = Modchecker.Orchestrator
module Checker = Modchecker.Checker
module Digest_cache = Modchecker.Digest_cache
module Pinpoint = Modchecker.Pinpoint
module Report = Modchecker.Report
module Infect = Mc_malware.Infect
module Registry = Mc_telemetry.Registry

let check = Alcotest.check

let expect_ok = function Ok v -> v | Error e -> failwith e

(* A small page size keeps the qcheck buffers cheap while exercising
   multi-level trees. *)
let page = 64

let buffer_gen =
  QCheck.Gen.(
    let* n = int_range 0 (page * 9) in
    let* b = bytes_size (return n) in
    return b)

(* --- properties ----------------------------------------------------------- *)

let prop_root_equality =
  QCheck.Test.make ~count:300 ~name:"root equality iff buffer equality"
    (QCheck.make
       QCheck.Gen.(
         let* a = buffer_gen in
         let* mutate = bool in
         let* off = int_bound (max 0 (Bytes.length a - 1)) in
         return (a, mutate, off)))
    (fun (a, mutate, off) ->
      let b = Bytes.copy a in
      if mutate && Bytes.length b > 0 then
        Bytes.set b off (Char.chr (Char.code (Bytes.get b off) lxor 1));
      Merkle.equal_root (Merkle.of_bytes ~page a) (Merkle.of_bytes ~page b)
      = (a = b))

let prop_rehash_equals_scratch =
  QCheck.Test.make ~count:300 ~name:"k-dirty rehash = from-scratch root"
    (QCheck.make
       QCheck.Gen.(
         let* a = buffer_gen in
         let leaves = Array.length (Merkle.leaf_bounds ~page (Bytes.length a)) in
         let* dirty = list_size (int_bound 6) (int_bound (leaves - 1)) in
         let* flips = list_repeat (List.length dirty) (int_bound (page - 1)) in
         return (a, dirty, flips)))
    (fun (a, dirty, flips) ->
      let t0 = Merkle.of_bytes ~page a in
      let b = Bytes.copy a in
      let bounds = Merkle.leaf_bounds ~page (Bytes.length b) in
      (* Flip one byte inside each dirty leaf (when it has bytes). *)
      List.iter2
        (fun leaf flip ->
          let off, len = bounds.(leaf) in
          if len > 0 then
            let i = off + (flip mod len) in
            Bytes.set b i (Char.chr (Char.code (Bytes.get b i) lxor 1)))
        dirty flips;
      let t1, _ = Merkle.rehash t0 b ~dirty in
      Merkle.equal_root t1 (Merkle.of_bytes ~page b))

let prop_descent_localizes =
  QCheck.Test.make ~count:300 ~name:"descent finds the byte-survey's pages"
    (QCheck.make
       QCheck.Gen.(
         let* a = buffer_gen in
         let* muts =
           list_size (int_bound 8) (int_bound (max 0 (Bytes.length a - 1)))
         in
         return (a, muts)))
    (fun (a, muts) ->
      let b = Bytes.copy a in
      List.iter
        (fun off ->
          if Bytes.length b > 0 then
            Bytes.set b off (Char.chr (Char.code (Bytes.get b off) lxor 1)))
        muts;
      let deviant, _ =
        Merkle.diverging_leaves (Merkle.of_bytes ~page a)
          (Merkle.of_bytes ~page b)
      in
      (* The ground truth: the pages holding the byte-level diffs. *)
      let expected =
        Pinpoint.diff_offsets a b
        |> List.map (fun off -> off / page)
        |> List.sort_uniq compare
      in
      deviant = expected)

let prop_chunked_md5 =
  QCheck.Test.make ~count:300 ~name:"chunked update at random splits"
    (QCheck.make
       QCheck.Gen.(
         let* s = string_size (int_bound 600) in
         let* cuts =
           list_size (int_bound 8) (int_bound (max 0 (String.length s)))
         in
         return (s, cuts)))
    (fun (s, cuts) ->
      let cuts = List.sort_uniq compare (0 :: String.length s :: cuts) in
      let ctx = Md5.init () in
      let rec feed = function
        | a :: (b :: _ as rest) ->
            Md5.update_string ctx (String.sub s a (b - a));
            feed rest
        | _ -> ()
      in
      feed cuts;
      Md5.final ctx = Md5.digest_string s)

(* --- checker-level units -------------------------------------------------- *)

let test_parallel_leaves_agree () =
  (* Domain-parallel leaf hashing must produce the sequential tree; the
     buffer must clear the 16-leaf fan-out threshold. *)
  let data = Bytes.init (40 * Merkle.default_page_size) (fun i -> Char.chr (i land 0xff)) in
  Mc_parallel.Pool.with_pool 4 (fun pool ->
      check Alcotest.bool "same root" true
        (Merkle.equal_root
           (Checker.merkle_of_bytes ~pool data)
           (Checker.merkle_of_bytes data)))

let test_rehash_meters_dirty_only () =
  let data = Bytes.make (32 * Merkle.default_page_size) 'x' in
  let t = Checker.merkle_of_bytes data in
  Bytes.set data 0 'y';
  let m = Meter.create () in
  Meter.set_phase m Meter.Checker;
  let t' = Checker.merkle_rehash ~meter:m t data ~dirty:[ 0 ] in
  let c = Meter.get m Meter.Checker in
  check Alcotest.int "one page hashed" Merkle.default_page_size
    c.Meter.bytes_hashed;
  check Alcotest.bool "interior metered" true (c.Meter.merkle_nodes > 0);
  check Alcotest.bool "root moved" false (Merkle.equal_root t t')

(* --- digest-cache probe/store race (regression) --------------------------- *)

(* The fixed TOCTOU: [probe] finds a stale entry, drops the lock to run
   the staleness hypercall, and must then remove only the {e identical}
   entry — a racing fresh [store] for the same key must survive. The
   pre-fix code removed by key and lost such stores. *)
let test_probe_store_race () =
  let cloud = Cloud.create ~vms:1 ~seed:46L () in
  let d = Cloud.vm cloud 0 in
  let epoch = Xenctl.memory_epoch d in
  let dc : int Digest_cache.t = Digest_cache.create () in
  (* A huge footprint whose only wrong version is the last stretches the
     out-of-lock staleness scan (it short-circuits on a mismatch) to a
     wide window, so the racing store lands inside it — between the
     probe's find and its drop — on most iterations. *)
  let stale_footprint =
    Array.init 200_000 (fun i ->
        if i = 199_999 then (i, -1) else (i, Xenctl.page_version d i))
  in
  let lost = ref 0 in
  for _ = 1 to 50 do
    (* A stale entry from the previous sweep... *)
    Digest_cache.store dc ~vm:0 ~key:"k" ~epoch ~footprint:stale_footprint 1;
    let barrier = Atomic.make 0 in
    let prober =
      Domain.spawn (fun () ->
          Atomic.incr barrier;
          while Atomic.get barrier < 2 do
            Domain.cpu_relax ()
          done;
          ignore (Digest_cache.probe dc d ~vm:0 ~key:"k"))
    in
    (* ...while this domain finishes a recompute and stores fresh. *)
    Atomic.incr barrier;
    while Atomic.get barrier < 2 do
      Domain.cpu_relax ()
    done;
    Unix.sleepf 0.0002;
    Digest_cache.store dc ~vm:0 ~key:"k" ~epoch ~footprint:[||] 2;
    Domain.join prober;
    (match Digest_cache.probe dc d ~vm:0 ~key:"k" with
    | Some 2 -> ()
    | Some _ | None -> incr lost)
  done;
  check Alcotest.int "fresh stores lost to racing stale probes" 0 !lost

(* --- survey parity: merkle on/off agree on every scenario ----------------- *)

let scenarios =
  [
    ("opcode", "hal.dll", fun c -> Infect.single_opcode_replacement c ~vm:1);
    ("hook", "hal.dll", fun c -> Infect.inline_hook c ~vm:1);
    ("stub", "hello.sys", fun c -> Infect.stub_modification c ~vm:1);
    ("dll-inject", "dummy.sys", fun c -> Infect.dll_injection c ~vm:1);
    ("ptr", "hal.dll", fun c -> Infect.pointer_hook c ~vm:1);
    ( "hide",
      "http.sys",
      fun c -> Infect.hide_module c ~vm:1 ~module_name:"http.sys" );
  ]

let merkle_config () =
  Orchestrator.Config.(
    default
    |> with_incremental (Orchestrator.create_incremental ())
    |> with_merkle true)

(* Run one scenario twice — plain and merkle — on identically seeded
   clouds. The merkle run sweeps clean first so the post-infection sweep
   exercises the refresh + escalation path, not a cold build. *)
let survey_pair ~name ~module_name infect =
  let plain =
    let cloud = Cloud.create ~vms:5 ~seed:46L () in
    ignore (expect_ok (infect cloud));
    Orchestrator.survey cloud ~module_name
  in
  let merkle =
    let cloud = Cloud.create ~vms:5 ~seed:46L () in
    let config = merkle_config () in
    ignore (Orchestrator.survey ~config cloud ~module_name);
    ignore (expect_ok (infect cloud));
    Orchestrator.survey ~config cloud ~module_name
  in
  check Alcotest.string
    (name ^ ": verdict parity")
    (Report.verdict_key plain.Report.s_verdict)
    (Report.verdict_key merkle.Report.s_verdict);
  check
    Alcotest.(list int)
    (name ^ ": deviant parity")
    plain.Report.deviant_vms merkle.Report.deviant_vms;
  check
    Alcotest.(list int)
    (name ^ ": missing parity")
    plain.Report.missing_on merkle.Report.missing_on

let test_scenario_parity () =
  List.iter
    (fun (name, module_name, infect) -> survey_pair ~name ~module_name infect)
    scenarios

let test_clean_parity () =
  let survey config =
    let cloud = Cloud.create ~vms:5 ~seed:46L () in
    Orchestrator.survey ~config cloud ~module_name:"hal.dll"
  in
  let plain = survey Orchestrator.Config.default in
  let merkle = survey (merkle_config ()) in
  check Alcotest.string "clean verdict parity"
    (Report.verdict_key plain.Report.s_verdict)
    (Report.verdict_key merkle.Report.s_verdict);
  check Alcotest.(list int) "nobody flagged" [] merkle.Report.deviant_vms

(* --- O(dirty) partial refresh --------------------------------------------- *)

let counter name =
  Mc_telemetry.Metric.counter_value (Registry.counter name)

let test_benign_touch_partial_refresh () =
  Registry.reset ();
  Registry.set_enabled true;
  Fun.protect
    ~finally:(fun () -> Registry.set_enabled false)
    (fun () ->
      let cloud = Cloud.create ~vms:4 ~seed:46L () in
      let config = merkle_config () in
      ignore (Orchestrator.survey ~config cloud ~module_name:"hal.dll");
      let touched =
        expect_ok (Infect.benign_touch ~module_name:"hal.dll" ~pages:2 cloud ~vm:0)
      in
      check Alcotest.int "two pages touched" 2 (List.length touched);
      let leaves0 = counter "merkle.leaves_rehashed" in
      let rebuilds0 = counter "merkle.full_rebuilds" in
      let esc0 = counter "survey.incremental_escalations" in
      let s = Orchestrator.survey ~config cloud ~module_name:"hal.dll" in
      check Alcotest.(list int) "still clean" [] s.Report.deviant_vms;
      let leaves = counter "merkle.leaves_rehashed" - leaves0 in
      check Alcotest.bool "refreshed some leaves" true (leaves > 0);
      (* Each touched frame can straddle at most two leaves (the reloc
         margin reaches into neighbours), and only Dom1 was dirty. *)
      check Alcotest.bool
        (Printf.sprintf "refreshed O(dirty) leaves (got %d)" leaves)
        true
        (leaves <= 2 * List.length touched + 2);
      check Alcotest.int "no full rebuild" rebuilds0
        (counter "merkle.full_rebuilds");
      check Alcotest.int "no escalation" esc0
        (counter "survey.incremental_escalations"))

let test_infection_escalates_with_descent () =
  Registry.reset ();
  Registry.set_enabled true;
  Fun.protect
    ~finally:(fun () -> Registry.set_enabled false)
    (fun () ->
      let cloud = Cloud.create ~vms:4 ~seed:46L () in
      let config = merkle_config () in
      ignore (Orchestrator.survey ~config cloud ~module_name:"hal.dll");
      ignore (expect_ok (Infect.inline_hook cloud ~vm:1));
      let s = Orchestrator.survey ~config cloud ~module_name:"hal.dll" in
      check Alcotest.(list int) "hook flagged" [ 1 ] s.Report.deviant_vms;
      check Alcotest.bool "descent ran" true (counter "merkle.descents" > 0);
      check Alcotest.bool "deviant pages localized" true
        (counter "merkle.deviant_pages" > 0);
      check Alcotest.bool "then escalated to the byte-level survey" true
        (counter "survey.incremental_escalations" > 0))

let () =
  Alcotest.run "merkle"
    [
      ( "properties",
        List.map QCheck_alcotest.to_alcotest
          [
            prop_root_equality;
            prop_rehash_equals_scratch;
            prop_descent_localizes;
            prop_chunked_md5;
          ] );
      ( "checker",
        [
          Alcotest.test_case "parallel leaves agree" `Quick
            test_parallel_leaves_agree;
          Alcotest.test_case "rehash meters dirty only" `Quick
            test_rehash_meters_dirty_only;
        ] );
      ( "digest-cache race",
        [ Alcotest.test_case "probe/store race" `Quick test_probe_store_race ] );
      ( "parity",
        [
          Alcotest.test_case "six scenarios" `Quick test_scenario_parity;
          Alcotest.test_case "clean pool" `Quick test_clean_parity;
        ] );
      ( "o(dirty)",
        [
          Alcotest.test_case "benign touch refreshes leaves" `Quick
            test_benign_touch_partial_refresh;
          Alcotest.test_case "infection escalates via descent" `Quick
            test_infection_escalates_with_descent;
        ] );
    ]
