(* Tests for the patrol service. *)

module Patrol = Modchecker.Patrol
module Orchestrator = Modchecker.Orchestrator
module Cloud = Mc_hypervisor.Cloud
module Stress = Mc_workload.Stress

let check = Alcotest.check

let small_config =
  {
    Patrol.default_config with
    Patrol.watch = [ "hal.dll"; "http.sys" ];
    interval_s = 10.0;
  }

let test_clean_patrol_is_silent () =
  let cloud = Cloud.create ~vms:3 ~seed:501L () in
  let o = Patrol.run ~config:small_config cloud ~until:60.0 in
  check Alcotest.int "no alarms" 0 (List.length o.Patrol.alarms);
  check Alcotest.int "six sweeps in 60s at 10s interval" 6 o.Patrol.sweeps;
  Alcotest.(check bool) "cpu accounted" true (o.Patrol.cpu_spent > 0.0);
  Alcotest.(check bool) "sweep wall positive" true (o.Patrol.mean_sweep_wall > 0.0);
  Alcotest.(check bool) "clock advanced past the horizon" true
    (o.Patrol.virtual_elapsed >= 60.0)

let test_detects_timed_infection () =
  let cloud = Cloud.create ~vms:3 ~seed:502L () in
  let infect cloud =
    match Mc_malware.Infect.inline_hook cloud ~vm:1 with
    | Ok _ -> ()
    | Error e -> Alcotest.fail e
  in
  let o =
    Patrol.run ~config:small_config ~events:[ (35.0, infect) ] cloud
      ~until:100.0
  in
  let hits =
    List.filter
      (fun a ->
        a.Patrol.alarm_module = "hal.dll"
        && a.Patrol.kind = Patrol.Hash_deviation)
      o.Patrol.alarms
  in
  Alcotest.(check bool) "alarms raised" true (hits <> []);
  (match hits with
  | first :: _ ->
      check Alcotest.(list int) "names the victim" [ 1 ] first.Patrol.alarm_vms;
      Alcotest.(check bool) "alarm after infection time" true
        (first.Patrol.at >= 35.0)
  | [] -> assert false);
  match Patrol.time_to_detect o ~module_name:"hal.dll" ~infected_at:35.0 with
  | Some ttd ->
      Alcotest.(check bool)
        (Printf.sprintf "TTD %.1fs within one interval + sweep" ttd)
        true
        (ttd >= 0.0 && ttd <= small_config.Patrol.interval_s +. 1.0)
  | None -> Alcotest.fail "time_to_detect must find the alarm"

let test_ttd_scales_with_interval () =
  let ttd interval =
    let cloud = Cloud.create ~vms:3 ~seed:503L () in
    let infect cloud =
      match Mc_malware.Infect.inline_hook cloud ~vm:1 with
      | Ok _ -> ()
      | Error e -> Alcotest.fail e
    in
    let config = { small_config with Patrol.interval_s = interval } in
    let o = Patrol.run ~config ~events:[ (5.0, infect) ] cloud ~until:200.0 in
    match Patrol.time_to_detect o ~module_name:"hal.dll" ~infected_at:5.0 with
    | Some t -> t
    | None -> Alcotest.fail "not detected"
  in
  Alcotest.(check bool) "longer interval, later detection" true
    (ttd 60.0 > ttd 10.0)

let test_hidden_module_alarm () =
  let cloud = Cloud.create ~vms:3 ~seed:504L () in
  let hide cloud =
    match Mc_malware.Infect.hide_module cloud ~vm:2 ~module_name:"http.sys" with
    | Ok _ -> ()
    | Error e -> Alcotest.fail e
  in
  let o =
    Patrol.run ~config:small_config ~events:[ (15.0, hide) ] cloud ~until:60.0
  in
  Alcotest.(check bool) "missing-module alarm raised" true
    (List.exists
       (fun a ->
         a.Patrol.kind = Patrol.Missing_module
         && a.Patrol.alarm_module = "http.sys"
         && a.Patrol.alarm_vms = [ 2 ])
       o.Patrol.alarms)

let test_unwatched_hidden_module_list_alarm () =
  let cloud = Cloud.create ~vms:3 ~seed:505L () in
  let hide cloud =
    match Mc_malware.Infect.hide_module cloud ~vm:0 ~module_name:"ntfs.sys" with
    | Ok _ -> ()
    | Error e -> Alcotest.fail e
  in
  (* ntfs.sys is not on the watch list; only the list comparison sees it. *)
  let o =
    Patrol.run ~config:small_config ~events:[ (15.0, hide) ] cloud ~until:60.0
  in
  Alcotest.(check bool) "list-discrepancy alarm" true
    (List.exists
       (fun a ->
         a.Patrol.kind = Patrol.List_discrepancy
         && a.Patrol.alarm_module = "ntfs.sys")
       o.Patrol.alarms)

let test_load_slows_sweeps () =
  let sweep_wall loaded =
    let cloud = Cloud.create ~vms:6 ~cores:2 ~seed:506L () in
    if loaded then Cloud.set_workload_all cloud Stress.heavyload;
    let o = Patrol.run ~config:small_config cloud ~until:40.0 in
    o.Patrol.mean_sweep_wall
  in
  Alcotest.(check bool) "stressed cloud slows the patrol" true
    (sweep_wall true > sweep_wall false *. 1.5)

let test_canonical_strategy_patrol () =
  let cloud = Cloud.create ~vms:3 ~seed:507L () in
  let infect cloud =
    match Mc_malware.Infect.single_opcode_replacement cloud ~vm:1 with
    | Ok _ -> ()
    | Error e -> Alcotest.fail e
  in
  let config =
    {
      small_config with
      Patrol.check =
        Orchestrator.Config.(default |> with_strategy Orchestrator.Canonical);
    }
  in
  let o = Patrol.run ~config ~events:[ (12.0, infect) ] cloud ~until:60.0 in
  Alcotest.(check bool) "canonical patrol detects too" true
    (List.exists
       (fun a -> a.Patrol.kind = Patrol.Hash_deviation)
       o.Patrol.alarms)

let test_patrol_overrun () =
  (* An interval shorter than a sweep: the patrol must still make forward
     progress (back-to-back sweeps), never spin at one instant. *)
  let cloud = Cloud.create ~vms:6 ~seed:508L () in
  let config =
    { small_config with Patrol.interval_s = 0.001;
      watch = Mc_pe.Catalog.standard_modules }
  in
  let o = Patrol.run ~config cloud ~until:1.0 in
  Alcotest.(check bool) "finished" true (o.Patrol.virtual_elapsed >= 1.0);
  Alcotest.(check bool) "multiple sweeps" true (o.Patrol.sweeps > 1);
  Alcotest.(check bool) "bounded sweeps" true (o.Patrol.sweeps < 100)

let test_parallel_workers_speed_sweeps () =
  let wall workers =
    let cloud = Cloud.create ~vms:8 ~cores:8 ~seed:509L () in
    let config =
      { small_config with Patrol.workers;
        watch = Mc_pe.Catalog.standard_modules }
    in
    (Patrol.run ~config cloud ~until:25.0).Patrol.mean_sweep_wall
  in
  Alcotest.(check bool) "4 workers sweep faster than 1" true
    (wall 4 < wall 1 /. 2.0)

let test_alarm_kind_strings () =
  check Alcotest.string "hash" "hash deviation"
    (Patrol.alarm_kind_string Patrol.Hash_deviation);
  check Alcotest.string "missing" "missing module"
    (Patrol.alarm_kind_string Patrol.Missing_module);
  check Alcotest.string "list" "module-list discrepancy"
    (Patrol.alarm_kind_string Patrol.List_discrepancy)

let () =
  Alcotest.run "patrol"
    [
      ( "service",
        [
          Alcotest.test_case "clean is silent" `Quick test_clean_patrol_is_silent;
          Alcotest.test_case "timed infection" `Quick test_detects_timed_infection;
          Alcotest.test_case "ttd vs interval" `Slow test_ttd_scales_with_interval;
          Alcotest.test_case "hidden watched module" `Quick
            test_hidden_module_alarm;
          Alcotest.test_case "hidden unwatched module" `Quick
            test_unwatched_hidden_module_list_alarm;
          Alcotest.test_case "load slows sweeps" `Quick test_load_slows_sweeps;
          Alcotest.test_case "canonical strategy" `Quick
            test_canonical_strategy_patrol;
          Alcotest.test_case "overrun" `Quick test_patrol_overrun;
          Alcotest.test_case "parallel workers" `Quick
            test_parallel_workers_speed_sweeps;
          Alcotest.test_case "kind strings" `Quick test_alarm_kind_strings;
        ] );
    ]
