(* Evasive-adversary tests: each Strategy machine's exact timeline and
   its effect on the real checker, the trap-vs-poll detection gap, the
   read-channel anchor audit against the checker-tamperer, and the
   time-aware oracle that keeps simtest honest about TOCTOU windows. *)

module Strategy = Mc_malware.Strategy
module Patrol = Modchecker.Patrol
module Orchestrator = Modchecker.Orchestrator
module Report = Modchecker.Report
module Cloud = Mc_hypervisor.Cloud
module Oracle = Mc_simtest.Oracle

let check = Alcotest.check

let expect_ok = function Ok v -> v | Error e -> Alcotest.fail e

let survey ?config cloud name =
  Orchestrator.survey ?config cloud ~module_name:name

let deviants ?config cloud name = (survey ?config cloud name).Report.deviant_vms

(* --- TOCTOU restorer ---------------------------------------------------- *)

let test_toctou_timeline () =
  let cloud = Cloud.create ~vms:3 ~seed:1601L () in
  let m =
    expect_ok
      (Strategy.toctou cloud ~vm:1 ~start:10.0 ~dwell:5.0 ~period:20.0)
  in
  check
    Alcotest.(list (pair (float 1e-9) string))
    "pure schedule"
    [
      (10.0, "infected"); (15.0, "restored");
      (30.0, "infected"); (35.0, "restored");
      (50.0, "infected");
    ]
    (List.map
       (fun (t, a) ->
         (t, match a with Strategy.Infected -> "infected" | Restored -> "restored"))
       (Strategy.timeline m ~until:50.0));
  (* Infect boundary inclusive, restore boundary exclusive. *)
  Alcotest.(check bool) "clean just before start" false (Strategy.dirty_at m 9.9);
  Alcotest.(check bool) "dirty at the infect instant" true (Strategy.dirty_at m 10.0);
  Alcotest.(check bool) "dirty inside the window" true (Strategy.dirty_at m 12.0);
  Alcotest.(check bool) "clean at the restore instant" false (Strategy.dirty_at m 15.0);
  Alcotest.(check bool) "dirty again next period" true (Strategy.dirty_at m 31.0)

let test_toctou_tick_mutates_and_restores () =
  let cloud = Cloud.create ~vms:3 ~seed:1602L () in
  let m =
    expect_ok
      (Strategy.toctou cloud ~vm:1 ~start:10.0 ~dwell:5.0 ~period:20.0)
  in
  check Alcotest.(list int) "clean before start" []
    (deviants cloud "hal.dll");
  (match Strategy.tick m ~now:12.0 with
  | Ok [ (10.0, Strategy.Infected) ] -> ()
  | Ok _ -> Alcotest.fail "expected exactly the t=10 infect"
  | Error e -> Alcotest.fail e);
  check Alcotest.(list int) "dirty during the dwell" [ 1 ]
    (deviants cloud "hal.dll");
  (match Strategy.tick m ~now:16.0 with
  | Ok [ (15.0, Strategy.Restored) ] -> ()
  | Ok _ -> Alcotest.fail "expected exactly the t=15 restore"
  | Error e -> Alcotest.fail e);
  (* The restore is byte-exact: the pool is indistinguishable from one
     that was never touched. *)
  check Alcotest.(list int) "byte-exact restore" [] (deviants cloud "hal.dll");
  check Alcotest.(list int) "canonical agrees" []
    (deviants
       ~config:
         Orchestrator.Config.(default |> with_strategy Orchestrator.Canonical)
       cloud "hal.dll");
  check Alcotest.int "one infection so far" 1 (Strategy.infections m);
  check Alcotest.int "one restore so far" 1 (Strategy.restores m);
  Alcotest.(check bool) "machine still alive" true (Strategy.alive m);
  (match Strategy.next_transition m with
  | Some t -> check (Alcotest.float 1e-9) "next infect at 30" 30.0 t
  | None -> Alcotest.fail "expected a pending transition");
  (* tick is idempotent between transition times. *)
  match Strategy.tick m ~now:16.0 with
  | Ok [] -> ()
  | Ok _ -> Alcotest.fail "idempotent tick performed something"
  | Error e -> Alcotest.fail e

(* --- pager -------------------------------------------------------------- *)

let test_pager_degrades_survey_instead_of_deviating () =
  let cloud = Cloud.create ~vms:4 ~seed:1603L () in
  let m = expect_ok (Strategy.pager cloud ~vm:1 ~start:5.0) in
  (match Strategy.tick m ~now:6.0 with
  | Ok [ (5.0, Strategy.Infected) ] -> ()
  | Ok _ -> Alcotest.fail "expected the t=5 hook"
  | Error e -> Alcotest.fail e);
  let s = survey cloud "hal.dll" in
  (* The hooked VM's frames fault on every Dom0 mapping: it drops out of
     the vote entirely instead of being read dirty. *)
  Alcotest.(check bool) "victim is unreachable" true
    (List.mem_assoc 1 s.Report.unreachable_on);
  check Alcotest.(list int) "never reported deviant" [] s.Report.deviant_vms;
  check Alcotest.int "the rest respond" 3 s.Report.s_responded

(* --- coordinated racer -------------------------------------------------- *)

let test_race_flips_majority_vote () =
  let cloud = Cloud.create ~vms:5 ~seed:1604L () in
  let m = expect_ok (Strategy.race cloud ~vms:[ 0; 1; 2 ] ~start:5.0) in
  (match Strategy.tick m ~now:6.0 with
  | Ok [ (5.0, Strategy.Infected) ] -> ()
  | Ok _ -> Alcotest.fail "expected the coordinated patch at t=5"
  | Error e -> Alcotest.fail e);
  (* Three of five carry the same patch: the infected copies vouch for
     each other and the clean minority gets framed. *)
  check Alcotest.(list int) "clean minority framed" [ 3; 4 ]
    (deviants cloud "hal.dll");
  check Alcotest.(list int) "canonical framed too" [ 3; 4 ]
    (deviants
       ~config:
         Orchestrator.Config.(default |> with_strategy Orchestrator.Canonical)
       cloud "hal.dll")

(* --- checker-tamperer --------------------------------------------------- *)

let test_tamper_hides_from_survey_anchor_audit_catches () =
  let cloud = Cloud.create ~vms:3 ~seed:1605L () in
  let m = expect_ok (Strategy.tamper cloud ~vm:0 ~start:5.0) in
  (match Strategy.tick m ~now:6.0 with
  | Ok [ (5.0, Strategy.Infected) ] -> ()
  | Ok _ -> Alcotest.fail "expected the t=5 shim install"
  | Error e -> Alcotest.fail e);
  Alcotest.(check bool) "shim installed" true (Strategy.masked m);
  (* Every survey channel the checker normally uses reads through the
     shim and sees the clean snapshot. *)
  let inc = Orchestrator.create_incremental () in
  let config = Orchestrator.Config.(default |> with_incremental inc) in
  check Alcotest.(list int) "survey is blind" []
    (deviants ~config cloud "hal.dll");
  (* The raw physical read path is not interposable; auditing the two
     channels against each other over the cached footprint exposes the
     lie, pinned to the module and VM. *)
  check
    Alcotest.(list (pair string int))
    "anchor audit names the victim"
    [ ("hal.dll", 0) ]
    (Orchestrator.audit_anchors inc cloud ~watch:[ "hal.dll" ])

let test_tamper_patrol_raises_anchor_mismatch () =
  let cloud = Cloud.create ~vms:3 ~seed:1606L () in
  let m = expect_ok (Strategy.tamper cloud ~vm:1 ~start:25.0) in
  let config =
    {
      Patrol.default_config with
      Patrol.watch = [ "hal.dll" ];
      interval_s = 20.0;
      incremental = true;
      audit_anchors = true;
    }
  in
  let o =
    Patrol.run ~config
      ~events:(Strategy.events m ~until:100.0)
      cloud ~until:100.0
  in
  let anchor_alarms =
    List.filter (fun a -> a.Patrol.kind = Patrol.Anchor_mismatch) o.Patrol.alarms
  in
  Alcotest.(check bool) "anchor mismatch raised" true (anchor_alarms <> []);
  List.iter
    (fun a ->
      check Alcotest.string "on the watched module" "hal.dll"
        a.Patrol.alarm_module;
      check Alcotest.(list int) "naming the shimmed VM" [ 1 ]
        a.Patrol.alarm_vms)
    anchor_alarms;
  (* Anchor mismatches count as detections. *)
  (match Patrol.time_to_detect o ~module_name:"hal.dll" ~infected_at:25.0 with
  | Some d -> Alcotest.(check bool) "detected within a sweep period" true (d <= 20.5)
  | None -> Alcotest.fail "tamperer went undetected")

(* --- trap vs poll: the restore write is itself a trap ------------------- *)

let test_trap_catches_what_polling_misses () =
  (* Dirty windows [7,17) and [107,117); 30 s sweeps observe at 0, 30,
     60, 90, 120 — never inside a window. *)
  let run event_driven =
    let cloud = Cloud.create ~vms:3 ~seed:1607L () in
    let m =
      expect_ok
        (Strategy.toctou cloud ~vm:1 ~start:7.0 ~dwell:10.0 ~period:100.0)
    in
    let config =
      {
        Patrol.default_config with
        Patrol.watch = [ "hal.dll" ];
        interval_s = 30.0;
        incremental = event_driven;
      }
    in
    let events = Strategy.events m ~until:120.0 in
    if event_driven then Patrol.run_events ~config ~events cloud ~until:120.0
    else Patrol.run ~config ~events cloud ~until:120.0
  in
  let polled = run false in
  (match Patrol.time_to_detect polled ~module_name:"hal.dll" ~infected_at:7.0 with
  | None -> ()
  | Some d -> Alcotest.failf "30s polling should miss both windows, got %.3fs" d);
  let trapped = run true in
  let deviations =
    List.filter
      (fun a -> a.Patrol.kind = Patrol.Hash_deviation)
      trapped.Patrol.alarms
  in
  check Alcotest.int "both infect writes trap" 2 (List.length deviations);
  List.iter
    (fun a ->
      check Alcotest.(list int) "naming the victim" [ 1 ] a.Patrol.alarm_vms)
    deviations;
  match Patrol.time_to_detect trapped ~module_name:"hal.dll" ~infected_at:7.0 with
  | Some d -> Alcotest.(check bool) "detection is immediate" true (d < 1.0)
  | None -> Alcotest.fail "event-driven patrol missed the TOCTOU restorer"

(* --- detection probability is monotone in sampling cadence -------------- *)

let prop_sampling_monotone =
  (* Pure timeline property: the sweep instants at interval 30 are a
     subset of those at 15, which are a subset of those at 5, so
     detection under ideal sampling can only improve as the cadence
     rises — for every (start, dwell, period), not just on average. *)
  let gen =
    QCheck.Gen.(
      let* start = float_range 0.0 120.0 in
      let* dwell = float_range 0.5 8.0 in
      let* slack = float_range 2.0 60.0 in
      return (start, dwell, dwell +. slack))
  in
  QCheck.Test.make ~count:200
    ~name:"ideal-sampling detection is monotone in cadence"
    (QCheck.make gen)
    (fun (start, dwell, period) ->
      let cloud = Cloud.create ~vms:2 ~seed:1608L () in
      let m =
        match Strategy.toctou cloud ~vm:0 ~start ~dwell ~period with
        | Ok m -> m
        | Error e -> QCheck.Test.fail_report e
      in
      let detect interval =
        let rec probe t = t <= 240.0 && (Strategy.dirty_at m t || probe (t +. interval)) in
        probe 0.0
      in
      let d5 = detect 5.0 and d15 = detect 15.0 and d30 = detect 30.0 in
      (not d30 || d15) && (not d15 || d5))

let test_patrol_detection_probability_monotone () =
  (* The real-patrol X16 rows (virtual clock, deterministic): tighter
     cadence never detects less, and the event-driven row is certain. *)
  let rows = Mc_harness.Figures.evasion_detection () in
  let p label =
    (List.find (fun r -> r.Mc_harness.Figures.ez_label = label) rows)
      .Mc_harness.Figures.ez_detect_p
  in
  Alcotest.(check bool) "p(5s) >= p(15s)" true (p "poll 5s" >= p "poll 15s");
  Alcotest.(check bool) "p(15s) >= p(30s)" true (p "poll 15s" >= p "poll 30s");
  Alcotest.(check bool) "event-driven is certain" true
    (p "event-driven" >= 0.99)

(* --- the time-aware oracle ---------------------------------------------- *)

let test_oracle_windows_match_guest_truth () =
  (* Regression: an oracle that modeled a TOCTOU infect as permanent
     would predict a deviation during the clean dwell and false-flag
     every surviving checker. The time-aware tag must cycle with the
     machine's windows and agree with a real survey on both sides of the
     restore boundary. *)
  let oracle = Oracle.create ~vms:3 in
  Oracle.set_now oracle 10.0;
  Oracle.apply_evade_toctou oracle ~vm:1 ~module_name:"hal.dll"
    ~func:"HalInitSystem" ~dwell:5.0 ~period:20.0;
  let tag_at t =
    Oracle.set_now oracle t;
    Oracle.tag oracle 1 "hal.dll"
  in
  Alcotest.(check bool) "dirty inside the dwell" true
    (tag_at 12.0 <> Some Oracle.clean_tag);
  Alcotest.(check bool) "clean after the restore" true
    (tag_at 20.0 = Some Oracle.clean_tag);
  Alcotest.(check bool) "dirty again next period" true
    (tag_at 31.0 <> Some Oracle.clean_tag);
  Alcotest.(check bool) "still counted as an infection" true
    (Oracle.infections oracle >= 1);
  (* The guest agrees: drive the real machine over the same schedule and
     survey during a clean dwell. *)
  let cloud = Cloud.create ~vms:3 ~seed:1609L () in
  let m =
    expect_ok (Strategy.toctou cloud ~vm:1 ~start:10.0 ~dwell:5.0 ~period:20.0)
  in
  (match Strategy.tick m ~now:20.0 with
  | Ok _ -> ()
  | Error e -> Alcotest.fail e);
  check Alcotest.(list int) "real survey intact during the clean dwell" []
    (deviants cloud "hal.dll")

let () =
  Alcotest.run "evasion"
    [
      ( "toctou",
        [
          Alcotest.test_case "timeline and dirty windows" `Quick
            test_toctou_timeline;
          Alcotest.test_case "tick mutates and restores byte-exact" `Quick
            test_toctou_tick_mutates_and_restores;
        ] );
      ( "pager",
        [
          Alcotest.test_case "degrades instead of deviating" `Quick
            test_pager_degrades_survey_instead_of_deviating;
        ] );
      ( "race",
        [
          Alcotest.test_case "flips the majority vote" `Quick
            test_race_flips_majority_vote;
        ] );
      ( "tamper",
        [
          Alcotest.test_case "survey blind, anchor audit catches" `Quick
            test_tamper_hides_from_survey_anchor_audit_catches;
          Alcotest.test_case "patrol raises anchor mismatch" `Quick
            test_tamper_patrol_raises_anchor_mismatch;
        ] );
      ( "detection",
        [
          Alcotest.test_case "trap catches what polling misses" `Quick
            test_trap_catches_what_polling_misses;
          QCheck_alcotest.to_alcotest prop_sampling_monotone;
          Alcotest.test_case "patrol detection probability monotone" `Slow
            test_patrol_detection_probability_monotone;
        ] );
      ( "oracle",
        [
          Alcotest.test_case "time-aware windows match guest truth" `Quick
            test_oracle_windows_match_guest_truth;
        ] );
    ]
