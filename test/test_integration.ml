(* End-to-end integration stories that cross every library boundary. *)

module Cloud = Mc_hypervisor.Cloud
module Dom = Mc_hypervisor.Dom
module Kernel = Mc_winkernel.Kernel
module Orchestrator = Modchecker.Orchestrator
module Report = Modchecker.Report
module Infect = Mc_malware.Infect
module Artifact = Modchecker.Artifact
module Catalog = Mc_pe.Catalog

let check = Alcotest.check

let verdict cloud vm name =
  match Orchestrator.check_module cloud ~target_vm:vm ~module_name:name with
  | Ok o -> o.Orchestrator.report
  | Error e -> Alcotest.fail e

(* Story 1: infection, detection, remediation. Ops detects the deviant VM,
   restores the golden file (the paper's "revert to clean snapshot"), and
   the pool converges again. *)
let test_detect_and_remediate () =
  let cloud = Cloud.create ~vms:4 ~seed:301L () in
  (match Infect.single_opcode_replacement cloud ~vm:2 with
  | Ok _ -> ()
  | Error e -> Alcotest.fail e);
  let survey = Orchestrator.survey cloud ~module_name:"hal.dll" in
  check Alcotest.(list int) "deviant identified" [ 2 ] survey.Report.deviant_vms;
  (* Remediate: restore the clean file and reboot. *)
  Infect.write_module_file (Cloud.vm cloud 2) ~name:"hal.dll"
    (Catalog.image "hal.dll").Catalog.file;
  Cloud.reboot_vm cloud 2;
  let survey = Orchestrator.survey cloud ~module_name:"hal.dll" in
  check Alcotest.(list int) "pool clean again" [] survey.Report.deviant_vms;
  Alcotest.(check bool) "victim votes intact" true
    (verdict cloud 2 "hal.dll").Report.majority_ok

(* Story 2: two different VMs infected with different techniques at once;
   each is pinned with its own artifact signature. *)
let test_two_simultaneous_infections () =
  let cloud = Cloud.create ~vms:6 ~seed:302L () in
  (match Infect.inline_hook cloud ~vm:1 with
  | Ok _ -> ()
  | Error e -> Alcotest.fail e);
  (match Infect.single_opcode_replacement cloud ~vm:4 with
  | Ok _ -> ()
  | Error e -> Alcotest.fail e);
  let survey = Orchestrator.survey cloud ~module_name:"hal.dll" in
  check Alcotest.(list int) "both deviants found" [ 1; 4 ]
    (List.sort compare survey.Report.deviant_vms);
  List.iter
    (fun vm ->
      let r = verdict cloud vm "hal.dll" in
      Alcotest.(check bool) "flagged" false r.Report.majority_ok;
      check
        Alcotest.(list string)
        "only .text" [ ".text" ]
        (List.map Artifact.kind_name r.Report.flagged_artifacts))
    [ 1; 4 ];
  (* Clean VMs still pass: 3 of 5 comparisons succeed. *)
  let r = verdict cloud 0 "hal.dll" in
  Alcotest.(check bool) "clean VM passes" true r.Report.majority_ok;
  check Alcotest.int "3/5 matches" 3 r.Report.matches

(* Story 3: every module of the standard set stays consistent across a
   freshly booted pool — a full-catalog sweep. *)
let test_full_catalog_sweep () =
  let cloud = Cloud.create ~vms:3 ~seed:303L () in
  List.iter
    (fun name ->
      let r = verdict cloud 0 name in
      Alcotest.(check bool) (name ^ " intact") true r.Report.majority_ok)
    Catalog.standard_modules

(* Story 4: DKOM-hidden module is invisible to the hash check but caught
   by list comparison; unhiding is impossible, so remediation is a
   reboot. *)
let test_dkom_story () =
  let cloud = Cloud.create ~vms:3 ~seed:304L () in
  (match Infect.hide_module cloud ~vm:1 ~module_name:"http.sys" with
  | Ok _ -> ()
  | Error e -> Alcotest.fail e);
  (* The named check on the victim errors out (module gone)... *)
  (match
     Orchestrator.check_module cloud ~target_vm:1 ~module_name:"http.sys"
   with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "hidden module should not be found");
  (* ...but the cross-VM list comparison names the victim. *)
  (match Orchestrator.compare_module_lists cloud with
  | [ d ] -> check Alcotest.(list int) "victim" [ 1 ] d.Orchestrator.missing_on
  | _ -> Alcotest.fail "expected exactly one discrepancy");
  Cloud.reboot_vm cloud 1;
  check Alcotest.int "reboot clears the hiding" 0
    (List.length (Orchestrator.compare_module_lists cloud))

(* Story 5: the paper's scale — 15 VMs, 8 cores — full detection of the
   flagship experiment with per-artifact verification. *)
let test_paper_scale () =
  let cloud = Cloud.create ~vms:15 ~cores:8 ~seed:305L () in
  (match Infect.dll_injection cloud ~vm:9 with
  | Ok _ -> ()
  | Error e -> Alcotest.fail e);
  let r = verdict cloud 9 "dummy.sys" in
  Alcotest.(check bool) "detected at 15 VMs" false r.Report.majority_ok;
  check Alcotest.int "14 comparisons" 14 r.Report.total;
  check Alcotest.int "0 matches" 0 r.Report.matches;
  let flagged = List.map Artifact.kind_name r.Report.flagged_artifacts in
  List.iter
    (fun expected ->
      Alcotest.(check bool) (expected ^ " flagged") true
        (List.mem expected flagged))
    [
      "IMAGE_NT_HEADER"; "IMAGE_OPTIONAL_HEADER"; "SECTION_HEADER(.text)";
      ".text";
    ];
  Alcotest.(check bool) "DOS not flagged" false
    (List.mem "IMAGE_DOS_HEADER" flagged);
  Alcotest.(check bool) "FILE not flagged" false
    (List.mem "IMAGE_FILE_HEADER" flagged)

(* Story 6: parallel checking across the pool yields identical verdicts
   and survey results. *)
let test_parallel_survey_consistency () =
  let cloud = Cloud.create ~vms:6 ~seed:306L () in
  (match Infect.inline_hook cloud ~vm:2 with
  | Ok _ -> ()
  | Error e -> Alcotest.fail e);
  let seq = Orchestrator.survey cloud ~module_name:"hal.dll" in
  let pool = Mc_parallel.Pool.create 3 in
  let par =
    Orchestrator.survey
      ~config:
        Orchestrator.Config.(default |> with_mode (Orchestrator.Parallel pool))
      cloud ~module_name:"hal.dll"
  in
  Mc_parallel.Pool.shutdown pool;
  check Alcotest.(list int) "same deviants" seq.Report.deviant_vms
    par.Report.deviant_vms;
  check Alcotest.int "same pair count"
    (List.length seq.Report.pairwise_matches)
    (List.length par.Report.pairwise_matches)

(* Story 7: the monitor's Fig. 9 run alongside an actual check — the
   introspected VM's simulated counters show no reaction while the check
   flags real infections. *)
let test_monitoring_during_check () =
  let cloud = Cloud.create ~vms:3 ~seed:307L () in
  let samples =
    Mc_workload.Monitor.run ~stressed:false
      ~introspection_windows:[ (5.0, 8.0) ] ()
  in
  (match Orchestrator.check_module cloud ~target_vm:0 ~module_name:"hal.dll" with
  | Ok o -> Alcotest.(check bool) "check ok" true o.report.Report.majority_ok
  | Error e -> Alcotest.fail e);
  Alcotest.(check bool) "no perturbation" true
    (Mc_workload.Monitor.perturbation samples < 1.0)

let () =
  Alcotest.run "integration"
    [
      ( "stories",
        [
          Alcotest.test_case "detect and remediate" `Quick
            test_detect_and_remediate;
          Alcotest.test_case "two infections" `Quick
            test_two_simultaneous_infections;
          Alcotest.test_case "full catalog sweep" `Quick test_full_catalog_sweep;
          Alcotest.test_case "dkom story" `Quick test_dkom_story;
          Alcotest.test_case "paper scale" `Slow test_paper_scale;
          Alcotest.test_case "parallel survey" `Quick
            test_parallel_survey_consistency;
          Alcotest.test_case "monitoring during check" `Quick
            test_monitoring_during_check;
        ] );
    ]
