(* Tests for the guest memory simulator: physical frames, page tables, and
   address spaces. *)

module Phys = Mc_memsim.Phys
module Pagetable = Mc_memsim.Pagetable
module As = Mc_memsim.Addr_space

let check = Alcotest.check

let page = Phys.frame_size

(* --- Phys --------------------------------------------------------------- *)

let test_phys_alloc () =
  let phys = Phys.create () in
  let a = Phys.alloc_frame phys and b = Phys.alloc_frame phys in
  Alcotest.(check bool) "distinct frames" true (a <> b);
  Alcotest.(check bool) "pfn 0 reserved" true (a <> 0 && b <> 0);
  check Alcotest.int "allocated count" 2 (Phys.frames_allocated phys);
  Alcotest.(check bool) "exists" true (Phys.frame_exists phys a);
  Alcotest.(check bool) "not exists" false (Phys.frame_exists phys 9999)

let test_phys_rw_roundtrip () =
  let phys = Phys.create () in
  let pfn = Phys.alloc_frame phys in
  let src = Bytes.of_string "hello frame" in
  Phys.write phys ((pfn * page) + 100) src 0 (Bytes.length src);
  let dst = Bytes.create (Bytes.length src) in
  Phys.read phys ((pfn * page) + 100) dst 0 (Bytes.length dst);
  check Alcotest.string "roundtrip" "hello frame" (Bytes.to_string dst)

let test_phys_versions () =
  let phys = Phys.create () in
  let a = Phys.alloc_frame phys in
  let b = Phys.alloc_frame phys in
  check Alcotest.int "fresh version" 0 (Phys.page_version phys a);
  let gen0 = Phys.write_generation phys in
  Phys.write phys (a * page) (Bytes.of_string "x") 0 1;
  check Alcotest.int "bumped" 1 (Phys.page_version phys a);
  check Alcotest.int "untouched" 0 (Phys.page_version phys b);
  Alcotest.(check bool) "generation advanced" true
    (Phys.write_generation phys > gen0);
  (* A cross-frame write dirties both frames. *)
  Phys.write phys ((a * page) + page - 1) (Bytes.of_string "xy") 0 2;
  check Alcotest.int "first bumped again" 2 (Phys.page_version phys a);
  check Alcotest.int "second bumped" 1 (Phys.page_version phys b)

let test_phys_log_dirty () =
  let phys = Phys.create () in
  let a = Phys.alloc_frame phys in
  let b = Phys.alloc_frame phys in
  Phys.write phys (a * page) (Bytes.of_string "x") 0 1;
  check Alcotest.(list int) "off: nothing recorded" [] (Phys.peek_dirty phys);
  Phys.set_log_dirty phys true;
  Alcotest.(check bool) "enabled" true (Phys.log_dirty_enabled phys);
  Phys.write phys (b * page) (Bytes.of_string "x") 0 1;
  Phys.write phys (a * page) (Bytes.of_string "x") 0 1;
  check Alcotest.(list int) "sorted dirty set" [ a; b ] (Phys.peek_dirty phys);
  check Alcotest.(list int) "clean drains" [ a; b ] (Phys.clean_dirty phys);
  check Alcotest.(list int) "empty after clean" [] (Phys.peek_dirty phys);
  Phys.write phys (a * page) (Bytes.of_string "x") 0 1;
  Phys.set_log_dirty phys false;
  check Alcotest.(list int) "disable drops" [] (Phys.peek_dirty phys)

let test_phys_uid_fresh_on_copy () =
  let phys = Phys.create () in
  ignore (Phys.alloc_frame phys);
  let copy = Phys.deep_copy phys in
  Alcotest.(check bool) "distinct uid" true (Phys.uid copy <> Phys.uid phys);
  Alcotest.(check bool) "fresh instance distinct" true
    (Phys.uid (Phys.create ()) <> Phys.uid phys)

let test_phys_cross_frame () =
  let phys = Phys.create () in
  let a = Phys.alloc_frame phys in
  let b = Phys.alloc_frame phys in
  (* Frames are consecutive pfns from the bump allocator. *)
  check Alcotest.int "consecutive" (a + 1) b;
  let src = Bytes.of_string (String.make 100 'Z') in
  let start = (a * page) + page - 50 in
  Phys.write phys start src 0 100;
  let dst = Bytes.create 100 in
  Phys.read phys start dst 0 100;
  check Alcotest.string "cross-frame roundtrip" (Bytes.to_string src)
    (Bytes.to_string dst)

let test_phys_unallocated_reads_zero () =
  let phys = Phys.create () in
  let dst = Bytes.make 8 'x' in
  Phys.read phys (12345 * page) dst 0 8;
  check Alcotest.string "zeros" (String.make 8 '\000') (Bytes.to_string dst)

let test_phys_unallocated_write_raises () =
  let phys = Phys.create () in
  Alcotest.(check bool) "write raises" true
    (match Phys.write phys (777 * page) (Bytes.make 4 'x') 0 4 with
    | () -> false
    | exception Invalid_argument _ -> true)

let test_phys_u32 () =
  let phys = Phys.create () in
  let pfn = Phys.alloc_frame phys in
  Phys.write_u32 phys (pfn * page) 0xCAFEBABEl;
  check Alcotest.int32 "u32 roundtrip" 0xCAFEBABEl (Phys.read_u32 phys (pfn * page))

let test_phys_exhaustion () =
  let phys = Phys.create ~max_frames:2 () in
  ignore (Phys.alloc_frame phys);
  ignore (Phys.alloc_frame phys);
  Alcotest.check_raises "exhausted"
    (Failure "Phys.alloc_frame: out of physical memory") (fun () ->
      ignore (Phys.alloc_frame phys))

let test_watch_traps () =
  let phys = Phys.create () in
  let a = Phys.alloc_frame phys and b = Phys.alloc_frame phys in
  Phys.watch_frames phys [ a; b ];
  check Alcotest.(list int) "armed" (List.sort compare [ a; b ])
    (Phys.watched_frames phys);
  Phys.set_watch_clock phys 12.5;
  Phys.write phys (a * page) (Bytes.of_string "x") 0 1;
  Phys.set_watch_clock phys 13.0;
  Phys.write phys (a * page) (Bytes.of_string "y") 0 1;
  (* The first write trapped and disarmed the frame; the second write is
     trap-free, so the two coalesce into one event at the first time. *)
  check Alcotest.int "one pending event" 1 (Phys.pending_watch_events phys);
  check Alcotest.(list int) "a disarmed, b still armed" [ b ]
    (Phys.watched_frames phys);
  (match Phys.drain_watch_events phys with
  | [ e ] ->
      check Alcotest.int "trapped pfn" a e.Phys.we_pfn;
      check (Alcotest.float 1e-9) "stamped with the first write's clock" 12.5
        e.Phys.we_at;
      check Alcotest.int "version after the write" 1 e.Phys.we_version
  | evs -> Alcotest.fail (Printf.sprintf "expected 1 event, got %d" (List.length evs)));
  check Alcotest.int "drain cleared the queue" 0 (Phys.pending_watch_events phys);
  (* Re-arming traps again. *)
  Phys.watch_frames phys [ a ];
  Phys.set_watch_clock phys 20.0;
  Phys.write phys (a * page) (Bytes.of_string "z") 0 1;
  check Alcotest.int "re-armed frame traps again" 1
    (Phys.pending_watch_events phys);
  ignore (Phys.drain_watch_events phys);
  (* unwatch never traps. *)
  Phys.unwatch_frames phys [ b ];
  Phys.write phys (b * page) (Bytes.of_string "w") 0 1;
  check Alcotest.int "unwatched frame is silent" 0
    (Phys.pending_watch_events phys);
  check Alcotest.(list int) "nothing armed" [] (Phys.watched_frames phys)

let test_watch_not_copied () =
  let phys = Phys.create () in
  let a = Phys.alloc_frame phys in
  Phys.watch_frames phys [ a ];
  Phys.write phys (a * page) (Bytes.of_string "x") 0 1;
  let copy = Phys.deep_copy phys in
  check Alcotest.(list int) "copy has no watches" [] (Phys.watched_frames copy);
  check Alcotest.int "copy has no pending events" 0
    (Phys.pending_watch_events copy);
  check Alcotest.int "original keeps its event" 1
    (Phys.pending_watch_events phys)

let test_read_page () =
  let phys = Phys.create () in
  let pfn = Phys.alloc_frame phys in
  Phys.write phys ((pfn * page) + 7) (Bytes.of_string "abc") 0 3;
  let data = Phys.read_page phys pfn in
  check Alcotest.int "page size" page (Bytes.length data);
  check Alcotest.string "content" "abc" (Bytes.sub_string data 7 3)

(* --- Pagetable ----------------------------------------------------------- *)

let test_pagetable_map_translate () =
  let phys = Phys.create () in
  let pt = Pagetable.create phys in
  let pfn = Phys.alloc_frame phys in
  Pagetable.map pt ~va:0x80001000 ~pfn;
  check Alcotest.(option int) "mapped" (Some ((pfn * page) + 0x123))
    (Pagetable.translate pt (0x80001000 + 0x123));
  check Alcotest.(option int) "unmapped" None (Pagetable.translate pt 0x80002000)

let test_pagetable_unmap () =
  let phys = Phys.create () in
  let pt = Pagetable.create phys in
  let pfn = Phys.alloc_frame phys in
  Pagetable.map pt ~va:0xF8000000 ~pfn;
  Pagetable.unmap pt ~va:0xF8000000;
  check Alcotest.(option int) "unmapped after" None
    (Pagetable.translate pt 0xF8000000);
  (* Unmapping a never-mapped address is a no-op. *)
  Pagetable.unmap pt ~va:0x10000000

let test_pagetable_walk_matches () =
  let phys = Phys.create () in
  let pt = Pagetable.create phys in
  let pfn = Phys.alloc_frame phys in
  Pagetable.map pt ~va:0x80400000 ~pfn;
  check
    Alcotest.(option int)
    "external walk agrees with translate"
    (Pagetable.translate pt 0x80400004)
    (Pagetable.walk phys ~cr3:(Pagetable.cr3 pt) 0x80400004)

let test_pagetable_tables_in_guest_memory () =
  (* The PDE written for a mapping must be readable as raw guest physical
     memory: bit 0 set, frame bits pointing at an allocated frame. *)
  let phys = Phys.create () in
  let pt = Pagetable.create phys in
  let pfn = Phys.alloc_frame phys in
  let va = 0xC0000000 in
  Pagetable.map pt ~va ~pfn;
  let pde_idx = va lsr 22 in
  let pde = Phys.read_u32 phys (Pagetable.cr3 pt + (pde_idx * 4)) in
  Alcotest.(check bool) "PDE present bit" true (Int32.logand pde 1l = 1l);
  let table_pfn = Int32.to_int (Int32.shift_right_logical pde 12) land 0xFFFFF in
  Alcotest.(check bool) "PT frame allocated" true (Phys.frame_exists phys table_pfn)

let test_pagetable_unaligned_rejected () =
  let phys = Phys.create () in
  let pt = Pagetable.create phys in
  Alcotest.check_raises "unaligned map"
    (Invalid_argument "Pagetable.map: unaligned va") (fun () ->
      Pagetable.map pt ~va:0x1234 ~pfn:1)

let test_pagetable_shared_pt_frame () =
  (* Two pages in the same 4 MiB region share one page-table frame. *)
  let phys = Phys.create () in
  let pt = Pagetable.create phys in
  let before = Phys.frames_allocated phys in
  Pagetable.map pt ~va:0x80000000 ~pfn:(Phys.alloc_frame phys);
  Pagetable.map pt ~va:0x80001000 ~pfn:(Phys.alloc_frame phys);
  (* 2 data frames + 1 page-table frame. *)
  check Alcotest.int "frames used" (before + 3) (Phys.frames_allocated phys)

(* --- Addr_space ---------------------------------------------------------- *)

let test_aspace_rw () =
  let phys = Phys.create () in
  let aspace = As.create phys in
  As.map_range aspace ~va:0x80000000 ~size:(3 * page);
  let src = Bytes.of_string (String.make 6000 'M') in
  As.write aspace (0x80000000 + 100) src 0 6000;
  let dst = As.read_bytes aspace (0x80000000 + 100) 6000 in
  check Alcotest.string "cross-page roundtrip" (Bytes.to_string src)
    (Bytes.to_string dst)

let test_aspace_page_fault () =
  let phys = Phys.create () in
  let aspace = As.create phys in
  Alcotest.check_raises "fault on unmapped" (As.Page_fault 0x90000000)
    (fun () -> ignore (As.read_bytes aspace 0x90000000 4))

let test_aspace_map_range_idempotent () =
  let phys = Phys.create () in
  let aspace = As.create phys in
  As.map_range aspace ~va:0x80000000 ~size:page;
  As.write_u32 aspace 0x80000000 0x1234l;
  (* Remapping an already-mapped page must not lose its contents. *)
  As.map_range aspace ~va:0x80000000 ~size:(2 * page);
  check Alcotest.int32 "content preserved" 0x1234l (As.read_u32 aspace 0x80000000)

let test_aspace_accessors () =
  let phys = Phys.create () in
  let aspace = As.create phys in
  As.map_range aspace ~va:0xF8000000 ~size:page;
  As.write_u32_int aspace 0xF8000000 0xF8CC2000;
  check Alcotest.int "u32 int" 0xF8CC2000 (As.read_u32_int aspace 0xF8000000);
  check Alcotest.int "u16" 0x2000 (As.read_u16 aspace 0xF8000000);
  Alcotest.(check bool) "is_mapped" true (As.is_mapped aspace 0xF8000000);
  Alcotest.(check bool) "not mapped" false (As.is_mapped aspace 0xF9000000)

let test_aspace_cr3_page_aligned () =
  let phys = Phys.create () in
  let aspace = As.create phys in
  check Alcotest.int "cr3 aligned" 0 (As.cr3 aspace mod page)

let test_aspace_translate_matches_guest_walk () =
  let phys = Phys.create () in
  let aspace = As.create phys in
  As.map_range aspace ~va:0x80000000 ~size:page;
  check
    Alcotest.(option int)
    "walk from cr3 agrees"
    (As.translate aspace 0x80000010)
    (Pagetable.walk phys ~cr3:(As.cr3 aspace) 0x80000010)

let () =
  Alcotest.run "memsim"
    [
      ( "phys",
        [
          Alcotest.test_case "alloc" `Quick test_phys_alloc;
          Alcotest.test_case "rw roundtrip" `Quick test_phys_rw_roundtrip;
          Alcotest.test_case "cross frame" `Quick test_phys_cross_frame;
          Alcotest.test_case "versions" `Quick test_phys_versions;
          Alcotest.test_case "log-dirty" `Quick test_phys_log_dirty;
          Alcotest.test_case "uid" `Quick test_phys_uid_fresh_on_copy;
          Alcotest.test_case "unallocated read" `Quick
            test_phys_unallocated_reads_zero;
          Alcotest.test_case "unallocated write" `Quick
            test_phys_unallocated_write_raises;
          Alcotest.test_case "u32" `Quick test_phys_u32;
          Alcotest.test_case "exhaustion" `Quick test_phys_exhaustion;
          Alcotest.test_case "read_page" `Quick test_read_page;
          Alcotest.test_case "write traps" `Quick test_watch_traps;
          Alcotest.test_case "watches not copied" `Quick test_watch_not_copied;
        ] );
      ( "pagetable",
        [
          Alcotest.test_case "map/translate" `Quick test_pagetable_map_translate;
          Alcotest.test_case "unmap" `Quick test_pagetable_unmap;
          Alcotest.test_case "walk" `Quick test_pagetable_walk_matches;
          Alcotest.test_case "in guest memory" `Quick
            test_pagetable_tables_in_guest_memory;
          Alcotest.test_case "unaligned" `Quick test_pagetable_unaligned_rejected;
          Alcotest.test_case "shared PT frame" `Quick
            test_pagetable_shared_pt_frame;
        ] );
      ( "addr_space",
        [
          Alcotest.test_case "rw" `Quick test_aspace_rw;
          Alcotest.test_case "page fault" `Quick test_aspace_page_fault;
          Alcotest.test_case "idempotent map" `Quick
            test_aspace_map_range_idempotent;
          Alcotest.test_case "accessors" `Quick test_aspace_accessors;
          Alcotest.test_case "cr3 aligned" `Quick test_aspace_cr3_page_aligned;
          Alcotest.test_case "translate matches walk" `Quick
            test_aspace_translate_matches_guest_walk;
        ] );
    ]
