(* Cross-library property-based tests: invariants that must hold for
   arbitrary modules, bases, and cloud seeds. *)

module Build = Mc_pe.Build
module Read = Mc_pe.Read
module Flags = Mc_pe.Flags
module Catalog = Mc_pe.Catalog
module Loader = Mc_winkernel.Loader
module Cloud = Mc_hypervisor.Cloud
module Orchestrator = Modchecker.Orchestrator
module Report = Modchecker.Report
module Rng = Mc_util.Rng

(* --- PE build/parse roundtrip over random section specs ------------------- *)

let spec_gen =
  QCheck.Gen.(
    let* n_sections = int_range 1 5 in
    let* seed = int in
    return (n_sections, seed))

let make_specs (n_sections, seed) =
  let rng = Rng.create (Int64.of_int seed) in
  List.init n_sections (fun i ->
      let size = 1 + Rng.int rng 3000 in
      let data = Rng.bytes rng size in
      (* A few non-overlapping 4-byte slots on an 8-byte grid. *)
      let n_slots = Rng.int rng (max 1 (size / 64)) in
      let slots =
        List.sort_uniq compare
          (List.init n_slots (fun _ -> 8 * Rng.int rng (max 1 ((size / 8) - 1))))
        |> List.filter (fun off -> off + 4 <= size)
      in
      Build.
        {
          spec_name = Printf.sprintf ".s%d" i;
          spec_data = data;
          spec_characteristics =
            (if i = 0 then Flags.cnt_code lor Flags.mem_execute lor Flags.mem_read
             else Flags.cnt_initialized_data lor Flags.mem_read);
          spec_relocs = slots;
        })

let prop_pe_roundtrip =
  QCheck.Test.make ~count:100 ~name:"pe build/parse roundtrip"
    (QCheck.make spec_gen) (fun params ->
      let specs = make_specs params in
      let file = Build.build specs in
      match Read.parse ~layout:File file with
      | Error _ -> false
      | Ok image ->
          let checksum_ok =
            match Read.verify_checksum file with Ok b -> b | Error _ -> false
          in
          let sections_match =
            List.for_all
              (fun spec ->
                match Read.find_section image spec.Build.spec_name with
                | Some (sec, data) ->
                    sec.Mc_pe.Types.virtual_size
                    = Bytes.length spec.Build.spec_data
                    && Bytes.equal
                         (Bytes.sub data 0 (Bytes.length spec.Build.spec_data))
                         spec.Build.spec_data
                | None -> false)
              specs
          in
          let rvas = Build.layout_rvas specs in
          let expected_slots =
            List.concat_map
              (fun spec ->
                let rva = List.assoc spec.Build.spec_name rvas in
                List.map (fun off -> rva + off) spec.Build.spec_relocs)
              specs
            |> List.sort compare
          in
          let parsed_slots = Read.base_relocations ~layout:File file image in
          checksum_ok && sections_match && parsed_slots = expected_slots)

(* --- Loader: two loads differ only at relocation slots -------------------- *)

let prop_loader_diff_is_relocs =
  QCheck.Test.make ~count:40 ~name:"loads at two bases differ only at slots"
    QCheck.(pair (int_range 0 0x3FF) (int_range 0 0x3FF))
    (fun (s1, s2) ->
      let file = (Catalog.image "disk.sys").Catalog.file in
      let base1 = 0xF8000000 + (s1 * 0x10000) in
      let base2 = 0xF8000000 + (s2 * 0x10000) in
      let mem1 =
        match Loader.simulate_load file ~base:base1 with
        | Ok m -> m
        | Error _ -> Bytes.create 0
      in
      let mem2 =
        match Loader.simulate_load file ~base:base2 with
        | Ok m -> m
        | Error _ -> Bytes.create 0
      in
      let image =
        match Read.parse ~layout:File file with
        | Ok i -> i
        | Error _ -> failwith "parse"
      in
      let slot_ranges =
        List.map
          (fun rva -> (rva, rva + 4))
          (Read.base_relocations ~layout:File file image)
      in
      let in_slot pos =
        List.exists (fun (lo, hi) -> pos >= lo && pos < hi) slot_ranges
      in
      Bytes.length mem1 = Bytes.length mem2
      &&
      let ok = ref true in
      Bytes.iteri
        (fun pos c ->
          if c <> Bytes.get mem2 pos && not (in_slot pos) then ok := false)
        mem1;
      !ok)

(* --- Full pipeline: a clean pool is INTACT for any seed ------------------- *)

let prop_clean_pool_intact =
  QCheck.Test.make ~count:8 ~name:"clean pool votes INTACT at any seed"
    QCheck.(int_bound 100000)
    (fun seed ->
      let cloud = Cloud.create ~vms:3 ~seed:(Int64.of_int seed) () in
      List.for_all
        (fun name ->
          match Orchestrator.check_module cloud ~target_vm:0 ~module_name:name with
          | Ok o -> o.Orchestrator.report.Report.majority_ok
          | Error _ -> false)
        [ "hal.dll"; "disk.sys" ])

(* --- Detection: an infected VM is flagged at any seed ---------------------- *)

let prop_infection_detected =
  QCheck.Test.make ~count:6 ~name:"inline hook detected at any seed"
    QCheck.(int_bound 100000)
    (fun seed ->
      let cloud = Cloud.create ~vms:3 ~seed:(Int64.of_int seed) () in
      match Mc_malware.Infect.inline_hook cloud ~vm:1 with
      | Error _ -> false
      | Ok _ -> (
          match
            Orchestrator.check_module cloud ~target_vm:1 ~module_name:"hal.dll"
          with
          | Ok o -> not o.Orchestrator.report.Report.majority_ok
          | Error _ -> false))

(* --- Fault plans: rate 0 is invisible, nonzero rates are absorbed ---------- *)

let prop_zero_rate_bit_identical =
  QCheck.Test.make ~count:6 ~name:"all-zero fault plan is bit-identical"
    QCheck.(int_bound 100000)
    (fun seed ->
      (* A fault plan whose rates are all zero (any fault seed) must not
         perturb a single byte of the reports. *)
      let zero =
        { Mc_memsim.Faultplan.none with Mc_memsim.Faultplan.fault_seed = seed }
      in
      let c1 = Cloud.create ~vms:3 ~seed:(Int64.of_int seed) () in
      let c2 =
        Cloud.create ~vms:3 ~seed:(Int64.of_int seed) ~fault_spec:zero ()
      in
      let survey_json c =
        Mc_util.Json.to_string_pretty
          (Report.survey_to_json (Orchestrator.survey c ~module_name:"hal.dll"))
      in
      let check_json c =
        match
          Orchestrator.check_module c ~target_vm:0 ~module_name:"disk.sys"
        with
        | Ok o ->
            Mc_util.Json.to_string_pretty (Report.to_json o.Orchestrator.report)
        | Error e -> "error: " ^ e
      in
      survey_json c1 = survey_json c2 && check_json c1 = check_json c2)

let prop_detection_under_transient_faults =
  QCheck.Test.make ~count:6 ~name:"hook detected under 5% transient faults"
    QCheck.(int_bound 100000)
    (fun seed ->
      let faults =
        {
          Mc_memsim.Faultplan.none with
          Mc_memsim.Faultplan.transient_rate = 0.05;
          fault_seed = seed;
        }
      in
      (* 4 VMs: the clean control check still carries a 2-of-3 majority
         with one infected comparison VM in the pool. *)
      let cloud =
        Cloud.create ~vms:4 ~seed:(Int64.of_int seed) ~fault_spec:faults ()
      in
      match Mc_malware.Infect.inline_hook cloud ~vm:1 with
      | Error _ -> false
      | Ok _ ->
          (match
             Orchestrator.check_module cloud ~target_vm:1 ~module_name:"hal.dll"
           with
          | Ok o -> o.Orchestrator.report.Report.verdict = Report.Infected
          | Error _ -> false)
          && (
          match
            Orchestrator.check_module cloud ~target_vm:0 ~module_name:"hal.dll"
          with
          | Ok o -> o.Orchestrator.report.Report.verdict = Report.Intact
          | Error _ -> false))

(* --- Canonicalization is idempotent ---------------------------------------- *)

let prop_canonicalize_idempotent =
  QCheck.Test.make ~count:50 ~name:"canonicalize is idempotent"
    QCheck.(pair (int_range 2 5) int)
    (fun (n, seed) ->
      let rng = Rng.create (Int64.of_int seed) in
      let len = 64 + Rng.int rng 128 in
      let fill = Rng.bytes rng len in
      let slots =
        List.sort_uniq compare
          (List.init (Rng.int rng 5) (fun _ -> 8 * Rng.int rng (len / 8 - 1)))
      in
      let rvas = List.map (fun _ -> Rng.int rng 0xFFFF) slots in
      let bases = Array.init n (fun _ -> 0xF8000000 + (Rng.int rng 0x400 * 0x10000)) in
      let buffers =
        Array.map
          (fun base ->
            let b = Bytes.copy fill in
            List.iter2
              (fun off rva -> Mc_util.Le.set_u32_int b off (base + rva))
              slots rvas;
            b)
          bases
      in
      ignore (Modchecker.Rva.canonicalize ~bases buffers);
      let after_once = Array.map Bytes.copy buffers in
      ignore (Modchecker.Rva.canonicalize ~bases buffers);
      Array.for_all2 Bytes.equal after_once buffers)

(* --- Table/chart renderers never raise -------------------------------------- *)

let prop_table_total =
  (* Bounded sizes: the default list/string generators can produce
     ~10k x 10k cell tables, whose rendered output alone is gigabytes.
     Totality doesn't need monsters; it needs ragged rows, empty cells,
     and odd characters. *)
  let cell_gen = QCheck.Gen.(string_size ~gen:char (int_bound 30)) in
  let row_gen = QCheck.Gen.(list_size (int_bound 12) cell_gen) in
  QCheck.Test.make ~count:100 ~name:"table renderer is total"
    (QCheck.make
       QCheck.Gen.(pair (list_size (int_bound 25) row_gen) row_gen))
    (fun (rows, header) ->
      ignore (Mc_util.Table.render ~header rows);
      true)

let prop_chart_total =
  QCheck.Test.make ~count:100 ~name:"chart renderer is total"
    QCheck.(list (pair (pair small_nat small_nat) (list (pair float float))))
    (fun series ->
      let series =
        List.map
          (fun ((a, b), pts) ->
            ( Printf.sprintf "s%d%d" a b,
              List.filter
                (fun (x, y) -> Float.is_finite x && Float.is_finite y)
                pts ))
          series
      in
      ignore
        (Mc_util.Table.chart ~title:"t" ~x_label:"x" ~y_label:"y" series);
      true)

(* --- Searcher/guest agreement for any catalog module ----------------------- *)

let prop_searcher_agrees_with_guest =
  QCheck.Test.make ~count:6 ~name:"searcher sees what the guest loaded"
    QCheck.(int_bound 100000)
    (fun seed ->
      let cloud = Cloud.create ~vms:1 ~seed:(Int64.of_int seed) () in
      let dom = Cloud.vm cloud 0 in
      let vmi = Mc_vmi.Vmi.init dom Mc_vmi.Symbols.windows_xp_sp2 in
      let via_vmi =
        List.map
          (fun (i : Modchecker.Searcher.module_info) -> (i.mi_name, i.mi_base))
          (Modchecker.Searcher.list_modules vmi)
      in
      let via_guest =
        List.map
          (fun (e : Mc_winkernel.Ldr.entry) -> (e.base_dll_name, e.dll_base))
          (Mc_winkernel.Kernel.modules (Mc_hypervisor.Dom.kernel_exn dom))
      in
      via_vmi = via_guest)

(* --- Simulation-promoted invariants ----------------------------------------
   Cross-cutting invariants the simtest runner checks per step, promoted
   to properties over arbitrary seeds and infections (DESIGN.md,
   "Simulation testing"). *)

let survey_key (s : Report.survey) =
  ( Report.verdict_key s.Report.s_verdict,
    List.sort compare s.Report.deviant_vms,
    List.sort compare s.Report.missing_on,
    List.sort compare (List.map fst s.Report.unreachable_on) )

let techniques =
  [|
    (fun cloud vm -> Mc_malware.Infect.single_opcode_replacement cloud ~vm);
    (fun cloud vm -> Mc_malware.Infect.inline_hook cloud ~vm);
    (fun cloud vm -> Mc_malware.Infect.stub_modification cloud ~vm);
    (fun cloud vm -> Mc_malware.Infect.dll_injection cloud ~vm);
    (fun cloud vm -> Mc_malware.Infect.pointer_hook cloud ~vm);
  |]

let prop_survey_mode_parity =
  QCheck.Test.make ~count:6
    ~name:"survey parity: sequential = parallel = engine"
    QCheck.(pair (int_bound 100000) (int_bound 10000))
    (fun (seed, pick) ->
      let vms = 3 + (pick mod 3) in
      let cloud = Cloud.create ~vms ~seed:(Int64.of_int seed) () in
      let vm = pick mod vms in
      (match techniques.(pick mod Array.length techniques) cloud vm with
      | Ok _ -> ()
      | Error e -> failwith e);
      let pool = Mc_parallel.Pool.create 2 in
      let engine = Mc_engine.create ~shards:2 ~workers_per_shard:2 cloud in
      let par_cfg =
        Orchestrator.Config.with_mode (Orchestrator.Parallel pool)
          Orchestrator.Config.default
      in
      let ok =
        List.for_all
          (fun m ->
            let seq = Orchestrator.survey cloud ~module_name:m in
            let par = Orchestrator.survey ~config:par_cfg cloud ~module_name:m in
            let eng =
              match
                (Mc_engine.run engine (Mc_engine.Survey { module_name = m }))
                  .Mc_engine.r_outcome
              with
              | Mc_engine.Surveyed s -> s
              | _ -> assert false
            in
            survey_key seq = survey_key par && survey_key seq = survey_key eng)
          [ "hal.dll"; "disk.sys"; "hello.sys"; "dummy.sys" ]
      in
      Mc_engine.drain engine;
      Mc_parallel.Pool.shutdown pool;
      ok)

let prop_incremental_parity_under_dirty_writes =
  QCheck.Test.make ~count:8
    ~name:"incremental = full under random dirty patterns"
    QCheck.(pair (int_bound 100000) (int_bound 100000))
    (fun (seed, wseed) ->
      let vms = 3 in
      let cloud = Cloud.create ~vms ~seed:(Int64.of_int seed) () in
      let inc = Orchestrator.create_incremental () in
      let incr_cfg =
        Orchestrator.Config.with_incremental inc Orchestrator.Config.default
      in
      let modules = [ "hal.dll"; "disk.sys" ] in
      (* Prime the digest cache so the next incremental pass really
         exercises dirty-page invalidation rather than a cold start. *)
      List.iter
        (fun m ->
          ignore (Orchestrator.survey ~config:incr_cfg cloud ~module_name:m))
        modules;
      (* Random guest writes into random module images: some land in
         hashed ranges (headers, .text — a deviation), some in writable
         .data (unhashed — invisible); both checkers must tell the same
         story either way. *)
      let rng = Rng.create (Int64.of_int wseed) in
      for _ = 1 to 3 + Rng.int rng 6 do
        let vm = Rng.int rng vms in
        let m = List.nth modules (Rng.int rng (List.length modules)) in
        let kernel = Mc_hypervisor.Dom.kernel_exn (Cloud.vm cloud vm) in
        match Mc_winkernel.Kernel.find_module kernel m with
        | None -> ()
        | Some e ->
            let off = Rng.int rng e.Mc_winkernel.Ldr.size_of_image in
            let b = Bytes.make 1 (Char.chr (Rng.int rng 256)) in
            Mc_memsim.Addr_space.write_bytes
              (Mc_winkernel.Kernel.aspace kernel)
              (e.Mc_winkernel.Ldr.dll_base + off)
              b
      done;
      List.for_all
        (fun m ->
          let full = Orchestrator.survey cloud ~module_name:m in
          let incr = Orchestrator.survey ~config:incr_cfg cloud ~module_name:m in
          survey_key full = survey_key incr)
        modules)

let () =
  Alcotest.run "properties"
    [
      ( "pe",
        List.map QCheck_alcotest.to_alcotest
          [ prop_pe_roundtrip; prop_loader_diff_is_relocs ] );
      ( "pipeline",
        List.map QCheck_alcotest.to_alcotest
          [
            prop_clean_pool_intact; prop_infection_detected;
            prop_searcher_agrees_with_guest;
          ] );
      ( "faults",
        List.map QCheck_alcotest.to_alcotest
          [
            prop_zero_rate_bit_identical; prop_detection_under_transient_faults;
          ] );
      ( "canonical",
        List.map QCheck_alcotest.to_alcotest [ prop_canonicalize_idempotent ]
      );
      ( "render",
        List.map QCheck_alcotest.to_alcotest [ prop_table_total; prop_chart_total ]
      );
      ( "simulation",
        List.map QCheck_alcotest.to_alcotest
          [
            prop_survey_mode_parity;
            prop_incremental_parity_under_dirty_writes;
          ] );
    ]
