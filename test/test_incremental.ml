(* Incremental checking: log-dirty-driven digest caching across patrol
   sweeps. The contract under test: caching changes the price of a sweep,
   never its verdicts. *)

module Cloud = Mc_hypervisor.Cloud
module Xenctl = Mc_hypervisor.Xenctl
module Orchestrator = Modchecker.Orchestrator
module Digest_cache = Modchecker.Digest_cache
module Patrol = Modchecker.Patrol
module Report = Modchecker.Report
module Infect = Mc_malware.Infect
module Registry = Mc_telemetry.Registry

let check = Alcotest.check

let expect_ok = function Ok _ -> () | Error e -> failwith e

let watch = [ "hal.dll"; "http.sys"; "ntoskrnl.exe" ]

let config ~incremental =
  {
    Patrol.default_config with
    Patrol.watch;
    interval_s = 30.0;
    check = Orchestrator.Config.(default |> with_strategy Orchestrator.Canonical);
    incremental;
  }

let mean = function
  | [] -> nan
  | l -> List.fold_left ( +. ) 0.0 l /. float_of_int (List.length l)

(* --- digest cache unit behaviour ------------------------------------------ *)

let test_digest_cache_unit () =
  let cloud = Cloud.create ~vms:1 ~seed:46L () in
  let d = Cloud.vm cloud 0 in
  let dc : string Digest_cache.t = Digest_cache.create () in
  let epoch = Xenctl.memory_epoch d in
  check Alcotest.(option string) "empty" None
    (Digest_cache.probe dc d ~vm:0 ~key:"k");
  Digest_cache.store dc ~vm:0 ~key:"k" ~epoch ~footprint:[||] "v";
  check Alcotest.(option string) "hit" (Some "v")
    (Digest_cache.probe dc d ~vm:0 ~key:"k");
  check Alcotest.int "one entry" 1 (Digest_cache.length dc);
  (* An entry from another epoch (e.g. pre-reboot) is stale and dropped. *)
  Digest_cache.store dc ~vm:0 ~key:"old" ~epoch:(epoch - 1) ~footprint:[||]
    "w";
  check Alcotest.(option string) "stale epoch" None
    (Digest_cache.probe dc d ~vm:0 ~key:"old");
  check Alcotest.int "stale dropped" 1 (Digest_cache.length dc)

(* --- acceptance: steady-state cost on an idle pool ------------------------- *)

let test_idle_pool_speedup () =
  Registry.reset ();
  Registry.set_enabled true;
  Fun.protect
    ~finally:(fun () ->
      Registry.set_enabled false;
      Registry.reset ())
  @@ fun () ->
  let sweep_cpus incremental =
    let cloud = Cloud.create ~vms:15 ~seed:41L () in
    (Patrol.run ~config:(config ~incremental) cloud ~until:149.0)
      .Patrol.sweep_cpus
  in
  let full = sweep_cpus false in
  let inc = sweep_cpus true in
  check Alcotest.int "five sweeps" 5 (List.length inc);
  let full_steady = mean (List.tl full) in
  let inc_steady = mean (List.tl inc) in
  Alcotest.(check bool)
    (Printf.sprintf
       "steady incremental sweep >=10x cheaper (full %.4fs vs incremental \
        %.6fs)"
       full_steady inc_steady)
    true
    (full_steady >= 10.0 *. inc_steady);
  (* The first incremental sweep is the cold, cache-filling one. *)
  Alcotest.(check bool) "first sweep pays full price" true
    (List.hd inc >= 10.0 *. inc_steady);
  let counter name =
    Option.value ~default:0
      (List.assoc_opt name (Registry.snapshot ()).Registry.snap_counters)
  in
  Alcotest.(check bool) "digest cache hit" true (counter "digest_cache.hits" > 0);
  Alcotest.(check bool) "digest cache missed (cold sweep)" true
    (counter "digest_cache.misses" > 0)

(* --- invalidation ---------------------------------------------------------- *)

let test_infection_invalidates () =
  let cloud = Cloud.create ~vms:6 ~seed:42L () in
  let infect cloud = expect_ok (Infect.inline_hook cloud ~vm:2) in
  let o =
    Patrol.run
      ~config:(config ~incremental:true)
      ~events:[ (70.0, infect) ] cloud ~until:200.0
  in
  (match Patrol.time_to_detect o ~module_name:"hal.dll" ~infected_at:70.0 with
  | None -> Alcotest.fail "incremental patrol missed the in-memory infection"
  | Some ttd ->
      Alcotest.(check bool) "detected on the next sweep" true (ttd <= 31.0));
  Alcotest.(check bool) "alarm names the infected VM" true
    (List.exists
       (fun a ->
         a.Patrol.alarm_module = "hal.dll"
         && a.Patrol.alarm_vms = [ 2 ]
         && a.Patrol.kind = Patrol.Hash_deviation)
       o.Patrol.alarms)

let test_reboot_recomputes_clean () =
  let cloud = Cloud.create ~vms:6 ~seed:43L () in
  let o =
    Patrol.run
      ~config:(config ~incremental:true)
      ~events:[ (70.0, fun cloud -> Cloud.reboot_vm cloud 1) ]
      cloud ~until:149.0
  in
  check Alcotest.int "no alarms from a clean reboot" 0
    (List.length o.Patrol.alarms);
  match o.Patrol.sweep_cpus with
  | [ _cold; steady1; _steady2; after_reboot; steady3 ] ->
      (* The epoch change invalidates Dom2's entries: the t=90 sweep
         re-fetches one VM, then the pool settles back to probe-only. *)
      Alcotest.(check bool) "reboot sweep recomputes" true
        (after_reboot > 2.0 *. steady1);
      Alcotest.(check bool) "steady again afterwards" true
        (after_reboot > 2.0 *. steady3)
  | l ->
      Alcotest.fail
        (Printf.sprintf "expected 5 sweeps, got %d" (List.length l))

let test_identical_majority_escalates () =
  (* Regression (found by simtest, seed 2056): two VMs carrying the same
     disk patch reload identical shifted code at different bases. The
     per-VM reloc-guided fingerprints hash base-dependent garbage at the
     golden slot offsets, so the infected pair looked mutually deviant
     and every VM was flagged. A fingerprint disagreement now escalates
     to the full cross-buffer survey, whose verdict the incremental one
     must match exactly. *)
  let cloud = Cloud.create ~vms:3 ~cores:4 ~seed:2859845042692598870L () in
  expect_ok
    (Infect.single_opcode_replacement ~module_name:"hal.dll" ~func:"devex_937"
       cloud ~vm:2);
  expect_ok
    (Infect.single_opcode_replacement ~module_name:"hal.dll" ~func:"devex_937"
       cloud ~vm:1);
  let survey config =
    (Orchestrator.survey ~config cloud ~module_name:"hal.dll")
      .Report.deviant_vms
  in
  let full =
    survey
      Orchestrator.Config.(
        default |> with_strategy Orchestrator.Canonical)
  in
  let incr =
    survey
      Orchestrator.Config.(
        default
        |> with_strategy Orchestrator.Canonical
        |> with_incremental (Orchestrator.create_incremental ()))
  in
  (* The clean VM is the minority: the identically-infected pair agrees. *)
  check Alcotest.(list int) "full flags the clean minority" [ 0 ] full;
  check Alcotest.(list int) "incremental agrees" full incr

(* --- detection is unchanged by caching ------------------------------------- *)

let test_detections_survive_caching () =
  List.iter
    (fun (label, infect, module_name) ->
      let cloud = Cloud.create ~vms:5 ~seed:44L () in
      let inc = Orchestrator.create_incremental () in
      let config = Orchestrator.Config.(default |> with_incremental inc) in
      (* Warm the cache with a clean survey first. *)
      let clean = Orchestrator.survey ~config cloud ~module_name in
      check Alcotest.(list int) (label ^ ": clean pool") []
        clean.Report.deviant_vms;
      infect cloud;
      let s = Orchestrator.survey ~config cloud ~module_name in
      check Alcotest.(list int) (label ^ ": first sweep after infection")
        [ 1 ] s.Report.deviant_vms)
    [
      ( "E1 opcode replacement",
        (fun c -> expect_ok (Infect.single_opcode_replacement c ~vm:1)),
        "hal.dll" );
      ( "E2 inline hook",
        (fun c -> expect_ok (Infect.inline_hook c ~vm:1)),
        "hal.dll" );
      ( "E3 stub modification",
        (fun c -> expect_ok (Infect.stub_modification c ~vm:1)),
        "hello.sys" );
      ( "E4 dll injection",
        (fun c -> expect_ok (Infect.dll_injection c ~vm:1)),
        "dummy.sys" );
      ( "X-PTR pointer hook",
        (fun c -> expect_ok (Infect.pointer_hook c ~vm:1)),
        "hal.dll" );
    ]

let test_dkom_list_cache () =
  let cloud = Cloud.create ~vms:5 ~seed:45L () in
  let inc = Orchestrator.create_incremental () in
  let config = Orchestrator.Config.(default |> with_incremental inc) in
  check Alcotest.int "clean lists" 0
    (List.length (Orchestrator.compare_module_lists ~config cloud));
  (* Warm again so the listings are all cache hits... *)
  check Alcotest.int "still clean from cache" 0
    (List.length (Orchestrator.compare_module_lists ~config cloud));
  (* ...then DKOM-hide a module: the unlink writes the LDR list pages,
     which are in the cached walk's footprint. *)
  expect_ok (Infect.hide_module cloud ~vm:1 ~module_name:"http.sys");
  match Orchestrator.compare_module_lists ~config cloud with
  | [ d ] ->
      check Alcotest.string "module" "http.sys" d.Orchestrator.ld_module;
      check Alcotest.(list int) "missing on" [ 1 ] d.Orchestrator.missing_on
  | l ->
      Alcotest.fail
        (Printf.sprintf "expected 1 discrepancy, got %d" (List.length l))

(* --- property: alarm parity over random event schedules -------------------- *)

let event_gen =
  QCheck.Gen.(
    let* n = int_range 0 3 in
    list_size (return n)
      (triple (int_range 10 120) (int_range 1 4) (int_range 0 3)))

let apply_event (vm, kind) cloud =
  (* Events may legitimately fail (e.g. hiding an already-hidden module):
     detection parity is about what both patrols observe, so failures are
     ignored identically on both sides. *)
  let attempt r = match r with Ok _ | Error _ -> () in
  match kind with
  | 0 -> attempt (Infect.inline_hook cloud ~vm)
  | 1 -> attempt (Infect.hide_module cloud ~vm ~module_name:"http.sys")
  | 2 -> Cloud.reboot_vm cloud vm
  | _ -> attempt (Infect.single_opcode_replacement cloud ~vm)

let alarm_set o =
  List.sort_uniq compare
    (List.map
       (fun a ->
         ( a.Patrol.alarm_module,
           a.Patrol.alarm_vms,
           Patrol.alarm_kind_string a.Patrol.kind ))
       o.Patrol.alarms)

let prop_alarm_parity =
  QCheck.Test.make ~count:8
    ~name:"incremental and full patrols raise the same alarms"
    (QCheck.make event_gen) (fun schedule ->
      let events =
        List.map (fun (t, vm, kind) -> (float_of_int t, apply_event (vm, kind)))
          schedule
      in
      let run incremental =
        let cloud = Cloud.create ~vms:5 ~seed:47L () in
        Patrol.run ~config:(config ~incremental) ~events cloud ~until:139.0
      in
      let full = run false in
      let inc = run true in
      if alarm_set full <> alarm_set inc then
        QCheck.Test.fail_reportf "alarm sets diverge: full=%d inc=%d"
          (List.length (alarm_set full))
          (List.length (alarm_set inc))
      else true)

let () =
  Alcotest.run "incremental"
    [
      ( "digest-cache",
        [ Alcotest.test_case "unit" `Quick test_digest_cache_unit ] );
      ( "cost",
        [ Alcotest.test_case "idle pool >=10x" `Quick test_idle_pool_speedup ]
      );
      ( "invalidation",
        [
          Alcotest.test_case "in-memory infection" `Quick
            test_infection_invalidates;
          Alcotest.test_case "reboot" `Quick test_reboot_recomputes_clean;
        ] );
      ( "detection",
        [
          Alcotest.test_case "scenarios" `Quick test_detections_survive_caching;
          Alcotest.test_case "identical majority escalates" `Quick
            test_identical_majority_escalates;
          Alcotest.test_case "DKOM list" `Quick test_dkom_list_cache;
        ] );
      ( "parity",
        List.map QCheck_alcotest.to_alcotest [ prop_alarm_parity ] );
    ]
