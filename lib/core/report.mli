(** Check results: the majority vote of §III-B ("Discussion") and
    per-artifact detail for operators. *)

type comparison = {
  other_vm : int;  (** DomU index compared against. *)
  result : Checker.pair_result;
}

type verdict =
  | Intact  (** Majority vote passed with quorum. *)
  | Infected  (** Majority vote failed with quorum. *)
  | Degraded of string
      (** Too few VMs answered for the vote to mean anything; the string
          says why (e.g. ["2/14 comparison VM(s) responded (quorum 0.5)"]).
          A degraded verdict is an availability alarm, never an integrity
          one. *)

val verdict_key : verdict -> string
(** ["intact"], ["infected"], ["degraded"]. *)

val default_quorum : float
(** 0.5 — at least half the surveyed VMs must answer. *)

type module_report = {
  module_name : string;
  target_vm : int;
  comparisons : comparison list;
  matches : int;  (** n — comparisons in which every artifact matched. *)
  total : int;  (** t-1 — number of comparisons performed. *)
  majority_ok : bool;  (** n > (t-1)/2: the module is considered intact. *)
  flagged_artifacts : Artifact.kind list;
      (** Artifacts mismatching in a strict majority of comparisons —
          i.e. the target's own deviations, not some other VM's. *)
  unreachable : (int * string) list;
      (** Comparison VMs that could not be introspected (faults exhausted
          retries, or the deadline expired), with the reason. They are
          excluded from the vote — [total] does not include them. *)
  surveyed : int;  (** Comparison VMs asked. *)
  responded : int;  (** Comparison VMs that answered ([surveyed] minus
          unreachable); a VM lacking the module responds — absence is an
          answer, counted as a vote mismatch. *)
  voted : int;  (** Comparisons counted in the vote (= [total]). *)
  verdict : verdict;
}

type survey = {
  survey_module : string;
  vm_indices : int list;
  missing_on : int list;  (** VMs where the module was not found. *)
  deviant_vms : int list;
      (** VMs whose module fails the majority vote against the pool. *)
  agreement_classes : int list list;
      (** Partition of the present VMs into mutually-matching factions,
          largest first. One class = a healthy pool; two large classes is
          the §III-B SQL-Slammer scenario (mass infection splits the cloud
          into factions and no majority can be trusted — everything is
          flagged for deeper analysis). *)
  pairwise_matches : ((int * int) * bool) list;
  unreachable_on : (int * string) list;
      (** VMs whose fetch failed (fault or deadline), with reasons;
          excluded from the vote and from [missing_on]. *)
  s_surveyed : int;  (** VMs in the pool. *)
  s_responded : int;  (** VMs that answered (present or verifiably absent). *)
  s_voted : int;  (** VMs whose copy entered the pairwise vote. *)
  s_verdict : verdict;
      (** [Degraded] below the quorum floor; else [Infected] iff any VM
          deviates. Module absence alone is not an infection verdict —
          it raises its own (missing-module) alarm. *)
}
(** A full-mesh sweep: every VM's copy voted against every other. *)

val quorum_met : quorum:float -> surveyed:int -> responded:int -> bool
(** [quorum_met ~quorum ~surveyed ~responded] — at least
    [quorum *. surveyed] of the surveyed VMs answered (and at least
    one did). *)

val make :
  module_name:string ->
  target_vm:int ->
  ?unreachable:(int * string) list ->
  ?surveyed:int ->
  ?quorum:float ->
  comparison list ->
  module_report
(** [make ~module_name ~target_vm comparisons] computes the vote, the
    flagged artifact set, and the quorum verdict. [surveyed] defaults to
    [|comparisons| + |unreachable|]; [quorum] to {!default_quorum}. With
    no unreachable VMs the verdict is [Intact]/[Infected] exactly as
    [majority_ok] says. *)

val verdict_string : module_report -> string
(** ["INTACT (n/t)"], ["SUSPICIOUS (n/t): <artifacts>"], or
    ["DEGRADED (n/t): <reason>"]. *)

val to_table : module_report -> string
(** Render the per-comparison, per-artifact detail as an ASCII table. *)

val pp : Format.formatter -> module_report -> unit

(** {1 Versioned machine-readable form}

    The JSON forms carry a [schema] tag so engine clients and scripts can
    parse reports instead of scraping the table renderer, and can refuse
    documents from an incompatible future version. *)

val schema : string
(** ["modchecker/report@1"] — the tag {!to_json} emits and {!of_json}
    requires. *)

val survey_schema : string
(** ["modchecker/survey@1"]. *)

val to_json : module_report -> Mc_util.Json.t
(** Machine-readable form: schema tag, verdict, vote and quorum counts,
    unreachable VMs, flagged artifacts, and per-comparison per-artifact
    digests. Round-trips through {!of_json}. *)

val of_json : Mc_util.Json.t -> (module_report, string) result
(** Parse {!to_json}'s output back. Errors on a missing or different
    [schema] tag, and on any missing or mistyped field. *)

val survey_to_json : survey -> Mc_util.Json.t
(** Round-trips through {!survey_of_json}. *)

val survey_of_json : Mc_util.Json.t -> (survey, string) result
