(** Relative-virtual-address adjustment — the paper's Algorithm 2 plus a
    reloc-guided exact variant.

    After loading, every address slot in a module holds [base + RVA]; the
    bases differ across VMs, so identical code hashes differently. The
    Integrity-Checker reverses the relocation before hashing (Fig. 4).

    Algorithm 2 has no relocation table: it {e infers} address slots from
    where two copies of the section differ. The first differing byte of
    the two load bases tells it how far a detected difference sits inside a
    4-byte address ([offset]); it then backs up, extracts both candidate
    addresses, and if [addr1 - base1 = addr2 - base2] replaces both with
    that common RVA. Addresses and bases are little-endian byte sequences,
    as on x86.

    The heuristic is exact when bases are 64 KiB aligned (Windows default:
    the low two bytes of both bases are zero, so [base + RVA] never carries
    into a byte position before the bases' first differing byte). At page
    alignment carries can desynchronize the offset and leave addresses
    unadjusted — quantified by the alignment ablation experiment. *)

type stats = {
  adjusted : int;  (** Address pairs replaced by their common RVA. *)
  mismatched_candidates : int;
      (** Differences that did not decode to a common RVA (genuine content
          divergence, or heuristic failure). *)
}

val base_diff_offset : base1:int -> base2:int -> int option
(** [base_diff_offset ~base1 ~base2] is Algorithm 2 lines 1–9: the 1-based
    index of the first differing byte of the two little-endian base
    addresses, or [None] when the bases are equal (in which case no
    adjustment is needed — identical bases yield identical absolute
    addresses). *)

val adjust_pair : base1:int -> base2:int -> Bytes.t -> Bytes.t -> stats
(** [adjust_pair ~base1 ~base2 data1 data2] runs Algorithm 2 lines 10–24
    in place over the two section-data buffers (which must have equal
    length — Module-Parser guarantees it for same-named sections of equal
    VirtualSize; callers handle unequal sizes as an immediate mismatch). *)

type canonical_stats = {
  slots_detected : int;  (** Candidate address slots examined. *)
  slots_unanimous : int;  (** Slots where every VM agreed on the RVA. *)
  slots_majority : int;
      (** Slots resolved by majority, with at least one deviating VM. *)
  deviants : (int * int list) list;
      (** Slot offset → indices of buffers whose RVA disagreed with the
          majority (prime suspects for patched pointers). *)
}

val canonicalize : bases:int array -> Bytes.t array -> canonical_stats
(** [canonicalize ~bases buffers] is the t-way generalization of
    Algorithm 2 (an extension beyond the paper): candidate address slots
    are inferred from positions where {e any} copy differs from the first,
    each VM's slot decodes to [addr - base], and the unanimous (or
    majority) RVA is written back into every agreeing buffer in place.
    Afterwards each buffer can be hashed {e once} and compared by digest,
    making a pool survey cost O(t) hashes instead of the O(t²) of pairwise
    comparison. Buffers must all have the same length (≥ 2 of them). *)

val adjust_with_relocs :
  base:int -> section_rva:int -> relocs:int list -> Bytes.t -> int
(** [adjust_with_relocs ~base ~section_rva ~relocs data] is the exact
    LKIM-flavoured adjustment: for every relocation slot RVA in [relocs]
    that falls inside this section, subtract [base] from the 4-byte slot.
    Returns the number of slots rewritten. Requires loader metadata the
    published ModChecker does not assume. *)

val reloc_margin : int
(** 3 — the widest reach of a 4-byte reloc slot past a window edge. A
    window of a section extended by [reloc_margin] bytes on each side
    (clamped to the section) contains every slot whose value overlaps
    the window, which makes {!adjust_window} exact. *)

val adjust_window :
  base:int ->
  section_rva:int ->
  window_off:int ->
  relocs:int list ->
  Bytes.t ->
  int
(** [adjust_window ~base ~section_rva ~window_off ~relocs w] adjusts a
    window of a section that starts [window_off] bytes into it. For the
    bytes the window shares with the full section, the result is
    byte-identical to running {!adjust_with_relocs} over the whole
    section — provided every slot overlapping those bytes lies fully
    inside the window (guaranteed when the window carries a
    {!reloc_margin} of context on each unclamped side). This is what
    lets the Merkle refresh re-adjust one page-leaf without the rest of
    the section in hand. *)
