(** Whole-pool health assessment: every module on every VM, in one
    report — the operator's dashboard view of {e one} cloud.

    For each module name seen anywhere in the pool it runs a survey (so a
    module loaded on only some VMs is still checked among those), collects
    the deviant/missing sets, and aggregates a per-VM suspicion score.

    Formerly named [Fleet]; renamed so it cannot be confused with
    {!Mc_federation}, which coordinates many pools across hosts. The
    [Fleet] compilation unit remains as a deprecated alias. *)

type module_status = {
  ms_module : string;
  ms_present_on : int;  (** VMs where the module is loaded. *)
  ms_deviants : int list;
  ms_missing : int list;  (** Among VMs that *should* have it (see below). *)
  ms_consistent : bool;
}

type report = {
  fr_modules : module_status list;  (** Sorted by module name. *)
  fr_suspicion : (int * int) list;
      (** (VM index, number of findings implicating it), descending,
          suspicious VMs only. *)
  fr_clean : bool;  (** No deviants, no hidden modules anywhere. *)
}

val assess : ?config:Orchestrator.Config.t -> Mc_hypervisor.Cloud.t -> report
(** [assess cloud] surveys the union of all VMs' module lists. A module
    missing from a minority of its version cohort counts against those
    VMs (the DKOM-hiding signal); one missing from most of a cohort is
    treated as optionally-loaded there and only surveyed among its
    holders. The cohort scope keeps a heterogeneous pool honest: a driver
    shipped only with the patched build never implicates the unpatched
    VMs. *)

val to_table : report -> string

val to_json : report -> Mc_util.Json.t

val summary : report -> string
(** One line: ["FLEET CLEAN (9 modules x 5 VMs)"] or
    ["FLEET SUSPICIOUS: Dom3 implicated by 2 finding(s)"]. *)
