(** The ModChecker driver: runs the Searcher → Parser → Checker pipeline
    from Dom0 across the VM pool and applies the majority vote.

    Sequential mode visits VMs one after another, as the paper's prototype
    does (and as its Fig. 7 linear growth reflects). Parallel mode maps the
    per-VM pipeline over a domain pool — the "parallel access of virtual
    machines' memory" the paper names as the natural enhancement.

    Every entry point takes one {!Config.t} — the same record the CLI,
    {!Patrol}, and [Mc_engine] build — instead of a sprawl of optional
    arguments, so defaulting logic lives in exactly one place. *)

type mode = Sequential | Parallel of Mc_parallel.Pool.t

type vm_work = { work_vm : int; work_meter : Mc_hypervisor.Meter.t }
(** Operation counts incurred on behalf of one compared VM — the unit the
    timing model schedules. *)

type outcome = {
  report : Report.module_report;
  work : vm_work list;  (** Target VM first, then each compared VM. *)
}

type phase_seconds = {
  searcher_s : float;
  parser_s : float;
  checker_s : float;
}

type survey_strategy =
  | Pairwise
      (** The paper's approach: compare every pair with Algorithm 2;
          O(t²) comparisons and hashes. *)
  | Canonical
      (** Extension: t-way canonicalization ({!Rva.canonicalize}) rewrites
          every copy's address slots to the pool's majority RVAs, then each
          copy is hashed once and compared by digest — O(t) hashing. *)

type fingerprint = (string * string) list
(** A VM's module identity for digest comparison: each artifact's display
    kind paired with its digest (section data reloc-adjusted before
    hashing), sorted by kind. Computed independently per VM, so it is
    cacheable. *)

type merkle_print = {
  mp_base : int;  (** The module's load base on this VM. *)
  mp_flat : (string * string) list;
      (** Header artifacts: (kind name, flat hex digest). *)
  mp_sections : (string * int * Mc_md5.Merkle.t) list;
      (** Section-data artifacts: (kind name, section RVA, Merkle tree
          over the reloc-adjusted bytes, one leaf per page). *)
  mp_page_index : (int * (string * int) list) list;
      (** Guest pfn → the (kind name, leaf index) pairs whose adjusted
          content depends on that frame (a leaf depends on its own pages
          plus up to {!Rva.reloc_margin} bytes of each neighbour). *)
}
(** One VM's Merkle representation of a module — the memoized value of
    the O(dirty) hot path. Its derived fingerprint (flat digests plus
    root digests, sorted by kind) compares exactly like {!fingerprint}. *)

type incremental = {
  inc_digests : fingerprint option Digest_cache.t;
      (** (vm, module) → fingerprint, or [None] for "absent on that VM"
          (absence is as cacheable as presence — the LDR walk's footprint
          keys it). *)
  inc_merkle : merkle_print option Digest_cache.t;
      (** (vm, module) → Merkle print, the [Config.merkle] counterpart of
          [inc_digests]: keeping the whole leaf vector (not just roots)
          is what lets a k-dirty-page probe refresh k leaves instead of
          re-hashing the section. *)
  inc_lists : string list Digest_cache.t;
      (** vm → lower-cased module-list walk result. *)
  inc_pages : (int, Mc_vmi.Vmi.page_cache) Hashtbl.t;
      (** vm → shared version-checked page cache. *)
  inc_mutex : Mutex.t;
}
(** Carry-over state for incremental checking, shared across sweeps (and
    across parallel workers) of one patrol — or across {e every} request
    of one engine. *)

val create_incremental : unit -> incremental

(** How a check or survey should run: execution mode, comparison set,
    strategy, caching, and the availability policy. One value of this
    record replaces the former [?mode ?others ?strategy ?incremental
    ?quorum ?deadline_s] optional arguments on every entry point. *)
module Config : sig
  type nonrec t = {
    mode : mode;
    others : int list option;
        (** Comparison VMs for {!check_module}; [None] means the target's
            version cohort — the rest of the pool when it is homogeneous.
            Ignored by {!survey} (full mesh by definition). *)
    strategy : survey_strategy;  (** Used by {!survey} only. *)
    incremental : incremental option;
        (** Shared carry-over state; with it, {!survey} compares memoized
            per-VM fingerprints and {!survey_module_lists} reuses cached
            listings. *)
    merkle : bool;
        (** With [incremental], memoize per-section Merkle trees instead
            of flat fingerprints: a VM with k dirty module pages
            refreshes at the cost of k leaf hashes plus O(log n)
            interior nodes ({!Digest_cache.probe_delta} names the dirty
            frames), and a deviant pair's divergent pages are localized
            by tree descent before escalation. Verdicts are unchanged —
            root equality is digest equality. No effect without
            [incremental]. *)
    quorum : float;
        (** Minimum responding fraction of the surveyed VMs for a verdict
            to count; below it the verdict is [Degraded]. *)
    deadline_s : float option;
        (** Per-task deadline, enforced in [Parallel] mode where a hung
            task can be abandoned. *)
  }

  val default : t
  (** Sequential, whole pool, pairwise, non-incremental, quorum
      {!Report.default_quorum}, no deadline. *)

  val with_mode : mode -> t -> t

  val with_others : int list -> t -> t

  val with_strategy : survey_strategy -> t -> t

  val with_incremental : incremental -> t -> t

  val with_merkle : bool -> t -> t

  val with_quorum : float -> t -> t

  val with_deadline : float -> t -> t
end

val check_module :
  ?config:Config.t ->
  Mc_hypervisor.Cloud.t ->
  target_vm:int ->
  module_name:string ->
  (outcome, string) result
(** [check_module cloud ~target_vm ~module_name] fetches the module from
    the target and from every comparison VM ([config.others] defaults to
    the target's version cohort — the whole rest of the pool when it is
    homogeneous), compares pairwise, and votes. Errors when the
    module is not loaded on the target, the target is unreachable, or no
    comparison VM is available. A module missing on a {e comparison} VM
    counts as a failed comparison, not an error; a comparison VM that
    cannot be introspected at all (fault-plan retries exhausted, or — in
    [Parallel] mode with a deadline — its task missed the per-check
    deadline) is excluded from the vote and listed in the report's
    [unreachable] field. When fewer than [config.quorum] of the
    comparison VMs respond, the report's verdict is [Degraded].

    With [config.incremental] {e and} [config.merkle], a warm check
    takes the Merkle fast path: the target's and every comparison VM's
    memoized reloc-adjusted fingerprints are refreshed via log-dirty
    staleness probes (O(dirty) like the survey's) and compared directly;
    the full fetch-and-compare pipeline runs only on a cache miss or
    when {e any} fingerprint disagrees — agreement is provable from
    fingerprints, but the artifact-level evidence a deviant report needs
    (and protection against identically-tampered copies fingerprinting
    as mutually deviant) requires the full path. Verdicts are therefore
    identical with and without the fast path; only the price differs
    (the [check.merkle_fast_path] / [check.merkle_escalations] telemetry
    counters record which path ran). *)

val survey :
  ?config:Config.t ->
  ?meter:Mc_hypervisor.Meter.t ->
  Mc_hypervisor.Cloud.t ->
  module_name:string ->
  Report.survey
(** [survey cloud ~module_name] compares every VM's copy against every
    other and partitions the pool into consistent and deviant VMs — the
    "detect discrepancies and trigger deeper analysis" use of §III-B.
    Deviance is judged within each version cohort (VMs sharing a patch
    level): in a heterogeneous pool a legitimate version split shows up in
    [agreement_classes] but flags nobody, and an infected copy is outvoted
    by its own cohort. A homogeneous pool reduces to the paper's
    whole-pool rule.
    Both strategies produce the same verdicts (a property the tests
    check), differing only in cost. When [meter] is given, all work is
    counted into it (under its phases); in [Parallel] mode each job
    meters into its own meter and the counts are merged in after the
    join.

    With [config.incremental], the survey compares per-VM reloc-adjusted
    fingerprints memoized in the digest cache: a VM whose relevant pages
    are untouched since the last sweep costs one log-dirty staleness probe
    instead of a full map→parse→hash pipeline, and the strategy is
    irrelevant. Reloc-guided adjustment can only reconcile {e clean}
    copies, so any fingerprint disagreement escalates to the full
    cross-buffer survey (counted under the
    ["survey.incremental_escalations"] telemetry counter) — a clean
    steady-state pool never pays for this, and verdicts are unchanged
    either way.

    An unreachable VM (fault-plan retries exhausted, or its task past the
    deadline in [Parallel] mode) is excluded from the vote and from
    [missing_on], listed in [unreachable_on], and never cached; when
    fewer than [config.quorum] of the pool responds, [s_verdict] is
    [Degraded]. *)

val module_relocs : ?version:int -> string -> int list
(** Reloc slot RVAs of the golden (catalog) copy of the named module at
    the given patch level (default 1), used for base stripping of cached
    fingerprints. When the catalog image cannot be built or fails to
    parse, this logs a warning, bumps the [digest.reloc_fallbacks]
    telemetry counter, and returns [] — fingerprints then keep their
    base-dependent bytes, which can turn clean load-base differences into
    deviations, so the fallback is deliberately loud. *)

val reference_fingerprint :
  ?meter:Mc_hypervisor.Meter.t ->
  Mc_hypervisor.Cloud.t ->
  vm:int ->
  module_name:string ->
  (fingerprint, string) result
(** [reference_fingerprint cloud ~vm ~module_name] is the VM's
    base-independent identity for the module: artifacts fetched with the
    usual fault handling and section data reloc-stripped against the build
    matching the VM's patch level. Two clean copies of the same build
    agree on it across load bases {e and across pools} — the unit of the
    federation's cross-host vote. Errors when the module is absent or the
    VM unreachable. Work is metered into [meter] when given, else bridged
    to telemetry. *)

type list_discrepancy = {
  ld_module : string;
  present_on : int list;
  missing_on : int list;
}

type list_comparison = {
  lc_discrepancies : list_discrepancy list;
  lc_unreachable : (int * string) list;
      (** VMs whose list walk failed, with reasons. They are excluded
          from [missing_on] — an unreadable list is not evidence of a
          hidden module. *)
}

val survey_module_lists :
  ?config:Config.t ->
  ?meter:Mc_hypervisor.Meter.t ->
  Mc_hypervisor.Cloud.t ->
  list_comparison
(** Extension: cross-VM comparison of the load lists themselves; a module
    present on most VMs but absent from a few is how a DKOM-hidden module
    betrays itself. Only non-uniform modules are returned. The list walks
    are metered into [meter] (under the Searcher phase) — they are real
    introspection work and price like it. Of [config] only
    [incremental] is consulted: with it, a VM whose list-walk pages are
    untouched reuses the cached listing. *)

val compare_module_lists :
  ?config:Config.t ->
  ?meter:Mc_hypervisor.Meter.t ->
  Mc_hypervisor.Cloud.t ->
  list_discrepancy list
(** [survey_module_lists]'s discrepancies alone. *)

type watch_source =
  | Watch_module of string
      (** A watched module: its LDR entry, the list pages walked to reach
          it, and its section footprint. *)
  | Watch_lists
      (** The module-list walk itself ([PsLoadedModuleList] and the LDR
          chain) — a trap here means a module was loaded, unloaded, or
          DKOM-unlinked. *)
(** What a trapped page was backing — the unit the event-driven patrol
    rechecks. *)

val watch_source_key : watch_source -> string
(** The alarm-module label a source's alarms carry: the module name, or
    ["(module lists)"] for the list walk. *)

val watch_pfns :
  incremental ->
  Mc_hypervisor.Dom.t ->
  vm:int ->
  watch:string list ->
  (watch_source * int list) list
(** [watch_pfns inc dom ~vm ~watch] is, per watch source, the guest
    frames whose writes must re-trigger its check — read straight out of
    the digest caches' footprints (Merkle print preferred, flat
    fingerprint fallback, plus the cached list walk). A source with no
    current-epoch cache entry maps to [[]]: it cannot be armed until a
    survey repopulates the cache. Dom0-local and unmetered. *)

val audit_anchors :
  ?meter:Mc_hypervisor.Meter.t ->
  incremental ->
  Mc_hypervisor.Cloud.t ->
  watch:string list ->
  (string * int) list
(** [audit_anchors inc cloud ~watch] cross-checks, for every VM and every
    cached watch footprint page of the watched modules, the page-granular
    foreign mapping (the channel all checker reads use — and the one a
    SEVurity-style in-guest adversary can interpose on) against the
    hypervisor's byte-granular physical read path (which in-guest code
    cannot reach). Returns the sorted [(module, vm)] pairs where the two
    channels disagree on at least one byte — each is a checker-tampering
    detection, not a guest-integrity verdict. Pages with no current-epoch
    footprint are skipped (nothing cached to vouch for), as are pages
    whose foreign map faults (a fault-plan dropout is not tampering).
    Metered: one page map plus one physical read per audited page. *)

val merkle_root :
  incremental ->
  Mc_hypervisor.Cloud.t ->
  vm:int ->
  module_name:string ->
  string option
(** [merkle_root inc cloud ~vm ~module_name] is the hex anchor digest of
    the VM's cached Merkle print for the module — MD5 over its derived
    fingerprint (flat digests plus per-section Merkle roots, sorted by
    kind) — or [None] when no current-epoch print is cached (module not
    yet checked with [Config.merkle], absent on that VM, or the VM
    rebooted since). Dom0-local and unmetered ({!Digest_cache.peek}):
    it reads the value the last check computed, which is exactly what an
    attestation entry for that check must anchor. Base-independent —
    clean copies of one build agree on it across VMs and hosts. *)

val phase_seconds : Mc_hypervisor.Costs.t -> outcome -> phase_seconds
(** Price the outcome's metered operations into per-component virtual CPU
    seconds (Fig. 7/8's three component curves). *)

val per_vm_seconds : Mc_hypervisor.Costs.t -> outcome -> float list
(** Per-compared-VM virtual CPU seconds — the job list for the
    scheduler. *)
