(** Integrity-Checker (§III-B.3, §IV-C): hashes artifacts with MD5 and
    compares a module across a VM pair, adjusting RVAs in section data
    before hashing. *)

type artifact_verdict = {
  av_kind : Artifact.kind;
  av_match : bool;
  av_digest1 : string;  (** Hex MD5 on the first VM (after adjustment). *)
  av_digest2 : string;
  av_adjusted : int;  (** Addresses rewritten to RVAs in this artifact. *)
}

type pair_result = {
  verdicts : artifact_verdict list;
  all_match : bool;
  total_adjusted : int;
}

val hash_artifact : ?meter:Mc_hypervisor.Meter.t -> Artifact.t -> string
(** [hash_artifact a] is the hex MD5 of the artifact's bytes (metered as
    bytes hashed). Section data is hashed as-is — use [compare_pair] for
    cross-VM comparison, which adjusts first. *)

(** {1 Merkle fingerprints}

    The O(dirty) alternative to flat digests: a section is hashed as
    per-page leaves rolled into a root ({!Mc_md5.Merkle}). Root equality
    substitutes for digest equality, a k-page refresh re-hashes only k
    leaves plus O(log n) interior nodes, and root {e inequality} can be
    descended to the deviant pages before any byte-level survey. Interior
    digests land on the meter's [merkle_nodes] counter so the timing model
    prices them. *)

val merkle_of_bytes :
  ?meter:Mc_hypervisor.Meter.t ->
  ?pool:Mc_parallel.Pool.t ->
  Bytes.t ->
  Mc_md5.Merkle.t
(** [merkle_of_bytes data] hashes every page-leaf and rolls up, metering
    the bytes hashed and interior nodes computed. With [?pool], buffers of
    at least 16 leaves fan the leaf hashing out across the pool's domains
    (each leaf is an independent span, so they parallelize cleanly) — only
    pass a pool from a caller thread, never from inside a pool task, or
    the nested dispatch can deadlock. *)

val merkle_of_leaves :
  ?meter:Mc_hypervisor.Meter.t ->
  length:int ->
  Mc_md5.Md5.digest array ->
  Mc_md5.Merkle.t
(** [merkle_of_leaves ~length leaves] rolls precomputed leaf digests up
    (metering only the interior nodes — the caller already metered the
    leaf hashing, possibly done in parallel). *)

val merkle_rehash :
  ?meter:Mc_hypervisor.Meter.t ->
  Mc_md5.Merkle.t ->
  Bytes.t ->
  dirty:int list ->
  Mc_md5.Merkle.t
(** [merkle_rehash t data ~dirty] is the k-dirty-page refresh: re-hashes
    only the named leaves from [data] and the interior nodes on their
    root paths, metering exactly those bytes and nodes. *)

val deviant_ranges :
  ?meter:Mc_hypervisor.Meter.t ->
  Mc_md5.Merkle.t ->
  Mc_md5.Merkle.t ->
  (int * int) list
(** [deviant_ranges t1 t2] descends the two trees and returns the
    (offset, length) spans of the leaves where the underlying buffers
    disagree — empty iff the roots match. Node comparisons are metered as
    [merkle_nodes] and each call bumps the [merkle.descents] telemetry
    counter. Raises [Invalid_argument] on shape mismatch (use the
    byte-level survey instead when sections differ in size). *)

val compare_pair :
  ?meter:Mc_hypervisor.Meter.t ->
  base1:int ->
  Artifact.t list ->
  base2:int ->
  Artifact.t list ->
  pair_result
(** [compare_pair ~base1 arts1 ~base2 arts2] matches artifacts by kind.
    Section-data artifacts are copied, RVA-adjusted against each other
    (Algorithm 2), then hashed; header artifacts are hashed directly.
    An artifact present on one side only, or section data of different
    lengths, is an immediate mismatch. *)
