module Dom = Mc_hypervisor.Dom
module Meter = Mc_hypervisor.Meter
module Xenctl = Mc_hypervisor.Xenctl
module Tel = Mc_telemetry.Registry

type 'a entry = {
  e_epoch : int;
  e_footprint : (int * int) array;
  e_value : 'a;
}

type 'a t = {
  mutex : Mutex.t;
  tbl : (int * string, 'a entry) Hashtbl.t;  (** (vm, key) → entry *)
}

let create () = { mutex = Mutex.create (); tbl = Hashtbl.create 64 }

let locked t f =
  Mutex.lock t.mutex;
  Fun.protect ~finally:(fun () -> Mutex.unlock t.mutex) f

let length t = locked t (fun () -> Hashtbl.length t.tbl)

let store t ~vm ~key ~epoch ~footprint value =
  locked t (fun () ->
      Hashtbl.replace t.tbl (vm, key)
        { e_epoch = epoch; e_footprint = footprint; e_value = value })

let tamper t f =
  locked t (fun () ->
      let changed = ref 0 in
      let replacements =
        Hashtbl.fold
          (fun ((vm, key) as k) e acc ->
            match f ~vm ~key e.e_value with
            | Some v -> (k, { e with e_value = v }) :: acc
            | None -> acc)
          t.tbl []
      in
      List.iter
        (fun (k, e) ->
          incr changed;
          Hashtbl.replace t.tbl k e)
        replacements;
      !changed)

let probe ?meter t dom ~vm ~key =
  match locked t (fun () -> Hashtbl.find_opt t.tbl (vm, key)) with
  | Some e when Xenctl.pages_unchanged ?meter dom ~epoch:e.e_epoch e.e_footprint
    ->
      Tel.add "digest_cache.hits" 1;
      Some e.e_value
  | Some _ ->
      (* Stale: a backing page was written, or the guest's memory was
         replaced wholesale (reboot/restore). Drop it; the caller will
         recompute and [store] a fresh entry. *)
      locked t (fun () -> Hashtbl.remove t.tbl (vm, key));
      Tel.add "digest_cache.misses" 1;
      None
  | None ->
      Tel.add "digest_cache.misses" 1;
      None
