module Dom = Mc_hypervisor.Dom
module Meter = Mc_hypervisor.Meter
module Xenctl = Mc_hypervisor.Xenctl
module Tel = Mc_telemetry.Registry

type 'a entry = {
  e_epoch : int;
  e_footprint : (int * int) array;
  e_value : 'a;
}

type 'a t = {
  mutex : Mutex.t;
  tbl : (int * string, 'a entry) Hashtbl.t;  (** (vm, key) → entry *)
}

let create () = { mutex = Mutex.create (); tbl = Hashtbl.create 64 }

let locked t f =
  Mutex.lock t.mutex;
  Fun.protect ~finally:(fun () -> Mutex.unlock t.mutex) f

let length t = locked t (fun () -> Hashtbl.length t.tbl)

let store t ~vm ~key ~epoch ~footprint value =
  locked t (fun () ->
      Hashtbl.replace t.tbl (vm, key)
        { e_epoch = epoch; e_footprint = footprint; e_value = value })

let peek t ~vm ~key ~epoch =
  locked t (fun () ->
      match Hashtbl.find_opt t.tbl (vm, key) with
      | Some e when e.e_epoch = epoch -> Some e.e_value
      | Some _ | None -> None)

let footprint_pfns t ~vm ~key ~epoch =
  locked t (fun () ->
      match Hashtbl.find_opt t.tbl (vm, key) with
      | Some e when e.e_epoch = epoch ->
          Some (Array.to_list (Array.map fst e.e_footprint))
      | Some _ | None -> None)

let tamper t f =
  locked t (fun () ->
      let changed = ref 0 in
      let replacements =
        Hashtbl.fold
          (fun ((vm, key) as k) e acc ->
            match f ~vm ~key e.e_value with
            | Some v -> (k, { e with e_value = v }) :: acc
            | None -> acc)
          t.tbl []
      in
      List.iter
        (fun (k, e) ->
          incr changed;
          Hashtbl.replace t.tbl k e)
        replacements;
      !changed)

(* Remove the entry only if it is still physically the one we judged
   stale. The staleness hypercall runs outside the lock, so another
   worker may have stored a fresh value under the same key meanwhile;
   removing by key would evict that store — the next probe would pay a
   full recompute for nothing (and, worse, two racing probes could keep
   evicting each other's stores indefinitely). *)
let drop_if_same t ~vm ~key e =
  locked t (fun () ->
      match Hashtbl.find_opt t.tbl (vm, key) with
      | Some e' when e' == e -> Hashtbl.remove t.tbl (vm, key)
      | Some _ | None -> ())

let probe ?meter t dom ~vm ~key =
  match locked t (fun () -> Hashtbl.find_opt t.tbl (vm, key)) with
  | Some e when Xenctl.pages_unchanged ?meter dom ~epoch:e.e_epoch e.e_footprint
    ->
      Tel.add "digest_cache.hits" 1;
      Some e.e_value
  | Some e ->
      (* Stale: a backing page was written, or the guest's memory was
         replaced wholesale (reboot/restore). Drop it; the caller will
         recompute and [store] a fresh entry. *)
      drop_if_same t ~vm ~key e;
      Tel.add "digest_cache.misses" 1;
      None
  | None ->
      Tel.add "digest_cache.misses" 1;
      None

type 'a delta =
  | Fresh of 'a
  | Stale of {
      stale_value : 'a;
      stale_epoch : int;
      stale_footprint : (int * int) array;
      stale_dirty : int list;
    }
  | Missing

let probe_delta ?meter t dom ~vm ~key =
  match locked t (fun () -> Hashtbl.find_opt t.tbl (vm, key)) with
  | None ->
      Tel.add "digest_cache.misses" 1;
      Missing
  | Some e -> (
      match Xenctl.stale_pfns ?meter dom ~epoch:e.e_epoch e.e_footprint with
      | Some [] ->
          Tel.add "digest_cache.hits" 1;
          Fresh e.e_value
      | Some dirty ->
          (* Same epoch, some pages written: hand back the prior value
             with the culprits so the caller can refresh O(dirty) of it.
             The entry is dropped (same-entry check as [probe]) so a
             failed refresh cannot leave a stale value behind. *)
          drop_if_same t ~vm ~key e;
          Tel.add "digest_cache.stale_partial" 1;
          Stale
            {
              stale_value = e.e_value;
              stale_epoch = e.e_epoch;
              stale_footprint = e.e_footprint;
              stale_dirty = dirty;
            }
      | None ->
          (* Epoch changed: the footprint is void, nothing is salvageable. *)
          drop_if_same t ~vm ~key e;
          Tel.add "digest_cache.misses" 1;
          Missing)
