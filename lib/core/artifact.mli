(** The hashable artifacts Module-Parser extracts from a module.

    Following §IV-B, a module decomposes into its headers and the data of
    its read-only/executable sections; each artifact is hashed separately
    so a mismatch pinpoints {e what} changed (experiment 3 flags only the
    DOS header; experiment 1 only .text). *)

type kind =
  | Dos_header
      (** Bytes [0, e_lfanew): IMAGE_DOS_HEADER plus the DOS stub. *)
  | Nt_header
      (** Signature + FILE + OPTIONAL as one blob (IMAGE_NT_HEADERS). *)
  | File_header
  | Optional_header
  | Section_header of string  (** One 40-byte header, by section name. *)
  | Section_data of string
      (** The in-memory data of one hashable section. *)

type t = {
  kind : kind;
  data : Bytes.t;
  sec_rva : int;
      (** For [Section_data]: the section's RVA (used by the reloc-guided
          adjuster); 0 for headers. *)
}

val kind_name : kind -> string
(** [kind_name k] is a stable display name, e.g. ["IMAGE_DOS_HEADER"],
    ["SECTION_HEADER(.text)"], [".text"]. *)

val kind_of_name : string -> kind
(** Inverse of {!kind_name} on every name it emits; an unrecognized name
    parses as [Section_data name] (section names are the open case). *)

val equal_kind : kind -> kind -> bool

val is_section_data : t -> bool

val find : t list -> kind -> t option
