module Cloud = Mc_hypervisor.Cloud
module Costs = Mc_hypervisor.Costs
module Meter = Mc_hypervisor.Meter
module Sched = Mc_hypervisor.Sched
module Xenctl = Mc_hypervisor.Xenctl
module Pool = Mc_parallel.Pool
module Tel = Mc_telemetry.Registry
module Span = Mc_telemetry.Span

type alarm_kind =
  | Hash_deviation
  | Missing_module
  | List_discrepancy
  | Quorum_loss

type alarm = {
  at : float;
  alarm_module : string;
  alarm_vms : int list;
  kind : alarm_kind;
}

type config = {
  watch : string list;
  interval_s : float;
  costs : Costs.t;
  workers : int;
  compare_lists : bool;
  incremental : bool;
  check : Orchestrator.Config.t;
}

let default_config =
  {
    watch = Mc_pe.Catalog.standard_modules;
    interval_s = 30.0;
    costs = Costs.default;
    workers = 1;
    compare_lists = true;
    incremental = false;
    check = Orchestrator.Config.default;
  }

type outcome = {
  alarms : alarm list;
  sweeps : int;
  virtual_elapsed : float;
  cpu_spent : float;
  mean_sweep_wall : float;
  sweep_cpus : float list;
}

type sweep_work = {
  sw_surveys : (string * Report.survey * Meter.t) list;
  sw_lists : (Orchestrator.list_comparison * Meter.t) option;
  sw_overhead : Meter.t option;
}

type driver = unit -> sweep_work

let alarm_kind_string = function
  | Hash_deviation -> "hash deviation"
  | Missing_module -> "missing module"
  | List_discrepancy -> "module-list discrepancy"
  | Quorum_loss -> "quorum loss"

let alarm_kind_key = function
  | Hash_deviation -> "hash_deviation"
  | Missing_module -> "missing_module"
  | List_discrepancy -> "list_discrepancy"
  | Quorum_loss -> "quorum_loss"

(* Keep log-dirty tracking armed on every guest. A reboot or restore
   replaces the guest's physical memory (new epoch) with tracking off, so
   re-arm whenever a VM's epoch moved; the hypercalls are metered. *)
let ensure_log_dirty meter epochs cloud =
  List.iter
    (fun vm ->
      let dom = Cloud.vm cloud vm in
      let e = Xenctl.memory_epoch dom in
      match Hashtbl.find_opt epochs vm with
      | Some e' when e' = e -> ()
      | _ ->
          Xenctl.enable_log_dirty ~meter dom;
          Hashtbl.replace epochs vm e)
    (List.init (Cloud.vm_count cloud) Fun.id)

(* Turn one sweep's survey and list-comparison results into alarms. A
   degraded survey raises the distinct availability alarm and nothing
   else — a degraded sweep must never be dressed up as an integrity
   finding. *)
let alarms_of_work config work =
  let sweep_alarms = ref [] in
  List.iter
    (fun (module_name, s, _) ->
      match s.Report.s_verdict with
      | Report.Degraded _ ->
          sweep_alarms :=
            {
              at = 0.0;
              alarm_module = module_name;
              alarm_vms = List.map fst s.Report.unreachable_on;
              kind = Quorum_loss;
            }
            :: !sweep_alarms
      | Report.Intact | Report.Infected ->
          if s.Report.deviant_vms <> [] then
            sweep_alarms :=
              {
                at = 0.0;
                alarm_module = module_name;
                alarm_vms = s.Report.deviant_vms;
                kind = Hash_deviation;
              }
              :: !sweep_alarms;
          if s.Report.missing_on <> [] then
            sweep_alarms :=
              {
                at = 0.0;
                alarm_module = module_name;
                alarm_vms = s.Report.missing_on;
                kind = Missing_module;
              }
              :: !sweep_alarms)
    work.sw_surveys;
  (match work.sw_lists with
  | None -> ()
  | Some (comparison, _) ->
      (match comparison.Orchestrator.lc_unreachable with
      | [] -> ()
      | unreachable ->
          sweep_alarms :=
            {
              at = 0.0;
              alarm_module = "(module lists)";
              alarm_vms = List.map fst unreachable;
              kind = Quorum_loss;
            }
            :: !sweep_alarms);
      List.iter
        (fun (d : Orchestrator.list_discrepancy) ->
          (* Only alarm on list entries we are not already alarming on as
             a missing watched module. *)
          if not (List.mem d.Orchestrator.ld_module config.watch) then
            sweep_alarms :=
              {
                at = 0.0;
                alarm_module = d.Orchestrator.ld_module;
                alarm_vms = d.Orchestrator.missing_on;
                kind = List_discrepancy;
              }
              :: !sweep_alarms)
        comparison.Orchestrator.lc_discrepancies);
  !sweep_alarms

let run_driven ?(config = default_config) ?(events = []) cloud ~until driver =
  let clock = ref 0.0 in
  let cpu = ref 0.0 in
  let sweeps = ref 0 in
  let walls = ref [] in
  let sweep_cpus = ref [] in
  let alarms = ref [] in
  let pending = ref (List.sort (fun (a, _) (b, _) -> compare a b) events) in
  while !clock < until do
    (* Fire events whose time has come before this sweep observes the
       cloud. *)
    let rec fire () =
      match !pending with
      | (t, f) :: rest when t <= !clock ->
          f cloud;
          pending := rest;
          fire ()
      | _ -> ()
    in
    fire ();
    let sweep_started = !clock in
    let wall, sweep_cpu, sweep_alarms =
      Tel.with_span
        ~attrs:
          [ ("sweep", Int (!sweeps + 1)); ("virtual_start_s", Float sweep_started) ]
        "patrol_sweep"
      @@ fun sp ->
      let work = driver () in
      let sweep_alarms = alarms_of_work config work in
      (* Price the sweep and advance the virtual clock under current
         load. Each meter is one schedulable job, so multiple Dom0
         workers can survey modules concurrently. *)
      let module_costs =
        (match work.sw_overhead with
        | Some m -> [ Meter.total_cpu_seconds config.costs m ]
        | None -> [])
        @ List.map
            (fun (_, _, m) -> Meter.total_cpu_seconds config.costs m)
            work.sw_surveys
        @ (match work.sw_lists with
          | Some (_, m) -> [ Meter.total_cpu_seconds config.costs m ]
          | None -> [])
      in
      let sweep_cpu = List.fold_left ( +. ) 0.0 module_costs in
      let bus =
        Sched.bus_factor config.costs ~busy_vms:(Cloud.busy_vms cloud)
          ~cores:cloud.Cloud.cores
      in
      let wall =
        Sched.run_jobs ~cores:cloud.Cloud.cores
          ~busy_guest_vcpus:(Cloud.busy_guest_vcpus cloud)
          ~workers:config.workers
          (List.map (fun c -> c *. bus) module_costs)
      in
      Span.set_virtual sp ~start:sweep_started ~finish:(sweep_started +. wall);
      Span.set_attr sp "alarms" (Int (List.length sweep_alarms));
      Span.set_attr sp "cpu_s" (Float sweep_cpu);
      (wall, sweep_cpu, sweep_alarms)
    in
    if Tel.enabled () then begin
      Tel.add "patrol.sweeps" 1;
      Tel.observe "patrol.sweep_wall_virtual_s" wall;
      List.iter
        (fun a -> Tel.add ("patrol.alarms." ^ alarm_kind_key a.kind) 1)
        sweep_alarms
    end;
    cpu := !cpu +. sweep_cpu;
    sweep_cpus := sweep_cpu :: !sweep_cpus;
    walls := wall :: !walls;
    incr sweeps;
    clock := sweep_started +. wall;
    Log.debug (fun m ->
        m "patrol sweep %d at t=%.1fs: %.1f ms wall, %d alarm(s)" !sweeps
          sweep_started (wall *. 1e3)
          (List.length sweep_alarms));
    List.iter
      (fun a ->
        Log.warn (fun m ->
            m "patrol alarm at t=%.1fs: %s on %s (VMs %s)" !clock
              (alarm_kind_string a.kind) a.alarm_module
              (String.concat ","
                 (List.map (fun v -> string_of_int (v + 1)) a.alarm_vms))))
      sweep_alarms;
    alarms :=
      List.rev_append
        (List.rev_map (fun a -> { a with at = !clock }) sweep_alarms)
        !alarms;
    (* Sleep until the next interval boundary (if the sweep overran the
       interval, start again immediately). *)
    let next_start = sweep_started +. config.interval_s in
    if next_start > !clock then clock := next_start
  done;
  {
    alarms = List.rev !alarms;
    sweeps = !sweeps;
    virtual_elapsed = !clock;
    cpu_spent = !cpu;
    mean_sweep_wall = Mc_util.Stats.mean !walls;
    sweep_cpus = List.rev !sweep_cpus;
  }

let run ?(config = default_config) ?(events = []) cloud ~until =
  let incremental =
    if config.incremental then Some (Orchestrator.create_incremental ())
    else None
  in
  let epochs = Hashtbl.create 16 in
  let with_mode f =
    if config.workers > 1 then
      Pool.with_pool config.workers (fun pool -> f (Orchestrator.Parallel pool))
    else f Orchestrator.Sequential
  in
  with_mode @@ fun mode ->
  let check =
    config.check
    |> Orchestrator.Config.with_mode mode
    |>
    match incremental with
    | Some inc -> Orchestrator.Config.with_incremental inc
    | None -> Fun.id
  in
  let driver () =
    let sw_overhead =
      match incremental with
      | None -> None
      | Some _ ->
          (* Arm/drain the log-dirty machinery; this Dom0 overhead is a
             schedulable job like any survey, so it is priced into the
             sweep. *)
          let m = Meter.create () in
          ensure_log_dirty m epochs cloud;
          List.iter
            (fun vm ->
              let dirty = Xenctl.clean_dirty ~meter:m (Cloud.vm cloud vm) in
              if Tel.enabled () then
                Tel.add "vmi.pages_dirty" (List.length dirty))
            (List.init (Cloud.vm_count cloud) Fun.id);
          Some m
    in
    let sw_surveys =
      List.map
        (fun module_name ->
          let meter = Meter.create () in
          let s = Orchestrator.survey ~config:check ~meter cloud ~module_name in
          (module_name, s, meter))
        config.watch
    in
    let sw_lists =
      if config.compare_lists then begin
        (* The list walks are real introspection work: meter them and
           fold their cost into the sweep like any surveyed module. *)
        let m = Meter.create () in
        Some (Orchestrator.survey_module_lists ~config:check ~meter:m cloud, m)
      end
      else None
    in
    { sw_surveys; sw_lists; sw_overhead }
  in
  run_driven ~config ~events cloud ~until driver

let to_json o =
  let open Mc_util.Json in
  Obj
    [
      ("sweeps", Int o.sweeps);
      ("virtual_elapsed_s", Float o.virtual_elapsed);
      ("cpu_spent_s", Float o.cpu_spent);
      ("mean_sweep_wall_s", Float o.mean_sweep_wall);
      ("sweep_cpus_s", List (List.map (fun c -> Float c) o.sweep_cpus));
      ( "alarms",
        List
          (List.map
             (fun a ->
               Obj
                 [
                   ("at_s", Float a.at);
                   ("kind", String (alarm_kind_string a.kind));
                   ("module", String a.alarm_module);
                   ("vms", List (List.map (fun v -> Int v) a.alarm_vms));
                 ])
             o.alarms) );
    ]

let time_to_detect outcome ~module_name ~infected_at =
  List.find_map
    (fun a ->
      if a.alarm_module = module_name && a.at >= infected_at then
        Some (a.at -. infected_at)
      else None)
    outcome.alarms
