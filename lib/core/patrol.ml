module Cloud = Mc_hypervisor.Cloud
module Costs = Mc_hypervisor.Costs
module Phys = Mc_memsim.Phys
module Meter = Mc_hypervisor.Meter
module Sched = Mc_hypervisor.Sched
module Xenctl = Mc_hypervisor.Xenctl
module Pool = Mc_parallel.Pool
module Tel = Mc_telemetry.Registry
module Span = Mc_telemetry.Span

type alarm_kind =
  | Hash_deviation
  | Missing_module
  | List_discrepancy
  | Quorum_loss
  | Anchor_mismatch

type alarm = {
  at : float;
  alarm_module : string;
  alarm_vms : int list;
  kind : alarm_kind;
}

type config = {
  watch : string list;
  interval_s : float;
  costs : Costs.t;
  workers : int;
  compare_lists : bool;
  incremental : bool;
  audit_anchors : bool;
  check : Orchestrator.Config.t;
}

let default_config =
  {
    watch = Mc_pe.Catalog.standard_modules;
    interval_s = 30.0;
    costs = Costs.default;
    workers = 1;
    compare_lists = true;
    incremental = false;
    audit_anchors = false;
    check = Orchestrator.Config.default;
  }

type outcome = {
  alarms : alarm list;
  sweeps : int;
  reactions : int;
  virtual_elapsed : float;
  cpu_spent : float;
  mean_sweep_wall : float;
  sweep_cpus : float list;
  latencies_s : float list;
}

type sweep_work = {
  sw_surveys : (string * Report.survey * Meter.t) list;
  sw_lists : (Orchestrator.list_comparison * Meter.t) option;
  sw_anchors : (string * int) list;
  sw_overhead : Meter.t option;
}

type driver = unit -> sweep_work

let alarm_kind_string = function
  | Hash_deviation -> "hash deviation"
  | Missing_module -> "missing module"
  | List_discrepancy -> "module-list discrepancy"
  | Quorum_loss -> "quorum loss"
  | Anchor_mismatch -> "merkle anchor mismatch"

let alarm_kind_key = function
  | Hash_deviation -> "hash_deviation"
  | Missing_module -> "missing_module"
  | List_discrepancy -> "list_discrepancy"
  | Quorum_loss -> "quorum_loss"
  | Anchor_mismatch -> "anchor_mismatch"

(* Keep log-dirty tracking armed on every guest. A reboot or restore
   replaces the guest's physical memory (new epoch) with tracking off, so
   re-arm whenever a VM's epoch moved; the hypercalls are metered. *)
let ensure_log_dirty meter epochs cloud =
  List.iter
    (fun vm ->
      let dom = Cloud.vm cloud vm in
      let e = Xenctl.memory_epoch dom in
      match Hashtbl.find_opt epochs vm with
      | Some e' when e' = e -> ()
      | _ ->
          Xenctl.enable_log_dirty ~meter dom;
          Hashtbl.replace epochs vm e)
    (List.init (Cloud.vm_count cloud) Fun.id)

(* Turn one sweep's survey and list-comparison results into alarms. A
   degraded survey raises the distinct availability alarm and nothing
   else — a degraded sweep must never be dressed up as an integrity
   finding. *)
let alarms_of_work config work =
  let sweep_alarms = ref [] in
  List.iter
    (fun (module_name, s, _) ->
      match s.Report.s_verdict with
      | Report.Degraded _ ->
          sweep_alarms :=
            {
              at = 0.0;
              alarm_module = module_name;
              alarm_vms = List.map fst s.Report.unreachable_on;
              kind = Quorum_loss;
            }
            :: !sweep_alarms
      | Report.Intact | Report.Infected ->
          if s.Report.deviant_vms <> [] then
            sweep_alarms :=
              {
                at = 0.0;
                alarm_module = module_name;
                alarm_vms = s.Report.deviant_vms;
                kind = Hash_deviation;
              }
              :: !sweep_alarms;
          if s.Report.missing_on <> [] then
            sweep_alarms :=
              {
                at = 0.0;
                alarm_module = module_name;
                alarm_vms = s.Report.missing_on;
                kind = Missing_module;
              }
              :: !sweep_alarms)
    work.sw_surveys;
  (match work.sw_lists with
  | None -> ()
  | Some (comparison, _) ->
      (match comparison.Orchestrator.lc_unreachable with
      | [] -> ()
      | unreachable ->
          sweep_alarms :=
            {
              at = 0.0;
              alarm_module = "(module lists)";
              alarm_vms = List.map fst unreachable;
              kind = Quorum_loss;
            }
            :: !sweep_alarms);
      List.iter
        (fun (d : Orchestrator.list_discrepancy) ->
          (* Only alarm on list entries we are not already alarming on as
             a missing watched module. *)
          if not (List.mem d.Orchestrator.ld_module config.watch) then
            sweep_alarms :=
              {
                at = 0.0;
                alarm_module = d.Orchestrator.ld_module;
                alarm_vms = d.Orchestrator.missing_on;
                kind = List_discrepancy;
              }
              :: !sweep_alarms)
        comparison.Orchestrator.lc_discrepancies);
  List.iter
    (fun (module_name, vm) ->
      sweep_alarms :=
        {
          at = 0.0;
          alarm_module = module_name;
          alarm_vms = [ vm ];
          kind = Anchor_mismatch;
        }
        :: !sweep_alarms)
    work.sw_anchors;
  !sweep_alarms

(* Price one batch of checking work: total Dom0 CPU plus the virtual wall
   time it takes under the current guest load. Each meter is one
   schedulable job, so multiple Dom0 workers can run them concurrently. *)
let price_work config cloud work =
  let module_costs =
    (match work.sw_overhead with
    | Some m -> [ Meter.total_cpu_seconds config.costs m ]
    | None -> [])
    @ List.map
        (fun (_, _, m) -> Meter.total_cpu_seconds config.costs m)
        work.sw_surveys
    @ (match work.sw_lists with
      | Some (_, m) -> [ Meter.total_cpu_seconds config.costs m ]
      | None -> [])
  in
  let cpu = List.fold_left ( +. ) 0.0 module_costs in
  let bus =
    Sched.bus_factor config.costs ~busy_vms:(Cloud.busy_vms cloud)
      ~cores:cloud.Cloud.cores
  in
  let wall =
    Sched.run_jobs ~cores:cloud.Cloud.cores
      ~busy_guest_vcpus:(Cloud.busy_guest_vcpus cloud)
      ~workers:config.workers
      (List.map (fun c -> c *. bus) module_costs)
  in
  (cpu, wall)

let run_driven ?(config = default_config) ?(events = []) cloud ~until driver =
  let clock = ref 0.0 in
  let cpu = ref 0.0 in
  let sweeps = ref 0 in
  let walls = ref [] in
  let sweep_cpus = ref [] in
  let alarms = ref [] in
  let pending = ref (List.sort (fun (a, _) (b, _) -> compare a b) events) in
  while !clock < until do
    (* Fire events whose time has come before this sweep observes the
       cloud. *)
    let rec fire () =
      match !pending with
      | (t, f) :: rest when t <= !clock ->
          f cloud;
          pending := rest;
          fire ()
      | _ -> ()
    in
    fire ();
    let sweep_started = !clock in
    let wall, sweep_cpu, sweep_alarms =
      Tel.with_span
        ~attrs:
          [ ("sweep", Int (!sweeps + 1)); ("virtual_start_s", Float sweep_started) ]
        "patrol_sweep"
      @@ fun sp ->
      let work = driver () in
      let sweep_alarms = alarms_of_work config work in
      (* Price the sweep and advance the virtual clock under current
         load. *)
      let sweep_cpu, wall = price_work config cloud work in
      Span.set_virtual sp ~start:sweep_started ~finish:(sweep_started +. wall);
      Span.set_attr sp "alarms" (Int (List.length sweep_alarms));
      Span.set_attr sp "cpu_s" (Float sweep_cpu);
      (wall, sweep_cpu, sweep_alarms)
    in
    if Tel.enabled () then begin
      Tel.add "patrol.sweeps" 1;
      Tel.observe "patrol.sweep_wall_virtual_s" wall;
      List.iter
        (fun a -> Tel.add ("patrol.alarms." ^ alarm_kind_key a.kind) 1)
        sweep_alarms
    end;
    cpu := !cpu +. sweep_cpu;
    sweep_cpus := sweep_cpu :: !sweep_cpus;
    walls := wall :: !walls;
    incr sweeps;
    clock := sweep_started +. wall;
    Log.debug (fun m ->
        m "patrol sweep %d at t=%.1fs: %.1f ms wall, %d alarm(s)" !sweeps
          sweep_started (wall *. 1e3)
          (List.length sweep_alarms));
    List.iter
      (fun a ->
        Log.warn (fun m ->
            m "patrol alarm at t=%.1fs: %s on %s (VMs %s)" !clock
              (alarm_kind_string a.kind) a.alarm_module
              (String.concat ","
                 (List.map (fun v -> string_of_int (v + 1)) a.alarm_vms))))
      sweep_alarms;
    alarms :=
      List.rev_append
        (List.rev_map (fun a -> { a with at = !clock }) sweep_alarms)
        !alarms;
    (* Sleep until the next interval boundary (if the sweep overran the
       interval, start again immediately). *)
    let next_start = sweep_started +. config.interval_s in
    if next_start > !clock then clock := next_start
  done;
  (* Events scheduled between the final sweep's start and [until] still
     belong to this patrol window: fire them so the schedule is fully
     applied. Without this, an infection staged near [until] silently
     never happens and reads as a false "no detection" — the caller must
     observe "happened but not detected in time" instead. *)
  let rec fire_rest () =
    match !pending with
    | (t, f) :: rest when t <= until ->
        f cloud;
        pending := rest;
        fire_rest ()
    | _ -> ()
  in
  fire_rest ();
  {
    alarms = List.rev !alarms;
    sweeps = !sweeps;
    reactions = 0;
    virtual_elapsed = !clock;
    cpu_spent = !cpu;
    mean_sweep_wall = Mc_util.Stats.mean !walls;
    sweep_cpus = List.rev !sweep_cpus;
    latencies_s = [];
  }

let run ?(config = default_config) ?(events = []) cloud ~until =
  let incremental =
    if config.incremental then Some (Orchestrator.create_incremental ())
    else None
  in
  let epochs = Hashtbl.create 16 in
  let with_mode f =
    if config.workers > 1 then
      Pool.with_pool config.workers (fun pool -> f (Orchestrator.Parallel pool))
    else f Orchestrator.Sequential
  in
  with_mode @@ fun mode ->
  let check =
    config.check
    |> Orchestrator.Config.with_mode mode
    |>
    match incremental with
    | Some inc -> Orchestrator.Config.with_incremental inc
    | None -> Fun.id
  in
  let driver () =
    let sw_overhead =
      match incremental with
      | None -> None
      | Some _ ->
          (* Arm/drain the log-dirty machinery; this Dom0 overhead is a
             schedulable job like any survey, so it is priced into the
             sweep. *)
          let m = Meter.create () in
          ensure_log_dirty m epochs cloud;
          List.iter
            (fun vm ->
              let dirty = Xenctl.clean_dirty ~meter:m (Cloud.vm cloud vm) in
              if Tel.enabled () then
                Tel.add "vmi.pages_dirty" (List.length dirty))
            (List.init (Cloud.vm_count cloud) Fun.id);
          Some m
    in
    let sw_surveys =
      List.map
        (fun module_name ->
          let meter = Meter.create () in
          let s = Orchestrator.survey ~config:check ~meter cloud ~module_name in
          (module_name, s, meter))
        config.watch
    in
    let sw_lists =
      if config.compare_lists then begin
        (* The list walks are real introspection work: meter them and
           fold their cost into the sweep like any surveyed module. *)
        let m = Meter.create () in
        Some (Orchestrator.survey_module_lists ~config:check ~meter:m cloud, m)
      end
      else None
    in
    let sw_anchors =
      (* Cross-check the two Dom0 read channels over the footprints the
         surveys just cached. Needs the incremental caches — without
         them there is no footprint to vouch for. *)
      match incremental with
      | Some inc when config.audit_anchors ->
          let m = match sw_overhead with Some m -> m | None -> Meter.create () in
          Orchestrator.audit_anchors ~meter:m inc cloud ~watch:config.watch
      | _ -> []
    in
    { sw_surveys; sw_lists; sw_anchors; sw_overhead }
  in
  run_driven ~config ~events cloud ~until driver

(* --- event-driven checking --------------------------------------------- *)

module Events = struct
  type reaction = {
    rx_work : sweep_work;
    rx_alarms : alarm list;
    rx_wall : float;
    rx_cpu : float;
    rx_traps : int;
    rx_latencies : float list;
  }

  type session = {
    es_config : config;
    es_cloud : Cloud.t;
    es_inc : Orchestrator.incremental;
    es_survey : high:bool -> string -> string * Report.survey * Meter.t;
    es_lists :
      high:bool -> unit -> (Orchestrator.list_comparison * Meter.t) option;
    es_epochs : (int, int) Hashtbl.t;
        (** vm → memory epoch its watches were armed in. *)
    es_armed : (int, (int, unit) Hashtbl.t) Hashtbl.t;
        (** vm → pfns Dom0 believes are armed. Exact: only traps disarm,
            and every trap is observed when its event is drained. *)
    es_map : (int, (int, Orchestrator.watch_source list) Hashtbl.t) Hashtbl.t;
        (** vm → pfn → the watch sources that page was backing when
            armed. *)
  }

  let create ?(config = default_config) ~inc ~survey ~lists cloud =
    {
      es_config = config;
      es_cloud = cloud;
      es_inc = inc;
      es_survey = survey;
      es_lists = lists;
      es_epochs = Hashtbl.create 16;
      es_armed = Hashtbl.create 16;
      es_map = Hashtbl.create 16;
    }

  let vms s = List.init (Cloud.vm_count s.es_cloud) Fun.id

  let set_now s now =
    List.iter
      (fun vm -> Xenctl.set_trap_clock (Cloud.vm s.es_cloud vm) now)
      (vms s)

  let armed_set s vm =
    match Hashtbl.find_opt s.es_armed vm with
    | Some set -> set
    | None ->
        let set = Hashtbl.create 64 in
        Hashtbl.replace s.es_armed vm set;
        set

  (* Re-derive the wanted pfn→source map from the digest caches' current
     footprints and arm exactly the delta: pages newly backing something
     watched (or disarmed by their trap) get protected, pages no longer
     backing anything watched get released. A VM whose footprints did not
     move issues no hypercall at all. *)
  let rearm_vm s meter vm =
    let dom = Cloud.vm s.es_cloud vm in
    let sources =
      Orchestrator.watch_pfns s.es_inc dom ~vm ~watch:s.es_config.watch
    in
    let map = Hashtbl.create 64 in
    List.iter
      (fun (src, pfns) ->
        List.iter
          (fun pfn ->
            let cur = Option.value ~default:[] (Hashtbl.find_opt map pfn) in
            if not (List.mem src cur) then Hashtbl.replace map pfn (src :: cur))
          pfns)
      sources;
    Hashtbl.replace s.es_map vm map;
    let armed = armed_set s vm in
    let to_arm =
      Hashtbl.fold
        (fun pfn _ acc -> if Hashtbl.mem armed pfn then acc else pfn :: acc)
        map []
    in
    let to_drop =
      Hashtbl.fold
        (fun pfn () acc -> if Hashtbl.mem map pfn then acc else pfn :: acc)
        armed []
    in
    if to_arm <> [] then Xenctl.watch_pages ~meter dom (List.sort compare to_arm);
    if to_drop <> [] then
      Xenctl.unwatch_pages ~meter dom (List.sort compare to_drop);
    List.iter (fun pfn -> Hashtbl.replace armed pfn ()) to_arm;
    List.iter (fun pfn -> Hashtbl.remove armed pfn) to_drop;
    Hashtbl.replace s.es_epochs vm (Xenctl.memory_epoch dom)

  let run_once s ~now ~full =
    let overhead = Meter.create () in
    (* Earliest trap time per watch source across the pool. *)
    let trap_at : (Orchestrator.watch_source, float) Hashtbl.t =
      Hashtbl.create 8
    in
    let note src at =
      match Hashtbl.find_opt trap_at src with
      | Some t when t <= at -> ()
      | _ -> Hashtbl.replace trap_at src at
    in
    let traps = ref 0 in
    List.iter
      (fun vm ->
        let dom = Cloud.vm s.es_cloud vm in
        let armed = armed_set s vm in
        let epoch_now = Xenctl.memory_epoch dom in
        (match Hashtbl.find_opt s.es_epochs vm with
        | Some e when e <> epoch_now ->
            (* Reboot/restore: the protection died silently with the old
               memory. Treat it as a trap on everything the VM was
               watching — the whole watch list gets rechecked and the VM
               re-armed on its new memory. *)
            Hashtbl.reset armed;
            Hashtbl.remove s.es_epochs vm;
            List.iter
              (fun m -> note (Orchestrator.Watch_module m) now)
              s.es_config.watch;
            note Orchestrator.Watch_lists now
        | _ -> ());
        let evs = Xenctl.drain_events ~meter:overhead dom in
        let map = Hashtbl.find_opt s.es_map vm in
        List.iter
          (fun (e : Phys.watch_event) ->
            incr traps;
            Hashtbl.remove armed e.Phys.we_pfn;
            match map with
            | None -> ()
            | Some map ->
                List.iter
                  (fun src -> note src e.Phys.we_at)
                  (Option.value ~default:[]
                     (Hashtbl.find_opt map e.Phys.we_pfn)))
          evs)
      (vms s);
    if (not full) && Hashtbl.length trap_at = 0 then None
    else begin
      let hit src = full || Hashtbl.mem trap_at src in
      let mods =
        List.filter
          (fun m -> hit (Orchestrator.Watch_module m))
          s.es_config.watch
      in
      let sw_surveys = List.map (fun m -> s.es_survey ~high:(not full) m) mods in
      let sw_lists =
        if s.es_config.compare_lists && hit Orchestrator.Watch_lists then
          s.es_lists ~high:(not full) ()
        else None
      in
      let sw_anchors =
        if s.es_config.audit_anchors then
          Orchestrator.audit_anchors ~meter:overhead s.es_inc s.es_cloud
            ~watch:mods
        else []
      in
      (* Arm (or re-arm) against the fresh footprints the surveys just
         cached; the delta hypercalls are part of this batch's cost. *)
      List.iter (fun vm -> rearm_vm s overhead vm) (vms s);
      let work = { sw_surveys; sw_lists; sw_anchors; sw_overhead = Some overhead } in
      let raw = alarms_of_work s.es_config work in
      let cpu, wall = price_work s.es_config s.es_cloud work in
      let finish = now +. wall in
      let rx_alarms = List.map (fun a -> { a with at = finish }) raw in
      let latency_source a =
        match a.kind with
        | List_discrepancy -> Orchestrator.Watch_lists
        | _ -> Orchestrator.Watch_module a.alarm_module
      in
      let rx_latencies =
        List.filter_map
          (fun a ->
            match a.kind with
            | Quorum_loss -> None
            | Hash_deviation | Missing_module | List_discrepancy
            | Anchor_mismatch -> (
                (* Detection latency: guest write (the trap's timestamp)
                   to alarm. An alarm with no trap behind it (a safety
                   sweep catching something watches missed) has no
                   defined latency. *)
                match Hashtbl.find_opt trap_at (latency_source a) with
                | Some t -> Some (finish -. t)
                | None -> None))
          rx_alarms
      in
      if Tel.enabled () then
        List.iter
          (fun l -> Tel.observe "patrol.detection_latency_s" l)
          rx_latencies;
      Some
        {
          rx_work = work;
          rx_alarms;
          rx_wall = wall;
          rx_cpu = cpu;
          rx_traps = !traps;
          rx_latencies;
        }
    end

  let baseline s ~now = Option.get (run_once s ~now ~full:true)

  let react s ~now = run_once s ~now ~full:false
end

let run_events_driven ?(config = default_config) ?(events = []) ?full_every_s
    cloud ~until session =
  let full_every =
    match full_every_s with
    | Some f -> f
    | None -> 20.0 *. config.interval_s
  in
  if full_every <= 0.0 then
    invalid_arg "Patrol.run_events_driven: full_every_s must be positive";
  let clock = ref 0.0 in
  let cpu = ref 0.0 in
  let sweeps = ref 0 in
  let reactions = ref 0 in
  let walls = ref [] in
  let sweep_cpus = ref [] in
  let alarms = ref [] in
  let latencies = ref [] in
  let pending = ref (List.sort (fun (a, _) (b, _) -> compare a b) events) in
  let absorb ~sweep ~now (r : Events.reaction) =
    cpu := !cpu +. r.Events.rx_cpu;
    walls := r.Events.rx_wall :: !walls;
    if sweep then begin
      incr sweeps;
      sweep_cpus := r.Events.rx_cpu :: !sweep_cpus
    end
    else incr reactions;
    latencies := List.rev_append (List.rev r.Events.rx_latencies) !latencies;
    alarms := List.rev_append (List.rev r.Events.rx_alarms) !alarms;
    if Tel.enabled () then begin
      if sweep then Tel.add "patrol.sweeps" 1 else Tel.add "patrol.reactions" 1;
      Tel.observe "patrol.sweep_wall_virtual_s" r.Events.rx_wall;
      List.iter
        (fun a -> Tel.add ("patrol.alarms." ^ alarm_kind_key a.kind) 1)
        r.Events.rx_alarms
    end;
    Log.debug (fun m ->
        m "patrol %s at t=%.1fs: %.2f ms wall, %d trap(s), %d alarm(s)"
          (if sweep then "sweep" else "reaction")
          now
          (r.Events.rx_wall *. 1e3)
          r.Events.rx_traps
          (List.length r.Events.rx_alarms));
    List.iter
      (fun a ->
        Log.warn (fun m ->
            m "patrol alarm at t=%.3fs: %s on %s (VMs %s)" a.at
              (alarm_kind_string a.kind) a.alarm_module
              (String.concat ","
                 (List.map (fun v -> string_of_int (v + 1)) a.alarm_vms))))
      r.Events.rx_alarms;
    clock := Float.max !clock (now +. r.Events.rx_wall)
  in
  let next_full = ref 0.0 in
  let fire_event te =
    Events.set_now session te;
    let rec fire () =
      match !pending with
      | (t, f) :: rest when t <= te ->
          f cloud;
          pending := rest;
          fire ()
      | _ -> ()
    in
    fire ();
    match Events.react session ~now:te with
    | None -> clock := Float.max !clock te
    | Some r -> absorb ~sweep:false ~now:te r
  in
  let full_sweep tf =
    Events.set_now session tf;
    let r = Events.baseline session ~now:tf in
    absorb ~sweep:true ~now:tf r;
    next_full := tf +. full_every
  in
  let rec loop () =
    let t_ev =
      match !pending with (t, _) :: _ when t <= until -> Some t | _ -> None
    in
    let t_full = if !next_full < until then Some !next_full else None in
    match (t_ev, t_full) with
    | None, None -> ()
    | Some te, Some tf when te < tf ->
        fire_event te;
        loop ()
    | _, Some tf ->
        full_sweep tf;
        loop ()
    | Some te, None ->
        fire_event te;
        loop ()
  in
  loop ();
  clock := Float.max !clock until;
  {
    alarms = List.rev !alarms;
    sweeps = !sweeps;
    reactions = !reactions;
    virtual_elapsed = !clock;
    cpu_spent = !cpu;
    mean_sweep_wall = Mc_util.Stats.mean !walls;
    sweep_cpus = List.rev !sweep_cpus;
    latencies_s = List.rev !latencies;
  }

let run_events ?(config = default_config) ?(events = []) ?full_every_s cloud
    ~until =
  let inc =
    match config.check.Orchestrator.Config.incremental with
    | Some inc -> inc
    | None -> Orchestrator.create_incremental ()
  in
  let with_mode f =
    if config.workers > 1 then
      Pool.with_pool config.workers (fun pool -> f (Orchestrator.Parallel pool))
    else f Orchestrator.Sequential
  in
  with_mode @@ fun mode ->
  (* Event-driven checking is incremental by construction: watches are
     armed from the digest caches' footprints, so those caches must be
     populated — and the Merkle prints carry the page→leaf index that
     makes the post-trap refresh O(dirty). *)
  let check =
    config.check
    |> Orchestrator.Config.with_mode mode
    |> Orchestrator.Config.with_incremental inc
    |> Orchestrator.Config.with_merkle true
  in
  let config = { config with incremental = true; check } in
  let survey ~high:_ module_name =
    let meter = Meter.create () in
    let s = Orchestrator.survey ~config:check ~meter cloud ~module_name in
    (module_name, s, meter)
  in
  let lists ~high:_ () =
    let m = Meter.create () in
    Some (Orchestrator.survey_module_lists ~config:check ~meter:m cloud, m)
  in
  let session = Events.create ~config ~inc ~survey ~lists cloud in
  run_events_driven ~config ~events ?full_every_s cloud ~until session

let to_json o =
  let open Mc_util.Json in
  Obj
    [
      ("sweeps", Int o.sweeps);
      ("reactions", Int o.reactions);
      ("virtual_elapsed_s", Float o.virtual_elapsed);
      ("cpu_spent_s", Float o.cpu_spent);
      ("mean_sweep_wall_s", Float o.mean_sweep_wall);
      ("sweep_cpus_s", List (List.map (fun c -> Float c) o.sweep_cpus));
      ("detection_latencies_s", List (List.map (fun l -> Float l) o.latencies_s));
      ( "alarms",
        List
          (List.map
             (fun a ->
               Obj
                 [
                   ("at_s", Float a.at);
                   ("kind", String (alarm_kind_string a.kind));
                   ("module", String a.alarm_module);
                   ("vms", List (List.map (fun v -> Int v) a.alarm_vms));
                 ])
             o.alarms) );
    ]

let time_to_detect outcome ~module_name ~infected_at =
  List.find_map
    (fun a ->
      (* Only integrity findings count as detection. A Quorum_loss (a
         degraded sweep) or List_discrepancy happening to name the same
         module is not evidence the infection was seen — counting one
         made a fault burst preceding the real detection look like an
         instant catch. *)
      match a.kind with
      | Hash_deviation | Missing_module | Anchor_mismatch ->
          (* Anchor mismatches count: catching the shim that hides an
             infection is catching the compromise. *)
          if a.alarm_module = module_name && a.at >= infected_at then
            Some (a.at -. infected_at)
          else None
      | List_discrepancy | Quorum_loss -> None)
    outcome.alarms
