(** Footprint-keyed memoization of per-VM introspection results.

    An entry stores a value computed from one VM's memory together with the
    exact set of (pfn, version) pairs that were read to compute it (the
    session's {!Mc_vmi.Vmi.footprint}) and the memory epoch it was read in.
    Because introspection reads are deterministic, the value is guaranteed
    unchanged while {!Mc_hypervisor.Xenctl.pages_unchanged} holds for that
    footprint — so a [probe] prices one hypercall plus a per-pfn bitmap
    scan instead of re-mapping, re-parsing, and re-hashing the module.

    The footprint covers {e everything} the session touched: the LDR list
    pages walked to find the module, the page-table pages used to
    translate, and the module pages themselves. A guest write to any of
    them (or a reboot, which changes the epoch) invalidates the entry.

    Probes and stores are mutex-guarded so parallel sweep workers can share
    one cache. Hit/miss totals land on the [digest_cache.hits] /
    [digest_cache.misses] telemetry counters. *)

type 'a t

val create : unit -> 'a t

val probe :
  ?meter:Mc_hypervisor.Meter.t ->
  'a t ->
  Mc_hypervisor.Dom.t ->
  vm:int ->
  key:string ->
  'a option
(** [probe t dom ~vm ~key] is the cached value if its footprint is still
    current, metering the staleness check. A stale entry is dropped — but
    only that exact entry: the staleness check runs outside the lock, and
    a value stored concurrently under the same key by another worker must
    not be evicted with it. *)

type 'a delta =
  | Fresh of 'a  (** Footprint current; the value stands. *)
  | Stale of {
      stale_value : 'a;
      stale_epoch : int;
      stale_footprint : (int * int) array;
      stale_dirty : int list;
          (** Footprint pfns whose write version moved, sorted by pfn. *)
    }
      (** Same epoch but some pages were written: the prior value plus
          exactly which pages changed, so the caller can refresh
          O(dirty) of it and re-{!store}. The entry itself is dropped. *)
  | Missing  (** No entry, or the epoch changed (nothing salvageable). *)

val probe_delta :
  ?meter:Mc_hypervisor.Meter.t ->
  'a t ->
  Mc_hypervisor.Dom.t ->
  vm:int ->
  key:string ->
  'a delta
(** [probe_delta t dom ~vm ~key] is {!probe} with culprit attribution via
    {!Mc_hypervisor.Xenctl.stale_pfns}: same price (one hypercall plus a
    per-pfn scan), but a stale-in-epoch entry comes back as [Stale] with
    the dirty pfn subset instead of a bare miss. [Fresh] counts as a
    telemetry hit, [Missing] as a miss, and [Stale] on the separate
    [digest_cache.stale_partial] counter. *)

val store :
  'a t ->
  vm:int ->
  key:string ->
  epoch:int ->
  footprint:(int * int) array ->
  'a ->
  unit
(** [store t ~vm ~key ~epoch ~footprint v] records [v] as valid while the
    footprint's pages stay at the given versions within [epoch]. *)

val peek : 'a t -> vm:int -> key:string -> epoch:int -> 'a option
(** [peek t ~vm ~key ~epoch] is the cached value when an entry exists and
    was recorded in [epoch], {e without} a staleness probe: Dom0-local
    bookkeeping (no guest access, unmetered, no telemetry hit/miss), the
    value as of its last store. It is how the attestation path reads the
    Merkle root a just-serviced request left behind — the root the
    verdict was actually computed from, which is exactly what the ledger
    must anchor. *)

val footprint_pfns : 'a t -> vm:int -> key:string -> epoch:int -> int list option
(** [footprint_pfns t ~vm ~key ~epoch] is the pfn set of the entry's
    footprint when one exists and was recorded in [epoch], else [None].
    Dom0-local bookkeeping (no guest access, unmetered): it is how the
    event-driven patrol learns {e which} frames to write-trap — the exact
    pages a future staleness probe would inspect. *)

val length : 'a t -> int
(** Number of live entries (for tests). *)

val tamper : 'a t -> (vm:int -> key:string -> 'a -> 'a option) -> int
(** [tamper t f] applies [f] to every cached value (with its (vm, key)
    identity), replacing those for which it returns [Some] while keeping
    their footprints valid, and returns how many entries changed.
    Test-only sabotage: it simulates a checker whose memoized results lie
    (e.g. one digest byte flipped), which the simulation harness's oracle
    must catch. Never used by production paths. *)
