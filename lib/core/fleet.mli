(** Deprecated alias for {!Pool_health}.

    "Fleet" now means the multi-host federation ({!Mc_federation}); the
    single-pool health assessment that used to live here is
    {!Pool_health}. This unit keeps old code compiling and will be
    removed.

    @deprecated Use {!Pool_health}. *)

[@@@ocaml.deprecated "Use Pool_health: Fleet now names the federation."]

include module type of struct
  include Pool_health
end
