(** Whole-pool health assessment: every module on every VM, in one
    report — the operator's dashboard view of the cloud.

    For each module name seen anywhere in the pool it runs a survey (so a
    module loaded on only some VMs is still checked among those), collects
    the deviant/missing sets, and aggregates a per-VM suspicion score. *)

type module_status = {
  ms_module : string;
  ms_present_on : int;  (** VMs where the module is loaded. *)
  ms_deviants : int list;
  ms_missing : int list;  (** Among VMs that *should* have it (see below). *)
  ms_consistent : bool;
}

type report = {
  fr_modules : module_status list;  (** Sorted by module name. *)
  fr_suspicion : (int * int) list;
      (** (VM index, number of findings implicating it), descending,
          suspicious VMs only. *)
  fr_clean : bool;  (** No deviants, no hidden modules anywhere. *)
}

val assess : ?config:Orchestrator.Config.t -> Mc_hypervisor.Cloud.t -> report
(** [assess cloud] surveys the union of all VMs' module lists. A module
    missing from a minority of VMs counts against those VMs (the
    DKOM-hiding signal); one missing from most VMs is treated as
    optionally-loaded and only surveyed among its holders. *)

val to_table : report -> string

val to_json : report -> Mc_util.Json.t

val summary : report -> string
(** One line: ["FLEET CLEAN (9 modules x 5 VMs)"] or
    ["FLEET SUSPICIOUS: Dom3 implicated by 2 finding(s)"]. *)
