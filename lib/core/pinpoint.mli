(** Patched-function pinpointing (the dAnubis idea from §II: "the
    difference in addresses helps in identifying the function that has
    been patched").

    When ModChecker flags a .text mismatch, this module maps the residual
    byte differences (after RVA adjustment) back to function names using a
    debug-symbol view of the module ([Mc_pe.Catalog.symbols] plays the
    PDB's role), so the operator learns {e which} function the rootkit
    touched, not just that the section changed. *)

type finding = {
  pf_function : string;  (** Name of the patched function. *)
  pf_fn_rva : int;  (** The function's RVA. *)
  pf_first_diff_rva : int;  (** RVA of the first differing byte inside it. *)
  pf_diff_bytes : int;  (** Differing bytes attributed to this function. *)
}

val diff_offsets : ?ranges:(int * int) list -> Bytes.t -> Bytes.t -> int list
(** [diff_offsets a b] is every byte position at which the buffers differ
    (positions beyond the shorter length count). Ascending. [?ranges]
    restricts the scan to the given (offset, length) spans — the Merkle
    descent's deviant pages ({!Checker.deviant_ranges}) — so localization
    touches O(deviant) bytes instead of the whole section. Spans may be
    given in any order; out-of-bounds parts are clamped. *)

val attribute :
  symbols:(string * int) list ->
  section_rva:int ->
  int list ->
  finding list
(** [attribute ~symbols ~section_rva offsets] groups section-relative diff
    offsets by the function containing them. [symbols] are
    (name, rva) pairs; they need not be sorted. Differences before the
    first symbol are attributed to a pseudo-function ["<headers/pad>"]. *)

val analyze_text_pair :
  ?ranges:(int * int) list ->
  base1:int ->
  Artifact.t list ->
  base2:int ->
  Artifact.t list ->
  symbols:(string * int) list ->
  (finding list, string) result
(** [analyze_text_pair ~base1 arts1 ~base2 arts2 ~symbols] RVA-adjusts the
    two .text artifacts against each other (Algorithm 2) and attributes
    what still differs. An empty list means the sections reconcile —
    i.e. nothing was patched. [?ranges] (from a Merkle descent) restricts
    the byte survey to the deviant pages; it is ignored on the
    size-mismatch path, where no tree shapes can agree. *)
