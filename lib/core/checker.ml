module Md5 = Mc_md5.Md5
module Merkle = Mc_md5.Merkle
module Meter = Mc_hypervisor.Meter
module Tel = Mc_telemetry.Registry

type artifact_verdict = {
  av_kind : Artifact.kind;
  av_match : bool;
  av_digest1 : string;
  av_digest2 : string;
  av_adjusted : int;
}

type pair_result = {
  verdicts : artifact_verdict list;
  all_match : bool;
  total_adjusted : int;
}

let bump meter f = match meter with Some m -> f m | None -> ()

let hash_bytes ?meter data =
  bump meter (fun m -> Meter.add_bytes_hashed m (Bytes.length data));
  Md5.to_hex (Md5.digest_bytes data)

let hash_artifact ?meter (a : Artifact.t) = hash_bytes ?meter a.data

(* --- Merkle fingerprints ---------------------------------------------- *)

let merkle_of_leaves ?meter ~length leaves =
  let t, interior = Merkle.of_leaves ~length leaves in
  bump meter (fun m -> Meter.add_merkle_nodes m interior);
  t

(* Below this, the fan-out overhead beats the hashing it saves. *)
let parallel_leaf_threshold = 16 * Merkle.default_page_size

let merkle_of_bytes ?meter ?pool data =
  let length = Bytes.length data in
  bump meter (fun m -> Meter.add_bytes_hashed m length);
  let leaves =
    match pool with
    | Some p when length >= parallel_leaf_threshold ->
        let bounds =
          Array.to_list (Merkle.leaf_bounds ~page:Merkle.default_page_size length)
        in
        Array.of_list
          (Mc_parallel.Pool.parallel_map p
             (fun (off, len) -> Md5.digest_sub data off len)
             bounds)
    | _ -> Merkle.leaf_digests data
  in
  merkle_of_leaves ?meter ~length leaves

let merkle_rehash ?meter t data ~dirty =
  let dirty = List.sort_uniq compare dirty in
  bump meter (fun m ->
      let bytes =
        List.fold_left
          (fun n i ->
            n + min (Merkle.page_size t) (Merkle.length t - (i * Merkle.page_size t)))
          0 dirty
      in
      Meter.add_bytes_hashed m bytes);
  let t', interior = Merkle.rehash t data ~dirty in
  bump meter (fun m -> Meter.add_merkle_nodes m interior);
  t'

let deviant_ranges ?meter t1 t2 =
  let leaves, compared = Merkle.diverging_leaves t1 t2 in
  bump meter (fun m -> Meter.add_merkle_nodes m compared);
  Tel.add "merkle.descents" 1;
  let bounds = Merkle.leaf_bounds ~page:(Merkle.page_size t1) (Merkle.length t1) in
  List.map (fun i -> bounds.(i)) leaves

let compare_one ?meter ~base1 ~base2 (a1 : Artifact.t) (a2 : Artifact.t) =
  if
    Artifact.is_section_data a1
    && Bytes.length a1.data = Bytes.length a2.data
  then begin
    (* Work on copies: adjustment must not corrupt the cached artifacts
       used by the other pairwise comparisons. *)
    let d1 = Bytes.copy a1.data and d2 = Bytes.copy a2.data in
    bump meter (fun m ->
        Meter.add_bytes_scanned m (Bytes.length d1 + Bytes.length d2));
    let stats = Rva.adjust_pair ~base1 ~base2 d1 d2 in
    let h1 = hash_bytes ?meter d1 and h2 = hash_bytes ?meter d2 in
    {
      av_kind = a1.kind;
      av_match = String.equal h1 h2;
      av_digest1 = h1;
      av_digest2 = h2;
      av_adjusted = stats.Rva.adjusted;
    }
  end
  else begin
    let h1 = hash_bytes ?meter a1.data and h2 = hash_bytes ?meter a2.data in
    {
      av_kind = a1.kind;
      av_match = String.equal h1 h2;
      av_digest1 = h1;
      av_digest2 = h2;
      av_adjusted = 0;
    }
  end

let missing kind digest_side =
  {
    av_kind = kind;
    av_match = false;
    av_digest1 = (if digest_side = `First then "-" else "(absent)");
    av_digest2 = (if digest_side = `First then "(absent)" else "-");
    av_adjusted = 0;
  }

let compare_pair ?meter ~base1 arts1 ~base2 arts2 =
  let verdicts =
    List.map
      (fun (a1 : Artifact.t) ->
        match Artifact.find arts2 a1.kind with
        | Some a2 -> compare_one ?meter ~base1 ~base2 a1 a2
        | None -> missing a1.kind `First)
      arts1
    @ List.filter_map
        (fun (a2 : Artifact.t) ->
          match Artifact.find arts1 a2.kind with
          | Some _ -> None
          | None -> Some (missing a2.kind `Second))
        arts2
  in
  {
    verdicts;
    all_match = List.for_all (fun v -> v.av_match) verdicts;
    total_adjusted = List.fold_left (fun n v -> n + v.av_adjusted) 0 verdicts;
  }
