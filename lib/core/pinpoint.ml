type finding = {
  pf_function : string;
  pf_fn_rva : int;
  pf_first_diff_rva : int;
  pf_diff_bytes : int;
}

let diff_offsets ?ranges a b =
  let la = Bytes.length a and lb = Bytes.length b in
  let n = max la lb in
  let scan_span (off, len) acc =
    let hi = min n (off + len) in
    let rec scan i acc =
      if i >= hi then acc
      else
        let differs = i >= la || i >= lb || Bytes.get a i <> Bytes.get b i in
        scan (i + 1) (if differs then i :: acc else acc)
    in
    scan (max 0 off) acc
  in
  let spans =
    match ranges with
    | None -> [ (0, n) ]
    | Some rs -> List.sort compare rs
  in
  List.rev (List.fold_left (fun acc span -> scan_span span acc) [] spans)

let attribute ~symbols ~section_rva offsets =
  let sorted =
    List.sort (fun (_, a) (_, b) -> compare a b) symbols
  in
  let containing rva =
    List.fold_left
      (fun acc (name, fn_rva) -> if fn_rva <= rva then Some (name, fn_rva) else acc)
      None sorted
  in
  let table = Hashtbl.create 8 in
  let order = ref [] in
  List.iter
    (fun off ->
      let rva = section_rva + off in
      let name, fn_rva =
        match containing rva with
        | Some x -> x
        | None -> ("<headers/pad>", section_rva)
      in
      match Hashtbl.find_opt table name with
      | Some f ->
          Hashtbl.replace table name { f with pf_diff_bytes = f.pf_diff_bytes + 1 }
      | None ->
          Hashtbl.replace table name
            {
              pf_function = name;
              pf_fn_rva = fn_rva;
              pf_first_diff_rva = rva;
              pf_diff_bytes = 1;
            };
          order := name :: !order)
    offsets;
  List.rev_map (Hashtbl.find table) !order

let analyze_text_pair ?ranges ~base1 arts1 ~base2 arts2 ~symbols =
  let text arts =
    Artifact.find arts (Artifact.Section_data ".text")
  in
  match (text arts1, text arts2) with
  | None, _ | _, None -> Error "no .text artifact to analyze"
  | Some t1, Some t2 ->
      if Bytes.length t1.Artifact.data <> Bytes.length t2.Artifact.data then
        (* A resize (e.g. DLL injection) patches "everything after the
           growth point"; attribute the raw diffs without adjustment.
           Tree-derived ranges cannot exist here (the trees would differ
           in shape), so the survey is unrestricted. *)
        Ok
          (attribute ~symbols ~section_rva:t1.Artifact.sec_rva
             (diff_offsets t1.Artifact.data t2.Artifact.data))
      else begin
        let d1 = Bytes.copy t1.Artifact.data in
        let d2 = Bytes.copy t2.Artifact.data in
        ignore (Rva.adjust_pair ~base1 ~base2 d1 d2);
        Ok
          (attribute ~symbols ~section_rva:t1.Artifact.sec_rva
             (diff_offsets ?ranges d1 d2))
      end
