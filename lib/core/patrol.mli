(** The patrol service: ModChecker as a continuously running cloud
    monitor.

    The paper positions ModChecker as an "initial light-weight consistency
    check" that triggers deeper analysis. This module operationalizes
    that: it sweeps a set of modules across the pool on the simulated
    cloud clock, raising alarms for hash deviations, missing modules, and
    module-list discrepancies, and accounting both the CPU it burned and
    the wall time each sweep cost under the current guest load. The
    interval/time-to-detect trade-off it exposes is measured by the bench
    harness. *)

type alarm_kind =
  | Hash_deviation  (** A VM's copy fails the majority vote. *)
  | Missing_module  (** A watched module is absent from a VM. *)
  | List_discrepancy  (** Module-list comparison found a hidden module. *)
  | Quorum_loss
      (** Too few VMs answered the sweep for its vote to mean anything
          (or the list walk lost VMs to faults). An availability alarm,
          deliberately distinct from every integrity alarm: a sweep that
          degrades raises this and {e only} this for the affected module,
          so fault bursts can never masquerade as infections. *)

type alarm = {
  at : float;  (** Virtual time the sweep that saw it completed. *)
  alarm_module : string;
  alarm_vms : int list;
  kind : alarm_kind;
}

type config = {
  watch : string list;  (** Modules checked each sweep. *)
  interval_s : float;  (** Idle time between sweep starts (minimum). *)
  costs : Mc_hypervisor.Costs.t;
  workers : int;  (** Dom0 vCPUs driving the sweep. *)
  compare_lists : bool;  (** Also run the DKOM list comparison. *)
  strategy : Orchestrator.survey_strategy;
  incremental : bool;
      (** Keep log-dirty tracking armed on every guest and memoize per-VM
          fingerprints across sweeps: a steady-state sweep prices as
          staleness probes plus re-checks of only the VMs whose relevant
          pages were written. Detection verdicts are unchanged. *)
  quorum : float;
      (** Minimum responding fraction of the pool for a sweep's verdicts
          to count; below it the sweep raises [Quorum_loss]. *)
  deadline_s : float option;
      (** Per-survey task deadline (only enforced with [workers > 1],
          where a hung introspection task can be abandoned). *)
}

val default_config : config
(** Watches the standard catalog, 30 s interval, one worker, pairwise,
    non-incremental, quorum {!Report.default_quorum}, no deadline. *)

type outcome = {
  alarms : alarm list;  (** In raising order; duplicates across sweeps kept. *)
  sweeps : int;
  virtual_elapsed : float;  (** Clock at the end of the run. *)
  cpu_spent : float;  (** Dom0 CPU-seconds consumed by checking. *)
  mean_sweep_wall : float;
  sweep_cpus : float list;
      (** Per-sweep CPU-seconds, in sweep order — the first/steady-state
          split the incremental experiments read. *)
}

val run :
  ?config:config ->
  ?events:(float * (Mc_hypervisor.Cloud.t -> unit)) list ->
  Mc_hypervisor.Cloud.t ->
  until:float ->
  outcome
(** [run cloud ~until] patrols from virtual time 0 until the clock passes
    [until]. Each sweep surveys every watched module, advancing the clock
    by the scheduler-priced wall time of the metered work, then sleeps to
    the next interval boundary. [events] are timed cloud mutations (e.g.
    staging an infection at t=70 s); each fires once, just before the
    first sweep that starts at or after its time. *)

val time_to_detect :
  outcome -> module_name:string -> infected_at:float -> float option
(** [time_to_detect outcome ~module_name ~infected_at] is the delay from
    infection to the first alarm naming the module at or after that time;
    [None] when no such alarm fired. *)

val alarm_kind_string : alarm_kind -> string

val to_json : outcome -> Mc_util.Json.t
