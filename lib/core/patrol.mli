(** The patrol service: ModChecker as a continuously running cloud
    monitor.

    The paper positions ModChecker as an "initial light-weight consistency
    check" that triggers deeper analysis. This module operationalizes
    that: it sweeps a set of modules across the pool on the simulated
    cloud clock, raising alarms for hash deviations, missing modules, and
    module-list discrepancies, and accounting both the CPU it burned and
    the wall time each sweep cost under the current guest load. The
    interval/time-to-detect trade-off it exposes is measured by the bench
    harness.

    The sweep loop is separable from the checking work: {!run} performs
    the surveys itself, while {!run_driven} accepts a {!driver} that
    produces each sweep's results — that is how [Mc_engine] turns patrol
    sweeps into just another request class on its shared queue. *)

type alarm_kind =
  | Hash_deviation  (** A VM's copy fails the majority vote. *)
  | Missing_module  (** A watched module is absent from a VM. *)
  | List_discrepancy  (** Module-list comparison found a hidden module. *)
  | Quorum_loss
      (** Too few VMs answered the sweep for its vote to mean anything
          (or the list walk lost VMs to faults). An availability alarm,
          deliberately distinct from every integrity alarm: a sweep that
          degrades raises this and {e only} this for the affected module,
          so fault bursts can never masquerade as infections. *)

type alarm = {
  at : float;  (** Virtual time the sweep that saw it completed. *)
  alarm_module : string;
  alarm_vms : int list;
  kind : alarm_kind;
}

type config = {
  watch : string list;  (** Modules checked each sweep. *)
  interval_s : float;  (** Idle time between sweep starts (minimum). *)
  costs : Mc_hypervisor.Costs.t;
  workers : int;  (** Dom0 vCPUs driving the sweep. *)
  compare_lists : bool;  (** Also run the DKOM list comparison. *)
  incremental : bool;
      (** Keep log-dirty tracking armed on every guest and memoize per-VM
          fingerprints across sweeps: a steady-state sweep prices as
          staleness probes plus re-checks of only the VMs whose relevant
          pages were written. Detection verdicts are unchanged. *)
  check : Orchestrator.Config.t;
      (** How each survey runs: strategy, quorum, deadline. The [mode]
          and [incremental] fields are overridden by the patrol itself
          (from [workers] and [incremental] above) for the default
          {!run} driver. *)
}

val default_config : config
(** Watches the standard catalog, 30 s interval, one worker, list
    comparison on, non-incremental, {!Orchestrator.Config.default}
    checking. *)

type outcome = {
  alarms : alarm list;  (** In raising order; duplicates across sweeps kept. *)
  sweeps : int;
  virtual_elapsed : float;  (** Clock at the end of the run. *)
  cpu_spent : float;  (** Dom0 CPU-seconds consumed by checking. *)
  mean_sweep_wall : float;
  sweep_cpus : float list;
      (** Per-sweep CPU-seconds, in sweep order — the first/steady-state
          split the incremental experiments read. *)
}

type sweep_work = {
  sw_surveys : (string * Report.survey * Mc_hypervisor.Meter.t) list;
      (** One entry per watched module: its survey and the meter that
          priced it (each meter is one schedulable job). *)
  sw_lists : (Orchestrator.list_comparison * Mc_hypervisor.Meter.t) option;
      (** The DKOM list comparison, when the sweep ran one. *)
  sw_overhead : Mc_hypervisor.Meter.t option;
      (** Maintenance work outside any survey (e.g. log-dirty arm and
          dirty-bitmap drain), priced into the sweep like a job. *)
}
(** Everything one sweep observed and what it cost — the interface
    between the sweep loop and whoever performs the checking. *)

type driver = unit -> sweep_work
(** Called once per sweep, on the sweep loop's domain; performs (or
    delegates) the sweep's checking work. *)

val run_driven :
  ?config:config ->
  ?events:(float * (Mc_hypervisor.Cloud.t -> unit)) list ->
  Mc_hypervisor.Cloud.t ->
  until:float ->
  driver ->
  outcome
(** [run_driven cloud ~until driver] is the sweep loop alone: it fires
    timed events, calls [driver] once per sweep, derives alarms from the
    returned work (degraded surveys raise [Quorum_loss] and nothing
    else), prices the meters into virtual wall time via the scheduler
    model, and sleeps to the next interval boundary. *)

val run :
  ?config:config ->
  ?events:(float * (Mc_hypervisor.Cloud.t -> unit)) list ->
  Mc_hypervisor.Cloud.t ->
  until:float ->
  outcome
(** [run cloud ~until] patrols from virtual time 0 until the clock passes
    [until], surveying in-process: {!run_driven} with the default driver
    (per-module {!Orchestrator.survey} under [config.check], with a
    worker pool when [workers > 1] and shared incremental state when
    [incremental]). [events] are timed cloud mutations (e.g. staging an
    infection at t=70 s); each fires once, just before the first sweep
    that starts at or after its time. *)

val time_to_detect :
  outcome -> module_name:string -> infected_at:float -> float option
(** [time_to_detect outcome ~module_name ~infected_at] is the delay from
    infection to the first alarm naming the module at or after that time;
    [None] when no such alarm fired. *)

val alarm_kind_string : alarm_kind -> string
(** Human-readable label, e.g. ["missing module"]. *)

val alarm_kind_key : alarm_kind -> string
(** Stable machine key, e.g. ["missing_module"] — used in JSON exports
    and by tooling that matches alarms structurally. *)

val to_json : outcome -> Mc_util.Json.t
