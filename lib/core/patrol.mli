(** The patrol service: ModChecker as a continuously running cloud
    monitor.

    The paper positions ModChecker as an "initial light-weight consistency
    check" that triggers deeper analysis. This module operationalizes
    that: it sweeps a set of modules across the pool on the simulated
    cloud clock, raising alarms for hash deviations, missing modules, and
    module-list discrepancies, and accounting both the CPU it burned and
    the wall time each sweep cost under the current guest load. The
    interval/time-to-detect trade-off it exposes is measured by the bench
    harness.

    The sweep loop is separable from the checking work: {!run} performs
    the surveys itself, while {!run_driven} accepts a {!driver} that
    produces each sweep's results — that is how [Mc_engine] turns patrol
    sweeps into just another request class on its shared queue. *)

type alarm_kind =
  | Hash_deviation  (** A VM's copy fails the majority vote. *)
  | Missing_module  (** A watched module is absent from a VM. *)
  | List_discrepancy  (** Module-list comparison found a hidden module. *)
  | Quorum_loss
      (** Too few VMs answered the sweep for its vote to mean anything
          (or the list walk lost VMs to faults). An availability alarm,
          deliberately distinct from every integrity alarm: a sweep that
          degrades raises this and {e only} this for the affected module,
          so fault bursts can never masquerade as infections. *)
  | Anchor_mismatch
      (** The two Dom0 read channels disagree over a cached watch
          footprint page: the foreign mapping (which an in-guest,
          SEVurity-style adversary can interpose on) returned different
          bytes than the hypervisor's own physical read path. Evidence
          the {e checker's view} is being tampered with — raised only by
          sweeps run with [audit_anchors]. *)

type alarm = {
  at : float;  (** Virtual time the sweep that saw it completed. *)
  alarm_module : string;
  alarm_vms : int list;
  kind : alarm_kind;
}

type config = {
  watch : string list;  (** Modules checked each sweep. *)
  interval_s : float;  (** Idle time between sweep starts (minimum). *)
  costs : Mc_hypervisor.Costs.t;
  workers : int;  (** Dom0 vCPUs driving the sweep. *)
  compare_lists : bool;  (** Also run the DKOM list comparison. *)
  incremental : bool;
      (** Keep log-dirty tracking armed on every guest and memoize per-VM
          fingerprints across sweeps: a steady-state sweep prices as
          staleness probes plus re-checks of only the VMs whose relevant
          pages were written. Detection verdicts are unchanged. *)
  audit_anchors : bool;
      (** Each sweep additionally cross-checks the foreign-mapping read
          channel against the hypervisor's physical read path over every
          cached watch footprint page, raising [Anchor_mismatch] on any
          disagreement ({!Orchestrator.audit_anchors}). Requires
          [incremental] (the footprints live in its caches); without it
          the audit has nothing to vouch for and is skipped. *)
  check : Orchestrator.Config.t;
      (** How each survey runs: strategy, quorum, deadline. The [mode]
          and [incremental] fields are overridden by the patrol itself
          (from [workers] and [incremental] above) for the default
          {!run} driver. *)
}

val default_config : config
(** Watches the standard catalog, 30 s interval, one worker, list
    comparison on, non-incremental, {!Orchestrator.Config.default}
    checking. *)

type outcome = {
  alarms : alarm list;  (** In raising order; duplicates across sweeps kept. *)
  sweeps : int;  (** Full sweeps (every sweep, for the polling runners). *)
  reactions : int;
      (** Trap-triggered targeted checks ({!run_events} runners only;
          0 for the polling runners). *)
  virtual_elapsed : float;  (** Clock at the end of the run. *)
  cpu_spent : float;  (** Dom0 CPU-seconds consumed by checking. *)
  mean_sweep_wall : float;  (** Over sweeps and reactions alike. *)
  sweep_cpus : float list;
      (** Per-full-sweep CPU-seconds, in sweep order — the
          first/steady-state split the incremental experiments read.
          Reaction costs are in [cpu_spent] but not listed here. *)
  latencies_s : float list;
      (** Trap-to-alarm detection latencies, one per integrity alarm
          whose trap time is known, in raising order (event-driven
          runners only). *)
}

type sweep_work = {
  sw_surveys : (string * Report.survey * Mc_hypervisor.Meter.t) list;
      (** One entry per watched module: its survey and the meter that
          priced it (each meter is one schedulable job). *)
  sw_lists : (Orchestrator.list_comparison * Mc_hypervisor.Meter.t) option;
      (** The DKOM list comparison, when the sweep ran one. *)
  sw_anchors : (string * int) list;
      (** Sorted [(module, vm)] pairs where the read-channel audit found
          the foreign mapping lying about a footprint page ([[]] when
          the audit did not run or found nothing); each becomes an
          [Anchor_mismatch] alarm. *)
  sw_overhead : Mc_hypervisor.Meter.t option;
      (** Maintenance work outside any survey (e.g. log-dirty arm and
          dirty-bitmap drain), priced into the sweep like a job. *)
}
(** Everything one sweep observed and what it cost — the interface
    between the sweep loop and whoever performs the checking. *)

type driver = unit -> sweep_work
(** Called once per sweep, on the sweep loop's domain; performs (or
    delegates) the sweep's checking work. *)

val alarms_of_work : config -> sweep_work -> alarm list
(** Turn one batch of checking results into alarms (with [at = 0.0]; the
    runner stamps the time). A degraded survey raises [Quorum_loss] and
    nothing else; list discrepancies naming a watched module are folded
    into its [Missing_module] alarm. Exposed so external drivers (the
    engine, the simulation harness) derive alarms exactly as the patrol
    loop does. *)

(** Event-driven checking: a long-lived session that keeps every page
    backing the watched modules (their section footprints, their LDR
    entries, and the [PsLoadedModuleList] walk) under hypervisor write
    traps, and on each trap re-checks {e only the affected watch
    sources}, immediately. The page sets come straight from the digest
    caches' footprints — the same pages a staleness probe would inspect
    — so arming requires a populated cache: {!Events.baseline} runs one
    full sweep and arms from its footprints. *)
module Events : sig
  type session

  type reaction = {
    rx_work : sweep_work;  (** What was checked and what it metered. *)
    rx_alarms : alarm list;  (** Stamped with the reaction's finish time. *)
    rx_wall : float;  (** Virtual wall time of the batch. *)
    rx_cpu : float;  (** Dom0 CPU-seconds of the batch. *)
    rx_traps : int;  (** Write-trap events drained pool-wide. *)
    rx_latencies : float list;
        (** Guest-write-to-alarm latency of each integrity alarm whose
            triggering trap is known; also fed to the
            [patrol.detection_latency_s] telemetry histogram. *)
  }

  val create :
    ?config:config ->
    inc:Orchestrator.incremental ->
    survey:(high:bool -> string -> string * Report.survey * Mc_hypervisor.Meter.t) ->
    lists:
      (high:bool ->
      unit ->
      (Orchestrator.list_comparison * Mc_hypervisor.Meter.t) option) ->
    Mc_hypervisor.Cloud.t ->
    session
  (** [create ~inc ~survey ~lists cloud] builds a session around the
      caller's checking closures — in-process orchestrator calls for
      {!run_events}, queue submissions for the engine. [survey ~high m]
      surveys module [m] pool-wide (with [high] hinting at queue
      priority: [true] for trap reactions, [false] for safety sweeps)
      and must run under a config sharing [inc], so its footprints land
      where the session arms from. [lists] likewise runs the DKOM list
      comparison; it is only invoked when [config.compare_lists]. *)

  val set_now : session -> float -> unit
  (** Advance every domain's trap clock to the session's virtual [now] —
      call before mutating the cloud at a virtual time, so the traps
      those writes raise are stamped correctly. *)

  val baseline : session -> now:float -> reaction
  (** Full sweep of every watch source regardless of traps (draining and
      attributing any pending ones), then (re-)arm every VM from the
      fresh footprints. Both the initial arming step and the periodic
      safety net. *)

  val react : session -> now:float -> reaction option
  (** Drain trap events pool-wide and re-check only the watch sources
      whose pages were written (a VM whose memory epoch changed —
      reboot/restore, which silently voids its watches — counts as a
      trap on everything it watched). [None] when nothing fired: an
      idle pool costs nothing, not even a hypercall. Affected VMs are
      re-armed afterwards. *)
end

val run_events_driven :
  ?config:config ->
  ?events:(float * (Mc_hypervisor.Cloud.t -> unit)) list ->
  ?full_every_s:float ->
  Mc_hypervisor.Cloud.t ->
  until:float ->
  Events.session ->
  outcome
(** [run_events_driven cloud ~until session] is the event-driven
    counterpart of {!run_driven}: a baseline sweep at t=0 arms the
    watches, then the loop processes timed [events] in order — each
    followed immediately by {!Events.react}, so detection happens at the
    event's time plus the targeted re-check's wall time, not at the next
    interval boundary — with an {!Events.baseline} safety sweep every
    [full_every_s] (default [20 × config.interval_s]) as a net under
    anything write traps cannot see. Events with [t > until] do not
    fire. *)

val run_events :
  ?config:config ->
  ?events:(float * (Mc_hypervisor.Cloud.t -> unit)) list ->
  ?full_every_s:float ->
  Mc_hypervisor.Cloud.t ->
  until:float ->
  outcome
(** [run_events cloud ~until] is {!run_events_driven} with in-process
    checking closures: surveys run under [config.check] forced
    incremental + Merkle (shared caches are what watches are armed
    from), with a worker pool when [config.workers > 1]. This is the
    CLI's [patrol --event-driven]. *)

val run_driven :
  ?config:config ->
  ?events:(float * (Mc_hypervisor.Cloud.t -> unit)) list ->
  Mc_hypervisor.Cloud.t ->
  until:float ->
  driver ->
  outcome
(** [run_driven cloud ~until driver] is the sweep loop alone: it fires
    timed events, calls [driver] once per sweep, derives alarms from the
    returned work (degraded surveys raise [Quorum_loss] and nothing
    else), prices the meters into virtual wall time via the scheduler
    model, and sleeps to the next interval boundary. *)

val run :
  ?config:config ->
  ?events:(float * (Mc_hypervisor.Cloud.t -> unit)) list ->
  Mc_hypervisor.Cloud.t ->
  until:float ->
  outcome
(** [run cloud ~until] patrols from virtual time 0 until the clock passes
    [until], surveying in-process: {!run_driven} with the default driver
    (per-module {!Orchestrator.survey} under [config.check], with a
    worker pool when [workers > 1] and shared incremental state when
    [incremental]). [events] are timed cloud mutations (e.g. staging an
    infection at t=70 s); each fires once, just before the first sweep
    that starts at or after its time. *)

val time_to_detect :
  outcome -> module_name:string -> infected_at:float -> float option
(** [time_to_detect outcome ~module_name ~infected_at] is the delay from
    infection to the first {e integrity} alarm ([Hash_deviation],
    [Missing_module], or [Anchor_mismatch]) naming the module at or
    after that time; [None] when no such alarm fired. Availability
    ([Quorum_loss]) and list-comparison alarms never count — a degraded
    sweep naming the module is not a detection. *)

val alarm_kind_string : alarm_kind -> string
(** Human-readable label, e.g. ["missing module"]. *)

val alarm_kind_key : alarm_kind -> string
(** Stable machine key, e.g. ["missing_module"] — used in JSON exports
    and by tooling that matches alarms structurally. *)

val to_json : outcome -> Mc_util.Json.t
