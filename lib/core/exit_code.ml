type t = int

let ok = 0

let error = 1

let infected = 2

let degraded = 3

let of_verdict = function
  | Report.Intact -> ok
  | Report.Infected -> infected
  | Report.Degraded _ -> degraded

let of_survey (s : Report.survey) =
  match s.Report.s_verdict with
  | Report.Degraded _ -> degraded
  | Report.Intact | Report.Infected ->
      if s.Report.deviant_vms <> [] || s.Report.missing_on <> [] then infected
      else ok

let of_lists (lc : Orchestrator.list_comparison) =
  if lc.Orchestrator.lc_unreachable <> [] then degraded
  else if lc.Orchestrator.lc_discrepancies <> [] then infected
  else ok

(* Severity, not numeric, order: an undecidable batch (error, degraded)
   must outrank a decided-bad one. *)
let severity = function
  | 1 -> 3  (* error *)
  | 3 -> 2  (* degraded *)
  | 2 -> 1  (* infected *)
  | _ -> 0  (* ok *)

let combine a b = if severity a >= severity b then a else b

let combine_all = List.fold_left combine ok

let exit_with c = if c <> ok then exit c
