(** The one place CLI exit codes are defined.

    Every subcommand (and the engine's [serve] batch mode) maps its result
    through this module instead of scattering integer literals:

    - [ok] (0): everything checked is intact.
    - [error] (1): usage or runtime error — nothing was decided.
    - [infected] (2): a quorum-backed integrity verdict failed somewhere.
    - [degraded] (3): some verdict lost quorum — an availability signal,
      deliberately distinct from an integrity one.

    [combine] merges per-request codes into a batch verdict with severity
    [error > degraded > infected > ok]: a batch that could not be decided
    must not pass for a decided one. *)

type t = int

val ok : t
(** 0 — intact. *)

val error : t
(** 1 — usage/runtime error. *)

val infected : t
(** 2 — integrity verdict failed. *)

val degraded : t
(** 3 — quorum lost; the verdict means nothing either way. *)

val of_verdict : Report.verdict -> t
(** [Intact] → {!ok}, [Infected] → {!infected}, [Degraded] →
    {!degraded}. *)

val of_survey : Report.survey -> t
(** A survey's exit: {!degraded} below quorum, else {!infected} when any
    VM deviates or misses the module, else {!ok}. *)

val of_lists : Orchestrator.list_comparison -> t
(** A module-list comparison's exit: {!degraded} when any VM's walk
    failed, else {!infected} when any module is non-uniform, else
    {!ok}. *)

val combine : t -> t -> t
(** Merge two codes by severity ([error] > [degraded] > [infected] >
    [ok]). *)

val combine_all : t list -> t
(** Fold of {!combine} over a batch; [ok] for the empty batch. *)

val exit_with : t -> unit
(** [exit_with c] exits the process with [c] when it is not {!ok}, and
    returns for {!ok} so the subcommand falls through to the normal
    success path. Subcommands call it last, making the process exit
    status the verdict. *)
