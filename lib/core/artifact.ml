type kind =
  | Dos_header
  | Nt_header
  | File_header
  | Optional_header
  | Section_header of string
  | Section_data of string

type t = { kind : kind; data : Bytes.t; sec_rva : int }

let kind_name = function
  | Dos_header -> "IMAGE_DOS_HEADER"
  | Nt_header -> "IMAGE_NT_HEADER"
  | File_header -> "IMAGE_FILE_HEADER"
  | Optional_header -> "IMAGE_OPTIONAL_HEADER"
  | Section_header name -> Printf.sprintf "SECTION_HEADER(%s)" name
  | Section_data name -> name

(* Inverse of [kind_name], for parsing machine-readable reports. Every
   name [kind_name] can emit maps back; anything else is a section name
   (the open case in [kind_name]). *)
let kind_of_name = function
  | "IMAGE_DOS_HEADER" -> Dos_header
  | "IMAGE_NT_HEADER" -> Nt_header
  | "IMAGE_FILE_HEADER" -> File_header
  | "IMAGE_OPTIONAL_HEADER" -> Optional_header
  | s ->
      let prefix = "SECTION_HEADER(" in
      let plen = String.length prefix in
      if
        String.length s > plen + 1
        && String.sub s 0 plen = prefix
        && s.[String.length s - 1] = ')'
      then Section_header (String.sub s plen (String.length s - plen - 1))
      else Section_data s

let equal_kind a b =
  match (a, b) with
  | Dos_header, Dos_header
  | Nt_header, Nt_header
  | File_header, File_header
  | Optional_header, Optional_header ->
      true
  | Section_header x, Section_header y | Section_data x, Section_data y ->
      String.equal x y
  | ( ( Dos_header | Nt_header | File_header | Optional_header
      | Section_header _ | Section_data _ ),
      _ ) ->
      false

let is_section_data t =
  match t.kind with Section_data _ -> true | _ -> false

let find artifacts kind =
  List.find_opt (fun a -> equal_kind a.kind kind) artifacts
