type comparison = { other_vm : int; result : Checker.pair_result }

type verdict = Intact | Infected | Degraded of string

let verdict_key = function
  | Intact -> "intact"
  | Infected -> "infected"
  | Degraded _ -> "degraded"

let default_quorum = 0.5

(* Quorum floor: a verdict is only trustworthy when at least
   [quorum * surveyed] of the VMs we asked actually answered. Unreachable
   VMs are excluded from the vote entirely (a fault is not a mismatch);
   too many of them and the verdict degrades rather than pretending the
   shrunken majority still speaks for the pool. *)
let quorum_met ~quorum ~surveyed ~responded =
  responded > 0
  && float_of_int responded >= quorum *. float_of_int surveyed

type module_report = {
  module_name : string;
  target_vm : int;
  comparisons : comparison list;
  matches : int;
  total : int;
  majority_ok : bool;
  flagged_artifacts : Artifact.kind list;
  unreachable : (int * string) list;
  surveyed : int;
  responded : int;
  voted : int;
  verdict : verdict;
}

type survey = {
  survey_module : string;
  vm_indices : int list;
  missing_on : int list;
  deviant_vms : int list;
  agreement_classes : int list list;
  pairwise_matches : ((int * int) * bool) list;
  unreachable_on : (int * string) list;
  s_surveyed : int;
  s_responded : int;
  s_voted : int;
  s_verdict : verdict;
}

let make ~module_name ~target_vm ?(unreachable = []) ?surveyed
    ?(quorum = default_quorum) comparisons =
  let total = List.length comparisons in
  let surveyed =
    match surveyed with
    | Some s -> s
    | None -> total + List.length unreachable
  in
  let responded = surveyed - List.length unreachable in
  let matches =
    List.length
      (List.filter (fun c -> c.result.Checker.all_match) comparisons)
  in
  (* An artifact is the *target's* problem when it disagrees with a strict
     majority of the pool; a single disagreeing peer indicts the peer. *)
  let kinds =
    match comparisons with
    | [] -> []
    | c :: _ -> List.map (fun v -> v.Checker.av_kind) c.result.Checker.verdicts
  in
  let mismatch_count kind =
    List.length
      (List.filter
         (fun c ->
           List.exists
             (fun v ->
               Artifact.equal_kind v.Checker.av_kind kind
               && not v.Checker.av_match)
             c.result.Checker.verdicts)
         comparisons)
  in
  let flagged_artifacts =
    List.filter (fun kind -> 2 * mismatch_count kind > total) kinds
  in
  let majority_ok = 2 * matches > total in
  let verdict =
    if not (quorum_met ~quorum ~surveyed ~responded) then
      Degraded
        (Printf.sprintf "%d/%d comparison VM(s) responded (quorum %g)"
           responded surveyed quorum)
    else if majority_ok then Intact
    else Infected
  in
  {
    module_name;
    target_vm;
    comparisons;
    matches;
    total;
    majority_ok;
    flagged_artifacts;
    unreachable;
    surveyed;
    responded;
    voted = total;
    verdict;
  }

let verdict_string r =
  match r.verdict with
  | Intact -> Printf.sprintf "INTACT (%d/%d)" r.matches r.total
  | Infected ->
      Printf.sprintf "SUSPICIOUS (%d/%d): %s" r.matches r.total
        (String.concat ", " (List.map Artifact.kind_name r.flagged_artifacts))
  | Degraded reason ->
      Printf.sprintf "DEGRADED (%d/%d): %s" r.matches r.total reason

let to_table r =
  let kinds =
    match r.comparisons with
    | [] -> []
    | c :: _ -> List.map (fun v -> v.Checker.av_kind) c.result.Checker.verdicts
  in
  let header =
    "artifact"
    :: List.map (fun c -> Printf.sprintf "vs Dom%d" (c.other_vm + 1)) r.comparisons
  in
  let rows =
    List.map
      (fun kind ->
        Artifact.kind_name kind
        :: List.map
             (fun c ->
               match
                 List.find_opt
                   (fun v -> Artifact.equal_kind v.Checker.av_kind kind)
                   c.result.Checker.verdicts
               with
               | Some v -> if v.Checker.av_match then "match" else "MISMATCH"
               | None -> "?")
             r.comparisons)
      kinds
  in
  Mc_util.Table.render ~header rows

let pp fmt r =
  Format.fprintf fmt "%s on Dom%d: %s" r.module_name (r.target_vm + 1)
    (verdict_string r)

let unreachable_json u =
  let open Mc_util.Json in
  List
    (List.map
       (fun (vm, reason) -> Obj [ ("vm", Int vm); ("reason", String reason) ])
       u)

let verdict_fields v =
  let open Mc_util.Json in
  ("verdict", String (verdict_key v))
  ::
  (match v with
  | Degraded reason -> [ ("degraded_reason", String reason) ]
  | Intact | Infected -> [])

let to_json r =
  let open Mc_util.Json in
  Obj
    ([
       ("module", String r.module_name);
       ("target_vm", Int r.target_vm);
       ("majority_ok", Bool r.majority_ok);
       ("matches", Int r.matches);
       ("total", Int r.total);
       ("surveyed", Int r.surveyed);
       ("responded", Int r.responded);
       ("voted", Int r.voted);
       ("unreachable", unreachable_json r.unreachable);
     ]
    @ verdict_fields r.verdict
    @ [
        ( "flagged_artifacts",
          List
            (List.map
               (fun k -> String (Artifact.kind_name k))
               r.flagged_artifacts) );
        ( "comparisons",
        List
          (List.map
             (fun c ->
               Obj
                 [
                   ("other_vm", Int c.other_vm);
                   ("all_match", Bool c.result.Checker.all_match);
                   ( "artifacts",
                     List
                       (List.map
                          (fun v ->
                            Obj
                              [
                                ( "artifact",
                                  String (Artifact.kind_name v.Checker.av_kind)
                                );
                                ("match", Bool v.Checker.av_match);
                                ("md5_target", String v.Checker.av_digest1);
                                ("md5_other", String v.Checker.av_digest2);
                                ("addresses_adjusted", Int v.Checker.av_adjusted);
                              ])
                          c.result.Checker.verdicts) );
                 ])
             r.comparisons) );
      ])

let survey_to_json s =
  let open Mc_util.Json in
  let vms l = List (List.map (fun v -> Int v) l) in
  Obj
    ([
       ("module", String s.survey_module);
       ("vms", vms s.vm_indices);
       ("missing_on", vms s.missing_on);
       ("deviant_vms", vms s.deviant_vms);
       ("unreachable", unreachable_json s.unreachable_on);
       ("surveyed", Int s.s_surveyed);
       ("responded", Int s.s_responded);
       ("voted", Int s.s_voted);
     ]
    @ verdict_fields s.s_verdict
    @ [
        ( "agreement_classes",
          List (List.map (fun c -> vms c) s.agreement_classes) );
        ( "pairwise",
          List
            (List.map
               (fun ((a, b), ok) ->
                 Obj [ ("a", Int a); ("b", Int b); ("match", Bool ok) ])
               s.pairwise_matches) );
      ])
