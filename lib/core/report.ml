type comparison = { other_vm : int; result : Checker.pair_result }

type verdict = Intact | Infected | Degraded of string

let verdict_key = function
  | Intact -> "intact"
  | Infected -> "infected"
  | Degraded _ -> "degraded"

let default_quorum = 0.5

(* Quorum floor: a verdict is only trustworthy when at least
   [quorum * surveyed] of the VMs we asked actually answered. Unreachable
   VMs are excluded from the vote entirely (a fault is not a mismatch);
   too many of them and the verdict degrades rather than pretending the
   shrunken majority still speaks for the pool. *)
let quorum_met ~quorum ~surveyed ~responded =
  responded > 0
  && float_of_int responded >= quorum *. float_of_int surveyed

type module_report = {
  module_name : string;
  target_vm : int;
  comparisons : comparison list;
  matches : int;
  total : int;
  majority_ok : bool;
  flagged_artifacts : Artifact.kind list;
  unreachable : (int * string) list;
  surveyed : int;
  responded : int;
  voted : int;
  verdict : verdict;
}

type survey = {
  survey_module : string;
  vm_indices : int list;
  missing_on : int list;
  deviant_vms : int list;
  agreement_classes : int list list;
  pairwise_matches : ((int * int) * bool) list;
  unreachable_on : (int * string) list;
  s_surveyed : int;
  s_responded : int;
  s_voted : int;
  s_verdict : verdict;
}

let make ~module_name ~target_vm ?(unreachable = []) ?surveyed
    ?(quorum = default_quorum) comparisons =
  let total = List.length comparisons in
  let surveyed =
    match surveyed with
    | Some s -> s
    | None -> total + List.length unreachable
  in
  let responded = surveyed - List.length unreachable in
  let matches =
    List.length
      (List.filter (fun c -> c.result.Checker.all_match) comparisons)
  in
  (* An artifact is the *target's* problem when it disagrees with a strict
     majority of the pool; a single disagreeing peer indicts the peer. *)
  let kinds =
    match comparisons with
    | [] -> []
    | c :: _ -> List.map (fun v -> v.Checker.av_kind) c.result.Checker.verdicts
  in
  let mismatch_count kind =
    List.length
      (List.filter
         (fun c ->
           List.exists
             (fun v ->
               Artifact.equal_kind v.Checker.av_kind kind
               && not v.Checker.av_match)
             c.result.Checker.verdicts)
         comparisons)
  in
  let flagged_artifacts =
    List.filter (fun kind -> 2 * mismatch_count kind > total) kinds
  in
  let majority_ok = 2 * matches > total in
  let verdict =
    if not (quorum_met ~quorum ~surveyed ~responded) then
      Degraded
        (Printf.sprintf "%d/%d comparison VM(s) responded (quorum %g)"
           responded surveyed quorum)
    else if majority_ok then Intact
    else Infected
  in
  {
    module_name;
    target_vm;
    comparisons;
    matches;
    total;
    majority_ok;
    flagged_artifacts;
    unreachable;
    surveyed;
    responded;
    voted = total;
    verdict;
  }

let verdict_string r =
  match r.verdict with
  | Intact -> Printf.sprintf "INTACT (%d/%d)" r.matches r.total
  | Infected ->
      Printf.sprintf "SUSPICIOUS (%d/%d): %s" r.matches r.total
        (String.concat ", " (List.map Artifact.kind_name r.flagged_artifacts))
  | Degraded reason ->
      Printf.sprintf "DEGRADED (%d/%d): %s" r.matches r.total reason

let to_table r =
  let kinds =
    match r.comparisons with
    | [] -> []
    | c :: _ -> List.map (fun v -> v.Checker.av_kind) c.result.Checker.verdicts
  in
  let header =
    "artifact"
    :: List.map (fun c -> Printf.sprintf "vs Dom%d" (c.other_vm + 1)) r.comparisons
  in
  let rows =
    List.map
      (fun kind ->
        Artifact.kind_name kind
        :: List.map
             (fun c ->
               match
                 List.find_opt
                   (fun v -> Artifact.equal_kind v.Checker.av_kind kind)
                   c.result.Checker.verdicts
               with
               | Some v -> if v.Checker.av_match then "match" else "MISMATCH"
               | None -> "?")
             r.comparisons)
      kinds
  in
  Mc_util.Table.render ~header rows

let pp fmt r =
  Format.fprintf fmt "%s on Dom%d: %s" r.module_name (r.target_vm + 1)
    (verdict_string r)

(* --- versioned machine-readable form ----------------------------------- *)

(* The schema tag is the contract with engine clients and scripts: a
   consumer checks it and refuses documents it does not understand, and a
   future incompatible change bumps the @N suffix instead of silently
   reshaping fields. *)
let schema = "modchecker/report@1"

let survey_schema = "modchecker/survey@1"

let unreachable_json u =
  let open Mc_util.Json in
  List
    (List.map
       (fun (vm, reason) -> Obj [ ("vm", Int vm); ("reason", String reason) ])
       u)

let verdict_fields v =
  let open Mc_util.Json in
  ("verdict", String (verdict_key v))
  ::
  (match v with
  | Degraded reason -> [ ("degraded_reason", String reason) ]
  | Intact | Infected -> [])

let to_json r =
  let open Mc_util.Json in
  Obj
    ([
       ("schema", String schema);
       ("module", String r.module_name);
       ("target_vm", Int r.target_vm);
       ("majority_ok", Bool r.majority_ok);
       ("matches", Int r.matches);
       ("total", Int r.total);
       ("surveyed", Int r.surveyed);
       ("responded", Int r.responded);
       ("voted", Int r.voted);
       ("unreachable", unreachable_json r.unreachable);
     ]
    @ verdict_fields r.verdict
    @ [
        ( "flagged_artifacts",
          List
            (List.map
               (fun k -> String (Artifact.kind_name k))
               r.flagged_artifacts) );
        ( "comparisons",
        List
          (List.map
             (fun c ->
               Obj
                 [
                   ("other_vm", Int c.other_vm);
                   ("all_match", Bool c.result.Checker.all_match);
                   ("total_adjusted", Int c.result.Checker.total_adjusted);
                   ( "artifacts",
                     List
                       (List.map
                          (fun v ->
                            Obj
                              [
                                ( "artifact",
                                  String (Artifact.kind_name v.Checker.av_kind)
                                );
                                ("match", Bool v.Checker.av_match);
                                ("md5_target", String v.Checker.av_digest1);
                                ("md5_other", String v.Checker.av_digest2);
                                ("addresses_adjusted", Int v.Checker.av_adjusted);
                              ])
                          c.result.Checker.verdicts) );
                 ])
             r.comparisons) );
      ])

let survey_to_json s =
  let open Mc_util.Json in
  let vms l = List (List.map (fun v -> Int v) l) in
  Obj
    ([
       ("schema", String survey_schema);
       ("module", String s.survey_module);
       ("vms", vms s.vm_indices);
       ("missing_on", vms s.missing_on);
       ("deviant_vms", vms s.deviant_vms);
       ("unreachable", unreachable_json s.unreachable_on);
       ("surveyed", Int s.s_surveyed);
       ("responded", Int s.s_responded);
       ("voted", Int s.s_voted);
     ]
    @ verdict_fields s.s_verdict
    @ [
        ( "agreement_classes",
          List (List.map (fun c -> vms c) s.agreement_classes) );
        ( "pairwise",
          List
            (List.map
               (fun ((a, b), ok) ->
                 Obj [ ("a", Int a); ("b", Int b); ("match", Bool ok) ])
               s.pairwise_matches) );
      ])

(* --- parsing the versioned form back ------------------------------------ *)

exception Parse of string

let fail fmt = Printf.ksprintf (fun s -> raise (Parse s)) fmt

let get name = function
  | Mc_util.Json.Obj fields -> (
      match List.assoc_opt name fields with
      | Some v -> v
      | None -> fail "missing field %S" name)
  | _ -> fail "expected an object around field %S" name

let as_int name = function
  | Mc_util.Json.Int i -> i
  | _ -> fail "field %S: expected an integer" name

let as_bool name = function
  | Mc_util.Json.Bool b -> b
  | _ -> fail "field %S: expected a boolean" name

let as_string name = function
  | Mc_util.Json.String s -> s
  | _ -> fail "field %S: expected a string" name

let as_list name = function
  | Mc_util.Json.List l -> l
  | _ -> fail "field %S: expected a list" name

let int_field name j = as_int name (get name j)

let bool_field name j = as_bool name (get name j)

let string_field name j = as_string name (get name j)

let list_field name j = as_list name (get name j)

let vms_field name j = List.map (as_int name) (list_field name j)

let check_schema expected j =
  let found = string_field "schema" j in
  if found <> expected then
    fail "unsupported schema %S (this reader understands %S)" found expected

let unreachable_of_json name j =
  List.map
    (fun u -> (int_field "vm" u, string_field "reason" u))
    (list_field name j)

let verdict_of_json j =
  match string_field "verdict" j with
  | "intact" -> Intact
  | "infected" -> Infected
  | "degraded" -> Degraded (string_field "degraded_reason" j)
  | v -> fail "unknown verdict %S" v

let comparison_of_json c =
  let verdicts =
    List.map
      (fun a ->
        Checker.
          {
            av_kind = Artifact.kind_of_name (string_field "artifact" a);
            av_match = bool_field "match" a;
            av_digest1 = string_field "md5_target" a;
            av_digest2 = string_field "md5_other" a;
            av_adjusted = int_field "addresses_adjusted" a;
          })
      (list_field "artifacts" c)
  in
  {
    other_vm = int_field "other_vm" c;
    result =
      Checker.
        {
          verdicts;
          all_match = bool_field "all_match" c;
          total_adjusted = int_field "total_adjusted" c;
        };
  }

let of_json j =
  try
    check_schema schema j;
    Ok
      {
        module_name = string_field "module" j;
        target_vm = int_field "target_vm" j;
        comparisons = List.map comparison_of_json (list_field "comparisons" j);
        matches = int_field "matches" j;
        total = int_field "total" j;
        majority_ok = bool_field "majority_ok" j;
        flagged_artifacts =
          List.map
            (fun k -> Artifact.kind_of_name (as_string "flagged_artifacts" k))
            (list_field "flagged_artifacts" j);
        unreachable = unreachable_of_json "unreachable" j;
        surveyed = int_field "surveyed" j;
        responded = int_field "responded" j;
        voted = int_field "voted" j;
        verdict = verdict_of_json j;
      }
  with Parse msg -> Error msg

let survey_of_json j =
  try
    check_schema survey_schema j;
    Ok
      {
        survey_module = string_field "module" j;
        vm_indices = vms_field "vms" j;
        missing_on = vms_field "missing_on" j;
        deviant_vms = vms_field "deviant_vms" j;
        agreement_classes =
          List.map
            (fun c -> List.map (as_int "agreement_classes") (as_list "agreement_classes" c))
            (list_field "agreement_classes" j);
        pairwise_matches =
          List.map
            (fun p ->
              ((int_field "a" p, int_field "b" p), bool_field "match" p))
            (list_field "pairwise" j);
        unreachable_on = unreachable_of_json "unreachable" j;
        s_surveyed = int_field "surveyed" j;
        s_responded = int_field "responded" j;
        s_voted = int_field "voted" j;
        s_verdict = verdict_of_json j;
      }
  with Parse msg -> Error msg
