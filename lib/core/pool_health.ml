module Cloud = Mc_hypervisor.Cloud
module Dom = Mc_hypervisor.Dom
module Vmi = Mc_vmi.Vmi
module Symbols = Mc_vmi.Symbols

type module_status = {
  ms_module : string;
  ms_present_on : int;
  ms_deviants : int list;
  ms_missing : int list;
  ms_consistent : bool;
}

type report = {
  fr_modules : module_status list;
  fr_suspicion : (int * int) list;
  fr_clean : bool;
}

let listings cloud =
  List.init (Cloud.vm_count cloud) (fun vm ->
      let dom = Cloud.vm cloud vm in
      let vmi =
        Vmi.init dom
          (Symbols.of_variant
             (Mc_winkernel.Kernel.os_variant (Dom.kernel_exn dom)))
      in
      ( vm,
        List.map
          (fun (i : Searcher.module_info) ->
            String.lowercase_ascii i.Searcher.mi_name)
          (Searcher.list_modules vmi) ))

let assess ?(config = Orchestrator.Config.default) cloud =
  let vm_count = Cloud.vm_count cloud in
  let listing = listings cloud in
  let all_names =
    List.sort_uniq compare (List.concat_map snd listing)
  in
  let statuses =
    List.map
      (fun name ->
        let holders =
          List.filter_map
            (fun (vm, names) -> if List.mem name names then Some vm else None)
            listing
        in
        let absentees =
          List.filter
            (fun vm -> not (List.mem vm holders))
            (List.init vm_count Fun.id)
        in
        (* Missing from a minority = hiding signal; missing from most =
           a module only some VMs load (surveyed among holders only). The
           majority is taken within each version cohort: a module rolled
           out to (say) the patched half of the pool must not implicate
           the unpatched half, while a cohort member hiding it is still
           outvoted by its own cohort. *)
        let missing =
          List.concat_map
            (fun level ->
              let members =
                List.filter
                  (fun vm -> Cloud.vm_patch_level cloud vm = level)
                  (List.map fst listing)
              in
              let cohort_holders =
                List.filter (fun vm -> List.mem vm members) holders
              in
              let cohort_absent =
                List.filter (fun vm -> List.mem vm members) absentees
              in
              if 2 * List.length cohort_holders > List.length members then
                cohort_absent
              else [])
            (Cloud.distinct_patch_levels cloud)
          |> List.sort compare
        in
        let survey = Orchestrator.survey ~config cloud ~module_name:name in
        let deviants = survey.Report.deviant_vms in
        {
          ms_module = name;
          ms_present_on = List.length holders;
          ms_deviants = deviants;
          ms_missing = missing;
          ms_consistent = deviants = [] && missing = [];
        })
      all_names
  in
  let suspicion = Hashtbl.create 8 in
  List.iter
    (fun s ->
      List.iter
        (fun vm ->
          Hashtbl.replace suspicion vm
            (1 + Option.value ~default:0 (Hashtbl.find_opt suspicion vm)))
        (s.ms_deviants @ s.ms_missing))
    statuses;
  let fr_suspicion =
    Hashtbl.fold (fun vm n acc -> (vm, n) :: acc) suspicion []
    |> List.sort (fun (_, a) (_, b) -> compare b a)
  in
  {
    fr_modules = statuses;
    fr_suspicion;
    fr_clean = List.for_all (fun s -> s.ms_consistent) statuses;
  }

let vm_list vms =
  if vms = [] then "-"
  else
    String.concat ","
      (List.map (fun v -> Printf.sprintf "Dom%d" (v + 1)) vms)

let to_table r =
  Mc_util.Table.render
    ~header:[ "module"; "present on"; "deviant"; "missing"; "status" ]
    (List.map
       (fun s ->
         [
           s.ms_module;
           string_of_int s.ms_present_on;
           vm_list s.ms_deviants;
           vm_list s.ms_missing;
           (if s.ms_consistent then "consistent" else "SUSPICIOUS");
         ])
       r.fr_modules)

let to_json r =
  let open Mc_util.Json in
  let vms l = List (List.map (fun v -> Int v) l) in
  Obj
    [
      ("clean", Bool r.fr_clean);
      ( "modules",
        List
          (List.map
             (fun s ->
               Obj
                 [
                   ("module", String s.ms_module);
                   ("present_on", Int s.ms_present_on);
                   ("deviants", vms s.ms_deviants);
                   ("missing", vms s.ms_missing);
                   ("consistent", Bool s.ms_consistent);
                 ])
             r.fr_modules) );
      ( "suspicion",
        List
          (List.map
             (fun (vm, n) -> Obj [ ("vm", Int vm); ("findings", Int n) ])
             r.fr_suspicion) );
    ]

let summary r =
  if r.fr_clean then
    Printf.sprintf "FLEET CLEAN (%d modules)" (List.length r.fr_modules)
  else
    match r.fr_suspicion with
    | (vm, n) :: _ ->
        Printf.sprintf "FLEET SUSPICIOUS: Dom%d implicated by %d finding(s)"
          (vm + 1) n
    | [] -> "FLEET SUSPICIOUS"
