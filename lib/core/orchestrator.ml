module Cloud = Mc_hypervisor.Cloud
module Dom = Mc_hypervisor.Dom
module Meter = Mc_hypervisor.Meter
module Costs = Mc_hypervisor.Costs
module Xenctl = Mc_hypervisor.Xenctl
module Vmi = Mc_vmi.Vmi
module Symbols = Mc_vmi.Symbols
module Pool = Mc_parallel.Pool
module Tel = Mc_telemetry.Registry
module Span = Mc_telemetry.Span
module Md5 = Mc_md5.Md5
module Merkle = Mc_md5.Merkle

type mode = Sequential | Parallel of Pool.t

type vm_work = { work_vm : int; work_meter : Meter.t }

type outcome = { report : Report.module_report; work : vm_work list }

type phase_seconds = {
  searcher_s : float;
  parser_s : float;
  checker_s : float;
}

type survey_strategy = Pairwise | Canonical

type fingerprint = (string * string) list

(* The Merkle representation of one VM's copy of a module: header
   artifacts keep flat digests (they are small and page-misaligned),
   section data carries a per-page-leaf tree over the reloc-adjusted
   bytes, and the page index maps each guest frame backing a section to
   the leaves whose adjusted content depends on it — a leaf depends on
   its own pages plus up to [reloc_margin] bytes of each neighbour
   (a 4-byte reloc slot can straddle the leaf boundary). The derived
   fingerprint (flat digests + root digests, sorted by kind) compares
   exactly like the flat one, so voting and escalation are unchanged. *)
type merkle_print = {
  mp_base : int;
  mp_flat : (string * string) list;
  mp_sections : (string * int * Merkle.t) list;
      (** (kind name, section RVA, tree over adjusted bytes). *)
  mp_page_index : (int * (string * int) list) list;
      (** pfn → the (kind name, leaf index) pairs it backs. *)
}

type incremental = {
  inc_digests : fingerprint option Digest_cache.t;
  inc_merkle : merkle_print option Digest_cache.t;
  inc_lists : string list Digest_cache.t;
  inc_pages : (int, Vmi.page_cache) Hashtbl.t;
  inc_mutex : Mutex.t;  (** Guards [inc_pages]. *)
}

let create_incremental () =
  {
    inc_digests = Digest_cache.create ();
    inc_merkle = Digest_cache.create ();
    inc_lists = Digest_cache.create ();
    inc_pages = Hashtbl.create 16;
    inc_mutex = Mutex.create ();
  }

module Config = struct
  type nonrec t = {
    mode : mode;
    others : int list option;
    strategy : survey_strategy;
    incremental : incremental option;
    merkle : bool;
    quorum : float;
    deadline_s : float option;
  }

  let default =
    {
      mode = Sequential;
      others = None;
      strategy = Pairwise;
      incremental = None;
      merkle = false;
      quorum = Report.default_quorum;
      deadline_s = None;
    }

  let with_mode mode t = { t with mode }
  let with_others others t = { t with others = Some others }
  let with_strategy strategy t = { t with strategy }
  let with_incremental incremental t = { t with incremental = Some incremental }
  let with_merkle merkle t = { t with merkle }
  let with_quorum quorum t = { t with quorum }
  let with_deadline deadline_s t = { t with deadline_s = Some deadline_s }
end

(* Fetch one VM's copy of the module and parse it into artifacts, phased
   against [meter]. *)
let profile_for dom =
  Symbols.of_variant
    (Mc_winkernel.Kernel.os_variant (Mc_hypervisor.Dom.kernel_exn dom))

(* Fold one job's per-phase meter counts into the telemetry registry, so
   the metric totals and the meter-priced phase costs stay in agreement. *)
let bridge_meter meter =
  if Tel.enabled () then
    List.iter
      (fun phase ->
        Mc_telemetry.Bridge.add_counts
          ~prefix:("meter." ^ Meter.phase_key phase)
          (Meter.pairs (Meter.get meter phase)))
      [ Meter.Searcher; Meter.Parser; Meter.Checker ]

(* How one VM answered a fetch. [Absent] is an answer (the walk completed
   and the module is not there) and votes as a mismatch; [Unreachable] is
   the lack of an answer (faults exhausted the retries, or the deadline
   passed) and must not vote at all — counting it either way would let an
   availability failure masquerade as an integrity signal. *)
type 'a fetch_outcome = Fetched of 'a | Absent | Unreachable of string

let fault_reason e = Vmi.fault_message e

let deadline_reason = "deadline exceeded"

let unreachable_of_exn = function
  | Vmi.Fault _ as e -> Some (fault_reason e)
  | Xenctl.Pause_fault { pf_dom } ->
      Some (Printf.sprintf "pause hypercall failed on Dom%d" pf_dom)
  | Mc_parallel.Deferred.Timed_out -> Some deadline_reason
  | _ -> None

let fetch_with_vmi vmi ~vm ~module_name ~meter =
  Meter.set_phase meter Searcher;
  match
    Tel.with_span ~attrs:[ ("vm", Int vm) ] "searcher" (fun sp ->
        let r = Searcher.fetch ~meter vmi ~name:module_name in
        (match r with
        | Some (_, buf) ->
            Span.set_attr sp "module_bytes" (Int (Bytes.length buf))
        | None -> Span.set_attr sp "found" (Bool false));
        r)
  with
  | None -> None
  | Some (info, buf) -> (
      Meter.set_phase meter Parser;
      match
        Tel.with_span ~attrs:[ ("vm", Int vm) ] "parser" (fun sp ->
            let r = Parser.artifacts ~meter buf in
            (match r with
            | Ok arts -> Span.set_attr sp "artifacts" (Int (List.length arts))
            | Error _ -> Span.set_attr sp "parse_error" (Bool true));
            r)
      with
      | Error _ -> None
      | Ok artifacts -> Some (info, artifacts))

let fetch_artifacts cloud ~vm ~module_name ~meter =
  let dom = Cloud.vm cloud vm in
  Meter.set_phase meter Searcher;
  let vmi = Vmi.init ~meter dom (profile_for dom) in
  match fetch_with_vmi vmi ~vm ~module_name ~meter with
  | Some (info, artifacts) -> Fetched (info, artifacts)
  | None -> Absent
  | exception e -> (
      match unreachable_of_exn e with
      | Some reason ->
          Tel.add "check.unreachable_fetches" 1;
          Unreachable reason
      | None -> raise e)

let map_vms mode f vms =
  match mode with
  | Sequential -> List.map f vms
  | Parallel pool -> Pool.parallel_map pool f vms

(* Per-task deadlines only have teeth in parallel mode, where a hung task
   can be abandoned (its deferred is poisoned and its late result
   discarded). Sequential mode runs the task inline — there the fault
   layer's bounded retries are what keeps a read from hanging. A task
   that missed its deadline is rebuilt as [on_timeout vm]. *)
let map_vms_deadline mode ?deadline_s ~on_timeout f vms =
  match (mode, deadline_s) with
  | Sequential, _ | Parallel _, None -> map_vms mode f vms
  | Parallel pool, Some timeout_s ->
      List.map2
        (fun vm -> function
          | Ok r -> r
          | Error e ->
              (match unreachable_of_exn e with
              | Some _ -> ()
              | None -> raise e);
              on_timeout vm)
        vms
        (Pool.parallel_map_timeout pool ~timeout_s f vms)

(* A comparison VM that lacks the module (or whose copy does not even
   parse) fails the comparison outright: every target artifact is reported
   absent on the other side. *)
let absent_result target_artifacts =
  Checker.
    {
      verdicts =
        List.map
          (fun (a : Artifact.t) ->
            {
              av_kind = a.Artifact.kind;
              av_match = false;
              av_digest1 = "-";
              av_digest2 = "(absent)";
              av_adjusted = 0;
            })
          target_artifacts;
      all_match = false;
      total_adjusted = 0;
    }

(* Default comparison set: the target's version cohort. Comparing a
   patched build against an unpatched one would manufacture mismatches
   out of a legitimate version split. In a homogeneous pool this is the
   whole pool, as in the paper. *)
let default_others cloud ~target_vm =
  let cohort = Cloud.vm_patch_level cloud target_vm in
  List.filter
    (fun v -> v <> target_vm && Cloud.vm_patch_level cloud v = cohort)
    (List.init (Cloud.vm_count cloud) Fun.id)

let check_module_full ~config cloud ~target_vm ~module_name =
  let { Config.mode; others; quorum; deadline_s; _ } = config in
  let others =
    match others with
    | Some vs -> vs
    | None -> default_others cloud ~target_vm
  in
  if others = [] then Error "no comparison VMs available"
  else
    Tel.with_span
      ~attrs:
        [ ("module", String module_name); ("target_vm", Int target_vm) ]
      "check_module"
    @@ fun root ->
    let root_id = if root.Span.id = 0 then None else Some root.Span.id in
    Log.info (fun m ->
        m "checking %s on Dom%d against %d VM(s)" module_name (target_vm + 1)
          (List.length others));
    let target_meter = Meter.create () in
    match
      Tel.with_span ~attrs:[ ("vm", Int target_vm) ] "vm_check" (fun _ ->
          fetch_artifacts cloud ~vm:target_vm ~module_name ~meter:target_meter)
    with
    | Absent ->
        bridge_meter target_meter;
        Error
          (Printf.sprintf "module %s not found in Dom%d" module_name
             (target_vm + 1))
    | Unreachable reason ->
        bridge_meter target_meter;
        Error
          (Printf.sprintf "Dom%d unreachable: %s" (target_vm + 1) reason)
    | Fetched (target_info, target_artifacts) ->
        let compare_against vm =
          (* In parallel mode this closure runs on a pool domain, where the
             span stack is empty — hand the parent over explicitly. *)
          Tel.with_span ?parent:root_id ~attrs:[ ("vm", Int vm) ] "vm_check"
          @@ fun _ ->
          let meter = Meter.create () in
          let outcome =
            match fetch_artifacts cloud ~vm ~module_name ~meter with
            | Absent -> Fetched (absent_result target_artifacts)
            | Unreachable reason -> Unreachable reason
            | Fetched (info, artifacts) ->
                Meter.set_phase meter Checker;
                Fetched
                  (Tel.with_span ~attrs:[ ("vm", Int vm) ] "checker" (fun sp ->
                       let r =
                         Checker.compare_pair ~meter
                           ~base1:target_info.Searcher.mi_base target_artifacts
                           ~base2:info.Searcher.mi_base artifacts
                       in
                       Span.set_attr sp "all_match" (Bool r.Checker.all_match);
                       r))
          in
          (vm, outcome, { work_vm = vm; work_meter = meter })
        in
        let results =
          map_vms_deadline mode ?deadline_s
            ~on_timeout:(fun vm ->
              (vm, Unreachable deadline_reason,
               { work_vm = vm; work_meter = Meter.create () }))
            compare_against others
        in
        let comparisons =
          List.filter_map
            (fun (vm, outcome, _) ->
              match outcome with
              | Fetched result -> Some { Report.other_vm = vm; result }
              | Absent | Unreachable _ -> None)
            results
        in
        let unreachable =
          List.filter_map
            (fun (vm, outcome, _) ->
              match outcome with
              | Unreachable reason -> Some (vm, reason)
              | Fetched _ | Absent -> None)
            results
        in
        let work =
          { work_vm = target_vm; work_meter = target_meter }
          :: List.map (fun (_, _, w) -> w) results
        in
        let report =
          Report.make ~module_name ~target_vm ~unreachable
            ~surveyed:(List.length others) ~quorum comparisons
        in
        if Tel.enabled () then begin
          List.iter (fun w -> bridge_meter w.work_meter) work;
          Tel.add "check.modules_checked" 1;
          Tel.add "check.vms_compared" (List.length others);
          Tel.add "check.unreachable_vms" (List.length unreachable);
          (match report.Report.verdict with
          | Report.Degraded _ -> Tel.add "check.degraded_verdicts" 1
          | Report.Infected -> Tel.add "check.failed_votes" 1
          | Report.Intact -> ())
        end;
        (match report.Report.verdict with
        | Report.Intact -> Log.debug (fun m -> m "%a" Report.pp report)
        | Report.Infected | Report.Degraded _ ->
            Log.warn (fun m -> m "%a" Report.pp report));
        Ok { report; work }

(* Canonical strategy: per-VM fingerprints. Every artifact kind maps to a
   digest; section data is digested after t-way canonicalization, so clean
   copies collapse to one digest per kind. *)
let canonical_fingerprints ?meter present =
  let bump f = match meter with Some m -> f m | None -> () in
  let kinds =
    List.concat_map
      (fun (_, (_, arts)) -> List.map (fun (a : Artifact.t) -> a.Artifact.kind) arts)
      present
    |> List.fold_left
         (fun acc k ->
           if List.exists (Artifact.equal_kind k) acc then acc else k :: acc)
         []
    |> List.rev
  in
  let tables =
    List.map
      (fun kind ->
        let holders =
          List.filter_map
            (fun (vm, ((info : Searcher.module_info), arts)) ->
              Option.map
                (fun (a : Artifact.t) -> (vm, info.Searcher.mi_base, a))
                (Artifact.find arts kind))
            present
        in
        let raw_digest (vm, _, (a : Artifact.t)) =
          bump (fun m -> Meter.add_bytes_hashed m (Bytes.length a.Artifact.data));
          (vm, Mc_md5.Md5.to_hex (Mc_md5.Md5.digest_bytes a.Artifact.data))
        in
        let digests =
          match holders with
          | (_, _, first) :: _ when Artifact.is_section_data first ->
              (* Canonicalize within each equal-length group (a resized
                 copy — e.g. a DLL injection — forms its own group and
                 keeps its distinct digest); groups of one hash raw. *)
              let groups = Hashtbl.create 4 in
              List.iter
                (fun ((_, _, (a : Artifact.t)) as h) ->
                  let len = Bytes.length a.Artifact.data in
                  Hashtbl.replace groups len
                    (h :: Option.value ~default:[] (Hashtbl.find_opt groups len)))
                holders;
              Hashtbl.fold
                (fun _ group acc ->
                  match group with
                  | [ single ] -> raw_digest single :: acc
                  | _ ->
                      let group = List.rev group in
                      let bases =
                        Array.of_list (List.map (fun (_, b, _) -> b) group)
                      in
                      let buffers =
                        Array.of_list
                          (List.map
                             (fun (_, _, (a : Artifact.t)) ->
                               Bytes.copy a.Artifact.data)
                             group)
                      in
                      bump (fun m ->
                          Array.iter
                            (fun b -> Meter.add_bytes_scanned m (Bytes.length b))
                            buffers);
                      ignore (Rva.canonicalize ~bases buffers);
                      List.mapi
                        (fun i (vm, _, _) ->
                          bump (fun m ->
                              Meter.add_bytes_hashed m
                                (Bytes.length buffers.(i)));
                          ( vm,
                            Mc_md5.Md5.to_hex
                              (Mc_md5.Md5.digest_bytes buffers.(i)) ))
                        group
                      @ acc)
                groups []
          | _ -> List.map raw_digest holders
        in
        (kind, digests))
      kinds
  in
  (* Fingerprint: for each kind, the VM's digest or "(absent)". *)
  List.map
    (fun (vm, _) ->
      ( vm,
        List.map
          (fun (_, digests) ->
            match List.assoc_opt vm digests with
            | Some d -> d
            | None -> "(absent)")
          tables ))
    present

(* One shareable page cache per VM, so successive sweeps (and the list
   walk and the module fetch within one sweep) reuse mapped pages instead
   of re-mapping them. Safe because Vmi validates every hit against the
   frame's write version. *)
let page_cache_for inc vm =
  Mutex.lock inc.inc_mutex;
  let c =
    match Hashtbl.find_opt inc.inc_pages vm with
    | Some c -> c
    | None ->
        let c = Vmi.create_cache () in
        Hashtbl.replace inc.inc_pages vm c;
        c
  in
  Mutex.unlock inc.inc_mutex;
  c

(* Reloc slot RVAs of the golden copy of [name]. Unlike t-way
   canonicalization (which infers slots by diffing copies against each
   other), reloc-guided adjustment is independent per VM — a cacheable
   per-VM fingerprint must not depend on which other copies happened to be
   in the same survey. *)
let reloc_fallback name why =
  (* Falling back to an empty reloc list silently disables reloc-guided
     base stripping: every per-VM load-base difference then survives into
     the fingerprint and a clean pool looks deviant. That trade must be
     visible, not silent. *)
  Log.warn (fun m ->
      m "no reloc table for %s (%s): fingerprints will not be base-stripped"
        name why);
  Tel.add "digest.reloc_fallbacks" 1;
  []

let module_relocs ?(version = 1) name =
  match Mc_pe.Catalog.image ~version name with
  | exception e -> reloc_fallback name (Printexc.to_string e)
  | built -> (
      let file = built.Mc_pe.Catalog.file in
      match Mc_pe.Read.parse ~layout:Mc_pe.Read.File file with
      | Error e -> reloc_fallback name (Mc_pe.Read.error_to_string e)
      | Ok image -> (
          match
            Mc_pe.Read.base_relocations ~layout:Mc_pe.Read.File file image
          with
          | relocs -> relocs
          | exception e -> reloc_fallback name (Printexc.to_string e)))

(* A VM-independent fingerprint: section data is hashed after exact
   reloc-guided base stripping, headers raw. Clean copies at different
   load bases collapse to the same digests. *)
let vm_fingerprint ~meter ~relocs ~base artifacts : fingerprint =
  List.map
    (fun (a : Artifact.t) ->
      let digest =
        if Artifact.is_section_data a then begin
          let data = Bytes.copy a.Artifact.data in
          Meter.add_bytes_scanned meter (Bytes.length data);
          ignore
            (Rva.adjust_with_relocs ~base ~section_rva:a.Artifact.sec_rva
               ~relocs data);
          Meter.add_bytes_hashed meter (Bytes.length data);
          Mc_md5.Md5.to_hex (Mc_md5.Md5.digest_bytes data)
        end
        else begin
          Meter.add_bytes_hashed meter (Bytes.length a.Artifact.data);
          Mc_md5.Md5.to_hex (Mc_md5.Md5.digest_bytes a.Artifact.data)
        end
      in
      (Artifact.kind_name a.Artifact.kind, digest))
    artifacts
  |> List.sort compare

(* --- Merkle fingerprints (O(dirty) hot path) --------------------------- *)

(* The derived fingerprint compares exactly like the flat one: same kinds,
   one digest per kind, sorted. Root equality is adjusted-content equality
   under the same MD5 collision assumption as a flat digest, so verdict
   parity with the non-merkle path holds by construction. *)
let merkle_fingerprint_of mp : fingerprint =
  mp.mp_flat
  @ List.map
      (fun (k, _, tree) -> (k, Md5.to_hex (Merkle.root tree)))
      mp.mp_sections
  |> List.sort compare

(* The (clamped) margin-extended window of one leaf: the span of section
   bytes whose raw content determines the leaf's *adjusted* content. *)
let leaf_window ~len (off, llen) =
  let lo = max 0 (off - Rva.reloc_margin) in
  let hi = min len (off + llen + Rva.reloc_margin) in
  (lo, hi - lo)

let build_merkle_print ~jm ~vmi ~relocs ~base artifacts =
  let flat, secs =
    List.partition
      (fun (a : Artifact.t) -> not (Artifact.is_section_data a))
      artifacts
  in
  let mp_flat =
    List.map
      (fun (a : Artifact.t) ->
        Meter.add_bytes_hashed jm (Bytes.length a.Artifact.data);
        (Artifact.kind_name a.Artifact.kind, Md5.to_hex (Md5.digest_bytes a.Artifact.data)))
      flat
  in
  let mp_sections =
    List.map
      (fun (a : Artifact.t) ->
        let data = Bytes.copy a.Artifact.data in
        Meter.add_bytes_scanned jm (Bytes.length data);
        ignore
          (Rva.adjust_with_relocs ~base ~section_rva:a.Artifact.sec_rva ~relocs
             data);
        let tree = Checker.merkle_of_bytes ~meter:jm data in
        (Artifact.kind_name a.Artifact.kind, a.Artifact.sec_rva, tree))
      secs
  in
  (* Index every frame backing a leaf's margin-extended window, through
     the session's page cache so the page-table pages the translations
     read join the footprint like any other read. *)
  let index = Hashtbl.create 64 in
  List.iter
    (fun (kind, sec_rva, tree) ->
      let len = Merkle.length tree in
      Array.iteri
        (fun leaf bounds ->
          let lo, wlen = leaf_window ~len bounds in
          List.iter
            (function
              | Some pfn ->
                  Hashtbl.replace index pfn
                    ((kind, leaf)
                    :: Option.value ~default:[] (Hashtbl.find_opt index pfn))
              | None -> ())
            (Vmi.pfns_of_va_range vmi (base + sec_rva + lo) wlen))
        (Merkle.leaf_bounds ~page:(Merkle.page_size tree) len))
    mp_sections;
  {
    mp_base = base;
    mp_flat;
    mp_sections;
    mp_page_index = Hashtbl.fold (fun pfn ls acc -> (pfn, ls) :: acc) index [];
  }

(* Refresh only the leaves backed by the dirty frames: each leaf is
   re-read with its reloc margin (so boundary-straddling slots adjust
   exactly as a from-scratch pass would), re-hashed, and spliced into the
   tree — k dirty pages cost k leaf hashes plus O(log n) interior nodes.
   The caller guarantees every dirty pfn is in the page index. *)
let refresh_merkle_print ~jm ~vmi ~relocs mp ~dirty =
  let by_kind = Hashtbl.create 4 in
  List.iter
    (fun pfn ->
      List.iter
        (fun (kind, leaf) ->
          Hashtbl.replace by_kind kind
            (leaf :: Option.value ~default:[] (Hashtbl.find_opt by_kind kind)))
        (List.assoc pfn mp.mp_page_index))
    dirty;
  let rehashed = ref 0 in
  let mp_sections =
    List.map
      (fun (kind, sec_rva, tree) ->
        match Hashtbl.find_opt by_kind kind with
        | None -> (kind, sec_rva, tree)
        | Some leaves ->
            let len = Merkle.length tree in
            let bounds = Merkle.leaf_bounds ~page:(Merkle.page_size tree) len in
            let updates =
              List.map
                (fun leaf ->
                  let off, llen = bounds.(leaf) in
                  let lo, wlen = leaf_window ~len bounds.(leaf) in
                  (* Same read primitive as the full fetch, so an
                     unmapped (padded-as-zero) page refreshes to the
                     same bytes it fetched as. *)
                  let win =
                    Vmi.read_va_padded vmi (mp.mp_base + sec_rva + lo) wlen
                  in
                  Meter.add_bytes_scanned jm wlen;
                  ignore
                    (Rva.adjust_window ~base:mp.mp_base ~section_rva:sec_rva
                       ~window_off:lo ~relocs win);
                  Meter.add_bytes_hashed jm llen;
                  (leaf, Md5.digest_sub win (off - lo) llen))
                (List.sort_uniq compare leaves)
            in
            rehashed := !rehashed + List.length updates;
            let tree', interior = Merkle.set_leaves tree updates in
            Meter.add_merkle_nodes jm interior;
            (kind, sec_rva, tree'))
      mp.mp_sections
  in
  Tel.add "merkle.leaves_rehashed" !rehashed;
  { mp with mp_sections }

(* The refreshed entry's key: untouched pages keep their recorded
   versions, pages the refresh session read carry the versions it saw,
   and dirty pages the session did not re-read (a VA since remapped
   elsewhere) drop out — the value no longer depends on them, and keeping
   their stale versions would make every future probe miss. *)
let merge_footprint old ~dirty session =
  let tbl = Hashtbl.create (Array.length old) in
  Array.iter (fun (pfn, v) -> Hashtbl.replace tbl pfn v) old;
  List.iter (Hashtbl.remove tbl) dirty;
  Array.iter (fun (pfn, v) -> Hashtbl.replace tbl pfn v) session;
  let arr = Array.make (Hashtbl.length tbl) (0, 0) in
  let i = ref 0 in
  Hashtbl.iter
    (fun pfn v ->
      arr.(!i) <- (pfn, v);
      incr i)
    tbl;
  Array.sort compare arr;
  arr

(* One VM's memoized Merkle print, via the probe -> O(dirty) refresh ->
   full-rebuild ladder. Shared by the survey Merkle path and the
   check-module fast path, so both pay -- and cache -- identically. *)
let merkle_probe_vm ?parent inc cloud ~relocs ~vm ~module_name =
  Tel.with_span ?parent ~attrs:[ ("vm", Int vm) ] "vm_check"
  @@ fun _ ->
  let dom = Cloud.vm cloud vm in
  let jm = Meter.create () in
  Meter.set_phase jm Meter.Searcher;
  let unreachable_or_reraise e =
    match unreachable_of_exn e with
    | Some reason ->
        Tel.add "check.unreachable_fetches" 1;
        Unreachable reason
    | None -> raise e
  in
  let full_build () =
    let epoch = Xenctl.memory_epoch dom in
    let vmi =
      Vmi.init ~meter:jm ~cache:(page_cache_for inc vm) dom
        (profile_for dom)
    in
    match fetch_with_vmi vmi ~vm ~module_name ~meter:jm with
    | exception e -> unreachable_or_reraise e
    | None ->
        Digest_cache.store inc.inc_merkle ~vm ~key:module_name ~epoch
          ~footprint:(Vmi.footprint vmi) None;
        Absent
    | Some (info, artifacts) ->
        Meter.set_phase jm Meter.Checker;
        let mp =
          build_merkle_print ~jm ~vmi ~relocs
            ~base:info.Searcher.mi_base artifacts
        in
        Digest_cache.store inc.inc_merkle ~vm ~key:module_name ~epoch
          ~footprint:(Vmi.footprint vmi) (Some mp);
        Fetched mp
  in
  let outcome =
    match
      Digest_cache.probe_delta ~meter:jm inc.inc_merkle dom ~vm
        ~key:module_name
    with
    | Digest_cache.Fresh (Some mp) -> Fetched mp
    | Digest_cache.Fresh None -> Absent
    | Digest_cache.Missing -> full_build ()
    | Digest_cache.Stale { stale_value = None; _ } -> full_build ()
    | Digest_cache.Stale
        { stale_value = Some mp; stale_epoch; stale_footprint;
          stale_dirty }
      when List.for_all
             (fun pfn -> List.mem_assoc pfn mp.mp_page_index)
             stale_dirty -> (
        let vmi =
          Vmi.init ~meter:jm ~cache:(page_cache_for inc vm) dom
            (profile_for dom)
        in
        Meter.set_phase jm Meter.Checker;
        match
          refresh_merkle_print ~jm ~vmi ~relocs mp ~dirty:stale_dirty
        with
        | exception e -> unreachable_or_reraise e
        | mp' ->
            Digest_cache.store inc.inc_merkle ~vm ~key:module_name
              ~epoch:stale_epoch
              ~footprint:
                (merge_footprint stale_footprint ~dirty:stale_dirty
                   (Vmi.footprint vmi))
              (Some mp');
            Fetched mp')
    | Digest_cache.Stale _ ->
        Tel.add "merkle.full_rebuilds" 1;
        full_build ()
  in
  (vm, outcome, jm)


(* Before escalating on a root mismatch, descend the deviant pair's trees:
   the divergent pages are localized in O(k log n) node comparisons and
   logged, so the operator (and the [merkle.descents] /
   [merkle.deviant_pages] counters) learn *where* the copies disagree
   before the full byte-level survey re-derives it. *)
let descend_deviants ~fold_job module_name (a, mpa) (b, mpb) =
  let dm = Meter.create () in
  Meter.set_phase dm Meter.Checker;
  List.iter
    (fun (kind, _, ta) ->
      match
        List.find_opt (fun (k, _, _) -> String.equal k kind) mpb.mp_sections
      with
      | Some (_, _, tb)
        when Merkle.length ta = Merkle.length tb
             && Merkle.page_size ta = Merkle.page_size tb
             && not (Merkle.equal_root ta tb) ->
          let ranges = Checker.deviant_ranges ~meter:dm ta tb in
          Tel.add "merkle.deviant_pages" (List.length ranges);
          Log.warn (fun m ->
              m "%s %s deviates between Dom%d and Dom%d on %d page(s): %s"
                module_name kind (a + 1) (b + 1) (List.length ranges)
                (String.concat ", "
                   (List.map (fun (off, _) -> Printf.sprintf "+0x%x" off) ranges)))
      | _ -> ())
    mpa.mp_sections;
  fold_job dm

(* A VM's base-independent module identity, for callers (the federation
   coordinator) that need to compare copies across pools: fetched with the
   usual fault handling, reloc-stripped with the build matching the VM's
   patch level. *)
let reference_fingerprint ?meter cloud ~vm ~module_name =
  let jm = Meter.create () in
  let result =
    match fetch_artifacts cloud ~vm ~module_name ~meter:jm with
    | Absent -> Error (Printf.sprintf "module %s absent" module_name)
    | Unreachable reason -> Error reason
    | Fetched (info, artifacts) ->
        let relocs =
          module_relocs
            ~version:(Cloud.vm_patch_level cloud vm)
            module_name
        in
        Meter.set_phase jm Checker;
        Ok
          (vm_fingerprint ~meter:jm ~relocs ~base:info.Searcher.mi_base
             artifacts)
    | exception e -> (
        match unreachable_of_exn e with
        | Some reason -> Error reason
        | None -> raise e)
  in
  (match meter with Some dst -> Meter.merge dst jm | None -> bridge_meter jm);
  result

(* A pair_result synthesized from a memoized fingerprint: one verdict
   per artifact kind, digests already reloc-adjusted (so av_adjusted is
   0 — the adjustment happened when the print was built). *)
let pair_of_fingerprint ~matches fp =
  {
    Checker.verdicts =
      List.map
        (fun (kname, digest) ->
          {
            Checker.av_kind = Artifact.kind_of_name kname;
            av_match = matches;
            av_digest1 = digest;
            av_digest2 = (if matches then digest else "(absent)");
            av_adjusted = 0;
          })
        fp;
    all_match = matches;
    total_adjusted = 0;
  }

(* Merkle fast path for a check: compare the target's memoized
   reloc-adjusted fingerprint against each comparison VM's, at the cost
   of staleness probes instead of full fetch+compare pipelines.
   Fingerprints can only prove {e agreement} (identically-tampered
   copies can fingerprint as mutually deviant, see [survey]'s escalation
   note), so the fast path answers [Some _] only when every reachable
   copy agrees with the target — any mismatch returns [None] and the
   caller escalates to the full byte-level check, keeping verdict parity
   with the non-incremental path by construction. *)
let check_module_merkle ~config inc cloud ~target_vm ~module_name =
  let { Config.mode; others; quorum; deadline_s; _ } = config in
  let others =
    match others with
    | Some vs -> vs
    | None -> default_others cloud ~target_vm
  in
  if others = [] then Some (Error "no comparison VMs available")
  else
    Tel.with_span
      ~attrs:[ ("module", String module_name); ("target_vm", Int target_vm) ]
      "check_module_merkle"
    @@ fun root ->
    let root_id = if root.Span.id = 0 then None else Some root.Span.id in
    let relocs_by_level =
      List.map
        (fun level -> (level, module_relocs ~version:level module_name))
        (Cloud.distinct_patch_levels cloud)
    in
    let probe vm =
      let relocs =
        List.assoc (Cloud.vm_patch_level cloud vm) relocs_by_level
      in
      merkle_probe_vm ?parent:root_id inc cloud ~relocs ~vm ~module_name
    in
    let _, target_outcome, target_jm = probe target_vm in
    match target_outcome with
    | Absent ->
        bridge_meter target_jm;
        Some
          (Error
             (Printf.sprintf "module %s not found in Dom%d" module_name
                (target_vm + 1)))
    | Unreachable reason ->
        bridge_meter target_jm;
        Some
          (Error
             (Printf.sprintf "Dom%d unreachable: %s" (target_vm + 1) reason))
    | Fetched mp_t ->
        let fp_t = merkle_fingerprint_of mp_t in
        let on_timeout vm =
          (vm, Unreachable deadline_reason, Meter.create ())
        in
        let results =
          map_vms_deadline mode ?deadline_s ~on_timeout probe others
        in
        let deviant =
          List.exists
            (fun (_, o, _) ->
              match o with
              | Fetched mp -> merkle_fingerprint_of mp <> fp_t
              | Absent | Unreachable _ -> false)
            results
        in
        if deviant then begin
          (* The probes' work is still accounted — it really ran. *)
          Tel.add "check.merkle_escalations" 1;
          bridge_meter target_jm;
          List.iter (fun (_, _, jm) -> bridge_meter jm) results;
          None
        end
        else begin
          let comparisons =
            List.filter_map
              (fun (vm, o, _) ->
                match o with
                | Fetched _ ->
                    Some
                      {
                        Report.other_vm = vm;
                        result = pair_of_fingerprint ~matches:true fp_t;
                      }
                | Absent ->
                    Some
                      {
                        Report.other_vm = vm;
                        result = pair_of_fingerprint ~matches:false fp_t;
                      }
                | Unreachable _ -> None)
              results
          in
          let unreachable =
            List.filter_map
              (fun (vm, o, _) ->
                match o with
                | Unreachable reason -> Some (vm, reason)
                | Fetched _ | Absent -> None)
              results
          in
          let work =
            { work_vm = target_vm; work_meter = target_jm }
            :: List.map
                 (fun (vm, _, jm) -> { work_vm = vm; work_meter = jm })
                 results
          in
          let report =
            Report.make ~module_name ~target_vm ~unreachable
              ~surveyed:(List.length others) ~quorum comparisons
          in
          if Tel.enabled () then begin
            List.iter (fun w -> bridge_meter w.work_meter) work;
            Tel.add "check.modules_checked" 1;
            Tel.add "check.merkle_fast_path" 1;
            Tel.add "check.vms_compared" (List.length others);
            Tel.add "check.unreachable_vms" (List.length unreachable);
            match report.Report.verdict with
            | Report.Degraded _ -> Tel.add "check.degraded_verdicts" 1
            | Report.Infected -> Tel.add "check.failed_votes" 1
            | Report.Intact -> ()
          end;
          (match report.Report.verdict with
          | Report.Intact -> Log.debug (fun m -> m "%a" Report.pp report)
          | Report.Infected | Report.Degraded _ ->
              Log.warn (fun m -> m "%a" Report.pp report));
          Some (Ok { report; work })
        end

let check_module ?(config = Config.default) cloud ~target_vm ~module_name =
  match config.Config.incremental with
  | Some inc when config.Config.merkle -> (
      match check_module_merkle ~config inc cloud ~target_vm ~module_name with
      | Some r -> r
      | None -> check_module_full ~config cloud ~target_vm ~module_name)
  | Some _ | None -> check_module_full ~config cloud ~target_vm ~module_name

exception Escalate_to_full

let rec survey ?(config = Config.default) ?meter cloud ~module_name =
  try survey_once ~config ?meter cloud ~module_name
  with Escalate_to_full ->
    (* Per-VM reloc-guided fingerprints can only reconcile *clean*
       copies: identically-tampered copies whose code shifted hash to
       base-dependent garbage at the golden slot offsets and would all
       look mutually deviant. Any disagreement therefore escalates to
       the cross-buffer full survey — the steady-state clean pool never
       pays for this, and verdict parity with the full path holds by
       construction. *)
    Tel.add "survey.incremental_escalations" 1;
    survey
      ~config:{ config with Config.incremental = None }
      ?meter cloud ~module_name

and survey_once ~config ?meter cloud ~module_name =
  let { Config.mode; strategy; incremental; merkle; quorum; deadline_s; _ } =
    config
  in
  Tel.with_span
    ~attrs:
      [
        ("module", String module_name);
        ( "strategy",
          String (match strategy with Pairwise -> "pairwise" | Canonical -> "canonical") );
      ]
    "survey"
  @@ fun root ->
  let root_id = if root.Span.id = 0 then None else Some root.Span.id in
  let vms = List.init (Cloud.vm_count cloud) Fun.id in
  (* Every job meters into its own fresh meter — a shared meter is not
     thread-safe — and the counts fold back after the join: into the
     caller's meter when one was given, else straight into telemetry. *)
  let fold_job jm =
    match meter with Some dst -> Meter.merge dst jm | None -> bridge_meter jm
  in
  let on_timeout vm = (vm, Unreachable deadline_reason, Meter.create ()) in
  let vms_present, missing_on, unreachable_on, pairwise =
    match incremental with
    | Some inc when merkle ->
        (* Merkle path: like the incremental path below, but the memoized
           value is the per-section tree, not just the digests — so a VM
           whose module pages were written refreshes at O(dirty): the
           delta probe names the dirty frames, the page index maps them
           to leaves, and only those leaves (plus the O(log n) interior
           nodes above them) are re-read and re-hashed. A dirty frame
           outside the section page index (an LDR page, a page-table
           page, a header page) means the walk itself may have changed,
           and the entry rebuilds from scratch. *)
        let relocs_by_level =
          List.map
            (fun level -> (level, module_relocs ~version:level module_name))
            (Cloud.distinct_patch_levels cloud)
        in
        let fingerprint_vm vm =
          let relocs =
            List.assoc (Cloud.vm_patch_level cloud vm) relocs_by_level
          in
          merkle_probe_vm ?parent:root_id inc cloud ~relocs ~vm ~module_name
        in
        let jobs =
          map_vms_deadline mode ?deadline_s ~on_timeout fingerprint_vm vms
        in
        List.iter (fun (_, _, jm) -> fold_job jm) jobs;
        let prints =
          List.filter_map
            (fun (vm, o, _) ->
              match o with Fetched mp -> Some (vm, mp) | _ -> None)
            jobs
        in
        let present =
          List.map (fun (vm, mp) -> (vm, merkle_fingerprint_of mp)) prints
        in
        let missing_on =
          List.filter_map
            (fun (vm, o, _) -> if o = Absent then Some vm else None)
            jobs
        in
        let unreachable_on =
          List.filter_map
            (fun (vm, o, _) ->
              match o with Unreachable r -> Some (vm, r) | _ -> None)
            jobs
        in
        let rec pairs = function
          | [] -> []
          | (v, fp) :: rest ->
              List.map (fun (u, fq) -> ((v, u), (fp : fingerprint) = fq)) rest
              @ pairs rest
        in
        let pairwise = pairs present in
        (* Same escalation rule as the digest path (see below) — but the
           trees let us localize the deviant pages first, before the full
           survey re-derives the verdict byte by byte. *)
        (match
           List.find_opt
             (fun ((a, b), ok) ->
               (not ok)
               && Cloud.vm_patch_level cloud a = Cloud.vm_patch_level cloud b)
             pairwise
         with
        | Some ((a, b), _) ->
            descend_deviants ~fold_job module_name
              (a, List.assoc a prints)
              (b, List.assoc b prints);
            raise Escalate_to_full
        | None -> ());
        (List.map fst present, missing_on, unreachable_on, pairwise)
    | Some inc ->
        (* Incremental path: per-VM reloc-adjusted fingerprints, memoized
           on the pages each computation read. An untouched VM prices as
           one staleness probe instead of a map+parse+hash pipeline. Reloc
           tables are per patch level (each level is a different build of
           the module), resolved up front so pool workers share them
           without touching the catalog memo table concurrently. *)
        let relocs_by_level =
          List.map
            (fun level -> (level, module_relocs ~version:level module_name))
            (Cloud.distinct_patch_levels cloud)
        in
        let fingerprint_vm vm =
          let relocs =
            List.assoc (Cloud.vm_patch_level cloud vm) relocs_by_level
          in
          Tel.with_span ?parent:root_id ~attrs:[ ("vm", Int vm) ] "vm_check"
          @@ fun _ ->
          let dom = Cloud.vm cloud vm in
          let jm = Meter.create () in
          Meter.set_phase jm Meter.Searcher;
          let fp =
            match
              Digest_cache.probe ~meter:jm inc.inc_digests dom ~vm
                ~key:module_name
            with
            | Some fp -> (
                match fp with Some f -> Fetched f | None -> Absent)
            | None -> (
                let epoch = Xenctl.memory_epoch dom in
                let vmi =
                  Vmi.init ~meter:jm ~cache:(page_cache_for inc vm) dom
                    (profile_for dom)
                in
                match fetch_with_vmi vmi ~vm ~module_name ~meter:jm with
                | exception e -> (
                    (* An aborted read must not populate the cache: its
                       footprint covers only the pages read before the
                       fault, which cannot key the full computation. *)
                    match unreachable_of_exn e with
                    | Some reason ->
                        Tel.add "check.unreachable_fetches" 1;
                        Unreachable reason
                    | None -> raise e)
                | fetched ->
                    let fp =
                      match fetched with
                      | None -> None
                      | Some (info, artifacts) ->
                          Meter.set_phase jm Meter.Checker;
                          Some
                            (vm_fingerprint ~meter:jm ~relocs
                               ~base:info.Searcher.mi_base artifacts)
                    in
                    Digest_cache.store inc.inc_digests ~vm ~key:module_name
                      ~epoch ~footprint:(Vmi.footprint vmi) fp;
                    (match fp with Some f -> Fetched f | None -> Absent))
          in
          (vm, fp, jm)
        in
        let jobs = map_vms_deadline mode ?deadline_s ~on_timeout fingerprint_vm vms in
        List.iter (fun (_, _, jm) -> fold_job jm) jobs;
        let present =
          List.filter_map
            (fun (vm, fp, _) ->
              match fp with Fetched f -> Some (vm, f) | _ -> None)
            jobs
        in
        let missing_on =
          List.filter_map
            (fun (vm, fp, _) -> if fp = Absent then Some vm else None)
            jobs
        in
        let unreachable_on =
          List.filter_map
            (fun (vm, fp, _) ->
              match fp with Unreachable r -> Some (vm, r) | _ -> None)
            jobs
        in
        let rec pairs = function
          | [] -> []
          | (v, fp) :: rest ->
              List.map (fun (u, fq) -> ((v, u), (fp : fingerprint) = fq)) rest
              @ pairs rest
        in
        let pairwise = pairs present in
        (* Copies from different patch levels are different builds and
           always mismatch — that is a version split, not tampering, and
           the full survey would reach the same (non-)conclusion about it.
           Only a disagreement inside one cohort demands escalation. *)
        if
          List.exists
            (fun ((a, b), ok) ->
              (not ok)
              && Cloud.vm_patch_level cloud a = Cloud.vm_patch_level cloud b)
            pairwise
        then raise Escalate_to_full;
        (List.map fst present, missing_on, unreachable_on, pairwise)
    | None ->
        let fetch vm =
          Tel.with_span ?parent:root_id ~attrs:[ ("vm", Int vm) ] "vm_check"
          @@ fun _ ->
          let jm = Meter.create () in
          let r = fetch_artifacts cloud ~vm ~module_name ~meter:jm in
          (vm, r, jm)
        in
        let fetched = map_vms_deadline mode ?deadline_s ~on_timeout fetch vms in
        List.iter (fun (_, _, jm) -> fold_job jm) fetched;
        let present =
          List.filter_map
            (fun (vm, r, _) ->
              match r with Fetched x -> Some (vm, x) | _ -> None)
            fetched
        in
        let missing_on =
          List.filter_map
            (fun (vm, r, _) -> if r = Absent then Some vm else None)
            fetched
        in
        let unreachable_on =
          List.filter_map
            (fun (vm, r, _) ->
              match r with Unreachable reason -> Some (vm, reason) | _ -> None)
            fetched
        in
        let pairwise =
          Tel.with_span ~attrs:[ ("vms_present", Int (List.length present)) ]
            "checker"
          @@ fun _ ->
          match strategy with
          | Pairwise ->
              let rec pairs = function
                | [] -> []
                | (v, x) :: rest ->
                    List.map (fun (u, y) -> ((v, x), (u, y))) rest @ pairs rest
              in
              let compare_one
                  (((v, (info_v, arts_v)), (u, (info_u, arts_u))) :
                    (int * (Searcher.module_info * Artifact.t list))
                    * (int * (Searcher.module_info * Artifact.t list))) =
                let jm = Meter.create () in
                Meter.set_phase jm Meter.Checker;
                let result =
                  Checker.compare_pair ~meter:jm
                    ~base1:info_v.Searcher.mi_base arts_v
                    ~base2:info_u.Searcher.mi_base arts_u
                in
                (((v, u), result.Checker.all_match), jm)
              in
              let rs = map_vms mode compare_one (pairs present) in
              List.iter (fun (_, jm) -> fold_job jm) rs;
              List.map fst rs
          | Canonical ->
              (* Cross-buffer by construction — runs on the caller. *)
              let cm = Meter.create () in
              Meter.set_phase cm Meter.Checker;
              let prints = canonical_fingerprints ~meter:cm present in
              fold_job cm;
              let rec pairs = function
                | [] -> []
                | (v, fp) :: rest ->
                    List.map (fun (u, fq) -> ((v, fp), (u, fq))) rest
                    @ pairs rest
              in
              List.map
                (fun ((v, fp), (u, fq)) -> ((v, u), fp = fq))
                (pairs prints)
        in
        (List.map fst present, missing_on, unreachable_on, pairwise)
  in
  (* Partition the present VMs into agreement classes (the match relation
     unions clean clones into one class). The largest class, when it is a
     strict majority, is the trusted pool; everyone outside deviates. With
     no majority class the pool is inconsistent beyond attribution and
     every VM is flagged for deeper analysis (paper §III-B discussion). *)
  let agreement_classes =
    match vms_present with
    | [] -> []
    | _ ->
        let classes = ref (List.map (fun v -> [ v ]) vms_present) in
        List.iter
          (fun ((a, b), ok) ->
            if ok then begin
              let ca = List.find (List.mem a) !classes in
              let cb = List.find (List.mem b) !classes in
              if ca != cb then
                classes :=
                  (ca @ cb)
                  :: List.filter (fun c -> c != ca && c != cb) !classes
            end)
          pairwise;
        List.map (List.sort compare) !classes
        |> List.sort (fun a b -> compare (List.length b) (List.length a))
  in
  (* Deviance is judged inside each version cohort: a copy is voted on by
     peers running the same patch level, so a legitimate version split
     never drowns the majority and an infection is judged against its own
     cohort. A homogeneous pool has one cohort and this reduces exactly to
     the original whole-pool rule. A VM alone in its cohort has no peers
     and is never flagged. *)
  let cohort_of = Cloud.vm_patch_level cloud in
  let deviant_vms =
    let levels = List.sort_uniq compare (List.map cohort_of vms_present) in
    List.concat_map
      (fun level ->
        let members = List.filter (fun v -> cohort_of v = level) vms_present in
        let classes =
          List.filter_map
            (fun c ->
              match List.filter (fun v -> List.mem v members) c with
              | [] -> None
              | m -> Some m)
            agreement_classes
          |> List.sort (fun a b -> compare (List.length b) (List.length a))
        in
        match classes with
        | [] | [ _ ] -> []
        | largest :: _ ->
            if 2 * List.length largest > List.length members then
              List.filter (fun v -> not (List.mem v largest)) members
            else members)
      levels
    |> List.sort compare
  in
  let s_surveyed = List.length vms in
  let s_responded = s_surveyed - List.length unreachable_on in
  let s_voted = List.length vms_present in
  let s_verdict =
    if not (Report.quorum_met ~quorum ~surveyed:s_surveyed ~responded:s_responded)
    then
      Report.Degraded
        (Printf.sprintf "%d/%d VM(s) responded (quorum %g)" s_responded
           s_surveyed quorum)
    else if deviant_vms <> [] then Report.Infected
    else Report.Intact
  in
  (match meter with Some m -> bridge_meter m | None -> ());
  if Tel.enabled () then begin
    Tel.add "survey.runs" 1;
    Tel.add "survey.pair_comparisons" (List.length pairwise);
    Tel.add "survey.deviant_vms" (List.length deviant_vms);
    Tel.add "survey.unreachable_vms" (List.length unreachable_on);
    (match s_verdict with
    | Report.Degraded _ -> Tel.add "survey.degraded_verdicts" 1
    | _ -> ());
    Span.set_attr root "deviants" (Int (List.length deviant_vms))
  end;
  Report.
    {
      survey_module = module_name;
      vm_indices = vms;
      missing_on;
      deviant_vms;
      agreement_classes;
      pairwise_matches = pairwise;
      unreachable_on;
      s_surveyed;
      s_responded;
      s_voted;
      s_verdict;
    }

type list_discrepancy = {
  ld_module : string;
  present_on : int list;
  missing_on : int list;
}

(* The cache key for a VM's module-list walk; a guest module name can
   never collide with it (names come from 8.3-ish UNICODE_STRINGs). *)
let list_key = "__module_list__"

type list_comparison = {
  lc_discrepancies : list_discrepancy list;
  lc_unreachable : (int * string) list;
}

let survey_module_lists ?(config = Config.default) ?meter cloud =
  let incremental = config.Config.incremental in
  Tel.with_span "list_compare" @@ fun _ ->
  let vms = List.init (Cloud.vm_count cloud) Fun.id in
  (match meter with Some m -> Meter.set_phase m Meter.Searcher | None -> ());
  let names_on vm =
    let dom = Cloud.vm cloud vm in
    let walk ?cache () =
      let vmi = Vmi.init ?meter ?cache dom (profile_for dom) in
      let names =
        List.map
          (fun (i : Searcher.module_info) ->
            String.lowercase_ascii i.Searcher.mi_name)
          (Searcher.list_modules ?meter vmi)
      in
      (vmi, names)
    in
    match incremental with
    | None -> snd (walk ())
    | Some inc -> (
        match Digest_cache.probe ?meter inc.inc_lists dom ~vm ~key:list_key with
        | Some names -> names
        | None ->
            let epoch = Xenctl.memory_epoch dom in
            let vmi, names = walk ~cache:(page_cache_for inc vm) () in
            Digest_cache.store inc.inc_lists ~vm ~key:list_key ~epoch
              ~footprint:(Vmi.footprint vmi) names;
            names)
  in
  (* A VM whose walk aborts on a fault drops out of the comparison
     entirely: it neither vouches for a module nor counts as missing one.
     Treating an unreadable list as "everything missing" would turn every
     fault burst into a spurious DKOM alarm. *)
  let outcomes =
    List.map
      (fun vm ->
        match names_on vm with
        | names -> (vm, Fetched names)
        | exception e -> (
            match unreachable_of_exn e with
            | Some reason ->
                Tel.add "check.unreachable_fetches" 1;
                (vm, Unreachable reason)
            | None -> raise e))
      vms
  in
  let listings =
    List.filter_map
      (fun (vm, o) ->
        match o with Fetched names -> Some (vm, names) | _ -> None)
      outcomes
  in
  let lc_unreachable =
    List.filter_map
      (fun (vm, o) ->
        match o with Unreachable r -> Some (vm, r) | _ -> None)
      outcomes
  in
  let reachable = List.map fst listings in
  let all_names =
    List.sort_uniq compare (List.concat_map snd listings)
  in
  let lc_discrepancies =
    List.filter_map
      (fun name ->
        let present_on =
          List.filter_map
            (fun (vm, names) -> if List.mem name names then Some vm else None)
            listings
        in
        let missing_on =
          List.filter (fun v -> not (List.mem v present_on)) reachable
        in
        if missing_on = [] then None
        else Some { ld_module = name; present_on; missing_on })
      all_names
  in
  { lc_discrepancies; lc_unreachable }

let compare_module_lists ?config ?meter cloud =
  (survey_module_lists ?config ?meter cloud).lc_discrepancies

type watch_source = Watch_module of string | Watch_lists

let watch_source_key = function
  | Watch_module m -> m
  | Watch_lists -> "(module lists)"

let watch_pfns inc dom ~vm ~watch =
  let epoch = Xenctl.memory_epoch dom in
  let fp cache key =
    Option.value ~default:[]
      (Digest_cache.footprint_pfns cache ~vm ~key ~epoch)
  in
  let module_pfns name =
    (* Prefer the Merkle print's footprint (it carries the page→leaf
       index); entries cached as flat fingerprints cover the same pages. *)
    match Digest_cache.footprint_pfns inc.inc_merkle ~vm ~key:name ~epoch with
    | Some pfns -> pfns
    | None -> fp inc.inc_digests name
  in
  List.map (fun name -> (Watch_module name, module_pfns name)) watch
  @ [ (Watch_lists, fp inc.inc_lists list_key) ]

(* Cross-check the two Dom0 read channels over the cached watch
   footprints: the page-granular foreign mapping (what every checker
   read uses — and what a SEVurity-style in-guest adversary can shim)
   against the hypervisor's own byte-granular physical read path (which
   it cannot). Any byte difference means something is lying to the
   checker about a page it vouches for. A page whose map faults is
   skipped rather than flagged: a dropped mapping is a fault-plan event,
   not evidence of tampering. *)
let audit_anchors ?meter inc cloud ~watch =
  let page = Mc_memsim.Phys.frame_size in
  let mismatches = ref [] in
  for vm = 0 to Cloud.vm_count cloud - 1 do
    let dom = Cloud.vm cloud vm in
    List.iter
      (fun (src, pfns) ->
        match src with
        | Watch_lists -> ()
        | Watch_module m ->
            let tampered =
              List.exists
                (fun pfn ->
                  match Xenctl.map_foreign_page ?meter dom pfn with
                  | mapped ->
                      let raw = Bytes.create page in
                      Xenctl.read_foreign_pa ?meter dom (pfn * page) raw 0
                        page;
                      not (Bytes.equal mapped raw)
                  | exception Xenctl.Map_fault _ -> false)
                pfns
            in
            if tampered then mismatches := (m, vm) :: !mismatches)
      (watch_pfns inc dom ~vm ~watch)
  done;
  List.sort_uniq compare !mismatches

let merkle_root inc cloud ~vm ~module_name =
  let dom = Cloud.vm cloud vm in
  let epoch = Xenctl.memory_epoch dom in
  match Digest_cache.peek inc.inc_merkle ~vm ~key:module_name ~epoch with
  | Some (Some mp) ->
      (* One digest over the derived fingerprint (flat digests plus
         section roots, sorted by kind): equal across clean copies of the
         same build regardless of load base, so it doubles as the
         out-of-band comparison value an auditor pins. *)
      let ctx = Md5.init () in
      List.iter
        (fun (k, d) -> Md5.update_string ctx (k ^ ":" ^ d ^ "\n"))
        (merkle_fingerprint_of mp);
      Some (Md5.to_hex (Md5.final ctx))
  | Some None | None -> None

let phase_seconds costs outcome =
  let sum phase =
    List.fold_left
      (fun acc w -> acc +. Meter.cpu_seconds costs (Meter.get w.work_meter phase))
      0.0 outcome.work
  in
  {
    searcher_s = sum Meter.Searcher;
    parser_s = sum Meter.Parser;
    checker_s = sum Meter.Checker;
  }

let per_vm_seconds costs outcome =
  List.map
    (fun w -> Meter.total_cpu_seconds costs w.work_meter)
    outcome.work
