module Le = Mc_util.Le

type stats = { adjusted : int; mismatched_candidates : int }

let base_byte base i = (base lsr (8 * i)) land 0xFF

(* Algorithm 2, lines 1–9: offset <- 1-based index of the first byte at
   which the two (little-endian) base addresses differ. *)
let base_diff_offset ~base1 ~base2 =
  let rec scan i =
    if i > 4 then None
    else if base_byte base1 (i - 1) <> base_byte base2 (i - 1) then Some i
    else scan (i + 1)
  in
  scan 1

let mask32 = 0xFFFFFFFF

let adjust_pair ~base1 ~base2 data1 data2 =
  if Bytes.length data1 <> Bytes.length data2 then
    invalid_arg "Rva.adjust_pair: buffers must have equal length";
  match base_diff_offset ~base1 ~base2 with
  | None -> { adjusted = 0; mismatched_candidates = 0 }
  | Some offset ->
      let len = Bytes.length data1 in
      let adjusted = ref 0 in
      let mismatched = ref 0 in
      let j = ref 0 in
      while !j < len do
        if Bytes.get data1 !j <> Bytes.get data2 !j then begin
          (* Lines 13–14: the absolute address starts [offset - 1] bytes
             before the detected difference. *)
          let start = !j - offset + 1 in
          if start >= 0 && start + 4 <= len then begin
            let a1 = Le.get_u32_int data1 start in
            let a2 = Le.get_u32_int data2 start in
            let rva1 = (a1 - base1) land mask32 in
            let rva2 = (a2 - base2) land mask32 in
            if rva1 = rva2 then begin
              (* Lines 17–19: replace both absolute addresses with the
                 common RVA. *)
              Le.set_u32_int data1 start rva1;
              Le.set_u32_int data2 start rva2;
              incr adjusted
            end
            else incr mismatched;
            (* Line 22 (as printed, "j <- j - offset + 1 - 4", is garbled;
               the evident intent is to resume scanning just past the
               4-byte candidate address). *)
            j := start + 4
          end
          else begin
            incr mismatched;
            incr j
          end
        end
        else incr j
      done;
      { adjusted = !adjusted; mismatched_candidates = !mismatched }

type canonical_stats = {
  slots_detected : int;
  slots_unanimous : int;
  slots_majority : int;
  deviants : (int * int list) list;
}

let canonicalize ~bases buffers =
  let n = Array.length buffers in
  if n < 2 then invalid_arg "Rva.canonicalize: need at least two buffers";
  if Array.length bases <> n then
    invalid_arg "Rva.canonicalize: bases/buffers length mismatch";
  let len = Bytes.length buffers.(0) in
  Array.iter
    (fun b ->
      if Bytes.length b <> len then
        invalid_arg "Rva.canonicalize: buffers must have equal length")
    buffers;
  (* Pairwise offsets against buffer 0 locate slot starts, exactly as in
     the 2-way algorithm; buffers whose base equals base 0 cannot reveal
     slots against it, so fall back to any differing-base partner. *)
  let offset_vs i =
    base_diff_offset ~base1:bases.(0) ~base2:bases.(i)
  in
  let detected = ref 0 in
  let unanimous = ref 0 in
  let majority_slots = ref 0 in
  let deviants = ref [] in
  let j = ref 0 in
  while !j < len do
    (* Find a buffer differing from buffer 0 at j with a usable offset. *)
    let rec witness i =
      if i >= n then None
      else if Bytes.get buffers.(i) !j <> Bytes.get buffers.(0) !j then
        match offset_vs i with
        | Some off -> Some off
        | None -> witness (i + 1)
      else witness (i + 1)
    in
    match witness 1 with
    | None -> incr j
    | Some offset ->
        let start = !j - offset + 1 in
        if start < 0 || start + 4 > len then incr j
        else begin
          incr detected;
          let values = Array.map (fun b -> Le.get_u32_int b start) buffers in
          let rvas =
            Array.mapi (fun i v -> (v - bases.(i)) land mask32) values
          in
          (* Majority RVA, voting by distinct load base: copies that
             share a base agree on the implied RVA of any byte range
             trivially, so they carry one vote together — counting them
             separately manufactures a "relocation slot" out of plain
             content divergence whenever base allocation collides. *)
          let support = Hashtbl.create 4 in
          Array.iteri
            (fun i _ ->
              let r = rvas.(i) in
              let bs =
                Option.value ~default:[] (Hashtbl.find_opt support r)
              in
              if not (List.mem bases.(i) bs) then
                Hashtbl.replace support r (bases.(i) :: bs))
            buffers;
          let total_bases =
            Array.to_list bases |> List.sort_uniq compare |> List.length
          in
          let best_rva, best_support =
            Hashtbl.fold
              (fun r bs ((_, bc) as acc) ->
                let c = List.length bs in
                if c > bc then (r, c) else acc)
              support (0, 0)
          in
          (* A genuine slot holds [base_i + rva], so two distinct-base
             copies with the same raw word prove the position is plain
             content for those copies. That only disqualifies the slot
             when such a pair reaches into the winning RVA group (a
             misaligned word inside an infected copy's divergence can
             coincidentally rva-match one clean copy and outvote the
             identical remaining clean ones). A pair entirely outside
             the winner — e.g. two copies of one coordinated infection
             whose shifted code overlays a real slot — must not veto
             the clean majority's adjustment, or the clean copies are
             left holding per-base absolute addresses and fragment. *)
          let content_veto = ref false in
          for a = 0 to n - 1 do
            for b = a + 1 to n - 1 do
              if
                bases.(a) <> bases.(b)
                && values.(a) = values.(b)
                && (rvas.(a) = best_rva || rvas.(b) = best_rva)
              then content_veto := true
            done
          done;
          if Array.for_all (Int.equal best_rva) rvas then begin
            incr unanimous;
            Array.iter (fun b -> Le.set_u32_int b start best_rva) buffers;
            j := start + 4
          end
          else if (not !content_veto) && 2 * best_support > total_bases
          then begin
            incr majority_slots;
            let off_deviants = ref [] in
            Array.iteri
              (fun i b ->
                if rvas.(i) = best_rva then Le.set_u32_int b start best_rva
                else off_deviants := i :: !off_deviants)
              buffers;
            deviants := (start, List.rev !off_deviants) :: !deviants;
            j := start + 4
          end
          else
            (* No majority RVA: this difference is content divergence (an
               infection), not a relocation slot. Advance one byte so the
               scan stays synchronized with genuine slots further on. *)
            incr j
        end
  done;
  {
    slots_detected = !detected;
    slots_unanimous = !unanimous;
    slots_majority = !majority_slots;
    deviants = List.rev !deviants;
  }

let adjust_with_relocs ~base ~section_rva ~relocs data =
  let len = Bytes.length data in
  List.fold_left
    (fun count rva ->
      let off = rva - section_rva in
      if off >= 0 && off + 4 <= len then begin
        let v = Le.get_u32_int data off in
        Le.set_u32_int data off ((v - base) land mask32);
        count + 1
      end
      else count)
    0 relocs

(* A reloc slot is 4 bytes, so a slot overlapping a window either lies
   fully inside it or reaches at most 3 bytes past an edge. *)
let reloc_margin = 3

let adjust_window ~base ~section_rva ~window_off ~relocs data =
  adjust_with_relocs ~base ~section_rva:(section_rva + window_off) ~relocs data
