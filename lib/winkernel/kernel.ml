module As = Mc_memsim.Addr_space
module Phys = Mc_memsim.Phys
module Rng = Mc_util.Rng

type t = {
  t_fs : Fs.t;
  t_phys : Phys.t;
  t_aspace : As.t;
  t_seed : int64;
  t_generation : int;
  t_alignment : int;
  t_variant : Layout.os_variant;
  t_list_head : int;
  rng : Rng.t;
  mutable pool_cursor : int;
  mutable driver_cursor : int;
  mutable loaded : (string * int) list;  (** name (lowercase) → LDR entry VA *)
  mutable exports_map : (string * (string * int) list) list;
      (** name (lowercase) → (symbol, absolute VA) — the kernel's view of
          every loaded module's export surface, fed to the loader to bind
          imports. *)
}

type error =
  | File_not_found of string
  | Already_loaded of string
  | Load_error of Loader.error

let error_to_string = function
  | File_not_found path -> Printf.sprintf "file not found: %s" path
  | Already_loaded name -> Printf.sprintf "module already loaded: %s" name
  | Load_error e -> Loader.error_to_string e

let fs t = t.t_fs

let aspace t = t.t_aspace

let phys t = t.t_phys

let cr3 t = As.cr3 t.t_aspace

let seed t = t.t_seed

let generation t = t.t_generation

let module_alignment t = t.t_alignment

let os_variant t = t.t_variant

let list_head t = t.t_list_head

let page = Phys.frame_size

let align_up v a = (v + a - 1) / a * a

(* Nonpaged-pool bump allocator; maps backing pages on demand. *)
let pool_alloc t size =
  let va = align_up t.pool_cursor 8 in
  t.pool_cursor <- va + size;
  if t.pool_cursor > Layout.pool_end then failwith "Kernel: pool exhausted";
  let first_page = va land lnot (page - 1) in
  let last_page = (va + size - 1) land lnot (page - 1) in
  As.map_range t.t_aspace ~va:first_page
    ~size:(last_page + page - first_page);
  va

(* Pick the next driver base: a random 0–15 alignment-slot gap models the
   allocation jitter that gives every VM different bases. *)
let pick_base t size =
  let gap = Rng.int t.rng 16 in
  let base = align_up t.driver_cursor t.t_alignment + (gap * t.t_alignment) in
  if base + size > Layout.driver_region_end then
    failwith "Kernel: driver region exhausted";
  t.driver_cursor <- base + align_up size t.t_alignment;
  base

let find_module t name =
  Ldr.walk t.t_aspace ~head_va:t.t_list_head
  |> List.find_opt (fun (e : Ldr.entry) ->
         Unicode.equal_ascii_ci e.base_dll_name name)

let modules t = Ldr.walk t.t_aspace ~head_va:t.t_list_head

let resolve_export t ~dll ~symbol =
  Option.bind
    (List.assoc_opt (String.lowercase_ascii dll) t.exports_map)
    (List.assoc_opt symbol)

let module_exports t name =
  Option.value ~default:[]
    (List.assoc_opt (String.lowercase_ascii name) t.exports_map)

let module_names t = List.map (fun (e : Ldr.entry) -> e.base_dll_name) (modules t)

let rec load_module_rec t ~loading name =
  if List.mem_assoc (String.lowercase_ascii name) t.loaded then
    Error (Already_loaded name)
  else begin
    let path = Fs.module_path name in
    match Fs.read_file t.t_fs path with
    | None -> Error (File_not_found path)
    | Some file -> (
        (* Dependent images first, as MmLoadSystemImage does: an import
           from a module that is not loaded yet is satisfied by loading
           its file from disk before this one binds. Imports whose file
           is absent (or whose load fails) still surface as
           [Unresolved_import] from the binding pass below. *)
        (match Mc_pe.Read.parse ~layout:File file with
        | Ok image ->
            Mc_pe.Import.parse ~layout:File file image
            |> List.map (fun (e : Mc_pe.Import.entry) ->
                   String.lowercase_ascii e.imp_dll)
            |> List.sort_uniq compare
            |> List.iter (fun dll ->
                   if
                     (not (List.mem_assoc dll t.loaded))
                     && (not (List.mem dll loading))
                     && Fs.read_file t.t_fs (Fs.module_path dll) <> None
                   then
                     ignore
                       (load_module_rec t
                          ~loading:(String.lowercase_ascii name :: loading)
                          dll))
        | Error _ -> ());
        let size_of_image =
          match Mc_pe.Read.parse ~layout:File file with
          | Ok image -> image.optional_header.size_of_image
          | Error _ -> Bytes.length file * 2 (* loader will reject it *)
        in
        let resolver ~dll ~symbol = resolve_export t ~dll ~symbol in
        match
          Loader.load_at ~resolver t.t_aspace
            ~base:(pick_base t size_of_image)
            file
        with
        | Error e -> Error (Load_error e)
        | Ok loaded ->
            let entry_va = pool_alloc t Layout.Ldr_entry.size in
            let full_name = path in
            let full_buf = pool_alloc t (2 * String.length full_name) in
            let base_buf = pool_alloc t (2 * String.length name) in
            Ldr.write_entry t.t_aspace ~entry_va ~dll_base:loaded.base
              ~entry_point:loaded.entry_point
              ~size_of_image:loaded.size_of_image ~full_name_buffer_va:full_buf
              ~full_dll_name:full_name ~base_name_buffer_va:base_buf
              ~base_dll_name:name;
            Ldr.link_tail t.t_aspace ~head_va:t.t_list_head ~entry_va;
            t.loaded <- (String.lowercase_ascii name, entry_va) :: t.loaded;
            (* Publish the module's exports for later loads to link
               against. *)
            (match Mc_pe.Read.parse ~layout:File file with
            | Ok image ->
                let exports =
                  Mc_pe.Export.parse ~layout:File file image
                  |> List.map (fun (sym, rva) -> (sym, loaded.Loader.base + rva))
                in
                if exports <> [] then
                  t.exports_map <-
                    (String.lowercase_ascii name, exports) :: t.exports_map
            | Error _ -> ());
            Ok loaded)
  end

let load_module t name = load_module_rec t ~loading:[] name

let unload_module t name =
  let key = String.lowercase_ascii name in
  match List.assoc_opt key t.loaded with
  | None -> false
  | Some entry_va ->
      (* Frames stay allocated (no reclamation in this simulation); the
         module simply disappears from the load list, which is all the
         introspection side can observe. *)
      Ldr.unlink t.t_aspace ~entry_va;
      t.loaded <- List.remove_assoc key t.loaded;
      t.exports_map <- List.remove_assoc key t.exports_map;
      true

type snapshot = {
  snap_phys : Phys.t;  (** Deep copy, never mutated after capture. *)
  snap_cr3 : int;
  snap_fs : Fs.t;  (** Clone, never mutated after capture. *)
  snap_seed : int64;
  snap_generation : int;
  snap_alignment : int;
  snap_variant : Layout.os_variant;
  snap_list_head : int;
  snap_rng : Rng.t;
  snap_pool_cursor : int;
  snap_driver_cursor : int;
  snap_loaded : (string * int) list;
  snap_exports_map : (string * (string * int) list) list;
}

let snapshot t =
  {
    snap_phys = Phys.deep_copy t.t_phys;
    snap_cr3 = As.cr3 t.t_aspace;
    snap_fs = Fs.clone t.t_fs;
    snap_seed = t.t_seed;
    snap_generation = t.t_generation;
    snap_alignment = t.t_alignment;
    snap_variant = t.t_variant;
    snap_list_head = t.t_list_head;
    snap_rng = Rng.copy t.rng;
    snap_pool_cursor = t.pool_cursor;
    snap_driver_cursor = t.driver_cursor;
    snap_loaded = t.loaded;
    snap_exports_map = t.exports_map;
  }

let restore s =
  (* Copy out of the snapshot again, so one snapshot restores any number
     of times. *)
  let phys = Phys.deep_copy s.snap_phys in
  {
    t_fs = Fs.clone s.snap_fs;
    t_phys = phys;
    t_aspace = As.of_cr3 phys s.snap_cr3;
    t_seed = s.snap_seed;
    t_generation = s.snap_generation;
    t_alignment = s.snap_alignment;
    t_variant = s.snap_variant;
    t_list_head = s.snap_list_head;
    rng = Rng.copy s.snap_rng;
    pool_cursor = s.snap_pool_cursor;
    driver_cursor = s.snap_driver_cursor;
    loaded = s.snap_loaded;
    exports_map = s.snap_exports_map;
  }

let boot ?(module_alignment = Layout.default_module_alignment)
    ?(load_standard = true) ?(generation = 0)
    ?(os_variant = Layout.Xp_sp2) ~fs ~seed () =
  let t_phys = Phys.create () in
  let t_aspace = As.create t_phys in
  (* Kernel globals region: 4 pages covering both variants' list heads. *)
  As.map_range t_aspace ~va:Layout.globals_va ~size:(4 * page);
  let t_list_head = Layout.list_head_of_variant os_variant in
  Ldr.init_list_head t_aspace t_list_head;
  let rng =
    Rng.create (Int64.add seed (Int64.of_int (generation * 7919)))
  in
  let t =
    {
      t_fs = fs;
      t_phys;
      t_aspace;
      t_seed = seed;
      t_generation = generation;
      t_alignment = module_alignment;
      t_variant = os_variant;
      t_list_head;
      rng;
      pool_cursor = Layout.pool_start;
      driver_cursor = Layout.driver_region_start;
      loaded = [];
      exports_map = [];
    }
  in
  if load_standard then begin
    let rec load_all = function
      | [] -> Ok t
      | name :: rest -> (
          match load_module t name with
          | Ok _ -> load_all rest
          | Error e -> Error e)
    in
    load_all Mc_pe.Catalog.standard_modules
  end
  else Ok t
