let wall = Unix.gettimeofday
