(** Metric instruments: monotonic counters, gauges, and fixed-bucket
    histograms with quantile estimation.

    Every instrument is safe to update concurrently from pool worker
    domains: counters are atomics, gauges and histograms take a private
    mutex per instrument. Naming and deduplication live in {!Registry}. *)

type counter

val counter_create : string -> counter

val counter_name : counter -> string

val counter_add : counter -> int -> unit
(** [counter_add c n] bumps by [n]; negative [n] raises
    [Invalid_argument] (counters are monotonic). *)

val counter_value : counter -> int

type gauge

val gauge_create : string -> gauge

val gauge_name : gauge -> string

val gauge_set : gauge -> float -> unit

val gauge_value : gauge -> float
(** [nan] until first set. *)

type histogram

val default_buckets : float array
(** Geometric upper bounds, 1 µs to ~8.6 ks (doubling), suiting both
    wall-clock and virtual-clock second measurements. *)

val histogram_create : ?buckets:float array -> string -> histogram
(** [buckets] are the finite upper bounds of each bucket, strictly
    increasing; an implicit overflow bucket catches the rest. Raises
    [Invalid_argument] when empty or unsorted. *)

val histogram_name : histogram -> string

val observe : histogram -> float -> unit
(** Non-finite observations are dropped. *)

type histogram_summary = {
  h_name : string;
  h_count : int;
  h_sum : float;
  h_min : float;  (** [nan] when empty. *)
  h_max : float;
  h_buckets : (float * int) list;
      (** (upper bound, count) per bucket; the overflow bucket reports
          [infinity]. *)
}

val histogram_summary : histogram -> histogram_summary
(** A consistent snapshot (taken under the instrument's lock). *)

val quantile : histogram_summary -> float -> float
(** [quantile s q], [q] in [0,1]: estimated by linear interpolation inside
    the bucket holding the [q]-th observation, clamped to the observed
    [h_min]/[h_max] (so estimates are always bounded by real data and
    monotone in [q]). [nan] on an empty histogram; raises
    [Invalid_argument] outside [0,1]. *)
