(** The process-wide telemetry collector.

    One global registry, disabled by default: every instrumented hot path
    first checks a single atomic flag, so an un-observed run pays one load
    per event and nothing else. When enabled, spans are collected into a
    mutex-guarded list and metric instruments are interned by name in a
    mutex-guarded table; the instruments themselves are domain-safe
    ({!Metric}), so pool workers record freely.

    Span nesting is tracked with a per-domain stack (domain-local
    storage): a span opened while another is open on the same domain
    becomes its child. Work handed to another domain — e.g.
    {!Mc_parallel.Pool.parallel_map} — does not inherit a parent
    automatically; pass [?parent] explicitly to keep the trace connected
    across the handoff. *)

val set_enabled : bool -> unit
(** Also the master reset switch: enabling from a disabled state clears
    nothing; call {!reset} for a fresh run. *)

val enabled : unit -> bool

val reset : unit -> unit
(** Drop all finished spans and all instruments (counters, gauges,
    histograms). Open spans on live stacks survive; their eventual close
    is discarded if the registry was reset meanwhile. *)

(** {1 Spans} *)

val current_span_id : unit -> int option
(** The innermost open span on this domain, for explicit [?parent]
    threading across pool handoffs. *)

val with_span :
  ?attrs:(string * Span.attr) list ->
  ?parent:int ->
  string ->
  (Span.t -> 'a) ->
  'a
(** [with_span name f] opens a span, runs [f] with it (so [f] can add
    attributes or virtual times), closes it — also on exception — and
    collects it. While the registry is disabled, [f] runs with a shared
    inert span and nothing is recorded. *)

(** {1 Metrics}

    Instruments are interned: the first call under a name creates the
    instrument, later calls return the same one. A name reused across
    kinds raises [Invalid_argument]. While disabled, updates through
    these helpers are dropped. *)

val counter : string -> Metric.counter

val add : string -> int -> unit
(** [add name n] = [Metric.counter_add (counter name) n], skipped while
    disabled. *)

val gauge : string -> Metric.gauge

val set_gauge : string -> float -> unit

val histogram : ?buckets:float array -> string -> Metric.histogram

val observe : string -> float -> unit
(** Record into the named histogram (default buckets), skipped while
    disabled. *)

(** {1 Snapshots} *)

type snapshot = {
  snap_spans : Span.t list;  (** In completion order. *)
  snap_counters : (string * int) list;  (** Sorted by name. *)
  snap_gauges : (string * float) list;
  snap_histograms : Metric.histogram_summary list;
}

val snapshot : unit -> snapshot
(** Readable whether or not the registry is enabled (a disabled registry
    just snapshots empty). *)
