let add_counts ~prefix pairs =
  if Registry.enabled () then
    List.iter
      (fun (key, v) -> if v <> 0 then Registry.add (prefix ^ "." ^ key) v)
      pairs
