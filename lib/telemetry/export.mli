(** Exporters: JSONL traces for machines, summary tables for humans.

    The JSONL form is one self-describing JSON object per line — spans
    first (in completion order), then one point per counter, gauge, and
    histogram — so a trace can be streamed, grepped, or loaded row-wise
    without a closing bracket ever mattering. *)

val jsonl : Registry.snapshot -> string list
(** One compact JSON document per element, no trailing newline. *)

val write : path:string -> Registry.snapshot -> unit
(** [write ~path snap] truncates [path] and writes {!jsonl}, one line
    each. *)

val summary : Registry.snapshot -> string
(** Human-readable tables: spans aggregated by name (count, wall totals,
    virtual totals when attributed), then counters, gauges, and histogram
    quantiles. Sections with no data are omitted; the empty snapshot
    renders a one-line notice. *)
