let enabled_flag = Atomic.make false

let set_enabled v = Atomic.set enabled_flag v

let enabled () = Atomic.get enabled_flag

(* --- span collection --------------------------------------------------- *)

let next_id = Atomic.make 1

let lock = Mutex.create ()

let locked f =
  Mutex.lock lock;
  Fun.protect ~finally:(fun () -> Mutex.unlock lock) f

let finished : Span.t list ref = ref []

(* Epoch of the current run: bumped by [reset] so spans opened before a
   reset are recognised and dropped at close instead of polluting the next
   run's trace. *)
let epoch = Atomic.make 0

let stack_key : (int * Span.t list) ref Domain.DLS.key =
  Domain.DLS.new_key (fun () -> ref (Atomic.get epoch, []))

let stack () =
  let cell = Domain.DLS.get stack_key in
  let e = Atomic.get epoch in
  if fst !cell <> e then cell := (e, []);
  cell

let current_span_id () =
  match snd !(stack ()) with
  | [] -> None
  | s :: _ -> Some s.Span.id

let dummy_span =
  Span.
    {
      id = 0;
      parent = None;
      name = "(disabled)";
      domain = 0;
      wall_start = 0.0;
      wall_end = 0.0;
      virt_start = None;
      virt_end = None;
      attrs = [];
    }

let with_span ?(attrs = []) ?parent name f =
  if not (enabled ()) then f dummy_span
  else begin
    let cell = stack () in
    let born = Atomic.get epoch in
    let parent =
      match parent with
      | Some _ as p -> p
      | None -> ( match snd !cell with [] -> None | s :: _ -> Some s.Span.id)
    in
    let span =
      Span.
        {
          id = Atomic.fetch_and_add next_id 1;
          parent;
          name;
          domain = (Domain.self () :> int);
          wall_start = Clock.wall ();
          wall_end = nan;
          virt_start = None;
          virt_end = None;
          attrs;
        }
    in
    cell := (fst !cell, span :: snd !cell);
    let close () =
      span.Span.wall_end <- Clock.wall ();
      (let cell = stack () in
       match snd !cell with
       | s :: rest when s == span -> cell := (fst !cell, rest)
       | _ -> () (* reset() intervened, or closing off-domain *));
      if Atomic.get epoch = born then
        locked (fun () -> finished := span :: !finished)
    in
    Fun.protect ~finally:close (fun () -> f span)
  end

(* --- instruments ------------------------------------------------------- *)

type instr =
  | C of Metric.counter
  | G of Metric.gauge
  | H of Metric.histogram

let instruments : (string, instr) Hashtbl.t = Hashtbl.create 64

let intern name make match_kind =
  locked (fun () ->
      match Hashtbl.find_opt instruments name with
      | Some i -> (
          match match_kind i with
          | Some v -> v
          | None ->
              invalid_arg
                (Printf.sprintf "Registry: %S already names another instrument kind"
                   name))
      | None ->
          let v, i = make () in
          Hashtbl.replace instruments name i;
          v)

let counter name =
  intern name
    (fun () ->
      let c = Metric.counter_create name in
      (c, C c))
    (function C c -> Some c | _ -> None)

let add name n = if enabled () then Metric.counter_add (counter name) n

let gauge name =
  intern name
    (fun () ->
      let g = Metric.gauge_create name in
      (g, G g))
    (function G g -> Some g | _ -> None)

let set_gauge name v = if enabled () then Metric.gauge_set (gauge name) v

let histogram ?buckets name =
  intern name
    (fun () ->
      let h = Metric.histogram_create ?buckets name in
      (h, H h))
    (function H h -> Some h | _ -> None)

let observe name v = if enabled () then Metric.observe (histogram name) v

let reset () =
  Atomic.incr epoch;
  locked (fun () ->
      finished := [];
      Hashtbl.reset instruments)

(* --- snapshots --------------------------------------------------------- *)

type snapshot = {
  snap_spans : Span.t list;
  snap_counters : (string * int) list;
  snap_gauges : (string * float) list;
  snap_histograms : Metric.histogram_summary list;
}

let snapshot () =
  let spans, instrs =
    locked (fun () ->
        ( List.rev !finished,
          Hashtbl.fold (fun _ i acc -> i :: acc) instruments [] ))
  in
  let by_name f = List.sort (fun a b -> compare (f a) (f b)) in
  {
    snap_spans = spans;
    snap_counters =
      List.filter_map
        (function
          | C c -> Some (Metric.counter_name c, Metric.counter_value c)
          | _ -> None)
        instrs
      |> by_name fst;
    snap_gauges =
      List.filter_map
        (function
          | G g -> Some (Metric.gauge_name g, Metric.gauge_value g) | _ -> None)
        instrs
      |> by_name fst;
    snap_histograms =
      List.filter_map
        (function H h -> Some (Metric.histogram_summary h) | _ -> None)
        instrs
      |> by_name (fun s -> s.Metric.h_name);
  }
