module Json = Mc_util.Json
module Table = Mc_util.Table

let counter_json (name, v) =
  Json.Obj
    [ ("type", String "counter"); ("name", String name); ("value", Int v) ]

let gauge_json (name, v) =
  Json.Obj
    [ ("type", String "gauge"); ("name", String name); ("value", Float v) ]

let histogram_json (s : Metric.histogram_summary) =
  Json.Obj
    [
      ("type", String "histogram");
      ("name", String s.h_name);
      ("count", Int s.h_count);
      ("sum", Float s.h_sum);
      ("min", Float s.h_min);
      ("max", Float s.h_max);
      ("p50", Float (Metric.quantile s 0.5));
      ("p90", Float (Metric.quantile s 0.9));
      ("p99", Float (Metric.quantile s 0.99));
      ( "buckets",
        List
          (List.map
             (fun (ub, n) ->
               Json.Obj [ ("le", Float ub); ("count", Int n) ])
             s.h_buckets) );
    ]

let jsonl (snap : Registry.snapshot) =
  List.map (fun s -> Json.to_string (Span.to_json s)) snap.snap_spans
  @ List.map (fun c -> Json.to_string (counter_json c)) snap.snap_counters
  @ List.map (fun g -> Json.to_string (gauge_json g)) snap.snap_gauges
  @ List.map (fun h -> Json.to_string (histogram_json h)) snap.snap_histograms

let write ~path snap =
  let oc = open_out path in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () ->
      List.iter
        (fun line ->
          output_string oc line;
          output_char oc '\n')
        (jsonl snap))

(* --- summary ----------------------------------------------------------- *)

let ms v = Printf.sprintf "%.3f ms" (v *. 1e3)

let span_rows spans =
  (* Aggregate by name, preserving first-seen order. *)
  let order = ref [] in
  let tbl = Hashtbl.create 16 in
  List.iter
    (fun (s : Span.t) ->
      let wall = Span.wall_duration s in
      let virt =
        match (s.virt_start, s.virt_end) with
        | Some a, Some b -> b -. a
        | _ -> 0.0
      in
      match Hashtbl.find_opt tbl s.name with
      | None ->
          order := s.name :: !order;
          Hashtbl.replace tbl s.name (1, wall, virt)
      | Some (n, w, v) -> Hashtbl.replace tbl s.name (n + 1, w +. wall, v +. virt))
    spans;
  List.rev_map
    (fun name ->
      let n, wall, virt = Hashtbl.find tbl name in
      [
        name;
        string_of_int n;
        ms wall;
        ms (wall /. float_of_int n);
        (if virt > 0.0 then ms virt else "-");
      ])
    !order

let summary (snap : Registry.snapshot) =
  let buf = Buffer.create 1024 in
  let section title body =
    Buffer.add_string buf title;
    Buffer.add_char buf '\n';
    Buffer.add_string buf body
  in
  if snap.snap_spans <> [] then
    section "spans (by name)"
      (Table.render
         ~header:[ "span"; "count"; "wall total"; "wall mean"; "virtual total" ]
         (span_rows snap.snap_spans));
  if snap.snap_counters <> [] then
    section "counters"
      (Table.render ~header:[ "counter"; "value" ]
         (List.map
            (fun (name, v) -> [ name; string_of_int v ])
            snap.snap_counters));
  if snap.snap_gauges <> [] then
    section "gauges"
      (Table.render ~header:[ "gauge"; "value" ]
         (List.map
            (fun (name, v) -> [ name; Printf.sprintf "%g" v ])
            snap.snap_gauges));
  if snap.snap_histograms <> [] then
    section "histograms"
      (Table.render
         ~header:[ "histogram"; "count"; "p50"; "p90"; "p99"; "min"; "max" ]
         (List.map
            (fun (s : Metric.histogram_summary) ->
              let q p = ms (Metric.quantile s p) in
              [
                s.h_name;
                string_of_int s.h_count;
                q 0.5;
                q 0.9;
                q 0.99;
                (if s.h_count = 0 then "-" else ms s.h_min);
                (if s.h_count = 0 then "-" else ms s.h_max);
              ])
            snap.snap_histograms));
  if Buffer.length buf = 0 then "telemetry: no spans or metrics recorded\n"
  else Buffer.contents buf
