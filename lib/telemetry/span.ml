type attr =
  | Int of int
  | Float of float
  | String of string
  | Bool of bool

type t = {
  id : int;
  parent : int option;
  name : string;
  domain : int;
  wall_start : float;
  mutable wall_end : float;
  mutable virt_start : float option;
  mutable virt_end : float option;
  mutable attrs : (string * attr) list;
}

let set_attr t k v =
  if t.id > 0 then t.attrs <- (k, v) :: List.remove_assoc k t.attrs

let set_virtual t ~start ~finish =
  if t.id > 0 then begin
    t.virt_start <- Some start;
    t.virt_end <- Some finish
  end

let wall_duration t = t.wall_end -. t.wall_start

let attr_to_json = function
  | Int i -> Mc_util.Json.Int i
  | Float f -> Mc_util.Json.Float f
  | String s -> Mc_util.Json.String s
  | Bool b -> Mc_util.Json.Bool b

let to_json t =
  let open Mc_util.Json in
  let virt =
    match (t.virt_start, t.virt_end) with
    | Some s, Some e -> [ ("virt_start_s", Float s); ("virt_end_s", Float e) ]
    | _ -> []
  in
  Obj
    ([
       ("type", String "span");
       ("name", String t.name);
       ("id", Int t.id);
       ( "parent",
         match t.parent with Some p -> Int p | None -> Null );
       ("domain", Int t.domain);
       ("wall_start_s", Float t.wall_start);
       ("wall_end_s", Float t.wall_end);
       ("wall_dur_s", Float (wall_duration t));
     ]
    @ virt
    @ [
        ( "attrs",
          Obj (List.rev_map (fun (k, v) -> (k, attr_to_json v)) t.attrs) );
      ])
