(** The wall-clock source used by every span and histogram observation.

    Centralised so instrumented libraries need no direct [unix]
    dependency and so a future monotonic source swaps in at one place. *)

val wall : unit -> float
(** Seconds since the epoch, sub-microsecond resolution. *)
