type counter = { c_name : string; c_cell : int Atomic.t }

let counter_create name = { c_name = name; c_cell = Atomic.make 0 }

let counter_name c = c.c_name

let counter_add c n =
  if n < 0 then invalid_arg "Metric.counter_add: counters are monotonic";
  ignore (Atomic.fetch_and_add c.c_cell n)

let counter_value c = Atomic.get c.c_cell

type gauge = { g_name : string; g_lock : Mutex.t; mutable g_value : float }

let gauge_create name = { g_name = name; g_lock = Mutex.create (); g_value = nan }

let gauge_name g = g.g_name

let locked lock f =
  Mutex.lock lock;
  Fun.protect ~finally:(fun () -> Mutex.unlock lock) f

let gauge_set g v = locked g.g_lock (fun () -> g.g_value <- v)

let gauge_value g = locked g.g_lock (fun () -> g.g_value)

type histogram = {
  h_name' : string;
  h_lock : Mutex.t;
  bounds : float array;  (** strictly increasing finite upper bounds *)
  counts : int array;  (** length = Array.length bounds + 1 (overflow) *)
  mutable sum : float;
  mutable n : int;
  mutable lo : float;
  mutable hi : float;
}

(* 1 µs doubling up to ~8.6 ks: 34 buckets (including overflow). *)
let default_buckets =
  Array.init 33 (fun i -> 1e-6 *. Float.of_int (1 lsl i))

let histogram_create ?(buckets = default_buckets) name =
  if Array.length buckets = 0 then
    invalid_arg "Metric.histogram_create: no buckets";
  Array.iteri
    (fun i b ->
      if (not (Float.is_finite b)) || (i > 0 && buckets.(i - 1) >= b) then
        invalid_arg "Metric.histogram_create: bounds must strictly increase")
    buckets;
  {
    h_name' = name;
    h_lock = Mutex.create ();
    bounds = Array.copy buckets;
    counts = Array.make (Array.length buckets + 1) 0;
    sum = 0.0;
    n = 0;
    lo = nan;
    hi = nan;
  }

let histogram_name h = h.h_name'

(* First bucket whose upper bound admits [v]; the last slot is overflow. *)
let bucket_index bounds v =
  let n = Array.length bounds in
  let rec bsearch lo hi =
    if lo >= hi then lo
    else
      let mid = (lo + hi) / 2 in
      if v <= bounds.(mid) then bsearch lo mid else bsearch (mid + 1) hi
  in
  bsearch 0 n

let observe h v =
  if Float.is_finite v then
    locked h.h_lock (fun () ->
        h.counts.(bucket_index h.bounds v) <- h.counts.(bucket_index h.bounds v) + 1;
        h.sum <- h.sum +. v;
        h.n <- h.n + 1;
        if Float.is_nan h.lo || v < h.lo then h.lo <- v;
        if Float.is_nan h.hi || v > h.hi then h.hi <- v)

type histogram_summary = {
  h_name : string;
  h_count : int;
  h_sum : float;
  h_min : float;
  h_max : float;
  h_buckets : (float * int) list;
}

let histogram_summary h =
  locked h.h_lock (fun () ->
      let buckets =
        List.init
          (Array.length h.counts)
          (fun i ->
            ( (if i < Array.length h.bounds then h.bounds.(i) else infinity),
              h.counts.(i) ))
      in
      {
        h_name = h.h_name';
        h_count = h.n;
        h_sum = h.sum;
        h_min = h.lo;
        h_max = h.hi;
        h_buckets = buckets;
      })

let quantile s q =
  if q < 0.0 || q > 1.0 then invalid_arg "Metric.quantile: q outside [0,1]";
  if s.h_count = 0 then nan
  else begin
    let target = q *. float_of_int s.h_count in
    let clamp v = Float.min s.h_max (Float.max s.h_min v) in
    let rec walk lower cum = function
      | [] -> clamp s.h_max
      | (ub, n) :: rest ->
          let cum' = cum + n in
          if n > 0 && float_of_int cum' >= target then begin
            (* Linear interpolation inside this bucket, against real data
               bounds rather than the (possibly infinite) bucket edges. *)
            let lo = Float.max lower s.h_min and hi = Float.min ub s.h_max in
            let frac = (target -. float_of_int cum) /. float_of_int n in
            clamp (lo +. ((hi -. lo) *. Float.max 0.0 frac))
          end
          else walk ub cum' rest
    in
    walk neg_infinity 0 s.h_buckets
  end
