(** Bridge from the testbed's pre-existing accounting into the registry.

    {!Mc_hypervisor.Meter} keeps per-phase operation counts that the
    virtual-time model prices into CPU seconds; this bridge folds those
    counts into registry counters (e.g. [meter.searcher.bytes_copied]) so
    the two systems stay in agreement — a trace consumer can cross-check
    the metric totals against the meter-derived phase costs. The bridge
    is deliberately untyped ([(string * int)] pairs) so [mc_telemetry]
    depends on nothing above [mc_util]. *)

val add_counts : prefix:string -> (string * int) list -> unit
(** [add_counts ~prefix pairs] bumps counter ["<prefix>.<key>"] by each
    value. Dropped while the registry is disabled; negative values raise
    (counters are monotonic). *)
