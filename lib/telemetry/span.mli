(** A single timed operation in the checking pipeline.

    Spans carry two clocks: the host's wall clock (what the OCaml code
    actually spent) and, optionally, the testbed's virtual clock (what the
    simulated Dom0 spent — see {!Mc_hypervisor.Sched}). They nest through
    parent ids: "check hal.dll" → "vm 3" → "searcher". Construction and
    collection live in {!Registry}; this module is the plain record plus
    its JSON shape. *)

type attr =
  | Int of int
  | Float of float
  | String of string
  | Bool of bool

type t = {
  id : int;  (** Unique within a registry run, > 0. *)
  parent : int option;  (** Enclosing span on the same (or handing-off) domain. *)
  name : string;
  domain : int;  (** OCaml domain the span was opened on. *)
  wall_start : float;  (** [Unix.gettimeofday] at open. *)
  mutable wall_end : float;  (** Set at close; [nan] while open. *)
  mutable virt_start : float option;  (** Simulated-clock open, when attributed. *)
  mutable virt_end : float option;
  mutable attrs : (string * attr) list;
}

val set_attr : t -> string -> attr -> unit
(** [set_attr t k v] adds or replaces attribute [k]. No-op on the dummy
    span handed out while telemetry is disabled. *)

val set_virtual : t -> start:float -> finish:float -> unit
(** Attribute a virtual-clock interval to the span (e.g. a patrol sweep's
    simulated wall time). *)

val wall_duration : t -> float
(** Seconds between open and close; [nan] while the span is open. *)

val to_json : t -> Mc_util.Json.t
(** One trace event: [{"type":"span","name":...,"id":...,...}]. *)
