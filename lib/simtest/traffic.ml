module Rng = Mc_util.Rng
module Cloud = Mc_hypervisor.Cloud
module Costs = Mc_hypervisor.Costs
module Meter = Mc_hypervisor.Meter
module Engine = Mc_engine
module Wire = Mc_engine.Wire
module Serve = Mc_engine.Serve
module Infect = Mc_malware.Infect

type profile = {
  p_vms : int;
  p_modules : string list;
  p_check_w : int;
  p_survey_w : int;
  p_lists_w : int;
  p_dup_percent : int;
  p_high_percent : int;
  p_low_percent : int;
}

let default_profile =
  {
    p_vms = 8;
    p_modules = Mc_pe.Catalog.standard_modules;
    p_check_w = 70;
    p_survey_w = 25;
    p_lists_w = 5;
    p_dup_percent = 25;
    p_high_percent = 10;
    p_low_percent = 20;
  }

let lines ?(profile = default_profile) ~seed ~n () =
  if n < 0 then invalid_arg "Traffic.lines: n must be >= 0";
  let rng = Rng.create seed in
  let modules = Array.of_list profile.p_modules in
  if Array.length modules = 0 then
    invalid_arg "Traffic.lines: profile has no modules";
  let total_w =
    max 1 (profile.p_check_w + profile.p_survey_w + profile.p_lists_w)
  in
  (* Duplicates are drawn from a small ring of recent lines: fan-in that
     arrives while the original is still queued or in flight is what the
     coalescer can actually merge, mirroring the advisory-storm shape
     (everyone asks about the same module at once). *)
  let ring = Array.make 32 None in
  let fresh i =
    let priority =
      let r = Rng.int rng 100 in
      if r < profile.p_high_percent then "high"
      else if r < profile.p_high_percent + profile.p_low_percent then "low"
      else "normal"
    in
    let line =
      let r = Rng.int rng total_w in
      if r < profile.p_check_w then
        Printf.sprintf "check %d %s %s"
          (Rng.int rng (max 1 profile.p_vms))
          (Rng.pick rng modules) priority
      else if r < profile.p_check_w + profile.p_survey_w then
        Printf.sprintf "survey - %s %s" (Rng.pick rng modules) priority
      else Printf.sprintf "lists - - %s" priority
    in
    ring.(i mod Array.length ring) <- Some line;
    line
  in
  let emitted = ref 0 in
  fun () ->
    if !emitted >= n then None
    else begin
      let i = !emitted in
      incr emitted;
      let line =
        if i > 0 && Rng.int rng 100 < profile.p_dup_percent then
          match ring.(Rng.int rng (min i (Array.length ring))) with
          | Some line -> line
          | None -> fresh i
        else fresh i
      in
      Some line
    end

type outcome = {
  to_requests : int;
  to_responses : int;
  to_busy : int;
  to_retries : int;
  to_invalid : int;
  to_coalesced : int;
  to_completed : int;
  to_run_backoffs : int;
  to_wall_s : float;
  to_critical_s : float;
  to_total_virtual_s : float;
  to_rps_virtual : float;
  to_rps_wall : float;
  to_max_inflight : int;
  to_ledger_entries : int;
  to_exit : int;
  to_violations : string list;
}

(* Ground truth for one response: with an inline hook staged on
   [infect_vm], exactly the infected module's check-on-target and survey
   convict; everything else — other modules, checks of clean VMs against
   the mostly-clean pool, list walks — stays intact. *)
let expected_verdict ~infection (request : Engine.request) =
  match (infection : Infect.infection option) with
  | None -> "intact"
  | Some inf -> (
      let bad = String.lowercase_ascii inf.Infect.infected_module in
      match request with
      | Engine.Check { vm; module_name }
        when vm = inf.Infect.target_vm
             && String.lowercase_ascii module_name = bad ->
          "infected"
      | Engine.Survey { module_name }
        when String.lowercase_ascii module_name = bad ->
          "infected"
      | Engine.Check _ | Engine.Survey _ | Engine.Lists -> "intact")

let replay ?(profile = default_profile) ?(shards = 2) ?(workers_per_shard = 1)
    ?(queue_bound = 64) ?(window = 32) ?(merkle = true) ?infect_vm ?ledger
    ?emit ~seed ~requests () =
  let cloud = Cloud.create ~vms:profile.p_vms ~cores:8 ~seed () in
  let infection =
    match infect_vm with
    | None -> None
    | Some vm -> (
        match Infect.inline_hook cloud ~vm with
        | Ok inf -> Some inf
        | Error e -> failwith ("Traffic.replay: staging infection: " ^ e))
  in
  let config =
    Modchecker.Orchestrator.Config.default
    |> Modchecker.Orchestrator.Config.with_merkle merkle
  in
  let engine =
    Engine.create ~shards ~workers_per_shard ~queue_bound ~config cloud
  in
  let violations = ref [] in
  let violation_count = ref 0 in
  let check_reply reply =
    (match reply with
    | Wire.Resp resp ->
        let got = Wire.verdict_key resp in
        let want =
          expected_verdict ~infection resp.Wire.rs_frame.Wire.f_request
        in
        if not (String.equal got want) then begin
          incr violation_count;
          if !violation_count <= 10 then
            violations :=
              Printf.sprintf "seq %d %s: verdict %s, oracle expected %s"
                resp.Wire.rs_seq
                (Wire.frame_key resp.Wire.rs_frame)
                got want
              :: !violations
        end
    | Wire.Busy _ | Wire.Draining _ | Wire.Invalid _ -> ());
    match emit with None -> () | Some f -> f reply
  in
  let next = lines ~profile ~seed:(Int64.add seed 1L) ~n:requests () in
  let started = Unix.gettimeofday () in
  let sv = Serve.run ~window ?ledger ~emit:check_reply engine ~next in
  let st = Engine.stats engine in
  Engine.drain engine;
  let wall_s = Unix.gettimeofday () -. started in
  let costs = Costs.default in
  let per_shard =
    Array.map (fun m -> Meter.total_cpu_seconds costs m)
      (Engine.shard_meters engine)
  in
  let critical_s = Array.fold_left Float.max 0.0 per_shard in
  let total_virtual_s = Array.fold_left ( +. ) 0.0 per_shard in
  {
    to_requests = sv.Serve.sv_requests;
    to_responses = sv.Serve.sv_responses;
    to_busy = sv.Serve.sv_busy;
    to_retries = sv.Serve.sv_retries;
    to_invalid = sv.Serve.sv_invalid;
    to_coalesced = st.Engine.st_coalesced;
    to_completed = st.Engine.st_completed;
    to_run_backoffs = st.Engine.st_run_backoffs;
    to_wall_s = wall_s;
    to_critical_s = critical_s;
    to_total_virtual_s = total_virtual_s;
    to_rps_virtual =
      (if critical_s > 0.0 then float_of_int sv.Serve.sv_requests /. critical_s
       else 0.0);
    to_rps_wall =
      (if wall_s > 0.0 then float_of_int sv.Serve.sv_requests /. wall_s
       else 0.0);
    to_max_inflight = sv.Serve.sv_max_inflight;
    to_ledger_entries =
      (match ledger with None -> 0 | Some l -> Mc_ledger.length l);
    to_exit = sv.Serve.sv_exit;
    to_violations = List.rev !violations;
  }
