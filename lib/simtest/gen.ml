module Rng = Mc_util.Rng
module Catalog = Mc_pe.Catalog
module Faultplan = Mc_memsim.Faultplan

(* Medium-sized standard modules: cheap to survey, present on every VM,
   and with enough functions to randomize infection offsets. *)
let infectable_standard = [| "hal.dll"; "disk.sys"; "atapi.sys" |]
let watch_candidates =
  [| "hal.dll"; "disk.sys"; "atapi.sys"; "tcpip.sys"; "hello.sys"; "dummy.sys" |]

let func_names module_name =
  (Catalog.image module_name).Catalog.built_source.Catalog.funcs
  |> Array.map (fun f -> f.Catalog.fn_name)

let pick_watch rng =
  let n = Rng.int_in rng 2 3 in
  let rec add acc k =
    if k = 0 then acc
    else
      let m = Rng.pick rng watch_candidates in
      if List.mem m acc then add acc k else add (m :: acc) (k - 1)
  in
  let watch = add [] n in
  (* Keep at least one module that is always present, so a sweep always
     has something to vote on. *)
  if List.exists (fun m -> List.mem m Catalog.standard_modules) watch then
    List.sort compare watch
  else List.sort compare ("disk.sys" :: watch)

let gen_fault_spec rng =
  match Rng.int rng 4 with
  | 0 -> None
  | 1 ->
      Some
        {
          Faultplan.none with
          Faultplan.transient_rate = 0.02 +. Rng.float rng 0.08;
          fault_seed = Rng.int rng 1000;
        }
  | 2 ->
      Some
        {
          Faultplan.none with
          Faultplan.transient_rate = 0.02 +. Rng.float rng 0.05;
          torn_rate = Rng.float rng 0.03;
          pause_fail_rate = Rng.float rng 0.05;
          fault_seed = Rng.int rng 1000;
        }
  | _ ->
      Some
        {
          Faultplan.none with
          Faultplan.paged_out_rate = 0.02 +. Rng.float rng 0.10;
          transient_rate = Rng.float rng 0.03;
          fault_seed = Rng.int rng 1000;
        }

let gen_burst rng oracle watch =
  let n = Rng.int_in rng 2 6 in
  let watch_arr = Array.of_list watch in
  List.init n (fun _ ->
      let b_priority =
        Rng.pick rng [| Mc_engine.High; Mc_engine.Normal; Mc_engine.Low |]
      in
      let b_request =
        match Rng.int rng 5 with
        | 0 | 1 ->
            let vm = Rng.int rng (Oracle.vms oracle) in
            Mc_engine.Check { vm; module_name = Rng.pick rng watch_arr }
        | 2 | 3 -> Mc_engine.Survey { module_name = Rng.pick rng watch_arr }
        | _ -> Mc_engine.Lists
      in
      { Event.b_priority; b_request })

(* Every coverage class ({!Event.class_keys}) the generator can emit —
   what a soak run asserts actually fired. *)
let weighted_classes =
  [
    "infect.opcode";
    "infect.hook";
    "infect.stub";
    "infect.dll";
    "infect.pointer";
    "infect.hide";
    "evade.toctou";
    "evade.pager";
    "evade.race";
    "evade.tamper";
    "check";
    "sweep";
    "reboot";
    "restore";
    "workload";
    "faults.none";
    "faults.transient";
    "faults.paged";
    "faults.torn";
    "faults.pause";
    "load";
    "burst";
  ]

let scenario ~seed ~steps =
  let rng = Rng.create seed in
  let sc_vms = Rng.int_in rng 3 7 in
  let sc_cores = Rng.int_in rng 2 8 in
  let sc_cloud_seed = Rng.next_u64 rng in
  let sc_watch = pick_watch rng in
  let oracle = Oracle.create ~vms:sc_vms in
  (* In-memory infections must stay content-unique across the pool for
     the oracle's tag model to hold: never hook the same function twice,
     and at most one pointer hook per campaign. Adversary machines hook
     too, so they draw from the same table; [machined] additionally
     keeps two machines (or a machine and a plain hook) off the same
     (VM, module) — their byte edits would collide. *)
  let hooked = Hashtbl.create 8 in
  let machined = Hashtbl.create 4 in
  let shimmed_vm = Hashtbl.create 4 in
  let pointer_used = ref false in
  let rand_vm () = Rng.int rng sc_vms in
  let drop_vm_adversaries vm =
    Hashtbl.fold (fun (v, m) () acc -> if v = vm then (v, m) :: acc else acc)
      machined []
    |> List.iter (fun k -> Hashtbl.remove machined k);
    Hashtbl.remove shimmed_vm vm
  in
  let gen_infect () =
    match Rng.pick rng Event.all_families with
    | Event.Opcode ->
        let vm = rand_vm () in
        let module_name = Rng.pick rng infectable_standard in
        let func = Rng.pick rng (func_names module_name) in
        Some
          (Event.Infect { family = Event.Opcode; vm; module_name; func })
    | Event.Hook -> (
        let vm = rand_vm () in
        let mods =
          Oracle.visible_modules oracle vm
          |> List.filter (fun m ->
                 Array.length (func_names m) > 0
                 && not (Hashtbl.mem machined (vm, m)))
        in
        match mods with
        | [] -> None
        | mods -> (
            let module_name = Rng.pick rng (Array.of_list mods) in
            let candidates =
              func_names module_name
              |> Array.to_list
              |> List.filter (fun f ->
                     not (Hashtbl.mem hooked (module_name, f)))
            in
            match candidates with
            | [] -> None
            | fs ->
                let func = Rng.pick rng (Array.of_list fs) in
                Hashtbl.replace hooked (module_name, func) ();
                Some
                  (Event.Infect
                     { family = Event.Hook; vm; module_name; func })))
    | Event.Stub ->
        if
          List.exists
            (fun v -> Oracle.loaded oracle v "hello.sys")
            (List.init sc_vms Fun.id)
        then None
        else
          Some
            (Event.Infect
               {
                 family = Event.Stub;
                 vm = rand_vm ();
                 module_name = "hello.sys";
                 func = "";
               })
    | Event.Dll_inject ->
        let vm = rand_vm () in
        if
          List.exists
            (fun v -> Oracle.loaded oracle v "dummy.sys")
            (List.init sc_vms Fun.id)
          || Oracle.loaded oracle vm "inject.dll"
        then None
        else
          Some
            (Event.Infect
               {
                 family = Event.Dll_inject;
                 vm;
                 module_name = "dummy.sys";
                 func = "";
               })
    | Event.Pointer ->
        let vm = rand_vm () in
        if !pointer_used || not (Oracle.visible oracle vm "hal.dll") then None
        else begin
          pointer_used := true;
          Some
            (Event.Infect
               {
                 family = Event.Pointer;
                 vm;
                 module_name = "hal.dll";
                 func = "";
               })
        end
    | Event.Hide -> (
        let vm = rand_vm () in
        match
          Oracle.visible_modules oracle vm
          |> List.filter (fun m -> m <> "ntoskrnl.exe")
        with
        | [] -> None
        | mods ->
            let module_name = Rng.pick rng (Array.of_list mods) in
            Some
              (Event.Infect
                 { family = Event.Hide; vm; module_name; func = "" }))
  in
  (* Evade machines hook a watched standard module so sweeps actually
     exercise them; the target must read clean right now (a machine over
     an infected copy would break the tag model). *)
  let evade_pool =
    match
      List.filter
        (fun m -> Array.mem m infectable_standard)
        sc_watch
    with
    | [] -> Array.to_list infectable_standard
    | ms -> ms
  in
  let fresh_func module_name =
    match
      func_names module_name |> Array.to_list
      |> List.filter (fun f -> not (Hashtbl.mem hooked (module_name, f)))
    with
    | [] -> None
    | fs ->
        let func = Rng.pick rng (Array.of_list fs) in
        Hashtbl.replace hooked (module_name, func) ();
        Some func
  in
  let gen_evade () =
    match Rng.pick rng Event.all_strategies with
    | Event.Race -> (
        let module_name = Rng.pick rng (Array.of_list evade_pool) in
        match fresh_func module_name with
        | None -> None
        | Some func ->
            let count = Rng.int_in rng 2 sc_vms in
            Some
              (Event.Evade
                 {
                   strategy = Event.Race;
                   vm = count;
                   module_name;
                   func;
                   dwell = 0;
                   period = 0;
                 }))
    | (Event.Toctou | Event.Pager | Event.Tamper) as strategy -> (
        let vm = rand_vm () in
        if strategy = Event.Tamper && Hashtbl.mem shimmed_vm vm then None
        else
          match
            List.filter
              (fun m ->
                Oracle.tag oracle vm m = Some Oracle.clean_tag
                && not (Hashtbl.mem machined (vm, m)))
              evade_pool
          with
          | [] -> None
          | mods -> (
              let module_name = Rng.pick rng (Array.of_list mods) in
              match fresh_func module_name with
              | None -> None
              | Some func ->
                  Hashtbl.replace machined (vm, module_name) ();
                  if strategy = Event.Tamper then
                    Hashtbl.replace shimmed_vm vm ();
                  let dwell, period =
                    if strategy = Event.Toctou then
                      let d = 1 + Rng.int rng 3 in
                      (d, d + 2 + Rng.int rng 4)
                    else (0, 0)
                  in
                  Some
                    (Event.Evade
                       { strategy; vm; module_name; func; dwell; period })))
  in
  let gen_event () =
    match Rng.int rng 100 with
    | r when r < 22 -> gen_infect ()
    | r when r < 32 ->
        (* Mostly watched modules; sometimes a dummy driver to exercise
           the absent-on-target error path. *)
        let pool = Array.of_list (sc_watch @ [ "hello.sys"; "dummy.sys" ]) in
        Some (Event.Check { vm = rand_vm (); module_name = Rng.pick rng pool })
    | r when r < 44 -> Some Event.Sweep
    | r when r < 53 -> Some (Event.Reboot (rand_vm ()))
    | r when r < 59 -> Some (Event.Restore (rand_vm ()))
    | r when r < 66 ->
        Some
          (Event.Workload
             {
               vm = rand_vm ();
               load =
                 Rng.pick rng
                   [| Event.Idle; Event.Cpu_bound; Event.Heavy |];
             })
    | r when r < 73 -> Some (Event.Faults (gen_fault_spec rng))
    | r when r < 79 -> (
        let candidates =
          List.concat_map
            (fun v ->
              List.filter_map
                (fun m ->
                  if Oracle.on_disk oracle v m && not (Oracle.loaded oracle v m)
                  then Some (v, m)
                  else None)
                (Oracle.known_modules oracle))
            (List.init sc_vms Fun.id)
        in
        match candidates with
        | [] -> None
        | cs ->
            let vm, module_name = Rng.pick rng (Array.of_list cs) in
            Some (Event.Load { vm; module_name }))
    | r when r < 91 -> gen_evade ()
    | _ -> Some (Event.Burst (gen_burst rng oracle sc_watch))
  in
  let apply ev =
    match ev with
    | Event.Infect { family; vm; module_name; func } ->
        Oracle.apply_infect oracle ~family ~vm ~module_name ~func
    | Event.Evade { strategy; vm; module_name; func; dwell; period } -> (
        match strategy with
        | Event.Toctou ->
            Oracle.apply_evade_toctou oracle ~vm ~module_name ~func
              ~dwell:(float_of_int dwell) ~period:(float_of_int period)
        | Event.Pager -> Oracle.apply_evade_pager oracle ~vm ~module_name ~func
        | Event.Tamper ->
            Oracle.apply_evade_tamper oracle ~vm ~module_name ~func
        | Event.Race ->
            Oracle.apply_evade_race oracle ~count:vm ~module_name ~func;
            (* The victims' implicit reboots shed any machines there. *)
            for v = 0 to vm - 1 do
              drop_vm_adversaries v
            done)
    | Event.Reboot vm ->
        Oracle.apply_reboot oracle vm;
        drop_vm_adversaries vm
    | Event.Restore vm ->
        Oracle.apply_restore oracle vm;
        drop_vm_adversaries vm
    | Event.Load { vm; module_name } ->
        Oracle.apply_load oracle ~vm ~module_name
    | Event.Faults spec -> Oracle.apply_faults oracle spec
    | Event.Workload _ | Event.Sweep | Event.Check _ | Event.Burst _ -> ()
  in
  let rec gen_step tries =
    if tries = 0 then Event.Sweep
    else match gen_event () with Some ev -> ev | None -> gen_step (tries - 1)
  in
  let sc_events =
    List.init steps (fun _ ->
        let ev = gen_step 10 in
        apply ev;
        ev)
  in
  { Event.sc_vms; sc_cores; sc_cloud_seed; sc_watch; sc_events }
