module Faultplan = Mc_memsim.Faultplan
module Stress = Mc_workload.Stress

type family = Opcode | Hook | Stub | Dll_inject | Pointer | Hide

let family_key = function
  | Opcode -> "opcode"
  | Hook -> "hook"
  | Stub -> "stub"
  | Dll_inject -> "dll"
  | Pointer -> "pointer"
  | Hide -> "hide"

let family_of_string = function
  | "opcode" -> Ok Opcode
  | "hook" -> Ok Hook
  | "stub" -> Ok Stub
  | "dll" -> Ok Dll_inject
  | "pointer" -> Ok Pointer
  | "hide" -> Ok Hide
  | s -> Error ("unknown malware family " ^ s)

let all_families = [| Opcode; Hook; Stub; Dll_inject; Pointer; Hide |]

type strategy = Toctou | Pager | Race | Tamper

let strategy_key = function
  | Toctou -> "toctou"
  | Pager -> "pager"
  | Race -> "race"
  | Tamper -> "tamper"

let strategy_of_string = function
  | "toctou" -> Ok Toctou
  | "pager" -> Ok Pager
  | "race" -> Ok Race
  | "tamper" -> Ok Tamper
  | s -> Error ("unknown evasion strategy " ^ s)

let all_strategies = [| Toctou; Pager; Race; Tamper |]

type workload_kind = Idle | Cpu_bound | Heavy

let workload_key = function
  | Idle -> "idle"
  | Cpu_bound -> "cpu"
  | Heavy -> "heavy"

let workload_of_string = function
  | "idle" -> Ok Idle
  | "cpu" -> Ok Cpu_bound
  | "heavy" -> Ok Heavy
  | s -> Error ("unknown workload " ^ s)

let stress_of_workload = function
  | Idle -> Stress.idle
  | Cpu_bound -> Stress.cpu_only
  | Heavy -> Stress.heavyload

type burst_item = {
  b_priority : Mc_engine.priority;
  b_request : Mc_engine.request;
}

type t =
  | Infect of { family : family; vm : int; module_name : string; func : string }
  | Evade of {
      strategy : strategy;
      vm : int;
      module_name : string;
      func : string;
      dwell : int;
      period : int;
    }
  | Reboot of int
  | Restore of int
  | Load of { vm : int; module_name : string }
  | Workload of { vm : int; load : workload_kind }
  | Faults of Faultplan.spec option
  | Sweep
  | Check of { vm : int; module_name : string }
  | Burst of burst_item list

(* Burst items serialize as [prio:kind:vm:module] with ["-"] for unused
   fields, comma-joined — colon/comma keep each burst a single script
   token. *)
let burst_item_to_string { b_priority; b_request } =
  let prio = Mc_engine.priority_key b_priority in
  match b_request with
  | Mc_engine.Check { vm; module_name } ->
      Printf.sprintf "%s:check:%d:%s" prio vm module_name
  | Mc_engine.Survey { module_name } ->
      Printf.sprintf "%s:survey:-:%s" prio module_name
  | Mc_engine.Lists -> Printf.sprintf "%s:lists:-:-" prio

let ( let* ) = Result.bind

let int_of_field what s =
  match int_of_string_opt s with
  | Some i -> Ok i
  | None -> Error (Printf.sprintf "%s: expected an integer, got %S" what s)

let burst_item_of_string s =
  match String.split_on_char ':' s with
  | [ prio; kind; vm; module_name ] -> (
      let* b_priority = Mc_engine.priority_of_string prio in
      match kind with
      | "check" ->
          let* vm = int_of_field "burst check vm" vm in
          Ok { b_priority; b_request = Mc_engine.Check { vm; module_name } }
      | "survey" ->
          Ok { b_priority; b_request = Mc_engine.Survey { module_name } }
      | "lists" -> Ok { b_priority; b_request = Mc_engine.Lists }
      | k -> Error ("unknown burst request kind " ^ k))
  | _ -> Error ("malformed burst item " ^ s)

let to_string = function
  | Infect { family; vm; module_name; func } ->
      Printf.sprintf "infect %s %d %s %s" (family_key family) vm module_name
        (if func = "" then "-" else func)
  | Evade { strategy; vm; module_name; func; dwell; period } ->
      Printf.sprintf "evade %s %d %s %s %d %d" (strategy_key strategy) vm
        module_name
        (if func = "" then "-" else func)
        dwell period
  | Reboot vm -> Printf.sprintf "reboot %d" vm
  | Restore vm -> Printf.sprintf "restore %d" vm
  | Load { vm; module_name } -> Printf.sprintf "load %d %s" vm module_name
  | Workload { vm; load } ->
      Printf.sprintf "workload %d %s" vm (workload_key load)
  | Faults None -> "faults none"
  | Faults (Some spec) -> "faults " ^ Faultplan.to_string spec
  | Sweep -> "sweep"
  | Check { vm; module_name } -> Printf.sprintf "check %d %s" vm module_name
  | Burst items ->
      "burst " ^ String.concat "," (List.map burst_item_to_string items)

let of_string line =
  let words =
    String.split_on_char ' ' (String.trim line)
    |> List.filter (fun w -> w <> "")
  in
  match words with
  | [ "infect"; family; vm; module_name; func ] ->
      let* family = family_of_string family in
      let* vm = int_of_field "infect vm" vm in
      let func = if func = "-" then "" else func in
      Ok (Infect { family; vm; module_name; func })
  | [ "evade"; strategy; vm; module_name; func; dwell; period ] ->
      let* strategy = strategy_of_string strategy in
      let* vm = int_of_field "evade vm" vm in
      let* dwell = int_of_field "evade dwell" dwell in
      let* period = int_of_field "evade period" period in
      let func = if func = "-" then "" else func in
      Ok (Evade { strategy; vm; module_name; func; dwell; period })
  | [ "reboot"; vm ] ->
      let* vm = int_of_field "reboot vm" vm in
      Ok (Reboot vm)
  | [ "restore"; vm ] ->
      let* vm = int_of_field "restore vm" vm in
      Ok (Restore vm)
  | [ "load"; vm; module_name ] ->
      let* vm = int_of_field "load vm" vm in
      Ok (Load { vm; module_name })
  | [ "workload"; vm; load ] ->
      let* vm = int_of_field "workload vm" vm in
      let* load = workload_of_string load in
      Ok (Workload { vm; load })
  | [ "faults"; "none" ] -> Ok (Faults None)
  | [ "faults"; spec ] ->
      let* spec = Faultplan.of_string spec in
      Ok (Faults (if Faultplan.is_none spec then None else Some spec))
  | [ "sweep" ] -> Ok Sweep
  | [ "check"; vm; module_name ] ->
      let* vm = int_of_field "check vm" vm in
      Ok (Check { vm; module_name })
  | [ "burst"; items ] ->
      let rec parse acc = function
        | [] -> Ok (Burst (List.rev acc))
        | item :: rest ->
            let* item = burst_item_of_string item in
            parse (item :: acc) rest
      in
      parse [] (String.split_on_char ',' items)
  | [] -> Error "empty event line"
  | w :: _ -> Error ("unknown event " ^ w)

(* Coverage classes: one stable key per generator weight bucket, split
   by sub-kind for the buckets whose members exercise different code
   paths (malware family, evasion strategy, fault kind). Campaign
   accounting sums these over applied events to prove each class
   actually fired. *)
let class_keys = function
  | Infect { family; _ } -> [ "infect." ^ family_key family ]
  | Evade { strategy; _ } -> [ "evade." ^ strategy_key strategy ]
  | Reboot _ -> [ "reboot" ]
  | Restore _ -> [ "restore" ]
  | Load _ -> [ "load" ]
  | Workload _ -> [ "workload" ]
  | Faults None -> [ "faults.none" ]
  | Faults (Some spec) ->
      let keys =
        List.filter_map
          (fun (rate, key) -> if rate > 0.0 then Some ("faults." ^ key) else None)
          [
            (spec.Faultplan.transient_rate, "transient");
            (spec.Faultplan.paged_out_rate, "paged");
            (spec.Faultplan.torn_rate, "torn");
            (spec.Faultplan.pause_fail_rate, "pause");
          ]
      in
      if keys = [] then [ "faults.none" ] else keys
  | Sweep -> [ "sweep" ]
  | Check _ -> [ "check" ]
  | Burst _ -> [ "burst" ]

type scenario = {
  sc_vms : int;
  sc_cores : int;
  sc_cloud_seed : int64;
  sc_watch : string list;
  sc_events : t list;
}

let header = "simtest-scenario v1"

let scenario_to_script sc =
  let b = Buffer.create 512 in
  Buffer.add_string b (header ^ "\n");
  Buffer.add_string b (Printf.sprintf "vms %d\n" sc.sc_vms);
  Buffer.add_string b (Printf.sprintf "cores %d\n" sc.sc_cores);
  Buffer.add_string b (Printf.sprintf "cloud-seed %Ld\n" sc.sc_cloud_seed);
  Buffer.add_string b ("watch " ^ String.concat "," sc.sc_watch ^ "\n");
  List.iter
    (fun ev -> Buffer.add_string b ("event " ^ to_string ev ^ "\n"))
    sc.sc_events;
  Buffer.contents b

let scenario_of_script text =
  let lines = String.split_on_char '\n' text in
  let rec parse lineno seen_header sc lines =
    match lines with
    | [] -> (
        match sc with
        | Some sc -> Ok { sc with sc_events = List.rev sc.sc_events }
        | None -> Error "missing header line")
    | line :: rest -> (
        let at msg = Error (Printf.sprintf "line %d: %s" lineno msg) in
        let line = String.trim line in
        if line = "" || String.length line > 0 && line.[0] = '#' then
          parse (lineno + 1) seen_header sc rest
        else if not seen_header then
          if line = header then
            parse (lineno + 1) true
              (Some
                 {
                   sc_vms = 0;
                   sc_cores = 0;
                   sc_cloud_seed = 0L;
                   sc_watch = [];
                   sc_events = [];
                 })
              rest
          else at (Printf.sprintf "expected %S" header)
        else
          let sc = Option.get sc in
          match String.index_opt line ' ' with
          | None -> (
              match line with
              | "event" -> at "event line without an event"
              | _ -> at ("unknown field " ^ line))
          | Some i -> (
              let field = String.sub line 0 i in
              let value =
                String.trim (String.sub line (i + 1) (String.length line - i - 1))
              in
              let continue sc = parse (lineno + 1) true (Some sc) rest in
              match field with
              | "vms" -> (
                  match int_of_string_opt value with
                  | Some v when v > 0 -> continue { sc with sc_vms = v }
                  | _ -> at ("bad vms count " ^ value))
              | "cores" -> (
                  match int_of_string_opt value with
                  | Some v when v > 0 -> continue { sc with sc_cores = v }
                  | _ -> at ("bad cores count " ^ value))
              | "cloud-seed" -> (
                  match Int64.of_string_opt value with
                  | Some v -> continue { sc with sc_cloud_seed = v }
                  | None -> at ("bad cloud-seed " ^ value))
              | "watch" ->
                  continue
                    {
                      sc with
                      sc_watch =
                        String.split_on_char ',' value
                        |> List.filter (fun m -> m <> "");
                    }
              | "event" -> (
                  match of_string value with
                  | Ok ev -> continue { sc with sc_events = ev :: sc.sc_events }
                  | Error e -> at e)
              | _ -> at ("unknown field " ^ field)))
  in
  let* sc = parse 1 false None lines in
  if sc.sc_vms < 2 then Error "scenario needs at least 2 VMs"
  else if sc.sc_cores < 1 then Error "scenario needs at least 1 core"
  else Ok sc
