module Catalog = Mc_pe.Catalog
module Faultplan = Mc_memsim.Faultplan
module Report = Modchecker.Report
module Exit_code = Modchecker.Exit_code

let clean_tag = "clean"

(* A TOCTOU adversary on the module: in-memory bytes carry [e_tag]
   during the dirty window of each cycle and the clean bytes otherwise.
   The infect boundary is inclusive and the restore boundary exclusive,
   matching [Mc_malware.Strategy.dirty_at]. *)
type evade = {
  e_tag : string;
  e_start : float;
  e_dwell : float;
  e_period : float;
}

type mstate = {
  mutable m_disk : string option;  (** Content tag of the file on disk. *)
  mutable m_mem : string option;  (** Content tag of the loaded copy. *)
  mutable m_hidden : bool;
  mutable m_evade : evade option;
      (** Active TOCTOU cycle modulating the in-memory tag over time. *)
  mutable m_shim : string option;
      (** A checker-tamper shim freezes the {e observed} tag at this
          value while the true memory ([m_mem]) runs dirty. *)
}

type t = {
  o_vms : int;
  tbl : (int * string, mstate) Hashtbl.t;
  mutable o_now : float;  (** Virtual instant observations are made at. *)
  mutable o_spec : Faultplan.spec option;
  o_paged : (int, unit) Hashtbl.t;
      (** VMs a pager adversary made unmappable ([paged_out_rate = 1.0]
          on that VM alone, outside [o_spec]). *)
  mutable o_ever_faulted : bool;
  mutable o_reboots : int;
  mutable o_restores : int;
  mutable o_infections : int;
}

let is_standard m = List.mem m Catalog.standard_modules

let create ~vms =
  let t =
    {
      o_vms = vms;
      tbl = Hashtbl.create 64;
      o_now = 0.0;
      o_spec = None;
      o_paged = Hashtbl.create 4;
      o_ever_faulted = false;
      o_reboots = 0;
      o_restores = 0;
      o_infections = 0;
    }
  in
  for v = 0 to vms - 1 do
    List.iter
      (fun m ->
        Hashtbl.replace t.tbl (v, m)
          {
            m_disk = Some clean_tag;
            m_mem = Some clean_tag;
            m_hidden = false;
            m_evade = None;
            m_shim = None;
          })
      Catalog.standard_modules
  done;
  t

let state t vm m =
  match Hashtbl.find_opt t.tbl (vm, m) with
  | Some s -> s
  | None ->
      let s =
        {
          m_disk = None;
          m_mem = None;
          m_hidden = false;
          m_evade = None;
          m_shim = None;
        }
      in
      Hashtbl.replace t.tbl (vm, m) s;
      s

let vms t = t.o_vms
let set_now t now = t.o_now <- now
let now t = t.o_now

let visible t vm m =
  let s = state t vm m in
  s.m_mem <> None && not s.m_hidden

let loaded t vm m = (state t vm m).m_mem <> None
let hidden t vm m = (state t vm m).m_hidden
let on_disk t vm m = (state t vm m).m_disk <> None

let evade_dirty e now =
  let ph = now -. e.e_start in
  ph >= 0.0
  &&
  if e.e_period = infinity then ph < e.e_dwell
  else Float.rem ph e.e_period < e.e_dwell

(* The tag a checker reading through the foreign-mapping channel sees at
   [o_now]: a tamper shim freezes it, a TOCTOU cycle modulates it. *)
let tag t vm m =
  if not (visible t vm m) then None
  else
    let s = state t vm m in
    match s.m_shim with
    | Some frozen -> Some frozen
    | None -> (
        match s.m_evade with
        | Some e when evade_dirty e t.o_now -> Some e.e_tag
        | _ -> s.m_mem)

(* The tag the guest actually executes at [o_now] — what the raw
   physical read channel (and hence the anchor audit) sees. *)
let true_tag t vm m =
  if not (visible t vm m) then None
  else
    let s = state t vm m in
    match s.m_evade with
    | Some e when evade_dirty e t.o_now -> Some e.e_tag
    | _ -> s.m_mem

let shimmed t vm m = (state t vm m).m_shim <> None
let evading t vm m = (state t vm m).m_evade <> None

let visible_modules t vm =
  Hashtbl.fold
    (fun (v, m) _ acc -> if v = vm && visible t vm m then m :: acc else acc)
    t.tbl []
  |> List.sort_uniq compare

let known_modules t =
  Hashtbl.fold (fun (_, m) _ acc -> m :: acc) t.tbl []
  |> List.sort_uniq compare

let faults_armed t =
  Hashtbl.length t.o_paged > 0
  ||
  match t.o_spec with Some s -> not (Faultplan.is_none s) | None -> false

let paged t vm = Hashtbl.mem t.o_paged vm

let ever_faulted t = t.o_ever_faulted
let reboots t = t.o_reboots
let restores t = t.o_restores
let infections t = t.o_infections

let per_vm t vm f =
  Hashtbl.iter (fun (v, m) s -> if v = vm then f m s) t.tbl

let apply_reboot t vm =
  t.o_reboots <- t.o_reboots + 1;
  per_vm t vm (fun m s ->
      s.m_hidden <- false;
      (* Fresh guest memory sheds in-memory adversary state: the TOCTOU
         hook and any foreign-read shim die with the old frames. The
         pager's fault plan, a hypervisor-side property, persists —
         [o_paged] is untouched. *)
      s.m_evade <- None;
      s.m_shim <- None;
      (* Standard modules reload from the VM's own (possibly infected)
         disk; dropped drivers do not survive a reboot even though their
         files stay on disk. *)
      if is_standard m then s.m_mem <- s.m_disk else s.m_mem <- None)

let apply_restore t vm =
  t.o_restores <- t.o_restores + 1;
  per_vm t vm (fun m s ->
      s.m_hidden <- false;
      s.m_evade <- None;
      s.m_shim <- None;
      if is_standard m then begin
        s.m_disk <- Some clean_tag;
        s.m_mem <- Some clean_tag
      end
      else begin
        s.m_disk <- None;
        s.m_mem <- None
      end)

let apply_load t ~vm ~module_name =
  let s = state t vm module_name in
  (* The kernel loads import dependencies from disk before binding. The
     only catalog image that imports a non-standard module is the
     dll-injected dummy.sys, whose helper DLL rides along when it is
     still on disk and not yet loaded. *)
  (if s.m_disk = Some "dll:dummy.sys" then
     let d = state t vm "inject.dll" in
     if d.m_mem = None && d.m_disk <> None then begin
       d.m_mem <- d.m_disk;
       d.m_hidden <- false
     end);
  s.m_mem <- s.m_disk;
  s.m_hidden <- false

let apply_faults t spec =
  let spec =
    match spec with Some s when Faultplan.is_none s -> None | s -> s
  in
  if spec <> None then t.o_ever_faulted <- true;
  (* Cloud.set_fault_spec rebuilds every DomU's plan, so it also
     overwrites any per-VM plan a pager adversary armed. *)
  Hashtbl.reset t.o_paged;
  t.o_spec <- spec

(* Content tags. File infections are VM-independent: dropping the same
   patched file on two VMs yields copies that match each other after
   reloc adjustment. In-memory infections are VM-qualified — safe
   because the generator never hooks the same function on two VMs. *)
let infect_tag family ~vm ~module_name ~func =
  match family with
  | Event.Opcode -> Printf.sprintf "opcode:%s:%s" module_name func
  | Event.Hook -> Printf.sprintf "hook:%d:%s:%s" vm module_name func
  | Event.Stub -> "stub:hello.sys"
  | Event.Dll_inject -> "dll:dummy.sys"
  | Event.Pointer -> Printf.sprintf "ptr:%d:hal.dll" vm
  | Event.Hide -> assert false

(* Experiments 3 and 4 load their dummy driver on every VM, the victim
   getting the infected file. *)
let load_everywhere t ~vm ~name ~infected_tag =
  for v = 0 to t.o_vms - 1 do
    let s = state t v name in
    let tg = if v = vm then infected_tag else clean_tag in
    s.m_disk <- Some tg;
    s.m_mem <- Some tg;
    s.m_hidden <- false
  done

let apply_infect t ~family ~vm ~module_name ~func =
  t.o_infections <- t.o_infections + 1;
  match family with
  | Event.Opcode ->
      (state t vm module_name).m_disk <-
        Some (infect_tag family ~vm ~module_name ~func);
      apply_reboot t vm
  | Event.Hook | Event.Pointer ->
      (state t vm module_name).m_mem <-
        Some (infect_tag family ~vm ~module_name ~func)
  | Event.Stub ->
      load_everywhere t ~vm ~name:"hello.sys" ~infected_tag:"stub:hello.sys"
  | Event.Dll_inject ->
      load_everywhere t ~vm ~name:"dummy.sys" ~infected_tag:"dll:dummy.sys";
      (* The helper DLL is dropped and loaded on the victim only. *)
      let s = state t vm "inject.dll" in
      s.m_disk <- Some clean_tag;
      s.m_mem <- Some clean_tag;
      s.m_hidden <- false
  | Event.Hide -> (state t vm module_name).m_hidden <- true

(* Evasive strategies ({!Mc_malware.Strategy}). Each [apply_*] is called
   at the machine's launch instant with [o_now] already advanced
   there. *)

let apply_evade_toctou t ~vm ~module_name ~func ~dwell ~period =
  t.o_infections <- t.o_infections + 1;
  let s = state t vm module_name in
  s.m_evade <-
    Some
      {
        e_tag = infect_tag Event.Hook ~vm ~module_name ~func;
        e_start = t.o_now;
        e_dwell = dwell;
        e_period = period;
      }

let apply_evade_pager t ~vm ~module_name ~func =
  t.o_infections <- t.o_infections + 1;
  (state t vm module_name).m_mem <-
    Some (infect_tag Event.Hook ~vm ~module_name ~func);
  Hashtbl.replace t.o_paged vm ();
  t.o_ever_faulted <- true

let apply_evade_tamper t ~vm ~module_name ~func =
  t.o_infections <- t.o_infections + 1;
  let s = state t vm module_name in
  (* The shim snapshots and keeps serving whatever the checker could see
     at install time; the true memory runs hooked underneath. *)
  s.m_shim <- tag t vm module_name;
  s.m_mem <- Some (infect_tag Event.Hook ~vm ~module_name ~func)

let apply_evade_race t ~count ~module_name ~func =
  for v = 0 to count - 1 do
    apply_infect t ~family:Event.Opcode ~vm:v ~module_name ~func
  done

(* (module, vm) pairs where the anchor audit's two read channels
   disagree: a shim is serving frozen bytes over memory that actually
   carries something else. *)
let expect_anchors t =
  Hashtbl.fold
    (fun (v, m) s acc ->
      match s.m_shim with
      | Some frozen when visible t v m && true_tag t v m <> Some frozen ->
          (m, v) :: acc
      | _ -> acc)
    t.tbl []
  |> List.sort_uniq compare

type verdict_class = Intact | Infected | Degraded

let verdict_class_key = function
  | Intact -> "intact"
  | Infected -> "infected"
  | Degraded -> "degraded"

let class_of_verdict = function
  | Report.Intact -> Intact
  | Report.Infected -> Infected
  | Report.Degraded _ -> Degraded

type survey_expect = {
  x_missing : int list;
  x_deviants : int list;
  x_verdict : verdict_class;
}

let all_vms t = List.init t.o_vms Fun.id

(* The orchestrator's agreement rule over the present copies: partition
   by pairwise matching (= tag equality); a class holding a strict
   majority of the present copies clears its members and flags the rest;
   no strict majority flags everyone present. *)
let deviants_of_present t module_name present =
  match present with
  | [] | [ _ ] -> []
  | _ ->
      let classes = Hashtbl.create 4 in
      List.iter
        (fun v ->
          let tg = Option.get (tag t v module_name) in
          Hashtbl.replace classes tg
            (v :: Option.value ~default:[] (Hashtbl.find_opt classes tg)))
        present;
      let sizes =
        Hashtbl.fold (fun _ vs acc -> vs :: acc) classes []
        |> List.sort (fun a b -> compare (List.length b) (List.length a))
      in
      let largest = List.hd sizes in
      if 2 * List.length largest > List.length present then
        List.filter (fun v -> not (List.mem v largest)) present
      else present

let expect_survey t ~module_name ~quorum =
  let present = List.filter (fun v -> visible t v module_name) (all_vms t) in
  let missing =
    List.filter (fun v -> not (visible t v module_name)) (all_vms t)
  in
  let deviants = deviants_of_present t module_name present in
  let x_verdict =
    if
      not
        (Report.quorum_met ~quorum ~surveyed:t.o_vms ~responded:t.o_vms)
    then Degraded
    else if deviants <> [] then Infected
    else Intact
  in
  {
    x_missing = List.sort compare missing;
    x_deviants = List.sort compare deviants;
    x_verdict;
  }

type check_expect =
  | Expect_error
  | Expect_report of { c_verdict : verdict_class; c_matches : int; c_total : int }

let expect_check t ~vm ~module_name ~quorum =
  if vm < 0 || vm >= t.o_vms || not (visible t vm module_name) then Expect_error
  else
    let my_tag = Option.get (tag t vm module_name) in
    let others = List.filter (fun v -> v <> vm) (all_vms t) in
    let c_total = List.length others in
    let c_matches =
      List.length
        (List.filter (fun v -> tag t v module_name = Some my_tag) others)
    in
    let c_verdict =
      if not (Report.quorum_met ~quorum ~surveyed:c_total ~responded:c_total)
      then Degraded
      else if 2 * c_matches > c_total then Intact
      else Infected
    in
    Expect_report { c_verdict; c_matches; c_total }

let expect_lists t =
  known_modules t
  |> List.filter_map (fun m ->
         let present = List.filter (fun v -> visible t v m) (all_vms t) in
         let missing =
           List.filter (fun v -> not (visible t v m)) (all_vms t)
         in
         if present <> [] && missing <> [] then Some (m, missing) else None)

let expected_exit t ~module_name ~quorum =
  let e = expect_survey t ~module_name ~quorum in
  match e.x_verdict with
  | Degraded -> Exit_code.degraded
  | Infected -> Exit_code.infected
  | Intact ->
      if e.x_missing <> [] then Exit_code.infected else Exit_code.ok

let deviation_possible t module_name =
  List.exists
    (fun v ->
      match tag t v module_name with
      | Some tg -> tg <> clean_tag
      | None -> false)
    (all_vms t)
