(** Simtest-driven traffic replay: million-request campaigns against the
    serving stack.

    Where {!Runner} validates the checker's {e verdicts} event by event,
    the traffic campaign exercises the {e service}: a seeded generator
    emits an arbitrary-length stream of wire-protocol request lines
    (weighted check/survey/lists mix, weighted priorities, a tunable
    duplicate burst rate) and {!replay} pumps the stream through
    [Mc_engine.Serve] over a fresh cloud — windowed backpressure,
    protocol replies, hash-chained ledger and all — while an oracle
    checks every response verdict against the staged ground truth.

    Throughput is reported on the metered virtual clock: the critical
    path is the {e max} over shards of their priced virtual seconds
    (what the wall clock would be with a core per shard), so shard
    scaling is measured honestly even on a small host. The generator is
    lazy — a million-request stream never exists in memory. *)

type profile = {
  p_vms : int;  (** Pool size of the replayed cloud. *)
  p_modules : string list;  (** Modules traffic asks about. *)
  p_check_w : int;  (** Relative weight of [check] requests. *)
  p_survey_w : int;
  p_lists_w : int;
  p_dup_percent : int;
      (** Percent of lines that repeat a recent line instead of drawing
          a fresh one — duplicate fan-in for the coalescer (0–95). *)
  p_high_percent : int;  (** Percent of fresh lines at [high] priority. *)
  p_low_percent : int;  (** Percent at [low]; the rest are [normal]. *)
}

val default_profile : profile
(** 8 VMs, the standard module catalog, 70/25/5 check/survey/lists,
    25% duplicates, 10% high / 20% low priority. *)

val lines :
  ?profile:profile -> seed:int64 -> n:int -> unit -> unit -> string option
(** [lines ~seed ~n ()] is a one-shot stream of [n] request lines in
    [Serve]'s format — deterministic in [seed], generated lazily. Same
    seed, same stream. *)

type outcome = {
  to_requests : int;  (** Frames pushed through the session. *)
  to_responses : int;
  to_busy : int;  (** Busy replies (admission-control events). *)
  to_retries : int;
  to_invalid : int;
  to_coalesced : int;  (** Engine submissions answered by a duplicate. *)
  to_completed : int;  (** Requests the engine actually serviced. *)
  to_run_backoffs : int;
  to_wall_s : float;  (** Real seconds for the whole replay. *)
  to_critical_s : float;
      (** Max over shards of priced virtual seconds — the virtual
          wall-clock on one-core-per-shard hardware. *)
  to_total_virtual_s : float;  (** Sum over shards (total priced work). *)
  to_rps_virtual : float;  (** [to_requests /. to_critical_s]. *)
  to_rps_wall : float;
  to_max_inflight : int;
  to_ledger_entries : int;
  to_exit : int;  (** The session's combined exit code. *)
  to_violations : string list;
      (** Oracle mismatches (first 10): a response whose verdict
          contradicts the staged ground truth. Empty on a correct run. *)
}

val replay :
  ?profile:profile ->
  ?shards:int ->
  ?workers_per_shard:int ->
  ?queue_bound:int ->
  ?window:int ->
  ?merkle:bool ->
  ?infect_vm:int ->
  ?ledger:Mc_ledger.t ->
  ?emit:(Mc_engine.Wire.reply -> unit) ->
  seed:int64 ->
  requests:int ->
  unit ->
  outcome
(** [replay ~seed ~requests ()] builds a [p_vms]-guest cloud from
    [seed], optionally stages an inline hook on [infect_vm] (the oracle
    then {e requires} hal.dll responses to convict exactly that VM, and
    everything else to stay intact), starts an engine ([shards] default
    2, [workers_per_shard] default 1, [queue_bound] default 64,
    [merkle] default true so responses carry anchor roots), and replays
    [requests] generated lines through one [Serve] session with window
    [window] (default 32), appending to [ledger] when given. The engine
    is drained before the outcome is computed, so every counter is
    final. *)
