(** Campaign driver: the public face of the simulation harness.

    A campaign is one generated scenario run end-to-end under the
    {!Runner}'s oracle validation; a soak is many campaigns from
    consecutive seeds. On failure the scenario is shrunk
    ({!Shrink.shrink}) and rendered as a replayable spec — both the
    exact [--seed]/[--steps] pair and a [--script] body that reruns the
    minimal scenario without the generator. *)

module Event = Event
module Oracle = Oracle
module Gen = Gen
module Runner = Runner
module Shrink = Shrink
module Fedsim = Fedsim
module Traffic = Traffic

type campaign_failure = {
  cf_campaign : int;  (** Campaign index within the run. *)
  cf_seed : int64;  (** The generator seed that produced it. *)
  cf_steps : int;
  cf_failure : Runner.failure;  (** Failure of the original scenario. *)
  cf_shrunk : Event.scenario;
  cf_shrunk_failure : Runner.failure;
  cf_shrink_runs : int;
}

type campaign_result = {
  cr_campaigns : int;  (** Campaigns executed. *)
  cr_transcript : string;  (** Concatenated campaign transcripts. *)
  cr_failures : campaign_failure list;  (** Oldest first. *)
  cr_applied : int;
  cr_skipped : int;
  cr_coverage : (string * int) list;
      (** Sorted per-class applied-event counts summed over every
          campaign ({!Event.class_keys}): which generator classes
          actually fired. *)
  cr_starved : string list;
      (** Required classes ([require_coverage]) that never fired — a
          starved generator means whole attack families went untested
          even though every campaign passed. *)
}

val run_campaigns :
  ?break_checker:bool ->
  ?keep_going:bool ->
  ?shrink_budget:int ->
  ?quorum:float ->
  ?require_coverage:string list ->
  seed:int64 ->
  steps:int ->
  campaigns:int ->
  unit ->
  campaign_result
(** Campaign [i] uses generator seed [seed + i]. The run stops at the
    first failure unless [keep_going] (soak mode); [shrink_budget = 0]
    skips shrinking. [require_coverage] names coverage classes
    (typically {!Gen.weighted_classes}) that must appear in
    [cr_coverage]; missing ones land in [cr_starved] — the run itself
    does not fail, callers decide. Same arguments, byte-identical
    [cr_transcript]. *)

val replay :
  ?break_checker:bool -> ?quorum:float -> Event.scenario -> Runner.outcome
(** Run one explicit scenario (e.g. parsed from a [--script] file). *)

val render_failure : campaign_failure -> string
(** Human-readable failure report: the reason, the shrunk scenario's
    script (replayable via [--script]), and the seed spec that
    regenerates the original. *)
