(** Scenario minimization.

    When a campaign fails, the raw scenario is rarely the story — most
    of its events are noise. The shrinker reduces it to a (locally)
    minimal scenario that still fails: it truncates everything after the
    failing step, delta-debugs the event list (ddmin-style chunk
    removal, halving chunk sizes down to single events), shrinks the VM
    pool, and drops watch modules — looping to a fixpoint under a run
    budget. Any failure counts as preservation (the minimal scenario may
    surface the same bug through a different assertion; what matters is
    a small, deterministic, replayable reproduction). *)

type result = {
  sh_scenario : Event.scenario;  (** The minimized scenario. *)
  sh_failure : Runner.failure;  (** Its failure. *)
  sh_runs : int;  (** Candidate runs spent. *)
}

val shrink :
  ?budget:int ->
  ?break_checker:bool ->
  ?quorum:float ->
  Event.scenario ->
  Runner.failure ->
  result
(** [shrink sc failure] — [sc] must already fail (with [failure]);
    [budget] bounds candidate executions (default 300). *)
