module Event = Event
module Oracle = Oracle
module Gen = Gen
module Runner = Runner
module Shrink = Shrink
module Fedsim = Fedsim
module Traffic = Traffic

type campaign_failure = {
  cf_campaign : int;
  cf_seed : int64;
  cf_steps : int;
  cf_failure : Runner.failure;
  cf_shrunk : Event.scenario;
  cf_shrunk_failure : Runner.failure;
  cf_shrink_runs : int;
}

type campaign_result = {
  cr_campaigns : int;
  cr_transcript : string;
  cr_failures : campaign_failure list;
  cr_applied : int;
  cr_skipped : int;
  cr_coverage : (string * int) list;
  cr_starved : string list;
}

let run_campaigns ?(break_checker = false) ?(keep_going = false)
    ?(shrink_budget = 300) ?quorum ?(require_coverage = []) ~seed ~steps
    ~campaigns () =
  let buf = Buffer.create 4096 in
  let failures = ref [] in
  let applied = ref 0 in
  let skipped = ref 0 in
  let coverage = Hashtbl.create 16 in
  let executed = ref 0 in
  let i = ref 0 in
  let stop = ref false in
  while (not !stop) && !i < campaigns do
    let campaign_seed = Int64.add seed (Int64.of_int !i) in
    let sc = Gen.scenario ~seed:campaign_seed ~steps in
    let o = Runner.run ~break_checker ?quorum sc in
    Buffer.add_string buf
      (Printf.sprintf "== campaign %d seed=%Ld\n%s" !i campaign_seed
         o.Runner.r_transcript);
    incr executed;
    applied := !applied + o.Runner.r_applied;
    skipped := !skipped + o.Runner.r_skipped;
    List.iter
      (fun (k, n) ->
        Hashtbl.replace coverage k
          (n + Option.value ~default:0 (Hashtbl.find_opt coverage k)))
      o.Runner.r_classes;
    (match o.Runner.r_failure with
    | None -> ()
    | Some f ->
        let sh =
          if shrink_budget > 0 then
            Shrink.shrink ~budget:shrink_budget ~break_checker ?quorum sc f
          else
            { Shrink.sh_scenario = sc; sh_failure = f; sh_runs = 0 }
        in
        failures :=
          {
            cf_campaign = !i;
            cf_seed = campaign_seed;
            cf_steps = steps;
            cf_failure = f;
            cf_shrunk = sh.Shrink.sh_scenario;
            cf_shrunk_failure = sh.Shrink.sh_failure;
            cf_shrink_runs = sh.Shrink.sh_runs;
          }
          :: !failures;
        if not keep_going then stop := true);
    incr i
  done;
  {
    cr_campaigns = !executed;
    cr_transcript = Buffer.contents buf;
    cr_failures = List.rev !failures;
    cr_applied = !applied;
    cr_skipped = !skipped;
    cr_coverage =
      Hashtbl.fold (fun k n acc -> (k, n) :: acc) coverage []
      |> List.sort compare;
    cr_starved =
      List.filter (fun k -> not (Hashtbl.mem coverage k)) require_coverage
      |> List.sort_uniq compare;
  }

let replay ?(break_checker = false) ?quorum sc =
  Runner.run ~break_checker ?quorum sc

let render_failure cf =
  let b = Buffer.create 512 in
  Buffer.add_string b
    (Printf.sprintf "campaign %d (seed %Ld, %d steps) FAILED at step %d:\n  %s\n"
       cf.cf_campaign cf.cf_seed cf.cf_steps cf.cf_failure.Runner.f_step
       cf.cf_failure.Runner.f_reason);
  Buffer.add_string b
    (Printf.sprintf
       "shrunk to %d event(s) on %d VM(s) in %d run(s); shrunk failure at \
        step %d:\n  %s\n"
       (List.length cf.cf_shrunk.Event.sc_events)
       cf.cf_shrunk.Event.sc_vms cf.cf_shrink_runs
       cf.cf_shrunk_failure.Runner.f_step
       cf.cf_shrunk_failure.Runner.f_reason);
  Buffer.add_string b
    "replay the minimal scenario with `modchecker simtest --script FILE` \
     where FILE contains:\n";
  Buffer.add_string b (Event.scenario_to_script cf.cf_shrunk);
  Buffer.add_string b
    (Printf.sprintf
       "or regenerate the full campaign with `modchecker simtest --seed %Ld \
        --steps %d --campaign 1`\n"
       cf.cf_seed cf.cf_steps);
  Buffer.contents b
