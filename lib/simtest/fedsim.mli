(** Whole-fleet simulation testing for the federation layer.

    Campaigns generate random sequences of host outages, minority per-VM
    infections, coordinated whole-host infections, and fleet sweeps over
    a mixed-build topology, and cross-examine every sweep against a
    ground-truth ledger: exact deviant (host, VM) sets, exact
    deviant-host ballots per version cohort (with the electorate shrunk
    by outages), zero false positives from version skew, and the
    degraded-outranks-infected exit-code law under host quorum 1.0.

    The generator constrains scenarios to the strict-majority region —
    per-VM infections stay a minority of their host's pool and
    coordinated hosts a minority of their cohort — where the oracle's
    prediction is provably unique. Sweeps outside that region are
    covered by the federation unit tests instead. *)

type event =
  | Infect of { host : int; vm : int }
      (** Inline-hook [hal.dll] on one VM of one host. *)
  | Infect_host of int
      (** Hook every VM of the host identically — invisible to the
          host's own vote, caught only by the cross-host ballot. *)
  | Host_down of int
  | Host_up of int
  | Sweep

val event_to_string : event -> string

type scenario = {
  fs_hosts : int;
  fs_vms_per_host : int;
  fs_levels : int list;  (** Cycled across hosts. *)
  fs_seed : int64;
  fs_events : event list;
}

val gen_scenario :
  ?hosts:int -> ?vms_per_host:int -> ?levels:int list ->
  seed:int64 -> steps:int -> unit -> scenario
(** Deterministic: same arguments, same scenario. Defaults: 6 hosts x
    5 VMs, builds [[1; 2]] cycled, so each cohort has three voters. *)

type failure = { ff_step : int; ff_reason : string }

type outcome = {
  fr_transcript : string;  (** Deterministic event-by-event log. *)
  fr_failure : failure option;
  fr_sweeps : int;  (** Sweeps validated against the oracle. *)
}

val run : scenario -> outcome
(** Boot the topology, apply the events in order, validate every sweep. *)

val shrink : ?budget:int -> scenario -> failure -> scenario * failure * int
(** Greedy event-removal shrink of a failing scenario; returns the
    smallest still-failing scenario found, its failure, and the number
    of runs spent. *)

type campaign_result = {
  fc_campaigns : int;
  fc_sweeps : int;
  fc_transcript : string;
  fc_failures : (int * int64 * failure * scenario) list;
      (** (campaign, generator seed, shrunk failure, shrunk scenario). *)
}

val run_campaigns :
  ?keep_going:bool -> ?shrink_budget:int -> ?hosts:int ->
  ?vms_per_host:int -> ?levels:int list ->
  seed:int64 -> steps:int -> campaigns:int -> unit -> campaign_result
(** Campaign [i] uses generator seed [seed + i]; stops at the first
    failure unless [keep_going]. *)

val render_failure : int * int64 * failure * scenario -> string
(** Human-readable report with the shrunk event list. *)
