(** Deterministic execution of one scenario with oracle validation.

    The runner builds the cloud the scenario describes, applies its
    events in order, and after {e every} step cross-examines the checker
    against the {!Oracle}:

    - a full sequential canonical survey of the step's focus modules
      (the rotating watch entry plus whatever module the event touched)
      must report exactly the deviants, missing VMs, verdict, and exit
      code the ledger predicts;
    - an incremental survey over campaign-wide shared state must agree
      with the full survey (digest parity) and with the ledger;
    - periodically, the same survey in parallel mode must agree with the
      sequential one (fault decisions are pure per (domain, pfn,
      attempt), so parity holds even while faults are armed);
    - engine bursts must return verdicts the ledger predicts, every
      admitted request's deferred must settle, and drain must account
      for every submission;
    - metered cost must grow strictly monotonically, and a steady-state
      incremental survey (nothing mutated since the cache warmed, no
      deviants forcing escalation to the full pipeline) must cost less
      than the full one;
    - telemetry counter deltas must match the ledger's reboot, restore,
      and snapshot counts.

    While a fault plan is armed, validation weakens exactly where
    dropouts legitimately change results — but a result that claims all
    VMs responded is held to the strict oracle prediction even then, a
    VM reported as missing a module must really lack it, and a
    deviation can only ever be reported when some infected copy exists.

    Evasive adversaries ({!Event.t.Evade}) launch live
    {!Mc_malware.Strategy} machines on the campaign's virtual clock
    (event [k] fires at [t = k+1]); the runner ticks every machine to
    the step's instant {e before} predicting or observing anything, so
    the time-aware oracle's windows line up with the guest's true state.
    The trap session additionally audits the two Dom0 read channels
    against each other every reaction ([audit_anchors]), and its alarm
    sets are held to the oracle's [Anchor_mismatch] predictions.

    Everything observable lands in a transcript built only from
    deterministic inputs (no wall-clock, no scheduler-dependent meters),
    so two runs of the same scenario produce byte-identical
    transcripts. *)

type failure = { f_step : int; f_reason : string }
(** [f_step] is the event index (scenario length for end-of-campaign
    checks). *)

type outcome = {
  r_transcript : string;
  r_failure : failure option;
  r_applied : int;  (** Events applied. *)
  r_skipped : int;  (** Events whose precondition did not hold. *)
  r_classes : (string * int) list;
      (** Sorted per-class counts of {!Event.class_keys} over the
          {e applied} events — the coverage accounting soaks aggregate. *)
}

val run :
  ?break_checker:bool -> ?quorum:float -> Event.scenario -> outcome
(** [run sc] executes the scenario. [break_checker] arms the
    self-sabotage mode used to prove the oracle has teeth: each step it
    flips one digest byte inside the incremental cache (via
    {!Modchecker.Digest_cache.tamper}), which the digest-parity check
    must catch. [quorum] defaults to {!Modchecker.Report.default_quorum}. *)
