module Cloud = Mc_hypervisor.Cloud
module Meter = Mc_hypervisor.Meter
module Costs = Mc_hypervisor.Costs
module Catalog = Mc_pe.Catalog
module Kernel = Mc_winkernel.Kernel
module Pool = Mc_parallel.Pool
module Deferred = Mc_parallel.Deferred
module Tel = Mc_telemetry.Registry
module Orchestrator = Modchecker.Orchestrator
module Config = Modchecker.Orchestrator.Config
module Report = Modchecker.Report
module Patrol = Modchecker.Patrol
module Exit_code = Modchecker.Exit_code
module Digest_cache = Modchecker.Digest_cache
module Infect = Mc_malware.Infect
module Strategy = Mc_malware.Strategy

exception Violation of string

type failure = { f_step : int; f_reason : string }

type outcome = {
  r_transcript : string;
  r_failure : failure option;
  r_applied : int;
  r_skipped : int;
  r_classes : (string * int) list;
}

let ints vs = String.concat "," (List.map string_of_int vs)

let catalog_image name = try Some (Catalog.image name) with _ -> None

let has_symbol name func =
  match catalog_image name with
  | None -> false
  | Some b -> List.mem_assoc func (Catalog.symbols b)

let run ?(break_checker = false) ?(quorum = Report.default_quorum)
    (sc : Event.scenario) =
  let vms = sc.Event.sc_vms in
  let watch = sc.Event.sc_watch in
  if watch = [] then invalid_arg "Runner.run: scenario has an empty watch list";
  let buf = Buffer.create 4096 in
  let out fmt =
    Printf.ksprintf
      (fun s ->
        Buffer.add_string buf s;
        Buffer.add_char buf '\n')
      fmt
  in
  out "scenario vms=%d cores=%d cloud-seed=%Ld watch=%s events=%d" vms
    sc.Event.sc_cores sc.Event.sc_cloud_seed (String.concat "," watch)
    (List.length sc.Event.sc_events);
  let was_enabled = Tel.enabled () in
  Tel.set_enabled true;
  (* Start from a fresh trace epoch: spans otherwise accumulate in the
     global registry across runs, and a shrink pass executes hundreds of
     candidate runs in one process. *)
  Tel.reset ();
  let snap0 = Tel.snapshot () in
  let cloud =
    Cloud.create ~vms ~cores:sc.Event.sc_cores ~seed:sc.Event.sc_cloud_seed ()
  in
  let snaps = Array.init vms (fun i -> Cloud.snapshot_vm cloud i) in
  let oracle = Oracle.create ~vms in
  let incremental = Orchestrator.create_incremental () in
  let base_cfg =
    Config.default |> Config.with_quorum quorum
    |> Config.with_strategy Orchestrator.Canonical
  in
  let incr_cfg = Config.with_incremental incremental base_cfg in
  (* The event-driven patrol session lives for the whole campaign on its
     own incremental state (so [break_checker]'s sabotage of the survey
     cache cannot leak into it), reacting to write traps after every
     event against the oracle's prediction. *)
  let ev_inc = Orchestrator.create_incremental () in
  let ev_check =
    base_cfg |> Config.with_incremental ev_inc |> Config.with_merkle true
  in
  let ev_cfg =
    {
      Patrol.watch;
      interval_s = 30.0;
      costs = Costs.default;
      workers = 1;
      compare_lists = true;
      incremental = true;
      audit_anchors = true;
      check = ev_check;
    }
  in
  let ev_survey ~high:_ module_name =
    let meter = Meter.create () in
    let s = Orchestrator.survey ~config:ev_check ~meter cloud ~module_name in
    (module_name, s, meter)
  in
  let ev_lists ~high:_ () =
    let m = Meter.create () in
    Some (Orchestrator.survey_module_lists ~config:ev_check ~meter:m cloud, m)
  in
  let session =
    Patrol.Events.create ~config:ev_cfg ~inc:ev_inc ~survey:ev_survey
      ~lists:ev_lists cloud
  in
  let pool = ref None in
  let get_pool () =
    match !pool with
    | Some p -> p
    | None ->
        let p = Pool.create 2 in
        pool := Some p;
        p
  in
  let engine = ref None in
  let deferreds = ref [] in
  let get_engine () =
    match !engine with
    | Some e -> e
    | None ->
        let e =
          Mc_engine.create ~shards:2 ~workers_per_shard:2 ~config:base_cfg cloud
        in
        engine := Some e;
        e
  in
  (* Modules whose campaign-wide incremental entries are all fresh: the
     next incremental survey must be pure staleness probes, i.e. cheaper
     than the full pipeline. Any mutating event clears it. *)
  let warm = Hashtbl.create 8 in
  let cumulative = ref 0.0 in
  let applied = ref 0 in
  let skipped = ref 0 in
  let classes = Hashtbl.create 16 in
  let count_classes ev =
    List.iter
      (fun k ->
        Hashtbl.replace classes k
          (1 + Option.value ~default:0 (Hashtbl.find_opt classes k)))
      (Event.class_keys ev)
  in
  let step_ref = ref 0 in
  let now_ref = ref 0.0 in
  let failf fmt = Printf.ksprintf (fun s -> raise (Violation s)) fmt in

  (* Live adversary machines, keyed by (victim, module). Only machines
     with pending transitions matter here (TOCTOU); the one-shots finish
     at launch. A reboot/restore of the victim sheds the in-memory hook,
     so the machine is killed rather than left re-hooking fresh
     memory. *)
  let machines : (int * string, Strategy.t) Hashtbl.t = Hashtbl.create 4 in
  let kill_machines_for vm =
    Hashtbl.iter (fun (v, _) m -> if v = vm then Strategy.kill m) machines;
    Hashtbl.filter_map_inplace
      (fun (v, _) m -> if v = vm then None else Some m)
      machines
  in
  let adversary_held vm m =
    Hashtbl.mem machines (vm, m)
    || Oracle.shimmed oracle vm m
    || Oracle.evading oracle vm m
  in
  let out_actions kind vm target actions =
    List.iter
      (fun (_, a) ->
        out "    adversary %s %d:%s %s" kind vm target
          (match a with
          | Strategy.Infected -> "infected"
          | Strategy.Restored -> "restored"))
      actions
  in
  let tick_machines now =
    Hashtbl.iter
      (fun (vm, target) m ->
        if Strategy.alive m then
          match Strategy.tick m ~now with
          | Ok [] -> ()
          | Ok actions ->
              Hashtbl.reset warm;
              out_actions (Strategy.kind_key (Strategy.kind m)) vm target
                actions
          | Error e ->
              failf "adversary machine on %d:%s died: %s" vm target e)
      machines
  in

  let validate_survey ~what m (s : Report.survey) =
    let armed = Oracle.faults_armed oracle in
    let e = Oracle.expect_survey oracle ~module_name:m ~quorum in
    let missing = List.sort compare s.Report.missing_on in
    let dev = List.sort compare s.Report.deviant_vms in
    let unreachable = List.sort compare (List.map fst s.Report.unreachable_on) in
    if (not armed) && unreachable <> [] then
      failf "%s survey of %s: unreachable VMs [%s] with no faults armed" what m
        (ints unreachable);
    if unreachable = [] then begin
      (* Every VM answered, so even under faults the result must be the
         ledger's prediction exactly. *)
      let cls = Oracle.class_of_verdict s.Report.s_verdict in
      if cls <> e.Oracle.x_verdict then
        failf "%s survey of %s: verdict %s, oracle says %s" what m
          (Oracle.verdict_class_key cls)
          (Oracle.verdict_class_key e.Oracle.x_verdict);
      if missing <> e.Oracle.x_missing then
        failf "%s survey of %s: missing on [%s], oracle says [%s]" what m
          (ints missing) (ints e.Oracle.x_missing);
      if dev <> e.Oracle.x_deviants then
        failf "%s survey of %s: deviants [%s], oracle says [%s]" what m
          (ints dev) (ints e.Oracle.x_deviants)
    end
    else begin
      (* Dropouts change the vote, but never license impossible claims:
         a VM reported missing must really lack the module (absence is
         verified, not inferred), and with no infected copy anywhere the
         clean clones cannot disagree. *)
      List.iter
        (fun v ->
          if Oracle.visible oracle v m then
            failf
              "%s survey of %s: VM %d reported missing but the module is \
               loaded there (false negative)"
              what m v)
        missing;
      if dev <> [] && not (Oracle.deviation_possible oracle m) then
        failf
          "%s survey of %s: deviants [%s] but no infected copy exists (false \
           positive)"
          what m (ints dev)
    end
  in

  let validate_check ~what vm m (res : (Orchestrator.outcome, string) result) =
    let armed = Oracle.faults_armed oracle in
    match (res, Oracle.expect_check oracle ~vm ~module_name:m ~quorum) with
    | Error _, Oracle.Expect_error -> ()
    | Error msg, Oracle.Expect_report _ ->
        if not armed then
          failf
            "%s check %d:%s errored (%s) but the module is loaded on the \
             target"
            what vm m msg
    | Ok _, Oracle.Expect_error ->
        failf
          "%s check %d:%s returned a report for a module the target does not \
           expose"
          what vm m
    | Ok o, Oracle.Expect_report { c_verdict; c_matches; c_total } ->
        let r = o.Orchestrator.report in
        if (not armed) && r.Report.unreachable <> [] then
          failf "%s check %d:%s: unreachable VMs with no faults armed" what vm m;
        if r.Report.unreachable = [] then begin
          let cls = Oracle.class_of_verdict r.Report.verdict in
          if
            cls <> c_verdict || r.Report.matches <> c_matches
            || r.Report.total <> c_total
          then
            failf "%s check %d:%s: %s %d/%d, oracle says %s %d/%d" what vm m
              (Oracle.verdict_class_key cls)
              r.Report.matches r.Report.total
              (Oracle.verdict_class_key c_verdict)
              c_matches c_total
        end
  in

  let validate_lists ~what (lc : Orchestrator.list_comparison) =
    let armed = Oracle.faults_armed oracle in
    if (not armed) && lc.Orchestrator.lc_unreachable <> [] then
      failf "%s lists: unreachable VMs with no faults armed" what;
    let actual =
      List.map
        (fun (d : Orchestrator.list_discrepancy) ->
          (d.Orchestrator.ld_module, List.sort compare d.Orchestrator.missing_on))
        lc.Orchestrator.lc_discrepancies
      |> List.sort compare
    in
    let fmt l =
      String.concat ";"
        (List.map (fun (m, vs) -> Printf.sprintf "%s:[%s]" m (ints vs)) l)
    in
    if lc.Orchestrator.lc_unreachable = [] then begin
      let expected = Oracle.expect_lists oracle in
      if actual <> expected then
        failf "%s lists: {%s}, oracle says {%s}" what (fmt actual)
          (fmt expected)
    end
    else
      List.iter
        (fun (m, miss) ->
          List.iter
            (fun v ->
              if Oracle.visible oracle v m then
                failf
                  "%s lists: %s reported absent on VM %d but it is loaded \
                   there"
                  what m v)
            miss)
        actual
  in

  (* [anchors] — include the read-channel audit's predicted
     [Anchor_mismatch] alarms: the trap session audits every sweep
     ([audit_anchors]), the plain polling sweep of [run_sweep] does
     not. *)
  let expected_alarms ?(anchors = false) () =
    let anchor_alarms =
      if not anchors then []
      else
        Oracle.expect_anchors oracle
        |> List.filter (fun (m, _) -> List.mem m watch)
        |> List.map (fun (m, v) -> ("anchor_mismatch", m, [ v ]))
    in
    let per_watch =
      List.concat_map
        (fun m ->
          let e = Oracle.expect_survey oracle ~module_name:m ~quorum in
          match e.Oracle.x_verdict with
          | Oracle.Degraded -> [ ("quorum_loss", m, []) ]
          | Oracle.Intact | Oracle.Infected ->
              (if e.Oracle.x_deviants <> [] then
                 [ ("hash_deviation", m, e.Oracle.x_deviants) ]
               else [])
              @
              if e.Oracle.x_missing <> [] then
                [ ("missing_module", m, e.Oracle.x_missing) ]
              else [])
        watch
    in
    let lists =
      Oracle.expect_lists oracle
      |> List.filter (fun (m, _) -> not (List.mem m watch))
      |> List.map (fun (m, miss) -> ("list_discrepancy", m, miss))
    in
    anchor_alarms @ per_watch @ lists
  in

  let norm_alarms alarms =
    List.map
      (fun (a : Patrol.alarm) ->
        ( Patrol.alarm_kind_key a.Patrol.kind,
          a.Patrol.alarm_module,
          List.sort compare a.Patrol.alarm_vms ))
      alarms
    |> List.sort compare
  in
  let fmt_alarm_set l =
    String.concat ";"
      (List.map (fun (k, m, vs) -> Printf.sprintf "%s:%s:[%s]" k m (ints vs)) l)
  in
  let integrity_only = List.filter (fun (k, _, _) -> k <> "quorum_loss") in
  (* Under an armed fault plan alarm sets are not exactly predictable
     (dropouts change votes), but impossible claims never are: a
     deviation needs an infected copy, an absence report needs a really
     absent module. Mirrors the sweep validation. *)
  let check_impossible_claims ~what alarms =
    List.iter
      (fun (kind, m, vs) ->
        if kind = "hash_deviation" && not (Oracle.deviation_possible oracle m)
        then
          failf
            "%s: hash deviation on %s but no infected copy exists (false \
             positive)"
            what m;
        if kind = "missing_module" || kind = "list_discrepancy" then
          List.iter
            (fun v ->
              if Oracle.visible oracle v m then
                failf "%s: %s reported absent on VM %d but it is loaded" what m
                  v)
            vs)
      alarms
  in
  let validate_reaction_work ~what (r : Patrol.Events.reaction) =
    List.iter
      (fun (m, s, _) -> validate_survey ~what m s)
      r.Patrol.Events.rx_work.Patrol.sw_surveys;
    (match r.Patrol.Events.rx_work.Patrol.sw_lists with
    | Some (lc, _) -> validate_lists ~what lc
    | None -> ());
    (* Every trap behind this reaction was stamped at the reaction's own
       virtual [now], so each latency is exactly the reaction's wall
       time; a latency outside [0, wall] means a trap leaked across
       steps or the attribution picked the wrong trap. *)
    List.iter
      (fun l ->
        if l < 0.0 || l > r.Patrol.Events.rx_wall +. 1e-9 then
          failf "%s: detection latency %.6f outside [0, %.6f]" what l
            r.Patrol.Events.rx_wall)
      r.Patrol.Events.rx_latencies
  in
  let validate_reaction ~what ~expected_before ~expected_after r =
    let armed = Oracle.faults_armed oracle in
    let before_i = integrity_only expected_before in
    let after_i = integrity_only expected_after in
    let fresh = List.filter (fun e -> not (List.mem e before_i)) after_i in
    match r with
    | None ->
        if (not armed) && fresh <> [] then
          failf
            "%s: no trap reaction fired, but the event created alarms the \
             oracle expects: {%s}"
            what (fmt_alarm_set fresh)
    | Some r ->
        validate_reaction_work ~what r;
        let actual_i = integrity_only (norm_alarms r.Patrol.Events.rx_alarms) in
        if not armed then begin
          List.iter
            (fun e ->
              if not (List.mem e after_i) then
                failf "%s: alarm %s not predicted by the oracle (false \
                       positive)"
                  what
                  (fmt_alarm_set [ e ]))
            actual_i;
          List.iter
            (fun e ->
              if not (List.mem e actual_i) then
                failf
                  "%s: expected new alarm %s was not raised by the trap \
                   reaction"
                  what
                  (fmt_alarm_set [ e ]))
            fresh
        end
        else check_impossible_claims ~what actual_i
  in
  (* A full (baseline / safety) sweep checks everything, so on a clean
     fault plan its alarm set must equal the oracle's prediction exactly
     — same contract as the polling sweep. *)
  let validate_trap_full ~what (r : Patrol.Events.reaction) =
    validate_reaction_work ~what r;
    let actual = norm_alarms r.Patrol.Events.rx_alarms in
    if not (Oracle.faults_armed oracle) then begin
      let expected = List.sort compare (expected_alarms ~anchors:true ()) in
      if actual <> expected then
        failf "%s alarms {%s}, oracle says {%s}" what (fmt_alarm_set actual)
          (fmt_alarm_set expected)
    end
    else check_impossible_claims ~what (integrity_only actual)
  in

  let run_sweep () =
    let cfg =
      {
        Patrol.watch;
        interval_s = 1e9;
        costs = Costs.default;
        workers = 1;
        compare_lists = true;
        incremental = false;
        audit_anchors = false;
        check = base_cfg;
      }
    in
    let o = Patrol.run ~config:cfg cloud ~until:0.5 in
    if o.Patrol.sweeps <> 1 then
      failf "sweep loop ran %d sweeps instead of 1" o.Patrol.sweeps;
    let actual =
      List.map
        (fun (a : Patrol.alarm) ->
          ( Patrol.alarm_kind_key a.Patrol.kind,
            a.Patrol.alarm_module,
            List.sort compare a.Patrol.alarm_vms ))
        o.Patrol.alarms
      |> List.sort compare
    in
    let armed = Oracle.faults_armed oracle in
    let fmt l =
      String.concat ";"
        (List.map (fun (k, m, vs) -> Printf.sprintf "%s:%s:[%s]" k m (ints vs)) l)
    in
    if not armed then begin
      let expected = List.sort compare (expected_alarms ()) in
      if actual <> expected then
        failf "sweep alarms {%s}, oracle says {%s}" (fmt actual) (fmt expected)
    end
    else
      List.iter
        (fun (kind, m, vs) ->
          if kind = "hash_deviation" && not (Oracle.deviation_possible oracle m)
          then
            failf
              "sweep: hash deviation on %s but no infected copy exists (false \
               positive)"
              m;
          if kind = "missing_module" || kind = "list_discrepancy" then
            List.iter
              (fun v ->
                if Oracle.visible oracle v m then
                  failf "sweep: %s reported absent on VM %d but it is loaded"
                    m v)
              vs)
        actual;
    List.iter (fun (k, m, vs) -> out "    alarm %s %s [%s]" k m (ints vs)) actual;
    out "    sweep cpu=%.6f" o.Patrol.cpu_spent
  in

  let validate_response (resp : Mc_engine.response) =
    match resp.Mc_engine.r_outcome with
    | Mc_engine.Checked res ->
        let vm, m =
          match resp.Mc_engine.r_request with
          | Mc_engine.Check { vm; module_name } -> (vm, module_name)
          | _ -> assert false
        in
        validate_check ~what:"engine" vm m res;
        (match res with
        | Ok o -> Report.verdict_key o.Orchestrator.report.Report.verdict
        | Error _ -> "error")
    | Mc_engine.Surveyed s ->
        let m =
          match resp.Mc_engine.r_request with
          | Mc_engine.Survey { module_name } -> module_name
          | _ -> assert false
        in
        validate_survey ~what:"engine" m s;
        Report.verdict_key s.Report.s_verdict
    | Mc_engine.Listed lc ->
        validate_lists ~what:"engine" lc;
        Printf.sprintf "%d discrepancies"
          (List.length lc.Orchestrator.lc_discrepancies)
  in

  let run_burst items =
    let e = get_engine () in
    let subs =
      List.map
        (fun (it : Event.burst_item) ->
          match Mc_engine.submit ~priority:it.Event.b_priority e it.Event.b_request with
          | Ok d ->
              deferreds := d :: !deferreds;
              (it, d)
          | Error rej ->
              failf "engine rejected %s: %s"
                (Mc_engine.request_key it.Event.b_request)
                (Mc_engine.rejection_message rej))
        items
    in
    List.iteri
      (fun i ((it : Event.burst_item), d) ->
        let resp = Deferred.await d in
        let token = validate_response resp in
        out "    burst[%d] %s %s -> %s" i
          (Mc_engine.request_key it.Event.b_request)
          (Mc_engine.priority_key it.Event.b_priority)
          token)
      subs
  in

  let precondition ev =
    let in_range vm = vm >= 0 && vm < vms in
    let all = List.init vms Fun.id in
    match ev with
    | Event.Infect { family; vm; module_name; func } ->
        if not (in_range vm) then Error "vm out of range"
        else (
          match family with
          | Event.Opcode ->
              if not (List.mem module_name Catalog.standard_modules) then
                Error "opcode patching targets standard modules"
              else if not (has_symbol module_name func) then
                Error (Printf.sprintf "no function %s in %s" func module_name)
              else Ok ()
          | Event.Hook ->
              if not (Oracle.visible oracle vm module_name) then
                Error (module_name ^ " not visible on the target")
              else if not (has_symbol module_name func) then
                Error (Printf.sprintf "no function %s in %s" func module_name)
              else if adversary_held vm module_name then
                Error (module_name ^ " under adversary control on the target")
              else Ok ()
          | Event.Stub ->
              if List.exists (fun v -> Oracle.loaded oracle v "hello.sys") all
              then Error "hello.sys already loaded somewhere"
              else Ok ()
          | Event.Dll_inject ->
              if List.exists (fun v -> Oracle.loaded oracle v "dummy.sys") all
              then Error "dummy.sys already loaded somewhere"
              else if Oracle.loaded oracle vm "inject.dll" then
                Error "inject.dll already loaded on the victim"
              else Ok ()
          | Event.Pointer ->
              if not (Oracle.visible oracle vm "hal.dll") then
                Error "hal.dll not visible on the target"
              else if adversary_held vm "hal.dll" then
                Error "hal.dll under adversary control on the target"
              else Ok ()
          | Event.Hide ->
              if module_name = "ntoskrnl.exe" then
                Error "refusing to hide the kernel image"
              else if not (Oracle.visible oracle vm module_name) then
                Error (module_name ^ " not visible on the target")
              else Ok ())
    | Event.Evade { strategy; vm; module_name; func; dwell; period } -> (
        if not (List.mem module_name Catalog.standard_modules) then
          Error "adversaries target standard modules"
        else if not (has_symbol module_name func) then
          Error (Printf.sprintf "no function %s in %s" func module_name)
        else
          match strategy with
          | Event.Race ->
              (* [vm] is the victim count: VMs 0..vm-1. *)
              if vm < 2 || vm > vms then Error "race victim count out of range"
              else Ok ()
          | (Event.Toctou | Event.Pager | Event.Tamper) as strategy ->
              if not (in_range vm) then Error "vm out of range"
              else if Oracle.tag oracle vm module_name <> Some Oracle.clean_tag
              then Error (module_name ^ " not clean-visible on the target")
              else if adversary_held vm module_name then
                Error (module_name ^ " already under adversary control")
              else if
                strategy = Event.Tamper
                && List.exists
                     (fun m -> Oracle.shimmed oracle vm m)
                     (Oracle.known_modules oracle)
              then Error "a foreign-read shim is already installed on the VM"
              else if strategy = Event.Toctou && not (0 < dwell && dwell < period)
              then Error "toctou needs 0 < dwell < period"
              else Ok ())
    | Event.Reboot vm | Event.Restore vm ->
        if in_range vm then Ok () else Error "vm out of range"
    | Event.Load { vm; module_name } ->
        if not (in_range vm) then Error "vm out of range"
        else if not (Oracle.on_disk oracle vm module_name) then
          Error (module_name ^ " not on the VM's disk")
        else if Oracle.loaded oracle vm module_name then
          Error (module_name ^ " already loaded")
        else Ok ()
    | Event.Workload { vm; _ } | Event.Check { vm; _ } ->
        if in_range vm then Ok () else Error "vm out of range"
    | Event.Faults _ | Event.Sweep -> Ok ()
    | Event.Burst items ->
        if
          List.for_all
            (fun (it : Event.burst_item) ->
              match it.Event.b_request with
              | Mc_engine.Check { vm; _ } -> in_range vm
              | _ -> true)
            items
        then Ok ()
        else Error "burst check vm out of range"
  in

  (* The six infection drivers validate their inputs before the first
     guest write, so an [Error] from the point families means "nothing
     happened" (skip); the everywhere-loading families and DKOM have no
     such failure mode once preconditions hold, so their errors are
     campaign failures. *)
  let apply_infect family vm module_name func =
    let res =
      match family with
      | Event.Opcode ->
          Infect.single_opcode_replacement ~module_name ~func cloud ~vm
      | Event.Hook -> Infect.inline_hook ~module_name ~func cloud ~vm
      | Event.Stub -> Infect.stub_modification cloud ~vm
      | Event.Dll_inject -> Infect.dll_injection cloud ~vm
      | Event.Pointer -> Infect.pointer_hook cloud ~vm
      | Event.Hide -> Infect.hide_module cloud ~vm ~module_name
    in
    match res with
    | Ok inf ->
        Oracle.apply_infect oracle ~family ~vm ~module_name ~func;
        Ok inf.Infect.technique
    | Error e -> (
        match family with
        | Event.Opcode | Event.Hook | Event.Pointer ->
            Error ("not applicable: " ^ e)
        | Event.Stub | Event.Dll_inject | Event.Hide ->
            failf "%s infection failed after preconditions held: %s"
              (Event.family_key family) e)
  in

  let apply_event ev =
    match ev with
    | Event.Infect { family; vm; module_name; func } -> (
        match apply_infect family vm module_name func with
        | Ok tech ->
            (* An opcode patch reboots the victim, shedding any live
               adversary's in-memory state with the old frames. *)
            if family = Event.Opcode then kill_machines_for vm;
            Hashtbl.reset warm;
            Ok tech
        | Error note -> Error note)
    | Event.Evade { strategy; vm; module_name; func; dwell; period } -> (
        let now = !now_ref in
        let launched =
          match strategy with
          | Event.Toctou ->
              Strategy.toctou ~module_name ~func cloud ~vm ~start:now
                ~dwell:(float_of_int dwell) ~period:(float_of_int period)
          | Event.Pager -> Strategy.pager ~module_name ~func cloud ~vm ~start:now
          | Event.Tamper ->
              Strategy.tamper ~module_name ~func cloud ~vm ~start:now
          | Event.Race ->
              Strategy.race ~module_name ~func cloud ~vms:(List.init vm Fun.id)
                ~start:now
        in
        match launched with
        | Error e -> Error ("not applicable: " ^ e)
        | Ok machine -> (
            match Strategy.tick machine ~now with
            | Error e ->
                (* The infection drivers underneath validate before the
                   first guest write (same contract as the point
                   families), so a launch error means nothing
                   happened. *)
                Error ("not applicable: " ^ e)
            | Ok actions ->
                Hashtbl.reset warm;
                (match strategy with
                | Event.Toctou ->
                    Hashtbl.replace machines (vm, module_name) machine;
                    Oracle.apply_evade_toctou oracle ~vm ~module_name ~func
                      ~dwell:(float_of_int dwell)
                      ~period:(float_of_int period)
                | Event.Pager ->
                    Oracle.apply_evade_pager oracle ~vm ~module_name ~func
                | Event.Tamper ->
                    Oracle.apply_evade_tamper oracle ~vm ~module_name ~func
                | Event.Race ->
                    (* Every victim rebooted into the patched file. *)
                    List.iter kill_machines_for (List.init vm Fun.id);
                    Oracle.apply_evade_race oracle ~count:vm ~module_name
                      ~func);
                out_actions (Event.strategy_key strategy) vm module_name
                  actions;
                Ok (Event.strategy_key strategy ^ " adversary launched")))
    | Event.Reboot vm ->
        Cloud.reboot_vm cloud vm;
        Oracle.apply_reboot oracle vm;
        kill_machines_for vm;
        Hashtbl.reset warm;
        Ok "rebooted"
    | Event.Restore vm ->
        Cloud.restore_vm cloud vm snaps.(vm);
        Oracle.apply_restore oracle vm;
        kill_machines_for vm;
        Hashtbl.reset warm;
        Ok "restored"
    | Event.Load { vm; module_name } -> (
        match Infect.load_driver (Cloud.vm cloud vm) ~name:module_name with
        | Ok _ ->
            Oracle.apply_load oracle ~vm ~module_name;
            Hashtbl.reset warm;
            Ok "loaded"
        | Error e ->
            failf "loading %s on VM %d failed after preconditions held: %s"
              module_name vm (Kernel.error_to_string e))
    | Event.Workload { vm; load } ->
        Cloud.set_workload cloud vm (Event.stress_of_workload load);
        Ok ("now " ^ Event.workload_key load)
    | Event.Faults spec ->
        Cloud.set_fault_spec cloud spec;
        Oracle.apply_faults oracle spec;
        Hashtbl.reset warm;
        Ok (match spec with None -> "disarmed" | Some _ -> "armed")
    | Event.Sweep ->
        run_sweep ();
        Ok "swept"
    | Event.Check { vm; module_name } ->
        let res =
          Orchestrator.check_module ~config:base_cfg cloud ~target_vm:vm
            ~module_name
        in
        validate_check ~what:"interactive" vm module_name res;
        Ok
          (match res with
          | Ok o -> Report.verdict_key o.Orchestrator.report.Report.verdict
          | Error _ -> "error (absent or unreachable)")
    | Event.Burst items ->
        run_burst items;
        Ok "burst settled"
  in

  let rotate step = List.nth watch (step mod List.length watch) in

  let focus step ev =
    let affected =
      match ev with
      | Event.Infect { family = Event.Stub; _ } -> Some "hello.sys"
      | Event.Infect { family = Event.Dll_inject; _ } -> Some "dummy.sys"
      | Event.Infect { family = Event.Pointer; _ } -> Some "hal.dll"
      | Event.Infect { module_name; _ }
      | Event.Load { module_name; _ }
      | Event.Evade { module_name; _ } ->
          Some module_name
      | _ -> None
    in
    let r = rotate step in
    match affected with Some m when m <> r -> [ r; m ] | _ -> [ r ]
  in

  let sabotage step =
    let target = rotate step in
    let flipped = ref false in
    let n =
      Digest_cache.tamper incremental.Orchestrator.inc_digests
        (fun ~vm:_ ~key v ->
          if !flipped || key <> target then None
          else
            match v with
            | Some ((kind, digest) :: rest) when String.length digest > 0 ->
                flipped := true;
                let b = Bytes.of_string digest in
                Bytes.set b 0 (if Bytes.get b 0 = '0' then '1' else '0');
                Some (Some ((kind, Bytes.to_string b) :: rest))
            | _ -> None)
    in
    if n > 0 then out "    sabotage: flipped one cached digest byte of %s" target
  in

  let check_phase step ev =
    let mods = focus step ev in
    let step_cost = ref 0.0 in
    let rotate_full = ref None in
    List.iter
      (fun m ->
        let meter_full = Meter.create () in
        let s_full =
          Orchestrator.survey ~config:base_cfg ~meter:meter_full cloud
            ~module_name:m
        in
        validate_survey ~what:"full" m s_full;
        if s_full.Report.unreachable_on = [] then begin
          let ec = Exit_code.of_survey s_full in
          let xc = Oracle.expected_exit oracle ~module_name:m ~quorum in
          if ec <> xc then
            failf "survey of %s maps to exit code %d, oracle says %d" m ec xc
        end;
        if !rotate_full = None then rotate_full := Some s_full;
        let full_cost = Meter.total_cpu_seconds Costs.default meter_full in
        let counter_now name =
          Option.value ~default:0
            (List.assoc_opt name (Tel.snapshot ()).Tel.snap_counters)
        in
        let escal0 = counter_now "survey.incremental_escalations" in
        let meter_incr = Meter.create () in
        let s_incr =
          Orchestrator.survey ~config:incr_cfg ~meter:meter_incr cloud
            ~module_name:m
        in
        validate_survey ~what:"incremental" m s_incr;
        let armed = Oracle.faults_armed oracle in
        (* Escalation (per-VM fingerprints disagreeing) is legitimate only
           when some infected copy exists; on a clean pool it means the
           cached fingerprints themselves are wrong — exactly what the
           [break_checker] sabotage produces, which escalation would
           otherwise silently heal by recomputing from scratch. Dropouts
           never cause a mismatch on their own (absent fingerprints are
           excluded from the comparison), so like the verdict checks
           this holds even while faults are armed, as long as every VM
           answered. *)
        if
          s_incr.Report.unreachable_on = []
          && counter_now "survey.incremental_escalations" > escal0
          && not (Oracle.deviation_possible oracle m)
        then
          failf
            "incremental survey of %s escalated on a clean pool — cached \
             fingerprints disagree"
            m;
        if not armed then begin
          if
            Oracle.class_of_verdict s_incr.Report.s_verdict
            <> Oracle.class_of_verdict s_full.Report.s_verdict
            || List.sort compare s_incr.Report.deviant_vms
               <> List.sort compare s_full.Report.deviant_vms
            || List.sort compare s_incr.Report.missing_on
               <> List.sort compare s_full.Report.missing_on
          then
            failf
              "incremental/full parity broken for %s: incremental %s \
               dev=[%s] miss=[%s], full %s dev=[%s] miss=[%s]"
              m
              (Report.verdict_key s_incr.Report.s_verdict)
              (ints (List.sort compare s_incr.Report.deviant_vms))
              (ints (List.sort compare s_incr.Report.missing_on))
              (Report.verdict_key s_full.Report.s_verdict)
              (ints (List.sort compare s_full.Report.deviant_vms))
              (ints (List.sort compare s_full.Report.missing_on))
        end;
        let incr_cost = Meter.total_cpu_seconds Costs.default meter_incr in
        (* Cheaper-than-full only holds for a reconciled pool: any
           fingerprint disagreement escalates the incremental survey to
           the full cross-buffer pipeline (its cost then includes both),
           so a pool with live deviants legitimately saves nothing. *)
        if
          (not armed)
          && Hashtbl.mem warm m
          && s_incr.Report.deviant_vms = []
          && incr_cost >= full_cost
        then
          failf
            "steady-state incremental survey of %s cost %.6f, full pipeline \
             %.6f — the cache saved nothing"
            m incr_cost full_cost;
        if not armed then Hashtbl.replace warm m ();
        step_cost := !step_cost +. full_cost +. incr_cost;
        out
          "    survey %-12s %s dev=[%s] miss=[%s] unreach=%d cost=%.6f \
           incr=%.6f"
          m
          (Report.verdict_key s_full.Report.s_verdict)
          (ints (List.sort compare s_full.Report.deviant_vms))
          (ints (List.sort compare s_full.Report.missing_on))
          (List.length s_full.Report.unreachable_on)
          full_cost incr_cost)
      mods;
    if !step_cost <= 0.0 then
      failf "step cost %.9f is not positive — metered work vanished" !step_cost;
    cumulative := !cumulative +. !step_cost;
    (* Sequential/parallel verdict parity: fault decisions are pure per
       (domain, pfn, attempt), so the two modes must agree even while a
       fault plan is armed. *)
    if step mod 4 = 3 then begin
      let m = rotate step in
      let s_full = Option.get !rotate_full in
      let par_cfg =
        Config.with_mode (Orchestrator.Parallel (get_pool ())) base_cfg
      in
      let s_par = Orchestrator.survey ~config:par_cfg cloud ~module_name:m in
      if
        Oracle.class_of_verdict s_par.Report.s_verdict
        <> Oracle.class_of_verdict s_full.Report.s_verdict
        || List.sort compare s_par.Report.deviant_vms
           <> List.sort compare s_full.Report.deviant_vms
        || List.sort compare s_par.Report.missing_on
           <> List.sort compare s_full.Report.missing_on
        || List.sort compare (List.map fst s_par.Report.unreachable_on)
           <> List.sort compare (List.map fst s_full.Report.unreachable_on)
      then
        failf "sequential/parallel parity broken for %s" m
      else out "    parallel parity %s ok" m
    end
  in

  let failure = ref None in
  (try
     Patrol.Events.set_now session 0.0;
     let b = Patrol.Events.baseline session ~now:0.0 in
     validate_trap_full ~what:"trap baseline" b;
     out "trap baseline: %d alarms, cpu=%.6f"
       (List.length b.Patrol.Events.rx_alarms)
       b.Patrol.Events.rx_cpu;
     List.iteri
       (fun step ev ->
         step_ref := step;
         (* Stamp this step's guest writes with its virtual time, and
            remember what the oracle expected before the event so the
            reaction can be held to exactly the alarms it created. *)
         let ev_now = float_of_int (step + 1) in
         now_ref := ev_now;
         Patrol.Events.set_now session ev_now;
         (* The oracle answers "as of" this instant: TOCTOU windows and
            shim predictions depend on it. Machines tick first, so the
            guest's true state matches the prediction at every
            observation this step makes. *)
         Oracle.set_now oracle ev_now;
         tick_machines ev_now;
         let expected_before =
           List.sort compare (expected_alarms ~anchors:true ())
         in
         let line = Event.to_string ev in
         (match precondition ev with
         | Error reason ->
             incr skipped;
             out "step %d: %s -> skipped (%s)" step line reason
         | Ok () -> (
             out "step %d: %s" step line;
             match apply_event ev with
             | Ok note ->
                 incr applied;
                 count_classes ev;
                 out "    -> %s" note
             | Error note ->
                 incr skipped;
                 out "    -> skipped (%s)" note));
         let expected_after =
           List.sort compare (expected_alarms ~anchors:true ())
         in
         let rx = Patrol.Events.react session ~now:ev_now in
         validate_reaction
           ~what:(Printf.sprintf "trap reaction (step %d)" step)
           ~expected_before ~expected_after rx;
         (match rx with
         | Some r ->
             out "    trap reaction: %d trap(s), %d alarm(s), wall=%.6f"
               r.Patrol.Events.rx_traps
               (List.length r.Patrol.Events.rx_alarms)
               r.Patrol.Events.rx_wall
         | None -> ());
         if break_checker then sabotage step;
         check_phase step ev)
       sc.Event.sc_events;
     (* End-of-campaign accounting. *)
     step_ref := List.length sc.Event.sc_events;
     (* One final safety sweep: after everything the campaign did, the
        trap session's full re-check must land exactly on the oracle's
        terminal state. *)
     let fin = float_of_int (List.length sc.Event.sc_events + 1) in
     now_ref := fin;
     Patrol.Events.set_now session fin;
     Oracle.set_now oracle fin;
     tick_machines fin;
     let f = Patrol.Events.baseline session ~now:fin in
     validate_trap_full ~what:"final trap sweep" f;
     out "final trap sweep: %d alarms" (List.length f.Patrol.Events.rx_alarms);
     (match !engine with
     | Some e ->
         Mc_engine.drain e;
         let st = Mc_engine.stats e in
         if st.Mc_engine.st_submitted <> st.Mc_engine.st_completed then
           failf "engine drained with %d submitted but %d completed"
             st.Mc_engine.st_submitted st.Mc_engine.st_completed;
         List.iter
           (fun d ->
             if not (Deferred.is_filled d) then
               failf "an admitted burst request never settled")
           !deferreds
     | None -> ());
     let snap1 = Tel.snapshot () in
     let delta name =
       let get (s : Tel.snapshot) =
         Option.value ~default:0 (List.assoc_opt name s.Tel.snap_counters)
       in
       get snap1 - get snap0
     in
     let expect_counter name expected =
       let d = delta name in
       if d <> expected then
         failf "telemetry %s delta %d, ledger says %d" name d expected
     in
     expect_counter "cloud.vm_reboots" (Oracle.reboots oracle);
     expect_counter "cloud.vm_restores" (Oracle.restores oracle);
     expect_counter "cloud.vm_snapshots" vms;
     expect_counter "cloud.vm_boots" (vms + Oracle.reboots oracle);
     if (not (Oracle.ever_faulted oracle)) && delta "vmi.retries" <> 0 then
       failf "vmi.retries delta %d with no fault plan ever armed"
         (delta "vmi.retries")
   with
  | Violation msg ->
      failure := Some { f_step = !step_ref; f_reason = msg };
      out "FAILURE at step %d: %s" !step_ref msg
  | exn ->
      let msg = "exception: " ^ Printexc.to_string exn in
      failure := Some { f_step = !step_ref; f_reason = msg };
      out "FAILURE at step %d: %s" !step_ref msg);
  (match !engine with
  | Some e -> ( try Mc_engine.drain e with _ -> ())
  | None -> ());
  (match !pool with Some p -> (try Pool.shutdown p with _ -> ()) | None -> ());
  Tel.set_enabled was_enabled;
  out "ledger: applied=%d skipped=%d infections=%d reboots=%d restores=%d"
    !applied !skipped
    (Oracle.infections oracle)
    (Oracle.reboots oracle)
    (Oracle.restores oracle);
  {
    r_transcript = Buffer.contents buf;
    r_failure = !failure;
    r_applied = !applied;
    r_skipped = !skipped;
    r_classes =
      Hashtbl.fold (fun k n acc -> (k, n) :: acc) classes []
      |> List.sort compare;
  }
