(* Whole-fleet simulation testing: random sequences of host failures,
   per-VM infections, coordinated whole-host infections, and sweeps,
   validated after every sweep against a ground-truth ledger that
   predicts the exact deviant sets, the deviant-host ballots, and the
   fleet verdict — including that version skew across cohorts never
   votes and that any whole-host outage degrades (host quorum 1.0).

   The generator keeps every campaign inside the region where the
   hierarchy's answer is provably unique: per-VM infections stay a
   strict minority of their host's pool, and coordinated infections stay
   a strict minority of their cohort's voters. Outside that region the
   vote (correctly) has no strict majority and flags everything, which
   the acceptance tests cover separately. *)

module Rng = Mc_util.Rng
module Topo = Mc_federation.Topology
module Co = Mc_federation.Coordinator
module Report = Modchecker.Report

type event =
  | Infect of { host : int; vm : int }
      (** Inline-hook [hal.dll] on one VM of one host. *)
  | Infect_host of int
      (** Hook every VM of the host identically — invisible to the
          host's own vote, caught only by the cross-host ballot. *)
  | Host_down of int
  | Host_up of int
  | Sweep  (** Fleet survey of [hal.dll] + oracle cross-examination. *)

let event_to_string = function
  | Infect { host; vm } -> Printf.sprintf "infect %d %d" host vm
  | Infect_host h -> Printf.sprintf "infect-host %d" h
  | Host_down h -> Printf.sprintf "host-down %d" h
  | Host_up h -> Printf.sprintf "host-up %d" h
  | Sweep -> "sweep"

type scenario = {
  fs_hosts : int;
  fs_vms_per_host : int;
  fs_levels : int list;
  fs_seed : int64;
  fs_events : event list;
}

(* --- ledger ------------------------------------------------------------ *)

type ledger = {
  mutable infected : (int * int) list;  (* minority per-VM hooks *)
  mutable infected_hosts : int list;  (* coordinated whole-host hooks *)
  mutable down : int list;
}

let level_of sc h = List.nth sc.fs_levels (h mod List.length sc.fs_levels)

(* What the coordinator must report for a hal.dll fleet survey. *)
let predict sc l =
  let up h = not (List.mem h l.down) in
  let hosts = List.init sc.fs_hosts Fun.id in
  let deviant_vms =
    List.concat_map
      (fun h ->
        if (not (up h)) || List.mem h l.infected_hosts then []
        else
          List.filter_map
            (fun (h', vm) -> if h' = h then Some (h, vm) else None)
            l.infected)
      hosts
    |> List.sort compare
  in
  let deviant_hosts =
    (* Per cohort, over the hosts actually voting (outages shrink the
       electorate): coordinated hosts share one wrong ballot, everyone
       else shares the clean one; the strict-majority group wins and the
       rest are deviant — everyone, when no strict majority survives. *)
    let levels = List.sort_uniq compare (List.map (level_of sc) hosts) in
    List.concat_map
      (fun level ->
        let voters =
          List.filter (fun h -> up h && level_of sc h = level) hosts
        in
        let bad = List.filter (fun h -> List.mem h l.infected_hosts) voters in
        let clean = List.filter (fun h -> not (List.mem h bad)) voters in
        if bad = [] || clean = [] then []
        else if 2 * List.length clean > List.length voters then bad
        else if 2 * List.length bad > List.length voters then clean
        else voters)
      levels
    |> List.sort compare
  in
  let verdict =
    if l.down <> [] then `Degraded
    else if deviant_vms <> [] || deviant_hosts <> [] then `Infected
    else `Intact
  in
  (deviant_vms, deviant_hosts, verdict)

(* --- generator --------------------------------------------------------- *)

let gen_scenario ?(hosts = 6) ?(vms_per_host = 5) ?(levels = [ 1; 2 ])
    ~seed ~steps () =
  let rng = Rng.create seed in
  let sc =
    { fs_hosts = hosts; fs_vms_per_host = vms_per_host; fs_levels = levels;
      fs_seed = seed; fs_events = [] }
  in
  (* Mirror of the ledger, to keep generated scenarios inside the
     strict-majority region. *)
  let l = { infected = []; infected_hosts = []; down = [] } in
  let cohort_mates h =
    List.filter
      (fun h' -> level_of sc h' = level_of sc h)
      (List.init hosts Fun.id)
  in
  let events = ref [] in
  let emit e = events := e :: !events in
  for _ = 1 to steps do
    match Rng.int rng 6 with
    | 0 ->
        (* A minority per-VM infection on a host not already taken whole. *)
        let h = Rng.int rng hosts in
        let infected_here =
          List.length (List.filter (fun (h', _) -> h' = h) l.infected)
        in
        if
          (not (List.mem h l.infected_hosts))
          && 2 * (infected_here + 1) < vms_per_host
        then begin
          let vm = Rng.int rng vms_per_host in
          if not (List.mem (h, vm) l.infected) then begin
            l.infected <- (h, vm) :: l.infected;
            emit (Infect { host = h; vm })
          end
        end
    | 1 ->
        (* A coordinated infection, only while its cohort keeps a clean
           strict majority of potential voters. *)
        let h = Rng.int rng hosts in
        let mates = cohort_mates h in
        let bad =
          List.length (List.filter (fun m -> List.mem m l.infected_hosts) mates)
        in
        if
          (not (List.mem h l.infected_hosts))
          && (not (List.exists (fun (h', _) -> h' = h) l.infected))
          && 2 * (bad + 1) < List.length mates
        then begin
          l.infected_hosts <- h :: l.infected_hosts;
          emit (Infect_host h)
        end
    | 2 ->
        let h = Rng.int rng hosts in
        if not (List.mem h l.down) then begin
          l.down <- h :: l.down;
          emit (Host_down h)
        end
    | 3 ->
        if l.down <> [] then begin
          let h = List.nth l.down (Rng.int rng (List.length l.down)) in
          l.down <- List.filter (fun h' -> h' <> h) l.down;
          emit (Host_up h)
        end
    | _ -> emit Sweep
  done;
  emit Sweep;
  { sc with fs_events = List.rev !events }

(* --- runner ------------------------------------------------------------ *)

type failure = { ff_step : int; ff_reason : string }

type outcome = {
  fr_transcript : string;
  fr_failure : failure option;
  fr_sweeps : int;
}

let run sc =
  let buf = Buffer.create 1024 in
  (* Racks must multiply out to exactly [fs_hosts] or the ledger and the
     topology disagree about the electorate; prefer two racks when the
     host count splits evenly. *)
  let racks, hosts_per_rack =
    if sc.fs_hosts mod 2 = 0 && sc.fs_hosts > 2 then (2, sc.fs_hosts / 2)
    else (1, sc.fs_hosts)
  in
  let spec =
    {
      Topo.default_spec with
      Topo.hosts_per_rack;
      racks_per_region = racks;
      vms_per_host = sc.fs_vms_per_host;
      patch_levels = sc.fs_levels;
      seed = sc.fs_seed;
    }
  in
  let topo = Topo.create ~spec () in
  let l = { infected = []; infected_hosts = []; down = [] } in
  let failure = ref None in
  let sweeps = ref 0 in
  let fail step fmt =
    Printf.ksprintf
      (fun reason ->
        if !failure = None then
          failure := Some { ff_step = step; ff_reason = reason })
      fmt
  in
  let hook host vm =
    match
      Mc_malware.Infect.inline_hook
        (Topo.host topo host).Mc_federation.Host.cloud ~vm
    with
    | Ok _ -> true
    | Error _ -> false  (* already hooked: event is a no-op *)
  in
  List.iteri
    (fun step ev ->
      if !failure = None then begin
        Buffer.add_string buf (Printf.sprintf "%3d %s\n" step (event_to_string ev));
        match ev with
        | Infect { host; vm } ->
            if hook host vm then l.infected <- (host, vm) :: l.infected
        | Infect_host h ->
            let all =
              List.init sc.fs_vms_per_host (fun vm -> hook h vm)
            in
            if List.for_all Fun.id all then
              l.infected_hosts <- h :: l.infected_hosts
            else fail step "coordinated infection only partially staged"
        | Host_down h ->
            Topo.set_host_down topo h;
            if not (List.mem h l.down) then l.down <- h :: l.down
        | Host_up h ->
            Topo.set_host_up topo h;
            l.down <- List.filter (fun h' -> h' <> h) l.down
        | Sweep ->
            incr sweeps;
            let r = Co.survey topo ~module_name:"hal.dll" in
            let exp_dvms, exp_dhosts, exp_verdict = predict sc l in
            let got_verdict =
              match r.Co.fb_verdict with
              | Report.Intact -> `Intact
              | Report.Infected -> `Infected
              | Report.Degraded _ -> `Degraded
            in
            let show_pairs ps =
              String.concat ","
                (List.map (fun (h, v) -> Printf.sprintf "%d:%d" h v) ps)
            in
            let show_ints is =
              String.concat "," (List.map string_of_int is)
            in
            if r.Co.fb_deviant_vms <> exp_dvms then
              fail step "deviant VMs: expected [%s], got [%s]"
                (show_pairs exp_dvms)
                (show_pairs r.Co.fb_deviant_vms)
            else if r.Co.fb_deviant_hosts <> exp_dhosts then
              fail step "deviant hosts: expected [%s], got [%s]"
                (show_ints exp_dhosts)
                (show_ints r.Co.fb_deviant_hosts)
            else if got_verdict <> exp_verdict then
              fail step "verdict mismatch (expected %s, got %s)"
                (match exp_verdict with
                | `Intact -> "intact" | `Infected -> "infected"
                | `Degraded -> "degraded")
                (Co.verdict_name r.Co.fb_verdict)
            else begin
              (* Exit-code law: degraded (3) outranks infected (2). *)
              let code = Co.exit_code r in
              let exp_code =
                match exp_verdict with
                | `Intact -> Modchecker.Exit_code.ok
                | `Infected -> Modchecker.Exit_code.infected
                | `Degraded -> Modchecker.Exit_code.degraded
              in
              if code <> exp_code then
                fail step "exit code: expected %d, got %d" exp_code code
            end;
            Buffer.add_string buf
              (Printf.sprintf "    -> %s deviant=[%s] deviant-hosts=[%s]\n"
                 (Co.verdict_name r.Co.fb_verdict)
                 (String.concat ","
                    (List.map
                       (fun (h, v) -> Printf.sprintf "%d:%d" h v)
                       r.Co.fb_deviant_vms))
                 (String.concat ","
                    (List.map string_of_int r.Co.fb_deviant_hosts)))
      end)
    sc.fs_events;
  Topo.shutdown topo;
  { fr_transcript = Buffer.contents buf; fr_failure = !failure;
    fr_sweeps = !sweeps }

(* Greedy event-removal shrink: drop one event at a time as long as the
   scenario still fails. *)
let shrink ?(budget = 100) sc (f : failure) =
  let still_fails sc =
    match (run sc).fr_failure with Some _ -> true | None -> false
  in
  let runs = ref 0 in
  let best = ref sc and best_f = ref f in
  let progress = ref true in
  while !progress && !runs < budget do
    progress := false;
    let evs = Array.of_list !best.fs_events in
    let n = Array.length evs in
    let i = ref 0 in
    while (not !progress) && !i < n && !runs < budget do
      let cand =
        {
          !best with
          fs_events =
            Array.to_list evs |> List.filteri (fun j _ -> j <> !i);
        }
      in
      incr runs;
      (match (run cand).fr_failure with
      | Some f' ->
          best := cand;
          best_f := f';
          progress := true
      | None -> ());
      incr i
    done
  done;
  ignore still_fails;
  (!best, !best_f, !runs)

type campaign_result = {
  fc_campaigns : int;
  fc_sweeps : int;
  fc_transcript : string;
  fc_failures : (int * int64 * failure * scenario) list;
      (** (campaign, seed, shrunk failure, shrunk scenario). *)
}

let run_campaigns ?(keep_going = false) ?(shrink_budget = 100) ?hosts
    ?vms_per_host ?levels ~seed ~steps ~campaigns () =
  let buf = Buffer.create 4096 in
  let failures = ref [] in
  let sweeps = ref 0 in
  let i = ref 0 in
  let stop = ref false in
  while (not !stop) && !i < campaigns do
    let campaign_seed = Int64.add seed (Int64.of_int !i) in
    let sc = gen_scenario ?hosts ?vms_per_host ?levels ~seed:campaign_seed ~steps () in
    let o = run sc in
    Buffer.add_string buf
      (Printf.sprintf "== federation campaign %d seed=%Ld\n%s" !i campaign_seed
         o.fr_transcript);
    sweeps := !sweeps + o.fr_sweeps;
    (match o.fr_failure with
    | None -> ()
    | Some f ->
        let shrunk, f', _ =
          if shrink_budget > 0 then shrink ~budget:shrink_budget sc f
          else (sc, f, 0)
        in
        failures := (!i, campaign_seed, f', shrunk) :: !failures;
        if not keep_going then stop := true);
    incr i
  done;
  {
    fc_campaigns = !i;
    fc_sweeps = !sweeps;
    fc_transcript = Buffer.contents buf;
    fc_failures = List.rev !failures;
  }

let render_failure (campaign, seed, f, sc) =
  Printf.sprintf
    "federation campaign %d (seed %Ld) failed at step %d: %s\n\
     shrunk scenario (%d events):\n%s"
    campaign seed f.ff_step f.ff_reason
    (List.length sc.fs_events)
    (String.concat "\n"
       (List.map (fun e -> "  " ^ event_to_string e) sc.fs_events))
