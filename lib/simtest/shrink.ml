type result = {
  sh_scenario : Event.scenario;
  sh_failure : Runner.failure;
  sh_runs : int;
}

let take n l = List.filteri (fun i _ -> i < n) l
let drop_range i len l = List.filteri (fun j _ -> j < i || j >= i + len) l

let shrink ?(budget = 300) ?(break_checker = false) ?quorum sc failure =
  let runs = ref 0 in
  let best = ref (sc, failure) in
  let try_candidate sc' =
    if !runs >= budget then false
    else begin
      incr runs;
      match (Runner.run ~break_checker ?quorum sc').Runner.r_failure with
      | Some f ->
          best := (sc', f);
          true
      | None -> false
    end
  in
  let with_events sc events = { sc with Event.sc_events = events } in
  let changed = ref true in
  while !changed && !runs < budget do
    changed := false;
    (* Truncate: nothing after the failing step can matter. *)
    let sc0, f0 = !best in
    let n = List.length sc0.Event.sc_events in
    if f0.Runner.f_step + 1 < n then
      if try_candidate (with_events sc0 (take (f0.Runner.f_step + 1) sc0.Event.sc_events))
      then changed := true;
    (* ddmin over the event list: remove chunks, halving down to single
       events. Restart the size loop whenever a removal sticks. *)
    let len = ref (max 1 (List.length (fst !best).Event.sc_events / 2)) in
    while !len >= 1 && !runs < budget do
      let i = ref 0 in
      let more = ref true in
      (* The list shrinks under us whenever a removal sticks, so the
         bound is re-derived from the current best each iteration; a
         sticking removal retries the same position. *)
      while !more && !runs < budget do
        let sc0, _ = !best in
        let n = List.length sc0.Event.sc_events in
        if !i < n && n > 1 then begin
          let cand = with_events sc0 (drop_range !i !len sc0.Event.sc_events) in
          if try_candidate cand then changed := true else i := !i + !len
        end
        else more := false
      done;
      len := if !len = 1 then 0 else !len / 2
    done;
    (* Shrink the pool: events referencing a VM beyond the new pool are
       skipped by the runner's preconditions, so every candidate stays
       well-formed. Take the smallest pool that still fails. *)
    let sc0, _ = !best in
    let v = ref 2 in
    let found = ref false in
    while (not !found) && !v < sc0.Event.sc_vms && !runs < budget do
      if try_candidate { sc0 with Event.sc_vms = !v } then begin
        found := true;
        changed := true
      end
      else incr v
    done;
    (* Drop watch modules (the sweep and rotation set), keeping one. *)
    let rec drop_watch () =
      let sc0, _ = !best in
      if List.length sc0.Event.sc_watch > 1 && !runs < budget then
        let dropped =
          List.find_opt
            (fun m ->
              try_candidate
                {
                  sc0 with
                  Event.sc_watch =
                    List.filter (fun m' -> m' <> m) sc0.Event.sc_watch;
                })
            sc0.Event.sc_watch
        in
        match dropped with
        | Some _ ->
            changed := true;
            drop_watch ()
        | None -> ()
    in
    drop_watch ()
  done;
  let sc', f' = !best in
  { sh_scenario = sc'; sh_failure = f'; sh_runs = !runs }
