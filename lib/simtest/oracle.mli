(** Ground truth for the simulation harness.

    The oracle is a shadow bookkeeper: it never reads guest memory, it
    only watches the event stream and tracks which (VM, module) pairs
    {e should} be infected, loaded, or hidden. From that ledger it
    predicts what every survey, check, list comparison, and patrol sweep
    must report — so the harness can fail the moment the checker's
    verdict disagrees with what was actually done to the cloud (a false
    negative, never acceptable) or flags something that was never
    touched (a false positive, acceptable only when the oracle itself
    says no clean majority exists).

    Infection identity is tracked as {e content tags}: two copies of a
    module carry the same tag exactly when their bytes would compare
    equal after reloc adjustment. File-level infections (opcode, stub,
    DLL injection) produce VM-independent tags — the same dropped file
    on two VMs matches, which is how the §III-B mass-infection scenario
    splits the pool into factions. In-memory infections (inline hook,
    pointer hook) get VM-qualified tags; the generator never creates two
    in-memory infections whose contents could actually collide (same
    function hooked on two VMs), so tag equality stays faithful.

    Evasive adversaries make the ledger {e time-aware}: a TOCTOU machine
    means a module's tag depends on the instant it is read, so every
    query is answered at the clock set by {!set_now}, and the observed
    tag ({!tag}, what the foreign-mapping channel serves — a tamper shim
    freezes it) is distinguished from the {!true_tag} the guest actually
    executes. *)

type t

val create : vms:int -> t
(** Every VM starts with the standard catalog modules loaded, all
    clean. *)

(** {1 Ledger queries} *)

val vms : t -> int

val set_now : t -> float -> unit
(** Advance the oracle's virtual clock — every prediction is made "as
    of" this instant. Monotonicity is the caller's business. *)

val now : t -> float

val visible : t -> int -> string -> bool
(** Loaded and not DKOM-hidden — what the Module-Searcher can find. *)

val loaded : t -> int -> string -> bool
val hidden : t -> int -> string -> bool
val on_disk : t -> int -> string -> bool
val tag : t -> int -> string -> string option
(** Content tag a checker reading at {!now} through the foreign-mapping
    channel observes; [None] when not visible. A tamper shim freezes
    this at its install-time value; a TOCTOU cycle modulates it. *)

val true_tag : t -> int -> string -> string option
(** Content tag the guest actually executes at {!now} — what the raw
    physical read channel sees. Differs from {!tag} exactly while a
    tamper shim is lying. *)

val shimmed : t -> int -> string -> bool
val evading : t -> int -> string -> bool

val paged : t -> int -> bool
(** A pager adversary armed [paged_out_rate = 1.0] on the VM (cleared by
    the next pool-wide fault-spec change, which rebuilds every plan). *)

val clean_tag : string

val visible_modules : t -> int -> string list
(** Sorted names visible on the VM. *)

val known_modules : t -> string list
(** Sorted names the ledger has ever tracked on any VM. *)

val faults_armed : t -> bool
val ever_faulted : t -> bool
(** Whether a non-trivial fault spec was ever armed this campaign. *)

val reboots : t -> int
(** Reboots performed, including the implicit one an opcode infection
    triggers — must match the [cloud.vm_reboots] telemetry delta. *)

val restores : t -> int
val infections : t -> int

(** {1 Event application} *)

val apply_infect :
  t -> family:Event.family -> vm:int -> module_name:string -> func:string -> unit
(** Record a {e successful} infection. Opcode also records the implicit
    reboot; stub/DLL record the everywhere-load of the dummy driver. *)

val apply_reboot : t -> int -> unit
(** Also sheds in-memory adversary state (TOCTOU cycle, tamper shim) —
    fresh guest memory — while a pager's fault plan persists. *)

val apply_restore : t -> int -> unit
val apply_load : t -> vm:int -> module_name:string -> unit

val apply_faults : t -> Mc_memsim.Faultplan.spec option -> unit
(** Also clears every pager adversary's per-VM plan:
    [Cloud.set_fault_spec] rebuilds all DomU plans. *)

(** {1 Evasive adversaries}

    Called at the machine's launch instant (with {!set_now} already
    advanced there); the runner drives the live machine, the oracle only
    mirrors its schedule. *)

val apply_evade_toctou :
  t ->
  vm:int ->
  module_name:string ->
  func:string ->
  dwell:float ->
  period:float ->
  unit
(** In-memory tag cycles hook-dirty on [\[start + k·period,
    start + k·period + dwell)] from now on (infect boundary inclusive,
    restore exclusive), exactly {!Mc_malware.Strategy.dirty_at}. *)

val apply_evade_pager : t -> vm:int -> module_name:string -> func:string -> unit
(** Permanent in-memory hook plus {!paged} on the VM — from here on the
    pool runs with faults armed, so predictions loosen accordingly. *)

val apply_evade_tamper :
  t -> vm:int -> module_name:string -> func:string -> unit
(** Freezes the observed {!tag} at its current value while {!true_tag}
    runs hook-dirty; {!expect_anchors} reports the lie. *)

val apply_evade_race : t -> count:int -> module_name:string -> func:string -> unit
(** The same opcode disk patch lands on VMs [0..count-1] in one instant
    (each with its implicit reboot). The VM-independent opcode tag makes
    the majority rule model the vote flip automatically. *)

val expect_anchors : t -> (string * int) list
(** Sorted [(module, vm)] pairs where the two Dom0 read channels must
    disagree at {!now} — a shim serving frozen bytes over memory that
    carries something else. The caller filters to the watch list the
    audit actually covers. *)

(** {1 Predictions} *)

type verdict_class = Intact | Infected | Degraded

val verdict_class_key : verdict_class -> string
val class_of_verdict : Modchecker.Report.verdict -> verdict_class

type survey_expect = {
  x_missing : int list;  (** Sorted VMs verifiably lacking the module. *)
  x_deviants : int list;  (** Sorted VMs the majority vote must flag. *)
  x_verdict : verdict_class;
}

val expect_survey :
  t -> module_name:string -> quorum:float -> survey_expect
(** The survey result when every VM responds: present copies partition
    by tag; a strict-majority class makes the rest deviant; no strict
    majority makes {e every} present VM deviant (the no-trusted-majority
    rule). Exact only while faults are disarmed. *)

type check_expect =
  | Expect_error  (** Target lacks the module — the one-shot API errors. *)
  | Expect_report of { c_verdict : verdict_class; c_matches : int; c_total : int }

val expect_check :
  t -> vm:int -> module_name:string -> quorum:float -> check_expect
(** The single-target vote when every comparison VM responds: matches
    are same-tag visible copies; absence on a comparison VM is a
    responded mismatch. *)

val expect_lists : t -> (string * int list) list
(** Expected list discrepancies when every walk succeeds: modules
    visible somewhere but not everywhere, with the sorted VMs lacking
    them — sorted by module name, exactly as the orchestrator reports. *)

val expected_exit : t -> module_name:string -> quorum:float -> int
(** The {!Modchecker.Exit_code} a fault-free survey of the module must
    produce. *)

val deviation_possible : t -> string -> bool
(** Whether any visible copy carries a non-clean tag — the necessary
    condition for a [Hash_deviation] alarm even under faults (with no
    infected copy present, dropouts alone can never make clean clones
    disagree). *)
