(** Seeded scenario generation.

    One SplitMix64 seed determines everything: cloud size and layout,
    the watch list, and the whole event timeline. The generator runs a
    shadow {!Oracle} while emitting events so preconditions hold by
    construction (no stub infection while [hello.sys] is already loaded,
    at most one in-memory hook per function across the pool — the
    invariant that keeps the oracle's content-tag model faithful). *)

val scenario : seed:int64 -> steps:int -> Event.scenario
(** [scenario ~seed ~steps] — same inputs, same scenario, always. *)

val weighted_classes : string list
(** Every {!Event.class_keys} coverage class the generator can emit —
    the universe a soak's coverage accounting checks against. *)
