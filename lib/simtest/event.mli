(** The simulation harness's scenario language.

    A scenario is everything one campaign needs to replay exactly: the
    cloud's shape, the watch list the patrol sweeps, and a timeline of
    events — infections from the malware catalog, reboots and restores,
    workload churn, fault-plan changes, patrol sweeps, interactive
    checks, and engine request bursts. Scenarios are generated from a
    single seed ({!Gen.scenario}), but they also round-trip through a
    line-oriented script form so a shrunk failing case can be printed,
    replayed with [modchecker simtest --script], and committed as a
    regression test. *)

type family = Opcode | Hook | Stub | Dll_inject | Pointer | Hide
    (** The six malware families of the evaluation: disk patch (loads at
        reboot), in-memory inline hook, DOS-stub patch on [hello.sys]
        (loaded everywhere), import injection into [dummy.sys] (loaded
        everywhere, helper DLL on the victim), read-only function-pointer
        redirect in [hal.dll], and DKOM list unlinking. *)

val family_key : family -> string
val family_of_string : string -> (family, string) result
val all_families : family array

type strategy = Toctou | Pager | Race | Tamper
    (** The four evasive-adversary strategies of {!Mc_malware.Strategy}:
        TOCTOU infect/restore cycling, paging the checker out of the
        victim's frames, a coordinated majority-flipping race, and
        SEVurity-style tampering with the checker's foreign-read
        channel. *)

val strategy_key : strategy -> string
val strategy_of_string : string -> (strategy, string) result
val all_strategies : strategy array

type workload_kind = Idle | Cpu_bound | Heavy

val workload_key : workload_kind -> string
val workload_of_string : string -> (workload_kind, string) result
val stress_of_workload : workload_kind -> Mc_workload.Stress.t

type burst_item = {
  b_priority : Mc_engine.priority;
  b_request : Mc_engine.request;
}

type t =
  | Infect of { family : family; vm : int; module_name : string; func : string }
      (** [module_name]/[func] are fixed by the family for [Stub],
          [Dll_inject] and [Pointer]; [func] is unused by [Hide]. *)
  | Evade of {
      strategy : strategy;
      vm : int;
      module_name : string;
      func : string;
      dwell : int;
      period : int;
    }
      (** Launch an adversary machine at the event's instant. For
          [Race], [vm] is the {e victim count} [k]: VMs [0..k-1] are hit
          (the event must name a whole quorum, and a count keeps the
          script form one token). [dwell]/[period] are virtual seconds;
          only [Toctou] cycles, the one-shot strategies ignore
          [period]. *)
  | Reboot of int
  | Restore of int  (** Revert the VM to its campaign-start snapshot. *)
  | Load of { vm : int; module_name : string }
      (** Ask the guest kernel to (re)load a driver from its own disk —
          which resurrects a dropped-but-unloaded infected file. *)
  | Workload of { vm : int; load : workload_kind }
  | Faults of Mc_memsim.Faultplan.spec option  (** [None] disarms. *)
  | Sweep  (** One patrol sweep over the scenario's watch list. *)
  | Check of { vm : int; module_name : string }
  | Burst of burst_item list  (** Engine requests at mixed priorities. *)

val to_string : t -> string
(** One-line form, e.g. ["infect hook 2 hal.dll HalQueryRealTimeClock"],
    ["faults transient=0.05,seed=9"], ["burst high:check:0:hal.dll,low:lists:-:-"]. *)

val of_string : string -> (t, string) result

val class_keys : t -> string list
(** Stable coverage-class keys the event exercises when applied —
    ["infect.opcode"], ["evade.toctou"], ["faults.paged"] (one per
    nonzero rate), ["sweep"], ... Campaign accounting sums these to
    prove every generator class actually fired. *)

type scenario = {
  sc_vms : int;
  sc_cores : int;
  sc_cloud_seed : int64;
  sc_watch : string list;  (** Modules each [Sweep] surveys. *)
  sc_events : t list;
}

val scenario_to_script : scenario -> string
(** The replayable text form: a [simtest-scenario v1] header line,
    [vms]/[cores]/[cloud-seed]/[watch] fields, then one [event] line per
    event. Round-trips through {!scenario_of_script}. *)

val scenario_of_script : string -> (scenario, string) result
(** Parse {!scenario_to_script}'s output (blank lines and [#] comments
    are ignored). Errors name the offending line. *)
