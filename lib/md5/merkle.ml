(* A Merkle tree over per-page MD5 leaves.

   Leaves are the digests of consecutive [page]-sized spans of a buffer
   (the last leaf may be short). Interior nodes digest the concatenation
   of their two children; an odd node is promoted unchanged, so promotion
   costs no hash. [levels.(0)] holds the leaves and the last level is the
   singleton root. An empty buffer still has one leaf (the digest of the
   empty span), so every tree has a root. *)

type t = {
  page : int;
  length : int;
  levels : Md5.digest array array;
}

let default_page_size = 4096

let page_size t = t.page

let length t = t.length

let leaf_count_of ~page len = if len = 0 then 1 else (len + page - 1) / page

let leaf_bounds ~page len =
  Array.init (leaf_count_of ~page len) (fun i ->
      let off = i * page in
      (off, min page (len - off)))

let leaf_count t = Array.length t.levels.(0)

let leaves t = t.levels.(0)

let root t =
  let top = t.levels.(Array.length t.levels - 1) in
  top.(0)

(* Roll one level up, counting the interior digests actually computed
   (promoted odd nodes are free). *)
let level_up hashed below =
  let n = Array.length below in
  Array.init ((n + 1) / 2) (fun i ->
      if (2 * i) + 1 < n then begin
        incr hashed;
        Md5.digest_string (below.(2 * i) ^ below.((2 * i) + 1))
      end
      else below.(2 * i))

let build_levels leaves =
  let hashed = ref 0 in
  let rec up acc level =
    if Array.length level <= 1 then List.rev (level :: acc)
    else up (level :: acc) (level_up hashed level)
  in
  let levels = Array.of_list (up [] leaves) in
  (levels, !hashed)

let of_leaves ?(page = default_page_size) ~length leaves =
  if page <= 0 then invalid_arg "Merkle.of_leaves: page must be positive";
  if Array.length leaves <> leaf_count_of ~page length then
    invalid_arg "Merkle.of_leaves: wrong leaf count for length";
  let levels, hashed = build_levels (Array.copy leaves) in
  ({ page; length; levels }, hashed)

let leaf_digests ?(page = default_page_size) data =
  Array.map
    (fun (off, len) -> Md5.digest_sub data off len)
    (leaf_bounds ~page (Bytes.length data))

let of_bytes ?(page = default_page_size) data =
  fst (of_leaves ~page ~length:(Bytes.length data) (leaf_digests ~page data))

let interior_hashes t =
  let n = ref 0 in
  for l = 1 to Array.length t.levels - 1 do
    (* A node at level l was hashed iff it has two children below. *)
    n := !n + (Array.length t.levels.(l - 1) / 2)
  done;
  !n

let set_leaves t updates =
  let levels = Array.map Array.copy t.levels in
  let height = Array.length levels in
  let dirty = Hashtbl.create 8 in
  List.iter
    (fun (i, d) ->
      if i < 0 || i >= Array.length levels.(0) then
        invalid_arg "Merkle.set_leaves: leaf index out of range";
      levels.(0).(i) <- d;
      Hashtbl.replace dirty (i / 2) ())
    updates;
  let hashed = ref 0 in
  for l = 1 to height - 1 do
    let below = levels.(l - 1) in
    let here = levels.(l) in
    let next = Hashtbl.create 8 in
    Hashtbl.iter
      (fun i () ->
        (if (2 * i) + 1 < Array.length below then begin
           incr hashed;
           here.(i) <- Md5.digest_string (below.(2 * i) ^ below.((2 * i) + 1))
         end
         else here.(i) <- below.(2 * i));
        Hashtbl.replace next (i / 2) ())
      dirty;
    Hashtbl.reset dirty;
    Hashtbl.iter (Hashtbl.replace dirty) next
  done;
  ({ t with levels }, !hashed)

let rehash t data ~dirty =
  if Bytes.length data <> t.length then
    invalid_arg "Merkle.rehash: buffer length differs from the tree's";
  let bounds = leaf_bounds ~page:t.page t.length in
  set_leaves t
    (List.map
       (fun i ->
         if i < 0 || i >= Array.length bounds then
           invalid_arg "Merkle.rehash: leaf index out of range";
         let off, len = bounds.(i) in
         (i, Md5.digest_sub data off len))
       (List.sort_uniq compare dirty))

let equal_root a b = String.equal (root a) (root b)

let diverging_leaves a b =
  if a.page <> b.page || a.length <> b.length then
    invalid_arg "Merkle.diverging_leaves: trees cover different shapes";
  let compared = ref 1 in
  if String.equal (root a) (root b) then ([], !compared)
  else begin
    (* Descend level by level, expanding only the nodes that differ: a
       k-leaf divergence visits O(k log n) nodes, not all n leaves. *)
    let top = Array.length a.levels - 1 in
    let frontier = ref [ 0 ] in
    for l = top - 1 downto 0 do
      let la = a.levels.(l) and lb = b.levels.(l) in
      let n = Array.length la in
      frontier :=
        List.concat_map
          (fun i ->
            let kids =
              if (2 * i) + 1 < n then [ 2 * i; (2 * i) + 1 ] else [ 2 * i ]
            in
            List.filter
              (fun c ->
                incr compared;
                not (String.equal la.(c) lb.(c)))
              kids)
          !frontier
    done;
    (List.sort compare !frontier, !compared)
  end
