(** Merkle trees over per-page MD5 leaves.

    The fingerprint hot path's O(dirty) representation: a buffer is hashed
    as consecutive [page]-sized leaf digests rolled up pairwise into one
    root. Root equality is digest equality of the whole buffer (same MD5
    collision assumption as a flat digest), but when only k pages of the
    buffer changed, {!rehash} recomputes k leaves plus the O(log n)
    interior nodes on their paths instead of re-hashing everything — and
    {!diverging_leaves} localizes {e which} pages two copies disagree on
    without a byte-level survey.

    Odd nodes are promoted unchanged (no hash), so a single-leaf tree's
    root is its leaf. The empty buffer has one leaf: the digest of the
    empty span. Trees are immutable; updates return new trees sharing
    nothing mutable with the old one. *)

type t

val default_page_size : int
(** 4096 — matching the simulated guest's frame size. *)

val page_size : t -> int

val length : t -> int
(** Total bytes the tree covers. *)

val leaf_count : t -> int

val leaves : t -> Md5.digest array
(** The leaf vector (level 0). Do not mutate. *)

val root : t -> Md5.digest

val leaf_bounds : page:int -> int -> (int * int) array
(** [leaf_bounds ~page len] is each leaf's (offset, length) span of a
    [len]-byte buffer — the fan-out unit for domain-parallel leaf
    hashing. *)

val leaf_digests : ?page:int -> Bytes.t -> Md5.digest array
(** Sequential leaf hashing of a whole buffer. *)

val of_leaves :
  ?page:int -> length:int -> Md5.digest array -> t * int
(** [of_leaves ~length leaves] rolls precomputed leaf digests up into a
    tree, returning it with the number of interior digests computed (the
    metered roll-up cost). Raises [Invalid_argument] when the leaf count
    does not match [length]. *)

val of_bytes : ?page:int -> Bytes.t -> t
(** [of_bytes data] hashes every leaf and rolls up. *)

val interior_hashes : t -> int
(** How many interior digests a from-scratch roll-up of this shape
    computes (promotions are free). *)

val set_leaves : t -> (int * Md5.digest) list -> t * int
(** [set_leaves t updates] replaces the given leaves and recomputes only
    the interior nodes on their root paths, returning the new tree and
    the number of interior digests recomputed. *)

val rehash : t -> Bytes.t -> dirty:int list -> t * int
(** [rehash t data ~dirty] is {!set_leaves} with the dirty leaves
    re-hashed from [data] (which must have the tree's length) — the
    k-dirty-page refresh. Duplicate indices are collapsed. *)

val equal_root : t -> t -> bool

val diverging_leaves : t -> t -> int list * int
(** [diverging_leaves a b] descends the two trees from the root, expanding
    only differing nodes, and returns the leaf indices where the buffers
    disagree plus the number of node comparisons made (O(k log n) for k
    deviant pages). Raises [Invalid_argument] when the trees cover
    different lengths or page sizes. *)
