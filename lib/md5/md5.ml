(* RFC 1321. State words are kept in OCaml ints and masked to 32 bits; on a
   64-bit host this is exact and avoids Int32 boxing in the hot loop. *)

type digest = string

let mask = 0xFFFFFFFF

type ctx = {
  mutable a : int;
  mutable b : int;
  mutable c : int;
  mutable d : int;
  mutable total : int64; (* message length so far, in bytes *)
  block : Bytes.t; (* 64-byte staging buffer *)
  mutable fill : int; (* valid bytes in [block] *)
  m : int array; (* 16-word message schedule, reused across blocks *)
}

let init () =
  {
    a = 0x67452301;
    b = 0xEFCDAB89;
    c = 0x98BADCFE;
    d = 0x10325476;
    total = 0L;
    block = Bytes.create 64;
    fill = 0;
    m = Array.make 16 0;
  }

(* Per-round rotation amounts and sine-table constants, in round order. *)
let s =
  [|
    7; 12; 17; 22; 7; 12; 17; 22; 7; 12; 17; 22; 7; 12; 17; 22;
    5; 9; 14; 20; 5; 9; 14; 20; 5; 9; 14; 20; 5; 9; 14; 20;
    4; 11; 16; 23; 4; 11; 16; 23; 4; 11; 16; 23; 4; 11; 16; 23;
    6; 10; 15; 21; 6; 10; 15; 21; 6; 10; 15; 21; 6; 10; 15; 21;
  |]

let k =
  [|
    0xd76aa478; 0xe8c7b756; 0x242070db; 0xc1bdceee; 0xf57c0faf; 0x4787c62a;
    0xa8304613; 0xfd469501; 0x698098d8; 0x8b44f7af; 0xffff5bb1; 0x895cd7be;
    0x6b901122; 0xfd987193; 0xa679438e; 0x49b40821; 0xf61e2562; 0xc040b340;
    0x265e5a51; 0xe9b6c7aa; 0xd62f105d; 0x02441453; 0xd8a1e681; 0xe7d3fbc8;
    0x21e1cde6; 0xc33707d6; 0xf4d50d87; 0x455a14ed; 0xa9e3e905; 0xfcefa3f8;
    0x676f02d9; 0x8d2a4c8a; 0xfffa3942; 0x8771f681; 0x6d9d6122; 0xfde5380c;
    0xa4beea44; 0x4bdecfa9; 0xf6bb4b60; 0xbebfbc70; 0x289b7ec6; 0xeaa127fa;
    0xd4ef3085; 0x04881d05; 0xd9d4d039; 0xe6db99e5; 0x1fa27cf8; 0xc4ac5665;
    0xf4292244; 0x432aff97; 0xab9423a7; 0xfc93a039; 0x655b59c3; 0x8f0ccc92;
    0xffeff47d; 0x85845dd1; 0x6fa87e4f; 0xfe2ce6e0; 0xa3014314; 0x4e0811a1;
    0xf7537e82; 0xbd3af235; 0x2ad7d2bb; 0xeb86d391;
  |]

let rotl x n = ((x lsl n) lor (x lsr (32 - n))) land mask

let transform ctx buf off =
  (* Word-at-a-time message loads: one bounds-checked 32-bit read per word
     instead of four byte reads, into the context's reusable schedule. *)
  let m = ctx.m in
  for i = 0 to 15 do
    m.(i) <- Int32.to_int (Bytes.get_int32_le buf (off + (i * 4))) land mask
  done;
  let a = ref ctx.a and b = ref ctx.b and c = ref ctx.c and d = ref ctx.d in
  for i = 0 to 63 do
    let f, g =
      if i < 16 then ((!b land !c) lor (lnot !b land !d) land mask, i)
      else if i < 32 then
        ((!d land !b) lor (lnot !d land !c) land mask, ((5 * i) + 1) mod 16)
      else if i < 48 then (!b lxor !c lxor !d, ((3 * i) + 5) mod 16)
      else ((!c lxor (!b lor (lnot !d land mask))) land mask, (7 * i) mod 16)
    in
    let f = f land mask in
    let tmp = !d in
    d := !c;
    c := !b;
    let sum = (!a + f + k.(i) + m.(g)) land mask in
    b := (!b + rotl sum s.(i)) land mask;
    a := tmp
  done;
  ctx.a <- (ctx.a + !a) land mask;
  ctx.b <- (ctx.b + !b) land mask;
  ctx.c <- (ctx.c + !c) land mask;
  ctx.d <- (ctx.d + !d) land mask

let update ctx buf off len =
  if off < 0 || len < 0 || off + len > Bytes.length buf then
    invalid_arg "Md5.update: range out of bounds";
  ctx.total <- Int64.add ctx.total (Int64.of_int len);
  let off = ref off and len = ref len in
  (* Top up a partially filled staging block first. *)
  if ctx.fill > 0 then begin
    let take = min !len (64 - ctx.fill) in
    Bytes.blit buf !off ctx.block ctx.fill take;
    ctx.fill <- ctx.fill + take;
    off := !off + take;
    len := !len - take;
    if ctx.fill = 64 then begin
      transform ctx ctx.block 0;
      ctx.fill <- 0
    end
  end;
  while !len >= 64 do
    transform ctx buf !off;
    off := !off + 64;
    len := !len - 64
  done;
  if !len > 0 then begin
    Bytes.blit buf !off ctx.block ctx.fill !len;
    ctx.fill <- ctx.fill + !len
  end

let update_string ctx s = update ctx (Bytes.unsafe_of_string s) 0 (String.length s)

let final ctx =
  let bit_len = Int64.mul ctx.total 8L in
  let pad_len =
    let rem = Int64.to_int (Int64.rem ctx.total 64L) in
    if rem < 56 then 56 - rem else 120 - rem
  in
  let padding = Bytes.make pad_len '\000' in
  Bytes.set padding 0 '\x80';
  update ctx padding 0 pad_len;
  let tail = Bytes.create 8 in
  Bytes.set_int64_le tail 0 bit_len;
  update ctx tail 0 8;
  assert (ctx.fill = 0);
  let out = Bytes.create 16 in
  Bytes.set_int32_le out 0 (Int32.of_int ctx.a);
  Bytes.set_int32_le out 4 (Int32.of_int ctx.b);
  Bytes.set_int32_le out 8 (Int32.of_int ctx.c);
  Bytes.set_int32_le out 12 (Int32.of_int ctx.d);
  Bytes.unsafe_to_string out

let digest_sub b off len =
  let ctx = init () in
  update ctx b off len;
  final ctx

let digest_bytes b = digest_sub b 0 (Bytes.length b)

(* Safe despite the unsafe cast: [update] only reads from the buffer. *)
let digest_string s = digest_bytes (Bytes.unsafe_of_string s)

let hex_chars = "0123456789abcdef"

let to_hex d =
  let n = String.length d in
  let out = Bytes.create (2 * n) in
  for i = 0 to n - 1 do
    let c = Char.code (String.unsafe_get d i) in
    Bytes.unsafe_set out (2 * i) (String.unsafe_get hex_chars (c lsr 4));
    Bytes.unsafe_set out ((2 * i) + 1) (String.unsafe_get hex_chars (c land 0xf))
  done;
  Bytes.unsafe_to_string out
