(** A fixed pool of OCaml 5 domains with a shared task queue.

    Implements the paper's "modular design can support parallel access of
    virtual machines' memory" extension: the orchestrator's parallel mode
    maps the per-VM search/parse/hash pipeline over this pool. Each guest's
    memory is a distinct heap object, so per-VM tasks share nothing and
    parallelize cleanly. *)

type t

val create : int -> t
(** [create n] spawns [n] worker domains. [n] must be positive. *)

val size : t -> int

val run : t -> (unit -> 'a) -> 'a Deferred.t
(** [run t task] schedules [task] and returns a handle to await. On a
    pool that is shut down (or shuts down concurrently), the handle is
    filled with [Invalid_argument] — awaiting it fails fast, it can
    never hang on a task no worker will run. *)

val parallel_map : t -> ('a -> 'b) -> 'a list -> 'b list
(** [parallel_map t f xs] applies [f] to every element on the pool,
    preserving order. An exception raised by any [f x] is re-raised in the
    caller (after all tasks settle). Safe to call from one caller at a
    time per pool. *)

val parallel_map_timeout :
  t -> timeout_s:float -> ('a -> 'b) -> 'a list -> ('b, exn) result list
(** [parallel_map_timeout t ~timeout_s f xs] is {!parallel_map} with a
    batch deadline: every element's result must arrive within
    [timeout_s] seconds of the call. An element whose task misses the
    deadline yields [Error Deferred.Timed_out] (its deferred is poisoned,
    so a late result is discarded and the task is skipped if still
    queued); an element whose task raised yields that exception as
    [Error]. Order is preserved; the call itself never raises. *)

val shutdown : t -> unit
(** [shutdown t] closes the task channel and joins all workers (queued
    tasks are drained first); the pool is unusable afterwards.
    Idempotent. *)

val with_pool : int -> (t -> 'a) -> 'a
(** [with_pool n f] runs [f] with a fresh pool, always shutting it down. *)
