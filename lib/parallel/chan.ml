type 'a t = {
  queue : 'a Queue.t;
  mutex : Mutex.t;
  nonempty : Condition.t;
  mutable closed : bool;
}

exception Closed

let create () =
  {
    queue = Queue.create ();
    mutex = Mutex.create ();
    nonempty = Condition.create ();
    closed = false;
  }

let push t v =
  Mutex.lock t.mutex;
  if t.closed then begin
    Mutex.unlock t.mutex;
    raise Closed
  end;
  Queue.add v t.queue;
  Condition.signal t.nonempty;
  Mutex.unlock t.mutex

(* Close wakes every blocked consumer; they drain what was pushed before
   the close and then see [Closed]. *)
let close t =
  Mutex.lock t.mutex;
  if not t.closed then begin
    t.closed <- true;
    Condition.broadcast t.nonempty
  end;
  Mutex.unlock t.mutex

let is_closed t =
  Mutex.lock t.mutex;
  let b = t.closed in
  Mutex.unlock t.mutex;
  b

let pop t =
  Mutex.lock t.mutex;
  while Queue.is_empty t.queue && not t.closed do
    Condition.wait t.nonempty t.mutex
  done;
  if Queue.is_empty t.queue then begin
    Mutex.unlock t.mutex;
    raise Closed
  end;
  let v = Queue.pop t.queue in
  Mutex.unlock t.mutex;
  v

let try_pop t =
  Mutex.lock t.mutex;
  let v = if Queue.is_empty t.queue then None else Some (Queue.pop t.queue) in
  Mutex.unlock t.mutex;
  v

let length t =
  Mutex.lock t.mutex;
  let n = Queue.length t.queue in
  Mutex.unlock t.mutex;
  n
