(** A blocking multi-producer multi-consumer queue built on
    [Mutex]/[Condition], used by the domain pool.

    A channel can be {e closed}: producers fail fast instead of
    enqueueing into a queue nobody will drain, and consumers drain the
    remaining elements and then fail instead of blocking forever. This
    is what lets {!Pool.shutdown} race safely against concurrent
    {!Pool.run} calls. *)

type 'a t

exception Closed
(** Raised by {!push} on a closed channel, and by {!pop} once a closed
    channel is drained. *)

val create : unit -> 'a t

val push : 'a t -> 'a -> unit
(** [push t v] enqueues and wakes one waiting consumer.
    @raise Closed if the channel is closed — nothing is enqueued. *)

val pop : 'a t -> 'a
(** [pop t] blocks until an element is available.
    @raise Closed if the channel is closed and empty (elements pushed
    before the close are still delivered). *)

val try_pop : 'a t -> 'a option
(** [try_pop t] is non-blocking; [None] on an empty channel, closed or
    not. *)

val close : 'a t -> unit
(** [close t] marks the channel closed and wakes every blocked consumer.
    Idempotent. *)

val is_closed : 'a t -> bool

val length : 'a t -> int
