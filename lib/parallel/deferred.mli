(** A write-once result cell, filled by a pool worker and awaited by the
    caller. *)

type 'a t

val create : unit -> 'a t

val fill : 'a t -> ('a, exn) result -> unit
(** [fill t r] stores the outcome and wakes waiters. Filling twice raises
    [Invalid_argument]. *)

val fill_error : 'a t -> exn -> Printexc.raw_backtrace -> unit
(** [fill_error t e bt] is [fill t (Error e)] except the capture-site
    backtrace travels with the exception, so {!await} re-raises it as if
    the failure happened in the awaiting domain with the worker's trace
    intact. *)

val await : 'a t -> 'a
(** [await t] blocks until filled, then returns the value or re-raises the
    stored exception (with the original backtrace when it was recorded via
    {!fill_error}). *)

val is_filled : 'a t -> bool
