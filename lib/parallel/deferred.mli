(** A write-once result cell, filled by a pool worker and awaited by the
    caller. *)

type 'a t

exception Timed_out
(** The pseudo-result {!await_timeout} poisons an expired cell with; a
    later {!await} of the same cell re-raises it. *)

val create : unit -> 'a t

val fill : 'a t -> ('a, exn) result -> unit
(** [fill t r] stores the outcome and wakes waiters. Filling twice raises
    [Invalid_argument]. *)

val try_fill : 'a t -> ('a, exn) result -> bool
(** [try_fill t r] is [fill] except an already-filled cell returns
    [false] instead of raising — the write-once discipline for racing
    fillers (a worker completing versus a deadline poisoning). *)

val fill_error : 'a t -> exn -> Printexc.raw_backtrace -> unit
(** [fill_error t e bt] is [fill t (Error e)] except the capture-site
    backtrace travels with the exception, so {!await} re-raises it as if
    the failure happened in the awaiting domain with the worker's trace
    intact. *)

val try_fill_error : 'a t -> exn -> Printexc.raw_backtrace -> bool
(** Non-raising [fill_error], as {!try_fill} is to {!fill}. *)

val await : 'a t -> 'a
(** [await t] blocks until filled, then returns the value or re-raises the
    stored exception (with the original backtrace when it was recorded via
    {!fill_error}). *)

val await_timeout : 'a t -> float -> 'a option
(** [await_timeout t seconds] is [Some (await t)] if the cell fills
    within [seconds] (re-raising a stored exception as {!await} does),
    else [None] — and the cell is then poisoned with {!Timed_out} so a
    worker's late fill is discarded rather than believed: once a
    deadline verdict is returned it is final. *)

val is_filled : 'a t -> bool
