type t = {
  tasks : (unit -> unit) Chan.t;
  workers : unit Domain.t array;
  mutable alive : bool;
}

let worker_loop tasks =
  let rec loop () =
    match Chan.pop tasks with
    | f ->
        f ();
        loop ()
    | exception Chan.Closed -> ()
  in
  loop ()

let create n =
  if n <= 0 then invalid_arg "Pool.create: need a positive worker count";
  let tasks = Chan.create () in
  let workers = Array.init n (fun _ -> Domain.spawn (fun () -> worker_loop tasks)) in
  { tasks; workers; alive = true }

let size t = Array.length t.workers

let shut_down_exn = Invalid_argument "Pool.run: pool is shut down"

let run t task =
  if not t.alive then raise shut_down_exn;
  let d = Deferred.create () in
  (* Telemetry: time-in-queue and time-on-worker histograms. The enqueue
     timestamp is taken here (submitter side) so queue wait includes the
     channel handoff. *)
  let observed = Mc_telemetry.Registry.enabled () in
  let enqueued = if observed then Mc_telemetry.Clock.wall () else 0.0 in
  let work () =
    (* A deadline may have poisoned the deferred while the task sat in
       the queue; its result is already decided, so skip the work. *)
    if Deferred.is_filled d then begin
      if observed then Mc_telemetry.Registry.add "pool.tasks_cancelled" 1
    end
    else begin
      let started =
        if observed then begin
          let now = Mc_telemetry.Clock.wall () in
          Mc_telemetry.Registry.observe "pool.queue_wait_s" (now -. enqueued);
          now
        end
        else 0.0
      in
      let r =
        try Ok (task ())
        with e -> Error (e, Printexc.get_raw_backtrace ())
      in
      if observed then begin
        Mc_telemetry.Registry.observe "pool.task_run_s"
          (Mc_telemetry.Clock.wall () -. started);
        Mc_telemetry.Registry.add "pool.tasks" 1;
        if Result.is_error r then Mc_telemetry.Registry.add "pool.task_errors" 1
      end;
      let filled =
        match r with
        | Ok v -> Deferred.try_fill d (Ok v)
        | Error (e, bt) -> Deferred.try_fill_error d e bt
      in
      (* The await already timed out and moved on; the result is dropped. *)
      if (not filled) && observed then
        Mc_telemetry.Registry.add "pool.tasks_orphaned" 1
    end
  in
  (* [alive] above is only a fast path: a concurrent [shutdown] may close
     the channel between the check and this push. The closed channel
     refuses the task, and the deferred is filled with the error so
     [await] fails fast instead of hanging on a task no worker will ever
     run. *)
  (try Chan.push t.tasks work
   with Chan.Closed -> ignore (Deferred.try_fill d (Error shut_down_exn)));
  d

let parallel_map t f xs =
  let handles = List.map (fun x -> run t (fun () -> f x)) xs in
  (* Await everything before re-raising so no task outlives the call. *)
  let results =
    List.map
      (fun d ->
        try Ok (Deferred.await d)
        with e -> Error (e, Printexc.get_raw_backtrace ()))
      handles
  in
  List.map
    (function
      | Ok v -> v
      | Error (e, bt) -> Printexc.raise_with_backtrace e bt)
    results

let parallel_map_timeout t ~timeout_s f xs =
  let handles = List.map (fun x -> run t (fun () -> f x)) xs in
  let deadline = Unix.gettimeofday () +. timeout_s in
  List.map
    (fun d ->
      let remaining = Float.max 0.0 (deadline -. Unix.gettimeofday ()) in
      match Deferred.await_timeout d remaining with
      | Some v -> Ok v
      | None ->
          Mc_telemetry.Registry.add "pool.tasks_timed_out" 1;
          Error Deferred.Timed_out
      | exception e -> Error e)
    handles

let shutdown t =
  if t.alive then begin
    t.alive <- false;
    Chan.close t.tasks;
    Array.iter Domain.join t.workers
  end

let with_pool n f =
  let t = create n in
  match f t with
  | v ->
      shutdown t;
      v
  | exception e ->
      shutdown t;
      raise e
