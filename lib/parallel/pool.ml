type task = Task of (unit -> unit) | Stop

type t = {
  tasks : task Chan.t;
  workers : unit Domain.t array;
  mutable alive : bool;
}

let worker_loop tasks =
  let rec loop () =
    match Chan.pop tasks with
    | Stop -> ()
    | Task f ->
        f ();
        loop ()
  in
  loop ()

let create n =
  if n <= 0 then invalid_arg "Pool.create: need a positive worker count";
  let tasks = Chan.create () in
  let workers = Array.init n (fun _ -> Domain.spawn (fun () -> worker_loop tasks)) in
  { tasks; workers; alive = true }

let size t = Array.length t.workers

let run t task =
  if not t.alive then invalid_arg "Pool.run: pool is shut down";
  let d = Deferred.create () in
  (* Telemetry: time-in-queue and time-on-worker histograms. The enqueue
     timestamp is taken here (submitter side) so queue wait includes the
     channel handoff. *)
  let observed = Mc_telemetry.Registry.enabled () in
  let enqueued = if observed then Mc_telemetry.Clock.wall () else 0.0 in
  Chan.push t.tasks
    (Task
       (fun () ->
         let started =
           if observed then begin
             let now = Mc_telemetry.Clock.wall () in
             Mc_telemetry.Registry.observe "pool.queue_wait_s" (now -. enqueued);
             now
           end
           else 0.0
         in
         let r =
           try Ok (task ())
           with e -> Error (e, Printexc.get_raw_backtrace ())
         in
         if observed then begin
           Mc_telemetry.Registry.observe "pool.task_run_s"
             (Mc_telemetry.Clock.wall () -. started);
           Mc_telemetry.Registry.add "pool.tasks" 1;
           if Result.is_error r then Mc_telemetry.Registry.add "pool.task_errors" 1
         end;
         match r with
         | Ok v -> Deferred.fill d (Ok v)
         | Error (e, bt) -> Deferred.fill_error d e bt));
  d

let parallel_map t f xs =
  let handles = List.map (fun x -> run t (fun () -> f x)) xs in
  (* Await everything before re-raising so no task outlives the call. *)
  let results =
    List.map
      (fun d ->
        try Ok (Deferred.await d)
        with e -> Error (e, Printexc.get_raw_backtrace ()))
      handles
  in
  List.map
    (function
      | Ok v -> v
      | Error (e, bt) -> Printexc.raise_with_backtrace e bt)
    results

let shutdown t =
  if t.alive then begin
    t.alive <- false;
    Array.iter (fun _ -> Chan.push t.tasks Stop) t.workers;
    Array.iter Domain.join t.workers
  end

let with_pool n f =
  let t = create n in
  match f t with
  | v ->
      shutdown t;
      v
  | exception e ->
      shutdown t;
      raise e
