type 'a t = {
  mutex : Mutex.t;
  filled : Condition.t;
  mutable cell : ('a, exn * Printexc.raw_backtrace option) result option;
}

exception Timed_out

let create () =
  { mutex = Mutex.create (); filled = Condition.create (); cell = None }

let try_fill_cell t r =
  Mutex.lock t.mutex;
  match t.cell with
  | Some _ ->
      Mutex.unlock t.mutex;
      false
  | None ->
      t.cell <- Some r;
      Condition.broadcast t.filled;
      Mutex.unlock t.mutex;
      true

let fill_cell t r =
  if not (try_fill_cell t r) then invalid_arg "Deferred.fill: already filled"

let to_cell = function Ok v -> Ok v | Error e -> Error (e, None)

let fill t r = fill_cell t (to_cell r)

let try_fill t r = try_fill_cell t (to_cell r)

let fill_error t e bt = fill_cell t (Error (e, Some bt))

let try_fill_error t e bt = try_fill_cell t (Error (e, Some bt))

let unwrap = function
  | Ok v -> v
  | Error (e, Some bt) -> Printexc.raise_with_backtrace e bt
  | Error (e, None) -> raise e

let await t =
  Mutex.lock t.mutex;
  while t.cell = None do
    Condition.wait t.filled t.mutex
  done;
  let r = Option.get t.cell in
  Mutex.unlock t.mutex;
  unwrap r

let peek t =
  Mutex.lock t.mutex;
  let r = t.cell in
  Mutex.unlock t.mutex;
  r

(* The stdlib Condition has no timed wait, so poll with a short,
   exponentially growing sleep: worst-case discovery latency stays ~2 ms
   while an immediate fill costs no sleep at all. On timeout the cell is
   poisoned with [Timed_out]: the task's eventual result (if a worker is
   still running it) is discarded — [try_fill] loses the race — so the
   caller's "this VM missed its deadline" verdict can never be
   contradicted by a late fill. *)
let await_timeout t timeout_s =
  let deadline = Unix.gettimeofday () +. timeout_s in
  let rec spin sleep =
    match peek t with
    | Some (Ok v) -> Some v
    | Some (Error _ as r) -> Some (unwrap r)
    | None ->
        if Unix.gettimeofday () >= deadline then
          if try_fill_cell t (Error (Timed_out, None)) then None
          else
            (* Lost the poison race: a worker filled meanwhile. *)
            Option.map unwrap (peek t)
        else begin
          Unix.sleepf sleep;
          spin (Float.min 0.002 (sleep *. 2.0))
        end
  in
  spin 5e-5

let is_filled t =
  Mutex.lock t.mutex;
  let b = t.cell <> None in
  Mutex.unlock t.mutex;
  b
