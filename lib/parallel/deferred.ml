type 'a t = {
  mutex : Mutex.t;
  filled : Condition.t;
  mutable cell : ('a, exn * Printexc.raw_backtrace option) result option;
}

let create () =
  { mutex = Mutex.create (); filled = Condition.create (); cell = None }

let fill_cell t r =
  Mutex.lock t.mutex;
  match t.cell with
  | Some _ ->
      Mutex.unlock t.mutex;
      invalid_arg "Deferred.fill: already filled"
  | None ->
      t.cell <- Some r;
      Condition.broadcast t.filled;
      Mutex.unlock t.mutex

let fill t r =
  fill_cell t (match r with Ok v -> Ok v | Error e -> Error (e, None))

let fill_error t e bt = fill_cell t (Error (e, Some bt))

let await t =
  Mutex.lock t.mutex;
  while t.cell = None do
    Condition.wait t.filled t.mutex
  done;
  let r = Option.get t.cell in
  Mutex.unlock t.mutex;
  match r with
  | Ok v -> v
  | Error (e, Some bt) -> Printexc.raise_with_backtrace e bt
  | Error (e, None) -> raise e

let is_filled t =
  Mutex.lock t.mutex;
  let b = t.cell <> None in
  Mutex.unlock t.mutex;
  b
