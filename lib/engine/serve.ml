module Json = Mc_util.Json
module Deferred = Mc_parallel.Deferred
module Exit_code = Modchecker.Exit_code

type stats = {
  sv_lines : int;
  sv_requests : int;
  sv_responses : int;
  sv_invalid : int;
  sv_busy : int;
  sv_retries : int;
  sv_draining : int;
  sv_max_inflight : int;
  sv_exit : int;
}

let retry_after_s engine =
  let st = Engine_core.stats engine in
  let shards = Array.length st.Engine_core.st_per_shard_serviced in
  let busy =
    Array.fold_left ( +. ) 0.0 st.Engine_core.st_per_shard_busy_s
  in
  let mean_service_s =
    if st.Engine_core.st_completed > 0 then
      busy /. float_of_int st.Engine_core.st_completed
    else 0.001
  in
  let backlog = max 1 (Engine_core.queue_depth engine) in
  Float.max 0.0005
    (mean_service_s *. float_of_int backlog /. float_of_int (max 1 shards))

type inflight = { if_seq : int; if_frame : Wire.frame; if_cell : Engine_core.response Deferred.t }

let run ?(window = 32) ?ledger ?emit engine ~next =
  if window < 1 then invalid_arg "Mc_engine.Serve.run: window must be >= 1";
  let emit = Option.value emit ~default:(fun _ -> ()) in
  let inflight : inflight Queue.t = Queue.create () in
  let lines = ref 0 in
  let requests = ref 0 in
  let responses = ref 0 in
  let invalid = ref 0 in
  let busy = ref 0 in
  let retries = ref 0 in
  let draining = ref 0 in
  let max_inflight = ref 0 in
  let exit = ref Exit_code.ok in
  let account reply = exit := Exit_code.combine !exit (Wire.exit_code reply) in
  let ledger_append (resp : Wire.resp) reply_json =
    match ledger with
    | None -> ()
    | Some l ->
        let surveyed, responded = Wire.vote_counts resp in
        ignore
          (Mc_ledger.append l ~key:(Wire.frame_key resp.Wire.rs_frame)
             ~verdict:(Wire.verdict_key resp) ~surveyed ~responded
             ?root:resp.Wire.rs_root ~meter:resp.Wire.rs_meter
             ~body:(Json.to_string reply_json) ())
  in
  let settle_oldest () =
    let { if_seq; if_frame; if_cell } = Queue.pop inflight in
    let response = Deferred.await if_cell in
    (* The anchor is read after service: the request itself just cached
       (or refreshed) the Merkle print the root summarizes. *)
    let root = Engine_core.anchor_root engine if_frame.Wire.f_request in
    let resp = Wire.resp_of_response ~seq:if_seq ?root if_frame response in
    let reply = Wire.Resp resp in
    emit reply;
    ledger_append resp (Wire.reply_to_json reply);
    account reply;
    incr responses
  in
  let rec admit ~attempt seq frame =
    match
      Engine_core.submit ~priority:frame.Wire.f_priority engine
        frame.Wire.f_request
    with
    | Ok cell ->
        Queue.push { if_seq = seq; if_frame = frame; if_cell = cell } inflight;
        if Queue.length inflight > !max_inflight then
          max_inflight := Queue.length inflight;
        true
    | Error (Engine_core.Queue_full bound) ->
        let reply =
          Wire.Busy
            {
              b_seq = seq;
              b_retry_after_s = retry_after_s engine;
              b_queue_bound = bound;
            }
        in
        emit reply;
        account reply;
        incr busy;
        (* Free capacity the way a client honoring the hint would let
           us: finish the oldest outstanding request; with nothing in
           flight (another session owns the queue), back off for real. *)
        if not (Queue.is_empty inflight) then settle_oldest ()
        else Unix.sleepf (Engine_core.backoff_delay_s ~attempt);
        incr retries;
        admit ~attempt:(attempt + 1) seq frame
    | Error Engine_core.Draining ->
        let reply = Wire.Draining { d_seq = seq } in
        emit reply;
        account reply;
        incr draining;
        false
  in
  let rec pump () =
    match next () with
    | None -> ()
    | Some line ->
        incr lines;
        let trimmed = String.trim line in
        if trimmed = "" || trimmed.[0] = '#' then pump ()
        else begin
          let seq = !requests in
          incr requests;
          (match Wire.parse_line trimmed with
          | Error e ->
              let reply = Wire.Invalid { i_seq = seq; i_error = e } in
              emit reply;
              account reply;
              incr invalid
          | Ok frame ->
              if Queue.length inflight >= window then settle_oldest ();
              ignore (admit ~attempt:0 seq frame));
          pump ()
        end
  in
  pump ();
  while not (Queue.is_empty inflight) do
    settle_oldest ()
  done;
  {
    sv_lines = !lines;
    sv_requests = !requests;
    sv_responses = !responses;
    sv_invalid = !invalid;
    sv_busy = !busy;
    sv_retries = !retries;
    sv_draining = !draining;
    sv_max_inflight = !max_inflight;
    sv_exit = !exit;
  }
