module Json = Mc_util.Json
module Meter = Mc_hypervisor.Meter
module Orchestrator = Modchecker.Orchestrator
module Report = Modchecker.Report
module Exit_code = Modchecker.Exit_code

type frame = {
  f_priority : Engine_core.priority;
  f_request : Engine_core.request;
}

let fields line =
  String.split_on_char ' ' (String.map (function '\t' -> ' ' | c -> c) line)
  |> List.filter (fun s -> s <> "")

let parse_line line =
  let ( let* ) = Result.bind in
  match fields line with
  | [] -> Error "empty request line"
  | kind :: rest ->
      let nth n = List.nth_opt rest n in
      let* f_request =
        match String.lowercase_ascii kind with
        | "check" -> (
            match (nth 0, nth 1) with
            | Some vm, Some module_name -> (
                match int_of_string_opt vm with
                | Some vm when vm >= 0 ->
                    Ok (Engine_core.Check { vm; module_name })
                | _ ->
                    Error
                      (Printf.sprintf "check: VM index expected, got %S" vm))
            | _ -> Error "check: usage `check VM MODULE [PRIORITY]`")
        | "survey" -> (
            match (nth 0, nth 1) with
            | Some _, Some module_name ->
                Ok (Engine_core.Survey { module_name })
            | _ -> Error "survey: usage `survey - MODULE [PRIORITY]`")
        | "lists" -> Ok Engine_core.Lists
        | other ->
            Error
              (Printf.sprintf "unknown request kind %S (check|survey|lists)"
                 other)
      in
      let* f_priority =
        match nth 2 with
        | Some p when p <> "-" -> Engine_core.priority_of_string p
        | _ -> Ok Engine_core.Normal
      in
      Ok { f_priority; f_request }

let line_of_frame f =
  let p = Engine_core.priority_key f.f_priority in
  match f.f_request with
  | Engine_core.Check { vm; module_name } ->
      Printf.sprintf "check %d %s %s" vm module_name p
  | Engine_core.Survey { module_name } ->
      Printf.sprintf "survey - %s %s" module_name p
  | Engine_core.Lists -> Printf.sprintf "lists - - %s" p

let frame_key f = Engine_core.request_key f.f_request

let schema = "modchecker/wire@1"

type body =
  | Report_body of Report.module_report
  | Survey_body of Report.survey
  | Lists_body of Orchestrator.list_comparison
  | Error_body of string

type resp = {
  rs_seq : int;
  rs_frame : frame;
  rs_shard : int;
  rs_wait_s : float;
  rs_service_s : float;
  rs_meter : (string * int) list;
  rs_root : string option;
  rs_body : body;
}

type reply =
  | Resp of resp
  | Busy of { b_seq : int; b_retry_after_s : float; b_queue_bound : int }
  | Draining of { d_seq : int }
  | Invalid of { i_seq : int; i_error : string }

let meter_pairs m =
  List.concat_map
    (fun phase ->
      let prefix = Meter.phase_key phase in
      List.filter_map
        (fun (name, v) ->
          if v = 0 then None else Some (prefix ^ "." ^ name, v))
        (Meter.pairs (Meter.get m phase)))
    [ Meter.Searcher; Meter.Parser; Meter.Checker ]

let resp_of_response ~seq ?root frame (r : Engine_core.response) =
  let rs_body =
    match r.Engine_core.r_outcome with
    | Engine_core.Checked (Ok o) -> Report_body o.Orchestrator.report
    | Engine_core.Checked (Error e) -> Error_body e
    | Engine_core.Surveyed s -> Survey_body s
    | Engine_core.Listed lc -> Lists_body lc
  in
  {
    rs_seq = seq;
    rs_frame = frame;
    rs_shard = r.Engine_core.r_shard;
    rs_wait_s = r.Engine_core.r_wait_s;
    rs_service_s = r.Engine_core.r_service_s;
    rs_meter = meter_pairs r.Engine_core.r_meter;
    rs_root = root;
    rs_body;
  }

let verdict_key resp =
  match resp.rs_body with
  | Report_body r -> Report.verdict_key r.Report.verdict
  | Survey_body s -> Report.verdict_key s.Report.s_verdict
  | Lists_body lc ->
      if lc.Orchestrator.lc_unreachable <> [] then "degraded"
      else if lc.Orchestrator.lc_discrepancies <> [] then "infected"
      else "intact"
  | Error_body _ -> "error"

let vote_counts resp =
  match resp.rs_body with
  | Report_body r -> (r.Report.surveyed, r.Report.responded)
  | Survey_body s -> (s.Report.s_surveyed, s.Report.s_responded)
  | Lists_body _ | Error_body _ -> (0, 0)

let exit_code = function
  | Resp r -> (
      match r.rs_body with
      | Report_body rep -> Exit_code.of_verdict rep.Report.verdict
      | Survey_body s -> Exit_code.of_survey s
      | Lists_body lc -> Exit_code.of_lists lc
      | Error_body _ -> Exit_code.error)
  | Busy _ -> Exit_code.ok
  | Draining _ | Invalid _ -> Exit_code.error

(* --- JSON codec --------------------------------------------------------- *)

let lists_schema = "modchecker/lists@1"

let lists_to_json (lc : Orchestrator.list_comparison) =
  let open Json in
  Obj
    [
      ("schema", String lists_schema);
      ( "discrepancies",
        List
          (List.map
             (fun (d : Orchestrator.list_discrepancy) ->
               Obj
                 [
                   ("module", String d.Orchestrator.ld_module);
                   ( "present_on",
                     List (List.map (fun v -> Int v) d.Orchestrator.present_on)
                   );
                   ( "missing_on",
                     List (List.map (fun v -> Int v) d.Orchestrator.missing_on)
                   );
                 ])
             lc.Orchestrator.lc_discrepancies) );
      ( "unreachable",
        List
          (List.map
             (fun (vm, reason) ->
               Obj [ ("vm", Int vm); ("reason", String reason) ])
             lc.Orchestrator.lc_unreachable) );
    ]

let ( let* ) = Result.bind

let obj_fields what = function
  | Json.Obj fields -> Ok fields
  | _ -> Error (what ^ ": expected an object")

let field fields name =
  match List.assoc_opt name fields with
  | Some v -> Ok v
  | None -> Error (Printf.sprintf "missing field %S" name)

let str_field fields name =
  let* v = field fields name in
  match v with
  | Json.String s -> Ok s
  | _ -> Error (Printf.sprintf "field %S must be a string" name)

let int_field fields name =
  let* v = field fields name in
  match v with
  | Json.Int i -> Ok i
  | _ -> Error (Printf.sprintf "field %S must be an int" name)

(* The emitter prints a fraction-free float as an integer literal, so a
   float field must accept both shapes back. *)
let float_field fields name =
  let* v = field fields name in
  match v with
  | Json.Float f -> Ok f
  | Json.Int i -> Ok (float_of_int i)
  | _ -> Error (Printf.sprintf "field %S must be a number" name)

let int_list_field fields name =
  let* v = field fields name in
  match v with
  | Json.List items ->
      List.fold_left
        (fun acc item ->
          let* acc = acc in
          match item with
          | Json.Int i -> Ok (i :: acc)
          | _ -> Error (Printf.sprintf "field %S must list ints" name))
        (Ok []) items
      |> Result.map List.rev
  | _ -> Error (Printf.sprintf "field %S must be a list" name)

let lists_of_json j =
  let* fields = obj_fields "lists comparison" j in
  let* tag = str_field fields "schema" in
  let* () =
    if String.equal tag lists_schema then Ok ()
    else Error (Printf.sprintf "schema %S, expected %S" tag lists_schema)
  in
  let* discrepancies =
    let* v = field fields "discrepancies" in
    match v with
    | Json.List items ->
        List.fold_left
          (fun acc item ->
            let* acc = acc in
            let* df = obj_fields "discrepancy" item in
            let* ld_module = str_field df "module" in
            let* present_on = int_list_field df "present_on" in
            let* missing_on = int_list_field df "missing_on" in
            Ok ({ Orchestrator.ld_module; present_on; missing_on } :: acc))
          (Ok []) items
        |> Result.map List.rev
    | _ -> Error "field \"discrepancies\" must be a list"
  in
  let* unreachable =
    let* v = field fields "unreachable" in
    match v with
    | Json.List items ->
        List.fold_left
          (fun acc item ->
            let* acc = acc in
            let* uf = obj_fields "unreachable" item in
            let* vm = int_field uf "vm" in
            let* reason = str_field uf "reason" in
            Ok ((vm, reason) :: acc))
          (Ok []) items
        |> Result.map List.rev
    | _ -> Error "field \"unreachable\" must be a list"
  in
  Ok
    {
      Orchestrator.lc_discrepancies = discrepancies;
      lc_unreachable = unreachable;
    }

let request_to_json (r : Engine_core.request) =
  let open Json in
  match r with
  | Engine_core.Check { vm; module_name } ->
      Obj
        [
          ("kind", String "check");
          ("vm", Int vm);
          ("module", String module_name);
        ]
  | Engine_core.Survey { module_name } ->
      Obj [ ("kind", String "survey"); ("module", String module_name) ]
  | Engine_core.Lists -> Obj [ ("kind", String "lists") ]

let request_of_json j =
  let* fields = obj_fields "request" j in
  let* kind = str_field fields "kind" in
  match kind with
  | "check" ->
      let* vm = int_field fields "vm" in
      let* module_name = str_field fields "module" in
      Ok (Engine_core.Check { vm; module_name })
  | "survey" ->
      let* module_name = str_field fields "module" in
      Ok (Engine_core.Survey { module_name })
  | "lists" -> Ok Engine_core.Lists
  | other -> Error (Printf.sprintf "unknown request kind %S" other)

let body_to_json = function
  | Report_body r -> Report.to_json r
  | Survey_body s -> Report.survey_to_json s
  | Lists_body lc -> lists_to_json lc
  | Error_body e -> Json.Obj [ ("error", Json.String e) ]

(* The body shape follows the request kind, except that any kind's run
   can end in a protocol-level error. *)
let body_of_json (request : Engine_core.request) j =
  let is_error =
    match j with
    | Json.Obj [ ("error", Json.String _) ] -> true
    | _ -> false
  in
  if is_error then
    match j with
    | Json.Obj [ ("error", Json.String e) ] -> Ok (Error_body e)
    | _ -> assert false
  else
    match request with
    | Engine_core.Check _ ->
        Result.map (fun r -> Report_body r) (Report.of_json j)
    | Engine_core.Survey _ ->
        Result.map (fun s -> Survey_body s) (Report.survey_of_json j)
    | Engine_core.Lists ->
        Result.map (fun lc -> Lists_body lc) (lists_of_json j)

let reply_to_json reply =
  let open Json in
  let tagged ty rest = Obj (("schema", String schema) :: ("type", String ty) :: rest) in
  match reply with
  | Resp r ->
      tagged "response"
        [
          ("seq", Int r.rs_seq);
          ("key", String (frame_key r.rs_frame));
          ("priority", String (Engine_core.priority_key r.rs_frame.f_priority));
          ("request", request_to_json r.rs_frame.f_request);
          ("shard", Int r.rs_shard);
          ("wait_s", Float r.rs_wait_s);
          ("service_s", Float r.rs_service_s);
          ("meter", Obj (List.map (fun (k, v) -> (k, Int v)) r.rs_meter));
          ("root", match r.rs_root with None -> Null | Some h -> String h);
          ("verdict", String (verdict_key r));
          ("body", body_to_json r.rs_body);
        ]
  | Busy { b_seq; b_retry_after_s; b_queue_bound } ->
      tagged "busy"
        [
          ("seq", Int b_seq);
          ("retry_after_s", Float b_retry_after_s);
          ("queue_bound", Int b_queue_bound);
        ]
  | Draining { d_seq } -> tagged "draining" [ ("seq", Int d_seq) ]
  | Invalid { i_seq; i_error } ->
      tagged "invalid" [ ("seq", Int i_seq); ("error", String i_error) ]

let reply_of_json j =
  let* fields = obj_fields "wire reply" j in
  let* tag = str_field fields "schema" in
  let* () =
    if String.equal tag schema then Ok ()
    else Error (Printf.sprintf "schema %S, expected %S" tag schema)
  in
  let* ty = str_field fields "type" in
  match ty with
  | "response" ->
      let* rs_seq = int_field fields "seq" in
      let* prio = str_field fields "priority" in
      let* f_priority = Engine_core.priority_of_string prio in
      let* req_json = field fields "request" in
      let* f_request = request_of_json req_json in
      let* rs_shard = int_field fields "shard" in
      let* rs_wait_s = float_field fields "wait_s" in
      let* rs_service_s = float_field fields "service_s" in
      let* rs_meter =
        let* v = field fields "meter" in
        match v with
        | Json.Obj pairs ->
            List.fold_left
              (fun acc (k, v) ->
                let* acc = acc in
                match v with
                | Json.Int i -> Ok ((k, i) :: acc)
                | _ -> Error "meter counts must be ints")
              (Ok []) pairs
            |> Result.map List.rev
        | _ -> Error "field \"meter\" must be an object"
      in
      let* rs_root =
        let* v = field fields "root" in
        match v with
        | Json.Null -> Ok None
        | Json.String h -> Ok (Some h)
        | _ -> Error "field \"root\" must be a string or null"
      in
      let* body_json = field fields "body" in
      let* rs_body = body_of_json f_request body_json in
      Ok
        (Resp
           {
             rs_seq;
             rs_frame = { f_priority; f_request };
             rs_shard;
             rs_wait_s;
             rs_service_s;
             rs_meter;
             rs_root;
             rs_body;
           })
  | "busy" ->
      let* b_seq = int_field fields "seq" in
      let* b_retry_after_s = float_field fields "retry_after_s" in
      let* b_queue_bound = int_field fields "queue_bound" in
      Ok (Busy { b_seq; b_retry_after_s; b_queue_bound })
  | "draining" ->
      let* d_seq = int_field fields "seq" in
      Ok (Draining { d_seq })
  | "invalid" ->
      let* i_seq = int_field fields "seq" in
      let* i_error = str_field fields "error" in
      Ok (Invalid { i_seq; i_error })
  | other -> Error (Printf.sprintf "unknown reply type %S" other)
