(** The connection layer: a simulated duplex session over one engine.

    [run] plays the server side of a stream connection — request lines
    in via [next], {!Wire.reply} frames out via [emit] — with the
    properties a real socket loop would need:

    - {b Bounded in-flight window.} At most [window] requests are
      outstanding at once; the oldest is awaited (and its response
      emitted) before another is admitted, so a slow pipeline propagates
      backpressure to the client instead of buffering unboundedly.
    - {b Admission control on the wire.} A [Queue_full] rejection
      becomes a [Busy] reply carrying a retry-after hint derived from
      the engine's live backlog and mean service time; the session then
      frees capacity (settling the oldest in-flight request, or backing
      off {!Engine_core.backoff_delay_s} when none is in flight) and
      resubmits. [Draining] and parse failures likewise answer on the
      wire rather than dropping the request.
    - {b Attestation.} Every response is appended to the [ledger] (when
      given): request key, verdict, vote counts, Merkle anchor root,
      meter summary, and the MD5 of the exact reply JSON emitted — the
      chain an auditor later walks with [Mc_ledger.verify].

    Responses are emitted in request order (the window settles oldest
    first); [Busy]/[Draining]/[Invalid] replies interleave at the moment
    they happen, correlated by [seq]. Comment ([#]) and blank lines are
    skipped without consuming a sequence number, so a batch request file
    replays over the stream unchanged. *)

type stats = {
  sv_lines : int;  (** Lines consumed, comments and blanks included. *)
  sv_requests : int;  (** Frames parsed (= sequence numbers issued). *)
  sv_responses : int;  (** [Resp] replies emitted. *)
  sv_invalid : int;  (** [Invalid] replies emitted. *)
  sv_busy : int;  (** [Busy] replies emitted (one per rejection). *)
  sv_retries : int;  (** Resubmissions after a [Busy]. *)
  sv_draining : int;  (** [Draining] replies emitted. *)
  sv_max_inflight : int;  (** High-water mark of the in-flight window. *)
  sv_exit : int;
      (** {!Wire.exit_code} combined over every reply — the session's
          batch verdict. *)
}

val run :
  ?window:int ->
  ?ledger:Mc_ledger.t ->
  ?emit:(Wire.reply -> unit) ->
  Engine_core.t ->
  next:(unit -> string option) ->
  stats
(** [run engine ~next] pumps the session until [next] returns [None],
    then settles every in-flight request. [window] defaults to 32 and
    must be at least 1. The engine is left running — the caller decides
    when to [drain] (a session is one connection, not the service). *)

val retry_after_s : Engine_core.t -> float
(** The [Busy] hint: the engine's current backlog times its observed
    mean service time, spread across its shards — an estimate of when a
    freed slot is likely. Never below 0.5 ms. *)
