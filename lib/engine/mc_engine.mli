(** A long-lived checking service over one cloud.

    Where {!Modchecker.Orchestrator} answers a single question
    ("is this module intact right now?"), the engine is the process that
    answers {e many} of them concurrently: check, survey, and module-list
    requests are submitted into a bounded priority queue, routed to a
    shard of the VM pool, serviced by that shard's own domain pool, and
    answered through a {!Mc_parallel.Deferred.t}.

    Three properties distinguish it from looping over the one-shot API:

    - {b Sharding.} The request stream is partitioned across [shards]
      dispatcher domains, each owning a private worker pool, so
      independent requests overlap instead of queueing behind one
      sequential caller.
    - {b Coalescing.} An arriving request identical to one already
      queued or in flight does not run again — it receives the same
      deferred, and with it the in-flight requester's answer. Duplicate
      fan-in (every tenant asking about [hal.dll] after an advisory)
      costs one metered pipeline run, not N.
    - {b Shared incremental state.} All requests run over one
      {!Modchecker.Orchestrator.incremental}: per-VM page caches and
      footprint-keyed digest caches persist across requests, so a survey
      that follows a survey prices as staleness probes.

    Verdicts are identical to the standalone entry points' — the engine
    changes who does the work and what it costs, never what is decided
    (a property the engine tests assert for every detection scenario).

    On top of the core sit the service's protocol layers: {!Wire} — the
    typed line/JSON frames requests and responses travel as — and
    {!Serve} — the duplex session loop with windowed backpressure,
    protocol-level admission control, and hash-chained attestation into
    an [Mc_ledger.t]. *)

include module type of struct
  include Engine_core
end

module Wire = Wire
module Serve = Serve

val request_of_string : string -> (request, string) result
[@@deprecated "use Mc_engine.Wire.parse_line: one parser for line, kind, and priority"]
(** @deprecated Use {!Wire.parse_line}; this is its request projection. *)

val priority_of_request_line : string -> (priority, string) result
[@@deprecated "use Mc_engine.Wire.parse_line: one parser for line, kind, and priority"]
(** @deprecated Use {!Wire.parse_line}; this is its priority projection.
    (Unlike the historical two-call API, a line whose {e kind} is
    invalid now errors here too.) *)
