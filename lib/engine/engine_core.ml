module Cloud = Mc_hypervisor.Cloud
module Meter = Mc_hypervisor.Meter
module Orchestrator = Modchecker.Orchestrator
module Report = Modchecker.Report
module Patrol = Modchecker.Patrol
module Pool = Mc_parallel.Pool
module Deferred = Mc_parallel.Deferred
module Tel = Mc_telemetry.Registry
module Span = Mc_telemetry.Span

type priority = High | Normal | Low

let priority_key = function High -> "high" | Normal -> "normal" | Low -> "low"

let priority_of_string s =
  match String.lowercase_ascii s with
  | "high" -> Ok High
  | "normal" -> Ok Normal
  | "low" -> Ok Low
  | other ->
      Error (Printf.sprintf "unknown priority %S (high|normal|low)" other)

let priority_index = function High -> 0 | Normal -> 1 | Low -> 2

let priorities = 3

type request =
  | Check of { vm : int; module_name : string }
  | Survey of { module_name : string }
  | Lists

let request_key = function
  | Check { vm; module_name } -> Printf.sprintf "check:%d:%s" vm module_name
  | Survey { module_name } -> "survey:" ^ module_name
  | Lists -> "lists"

type outcome =
  | Checked of (Orchestrator.outcome, string) result
  | Surveyed of Report.survey
  | Listed of Orchestrator.list_comparison

type response = {
  r_request : request;
  r_outcome : outcome;
  r_meter : Meter.t;
  r_shard : int;
  r_wait_s : float;
  r_service_s : float;
}

type rejection = Queue_full of int | Draining

let rejection_message = function
  | Queue_full n -> Printf.sprintf "queue full (bound %d)" n
  | Draining -> "engine is draining"

type entry = {
  e_request : request;
  e_cell : response Deferred.t;
  e_submitted : float;
}

type shard = {
  sh_id : int;
  sh_pool : Pool.t;
  sh_cond : Condition.t;
  sh_queues : entry Queue.t array;  (* one FIFO per priority *)
  sh_meter : Meter.t;
      (* The merge of every meter this shard's requests produced — the
         per-shard virtual cost, whose max over shards is the service's
         critical path on ideal hardware. *)
  mutable sh_serviced : int;
  mutable sh_busy_s : float;
}

type t = {
  eng_cloud : Cloud.t;
  eng_config : Orchestrator.Config.t;
  eng_inc : Orchestrator.incremental;
      (* One incremental state for every request the engine ever
         services: the page caches are per-VM and version-checked, the
         digest caches footprint-keyed, so sharing across shards is safe
         and is where the engine's cost advantage comes from. *)
  eng_mutex : Mutex.t;
      (* Guards queues, the pending table, and all counters. Never held
         while a request is being serviced. *)
  eng_shards : shard array;
  eng_queue_bound : int;
  eng_pending : (request, entry) Hashtbl.t;
      (* Coalescing map: request → its queued-or-in-flight entry. An
         entry leaves the table only when its deferred is settled, so a
         duplicate arriving mid-service still joins. *)
  eng_meter : Meter.t;
  mutable eng_queued : int;
  mutable eng_draining : bool;
  mutable eng_submitted : int;
  mutable eng_coalesced : int;
  mutable eng_rejected : int;
  mutable eng_completed : int;
  mutable eng_max_depth : int;
  mutable eng_run_backoffs : int;
  mutable eng_dispatchers : unit Domain.t list;
}

let now () = Unix.gettimeofday ()

let shard_of t = function
  | Check { vm; _ } -> vm mod Array.length t.eng_shards
  | Survey { module_name } ->
      Hashtbl.hash module_name mod Array.length t.eng_shards
  | Lists -> 0

(* Caller holds the engine mutex. *)
let take_next sh =
  let rec go i =
    if i >= priorities then None
    else if Queue.is_empty sh.sh_queues.(i) then go (i + 1)
    else Some (Queue.pop sh.sh_queues.(i))
  in
  go 0

let execute t sh req meter =
  let config =
    {
      t.eng_config with
      Orchestrator.Config.mode = Orchestrator.Parallel sh.sh_pool;
      incremental = Some t.eng_inc;
    }
  in
  match req with
  | Check { vm; module_name } ->
      let r =
        Orchestrator.check_module ~config t.eng_cloud ~target_vm:vm
          ~module_name
      in
      (match r with
      | Ok o ->
          List.iter
            (fun w -> Meter.merge meter w.Orchestrator.work_meter)
            o.Orchestrator.work
      | Error _ -> ());
      Checked r
  | Survey { module_name } ->
      Surveyed (Orchestrator.survey ~config ~meter t.eng_cloud ~module_name)
  | Lists -> Listed (Orchestrator.survey_module_lists ~config ~meter t.eng_cloud)

let service t sh e =
  let started = now () in
  let wait_s = started -. e.e_submitted in
  let meter = Meter.create () in
  let result =
    Tel.with_span
      ~attrs:
        [ ("request", String (request_key e.e_request)); ("shard", Int sh.sh_id) ]
      "engine.request"
    @@ fun _sp ->
    try Ok (execute t sh e.e_request meter)
    with exn -> Error (exn, Printexc.get_raw_backtrace ())
  in
  let service_s = now () -. started in
  Mutex.lock t.eng_mutex;
  Meter.merge t.eng_meter meter;
  Meter.merge sh.sh_meter meter;
  Hashtbl.remove t.eng_pending e.e_request;
  t.eng_completed <- t.eng_completed + 1;
  sh.sh_serviced <- sh.sh_serviced + 1;
  sh.sh_busy_s <- sh.sh_busy_s +. service_s;
  Mutex.unlock t.eng_mutex;
  if Tel.enabled () then begin
    Tel.add "engine.completed" 1;
    Tel.observe "engine.wait_s" wait_s;
    Tel.observe "engine.service_s" service_s;
    Tel.add (Printf.sprintf "engine.shard.%d.serviced" sh.sh_id) 1;
    Tel.set_gauge (Printf.sprintf "engine.shard.%d.busy_s" sh.sh_id)
      sh.sh_busy_s
  end;
  (* try_fill, not fill: the cell is settled exactly once even if a
     future variant races a deadline poisoner, mirroring the pool's
     write-once discipline. *)
  match result with
  | Ok outcome ->
      ignore
        (Deferred.try_fill e.e_cell
           (Ok
              {
                r_request = e.e_request;
                r_outcome = outcome;
                r_meter = meter;
                r_shard = sh.sh_id;
                r_wait_s = wait_s;
                r_service_s = service_s;
              }))
  | Error (exn, bt) -> ignore (Deferred.try_fill_error e.e_cell exn bt)

let dispatcher t sh =
  let rec loop () =
    Mutex.lock t.eng_mutex;
    let rec next () =
      match take_next sh with
      | Some e ->
          t.eng_queued <- t.eng_queued - 1;
          Tel.set_gauge "engine.queue.depth" (float_of_int t.eng_queued);
          Some e
      | None ->
          if t.eng_draining then None
          else begin
            Condition.wait sh.sh_cond t.eng_mutex;
            next ()
          end
    in
    let taken = next () in
    Mutex.unlock t.eng_mutex;
    match taken with
    | None -> ()  (* draining and this shard's queues are empty *)
    | Some e ->
        service t sh e;
        loop ()
  in
  loop ()

let create ?(shards = 2) ?(workers_per_shard = 2) ?(queue_bound = 64)
    ?(config = Orchestrator.Config.default) cloud =
  if shards < 1 then invalid_arg "Mc_engine.create: shards must be >= 1";
  if workers_per_shard < 1 then
    invalid_arg "Mc_engine.create: workers_per_shard must be >= 1";
  if queue_bound < 1 then
    invalid_arg "Mc_engine.create: queue_bound must be >= 1";
  let shard i =
    {
      sh_id = i;
      sh_pool = Pool.create workers_per_shard;
      sh_cond = Condition.create ();
      sh_queues = Array.init priorities (fun _ -> Queue.create ());
      sh_meter = Meter.create ();
      sh_serviced = 0;
      sh_busy_s = 0.0;
    }
  in
  let t =
    {
      eng_cloud = cloud;
      eng_config = config;
      eng_inc = Orchestrator.create_incremental ();
      eng_mutex = Mutex.create ();
      eng_shards = Array.init shards shard;
      eng_queue_bound = queue_bound;
      eng_pending = Hashtbl.create 64;
      eng_meter = Meter.create ();
      eng_queued = 0;
      eng_draining = false;
      eng_submitted = 0;
      eng_coalesced = 0;
      eng_rejected = 0;
      eng_completed = 0;
      eng_max_depth = 0;
      eng_run_backoffs = 0;
      eng_dispatchers = [];
    }
  in
  t.eng_dispatchers <-
    Array.to_list
      (Array.map (fun sh -> Domain.spawn (fun () -> dispatcher t sh))
         t.eng_shards);
  t

let submit ?(priority = Normal) t request =
  Mutex.lock t.eng_mutex;
  if t.eng_draining then begin
    t.eng_rejected <- t.eng_rejected + 1;
    Mutex.unlock t.eng_mutex;
    Tel.add "engine.rejected" 1;
    Error Draining
  end
  else
    match Hashtbl.find_opt t.eng_pending request with
    | Some e ->
        t.eng_coalesced <- t.eng_coalesced + 1;
        Mutex.unlock t.eng_mutex;
        Tel.add "engine.coalesce.hits" 1;
        Ok e.e_cell
    | None ->
        if t.eng_queued >= t.eng_queue_bound then begin
          t.eng_rejected <- t.eng_rejected + 1;
          Mutex.unlock t.eng_mutex;
          Tel.add "engine.rejected" 1;
          Error (Queue_full t.eng_queue_bound)
        end
        else begin
          let e =
            {
              e_request = request;
              e_cell = Deferred.create ();
              e_submitted = now ();
            }
          in
          let sh = t.eng_shards.(shard_of t request) in
          Hashtbl.replace t.eng_pending request e;
          Queue.push e sh.sh_queues.(priority_index priority);
          t.eng_queued <- t.eng_queued + 1;
          if t.eng_queued > t.eng_max_depth then
            t.eng_max_depth <- t.eng_queued;
          t.eng_submitted <- t.eng_submitted + 1;
          Tel.set_gauge "engine.queue.depth" (float_of_int t.eng_queued);
          Condition.signal sh.sh_cond;
          Mutex.unlock t.eng_mutex;
          Tel.add "engine.submitted" 1;
          Ok e.e_cell
        end

let queue_depth t =
  Mutex.lock t.eng_mutex;
  let d = t.eng_queued in
  Mutex.unlock t.eng_mutex;
  d

let backoff_delay_s ~attempt =
  let base = 0.0005 and cap = 0.05 in
  Float.min cap (base *. Float.of_int (1 lsl min (max 0 attempt) 10))

let run ?(priority = Normal) t request =
  let rec go attempt =
    match submit ~priority t request with
    | Ok cell -> Deferred.await cell
    | Error (Queue_full _) ->
        (* Real (not virtual) backoff: the queue drains at service speed,
           so each miss waits twice as long as the last, up to the cap —
           a saturated queue converges instead of being hammered at a
           fixed cadence. *)
        Mutex.lock t.eng_mutex;
        t.eng_run_backoffs <- t.eng_run_backoffs + 1;
        Mutex.unlock t.eng_mutex;
        Tel.add "engine.run.backoffs" 1;
        Unix.sleepf (backoff_delay_s ~attempt);
        go (attempt + 1)
    | Error Draining -> failwith "Mc_engine.run: engine is draining"
  in
  go 0

let drain t =
  Mutex.lock t.eng_mutex;
  t.eng_draining <- true;
  Array.iter (fun sh -> Condition.broadcast sh.sh_cond) t.eng_shards;
  let dispatchers = t.eng_dispatchers in
  t.eng_dispatchers <- [];
  Mutex.unlock t.eng_mutex;
  (* Dispatchers keep servicing until their queues are empty, so joining
     them is what guarantees every admitted deferred is settled. *)
  List.iter Domain.join dispatchers;
  Array.iter (fun sh -> Pool.shutdown sh.sh_pool) t.eng_shards

type stats = {
  st_submitted : int;
  st_coalesced : int;
  st_rejected : int;
  st_completed : int;
  st_max_queue_depth : int;
  st_run_backoffs : int;
  st_per_shard_serviced : int array;
  st_per_shard_busy_s : float array;
}

let stats t =
  Mutex.lock t.eng_mutex;
  let s =
    {
      st_submitted = t.eng_submitted;
      st_coalesced = t.eng_coalesced;
      st_rejected = t.eng_rejected;
      st_completed = t.eng_completed;
      st_max_queue_depth = t.eng_max_depth;
      st_run_backoffs = t.eng_run_backoffs;
      st_per_shard_serviced =
        Array.map (fun sh -> sh.sh_serviced) t.eng_shards;
      st_per_shard_busy_s = Array.map (fun sh -> sh.sh_busy_s) t.eng_shards;
    }
  in
  Mutex.unlock t.eng_mutex;
  s

let meter t = t.eng_meter

let shard_meters t = Array.map (fun sh -> sh.sh_meter) t.eng_shards

let cloud t = t.eng_cloud

let anchor_root t request =
  let root vm module_name =
    Orchestrator.merkle_root t.eng_inc t.eng_cloud ~vm ~module_name
  in
  let scan ?first module_name =
    let vms = List.init (Cloud.vm_count t.eng_cloud) Fun.id in
    let order =
      match first with
      | Some vm -> vm :: List.filter (fun v -> v <> vm) vms
      | None -> vms
    in
    List.find_map (fun vm -> root vm module_name) order
  in
  match request with
  | Check { vm; module_name } -> scan ~first:vm module_name
  | Survey { module_name } -> scan module_name
  | Lists -> None

let patrol ?(config = Patrol.default_config) ?events t ~until =
  let await_response = function
    | Ok cell -> Deferred.await cell
    | Error rej -> failwith ("Mc_engine.patrol: " ^ rejection_message rej)
  in
  let driver () =
    (* Submit the whole sweep first so the shards overlap its surveys,
       then await; any identical interactive request meanwhile coalesces
       with the sweep's. *)
    let submitted =
      List.map
        (fun m -> (m, submit ~priority:Low t (Survey { module_name = m })))
        config.Patrol.watch
    in
    let lists_submitted =
      if config.Patrol.compare_lists then Some (submit ~priority:Low t Lists)
      else None
    in
    let sw_surveys =
      List.map
        (fun (m, d) ->
          let r = await_response d in
          match r.r_outcome with
          | Surveyed s -> (m, s, r.r_meter)
          | Checked _ | Listed _ -> assert false)
        submitted
    in
    let sw_lists =
      Option.map
        (fun d ->
          let r = await_response d in
          match r.r_outcome with
          | Listed lc -> (lc, r.r_meter)
          | Checked _ | Surveyed _ -> assert false)
        lists_submitted
    in
    { Patrol.sw_surveys; sw_lists; sw_anchors = []; sw_overhead = None }
  in
  Patrol.run_driven ~config ?events t.eng_cloud ~until driver

let patrol_events ?(config = Patrol.default_config) ?events ?full_every_s t
    ~until =
  let await_response = function
    | Ok cell -> Deferred.await cell
    | Error rej -> failwith ("Mc_engine.patrol_events: " ^ rejection_message rej)
  in
  (* Trap reactions jump the queue: a write to a watched page is the
     strongest signal the engine ever sees, so its targeted re-check runs
     at High priority, ahead of interactive checks. The periodic safety
     sweeps stay at Low, like polling patrol sweeps. *)
  let survey ~high m =
    let priority = if high then High else Low in
    let r = await_response (submit ~priority t (Survey { module_name = m })) in
    match r.r_outcome with
    | Surveyed s -> (m, s, r.r_meter)
    | Checked _ | Listed _ -> assert false
  in
  let lists ~high () =
    let priority = if high then High else Low in
    let r = await_response (submit ~priority t Lists) in
    match r.r_outcome with
    | Listed lc -> Some (lc, r.r_meter)
    | Checked _ | Surveyed _ -> assert false
  in
  (* The session arms watches from [eng_inc] — the same shared caches
     every engine request populates, so footprints are already warm for
     anything the engine has checked before. *)
  let session =
    Patrol.Events.create ~config ~inc:t.eng_inc ~survey ~lists t.eng_cloud
  in
  Patrol.run_events_driven ~config ?events ?full_every_s t.eng_cloud ~until
    session
