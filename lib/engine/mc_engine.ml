include Engine_core
module Wire = Wire
module Serve = Serve

let request_of_string line =
  Result.map (fun f -> f.Wire.f_request) (Wire.parse_line line)

let priority_of_request_line line =
  Result.map (fun f -> f.Wire.f_priority) (Wire.parse_line line)
