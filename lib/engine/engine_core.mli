(** The engine proper: sharded dispatch, admission control, coalescing.

    This is the internal core behind {!Mc_engine} — see that module's
    documentation for the service model. The wire protocol ({!Wire}) and
    the connection layer ({!Serve}) build on the types here. *)

type t

type priority = High | Normal | Low

val priority_key : priority -> string
(** ["high"], ["normal"], ["low"]. *)

val priority_of_string : string -> (priority, string) result

type request =
  | Check of { vm : int; module_name : string }
      (** One target VM voted against the pool
          ({!Modchecker.Orchestrator.check_module}). *)
  | Survey of { module_name : string }
      (** Full-mesh comparison ({!Modchecker.Orchestrator.survey}). *)
  | Lists
      (** Cross-VM module-list comparison
          ({!Modchecker.Orchestrator.survey_module_lists}). *)

val request_key : request -> string
(** Stable display form, e.g. ["check:0:hal.dll"]. *)

type outcome =
  | Checked of (Modchecker.Orchestrator.outcome, string) result
      (** [Error] is {!Modchecker.Orchestrator.check_module}'s error
          (module absent on target, target unreachable...), exactly as
          the one-shot API reports it. *)
  | Surveyed of Modchecker.Report.survey
  | Listed of Modchecker.Orchestrator.list_comparison

type response = {
  r_request : request;
  r_outcome : outcome;
  r_meter : Mc_hypervisor.Meter.t;
      (** Every operation performed on behalf of this request; shared by
          all coalesced submitters — which is precisely the saving. *)
  r_shard : int;  (** Shard that serviced it. *)
  r_wait_s : float;  (** Real seconds queued before service began. *)
  r_service_s : float;  (** Real seconds of service. *)
}

type rejection =
  | Queue_full of int
      (** The bounded queue is at the given capacity; back off and
          resubmit. Coalesced duplicates are exempt — they consume no
          queue slot. *)
  | Draining  (** {!drain} has begun; no new work is admitted. *)

val rejection_message : rejection -> string

val create :
  ?shards:int ->
  ?workers_per_shard:int ->
  ?queue_bound:int ->
  ?config:Modchecker.Orchestrator.Config.t ->
  Mc_hypervisor.Cloud.t ->
  t
(** [create cloud] starts the service: [shards] dispatcher domains
    (default 2), each with its own [workers_per_shard]-domain pool
    (default 2), admitting at most [queue_bound] queued requests
    (default 64). [config] seeds every request's
    {!Modchecker.Orchestrator.Config.t}; its [mode] and [incremental]
    fields are overridden by the engine (each shard supplies its pool,
    and all requests share one engine-wide incremental state). *)

val submit :
  ?priority:priority -> t -> request -> (response Mc_parallel.Deferred.t, rejection) result
(** [submit t request] enqueues (or coalesces) and returns the deferred
    to await. A request identical to one queued or in flight returns
    that request's deferred and keeps its priority. The deferred is
    always settled eventually — by a response, by the error the request
    raised, or at the latest by {!drain}. *)

val queue_depth : t -> int
(** Requests currently queued (not yet taken by a dispatcher) — the
    live backlog a retry-after hint is computed from. *)

val backoff_delay_s : attempt:int -> float
(** The bounded-exponential client backoff schedule: 0.5 ms doubled per
    attempt, capped at 50 ms. Pure — exposed so tests can assert the
    schedule without racing a real queue. *)

val run : ?priority:priority -> t -> request -> response
(** [submit] + await, sleeping {!backoff_delay_s} (bounded-exponential,
    counted in [st_run_backoffs] and on the ["engine.run.backoffs"]
    telemetry counter) between attempts while the queue is full. Raises
    [Failure] when submitted after {!drain}, and re-raises whatever
    exception the request's service raised. *)

val drain : t -> unit
(** Stop admitting, service everything already queued, join the
    dispatchers, and shut down the shard pools. Every deferred ever
    returned by {!submit} is settled when [drain] returns — no request
    is dropped unanswered. Idempotent; submissions during and after
    reject with {!Draining}. *)

type stats = {
  st_submitted : int;  (** Admitted requests (coalesced joins excluded). *)
  st_coalesced : int;  (** Submissions answered by an existing deferred. *)
  st_rejected : int;  (** Submissions refused ([Queue_full] or [Draining]). *)
  st_completed : int;  (** Requests serviced (deferred settled). *)
  st_max_queue_depth : int;
  st_run_backoffs : int;  (** Backoff sleeps {!run} paid on a full queue. *)
  st_per_shard_serviced : int array;
  st_per_shard_busy_s : float array;  (** Real service seconds per shard. *)
}

val stats : t -> stats

val meter : t -> Mc_hypervisor.Meter.t
(** The merge of every serviced request's meter: the engine's total
    metered VMI work, comparable against the same requests run
    standalone. *)

val shard_meters : t -> Mc_hypervisor.Meter.t array
(** Per-shard merges of the same counts: shard [i]'s metered work. The
    max over shards of their priced virtual seconds is the service's
    critical path — what the wall clock would be on hardware with one
    core per shard worker, and the honest scaling measure on a host with
    fewer cores than shards. *)

val cloud : t -> Mc_hypervisor.Cloud.t

val anchor_root : t -> request -> string option
(** [anchor_root t request] is the hex Merkle anchor digest
    ({!Modchecker.Orchestrator.merkle_root}) of the module the request
    was about, read from the engine's shared incremental cache: the
    target VM's root for a check (falling back to the first VM holding
    one), the first cached root for a survey, [None] for a lists walk or
    when the engine runs without [Config.merkle]. Dom0-local — it reads
    what servicing the request just cached, which is what an attestation
    ledger entry for that response must anchor. *)

val patrol :
  ?config:Modchecker.Patrol.config ->
  ?events:(float * (Mc_hypervisor.Cloud.t -> unit)) list ->
  t ->
  until:float ->
  Modchecker.Patrol.outcome
(** The patrol sweep loop ({!Modchecker.Patrol.run_driven}) with every
    survey and list walk submitted to this engine as a [Low]-priority
    request — a sweep is just another request class, sharing the queue,
    the shards, and the caches with interactive checks. [config.watch]
    must fit the engine's queue bound. The engine stays running
    afterwards. *)

val patrol_events :
  ?config:Modchecker.Patrol.config ->
  ?events:(float * (Mc_hypervisor.Cloud.t -> unit)) list ->
  ?full_every_s:float ->
  t ->
  until:float ->
  Modchecker.Patrol.outcome
(** Event-driven patrol ({!Modchecker.Patrol.run_events_driven}) on this
    engine: watches are armed from the engine's shared incremental
    caches, trap-triggered targeted re-checks are submitted at [High]
    priority (a write to a watched page outranks interactive traffic),
    and the periodic safety sweeps at [Low] like polling sweeps. The
    engine stays running afterwards. *)
