(** The engine's wire protocol: typed request/response frames with one
    versioned JSON codec.

    Requests travel as text lines ([kind vm module \[priority\]], the
    batch-file format [serve] always accepted); {!parse_line} is the one
    parser — batch mode, streaming mode, and the tests all share it, so
    the dialects can never drift. Responses travel as single-line JSON
    objects tagged with {!schema}; {!reply_to_json}/{!reply_of_json}
    round-trip every reply shape, and the ledger attests the exact bytes
    {!reply_to_json} produces. Admission control is part of the
    protocol: a full queue answers [Busy] (with a retry-after hint), a
    stopping engine answers [Draining], and an unparseable line answers
    [Invalid] — the connection never just drops a request. *)

type frame = {
  f_priority : Engine_core.priority;
  f_request : Engine_core.request;
}
(** One parsed request line: what to do and how urgently. *)

val parse_line : string -> (frame, string) result
(** [parse_line line] parses one whitespace-separated request line:
    [check VM MODULE \[PRIORITY\]], [survey - MODULE \[PRIORITY\]], or
    [lists \[- \[- \[PRIORITY\]\]\]], with ["-"] for unused fields and
    the priority defaulting to [normal]. This is the single parser
    behind batch files, the stream protocol, and the deprecated
    [Mc_engine.request_of_string]/[priority_of_request_line] pair it
    replaced. Errors name the offending field. *)

val line_of_frame : frame -> string
(** Canonical text form, explicit priority; [parse_line] inverts it. *)

val frame_key : frame -> string
(** The frame's request key ({!Engine_core.request_key}). *)

val schema : string
(** ["modchecker/wire@1"] — tagged on every serialized reply. *)

type body =
  | Report_body of Modchecker.Report.module_report
      (** A check's verdict. *)
  | Survey_body of Modchecker.Report.survey
  | Lists_body of Modchecker.Orchestrator.list_comparison
  | Error_body of string
      (** The request ran and failed (module absent on target, target
          unreachable...) — a protocol-level answer, not a crash. *)

type resp = {
  rs_seq : int;  (** The request's 0-based sequence number. *)
  rs_frame : frame;  (** The request being answered. *)
  rs_shard : int;
  rs_wait_s : float;
  rs_service_s : float;
  rs_meter : (string * int) list;
      (** Non-zero metered counts, ["phase.counter"] keys. *)
  rs_root : string option;
      (** The module's Merkle anchor root, when the engine had one. *)
  rs_body : body;
}

type reply =
  | Resp of resp
  | Busy of { b_seq : int; b_retry_after_s : float; b_queue_bound : int }
      (** Admission refused ([Queue_full]); resubmit after the hint. *)
  | Draining of { d_seq : int }
      (** The engine is shutting down; the request was not admitted. *)
  | Invalid of { i_seq : int; i_error : string }
      (** The line did not parse; [i_error] is {!parse_line}'s message. *)

val meter_pairs : Mc_hypervisor.Meter.t -> (string * int) list
(** The meter's non-zero counts as ["phase.counter"] pairs — the form
    [rs_meter] and the ledger carry. *)

val resp_of_response :
  seq:int -> ?root:string -> frame -> Engine_core.response -> resp
(** Package an engine response as a wire response. *)

val verdict_key : resp -> string
(** ["intact"], ["infected"], ["degraded"], or ["error"] — the response
    body's verdict, with a lists body judged like its exit code (any
    unreachable VM degrades, else any discrepancy infects). *)

val vote_counts : resp -> int * int
(** [(surveyed, responded)] — the quorum evidence behind the verdict
    ([0, 0] for a lists body, whose walk has no fixed electorate). *)

val exit_code : reply -> Modchecker.Exit_code.t
(** The reply's contribution to a batch exit code: a response maps
    through {!Modchecker.Exit_code}; [Busy] is advisory (the request is
    retried, its eventual response counts) so it contributes [ok];
    [Draining] and [Invalid] are unanswered requests — [error]. *)

val reply_to_json : reply -> Mc_util.Json.t
(** The versioned single-object form shared by [serve --requests],
    [serve --stream], and the ledger entry body. Round-trips through
    {!reply_of_json}. *)

val reply_of_json : Mc_util.Json.t -> (reply, string) result
(** Parse {!reply_to_json}'s output back. Errors on a missing or
    different [schema] tag and on any missing or mistyped field. *)

val lists_to_json : Modchecker.Orchestrator.list_comparison -> Mc_util.Json.t
(** The lists-body payload codec (also used standalone by the CLI's
    lists rendering). Round-trips through {!lists_of_json}. *)

val lists_of_json :
  Mc_util.Json.t -> (Modchecker.Orchestrator.list_comparison, string) result
