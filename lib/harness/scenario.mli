(** The paper's detection experiments (§V-B) as runnable scenarios.

    Each experiment stages one infection technique on a fresh cloud, runs
    ModChecker against the infected VM and against a clean control VM, and
    records which artifacts were flagged versus what the paper reports.

    Every experiment takes an optional [faults] spec that arms the seeded
    fault-injection plan on the cloud it builds (X9): with faults enabled
    the same verdicts must emerge as long as quorum holds, and a check
    that loses quorum reports [degraded] rather than pretending to a
    detection or a miss. With [faults] omitted (or all-zero) the results
    are bit-identical to the fault-free harness. *)

type detection = {
  exp_id : string;  (** "E1".."E4", "X-DKOM". *)
  technique : string;
  infected_module : string;
  target_vm : int;
  expected_flags : string list;
      (** Artifact names the paper reports mismatching. *)
  observed_flags : string list;
  detected : bool;
      (** The infected VM's verdict is [Infected] (a quorum-backed failed
          majority vote — never a degraded one). *)
  flags_exact : bool;  (** Observed set equals the expected set. *)
  clean_vm_ok : bool;  (** A clean VM still votes INTACT. *)
  degraded : bool;
      (** Some verdict in the experiment was [Degraded] (quorum lost to
          injected faults) — an availability event, counted separately
          from detection. *)
  details : string;
}

val exp1_single_opcode :
  ?vms:int -> ?seed:int64 -> ?faults:Mc_memsim.Faultplan.spec -> unit ->
  (detection, string) result

val exp2_inline_hook :
  ?vms:int -> ?seed:int64 -> ?faults:Mc_memsim.Faultplan.spec -> unit ->
  (detection, string) result

val exp3_stub_modification :
  ?vms:int -> ?seed:int64 -> ?faults:Mc_memsim.Faultplan.spec -> unit ->
  (detection, string) result

val exp4_dll_injection :
  ?vms:int -> ?seed:int64 -> ?faults:Mc_memsim.Faultplan.spec -> unit ->
  (detection, string) result

val ext_dkom_hiding :
  ?vms:int -> ?seed:int64 -> ?faults:Mc_memsim.Faultplan.spec -> unit ->
  (detection, string) result
(** Extension: module hidden by DKOM, caught by cross-VM module-list
    comparison rather than by hashing. VMs whose list walk is lost to
    faults are excluded from the discrepancy evidence (and set
    [degraded]), never counted as "missing the module". *)

val ext_pointer_hook :
  ?vms:int -> ?seed:int64 -> ?faults:Mc_memsim.Faultplan.spec -> unit ->
  (detection, string) result
(** Extension: SSDT-style function-pointer redirection in read-only data;
    flags .rdata (the slot) and .text (the cave payload). *)

val run_all :
  ?vms:int -> ?seed:int64 -> ?faults:Mc_memsim.Faultplan.spec -> unit ->
  (detection, string) result list
