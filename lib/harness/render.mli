(** Text rendering of the reproduced figures and tables, shared by the
    bench harness and the CLI. *)

val detection_table : (Scenario.detection, string) result list -> string
(** The §V-B results as one table: expected vs observed flags, verdicts. *)

val fig_series : title:string -> Figures.fig_point list -> string
(** Fig. 7/8 rendering: a table of per-component and total times plus an
    ASCII chart of the four series. *)

val fig9 : Figures.fig9_result -> string
(** Fig. 9 rendering: CPU/memory time series with introspection windows
    marked, and the perturbation summary line. *)

val ablation_table : Figures.ablation_row list -> string

val cross_pointer_table : Figures.cross_pointer_row list -> string

val parallel_table : Figures.parallel_row list -> string

val incremental_table : Figures.incremental_row list -> string
(** X6 rendering: full vs incremental steady-state sweep cost by pool
    size. *)

val merkle_table : Figures.merkle_row list -> string
(** X13 rendering: flat vs Merkle steady sweep cost by dirty pages per
    VM, with leaf/interior re-hash counts. *)

val strategy_table : Figures.strategy_row list -> string

val patrol_table : Figures.patrol_row list -> string

val events_table : Figures.events_row list -> string
(** X14 rendering: polling intervals vs event-driven write traps on idle
    cost and time-to-detect. *)

val fault_table : Figures.fault_row list -> string
(** X9 rendering: detection suite results by injected transient-fault
    rate, with retry/abort counters. *)

val baseline_table : Figures.baseline_row list -> string

val engine_table : Figures.engine_row list -> string

val federation_table : Figures.federation_row list -> string
(** X12 as a table. *)

val replay_table : Figures.replay_row list -> string

val evasion_table : Figures.evasion_row list -> string
(** X16 rendering: detection probability and mean TTD per patrol mode
    against the TOCTOU restorer. *)
