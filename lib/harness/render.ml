module Table = Mc_util.Table
module Monitor = Mc_workload.Monitor

let yn b = if b then "yes" else "NO"

let detection_table results =
  let rows =
    List.map
      (fun r ->
        match r with
        | Error e -> [ "?"; "error"; e; ""; ""; ""; ""; ""; "" ]
        | Ok (d : Scenario.detection) ->
            [
              d.exp_id;
              d.technique;
              d.infected_module;
              Printf.sprintf "Dom%d" (d.target_vm + 1);
              String.concat " " d.expected_flags;
              String.concat " " d.observed_flags;
              yn d.detected;
              yn (d.flags_exact && d.clean_vm_ok);
              (if d.degraded then "DEGRADED" else "no");
            ])
      results
  in
  Table.render
    ~header:
      [
        "exp"; "technique"; "module"; "victim"; "expected flags";
        "observed flags"; "detected"; "exact+clean"; "degraded";
      ]
    rows

let fig_series ~title points =
  let rows =
    List.map
      (fun (p : Figures.fig_point) ->
        [
          string_of_int p.n_vms;
          Printf.sprintf "%.2f" p.searcher_ms;
          Printf.sprintf "%.2f" p.parser_ms;
          Printf.sprintf "%.2f" p.checker_ms;
          Printf.sprintf "%.2f" p.total_ms;
        ])
      points
  in
  let table =
    Table.render
      ~header:
        [ "#VMs"; "searcher (ms)"; "parser (ms)"; "checker (ms)"; "total (ms)" ]
      rows
  in
  let series name f =
    (name, List.map (fun (p : Figures.fig_point) -> (float_of_int p.n_vms, f p)) points)
  in
  let chart =
    Table.chart ~title ~x_label:"number of VMs" ~y_label:"runtime (ms)"
      [
        series "total" (fun p -> p.total_ms);
        series "Module-Searcher" (fun p -> p.searcher_ms);
        series "Integrity-Checker" (fun p -> p.checker_ms);
        series "Module-Parser" (fun p -> p.parser_ms);
      ]
  in
  title ^ "\n" ^ table ^ chart

let fig9 (r : Figures.fig9_result) =
  let in_window ts = List.exists (fun (lo, hi) -> ts >= lo && ts < hi) r.windows in
  let rows =
    List.filter_map
      (fun (s : Monitor.sample) ->
        (* Print one row per 2 seconds to keep the table readable. *)
        if Float.rem s.ts 2.0 <> 0.0 then None
        else
          Some
            [
              Printf.sprintf "%.0f" s.ts;
              Printf.sprintf "%.1f" s.cpu_idle_pct;
              Printf.sprintf "%.1f" s.cpu_user_pct;
              Printf.sprintf "%.1f" s.cpu_privileged_pct;
              Printf.sprintf "%.1f" s.free_phys_mem_pct;
              Printf.sprintf "%.0f" s.page_faults_per_s;
              (if in_window s.ts then "<== VMI" else "");
            ])
      r.samples
  in
  let table =
    Table.render
      ~header:
        [
          "t (s)"; "cpu idle %"; "user %"; "privileged %"; "free mem %";
          "page faults/s"; "introspection";
        ]
      rows
  in
  let chart =
    Table.chart ~title:"Fig 9: guest CPU busy % (boxes = VMI windows)"
      ~x_label:"time (s)" ~y_label:"cpu busy %"
      [
        ( "cpu busy",
          List.map
            (fun (s : Monitor.sample) ->
              (s.ts, s.cpu_user_pct +. s.cpu_privileged_pct))
            r.samples );
        ( "VMI window marker",
          List.concat_map
            (fun (lo, hi) -> [ (lo, 0.0); (hi, 0.0) ])
            r.windows );
      ]
  in
  Printf.sprintf
    "%s%s\nperturbation during introspection: %.3f percentage points of CPU \
     busy (paper: no significant perturbation)\n"
    table chart r.perturbation_pct

let ablation_table rows =
  Table.render
    ~header:
      [
        "base alignment"; "trials"; "Algorithm 2 exact"; "reloc-guided exact";
        "mean residual diff bytes";
      ]
    (List.map
       (fun (r : Figures.ablation_row) ->
         [
           Printf.sprintf "0x%x" r.alignment;
           string_of_int r.trials;
           Printf.sprintf "%d/%d" r.heuristic_ok r.trials;
           Printf.sprintf "%d/%d" r.exact_ok r.trials;
           Printf.sprintf "%.1f" r.mean_residual_diffs;
         ])
       rows)

let cross_pointer_table rows =
  Table.render
    ~header:
      [
        "cross-module pointers"; "trials"; "Algorithm 2 clean";
        "reloc-guided clean"; "mean residual diff bytes";
      ]
    (List.map
       (fun (r : Figures.cross_pointer_row) ->
         [
           string_of_int r.cross_pointers;
           string_of_int r.cp_trials;
           Printf.sprintf "%d/%d" r.heuristic_clean r.cp_trials;
           Printf.sprintf "%d/%d" r.exact_clean r.cp_trials;
           Printf.sprintf "%.1f" r.mean_residual;
         ])
       rows)

let parallel_table rows =
  Table.render
    ~header:[ "Dom0 workers"; "wall (ms)"; "speedup" ]
    (List.map
       (fun (r : Figures.parallel_row) ->
         [
           string_of_int r.workers;
           Printf.sprintf "%.2f" r.wall_ms;
           Printf.sprintf "%.2fx" r.speedup;
         ])
       rows)

let incremental_table rows =
  Table.render
    ~header:
      [ "VMs"; "full sweep (ms)"; "incr 1st (ms)"; "incr steady (ms)";
        "speedup" ]
    (List.map
       (fun (r : Figures.incremental_row) ->
         [
           string_of_int r.ir_vms;
           Printf.sprintf "%.2f" (r.ir_full_sweep_s *. 1000.0);
           Printf.sprintf "%.2f" (r.ir_first_sweep_s *. 1000.0);
           Printf.sprintf "%.2f" (r.ir_steady_sweep_s *. 1000.0);
           Printf.sprintf "%.1fx" r.ir_speedup;
         ])
       rows)

let merkle_table rows =
  Table.render
    ~header:
      [ "dirty/VM"; "flat sweep (ms)"; "merkle sweep (ms)"; "leaves";
        "interior"; "speedup" ]
    (List.map
       (fun (r : Figures.merkle_row) ->
         [
           string_of_int r.mk_dirty;
           Printf.sprintf "%.2f" (r.mk_flat_s *. 1000.0);
           Printf.sprintf "%.2f" (r.mk_merkle_s *. 1000.0);
           string_of_int r.mk_leaves;
           string_of_int r.mk_nodes;
           Printf.sprintf "%.1fx" r.mk_speedup;
         ])
       rows)

let strategy_table rows =
  Table.render
    ~header:
      [ "strategy (module)"; "bytes hashed"; "bytes scanned";
        "checker CPU (ms)"; "deviants" ]
    (List.map
       (fun (r : Figures.strategy_row) ->
         [
           r.st_name;
           string_of_int r.st_bytes_hashed;
           string_of_int r.st_bytes_scanned;
           Printf.sprintf "%.2f" r.st_checker_ms;
           (if r.st_deviants = [] then "(none)"
            else
              String.concat ","
                (List.map (fun v -> Printf.sprintf "Dom%d" (v + 1)) r.st_deviants));
         ])
       rows)

let patrol_table rows =
  Table.render
    ~header:
      [ "sweep interval (s)"; "time to detect (s)"; "sweeps";
        "Dom0 CPU duty (%)" ]
    (List.map
       (fun (r : Figures.patrol_row) ->
         [
           Printf.sprintf "%.0f" r.pt_interval_s;
           Printf.sprintf "%.1f" r.pt_ttd_s;
           string_of_int r.pt_sweeps;
           Printf.sprintf "%.3f" r.pt_cpu_duty_pct;
         ])
       rows)

let events_table rows =
  Table.render
    ~header:
      [ "mode"; "steady CPU (s / 600s idle)"; "time to detect (s)"; "checks" ]
    (List.map
       (fun (r : Figures.events_row) ->
         [
           r.ev_label;
           Printf.sprintf "%.4f" r.ev_steady_cpu_s;
           Printf.sprintf "%.3f" r.ev_ttd_s;
           string_of_int r.ev_checks;
         ])
       rows)

let fault_table rows =
  Table.render
    ~header:
      [ "transient rate"; "detected"; "exact+clean"; "degraded"; "errors";
        "retries"; "aborts" ]
    (List.map
       (fun (r : Figures.fault_row) ->
         [
           Printf.sprintf "%.0f%%" (r.fl_transient *. 100.0);
           Printf.sprintf "%d/%d" r.fl_detected r.fl_scenarios;
           Printf.sprintf "%d/%d" r.fl_exact r.fl_scenarios;
           string_of_int r.fl_degraded;
           string_of_int r.fl_errors;
           string_of_int r.fl_retries;
           string_of_int r.fl_aborts;
         ])
       rows)

let baseline_table rows =
  Table.render
    ~header:[ "scenario"; "SVV"; "hash DB"; "LKIM"; "ModChecker" ]
    (List.map
       (fun (r : Figures.baseline_row) ->
         [
           r.scenario;
           Figures.baseline_cell_string r.svv;
           Figures.baseline_cell_string r.hashdb;
           Figures.baseline_cell_string r.lkim;
           Figures.baseline_cell_string r.modchecker;
         ])
       rows)

let engine_table rows =
  Table.render
    ~header:
      [ "dup"; "requests"; "standalone (ms)"; "engine (ms)"; "coalesced";
        "speedup" ]
    (List.map
       (fun (r : Figures.engine_row) ->
         [
           string_of_int r.er_dup;
           string_of_int r.er_requests;
           Printf.sprintf "%.2f" (r.er_standalone_s *. 1000.0);
           Printf.sprintf "%.2f" (r.er_engine_s *. 1000.0);
           string_of_int r.er_coalesced;
           Printf.sprintf "%.1fx" r.er_speedup;
         ])
       rows)

let federation_table rows =
  Table.render
    ~header:
      [ "hosts"; "racks"; "VMs"; "builds"; "detected"; "skew FP"; "parity";
        "fleet cpu (s)"; "critical (s)" ]
    (List.map
       (fun (r : Figures.federation_row) ->
         [
           string_of_int r.fd_hosts;
           string_of_int r.fd_racks;
           string_of_int r.fd_vms;
           string_of_int r.fd_levels;
           (if r.fd_detected then "yes" else "NO");
           string_of_int r.fd_skew_fp;
           (if r.fd_parity then "yes" else "NO");
           Printf.sprintf "%.3f" r.fd_fleet_cpu_s;
           Printf.sprintf "%.3f" r.fd_critical_s;
         ])
       rows)

let replay_table rows =
  Table.render
    ~header:
      [ "shards"; "requests"; "coalesced"; "busy"; "retries";
        "critical (s)"; "total (s)"; "req/s (virt)"; "speedup"; "ledger" ]
    (List.map
       (fun (r : Figures.replay_row) ->
         [
           string_of_int r.rp_shards;
           string_of_int r.rp_requests;
           string_of_int r.rp_coalesced;
           string_of_int r.rp_busy;
           string_of_int r.rp_retries;
           Printf.sprintf "%.3f" r.rp_critical_s;
           Printf.sprintf "%.3f" r.rp_total_s;
           Printf.sprintf "%.0f" r.rp_rps;
           Printf.sprintf "%.2fx" r.rp_speedup;
           (if r.rp_ledger_ok then "verified" else "FAILED");
         ])
       rows)

let evasion_table rows =
  Table.render
    ~header:
      [ "mode"; "detection probability"; "mean time to detect (s)"; "trials" ]
    (List.map
       (fun (r : Figures.evasion_row) ->
         [
           r.ez_label;
           Printf.sprintf "%.3f" r.ez_detect_p;
           Printf.sprintf "%.3f" r.ez_mean_ttd_s;
           string_of_int r.ez_trials;
         ])
       rows)
