module Cloud = Mc_hypervisor.Cloud
module Infect = Mc_malware.Infect
module Orchestrator = Modchecker.Orchestrator
module Artifact = Modchecker.Artifact
module Report = Modchecker.Report

type detection = {
  exp_id : string;
  technique : string;
  infected_module : string;
  target_vm : int;
  expected_flags : string list;
  observed_flags : string list;
  detected : bool;
  flags_exact : bool;
  clean_vm_ok : bool;
  degraded : bool;
  details : string;
}

let ( let* ) = Result.bind

let sorted = List.sort compare

(* Run ModChecker on the infected VM and on a clean control VM, then score
   the observation against the expectation. *)
let score ~exp_id ~vms:_ ~cloud ~infection ~expected_flags =
  let target = infection.Infect.target_vm in
  let module_name = infection.Infect.infected_module in
  let* outcome =
    Orchestrator.check_module cloud ~target_vm:target ~module_name
  in
  let control_vm = if target = 0 then 1 else 0 in
  let* control =
    Orchestrator.check_module cloud ~target_vm:control_vm ~module_name
  in
  let observed_flags =
    List.map Artifact.kind_name outcome.report.flagged_artifacts
  in
  let is_degraded r =
    match r.Report.verdict with Report.Degraded _ -> true | _ -> false
  in
  Ok
    {
      exp_id;
      technique = infection.Infect.technique;
      infected_module = module_name;
      target_vm = target;
      expected_flags;
      observed_flags;
      (* Keyed on the quorum-aware verdict: a degraded check is not a
         detection (and not a miss either — it is an availability event,
         which the [degraded] field reports separately). At fault rate 0
         this is exactly the old [not majority_ok]. *)
      detected = (outcome.report.Report.verdict = Report.Infected);
      flags_exact = sorted observed_flags = sorted expected_flags;
      clean_vm_ok = control.report.Report.verdict = Report.Intact;
      degraded = is_degraded outcome.report || is_degraded control.report;
      details = infection.Infect.details;
    }

let default_vms = 15

let exp1_single_opcode ?(vms = default_vms) ?(seed = 2012L) ?faults () =
  let cloud = Cloud.create ~vms ~seed ?fault_spec:faults () in
  let* infection = Infect.single_opcode_replacement cloud ~vm:(min 3 (vms - 1)) in
  score ~exp_id:"E1" ~vms ~cloud ~infection ~expected_flags:[ ".text" ]

let exp2_inline_hook ?(vms = default_vms) ?(seed = 2012L) ?faults () =
  let cloud = Cloud.create ~vms ~seed ?fault_spec:faults () in
  let* infection = Infect.inline_hook cloud ~vm:(min 5 (vms - 1)) in
  score ~exp_id:"E2" ~vms ~cloud ~infection ~expected_flags:[ ".text" ]

let exp3_stub_modification ?(vms = default_vms) ?(seed = 2012L) ?faults () =
  let cloud = Cloud.create ~vms ~seed ?fault_spec:faults () in
  let* infection = Infect.stub_modification cloud ~vm:(min 7 (vms - 1)) in
  score ~exp_id:"E3" ~vms ~cloud ~infection
    ~expected_flags:[ "IMAGE_DOS_HEADER" ]

let exp4_dll_injection ?(vms = default_vms) ?(seed = 2012L) ?faults () =
  let cloud = Cloud.create ~vms ~seed ?fault_spec:faults () in
  let* infection = Infect.dll_injection cloud ~vm:(min 9 (vms - 1)) in
  score ~exp_id:"E4" ~vms ~cloud ~infection
    ~expected_flags:
      [
        "IMAGE_NT_HEADER";
        "IMAGE_OPTIONAL_HEADER";
        "SECTION_HEADER(.text)";
        "SECTION_HEADER(.rdata)";
        "SECTION_HEADER(.data)";
        "SECTION_HEADER(.reloc)";
        ".text";
      ]

let ext_dkom_hiding ?(vms = default_vms) ?(seed = 2012L) ?faults () =
  let cloud = Cloud.create ~vms ~seed ?fault_spec:faults () in
  let* infection = Infect.hide_module cloud ~vm:2 ~module_name:"http.sys" in
  let lc = Orchestrator.survey_module_lists cloud in
  let discrepancies = lc.Orchestrator.lc_discrepancies in
  let hit =
    List.find_opt
      (fun d ->
        d.Orchestrator.ld_module = "http.sys"
        && d.Orchestrator.missing_on = [ 2 ])
      discrepancies
  in
  Ok
    {
      exp_id = "X-DKOM";
      technique = infection.Infect.technique;
      infected_module = "http.sys";
      target_vm = 2;
      expected_flags = [ "module-list discrepancy" ];
      observed_flags =
        (match hit with
        | Some _ -> [ "module-list discrepancy" ]
        | None -> []);
      detected = hit <> None;
      flags_exact = hit <> None;
      clean_vm_ok = List.length discrepancies = 1;
      degraded = lc.Orchestrator.lc_unreachable <> [];
      details = infection.Infect.details;
    }

let ext_pointer_hook ?(vms = default_vms) ?(seed = 2012L) ?faults () =
  let cloud = Cloud.create ~vms ~seed ?fault_spec:faults () in
  let* infection = Infect.pointer_hook cloud ~vm:(min 4 (vms - 1)) in
  (* The redirected slot is an .rdata mismatch no RVA adjustment can
     reconcile; the payload is a .text mismatch. *)
  score ~exp_id:"X-PTR" ~vms ~cloud ~infection
    ~expected_flags:[ ".rdata"; ".text" ]

let run_all ?(vms = default_vms) ?(seed = 2012L) ?faults () =
  [
    exp1_single_opcode ~vms ~seed ?faults ();
    exp2_inline_hook ~vms ~seed ?faults ();
    exp3_stub_modification ~vms ~seed ?faults ();
    exp4_dll_injection ~vms ~seed ?faults ();
    ext_dkom_hiding ~vms ~seed ?faults ();
    ext_pointer_hook ~vms ~seed ?faults ();
  ]
