(** Generators for every evaluation figure, plus the ablation/extension
    experiments from DESIGN.md. *)

type fig_point = {
  n_vms : int;  (** Number of comparison VMs (Fig. 7/8 x-axis). *)
  searcher_ms : float;
  parser_ms : float;
  checker_ms : float;
  total_ms : float;  (** Simulated wall time of the whole check. *)
}

val fig7_idle :
  ?max_vms:int -> ?cores:int -> ?module_name:string -> ?seed:int64 -> unit ->
  fig_point list
(** Fig. 7: runtime vs number of mostly-idle VMs compared ([http.sys] by
    default, as in §V-C.1). The real pipeline runs against the simulated
    guests; metered operation counts are priced and scheduled. *)

val fig8_loaded :
  ?max_vms:int -> ?cores:int -> ?module_name:string -> ?seed:int64 -> unit ->
  fig_point list
(** Fig. 8: the same sweep with every participating VM running the
    HeavyLoad-equivalent; nonlinear growth appears once loaded vCPUs exceed
    the core count. *)

type fig9_result = {
  samples : Mc_workload.Monitor.sample list;
  windows : (float * float) list;
  perturbation_pct : float;
      (** |CPU busy inside − outside| introspection windows. *)
}

val fig9_guest_impact : ?seed:int64 -> unit -> fig9_result
(** Fig. 9: in-guest resource readings while ModChecker introspects during
    two windows. *)

type ablation_row = {
  alignment : int;  (** Module-base alignment under test. *)
  trials : int;
  heuristic_ok : int;
      (** Trials where Algorithm 2 made the section pair hash-equal. *)
  exact_ok : int;  (** Trials where the reloc-guided adjuster did. *)
  mean_residual_diffs : float;
      (** Mean byte positions still differing after Algorithm 2. *)
}

val alignment_ablation :
  ?module_name:string -> ?trials:int -> ?seed:int64 -> unit -> ablation_row list
(** X1a: Algorithm 2's offset heuristic versus the reloc-guided adjuster
    across base alignments (64 KiB Windows default, and 4 KiB page).
    Result: both are exact at both alignments — for pure relocation
    differences the first differing byte of the two absolute addresses
    provably sits at the same position as the first differing byte of the
    two bases (equal bytes below it imply equal carries into it), so the
    offset back-up always lands on the slot start. The interesting failure
    mode is elsewhere — see {!cross_pointer_ablation}. *)

type cross_pointer_row = {
  cross_pointers : int;
      (** Import-style slots in the hashed section whose values are bound
          to {e another} module's per-VM base. *)
  cp_trials : int;
  heuristic_clean : int;
      (** Trials where Algorithm 2 still made the pair hash-equal. *)
  exact_clean : int;  (** Same for the reloc-guided adjuster. *)
  mean_residual : float;
}

val cross_pointer_ablation :
  ?trials:int -> ?seed:int64 -> unit -> cross_pointer_row list
(** X1b: what actually breaks RVA adjustment. When a hashed section holds
    pointers bound to another module's load address (an IAT in .rdata, say),
    the value difference across VMs is {e that} module's base delta, not
    this one's: [addr - own_base] differs per VM, so Algorithm 2 cannot
    reconcile the slots, and neither can the reloc-guided adjuster — both
    report a false mismatch. The paper's design avoids this only because
    import tables live in writable (unhashed) sections. *)

type parallel_row = {
  workers : int;
  wall_ms : float;  (** Simulated wall time at 15 VMs. *)
  speedup : float;
}

val parallel_sweep :
  ?vms:int -> ?cores:int -> ?module_name:string -> ?seed:int64 -> unit ->
  parallel_row list
(** X2: the paper's proposed parallel memory access — per-VM pipelines
    scheduled on 1, 2, 4 and 8 Dom0 workers. *)

type strategy_row = {
  st_name : string;
  st_bytes_hashed : int;
  st_bytes_scanned : int;
  st_checker_ms : float;  (** Priced Integrity-Checker CPU time. *)
  st_deviants : int list;
}

val survey_strategy_table :
  ?vms:int -> ?seed:int64 -> ?module_name:string -> unit -> strategy_row list
(** X4: pairwise (paper) vs canonical (extension) survey of one module
    across the pool, with an infected VM present — same verdicts, O(t²) vs
    O(t) hashing. *)

type patrol_row = {
  pt_interval_s : float;
  pt_ttd_s : float;  (** Time from infection to first alarm. *)
  pt_sweeps : int;
  pt_cpu_duty_pct : float;  (** Dom0 CPU spent checking / elapsed time. *)
}

val patrol_tradeoff :
  ?vms:int -> ?seed:int64 -> unit -> patrol_row list
(** X5: the patrol service's interval ↔ time-to-detect ↔ CPU-duty
    trade-off; an inline hook lands at t=50 s and each row patrols with a
    different sweep interval. *)

type events_row = {
  ev_label : string;  (** ["poll 30s"] or ["event-driven"]. *)
  ev_steady_cpu_s : float;
      (** Dom0 CPU after the first sweep over a 600 s idle window. *)
  ev_ttd_s : float;  (** Time from infection to first integrity alarm. *)
  ev_checks : int;  (** Sweeps plus trap reactions of the detection run. *)
}

val events_tradeoff : ?vms:int -> ?seed:int64 -> unit -> events_row list
(** X14: polling at several intervals vs event-driven write-trap
    checking, on idle steady-state cost and on time-to-detect for an
    inline hook landing at t=50 s. One row per poll interval plus one
    for trap mode. *)

type incremental_row = {
  ir_vms : int;  (** Pool size. *)
  ir_full_sweep_s : float;
      (** Steady-state CPU of one full (non-incremental) sweep. *)
  ir_first_sweep_s : float;
      (** The incremental patrol's first (cold, cache-filling) sweep. *)
  ir_steady_sweep_s : float;
      (** Mean CPU of the incremental patrol's later sweeps. *)
  ir_speedup : float;  (** Full steady / incremental steady. *)
}

val incremental_steady_state :
  ?pool_sizes:int list -> ?seed:int64 -> unit -> incremental_row list
(** X6: full vs incremental patrol sweeps over an idle pool. The
    incremental first sweep pays full price plus log-dirty setup; each
    later sweep prices as staleness probes, so its cost stays near-flat as
    the pool grows while the full sweep grows linearly. *)

type merkle_row = {
  mk_dirty : int;  (** .text pages dirtied per VM between sweeps. *)
  mk_flat_s : float;
      (** Steady sweep CPU with flat incremental fingerprints — any
          staleness re-fetches and re-hashes the whole module. *)
  mk_merkle_s : float;  (** The same sweep with Merkle prints. *)
  mk_leaves : int;  (** Leaves re-hashed during the Merkle sweep. *)
  mk_nodes : int;  (** Interior Merkle digests computed. *)
  mk_speedup : float;  (** Flat / Merkle. *)
}

val merkle_dirty_sweep :
  ?vms:int -> ?dirty:int list -> ?module_name:string -> ?seed:int64 ->
  unit -> merkle_row list
(** X13: O(dirty) refresh cost. Every VM's module has k .text pages
    dirtied (content unchanged) between a warm sweep and a measured one;
    the flat incremental path pays a full per-VM rebuild while the Merkle
    path re-hashes k leaves plus O(log n) interior nodes, so the speedup
    column is largest at small k and every verdict stays clean. *)

type fault_row = {
  fl_transient : float;  (** Injected per-attempt map failure rate. *)
  fl_scenarios : int;  (** Experiments run (6: E1–E4 plus extensions). *)
  fl_detected : int;  (** Infections detected with a quorum-backed vote. *)
  fl_exact : int;  (** Exact flagged sets with a clean control VM. *)
  fl_degraded : int;  (** Experiments that lost quorum (availability). *)
  fl_errors : int;  (** Experiments that errored outright. *)
  fl_retries : int;  (** VMI mapping retries spent across the suite. *)
  fl_aborts : int;  (** Retry budgets exhausted (→ unreachable VMs). *)
}

val fault_sweep :
  ?vms:int -> ?rates:float list -> ?seed:int64 -> ?fault_seed:int -> unit ->
  fault_row list
(** X9: the full detection suite re-run under increasing transient-fault
    rates (default 0 to 20%). Bounded retries absorb the faults: verdicts
    stay exact and quorum-backed across the sweep while the retry counter
    grows roughly linearly with the rate; rate 0 must reproduce the
    fault-free results bit for bit. *)

type baseline_cell = Detected | Missed | False_alarm | Clean

val baseline_cell_string : baseline_cell -> string

type baseline_row = {
  scenario : string;
  svv : baseline_cell;
  hashdb : baseline_cell;
  lkim : baseline_cell;
  modchecker : baseline_cell;
}

val baseline_table : ?vms:int -> ?seed:int64 -> unit -> baseline_row list
(** X3: SVV / signed-hash DB / LKIM / ModChecker across four scenarios:
    memory-only hook, disk-then-load patch, legitimate cloud-wide update,
    and cloud-wide identical infection (ModChecker's documented blind
    spot). *)

type engine_row = {
  er_dup : int;  (** How many times each distinct survey is asked. *)
  er_requests : int;  (** Batch size (distinct modules × [er_dup]). *)
  er_standalone_s : float;
      (** The batch as independent one-shot {!Modchecker.Orchestrator}
          calls, in virtual CPU seconds. *)
  er_engine_s : float;  (** The same batch through one {!Mc_engine}. *)
  er_coalesced : int;  (** Submissions answered by an in-flight twin. *)
  er_speedup : float;  (** Standalone / engine. *)
}

val engine_throughput :
  ?vms:int -> ?dups:int list -> ?seed:int64 -> unit -> engine_row list
(** X10: overlapping-batch cost, engine vs one-shot loop. Duplicate
    fan-in is where the engine earns its keep: coalescing and the shared
    incremental state turn re-asks into staleness probes, so the speedup
    column should grow with [er_dup]. *)

type federation_row = {
  fd_hosts : int;
  fd_racks : int;
  fd_vms : int;  (** Total VMs across the fleet. *)
  fd_levels : int;  (** Distinct kernel builds (version cohorts). *)
  fd_detected : bool;
      (** The one staged infection was found at its exact (host, VM)
          locus and nowhere else. *)
  fd_skew_fp : int;
      (** Deviant VMs + deviant hosts reported for a clean module — the
          version-skew false-positive count; must be 0. *)
  fd_parity : bool;
      (** The fleet's exit code equals the victim host's own standalone
          survey exit code: one hop of hierarchy loses no detection. *)
  fd_fleet_cpu_s : float;  (** Sum of per-host virtual response times. *)
  fd_critical_s : float;  (** Slowest host — the fan-out floor. *)
}

val federation_scale :
  ?hosts:int list -> ?vms_per_host:int -> ?seed:int64 -> unit ->
  federation_row list
(** X12: detection parity and metered cost as the fleet grows. Each
    point boots [n] hosts (three builds cycled across them), hooks one
    VM on one host, and surveys the whole fleet: detection must stay
    exact, skew false positives zero, and cost split into total CPU
    (grows with hosts) vs critical path (stays flat — hosts answer in
    parallel). *)

type replay_row = {
  rp_shards : int;
  rp_requests : int;  (** Frames pushed through the session. *)
  rp_responses : int;
  rp_coalesced : int;  (** Submissions answered by an in-flight twin. *)
  rp_busy : int;  (** Busy replies (admission-control events). *)
  rp_retries : int;
  rp_critical_s : float;
      (** Busiest shard's priced virtual seconds — the wall clock on
          one-core-per-shard hardware. *)
  rp_total_s : float;  (** Total priced work across shards. *)
  rp_rps : float;  (** Requests per virtual critical-path second. *)
  rp_speedup : float;  (** [rp_rps] over the first row's. *)
  rp_ledger_ok : bool;
      (** The session's hash chain verified, one entry per response. *)
  rp_violations : int;  (** Oracle mismatches; must be 0. *)
}

val replay_throughput :
  ?shard_counts:int list ->
  ?requests:int ->
  ?dup_percent:int ->
  ?seed:int64 ->
  unit ->
  replay_row list
(** X15: seeded traffic replayed through a full [Mc_engine.Serve]
    session per shard count — same stream, same window, ledger attested
    and verified — reporting virtual-clock requests/s, coalesce volume,
    and admission-control traffic as the engine gains shards. The rps
    column should scale with shards (the bench asserts ≥2× from 1 to 4)
    while coalesced stays roughly constant (it depends on the duplicate
    rate, not the shard count). *)

type evasion_row = {
  ez_label : string;  (** ["poll 30s"] or ["event-driven"]. *)
  ez_detect_p : float;  (** Trials detected / trials run. *)
  ez_mean_ttd_s : float;
      (** Mean time-to-detect over the detected trials; [nan] when
          nothing was detected. *)
  ez_trials : int;
}

val evasion_detection :
  ?vms:int ->
  ?trials:int ->
  ?dwell:float ->
  ?period:float ->
  ?seed:int64 ->
  unit ->
  evasion_row list
(** X16: detection probability vs patrol cadence against a TOCTOU
    restorer ({!Mc_malware.Strategy.toctou}, dirty [dwell] of every
    [period] seconds), with the machine's launch phase spread evenly
    over one period across the trials. Polling detects only when a sweep
    start lands inside a dirty window — probability decays toward the
    dwell ratio as the interval grows — while the event-driven patrol
    traps the infect write itself and detects every phase (the bench
    asserts ≥ 0.99 there and ≤ 0.5 for 30 s polling). *)
