module Cloud = Mc_hypervisor.Cloud
module Costs = Mc_hypervisor.Costs
module Sched = Mc_hypervisor.Sched
module Meter = Mc_hypervisor.Meter
module Stress = Mc_workload.Stress
module Monitor = Mc_workload.Monitor
module Orchestrator = Modchecker.Orchestrator
module Rva = Modchecker.Rva
module Parser = Modchecker.Parser
module Checker = Modchecker.Checker
module Loader = Mc_winkernel.Loader
module Catalog = Mc_pe.Catalog
module Md5 = Mc_md5.Md5
module Rng = Mc_util.Rng
module Infect = Mc_malware.Infect
module Pool = Mc_parallel.Pool

type fig_point = {
  n_vms : int;
  searcher_ms : float;
  parser_ms : float;
  checker_ms : float;
  total_ms : float;
}

let ms s = s *. 1000.0

(* One sweep point: run the real pipeline against [n] comparison VMs, then
   price and schedule the metered work. [busy_participants] marks whether
   the involved guests are stress-loaded (Fig. 8) or idle (Fig. 7). *)
let sweep_point ~costs ~cloud ~module_name ~n ~loaded ~workers =
  let others = List.init n (fun i -> i + 1) in
  let config = Orchestrator.Config.(default |> with_others others) in
  match
    Orchestrator.check_module ~config cloud ~target_vm:0 ~module_name
  with
  | Error e -> failwith ("Figures.sweep_point: " ^ e)
  | Ok outcome ->
      let busy_vcpus = if loaded then n + 1 else 0 in
      let bus =
        if loaded then
          Sched.bus_factor costs ~busy_vms:(n + 1) ~cores:cloud.Cloud.cores
        else 1.0
      in
      let jobs =
        List.map (fun s -> s *. bus) (Orchestrator.per_vm_seconds costs outcome)
      in
      let wall =
        Sched.run_jobs ~cores:cloud.Cloud.cores ~busy_guest_vcpus:busy_vcpus
          ~workers jobs
      in
      let phases = Orchestrator.phase_seconds costs outcome in
      let cpu_total =
        phases.Orchestrator.searcher_s +. phases.Orchestrator.parser_s
        +. phases.Orchestrator.checker_s
      in
      (* Components stretch uniformly with the overall slowdown. *)
      let stretch = if cpu_total > 0.0 then wall /. cpu_total else 1.0 in
      {
        n_vms = n;
        searcher_ms = ms (phases.Orchestrator.searcher_s *. stretch);
        parser_ms = ms (phases.Orchestrator.parser_s *. stretch);
        checker_ms = ms (phases.Orchestrator.checker_s *. stretch);
        total_ms = ms wall;
      }

let sweep ~max_vms ~cores ~module_name ~seed ~loaded =
  let costs = Costs.default in
  let cloud = Cloud.create ~vms:(max_vms + 1) ~cores ~seed () in
  if loaded then Cloud.set_workload_all cloud Stress.heavyload;
  List.init max_vms (fun i ->
      sweep_point ~costs ~cloud ~module_name ~n:(i + 1) ~loaded ~workers:1)

let fig7_idle ?(max_vms = 14) ?(cores = 8) ?(module_name = "http.sys")
    ?(seed = 2012L) () =
  sweep ~max_vms ~cores ~module_name ~seed ~loaded:false

let fig8_loaded ?(max_vms = 14) ?(cores = 8) ?(module_name = "http.sys")
    ?(seed = 2012L) () =
  sweep ~max_vms ~cores ~module_name ~seed ~loaded:true

type fig9_result = {
  samples : Monitor.sample list;
  windows : (float * float) list;
  perturbation_pct : float;
}

let fig9_guest_impact ?(seed = 42L) () =
  let windows = [ (20.0, 25.0); (40.0, 45.0) ] in
  let config = { Monitor.default_config with seed } in
  let samples =
    Monitor.run ~config ~stressed:false ~introspection_windows:windows ()
  in
  {
    samples;
    windows;
    perturbation_pct = Monitor.perturbation samples;
  }

type ablation_row = {
  alignment : int;
  trials : int;
  heuristic_ok : int;
  exact_ok : int;
  mean_residual_diffs : float;
}

let count_diffs a b =
  let n = min (Bytes.length a) (Bytes.length b) in
  let c = ref (abs (Bytes.length a - Bytes.length b)) in
  for i = 0 to n - 1 do
    if Bytes.get a i <> Bytes.get b i then incr c
  done;
  !c

let text_of_memory_image mem =
  match Parser.artifacts mem with
  | Error e -> failwith e
  | Ok artifacts -> (
      match
        Modchecker.Artifact.find artifacts (Modchecker.Artifact.Section_data ".text")
      with
      | Some a -> (Bytes.copy a.Modchecker.Artifact.data, a.Modchecker.Artifact.sec_rva)
      | None -> failwith "no .text artifact")

let alignment_trial rng ~file ~relocs ~alignment =
  (* Two random driver-region bases at the given alignment. *)
  let region = Mc_winkernel.Layout.driver_region_start in
  let slot () = region + (Rng.int rng 0x4000 * alignment) in
  let base1 = slot () in
  let base2 =
    let rec distinct () =
      let b = slot () in
      if b = base1 then distinct () else b
    in
    distinct ()
  in
  let load base =
    match Loader.simulate_load file ~base with
    | Ok mem -> mem
    | Error e -> failwith (Loader.error_to_string e)
  in
  let mem1 = load base1 and mem2 = load base2 in
  let d1, rva = text_of_memory_image mem1 in
  let d2, _ = text_of_memory_image mem2 in
  (* Heuristic (Algorithm 2). *)
  let h1 = Bytes.copy d1 and h2 = Bytes.copy d2 in
  ignore (Rva.adjust_pair ~base1 ~base2 h1 h2);
  let heuristic_ok = Bytes.equal h1 h2 in
  let residual = count_diffs h1 h2 in
  (* Exact (reloc-guided). *)
  ignore (Rva.adjust_with_relocs ~base:base1 ~section_rva:rva ~relocs d1);
  ignore (Rva.adjust_with_relocs ~base:base2 ~section_rva:rva ~relocs d2);
  let exact_ok = Bytes.equal d1 d2 in
  (heuristic_ok, exact_ok, residual)

let alignment_ablation ?(module_name = "http.sys") ?(trials = 40)
    ?(seed = 7L) () =
  let file = (Catalog.image module_name).Catalog.file in
  let relocs =
    match Mc_baselines.Lkim.reference_relocs file with
    | Ok r -> r
    | Error e -> failwith e
  in
  List.map
    (fun alignment ->
      let rng = Rng.create (Int64.add seed (Int64.of_int alignment)) in
      let heuristic_ok = ref 0 and exact_ok = ref 0 and residual = ref 0 in
      for _ = 1 to trials do
        let h, e, r = alignment_trial rng ~file ~relocs ~alignment in
        if h then incr heuristic_ok;
        if e then incr exact_ok;
        residual := !residual + r
      done;
      {
        alignment;
        trials;
        heuristic_ok = !heuristic_ok;
        exact_ok = !exact_ok;
        mean_residual_diffs = float_of_int !residual /. float_of_int trials;
      })
    [ Mc_winkernel.Layout.default_module_alignment; 0x1000 ]

type cross_pointer_row = {
  cross_pointers : int;
  cp_trials : int;
  heuristic_clean : int;
  exact_clean : int;
  mean_residual : float;
}

(* Synthesize a section pair that is a faithful relocated clean pair, then
   plant [k] import-style slots whose values follow a *different* module's
   per-VM bases. *)
let cross_pointer_trial rng ~file ~relocs ~cross_pointers =
  let alignment = Mc_winkernel.Layout.default_module_alignment in
  let region = Mc_winkernel.Layout.driver_region_start in
  let slot () = region + (Rng.int rng 0x4000 * alignment) in
  let base1 = slot () and base2 = slot () + alignment in
  let other1 = slot () and other2 = slot () + (2 * alignment) in
  let load base =
    match Loader.simulate_load file ~base with
    | Ok mem -> mem
    | Error e -> failwith (Loader.error_to_string e)
  in
  let d1, rva = text_of_memory_image (load base1) in
  let d2, _ = text_of_memory_image (load base2) in
  let len = Bytes.length d1 in
  (* Overwrite k aligned positions with bound import pointers: the same
     foreign RVA added to each VM's *other-module* base. *)
  for i = 0 to cross_pointers - 1 do
    let pos = 16 * (1 + Rng.int rng ((len / 16) - 2)) in
    let foreign_rva = Rng.int rng 0x8000 in
    Mc_util.Le.set_u32_int d1 pos (other1 + foreign_rva);
    Mc_util.Le.set_u32_int d2 pos (other2 + foreign_rva);
    ignore i
  done;
  let h1 = Bytes.copy d1 and h2 = Bytes.copy d2 in
  ignore (Rva.adjust_pair ~base1 ~base2 h1 h2);
  let heuristic_clean = Bytes.equal h1 h2 in
  let residual = count_diffs h1 h2 in
  ignore (Rva.adjust_with_relocs ~base:base1 ~section_rva:rva ~relocs d1);
  ignore (Rva.adjust_with_relocs ~base:base2 ~section_rva:rva ~relocs d2);
  let exact_clean = Bytes.equal d1 d2 in
  (heuristic_clean, exact_clean, residual)

let cross_pointer_ablation ?(trials = 20) ?(seed = 11L) () =
  let file = (Catalog.image "http.sys").Catalog.file in
  let relocs =
    match Mc_baselines.Lkim.reference_relocs file with
    | Ok r -> r
    | Error e -> failwith e
  in
  List.map
    (fun cross_pointers ->
      let rng = Rng.create (Int64.add seed (Int64.of_int cross_pointers)) in
      let heuristic_clean = ref 0 and exact_clean = ref 0 and residual = ref 0 in
      for _ = 1 to trials do
        let h, e, r = cross_pointer_trial rng ~file ~relocs ~cross_pointers in
        if h then incr heuristic_clean;
        if e then incr exact_clean;
        residual := !residual + r
      done;
      {
        cross_pointers;
        cp_trials = trials;
        heuristic_clean = !heuristic_clean;
        exact_clean = !exact_clean;
        mean_residual = float_of_int !residual /. float_of_int trials;
      })
    [ 0; 1; 4; 16 ]

type parallel_row = { workers : int; wall_ms : float; speedup : float }

let parallel_sweep ?(vms = 15) ?(cores = 8) ?(module_name = "http.sys")
    ?(seed = 2012L) () =
  let costs = Costs.default in
  let cloud = Cloud.create ~vms ~cores ~seed () in
  let run workers =
    let mode =
      if workers = 1 then Orchestrator.Sequential
      else Orchestrator.Parallel (Pool.create workers)
    in
    let outcome =
      match
        Orchestrator.check_module
          ~config:Orchestrator.Config.(default |> with_mode mode)
          cloud ~target_vm:0 ~module_name
      with
      | Ok o -> o
      | Error e -> failwith e
    in
    (match mode with
    | Orchestrator.Parallel pool -> Pool.shutdown pool
    | Orchestrator.Sequential -> ());
    let jobs = Orchestrator.per_vm_seconds costs outcome in
    Sched.run_jobs ~cores ~busy_guest_vcpus:0 ~workers jobs
  in
  let base_wall = run 1 in
  List.map
    (fun workers ->
      let wall = if workers = 1 then base_wall else run workers in
      { workers; wall_ms = ms wall; speedup = base_wall /. wall })
    [ 1; 2; 4; 8 ]

type strategy_row = {
  st_name : string;
  st_bytes_hashed : int;
  st_bytes_scanned : int;
  st_checker_ms : float;
  st_deviants : int list;
}

let survey_strategy_table ?(vms = 15) ?(seed = 2012L)
    ?(module_name = "http.sys") () =
  let cloud = Cloud.create ~vms ~seed () in
  (match Infect.inline_hook cloud ~vm:(min 4 (vms - 1)) with
  | Ok _ -> ()
  | Error e -> failwith e);
  (* The hook is in hal.dll; also survey the hooked module so the table
     shows an infected case. *)
  let run name strategy label =
    let meter = Meter.create () in
    let s =
      Orchestrator.survey
        ~config:Orchestrator.Config.(default |> with_strategy strategy)
        ~meter cloud ~module_name:name
    in
    let c = Meter.get meter Meter.Checker in
    {
      st_name = Printf.sprintf "%s (%s)" label name;
      st_bytes_hashed = c.Meter.bytes_hashed;
      st_bytes_scanned = c.Meter.bytes_scanned;
      st_checker_ms = Meter.cpu_seconds Costs.default c *. 1000.0;
      st_deviants = s.Modchecker.Report.deviant_vms;
    }
  in
  [
    run module_name Orchestrator.Pairwise "pairwise";
    run module_name Orchestrator.Canonical "canonical";
    run "hal.dll" Orchestrator.Pairwise "pairwise";
    run "hal.dll" Orchestrator.Canonical "canonical";
  ]

type patrol_row = {
  pt_interval_s : float;
  pt_ttd_s : float;
  pt_sweeps : int;
  pt_cpu_duty_pct : float;
}

let patrol_tradeoff ?(vms = 6) ?(seed = 2012L) () =
  List.map
    (fun interval ->
      let cloud = Cloud.create ~vms ~seed () in
      let infect cloud =
        match Infect.inline_hook cloud ~vm:(min 2 (vms - 1)) with
        | Ok _ -> ()
        | Error e -> failwith e
      in
      let config =
        {
          Modchecker.Patrol.default_config with
          Modchecker.Patrol.watch = [ "hal.dll"; "http.sys"; "ntoskrnl.exe" ];
          interval_s = interval;
        }
      in
      let o =
        Modchecker.Patrol.run ~config ~events:[ (50.0, infect) ] cloud
          ~until:(50.0 +. (4.0 *. interval) +. 10.0)
      in
      let ttd =
        match
          Modchecker.Patrol.time_to_detect o ~module_name:"hal.dll"
            ~infected_at:50.0
        with
        | Some t -> t
        | None -> nan
      in
      {
        pt_interval_s = interval;
        pt_ttd_s = ttd;
        pt_sweeps = o.Modchecker.Patrol.sweeps;
        pt_cpu_duty_pct =
          100.0 *. o.Modchecker.Patrol.cpu_spent
          /. o.Modchecker.Patrol.virtual_elapsed;
      })
    [ 10.0; 30.0; 60.0; 120.0 ]

type events_row = {
  ev_label : string;
  ev_steady_cpu_s : float;
  ev_ttd_s : float;
  ev_checks : int;
}

(* X14: polling vs event-driven write-trap checking. Idle steady-state
   cost is the Dom0 CPU burned after the first (cache-filling) sweep
   over a 600 s quiet window: polling re-checks on every interval
   boundary regardless, traps cost nothing until a watched page is
   written. Detection latency is measured against the same inline hook
   landing at t=50 s — polling waits for the next boundary, the trap
   reaction starts at the write. *)
let events_tradeoff ?(vms = 6) ?(seed = 2012L) () =
  let watch = [ "hal.dll"; "http.sys"; "ntoskrnl.exe" ] in
  let config interval =
    {
      Modchecker.Patrol.default_config with
      Modchecker.Patrol.watch;
      interval_s = interval;
    }
  in
  let infect cloud =
    match Infect.inline_hook cloud ~vm:(min 2 (vms - 1)) with
    | Ok _ -> ()
    | Error e -> failwith e
  in
  let steady (o : Modchecker.Patrol.outcome) =
    match o.Modchecker.Patrol.sweep_cpus with
    | first :: _ -> o.Modchecker.Patrol.cpu_spent -. first
    | [] -> o.Modchecker.Patrol.cpu_spent
  in
  let row label ~detect_until run =
    let idle = run (Cloud.create ~vms ~seed ()) [] 600.0 in
    let cloud = Cloud.create ~vms ~seed () in
    let o = run cloud [ (50.0, infect) ] detect_until in
    let ttd =
      match
        Modchecker.Patrol.time_to_detect o ~module_name:"hal.dll"
          ~infected_at:50.0
      with
      | Some t -> t
      | None -> nan
    in
    {
      ev_label = label;
      ev_steady_cpu_s = steady idle;
      ev_ttd_s = ttd;
      ev_checks = o.Modchecker.Patrol.sweeps + o.Modchecker.Patrol.reactions;
    }
  in
  List.map
    (fun interval ->
      row
        (Printf.sprintf "poll %.0fs" interval)
        ~detect_until:(50.0 +. interval +. 20.0)
        (fun cloud events until ->
          Modchecker.Patrol.run ~config:(config interval) ~events cloud ~until))
    [ 10.0; 30.0; 60.0; 120.0 ]
  @ [
      row "event-driven" ~detect_until:300.0 (fun cloud events until ->
          Modchecker.Patrol.run_events ~config:(config 30.0) ~events cloud
            ~until);
    ]

type incremental_row = {
  ir_vms : int;
  ir_full_sweep_s : float;
  ir_first_sweep_s : float;
  ir_steady_sweep_s : float;
  ir_speedup : float;
}

(* X6: full vs incremental patrol of an idle pool. The full sweep re-maps,
   re-parses and re-hashes every module on every VM each time, so its cost
   grows linearly in pool size; the incremental steady state prices as
   per-VM staleness probes and stays near-flat. *)
let incremental_steady_state ?(pool_sizes = [ 2; 5; 10; 15 ]) ?(seed = 2012L)
    () =
  let watch = [ "hal.dll"; "http.sys"; "ntoskrnl.exe" ] in
  let sweep_cpus ~vms ~incremental =
    let cloud = Cloud.create ~vms ~seed () in
    let config =
      {
        Modchecker.Patrol.default_config with
        Modchecker.Patrol.watch;
        interval_s = 30.0;
        check =
          Orchestrator.Config.(default |> with_strategy Orchestrator.Canonical);
        incremental;
      }
    in
    let o = Modchecker.Patrol.run ~config cloud ~until:149.0 in
    o.Modchecker.Patrol.sweep_cpus
  in
  let mean = function
    | [] -> nan
    | l -> List.fold_left ( +. ) 0.0 l /. float_of_int (List.length l)
  in
  List.map
    (fun vms ->
      let full = sweep_cpus ~vms ~incremental:false in
      let inc = sweep_cpus ~vms ~incremental:true in
      let full_steady = mean (List.tl full) in
      let inc_steady = mean (List.tl inc) in
      {
        ir_vms = vms;
        ir_full_sweep_s = full_steady;
        ir_first_sweep_s = List.hd inc;
        ir_steady_sweep_s = inc_steady;
        ir_speedup = full_steady /. inc_steady;
      })
    pool_sizes

type merkle_row = {
  mk_dirty : int;
  mk_flat_s : float;
  mk_merkle_s : float;
  mk_leaves : int;
  mk_nodes : int;
  mk_speedup : float;
}

(* X13: steady-state sweep cost when every guest keeps dirtying k .text
   pages between sweeps without changing their content. Flat incremental
   fingerprints treat any staleness as a full re-fetch + re-hash of the
   module; the Merkle print re-reads and re-hashes only the touched
   leaves plus O(log n) interior nodes. *)
let merkle_dirty_sweep ?(vms = 6) ?(dirty = [ 0; 1; 2; 4; 8 ])
    ?(module_name = "http.sys") ?(seed = 2012L) () =
  let costs = Costs.default in
  let counter name =
    Mc_telemetry.Metric.counter_value (Mc_telemetry.Registry.counter name)
  in
  let was_enabled = Mc_telemetry.Registry.enabled () in
  Mc_telemetry.Registry.set_enabled true;
  let steady_sweep ~merkle ~k =
    let cloud = Cloud.create ~vms ~seed () in
    let inc = Orchestrator.create_incremental () in
    let config =
      Orchestrator.Config.(default |> with_incremental inc |> with_merkle merkle)
    in
    (* The warm sweep builds the memoized prints. *)
    ignore (Orchestrator.survey ~config cloud ~module_name);
    (* The guests run on: k .text pages per VM move, content unchanged. *)
    for vm = 0 to vms - 1 do
      if k > 0 then
        match Infect.benign_touch ~module_name ~pages:k cloud ~vm with
        | Ok _ -> ()
        | Error e -> failwith ("Figures.merkle_dirty_sweep: " ^ e)
    done;
    let leaves0 = counter "merkle.leaves_rehashed" in
    let meter = Meter.create () in
    let s = Orchestrator.survey ~config ~meter cloud ~module_name in
    if s.Modchecker.Report.deviant_vms <> [] then
      failwith "Figures.merkle_dirty_sweep: benign touch flagged as deviant";
    let nodes =
      List.fold_left
        (fun acc ph -> acc + (Meter.get meter ph).Meter.merkle_nodes)
        0
        [ Meter.Searcher; Meter.Parser; Meter.Checker ]
    in
    ( Meter.total_cpu_seconds costs meter,
      counter "merkle.leaves_rehashed" - leaves0,
      nodes )
  in
  let rows =
    List.map
      (fun k ->
        let flat_s, _, _ = steady_sweep ~merkle:false ~k in
        let merkle_s, leaves, nodes = steady_sweep ~merkle:true ~k in
        {
          mk_dirty = k;
          mk_flat_s = flat_s;
          mk_merkle_s = merkle_s;
          mk_leaves = leaves;
          mk_nodes = nodes;
          mk_speedup = flat_s /. merkle_s;
        })
      dirty
  in
  Mc_telemetry.Registry.set_enabled was_enabled;
  rows

type fault_row = {
  fl_transient : float;
  fl_scenarios : int;
  fl_detected : int;
  fl_exact : int;
  fl_degraded : int;
  fl_errors : int;
  fl_retries : int;
  fl_aborts : int;
}

(* X9: the detection suite under injected transient map faults. Bounded
   priced retries keep every verdict quorum-backed well past realistic
   fault rates — detection should stay exact across the sweep, with the
   retry counters growing and degraded verdicts staying at zero until
   the abort probability (rate^max_attempts per page) becomes visible. *)
let fault_sweep ?(vms = 8) ?(rates = [ 0.0; 0.02; 0.05; 0.1; 0.2 ])
    ?(seed = 2012L) ?(fault_seed = 9) () =
  List.map
    (fun rate ->
      let faults =
        if rate = 0.0 then None
        else
          Some
            {
              Mc_memsim.Faultplan.none with
              Mc_memsim.Faultplan.transient_rate = rate;
              fault_seed;
            }
      in
      let counter name =
        Mc_telemetry.Metric.counter_value (Mc_telemetry.Registry.counter name)
      in
      let was_enabled = Mc_telemetry.Registry.enabled () in
      Mc_telemetry.Registry.set_enabled true;
      let retries0 = counter "vmi.retries" in
      let aborts0 = counter "vmi.fault_aborts" in
      let results = Scenario.run_all ~vms ~seed ?faults () in
      let retries = counter "vmi.retries" - retries0 in
      let aborts = counter "vmi.fault_aborts" - aborts0 in
      Mc_telemetry.Registry.set_enabled was_enabled;
      let count f =
        List.length
          (List.filter
             (fun r -> match r with Ok d -> f d | Error _ -> false)
             results)
      in
      {
        fl_transient = rate;
        fl_scenarios = List.length results;
        fl_detected = count (fun (d : Scenario.detection) -> d.detected);
        fl_exact =
          count (fun (d : Scenario.detection) -> d.flags_exact && d.clean_vm_ok);
        fl_degraded = count (fun (d : Scenario.detection) -> d.degraded);
        fl_errors =
          List.length
            (List.filter (fun r -> Result.is_error r) results);
        fl_retries = retries;
        fl_aborts = aborts;
      })
    rates

type baseline_cell = Detected | Missed | False_alarm | Clean

let baseline_cell_string = function
  | Detected -> "detected"
  | Missed -> "MISSED"
  | False_alarm -> "FALSE ALARM"
  | Clean -> "clean"

type baseline_row = {
  scenario : string;
  svv : baseline_cell;
  hashdb : baseline_cell;
  lkim : baseline_cell;
  modchecker : baseline_cell;
}

let svv_cell ~infected dom name =
  match Mc_baselines.Svv.check dom ~module_name:name with
  | Error e -> failwith ("svv: " ^ e)
  | Ok v ->
      if v.Mc_baselines.Svv.clean then if infected then Missed else Clean
      else if infected then Detected
      else False_alarm

let lkim_cell ~infected dom name ~reference =
  match Mc_baselines.Lkim.check dom ~module_name:name ~reference with
  | Error e -> failwith ("lkim: " ^ e)
  | Ok v ->
      if v.Mc_baselines.Lkim.clean then if infected then Missed else Clean
      else if infected then Detected
      else False_alarm

let hashdb_cell ~infected db dom name =
  let fs = Mc_winkernel.Kernel.fs (Mc_hypervisor.Dom.kernel_exn dom) in
  match Mc_winkernel.Fs.read_file fs (Mc_winkernel.Fs.module_path name) with
  | None -> failwith "hashdb: file missing"
  | Some file -> (
      match Mc_baselines.Hashdb.check_load db ~name file with
      | Mc_baselines.Hashdb.Verified -> if infected then Missed else Clean
      | Mc_baselines.Hashdb.Hash_mismatch | Mc_baselines.Hashdb.Unknown_module
        ->
          if infected then Detected else False_alarm)

let modchecker_cell ~infected cloud vm name =
  match Orchestrator.check_module cloud ~target_vm:vm ~module_name:name with
  | Error e -> failwith ("modchecker: " ^ e)
  | Ok o ->
      if o.Orchestrator.report.majority_ok then
        if infected then Missed else Clean
      else if infected then Detected
      else False_alarm

let baseline_table ?(vms = 5) ?(seed = 2012L) () =
  let reference = (Catalog.image "hal.dll").Catalog.file in
  let db = Mc_baselines.Hashdb.build_for_catalog Catalog.standard_modules in
  (* Scenario 1: memory-only inline hook on one VM. *)
  let row1 =
    let cloud = Cloud.create ~vms ~seed () in
    (match Infect.inline_hook cloud ~vm:1 with
    | Ok _ -> ()
    | Error e -> failwith e);
    let dom = Cloud.vm cloud 1 in
    {
      scenario = "memory-only inline hook";
      svv = svv_cell ~infected:true dom "hal.dll";
      hashdb = hashdb_cell ~infected:true db dom "hal.dll";
      lkim = lkim_cell ~infected:true dom "hal.dll" ~reference;
      modchecker = modchecker_cell ~infected:true cloud 1 "hal.dll";
    }
  in
  (* Scenario 2: disk infection then load (experiment 1 style). *)
  let row2 =
    let cloud = Cloud.create ~vms ~seed () in
    (match Infect.single_opcode_replacement cloud ~vm:1 with
    | Ok _ -> ()
    | Error e -> failwith e);
    let dom = Cloud.vm cloud 1 in
    {
      scenario = "disk-then-load opcode patch";
      svv = svv_cell ~infected:true dom "hal.dll";
      hashdb = hashdb_cell ~infected:true db dom "hal.dll";
      lkim = lkim_cell ~infected:true dom "hal.dll" ~reference;
      modchecker = modchecker_cell ~infected:true cloud 1 "hal.dll";
    }
  in
  (* Scenario 3: a legitimate hal.dll update rolled out to every VM. *)
  let row3 =
    let cloud = Cloud.create ~vms ~seed () in
    let v2 = (Catalog.image ~version:2 "hal.dll").Catalog.file in
    for i = 0 to vms - 1 do
      Infect.write_module_file (Cloud.vm cloud i) ~name:"hal.dll" v2;
      Cloud.reboot_vm cloud i
    done;
    let dom = Cloud.vm cloud 1 in
    {
      scenario = "legitimate update, all VMs";
      svv = svv_cell ~infected:false dom "hal.dll";
      hashdb = hashdb_cell ~infected:false db dom "hal.dll";
      lkim = lkim_cell ~infected:false dom "hal.dll" ~reference;
      modchecker = modchecker_cell ~infected:false cloud 1 "hal.dll";
    }
  in
  (* Scenario 4: identical disk infection on every VM (SQL-Slammer-style
     mass spread — ModChecker's documented blind spot). *)
  let row4 =
    let cloud = Cloud.create ~vms ~seed () in
    let infected_file =
      match
        Mc_malware.Opcode_patch.infect_file ~module_name:"hal.dll"
          ~func:"HalInitSystem" ()
      with
      | Ok (f, _) -> f
      | Error e -> failwith e
    in
    for i = 0 to vms - 1 do
      Infect.write_module_file (Cloud.vm cloud i) ~name:"hal.dll" infected_file;
      Cloud.reboot_vm cloud i
    done;
    let dom = Cloud.vm cloud 1 in
    {
      scenario = "identical infection, all VMs";
      svv = svv_cell ~infected:true dom "hal.dll";
      hashdb = hashdb_cell ~infected:true db dom "hal.dll";
      lkim = lkim_cell ~infected:true dom "hal.dll" ~reference;
      modchecker = modchecker_cell ~infected:true cloud 1 "hal.dll";
    }
  in
  [ row1; row2; row3; row4 ]

type engine_row = {
  er_dup : int;
  er_requests : int;
  er_standalone_s : float;
  er_engine_s : float;
  er_coalesced : int;
  er_speedup : float;
}

(* X10: what the long-lived engine buys over looping the one-shot API.
   The same batch — a few distinct surveys, each asked [dup] times, the
   advisory-fan-in shape — is run both ways and priced from the meters.
   Standalone pays the full pipeline per ask; the engine coalesces
   duplicates still in flight and answers re-asks from the shared
   incremental caches, so its curve should flatten as [dup] grows. *)
let engine_throughput ?(vms = 8) ?(dups = [ 1; 2; 4; 8 ]) ?(seed = 2013L) () =
  let modules = [ "hal.dll"; "http.sys"; "ntoskrnl.exe" ] in
  let costs = Costs.default in
  List.map
    (fun dup ->
      let requests = dup * List.length modules in
      let cloud = Cloud.create ~vms ~seed () in
      let standalone = Meter.create () in
      List.iter
        (fun m ->
          for _ = 1 to dup do
            ignore (Orchestrator.survey ~meter:standalone cloud ~module_name:m)
          done)
        modules;
      let cloud = Cloud.create ~vms ~seed () in
      let engine = Mc_engine.create ~shards:2 ~workers_per_shard:2 cloud in
      let cells =
        List.concat_map
          (fun m ->
            List.init dup (fun _ ->
                match
                  Mc_engine.submit engine
                    (Mc_engine.Survey { module_name = m })
                with
                | Ok c -> c
                | Error r -> failwith (Mc_engine.rejection_message r)))
          modules
      in
      List.iter
        (fun c -> ignore (Mc_parallel.Deferred.await c))
        cells;
      Mc_engine.drain engine;
      let standalone_s = Meter.total_cpu_seconds costs standalone in
      let engine_s = Meter.total_cpu_seconds costs (Mc_engine.meter engine) in
      let st = Mc_engine.stats engine in
      {
        er_dup = dup;
        er_requests = requests;
        er_standalone_s = standalone_s;
        er_engine_s = engine_s;
        er_coalesced = st.Mc_engine.st_coalesced;
        er_speedup = standalone_s /. engine_s;
      })
    dups

(* --- X12: federation scale --------------------------------------------- *)

type federation_row = {
  fd_hosts : int;
  fd_racks : int;
  fd_vms : int;  (* total, across hosts *)
  fd_levels : int;  (* distinct kernel builds in the fleet *)
  fd_detected : bool;
  fd_skew_fp : int;
  fd_parity : bool;
  fd_fleet_cpu_s : float;
  fd_critical_s : float;
}

let federation_scale ?(hosts = [ 2; 4; 8; 16 ]) ?(vms_per_host = 5)
    ?(seed = 2012L) () =
  let module Topo = Mc_federation.Topology in
  let module Co = Mc_federation.Coordinator in
  List.map
    (fun n ->
      let hosts_per_rack = min n 4 in
      let racks = (n + hosts_per_rack - 1) / hosts_per_rack in
      let spec =
        {
          Topo.default_spec with
          Topo.racks_per_region = racks;
          hosts_per_rack;
          vms_per_host;
          patch_levels = [ 1; 2; 3 ];
          seed;
        }
      in
      let topo = Topo.create ~spec () in
      let victim = n / 2 in
      let victim_cloud = (Topo.host topo victim).Mc_federation.Host.cloud in
      (match Mc_malware.Infect.inline_hook victim_cloud ~vm:1 with
      | Ok _ -> ()
      | Error e -> failwith e);
      let r = Co.survey topo ~module_name:"hal.dll" in
      let detected =
        r.Co.fb_verdict = Modchecker.Report.Infected
        && r.Co.fb_deviant_vms = [ (victim, 1) ]
      in
      (* The same verdict the victim host's own pool reaches standalone:
         detection parity between one hop of hierarchy and none. *)
      let standalone =
        Orchestrator.survey victim_cloud ~module_name:"hal.dll"
      in
      let parity =
        standalone.Modchecker.Report.deviant_vms = [ 1 ]
        && Co.exit_code r = Modchecker.Exit_code.of_survey standalone
      in
      let clean = Co.survey topo ~module_name:"tcpip.sys" in
      let skew_fp =
        List.length clean.Co.fb_deviant_vms
        + List.length clean.Co.fb_deviant_hosts
      in
      Topo.shutdown topo;
      {
        fd_hosts = n;
        fd_racks = racks;
        fd_vms = Topo.vm_count topo;
        fd_levels = List.length (Topo.distinct_levels topo);
        fd_detected = detected;
        fd_skew_fp = skew_fp;
        fd_parity = parity;
        fd_fleet_cpu_s = r.Co.fb_fleet_cpu_s;
        fd_critical_s = r.Co.fb_critical_path_s;
      })
    hosts

(* --- X15: traffic replay over the serving stack ------------------------ *)

type replay_row = {
  rp_shards : int;
  rp_requests : int;
  rp_responses : int;
  rp_coalesced : int;
  rp_busy : int;
  rp_retries : int;
  rp_critical_s : float;
  rp_total_s : float;
  rp_rps : float;
  rp_speedup : float;
  rp_ledger_ok : bool;
  rp_violations : int;
}

(* X15: requests/s as the engine gains shards, measured on the metered
   virtual clock (the critical path is the busiest shard's priced
   seconds — what the wall clock would be with a core per shard), so the
   scaling claim survives a one-core bench host. Every row replays the
   same seeded traffic through a full [Serve] session — window, Busy
   replies, ledger — and verifies its hash chain afterwards; the oracle
   violation count must be zero for the throughput numbers to mean
   anything. *)
let replay_throughput ?(shard_counts = [ 1; 2; 4 ]) ?(requests = 2000)
    ?(dup_percent = 25) ?(seed = 2014L) () =
  let profile =
    { Mc_simtest.Traffic.default_profile with p_dup_percent = dup_percent }
  in
  let rows =
    List.map
      (fun shards ->
        let ledger = Mc_ledger.create () in
        let o =
          Mc_simtest.Traffic.replay ~profile ~shards ~queue_bound:64
            ~window:32 ~ledger ~seed ~requests ()
        in
        let ledger_ok =
          match Mc_ledger.verify (Mc_ledger.contents ledger) with
          | Ok s -> s.Mc_ledger.sum_entries = o.Mc_simtest.Traffic.to_responses
          | Error _ -> false
        in
        {
          rp_shards = shards;
          rp_requests = o.Mc_simtest.Traffic.to_requests;
          rp_responses = o.Mc_simtest.Traffic.to_responses;
          rp_coalesced = o.Mc_simtest.Traffic.to_coalesced;
          rp_busy = o.Mc_simtest.Traffic.to_busy;
          rp_retries = o.Mc_simtest.Traffic.to_retries;
          rp_critical_s = o.Mc_simtest.Traffic.to_critical_s;
          rp_total_s = o.Mc_simtest.Traffic.to_total_virtual_s;
          rp_rps = o.Mc_simtest.Traffic.to_rps_virtual;
          rp_speedup = 1.0;
          rp_ledger_ok = ledger_ok;
          rp_violations = List.length o.Mc_simtest.Traffic.to_violations;
        })
      shard_counts
  in
  match rows with
  | [] -> []
  | first :: _ ->
      List.map
        (fun r ->
          {
            r with
            rp_speedup =
              (if first.rp_rps > 0.0 then r.rp_rps /. first.rp_rps else 0.0);
          })
        rows

(* --- X16: detection probability under an evasive TOCTOU adversary ------ *)

type evasion_row = {
  ez_label : string;
  ez_detect_p : float;
  ez_mean_ttd_s : float;
  ez_trials : int;
}

(* X16: a TOCTOU restorer is dirty only [dwell] out of every [period]
   seconds, so a polling patrol detects it only when a sweep boundary
   lands inside a dirty window — the phase-averaged detection
   probability sits near the dwell ratio once the interval outgrows the
   window. The trials spread the machine's launch phase evenly over one
   period; the event-driven patrol sees the infect write itself trap, so
   it detects every phase. *)
let evasion_detection ?(vms = 4) ?(trials = 12) ?(dwell = 5.0)
    ?(period = 60.0) ?(seed = 2016L) () =
  let module_name = "hal.dll" in
  let watch = [ module_name ] in
  let until = 241.0 in
  let starts =
    List.init trials (fun i ->
        1.0 +. (period *. float_of_int i /. float_of_int trials))
  in
  let config interval =
    {
      Modchecker.Patrol.default_config with
      Modchecker.Patrol.watch;
      interval_s = interval;
    }
  in
  let run_trial run start =
    let cloud = Cloud.create ~vms ~seed () in
    let machine =
      match
        Mc_malware.Strategy.toctou ~module_name cloud ~vm:(min 1 (vms - 1))
          ~start ~dwell ~period
      with
      | Ok m -> m
      | Error e -> failwith e
    in
    let events = Mc_malware.Strategy.events machine ~until in
    let o = run cloud events until in
    Modchecker.Patrol.time_to_detect o ~module_name ~infected_at:start
  in
  let row label run =
    let ttds = List.filter_map (run_trial run) starts in
    let detected = List.length ttds in
    {
      ez_label = label;
      ez_detect_p = float_of_int detected /. float_of_int trials;
      ez_mean_ttd_s =
        (if detected = 0 then nan
         else List.fold_left ( +. ) 0.0 ttds /. float_of_int detected);
      ez_trials = trials;
    }
  in
  List.map
    (fun interval ->
      row
        (Printf.sprintf "poll %.0fs" interval)
        (fun cloud events until ->
          Modchecker.Patrol.run ~config:(config interval) ~events cloud ~until))
    [ 5.0; 15.0; 30.0 ]
  @ [
      row "event-driven" (fun cloud events until ->
          Modchecker.Patrol.run_events ~config:(config 30.0) ~events cloud
            ~until);
    ]
