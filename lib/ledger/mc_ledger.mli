(** Append-only, hash-chained attestation ledger for engine verdicts.

    Every response the serving layer emits is condensed into one ledger
    {!entry} — request key, verdict, vote counts, the module's Merkle
    anchor root, the metered work, and the MD5 of the full wire reply —
    and chained to its predecessor by an MD5 over the previous entry's
    hash plus this entry's canonical JSON. The serialized chain (one
    compact JSON object per line) is the audit artifact: {!verify} walks
    it offline, recomputing every link, so an auditor who holds only the
    file (plus, optionally, the expected head hash) detects any
    tampering with a historical verdict — a flipped byte, a dropped or
    reordered entry, a truncated tail — and names the first bad entry.
    Dom0 produced the chain, but Dom0 cannot rewrite it unnoticed: that
    is the SEVurity lesson the design answers.

    Entries are deliberately small (the full reply body is tied in by
    digest, not embedded), so a million-request replay ledgers in tens
    of megabytes; a custom [sink] streams lines to disk instead of
    buffering them. *)

type entry = {
  en_seq : int;  (** 0-based position in the chain. *)
  en_key : string;  (** Request key, e.g. ["check:0:hal.dll"]. *)
  en_verdict : string;
      (** ["intact"], ["infected"], ["degraded"], or ["error"]. *)
  en_surveyed : int;  (** VMs asked (0 when not applicable). *)
  en_responded : int;  (** VMs that answered — the quorum evidence. *)
  en_root : string option;
      (** The checked module's Merkle anchor root (hex) when the engine
          had one cached — the value an external verifier compares
          against an out-of-band golden root. *)
  en_meter : (string * int) list;
      (** Non-zero metered operation counts (["phase.counter"] keys). *)
  en_body_md5 : string;
      (** Hex MD5 of the full wire reply JSON this entry attests. *)
  en_prev : string;  (** Hex chain hash of the previous entry. *)
  en_hash : string;
      (** Hex MD5 of [en_prev ^ payload JSON] — the next entry's
          [en_prev]. *)
}

val schema : string
(** ["modchecker/ledger@1"] — tagged on every serialized entry. *)

val genesis : string
(** The [en_prev] of entry 0: the hex MD5 of the schema tag, so chains
    from different schema versions can never splice. *)

type t

val create : ?sink:(string -> unit) -> unit -> t
(** [create ()] starts an empty chain buffered in memory ({!contents}
    retrieves it). With [sink], every appended line (newline-terminated)
    is passed to [sink] instead of being retained — the million-entry
    mode. *)

val append :
  t ->
  key:string ->
  verdict:string ->
  surveyed:int ->
  responded:int ->
  ?root:string ->
  meter:(string * int) list ->
  body:string ->
  unit ->
  entry
(** [append t ~key ~verdict ~surveyed ~responded ?root ~meter ~body ()]
    seals the next entry over the running chain hash ([body] is the full
    reply JSON; only its MD5 is stored) and emits its serialized line. *)

val length : t -> int

val head : t -> string
(** The chain hash of the last entry ({!genesis} when empty) — what an
    auditor pins externally to also detect truncation. *)

val contents : t -> string
(** The serialized chain so far. Raises [Invalid_argument] when the
    ledger was created with a custom [sink] (the lines are wherever the
    sink put them). *)

val entry_to_json : entry -> Mc_util.Json.t

val entry_of_json : Mc_util.Json.t -> (entry, string) result

val entry_line : entry -> string
(** The canonical serialized form — compact JSON, what {!append} emits
    and {!verify} expects one-per-line. *)

type error = {
  ve_index : int;  (** 0-based line index of the first bad entry. *)
  ve_reason : string;
}

type summary = {
  sum_entries : int;
  sum_head : string;  (** Chain hash of the last verified entry. *)
  sum_verdicts : (string * int) list;
      (** Verdict → occurrence count, sorted by verdict. *)
  sum_roots : (string * string) list;
      (** Request key → last anchored root, sorted by key — the values
          to compare against out-of-band golden roots. *)
  sum_root_changes : int;
      (** Entries whose root differs from the previous entry for the
          same key. Benign guest writes move roots; a nonzero count on a
          supposedly idle fleet is a flag worth pulling. *)
}

val verify_lines : ?expect_head:string -> string Seq.t -> (summary, error) result
(** [verify_lines lines] walks serialized entries in order, re-deriving
    every chain hash from {!genesis}: a parse failure, schema mismatch,
    sequence gap, broken [en_prev] link, or hash mismatch stops at the
    first bad entry. With [expect_head], a chain that verifies but ends
    on a different head (e.g. truncated) fails with [ve_index] = entry
    count. Streaming — constant memory in the chain length. *)

val verify : ?expect_head:string -> string -> (summary, error) result
(** {!verify_lines} over the non-empty lines of a serialized chain. *)

val verify_file : ?expect_head:string -> string -> (summary, error) result
(** {!verify_lines} over a file's lines, without loading the file. *)
