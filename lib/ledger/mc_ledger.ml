module Json = Mc_util.Json
module Md5 = Mc_md5.Md5

type entry = {
  en_seq : int;
  en_key : string;
  en_verdict : string;
  en_surveyed : int;
  en_responded : int;
  en_root : string option;
  en_meter : (string * int) list;
  en_body_md5 : string;
  en_prev : string;
  en_hash : string;
}

let schema = "modchecker/ledger@1"

let md5_hex s = Md5.to_hex (Md5.digest_string s)

let genesis = md5_hex schema

(* The chain hash covers exactly this canonical rendering: field order is
   fixed, the emitter is deterministic, and no field is a float — so a
   parsed entry re-serializes byte-identically and verification never
   depends on JSON canonicalization subtleties. *)
let payload_json e =
  Json.Obj
    [
      ("schema", Json.String schema);
      ("seq", Json.Int e.en_seq);
      ("key", Json.String e.en_key);
      ("verdict", Json.String e.en_verdict);
      ("surveyed", Json.Int e.en_surveyed);
      ("responded", Json.Int e.en_responded);
      ( "root",
        match e.en_root with None -> Json.Null | Some r -> Json.String r );
      ("meter", Json.Obj (List.map (fun (k, v) -> (k, Json.Int v)) e.en_meter));
      ("body_md5", Json.String e.en_body_md5);
      ("prev", Json.String e.en_prev);
    ]

let chain_hash ~prev payload_line = md5_hex (prev ^ payload_line)

let entry_to_json e =
  match payload_json e with
  | Json.Obj fields -> Json.Obj (fields @ [ ("hash", Json.String e.en_hash) ])
  | _ -> assert false

let entry_line e = Json.to_string (entry_to_json e)

let entry_of_json j =
  let ( let* ) = Result.bind in
  let* fields =
    match j with
    | Json.Obj fields -> Ok fields
    | _ -> Error "ledger entry: expected an object"
  in
  let field name =
    match List.assoc_opt name fields with
    | Some v -> Ok v
    | None -> Error (Printf.sprintf "ledger entry: missing field %S" name)
  in
  let str name =
    let* v = field name in
    match v with
    | Json.String s -> Ok s
    | _ -> Error (Printf.sprintf "ledger entry: field %S must be a string" name)
  in
  let int name =
    let* v = field name in
    match v with
    | Json.Int i -> Ok i
    | _ -> Error (Printf.sprintf "ledger entry: field %S must be an int" name)
  in
  let* tag = str "schema" in
  let* () =
    if String.equal tag schema then Ok ()
    else Error (Printf.sprintf "ledger entry: schema %S, expected %S" tag schema)
  in
  let* en_seq = int "seq" in
  let* en_key = str "key" in
  let* en_verdict = str "verdict" in
  let* en_surveyed = int "surveyed" in
  let* en_responded = int "responded" in
  let* en_root =
    let* v = field "root" in
    match v with
    | Json.Null -> Ok None
    | Json.String s -> Ok (Some s)
    | _ -> Error "ledger entry: field \"root\" must be a string or null"
  in
  let* en_meter =
    let* v = field "meter" in
    match v with
    | Json.Obj pairs ->
        List.fold_left
          (fun acc (k, v) ->
            let* acc = acc in
            match v with
            | Json.Int i -> Ok ((k, i) :: acc)
            | _ -> Error "ledger entry: meter counts must be ints")
          (Ok []) pairs
        |> Result.map List.rev
    | _ -> Error "ledger entry: field \"meter\" must be an object"
  in
  let* en_body_md5 = str "body_md5" in
  let* en_prev = str "prev" in
  let* en_hash = str "hash" in
  Ok
    {
      en_seq;
      en_key;
      en_verdict;
      en_surveyed;
      en_responded;
      en_root;
      en_meter;
      en_body_md5;
      en_prev;
      en_hash;
    }

type t = {
  sink : string -> unit;
  buf : Buffer.t option;  (** [None] when a custom sink was given. *)
  mutable count : int;
  mutable head : string;
}

let create ?sink () =
  match sink with
  | Some sink -> { sink; buf = None; count = 0; head = genesis }
  | None ->
      let buf = Buffer.create 4096 in
      {
        sink = Buffer.add_string buf;
        buf = Some buf;
        count = 0;
        head = genesis;
      }

let append t ~key ~verdict ~surveyed ~responded ?root ~meter ~body () =
  let e =
    {
      en_seq = t.count;
      en_key = key;
      en_verdict = verdict;
      en_surveyed = surveyed;
      en_responded = responded;
      en_root = root;
      en_meter = meter;
      en_body_md5 = md5_hex body;
      en_prev = t.head;
      en_hash = "";
    }
  in
  let payload_line = Json.to_string (payload_json e) in
  let e = { e with en_hash = chain_hash ~prev:t.head payload_line } in
  t.sink (entry_line e ^ "\n");
  t.count <- t.count + 1;
  t.head <- e.en_hash;
  e

let length t = t.count

let head t = t.head

let contents t =
  match t.buf with
  | Some buf -> Buffer.contents buf
  | None -> invalid_arg "Mc_ledger.contents: ledger has a custom sink"

type error = { ve_index : int; ve_reason : string }

type summary = {
  sum_entries : int;
  sum_head : string;
  sum_verdicts : (string * int) list;
  sum_roots : (string * string) list;
  sum_root_changes : int;
}

let verify_lines ?expect_head lines =
  let verdicts = Hashtbl.create 4 in
  let roots = Hashtbl.create 16 in
  let root_changes = ref 0 in
  let bump tbl k by = Hashtbl.replace tbl k (by + Option.value ~default:0 (Hashtbl.find_opt tbl k)) in
  let check_entry ~index ~prev line =
    match Json.of_string line with
    | Error e -> Error { ve_index = index; ve_reason = "bad JSON: " ^ e }
    | Ok j -> (
        match entry_of_json j with
        | Error e -> Error { ve_index = index; ve_reason = e }
        | Ok e ->
            if e.en_seq <> index then
              Error
                {
                  ve_index = index;
                  ve_reason =
                    Printf.sprintf "sequence %d at position %d" e.en_seq index;
                }
            else if not (String.equal e.en_prev prev) then
              Error
                { ve_index = index; ve_reason = "broken link to previous entry" }
            else
              let expected =
                chain_hash ~prev (Json.to_string (payload_json e))
              in
              if not (String.equal e.en_hash expected) then
                Error { ve_index = index; ve_reason = "chain hash mismatch" }
              else Ok e)
  in
  let rec walk index prev lines =
    match lines () with
    | Seq.Nil -> Ok (index, prev)
    | Seq.Cons (line, rest) -> (
        match check_entry ~index ~prev line with
        | Error e -> Error e
        | Ok e ->
            bump verdicts e.en_verdict 1;
            (match e.en_root with
            | None -> ()
            | Some r ->
                (match Hashtbl.find_opt roots e.en_key with
                | Some prev_root when not (String.equal prev_root r) ->
                    incr root_changes
                | _ -> ());
                Hashtbl.replace roots e.en_key r);
            walk (index + 1) e.en_hash rest)
  in
  match walk 0 genesis lines with
  | Error e -> Error e
  | Ok (entries, last) -> (
      match expect_head with
      | Some h when not (String.equal h last) ->
          Error
            {
              ve_index = entries;
              ve_reason =
                Printf.sprintf "head is %s, expected %s (chain truncated?)"
                  last h;
            }
      | _ ->
          Ok
            {
              sum_entries = entries;
              sum_head = last;
              sum_verdicts =
                Hashtbl.fold (fun k v acc -> (k, v) :: acc) verdicts []
                |> List.sort compare;
              sum_roots =
                Hashtbl.fold (fun k v acc -> (k, v) :: acc) roots []
                |> List.sort compare;
              sum_root_changes = !root_changes;
            })

let nonempty_lines s =
  String.split_on_char '\n' s
  |> List.filter (fun l -> String.trim l <> "")
  |> List.to_seq

let verify ?expect_head s = verify_lines ?expect_head (nonempty_lines s)

let verify_file ?expect_head path =
  let ic = open_in path in
  Fun.protect ~finally:(fun () -> close_in_noerr ic) @@ fun () ->
  (* The file's lines must be materialized before the channel closes;
     keeping only non-empty trimmed lines, a million-entry ledger is a
     list of short strings — fine for an offline audit pass. *)
  let rec read acc =
    match input_line ic with
    | exception End_of_file -> List.rev acc
    | line -> read (if String.trim line = "" then acc else line :: acc)
  in
  verify_lines ?expect_head (List.to_seq (read []))
