module Dom = Mc_hypervisor.Dom
module Meter = Mc_hypervisor.Meter
module Xenctl = Mc_hypervisor.Xenctl
module Phys = Mc_memsim.Phys

(* A cached page copy is only valid while the guest is in the same memory
   epoch (no reboot/restore swapped the backing store) and the frame's
   write version is unchanged. The old cache kept plain [Bytes.t] forever
   and served stale data once the guest wrote the frame. *)
type cache_entry = { ce_epoch : int; ce_version : int; ce_data : Bytes.t }

(* The table is mutex-guarded because one cache may be shared across
   concurrently running sessions of the same VM (the engine services
   overlapping requests from different shards). The lock covers only the
   table operations, never a foreign map: two racing misses both map and
   the later store wins, which is correct because both mapped the same
   versioned frame. *)
type page_cache = {
  pc_mutex : Mutex.t;
  pc_tbl : (int, cache_entry) Hashtbl.t;
}

let create_cache () : page_cache =
  { pc_mutex = Mutex.create (); pc_tbl = Hashtbl.create 64 }

let cache_locked c f =
  Mutex.lock c.pc_mutex;
  Fun.protect ~finally:(fun () -> Mutex.unlock c.pc_mutex) f

type t = {
  t_dom : Dom.t;
  profile : Symbols.profile;
  meter : Meter.t option;
  cache : page_cache;
  touched : (int, int) Hashtbl.t;
      (** pfn → version observed when this session read it; the session's
          read footprint. *)
  max_attempts : int;
}

exception Invalid_address of int

exception
  Fault of {
    f_vm : int;
    f_pfn : int;
    f_kind : Mc_memsim.Faultplan.kind;
    f_attempts : int;
  }

let fault_message = function
  | Fault f ->
      Printf.sprintf "%s fault on pfn 0x%x of Dom%d after %d attempt(s)"
        (Mc_memsim.Faultplan.kind_name f.f_kind)
        f.f_pfn (f.f_vm + 1) f.f_attempts
  | e -> Printexc.to_string e

let page = Phys.frame_size

let default_max_attempts = 6

(* Registry counters alongside the per-phase meter: the meter is scoped to
   one checking job, these accumulate across the whole process run. *)
let tadd = Mc_telemetry.Registry.add

let init ?meter ?cache ?(max_attempts = default_max_attempts) dom profile =
  if max_attempts < 1 then invalid_arg "Vmi.init: max_attempts must be >= 1";
  (match meter with Some m -> Meter.add_vm_sessions m 1 | None -> ());
  tadd "vmi.sessions" 1;
  let cache = match cache with Some c -> c | None -> create_cache () in
  { t_dom = dom; profile; meter; cache; touched = Hashtbl.create 64;
    max_attempts }

let dom t = t.t_dom

(* Pause/unpause hypercalls can fail under a fault plan; they are cheap
   control-plane calls, so retry in place (successive calls are distinct
   trials of the plan's sequenced decision). *)
let retrying_pause_op t op =
  let rec go attempt =
    match op t.t_dom with
    | () -> ()
    | exception (Xenctl.Pause_fault _ as e) ->
        tadd "vmi.faults.pause" 1;
        if attempt >= t.max_attempts then raise e
        else begin
          (match t.meter with
          | Some m -> Meter.add_retry_backoffs m 1
          | None -> ());
          tadd "vmi.retries" 1;
          go (attempt + 1)
        end
  in
  go 1

let pause t = retrying_pause_op t Xenctl.pause

let flush_cache t =
  cache_locked t.cache (fun () -> Hashtbl.reset t.cache.pc_tbl)

let resume t =
  retrying_pause_op t Xenctl.resume;
  (* Belt and braces: version checks would catch stale entries anyway, but
     after the guest runs freely nothing cached is worth trusting. *)
  flush_cache t

let read_ksym t name = Symbols.lookup_exn t.profile name

(* Map with bounded retry: transient failures and torn copies may succeed
   on the next attempt (each attempt is an independent, deterministic
   trial of the fault plan), a paged-out frame never will. Every retry
   is priced as a backoff plus the repeated map; a session that exhausts
   its attempts surfaces a typed [Fault] so the orchestrator can count
   the VM as unreachable instead of silently dropping it. *)
let map_with_retry t pfn =
  let rec go attempt =
    match Xenctl.map_foreign_page ?meter:t.meter ~attempt t.t_dom pfn with
    | data -> data
    | exception Xenctl.Map_fault { mf_kind; _ } ->
        tadd ("vmi.faults." ^ Mc_memsim.Faultplan.kind_name mf_kind) 1;
        if Mc_memsim.Faultplan.retryable mf_kind && attempt < t.max_attempts
        then begin
          (match t.meter with
          | Some m -> Meter.add_retry_backoffs m 1
          | None -> ());
          tadd "vmi.retries" 1;
          go (attempt + 1)
        end
        else begin
          tadd "vmi.fault_aborts" 1;
          raise
            (Fault
               {
                 f_vm = t.t_dom.Dom.dom_id - 1;
                 f_pfn = pfn;
                 f_kind = mf_kind;
                 f_attempts = attempt;
               })
        end
  in
  go 1

let mapped_page t pfn =
  let remap () =
    let data = map_with_retry t pfn in
    tadd "vmi.pages_mapped" 1;
    let epoch = Xenctl.memory_epoch t.t_dom in
    let ver = Xenctl.page_version t.t_dom pfn in
    cache_locked t.cache (fun () ->
        Hashtbl.replace t.cache.pc_tbl pfn
          { ce_epoch = epoch; ce_version = ver; ce_data = data });
    Hashtbl.replace t.touched pfn ver;
    data
  in
  match cache_locked t.cache (fun () -> Hashtbl.find_opt t.cache.pc_tbl pfn) with
  | Some ce
    when ce.ce_epoch = Xenctl.memory_epoch t.t_dom
         && ce.ce_version = Xenctl.page_version t.t_dom pfn ->
      tadd "vmi.page_cache_hits" 1;
      (match t.meter with Some m -> Meter.add_pfns_checked m 1 | None -> ());
      Hashtbl.replace t.touched pfn ce.ce_version;
      ce.ce_data
  | Some _ ->
      tadd "vmi.pages_stale" 1;
      remap ()
  | None -> remap ()

let footprint t =
  let arr = Array.make (Hashtbl.length t.touched) (0, 0) in
  let i = ref 0 in
  Hashtbl.iter
    (fun pfn v ->
      arr.(!i) <- (pfn, v);
      incr i)
    t.touched;
  Array.sort compare arr;
  arr

let read_pa t paddr len =
  let dst = Bytes.create len in
  let rec loop paddr off len =
    if len > 0 then begin
      let pfn = paddr / page and poff = paddr mod page in
      let chunk = min len (page - poff) in
      Bytes.blit (mapped_page t pfn) poff dst off chunk;
      (match t.meter with Some m -> Meter.add_bytes_copied m chunk | None -> ());
      tadd "vmi.bytes_copied" chunk;
      loop (paddr + chunk) (off + chunk) (len - chunk)
    end
  in
  loop paddr 0 len;
  dst

let read_pa_u32 t paddr =
  let b = read_pa t paddr 4 in
  Bytes.get_int32_le b 0

(* The same two-level walk the guest MMU performs, but executed from the
   outside against mapped pages (cf. Mc_memsim.Pagetable.walk, which the
   guest itself uses). *)
let translate_kv2p t va =
  let cr3 = Xenctl.get_vcpu_cr3 t.t_dom in
  let vpn = va lsr 12 in
  let pde_idx = (vpn lsr 10) land 0x3FF and pte_idx = vpn land 0x3FF in
  let pde = read_pa_u32 t (cr3 + (pde_idx * 4)) in
  if Int32.logand pde 1l = 0l then None
  else begin
    let table_pa = Int32.to_int (Int32.shift_right_logical pde 12) land 0xFFFFF * page in
    let pte = read_pa_u32 t (table_pa + (pte_idx * 4)) in
    if Int32.logand pte 1l = 0l then None
    else
      Some
        ((Int32.to_int (Int32.shift_right_logical pte 12) land 0xFFFFF * page)
        + (va land 0xFFF))
  end

let read_va t va len =
  let dst = Bytes.create len in
  let rec loop va off len =
    if len > 0 then begin
      match translate_kv2p t va with
      | None -> raise (Invalid_address va)
      | Some pa ->
          let chunk = min len (page - (va mod page)) in
          let pfn = pa / page and poff = pa mod page in
          Bytes.blit (mapped_page t pfn) poff dst off chunk;
          (match t.meter with
          | Some m -> Meter.add_bytes_copied m chunk
          | None -> ());
          tadd "vmi.bytes_copied" chunk;
          loop (va + chunk) (off + chunk) (len - chunk)
    end
  in
  loop va 0 len;
  dst

let try_read_va t va len =
  match read_va t va len with
  | b -> Some b
  | exception Invalid_address _ -> None

let read_va_padded t va len =
  let dst = Bytes.make len '\000' in
  let rec loop va off len =
    if len > 0 then begin
      let chunk = min len (page - (va mod page)) in
      (match translate_kv2p t va with
      | None -> () (* unmapped: leave zeros *)
      | Some pa ->
          let pfn = pa / page and poff = pa mod page in
          Bytes.blit (mapped_page t pfn) poff dst off chunk;
          (match t.meter with
          | Some m -> Meter.add_bytes_copied m chunk
          | None -> ());
          tadd "vmi.bytes_copied" chunk);
      loop (va + chunk) (off + chunk) (len - chunk)
    end
  in
  loop va 0 len;
  dst

let read_va_u32 t va =
  let b = read_va t va 4 in
  Bytes.get_int32_le b 0

let read_va_u32_int t va = Mc_util.Le.int_of_u32 (read_va_u32 t va)

let read_va_u16 t va =
  let b = read_va t va 2 in
  Bytes.get_uint16_le b 0

let pfns_of_va_range t va len =
  let rec loop va len acc =
    if len <= 0 then List.rev acc
    else
      let chunk = min len (page - (va mod page)) in
      let entry =
        match translate_kv2p t va with
        | None -> None
        | Some pa -> Some (pa / page)
      in
      loop (va + chunk) (len - chunk) (entry :: acc)
  in
  loop va len []

let pages_cached t =
  cache_locked t.cache (fun () -> Hashtbl.length t.cache.pc_tbl)
