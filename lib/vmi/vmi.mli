(** Virtual machine introspection — the libVMI-equivalent.

    A handle gives Dom0 read-only access to one guest's memory: physical
    reads via foreign page mapping, virtual reads via a walk of the guest's
    own page tables (CR3 from the vCPU context), and kernel symbol lookup
    through the OS profile. Mapped pages are cached (libVMI's page cache),
    so the meter counts each foreign page once rather than once per access.

    Every cache entry remembers the guest's memory epoch and the frame's
    write version at map time; a hit is only served while both still match,
    so a guest write (or a reboot) can never be masked by the cache. That
    makes the cache safe to share across sessions and across sweeps — pass
    your own {!page_cache} to {!init} to do so. *)

type t

type page_cache
(** A version-checked pfn → page-copy cache, shareable between sessions on
    the same guest. *)

val create_cache : unit -> page_cache

exception Invalid_address of int
(** Raised with the guest VA whose translation failed. *)

exception
  Fault of {
    f_vm : int;  (** 0-based DomU index. *)
    f_pfn : int;
    f_kind : Mc_memsim.Faultplan.kind;
    f_attempts : int;  (** Map attempts made, including the failed last. *)
  }
(** An introspection read could not complete: the frame is paged out, or
    transient/torn failures persisted through every retry. The session's
    partial reads must not be trusted (nor cached) — the orchestrator
    counts the VM as unreachable for this check. *)

val fault_message : exn -> string
(** Human-readable rendering of a {!Fault} (falls back to
    [Printexc.to_string] for other exceptions). *)

val default_max_attempts : int
(** Mapping attempts per page before a retryable fault aborts the read
    (6: at a 5 % transient rate the per-page abort probability is
    [0.05^6 ≈ 1.6e-8]). *)

val init :
  ?meter:Mc_hypervisor.Meter.t ->
  ?cache:page_cache ->
  ?max_attempts:int ->
  Mc_hypervisor.Dom.t ->
  Symbols.profile ->
  t
(** [init dom profile] opens an introspection session (metered as one VM
    session). [?cache] substitutes a shared page cache for the default
    fresh per-session one. [?max_attempts] (default
    {!default_max_attempts}, must be ≥ 1) bounds mapping retries; each
    retry is priced as one backoff plus the repeated map. *)

val dom : t -> Mc_hypervisor.Dom.t

val pause : t -> unit
(** Pause the guest's vCPUs for a consistent view. *)

val resume : t -> unit
(** Resume the guest and drop the page cache — once the guest runs freely,
    nothing cached is worth trusting. *)

val read_ksym : t -> string -> int
(** [read_ksym t name] is the kernel VA of [name] per the profile.
    Raises [Not_found] for unknown symbols. *)

val translate_kv2p : t -> int -> int option
(** [translate_kv2p t va] walks the guest's page directory/tables (read
    through the foreign mapping) and returns the physical address. *)

val read_pa : t -> int -> int -> Bytes.t
(** [read_pa t paddr len] reads guest-physical memory. *)

val read_va : t -> int -> int -> Bytes.t
(** [read_va t va len] reads guest-virtual memory page by page — the
    paper's observation that Module-Searcher "has to access the memory by
    pages" is this chunking. Raises [Invalid_address] on unmapped pages. *)

val try_read_va : t -> int -> int -> Bytes.t option

val read_va_padded : t -> int -> int -> Bytes.t
(** [read_va_padded t va len] is [read_va] except unmapped pages read as
    zeros — standard memory-forensics behaviour for paged-out or discarded
    regions (a loaded module's freed [.reloc] pages, for instance). *)

val read_va_u32 : t -> int -> int32

val read_va_u32_int : t -> int -> int

val read_va_u16 : t -> int -> int

val footprint : t -> (int * int) array
(** [footprint t] is every (pfn, version-as-read) pair this session has
    touched, sorted by pfn. Because reads are deterministic, a later
    computation over the same pages is guaranteed to produce the same
    result while {!Mc_hypervisor.Xenctl.pages_unchanged} holds for this
    footprint — the keying contract of the digest cache. *)

val pfns_of_va_range : t -> int -> int -> int option list
(** [pfns_of_va_range t va len] names the guest frame behind each
    page-sized chunk of the VA range, in address order ([None] for an
    unmapped chunk). The page-table walk goes through the session's page
    cache and counts into its footprint like any other read — this is how
    the Merkle refresh learns which cached leaves a dirty pfn backs. *)

val pages_cached : t -> int
(** Number of distinct guest frames currently in the page cache. *)

val flush_cache : t -> unit
(** Drop the page cache (e.g. after the guest resumed and may have written
    to memory). *)
