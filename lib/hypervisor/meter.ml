type phase = Searcher | Parser | Checker

let phase_name = function
  | Searcher -> "Module-Searcher"
  | Parser -> "Module-Parser"
  | Checker -> "Integrity-Checker"

let phase_key = function
  | Searcher -> "searcher"
  | Parser -> "parser"
  | Checker -> "checker"

type counts = {
  mutable pages_mapped : int;
  mutable bytes_copied : int;
  mutable struct_reads : int;
  mutable bytes_parsed : int;
  mutable sections_parsed : int;
  mutable bytes_scanned : int;
  mutable bytes_hashed : int;
  mutable vm_sessions : int;
  mutable hypercalls : int;
  mutable pfns_checked : int;
  mutable retry_backoffs : int;
  mutable merkle_nodes : int;
  mutable watch_arms : int;
  mutable trap_events : int;
}

let zero () =
  {
    pages_mapped = 0;
    bytes_copied = 0;
    struct_reads = 0;
    bytes_parsed = 0;
    sections_parsed = 0;
    bytes_scanned = 0;
    bytes_hashed = 0;
    vm_sessions = 0;
    hypercalls = 0;
    pfns_checked = 0;
    retry_backoffs = 0;
    merkle_nodes = 0;
    watch_arms = 0;
    trap_events = 0;
  }

type t = {
  searcher : counts;
  parser : counts;
  checker : counts;
  mutable selected : phase;
}

let create () =
  { searcher = zero (); parser = zero (); checker = zero (); selected = Searcher }

let clear c =
  c.pages_mapped <- 0;
  c.bytes_copied <- 0;
  c.struct_reads <- 0;
  c.bytes_parsed <- 0;
  c.sections_parsed <- 0;
  c.bytes_scanned <- 0;
  c.bytes_hashed <- 0;
  c.vm_sessions <- 0;
  c.hypercalls <- 0;
  c.pfns_checked <- 0;
  c.retry_backoffs <- 0;
  c.merkle_nodes <- 0;
  c.watch_arms <- 0;
  c.trap_events <- 0

let reset t =
  clear t.searcher;
  clear t.parser;
  clear t.checker;
  t.selected <- Searcher

let set_phase t p = t.selected <- p

let get t = function
  | Searcher -> t.searcher
  | Parser -> t.parser
  | Checker -> t.checker

let current t = get t t.selected

let add_pages_mapped t n = (current t).pages_mapped <- (current t).pages_mapped + n

let add_bytes_copied t n = (current t).bytes_copied <- (current t).bytes_copied + n

let add_struct_reads t n = (current t).struct_reads <- (current t).struct_reads + n

let add_bytes_parsed t n = (current t).bytes_parsed <- (current t).bytes_parsed + n

let add_sections_parsed t n =
  (current t).sections_parsed <- (current t).sections_parsed + n

let add_bytes_scanned t n = (current t).bytes_scanned <- (current t).bytes_scanned + n

let add_bytes_hashed t n = (current t).bytes_hashed <- (current t).bytes_hashed + n

let add_vm_sessions t n = (current t).vm_sessions <- (current t).vm_sessions + n

let add_hypercalls t n = (current t).hypercalls <- (current t).hypercalls + n

let add_pfns_checked t n = (current t).pfns_checked <- (current t).pfns_checked + n

let add_retry_backoffs t n =
  (current t).retry_backoffs <- (current t).retry_backoffs + n

let add_merkle_nodes t n = (current t).merkle_nodes <- (current t).merkle_nodes + n

let add_watch_arms t n = (current t).watch_arms <- (current t).watch_arms + n

let add_trap_events t n = (current t).trap_events <- (current t).trap_events + n

let merge_counts dst src =
  dst.pages_mapped <- dst.pages_mapped + src.pages_mapped;
  dst.bytes_copied <- dst.bytes_copied + src.bytes_copied;
  dst.struct_reads <- dst.struct_reads + src.struct_reads;
  dst.bytes_parsed <- dst.bytes_parsed + src.bytes_parsed;
  dst.sections_parsed <- dst.sections_parsed + src.sections_parsed;
  dst.bytes_scanned <- dst.bytes_scanned + src.bytes_scanned;
  dst.bytes_hashed <- dst.bytes_hashed + src.bytes_hashed;
  dst.vm_sessions <- dst.vm_sessions + src.vm_sessions;
  dst.hypercalls <- dst.hypercalls + src.hypercalls;
  dst.pfns_checked <- dst.pfns_checked + src.pfns_checked;
  dst.retry_backoffs <- dst.retry_backoffs + src.retry_backoffs;
  dst.merkle_nodes <- dst.merkle_nodes + src.merkle_nodes;
  dst.watch_arms <- dst.watch_arms + src.watch_arms;
  dst.trap_events <- dst.trap_events + src.trap_events

let merge dst src =
  merge_counts dst.searcher src.searcher;
  merge_counts dst.parser src.parser;
  merge_counts dst.checker src.checker

let pairs k =
  [
    ("pages_mapped", k.pages_mapped);
    ("bytes_copied", k.bytes_copied);
    ("struct_reads", k.struct_reads);
    ("bytes_parsed", k.bytes_parsed);
    ("sections_parsed", k.sections_parsed);
    ("bytes_scanned", k.bytes_scanned);
    ("bytes_hashed", k.bytes_hashed);
    ("vm_sessions", k.vm_sessions);
    ("hypercalls", k.hypercalls);
    ("pfns_checked", k.pfns_checked);
    ("retry_backoffs", k.retry_backoffs);
    ("merkle_nodes", k.merkle_nodes);
    ("watch_arms", k.watch_arms);
    ("trap_events", k.trap_events);
  ]

let cpu_seconds (c : Costs.t) k =
  (float_of_int k.pages_mapped *. c.page_map_s)
  +. (float_of_int k.bytes_copied *. c.copy_byte_s)
  +. (float_of_int k.struct_reads *. c.struct_read_s)
  +. (float_of_int k.bytes_parsed *. c.parse_byte_s)
  +. (float_of_int k.sections_parsed *. c.parse_section_s)
  +. (float_of_int k.bytes_scanned *. c.scan_byte_s)
  +. (float_of_int k.bytes_hashed *. c.hash_byte_s)
  +. (float_of_int k.vm_sessions *. c.vm_session_s)
  +. (float_of_int k.hypercalls *. c.hypercall_s)
  +. (float_of_int k.pfns_checked *. c.dirty_scan_pfn_s)
  +. (float_of_int k.retry_backoffs *. c.retry_backoff_s)
  +. (float_of_int k.merkle_nodes *. c.merkle_node_s)
  +. (float_of_int k.watch_arms *. c.watch_arm_pfn_s)
  +. (float_of_int k.trap_events *. c.trap_event_s)

let total_cpu_seconds costs t =
  cpu_seconds costs t.searcher +. cpu_seconds costs t.parser
  +. cpu_seconds costs t.checker
