(** Operation counters, kept per ModChecker component.

    The real OCaml implementation runs against the simulated guests while
    a meter counts what it does (pages mapped, bytes copied, hashed,
    scanned...). [cpu_seconds] then prices those counts with a {!Costs.t}.
    This keeps the timing model honest: the counts are produced by the
    actual code paths, only the per-operation prices are assumed. *)

type phase = Searcher | Parser | Checker

val phase_name : phase -> string

val phase_key : phase -> string
(** Short lowercase key ("searcher", "parser", "checker") used to prefix
    telemetry counter names. *)

type counts = {
  mutable pages_mapped : int;
  mutable bytes_copied : int;
  mutable struct_reads : int;
  mutable bytes_parsed : int;
  mutable sections_parsed : int;
  mutable bytes_scanned : int;
  mutable bytes_hashed : int;
  mutable vm_sessions : int;
  mutable hypercalls : int;
  mutable pfns_checked : int;
  mutable retry_backoffs : int;
  mutable merkle_nodes : int;
  mutable watch_arms : int;
  mutable trap_events : int;
}

type t

val create : unit -> t

val reset : t -> unit

val set_phase : t -> phase -> unit
(** [set_phase t p] routes subsequent counter bumps to [p]'s counts. *)

val get : t -> phase -> counts
(** [get t p] is [p]'s live counter record. *)

val current : t -> counts
(** The counts of the phase currently selected. *)

val add_pages_mapped : t -> int -> unit

val add_bytes_copied : t -> int -> unit

val add_struct_reads : t -> int -> unit

val add_bytes_parsed : t -> int -> unit

val add_sections_parsed : t -> int -> unit

val add_bytes_scanned : t -> int -> unit

val add_bytes_hashed : t -> int -> unit

val add_vm_sessions : t -> int -> unit

val add_hypercalls : t -> int -> unit

val add_pfns_checked : t -> int -> unit

val add_retry_backoffs : t -> int -> unit
(** Count one priced backoff delay before a foreign-map retry. *)

val add_merkle_nodes : t -> int -> unit
(** Count interior Merkle digests computed (32-byte MD5 roll-ups); leaf
    hashing is already counted as bytes hashed. *)

val add_watch_arms : t -> int -> unit
(** Count frames write-protected or unprotected by a watch domctl; the
    domctl round trip itself is counted as a hypercall. *)

val add_trap_events : t -> int -> unit
(** Count write-trap events delivered to Dom0 by a drain. *)

val merge : t -> t -> unit
(** [merge dst src] adds every counter of [src] into [dst], phase by
    phase. This is how parallel jobs — each metering into its own [t] —
    fold their counts back into the caller's meter after the join;
    [src]'s selected phase is irrelevant and [dst]'s is unchanged. *)

val pairs : counts -> (string * int) list
(** [pairs c] is every field as a named count, in declaration order — the
    shape {!Mc_telemetry.Bridge.add_counts} consumes. *)

val cpu_seconds : Costs.t -> counts -> float
(** [cpu_seconds costs c] prices the counts into virtual CPU seconds. *)

val total_cpu_seconds : Costs.t -> t -> float
