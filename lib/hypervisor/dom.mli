(** A Xen-style domain: a guest VM with its kernel, or the privileged
    Dom0. *)

type t = {
  dom_id : int;  (** 0 is the privileged domain. *)
  dom_name : string;
  mutable kernel : Mc_winkernel.Kernel.t option;
      (** The booted guest; [None] for Dom0 (whose OS is not simulated) and
          for guests that are shut down. *)
  mutable workload : Mc_workload.Stress.t;
  mutable paused : bool;
  vcpus : int;
  mutable faults : Mc_memsim.Faultplan.t option;
      (** When set, the hypervisor interface to this domain injects the
          plan's failures ({!Xenctl.map_foreign_page} and pause/resume
          consult it). [None] — the default — is the fault-free
          behaviour, bit-identical to a plan with all rates zero. *)
}

val create :
  dom_id:int ->
  dom_name:string ->
  ?vcpus:int ->
  ?faults:Mc_memsim.Faultplan.t ->
  Mc_winkernel.Kernel.t option ->
  t

val is_privileged : t -> bool

val kernel_exn : t -> Mc_winkernel.Kernel.t
(** [kernel_exn t] — raises [Failure] when the domain has no booted
    kernel. *)

val cpu_busy : t -> bool
(** [cpu_busy t] is true when the domain's workload keeps its vCPU
    runnable (and it is not paused). *)
