module Phys = Mc_memsim.Phys
module Faultplan = Mc_memsim.Faultplan
module Kernel = Mc_winkernel.Kernel

exception Map_fault of { mf_pfn : int; mf_kind : Faultplan.kind }

exception Pause_fault of { pf_dom : int }

let get_vcpu_cr3 dom = Kernel.cr3 (Dom.kernel_exn dom)

let check_pause (dom : Dom.t) =
  match dom.faults with
  | Some plan when Faultplan.pause_fails plan ->
      raise (Pause_fault { pf_dom = dom.dom_id })
  | _ -> ()

let pause (dom : Dom.t) =
  check_pause dom;
  dom.paused <- true

let resume (dom : Dom.t) =
  check_pause dom;
  dom.paused <- false

let bump meter f = match meter with Some m -> f m | None -> ()

let phys dom = Kernel.phys (Dom.kernel_exn dom)

let map_foreign_page ?meter ?(attempt = 1) (dom : Dom.t) pfn =
  (* A failed attempt still costs a page map: Dom0 issued the hypercall
     and only then learned the mapping did not stick. *)
  bump meter (fun m -> Meter.add_pages_mapped m 1);
  (match dom.faults with
  | Some plan -> (
      match Faultplan.map_outcome plan ~pfn ~attempt with
      | Some kind -> raise (Map_fault { mf_pfn = pfn; mf_kind = kind })
      | None -> ())
  | None -> ());
  (* Foreign mappings go through the guest's shim, if an adversary
     installed one — this is the page-granular channel every checker
     read uses, and exactly what a SEVurity-style attacker intercepts.
     [read_foreign_pa] below stays raw: it models the hypervisor's own
     debug read path, which in-guest tampering cannot reach. *)
  Phys.read_page_foreign (phys dom) pfn

let read_foreign_pa ?meter dom paddr dst off len =
  (* A zero-length read maps nothing and copies nothing. Without the
     guard, [last] computes to the page *before* [first] and the meter
     would be charged a bogus (first > last: negative) page count. *)
  if len > 0 then begin
    let page = Phys.frame_size in
    let first = paddr / page and last = (paddr + len - 1) / page in
    bump meter (fun m ->
        Meter.add_pages_mapped m (last - first + 1);
        Meter.add_bytes_copied m len);
    Phys.read (phys dom) paddr dst off len
  end

(* --- log-dirty (XEN_DOMCTL_SHADOW_OP_* analogues) ---------------------- *)

let enable_log_dirty ?meter dom =
  bump meter (fun m -> Meter.add_hypercalls m 1);
  Phys.set_log_dirty (phys dom) true

let disable_log_dirty ?meter dom =
  bump meter (fun m -> Meter.add_hypercalls m 1);
  Phys.set_log_dirty (phys dom) false

let peek_dirty ?meter dom =
  bump meter (fun m -> Meter.add_hypercalls m 1);
  Phys.peek_dirty (phys dom)

let clean_dirty ?meter dom =
  bump meter (fun m -> Meter.add_hypercalls m 1);
  Phys.clean_dirty (phys dom)

(* --- write traps (vm_event / monitor-op analogues) --------------------- *)

(* Like the log-dirty domctls, watch management is Dom0 control-plane
   traffic and is not subject to the domain's fault plan. *)

let watch_pages ?meter dom pfns =
  bump meter (fun m ->
      Meter.add_hypercalls m 1;
      Meter.add_watch_arms m (List.length pfns));
  Phys.watch_frames (phys dom) pfns

let unwatch_pages ?meter dom pfns =
  bump meter (fun m ->
      Meter.add_hypercalls m 1;
      Meter.add_watch_arms m (List.length pfns));
  Phys.unwatch_frames (phys dom) pfns

let watched_pfns dom = Phys.watched_frames (phys dom)

let pending_trap_events dom = Phys.pending_watch_events (phys dom)

let drain_events ?meter dom =
  match Phys.drain_watch_events (phys dom) with
  | [] -> []  (* delivery is push: an empty ring costs Dom0 nothing *)
  | evs ->
      bump meter (fun m ->
          Meter.add_hypercalls m 1;
          Meter.add_trap_events m (List.length evs));
      evs

let set_trap_clock dom now = Phys.set_watch_clock (phys dom) now

let memory_epoch dom = Phys.uid (phys dom)

let page_version dom pfn = Phys.page_version (phys dom) pfn

let pages_unchanged ?meter dom ~epoch footprint =
  bump meter (fun m ->
      Meter.add_hypercalls m 1;
      Meter.add_pfns_checked m (Array.length footprint));
  let p = phys dom in
  Phys.uid p = epoch
  && Array.for_all (fun (pfn, v) -> Phys.page_version p pfn = v) footprint

let stale_pfns ?meter dom ~epoch footprint =
  bump meter (fun m ->
      Meter.add_hypercalls m 1;
      Meter.add_pfns_checked m (Array.length footprint));
  let p = phys dom in
  if Phys.uid p <> epoch then None
  else
    Some
      (Array.to_list footprint
      |> List.filter_map (fun (pfn, v) ->
             if Phys.page_version p pfn = v then None else Some pfn))
