(** The timing cost model.

    The paper measures ModChecker on a real Xen testbed; this repository
    replays the same operations against simulated guests and converts the
    {e operation counts} (metered while the real OCaml code runs) into
    virtual CPU seconds with these constants. Constants are set to yield
    millisecond-scale checks comparable to VMI tooling of the paper's era;
    only the {e shape} of the resulting curves is claimed, never absolute
    equality with the authors' hardware. *)

type t = {
  page_map_s : float;  (** Mapping one foreign guest page from Dom0. *)
  copy_byte_s : float;  (** Copying one byte out of a mapped page. *)
  struct_read_s : float;
      (** One structure-sized VMI read during the list walk (an
          LDR entry, a UNICODE_STRING, a pointer chase). *)
  parse_byte_s : float;  (** Parsing one header byte. *)
  parse_section_s : float;  (** Fixed cost per section processed. *)
  scan_byte_s : float;  (** RVA-adjustment scan, per byte compared. *)
  hash_byte_s : float;  (** MD5, per byte. *)
  vm_session_s : float;  (** Per-VM introspection session setup/teardown. *)
  hypercall_s : float;
      (** One log-dirty control/peek/clean hypercall round trip. *)
  dirty_scan_pfn_s : float;
      (** Checking one pfn against the log-dirty bitmap / version table —
          the unit cost of an incremental sweep's staleness scan. *)
  retry_backoff_s : float;
      (** Backoff delay Dom0 spends before retrying a failed foreign-page
          map (the failed map itself is priced as a normal page map). *)
  merkle_node_s : float;
      (** Computing one interior Merkle node: an MD5 over the 32-byte
          concatenation of two child digests (one compression block). *)
  watch_arm_pfn_s : float;
      (** Write-protecting (or unprotecting) one guest frame: an EPT/shadow
          permission flip plus TLB shootdown share, amortized over a batch
          (the batch's domctl round trip is priced as a hypercall). *)
  trap_event_s : float;
      (** Delivering one write-trap event to Dom0: the guest's #PF VM-exit,
          the hypervisor logging the event and dropping the protection, and
          Dom0's share of reading it out of the ring. *)
  bus_slowdown_per_busy_vm : float;
      (** Fractional slowdown of memory-bound work per concurrently
          bus-hungry VM (saturating at the core count). *)
}

val default : t
