type t = {
  dom_id : int;
  dom_name : string;
  mutable kernel : Mc_winkernel.Kernel.t option;
  mutable workload : Mc_workload.Stress.t;
  mutable paused : bool;
  vcpus : int;
  mutable faults : Mc_memsim.Faultplan.t option;
}

let create ~dom_id ~dom_name ?(vcpus = 1) ?faults kernel =
  {
    dom_id;
    dom_name;
    kernel;
    workload = Mc_workload.Stress.idle;
    paused = false;
    vcpus;
    faults;
  }

let is_privileged t = t.dom_id = 0

let kernel_exn t =
  match t.kernel with
  | Some k -> k
  | None -> failwith (Printf.sprintf "domain %s has no kernel" t.dom_name)

let cpu_busy t =
  (not t.paused) && Mc_workload.Stress.is_cpu_busy t.workload
