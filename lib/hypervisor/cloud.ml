module Fs = Mc_winkernel.Fs
module Kernel = Mc_winkernel.Kernel
module Catalog = Mc_pe.Catalog
module Stress = Mc_workload.Stress

type t = {
  dom0 : Dom.t;
  domus : Dom.t array;
  cores : int;
  golden_fs : Fs.t;
  cloud_seed : int64;
  module_alignment : int;
  os_variant : Mc_winkernel.Layout.os_variant;
  patch_levels : int array;
}

let golden_filesystem ?(version = 1) ?(extra_modules = []) () =
  let fs = Fs.create () in
  List.iter
    (fun name ->
      let built = Catalog.image ~version name in
      Fs.write_file fs (Fs.module_path name) built.Catalog.file)
    (Catalog.standard_modules @ extra_modules);
  fs

let vm_seed cloud_seed i =
  Int64.add cloud_seed (Int64.of_int ((i + 1) * 0x9E37))

let boot_vm ~fs ~module_alignment ~os_variant ~seed ~generation =
  Mc_telemetry.Registry.add "cloud.vm_boots" 1;
  match Kernel.boot ~module_alignment ~generation ~os_variant ~fs ~seed () with
  | Ok k -> k
  | Error e -> failwith ("Cloud: VM boot failed: " ^ Kernel.error_to_string e)

(* One plan per domain, salted by dom_id, so clones sharing a spec fault
   on different pfns. *)
let plan_for spec (dom : Dom.t) =
  match spec with
  | Some s when not (Mc_memsim.Faultplan.is_none s) ->
      Some (Mc_memsim.Faultplan.create ~salt:dom.Dom.dom_id s)
  | _ -> None

let set_fault_spec t spec =
  Array.iter (fun dom -> dom.Dom.faults <- plan_for spec dom) t.domus

let set_vm_fault_spec t i spec =
  if i < 0 || i >= Array.length t.domus then
    invalid_arg (Printf.sprintf "Cloud.set_vm_fault_spec: no DomU index %d" i);
  let dom = t.domus.(i) in
  dom.Dom.faults <- plan_for spec dom

let create ?(vms = 15) ?(cores = 8) ?(module_alignment = Mc_winkernel.Layout.default_module_alignment)
    ?(extra_modules = []) ?(seed = 2012L)
    ?(os_variant = Mc_winkernel.Layout.Xp_sp2) ?(patch_levels = [])
    ?fault_spec () =
  let level_of =
    match patch_levels with
    | [] -> fun _ -> 1
    | l ->
        let a = Array.of_list l in
        fun i -> a.(i mod Array.length a)
  in
  let vm_patch_levels = Array.init vms level_of in
  (* One golden installation per distinct patch level; a homogeneous pool
     still clones a single filesystem, as in the paper. *)
  let fs_by_level = Hashtbl.create 4 in
  let golden_for level =
    match Hashtbl.find_opt fs_by_level level with
    | Some fs -> fs
    | None ->
        let fs = golden_filesystem ~version:level ~extra_modules () in
        Hashtbl.add fs_by_level level fs;
        fs
  in
  let golden_fs = golden_for (if vms > 0 then vm_patch_levels.(0) else 1) in
  let dom0 = Dom.create ~dom_id:0 ~dom_name:"Domain-0" ~vcpus:2 None in
  let domus =
    Array.init vms (fun i ->
        let fs = Fs.clone (golden_for vm_patch_levels.(i)) in
        let kernel =
          boot_vm ~fs ~module_alignment ~os_variant ~seed:(vm_seed seed i)
            ~generation:0
        in
        Dom.create ~dom_id:(i + 1)
          ~dom_name:(Printf.sprintf "Dom%d" (i + 1))
          (Some kernel))
  in
  let t =
    { dom0; domus; cores; golden_fs; cloud_seed = seed; module_alignment;
      os_variant; patch_levels = vm_patch_levels }
  in
  set_fault_spec t fault_spec;
  t

let vm t i =
  if i < 0 || i >= Array.length t.domus then
    invalid_arg (Printf.sprintf "Cloud.vm: no DomU index %d" i);
  t.domus.(i)

let vm_count t = Array.length t.domus

let vm_patch_level t i =
  if i < 0 || i >= Array.length t.patch_levels then
    invalid_arg (Printf.sprintf "Cloud.vm_patch_level: no DomU index %d" i);
  t.patch_levels.(i)

let distinct_patch_levels t =
  Array.to_list t.patch_levels |> List.sort_uniq compare

let reboot_vm t i =
  Mc_telemetry.Registry.add "cloud.vm_reboots" 1;
  let dom = vm t i in
  let old_kernel = Dom.kernel_exn dom in
  let kernel =
    boot_vm
      ~fs:(Kernel.fs old_kernel)
      ~module_alignment:t.module_alignment
      ~os_variant:(Kernel.os_variant old_kernel)
      ~seed:(Kernel.seed old_kernel)
      ~generation:(Kernel.generation old_kernel + 1)
  in
  dom.kernel <- Some kernel

type vm_snapshot = Kernel.snapshot

let snapshot_vm t i =
  Mc_telemetry.Registry.add "cloud.vm_snapshots" 1;
  Kernel.snapshot (Dom.kernel_exn (vm t i))

let restore_vm t i snap =
  Mc_telemetry.Registry.add "cloud.vm_restores" 1;
  let dom = vm t i in
  dom.kernel <- Some (Kernel.restore snap)

let busy_guest_vcpus t =
  Array.fold_left
    (fun n dom -> if Dom.cpu_busy dom then n + dom.Dom.vcpus else n)
    0 t.domus

let set_workload_all t w =
  Array.iter (fun (dom : Dom.t) -> dom.workload <- w) t.domus

let set_workload t i w = (vm t i).Dom.workload <- w

let busy_vms t =
  Array.fold_left
    (fun n (dom : Dom.t) ->
      if Stress.bus_pressure dom.workload > 0.0 && not dom.paused then n + 1
      else n)
    0 t.domus
