(** The cloud testbed: one privileged Dom0 plus N DomU clones booted from a
    single golden installation (the paper's §V-A setup: 15 identical
    Windows XP clones under Xen on an 8-core host). *)

type t = {
  dom0 : Dom.t;
  domus : Dom.t array;
  cores : int;
  golden_fs : Mc_winkernel.Fs.t;
  cloud_seed : int64;
  module_alignment : int;
  os_variant : Mc_winkernel.Layout.os_variant;
  patch_levels : int array;  (** Per-DomU module patch level (catalog version). *)
}

val golden_filesystem :
  ?version:int -> ?extra_modules:string list -> unit -> Mc_winkernel.Fs.t
(** [golden_filesystem ()] writes every standard catalog module (plus
    [extra_modules]) to a fresh filesystem — the single installation all
    VMs are cloned from. [version] selects the catalog patch level the
    modules are generated at (default 1). *)

val create :
  ?vms:int ->
  ?cores:int ->
  ?module_alignment:int ->
  ?extra_modules:string list ->
  ?seed:int64 ->
  ?os_variant:Mc_winkernel.Layout.os_variant ->
  ?patch_levels:int list ->
  ?fault_spec:Mc_memsim.Faultplan.spec ->
  unit ->
  t
(** [create ()] builds the testbed: default 15 DomUs ([Dom1]..[Dom15]) on
    8 cores, each cloning the golden filesystem and booting with a per-VM
    seed (so module load bases differ across VMs, as in Fig. 4).
    [fault_spec] arms fault injection on every DomU (each gets the spec
    salted with its dom id); omitted or all-zero means no injection.
    [patch_levels] drops the paper's identical-VM assumption: the list is
    cycled across DomUs ([Dom1] gets the first level, ...) and each
    distinct level gets its own golden installation whose module contents
    differ (same names, same section sizes, different code — a patched
    build). Default: every VM at level 1, bit-identical to the paper's
    setup. *)

val set_fault_spec : t -> Mc_memsim.Faultplan.spec option -> unit
(** [set_fault_spec t spec] re-arms (or, with [None] / an all-zero spec,
    disarms) fault injection on every DomU. *)

val set_vm_fault_spec : t -> int -> Mc_memsim.Faultplan.spec option -> unit
(** [set_vm_fault_spec t i spec] arms (or disarms) fault injection on DomU
    [i] alone, leaving the rest of the pool untouched — how an in-guest
    adversary that pages out its own infected frames is modeled. The plan
    persists across {!reboot_vm}/{!restore_vm} (the domain record
    survives; only its kernel is swapped). Raises [Invalid_argument] when
    out of range. *)

val vm : t -> int -> Dom.t
(** [vm t i] is DomU index [i] (0-based). Raises [Invalid_argument] when
    out of range. *)

val vm_count : t -> int

val vm_patch_level : t -> int -> int
(** [vm_patch_level t i] is DomU [i]'s module patch level — its version
    cohort for voting purposes. Raises [Invalid_argument] when out of
    range. *)

val distinct_patch_levels : t -> int list
(** The sorted list of patch levels present in the pool ([[1]] for a
    homogeneous cloud). *)

val reboot_vm : t -> int -> unit
(** [reboot_vm t i] re-boots DomU [i] from its own (possibly infected)
    filesystem with a bumped generation — experiment 1's "upon system
    restart". Raises [Failure] if the boot fails. *)

type vm_snapshot
(** A frozen capture of one DomU: memory, disk, kernel bookkeeping. *)

val snapshot_vm : t -> int -> vm_snapshot
(** [snapshot_vm t i] captures DomU [i]'s clean state (paper §III-B: "it
    is possible to keep clean snapshots of VMs"). *)

val restore_vm : t -> int -> vm_snapshot -> unit
(** [restore_vm t i snap] reverts DomU [i] — flushing disk {e and}
    memory-resident infections, which a mere reboot from an infected disk
    would not. Restorable any number of times. *)

val busy_guest_vcpus : t -> int
(** Number of guest vCPUs kept runnable by their workloads. *)

val set_workload_all : t -> Mc_workload.Stress.t -> unit

val set_workload : t -> int -> Mc_workload.Stress.t -> unit
(** [set_workload t i w] changes DomU [i]'s workload alone — per-VM churn,
    where {!set_workload_all} is the fleet-wide switch. *)

val busy_vms : t -> int
(** Number of DomUs whose workload exerts memory-bus pressure. *)
