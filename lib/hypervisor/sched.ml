let share ~cores ~runnable =
  if runnable <= 0 then 1.0
  else min 1.0 (float_of_int cores /. float_of_int runnable)

let bus_factor (costs : Costs.t) ~busy_vms ~cores =
  1.0 +. (costs.bus_slowdown_per_busy_vm *. float_of_int (min busy_vms cores))

(* Event-driven proportional share: between events (a worker finishing its
   current job) the share is constant, so we can jump straight to the next
   completion. *)
let run_jobs ~cores ~busy_guest_vcpus ~workers jobs =
  if workers <= 0 then invalid_arg "Sched.run_jobs: need at least one worker";
  if Mc_telemetry.Registry.enabled () then begin
    (* Virtual-time attribution: every scheduled job's priced CPU cost. *)
    Mc_telemetry.Registry.add "sched.jobs" (List.length jobs);
    List.iter
      (fun j -> Mc_telemetry.Registry.observe "sched.job_cost_s" j)
      jobs
  end;
  let queue = Queue.create () in
  List.iter (fun j -> if j > 0.0 then Queue.add j queue) jobs;
  let running = Array.make workers None in
  let refill () =
    Array.iteri
      (fun i slot ->
        if slot = None && not (Queue.is_empty queue) then
          running.(i) <- Some (Queue.pop queue))
      running
  in
  let clock = ref 0.0 in
  refill ();
  let rec step () =
    let active =
      Array.fold_left (fun n s -> if s = None then n else n + 1) 0 running
    in
    if active = 0 then !clock
    else begin
      let rate = share ~cores ~runnable:(active + busy_guest_vcpus) in
      (* Next event: the smallest remaining work among active workers. *)
      let shortest =
        Array.fold_left
          (fun acc s -> match s with Some w -> min acc w | None -> acc)
          infinity running
      in
      let dt = shortest /. rate in
      clock := !clock +. dt;
      Array.iteri
        (fun i s ->
          match s with
          | Some w ->
              let w = w -. shortest in
              running.(i) <- (if w <= 1e-15 then None else Some w)
          | None -> ())
        running;
      refill ();
      step ()
    end
  in
  let wall = step () in
  if Mc_telemetry.Registry.enabled () then
    Mc_telemetry.Registry.observe "sched.batch_wall_s" wall;
  wall
