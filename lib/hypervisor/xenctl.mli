(** The hypervisor control interface Dom0 tooling uses — the parts of
    libxc/xenctrl that libVMI needs: vCPU context access and foreign page
    mapping. All accesses are metered so the timing model can price them. *)

exception Map_fault of { mf_pfn : int; mf_kind : Mc_memsim.Faultplan.kind }
(** A foreign-page mapping failed per the domain's fault plan. The meter
    was already charged for the attempt. *)

exception Pause_fault of { pf_dom : int }
(** A pause/unpause hypercall failed per the domain's fault plan; the
    domain's run state is unchanged. *)

val get_vcpu_cr3 : Dom.t -> int
(** [get_vcpu_cr3 dom] is the guest's page-directory base, as read from the
    virtual CPU's control registers. *)

val pause : Dom.t -> unit
(** May raise {!Pause_fault} when the domain has a fault plan. *)

val resume : Dom.t -> unit
(** May raise {!Pause_fault} when the domain has a fault plan. *)

val map_foreign_page : ?meter:Meter.t -> ?attempt:int -> Dom.t -> int -> Bytes.t
(** [map_foreign_page dom pfn] copies guest frame [pfn] into Dom0 (the
    simulation's equivalent of mapping it), bumping the meter's page
    count. When the domain carries a fault plan the map may raise
    {!Map_fault}; [attempt] (1-based) identifies the retry so the plan
    can decide each attempt independently yet deterministically. *)

val read_foreign_pa :
  ?meter:Meter.t -> Dom.t -> int -> Bytes.t -> int -> int -> unit
(** [read_foreign_pa dom paddr dst off len] reads guest-physical memory,
    metering one page map per page boundary the range touches plus the
    bytes copied. A zero-length read is a no-op and meters nothing. *)

(** {1 Write traps}

    The analogue of Xen's vm_event write-monitoring: Dom0 write-protects
    chosen guest frames; the first guest write to one raises a trap that
    logs a timestamped event and drops the protection (so hot pages
    coalesce to one event per arm cycle). Like the log-dirty domctls,
    these are control-plane calls and are not subject to the domain's
    fault plan. *)

val watch_pages : ?meter:Meter.t -> Dom.t -> int list -> unit
(** [watch_pages dom pfns] write-protects the given frames. One metered
    hypercall for the batch plus one watch-arm unit per frame. *)

val unwatch_pages : ?meter:Meter.t -> Dom.t -> int list -> unit
(** Drop write protection without trapping; priced like {!watch_pages}. *)

val watched_pfns : Dom.t -> int list
(** Currently write-protected frames, ascending (test introspection; a
    real Dom0 tracks this itself, so it is unmetered). *)

val pending_trap_events : Dom.t -> int
(** Undelivered trap events queued on the domain (unmetered
    introspection). *)

val drain_events : ?meter:Meter.t -> Dom.t -> Mc_memsim.Phys.watch_event list
(** [drain_events dom] returns and clears the domain's queued write-trap
    events, FIFO. Priced as one hypercall plus one trap-event unit per
    event delivered; an empty queue costs nothing (delivery is push — an
    idle domain never wakes Dom0). Each event's frame was disarmed by
    its trap; re-arm with {!watch_pages}. *)

val set_trap_clock : Dom.t -> float -> unit
(** Advance the virtual timestamp stamped onto subsequent trap events.
    Free: simulation plumbing standing in for the hypervisor's own
    clock. *)

(** {1 Log-dirty tracking}

    The analogue of Xen's [XEN_DOMCTL_SHADOW_OP_ENABLE_LOGDIRTY] /
    [SHADOW_OP_PEEK] / [SHADOW_OP_CLEAN] interface. Each call is one
    metered hypercall round trip. *)

val enable_log_dirty : ?meter:Meter.t -> Dom.t -> unit
(** Start recording which guest frames are written. *)

val disable_log_dirty : ?meter:Meter.t -> Dom.t -> unit
(** Stop recording and drop the accumulated dirty set. *)

val peek_dirty : ?meter:Meter.t -> Dom.t -> int list
(** Dirty pfns accumulated since the last clean, without clearing. *)

val clean_dirty : ?meter:Meter.t -> Dom.t -> int list
(** Dirty pfns accumulated since the last clean, atomically clearing the
    bitmap (Xen's peek-and-clean). *)

val memory_epoch : Dom.t -> int
(** An identifier for the guest's current physical address space. It
    changes whenever the backing memory is replaced wholesale — reboot,
    snapshot restore — so stale per-pfn versions from a previous epoch can
    never alias the new one. *)

val page_version : Dom.t -> int -> int
(** [page_version dom pfn] is the write version of frame [pfn] (0 if the
    frame was never written). *)

val pages_unchanged :
  ?meter:Meter.t -> Dom.t -> epoch:int -> (int * int) array -> bool
(** [pages_unchanged dom ~epoch footprint] is [true] iff the guest is
    still in [epoch] and every [(pfn, version)] pair in [footprint]
    matches the frame's current version. Priced as one hypercall plus one
    bitmap probe per pfn — the cost of an incremental staleness check. *)

val stale_pfns :
  ?meter:Meter.t -> Dom.t -> epoch:int -> (int * int) array -> int list option
(** [stale_pfns dom ~epoch footprint] is the same staleness check but
    names the culprits: [None] when the epoch changed (the whole footprint
    is void — reboot/restore), otherwise [Some pfns], the footprint subset
    whose write version moved ([Some []] means unchanged). Priced exactly
    like {!pages_unchanged}; the O(dirty) Merkle refresh keys on it. *)
