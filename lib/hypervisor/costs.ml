type t = {
  page_map_s : float;
  copy_byte_s : float;
  struct_read_s : float;
  parse_byte_s : float;
  parse_section_s : float;
  scan_byte_s : float;
  hash_byte_s : float;
  vm_session_s : float;
  hypercall_s : float;
  dirty_scan_pfn_s : float;
  retry_backoff_s : float;
  merkle_node_s : float;
  watch_arm_pfn_s : float;
  trap_event_s : float;
  bus_slowdown_per_busy_vm : float;
}

let default =
  {
    page_map_s = 28e-6;
    copy_byte_s = 1.1e-9;
    struct_read_s = 9e-6;
    parse_byte_s = 0.7e-9;
    parse_section_s = 4e-6;
    scan_byte_s = 1.0e-9;
    hash_byte_s = 2.8e-9;
    vm_session_s = 180e-6;
    hypercall_s = 30e-6;
    dirty_scan_pfn_s = 40e-9;
    retry_backoff_s = 150e-6;
    merkle_node_s = 150e-9;
    watch_arm_pfn_s = 1.5e-6;
    trap_event_s = 5e-6;
    bus_slowdown_per_busy_vm = 0.06;
  }
