module Host = Host
module Topology = Topology
module Coordinator = Coordinator
