module Cloud = Mc_hypervisor.Cloud
module Meter = Mc_hypervisor.Meter
module Costs = Mc_hypervisor.Costs

type t = {
  host_id : int;
  host_name : string;
  region : int;
  rack : int;
  patch_level : int;
  latency_factor : float;
  clock_skew_s : float;
  cloud : Cloud.t;
  meter : Meter.t;
  mutable up : bool;
  mutable engine : Mc_engine.t option;
  mutable incremental : Modchecker.Orchestrator.incremental option;
}

let create ~host_id ~region ~rack ?(patch_level = 1) ?(latency_factor = 1.0)
    ?(clock_skew_s = 0.0) ?(vms = 5) ?(cores = 8) ?(seed = 2012L) ?fault_spec
    () =
  let cloud =
    Cloud.create ~vms ~cores ~seed ~patch_levels:[ patch_level ] ?fault_spec ()
  in
  {
    host_id;
    host_name = Printf.sprintf "host%d" host_id;
    region;
    rack;
    patch_level;
    latency_factor;
    clock_skew_s;
    cloud;
    meter = Meter.create ();
    up = true;
    engine = None;
    incremental = None;
  }

let engine ?config t =
  match t.engine with
  | Some e -> e
  | None ->
      let e = Mc_engine.create ?config t.cloud in
      t.engine <- Some e;
      e

let incremental t =
  match t.incremental with
  | Some inc -> inc
  | None ->
      let inc = Modchecker.Orchestrator.create_incremental () in
      t.incremental <- Some inc;
      inc

let shutdown t =
  match t.engine with
  | None -> ()
  | Some e ->
      Mc_engine.drain e;
      t.engine <- None

let set_up t up = t.up <- up

let clock_s costs t =
  t.clock_skew_s +. (Meter.total_cpu_seconds costs t.meter *. t.latency_factor)

let describe t =
  Printf.sprintf "%s (region %d, rack %d, level %d%s)" t.host_name t.region
    t.rack t.patch_level
    (if t.up then "" else ", DOWN")
