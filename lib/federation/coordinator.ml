module Cloud = Mc_hypervisor.Cloud
module Meter = Mc_hypervisor.Meter
module Costs = Mc_hypervisor.Costs
module Pool = Mc_parallel.Pool
module Tel = Mc_telemetry.Registry
module Span = Mc_telemetry.Span
module Orchestrator = Modchecker.Orchestrator
module Report = Modchecker.Report
module Exit_code = Modchecker.Exit_code

type config = {
  host_quorum : float;
  host_deadline_s : float option;
  check : Orchestrator.Config.t;
  use_engines : bool;
  workers : int;
  costs : Costs.t;
}

let default_config =
  {
    host_quorum = 1.0;
    host_deadline_s = None;
    check = Orchestrator.Config.default;
    use_engines = false;
    workers = 1;
    costs = Costs.default;
  }

type surveyed = {
  sv_survey : Report.survey;
  sv_fingerprint : Orchestrator.fingerprint option;
  sv_elapsed_s : float;
}

type host_outcome = Host_unreachable of string | Host_surveyed of surveyed

type host_vote = {
  hv_host : int;
  hv_name : string;
  hv_rack : int;
  hv_region : int;
  hv_cohort : int;
  hv_outcome : host_outcome;
}

type cohort = {
  ch_level : int;
  ch_hosts : int list;
  ch_agreement : int list list;
  ch_deviant_hosts : int list;
}

type fleet_report = {
  fb_module : string;
  fb_votes : host_vote list;
  fb_cohorts : cohort list;
  fb_deviant_vms : (int * int) list;
  fb_missing_vms : (int * int) list;
  fb_deviant_hosts : int list;
  fb_unreachable_hosts : (int * string) list;
  fb_hosts_surveyed : int;
  fb_hosts_responded : int;
  fb_fleet_cpu_s : float;
  fb_critical_path_s : float;
  fb_verdict : Report.verdict;
}

let host_unreachable_reason = "host unreachable"

(* The per-host view of the shared check config: incremental state must
   be host-local (digest caches key on VM indices, which repeat across
   hosts), so a caller asking for incremental checking gets one state per
   host, not one shared table. *)
let host_config config (host : Host.t) =
  match config.check.Orchestrator.Config.incremental with
  | None -> config.check
  | Some _ ->
      Orchestrator.Config.with_incremental (Host.incremental host)
        config.check

(* Fan one closure over every host. Dom0's coordinator is itself
   parallelizable; per-host state (its meter, its engine) is only ever
   touched by the one worker holding that host. *)
let map_hosts workers f hosts =
  if workers > 1 then
    Pool.with_pool workers (fun pool -> Pool.parallel_map pool f hosts)
  else List.map f hosts

(* The host's ballot in the cross-host vote: a base-independent
   fingerprint of its majority agreement class, computed from a
   representative VM (falling back through the class if fetch faults take
   the first pick away). A host whose own pool is split still casts the
   ballot of its largest class — its local deviants are already
   reported. *)
let majority_fingerprint ~meter (host : Host.t) survey ~module_name =
  match survey.Report.agreement_classes with
  | [] -> None
  | largest :: _ ->
      List.find_map
        (fun vm ->
          match
            Orchestrator.reference_fingerprint ~meter host.Host.cloud ~vm
              ~module_name
          with
          | Ok fp -> Some fp
          | Error _ -> None)
        largest

let survey_host config root_id ~module_name (host : Host.t) =
  let vote outcome =
    {
      hv_host = host.Host.host_id;
      hv_name = host.Host.host_name;
      hv_rack = host.Host.rack;
      hv_region = host.Host.region;
      hv_cohort = host.Host.patch_level;
      hv_outcome = outcome;
    }
  in
  if not host.Host.up then vote (Host_unreachable host_unreachable_reason)
  else
    Tel.with_span ?parent:root_id
      ~attrs:
        [
          ("host", Int host.Host.host_id);
          ("rack", Int host.Host.rack);
          ("region", Int host.Host.region);
          ("cohort", Int host.Host.patch_level);
        ]
      "federation.host"
    @@ fun sp ->
    let jm = Meter.create () in
    let survey =
      if config.use_engines then begin
        let e = Host.engine ~config:config.check host in
        let r = Mc_engine.run e (Mc_engine.Survey { module_name }) in
        Meter.merge jm r.Mc_engine.r_meter;
        match r.Mc_engine.r_outcome with
        | Mc_engine.Surveyed s -> s
        | Mc_engine.Checked _ | Mc_engine.Listed _ -> assert false
      end
      else
        Orchestrator.survey ~config:(host_config config host) ~meter:jm
          host.Host.cloud ~module_name
    in
    let fingerprint = majority_fingerprint ~meter:jm host survey ~module_name in
    Meter.merge host.Host.meter jm;
    (* What the coordinator waited for this host: the host's metered work
       priced on its own clock, stretched by its rack's latency. *)
    let elapsed_s =
      Meter.total_cpu_seconds config.costs jm *. host.Host.latency_factor
    in
    Span.set_attr sp "elapsed_s" (Float elapsed_s);
    match config.host_deadline_s with
    | Some d when elapsed_s > d ->
        Tel.add "federation.host_deadline_misses" 1;
        vote
          (Host_unreachable
             (Printf.sprintf
                "response after %.2fs exceeded host deadline %gs (rack %d at \
                 %.1fx latency)"
                elapsed_s d host.Host.rack host.Host.latency_factor))
    | _ ->
        vote
          (Host_surveyed
             {
               sv_survey = survey;
               sv_fingerprint = fingerprint;
               sv_elapsed_s = elapsed_s;
             })

(* Group responding same-level hosts by their majority fingerprint and
   let each cohort vote: the largest group, when a strict majority of the
   cohort, is trusted; hosts outside it deviate. One fingerprint per host
   means a pool-wide coordinated infection — invisible to that host's own
   internal vote — is caught by its peers running the same build. *)
let cohort_votes votes =
  let voting =
    List.filter_map
      (fun v ->
        match v.hv_outcome with
        | Host_surveyed { sv_fingerprint = Some fp; _ } ->
            Some (v.hv_cohort, v.hv_host, fp)
        | _ -> None)
      votes
  in
  let levels = List.sort_uniq compare (List.map (fun (l, _, _) -> l) voting) in
  List.map
    (fun level ->
      let members =
        List.filter_map
          (fun (l, h, fp) -> if l = level then Some (h, fp) else None)
          voting
      in
      let groups =
        List.fold_left
          (fun acc (h, fp) ->
            match List.partition (fun (fq, _) -> fq = fp) acc with
            | [ (_, hs) ], rest -> (fp, h :: hs) :: rest
            | _, rest -> (fp, [ h ]) :: rest)
          [] members
        |> List.map (fun (_, hs) -> List.sort compare hs)
        |> List.sort (fun a b -> compare (List.length b) (List.length a))
      in
      let deviants =
        match groups with
        | [] | [ _ ] -> []
        | largest :: _ ->
            if 2 * List.length largest > List.length members then
              List.filter
                (fun (h, _) -> not (List.mem h largest))
                members
              |> List.map fst |> List.sort compare
            else List.map fst members |> List.sort compare
      in
      {
        ch_level = level;
        ch_hosts = List.map fst members |> List.sort compare;
        ch_agreement = groups;
        ch_deviant_hosts = deviants;
      })
    levels

let survey ?(config = default_config) topo ~module_name =
  let hosts = Topology.hosts topo in
  Tel.with_span
    ~attrs:
      [
        ("module", String module_name);
        ("hosts", Int (List.length hosts));
      ]
    "federation.survey"
  @@ fun root ->
  let root_id = if root.Span.id = 0 then None else Some root.Span.id in
  let votes =
    map_hosts config.workers (survey_host config root_id ~module_name) hosts
  in
  let unreachable =
    List.filter_map
      (fun v ->
        match v.hv_outcome with
        | Host_unreachable r -> Some (v.hv_host, r)
        | Host_surveyed _ -> None)
      votes
  in
  let responded =
    List.filter_map
      (fun v ->
        match v.hv_outcome with
        | Host_surveyed s -> Some (v, s)
        | Host_unreachable _ -> None)
      votes
  in
  let multi_host = List.length hosts > 1 in
  let deviant_vms =
    List.concat_map
      (fun (v, s) ->
        List.map
          (fun vm -> (v.hv_host, vm))
          s.sv_survey.Report.deviant_vms)
      responded
    |> List.sort compare
  in
  (* A module absent from every VM of a host is "not deployed there", not
     hiding — unless this is a single-host fleet, where the one-pool
     semantics (and exit parity with the standalone survey) apply
     unchanged. *)
  let missing_vms =
    List.concat_map
      (fun (v, s) ->
        if multi_host && s.sv_survey.Report.s_voted = 0 then []
        else
          List.map (fun vm -> (v.hv_host, vm)) s.sv_survey.Report.missing_on)
      responded
    |> List.sort compare
  in
  let degraded_hosts =
    List.filter_map
      (fun (v, s) ->
        match s.sv_survey.Report.s_verdict with
        | Report.Degraded reason -> Some (v.hv_host, reason)
        | Report.Intact | Report.Infected -> None)
      responded
  in
  let cohorts = cohort_votes votes in
  let deviant_hosts =
    List.concat_map (fun c -> c.ch_deviant_hosts) cohorts |> List.sort compare
  in
  let surveyed = List.length hosts in
  let n_responded = List.length responded in
  let fb_fleet_cpu_s =
    List.fold_left (fun acc (_, s) -> acc +. s.sv_elapsed_s) 0.0 responded
  in
  let fb_critical_path_s =
    List.fold_left
      (fun acc (_, s) -> Float.max acc s.sv_elapsed_s)
      0.0 responded
  in
  let verdict =
    if
      not
        (Report.quorum_met ~quorum:config.host_quorum ~surveyed
           ~responded:n_responded)
    then
      Report.Degraded
        (Printf.sprintf "%d/%d host(s) responded (host quorum %g)" n_responded
           surveyed config.host_quorum)
    else
      match degraded_hosts with
      | (h, reason) :: _ ->
          Report.Degraded (Printf.sprintf "host%d degraded: %s" h reason)
      | [] ->
          if deviant_vms <> [] || missing_vms <> [] || deviant_hosts <> []
          then Report.Infected
          else Report.Intact
  in
  if Tel.enabled () then begin
    Tel.add "federation.surveys" 1;
    Tel.add "federation.hosts_surveyed" surveyed;
    Tel.add "federation.hosts_unreachable" (List.length unreachable);
    Tel.add "federation.cohorts" (List.length cohorts);
    Tel.add "federation.cross_host_votes"
      (List.fold_left (fun n c -> n + List.length c.ch_hosts) 0 cohorts);
    Tel.add "federation.deviant_hosts" (List.length deviant_hosts);
    (match verdict with
    | Report.Degraded _ -> Tel.add "federation.degraded_verdicts" 1
    | _ -> ());
    Span.set_attr root "deviant_vms" (Int (List.length deviant_vms));
    Span.set_attr root "deviant_hosts" (Int (List.length deviant_hosts))
  end;
  {
    fb_module = module_name;
    fb_votes = votes;
    fb_cohorts = cohorts;
    fb_deviant_vms = deviant_vms;
    fb_missing_vms = missing_vms;
    fb_deviant_hosts = deviant_hosts;
    fb_unreachable_hosts = unreachable;
    fb_hosts_surveyed = surveyed;
    fb_hosts_responded = n_responded;
    fb_fleet_cpu_s;
    fb_critical_path_s;
    fb_verdict = verdict;
  }

let check ?(config = default_config) topo ~host ~vm ~module_name =
  let h = Topology.host topo host in
  if not h.Host.up then
    Error (Printf.sprintf "%s: %s" h.Host.host_name host_unreachable_reason)
  else begin
    let result =
      if config.use_engines then begin
        let e = Host.engine ~config:config.check h in
        let r = Mc_engine.run e (Mc_engine.Check { vm; module_name }) in
        Meter.merge h.Host.meter r.Mc_engine.r_meter;
        match r.Mc_engine.r_outcome with
        | Mc_engine.Checked c -> c
        | Mc_engine.Surveyed _ | Mc_engine.Listed _ -> assert false
      end
      else
        match
          Orchestrator.check_module ~config:(host_config config h)
            h.Host.cloud ~target_vm:vm ~module_name
        with
        | Ok outcome ->
            List.iter
              (fun w ->
                Meter.merge h.Host.meter w.Orchestrator.work_meter)
              outcome.Orchestrator.work;
            Ok outcome
        | Error _ as e -> e
    in
    Tel.add "federation.checks" 1;
    result
  end

type host_lists = {
  hl_host : int;
  hl_outcome : (Orchestrator.list_comparison, string) result;
}

type fleet_lists = {
  fl_per_host : host_lists list;
  fl_hosts_surveyed : int;
  fl_hosts_responded : int;
  fl_verdict : Report.verdict;
}

let survey_lists ?(config = default_config) topo =
  let hosts = Topology.hosts topo in
  Tel.with_span ~attrs:[ ("hosts", Int (List.length hosts)) ]
    "federation.lists"
  @@ fun _ ->
  let per_host =
    map_hosts config.workers
      (fun (h : Host.t) ->
        if not h.Host.up then
          { hl_host = h.Host.host_id; hl_outcome = Error host_unreachable_reason }
        else begin
          let jm = Meter.create () in
          let lc =
            if config.use_engines then begin
              let e = Host.engine ~config:config.check h in
              let r = Mc_engine.run e Mc_engine.Lists in
              Meter.merge jm r.Mc_engine.r_meter;
              match r.Mc_engine.r_outcome with
              | Mc_engine.Listed lc -> lc
              | _ -> assert false
            end
            else
              Orchestrator.survey_module_lists
                ~config:(host_config config h) ~meter:jm h.Host.cloud
          in
          Meter.merge h.Host.meter jm;
          { hl_host = h.Host.host_id; hl_outcome = Ok lc }
        end)
      hosts
  in
  let responded =
    List.filter_map
      (fun hl ->
        match hl.hl_outcome with Ok lc -> Some lc | Error _ -> None)
      per_host
  in
  let surveyed = List.length hosts in
  let n_responded = List.length responded in
  let verdict =
    if
      not
        (Report.quorum_met ~quorum:config.host_quorum ~surveyed
           ~responded:n_responded)
    then
      Report.Degraded
        (Printf.sprintf "%d/%d host(s) responded (host quorum %g)" n_responded
           surveyed config.host_quorum)
    else if
      List.exists
        (fun lc -> lc.Orchestrator.lc_unreachable <> [])
        responded
    then Report.Degraded "VM list walks unreachable within a host"
    else if
      List.exists
        (fun lc -> lc.Orchestrator.lc_discrepancies <> [])
        responded
    then Report.Infected
    else Report.Intact
  in
  {
    fl_per_host = per_host;
    fl_hosts_surveyed = surveyed;
    fl_hosts_responded = n_responded;
    fl_verdict = verdict;
  }

let exit_code r = Exit_code.of_verdict r.fb_verdict

let exit_code_lists r = Exit_code.of_verdict r.fl_verdict

let verdict_name = function
  | Report.Intact -> "INTACT"
  | Report.Infected -> "INFECTED"
  | Report.Degraded _ -> "DEGRADED"

let vm_list vms =
  if vms = [] then "-"
  else
    String.concat "," (List.map (fun v -> Printf.sprintf "Dom%d" (v + 1)) vms)

let to_table ?(costs = Costs.default) topo r =
  let row v =
    let h = Topology.host topo v.hv_host in
    match v.hv_outcome with
    | Host_unreachable reason ->
        [ v.hv_name;
          Printf.sprintf "r%d/k%d" v.hv_region v.hv_rack;
          string_of_int v.hv_cohort; "UNREACHABLE"; "-"; "-"; "-"; reason ]
    | Host_surveyed { sv_survey = s; sv_elapsed_s; _ } ->
        [
          v.hv_name;
          Printf.sprintf "r%d/k%d" v.hv_region v.hv_rack;
          string_of_int v.hv_cohort;
          (if List.mem v.hv_host r.fb_deviant_hosts then "DEVIANT HOST"
           else verdict_name s.Report.s_verdict);
          vm_list s.Report.deviant_vms;
          vm_list
            (if List.length r.fb_votes > 1 && s.Report.s_voted = 0 then []
             else s.Report.missing_on);
          Printf.sprintf "%.2fs" sv_elapsed_s;
          Printf.sprintf "clock %.2fs" (Host.clock_s costs h);
        ]
  in
  Mc_util.Table.render
    ~header:
      [ "host"; "locus"; "level"; "verdict"; "deviant"; "missing"; "took";
        "local clock" ]
    (List.map row r.fb_votes)

let summary r =
  match r.fb_verdict with
  | Report.Intact ->
      Printf.sprintf "FLEET INTACT: %s consistent across %d host(s), %d cohort(s)"
        r.fb_module r.fb_hosts_responded (List.length r.fb_cohorts)
  | Report.Infected ->
      Printf.sprintf
        "FLEET INFECTED: %s — %d deviant VM(s), %d missing, %d deviant host(s)"
        r.fb_module
        (List.length r.fb_deviant_vms)
        (List.length r.fb_missing_vms)
        (List.length r.fb_deviant_hosts)
  | Report.Degraded reason -> Printf.sprintf "FLEET DEGRADED: %s" reason

let to_json r =
  let open Mc_util.Json in
  let pair_list l =
    List
      (List.map
         (fun (h, vm) -> Obj [ ("host", Int h); ("vm", Int vm) ])
         l)
  in
  Obj
    [
      ("schema", String "modchecker/federation@1");
      ("module", String r.fb_module);
      ("verdict", String (verdict_name r.fb_verdict));
      ( "degraded_reason",
        match r.fb_verdict with
        | Report.Degraded reason -> String reason
        | _ -> Null );
      ("hosts_surveyed", Int r.fb_hosts_surveyed);
      ("hosts_responded", Int r.fb_hosts_responded);
      ( "unreachable_hosts",
        List
          (List.map
             (fun (h, reason) ->
               Obj [ ("host", Int h); ("reason", String reason) ])
             r.fb_unreachable_hosts) );
      ("deviant_vms", pair_list r.fb_deviant_vms);
      ("missing_vms", pair_list r.fb_missing_vms);
      ("deviant_hosts", List (List.map (fun h -> Int h) r.fb_deviant_hosts));
      ( "cohorts",
        List
          (List.map
             (fun c ->
               Obj
                 [
                   ("level", Int c.ch_level);
                   ("hosts", List (List.map (fun h -> Int h) c.ch_hosts));
                   ( "agreement",
                     List
                       (List.map
                          (fun g -> List (List.map (fun h -> Int h) g))
                          c.ch_agreement) );
                   ( "deviant_hosts",
                     List (List.map (fun h -> Int h) c.ch_deviant_hosts) );
                 ])
             r.fb_cohorts) );
      ("fleet_cpu_s", Float r.fb_fleet_cpu_s);
      ("critical_path_s", Float r.fb_critical_path_s);
    ]
