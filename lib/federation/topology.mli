(** The fleet's shape: hosts packed into racks packed into regions.

    Hosts are numbered globally ([0 .. host_count - 1]), racks globally
    too; host [i] lives in rack [i / hosts_per_rack]. Patch levels are
    cycled across hosts from [patch_levels] — host 0 gets the first
    level, host 1 the next — so any mix of kernel builds can be laid out
    deterministically. A slow rack gives all its hosts a latency factor
    > 1, which the coordinator folds into each host's virtual response
    time. *)

type spec = {
  regions : int;
  racks_per_region : int;
  hosts_per_rack : int;
  vms_per_host : int;
  cores_per_host : int;
  patch_levels : int list;
      (** Cycled across hosts; [[]] means every host at level 1. *)
  slow_racks : (int * float) list;
      (** Global rack index → latency factor for its hosts. *)
  seed : int64;
      (** Fleet seed; host [i] boots its pool from a seed derived from
          it (host 0 gets the fleet seed itself). *)
  fault_spec : Mc_memsim.Faultplan.spec option;
      (** Armed on every VM of every host, salted per dom as usual. *)
}

val default_spec : spec
(** 1 region × 1 rack × 3 hosts × 5 VMs, homogeneous, no faults. *)

type t = { spec : spec; hosts : Host.t array }

val create : ?spec:spec -> unit -> t
(** Boot every host's pool. Raises [Invalid_argument] on an empty
    topology. *)

val host : t -> int -> Host.t
(** Raises [Invalid_argument] when out of range. *)

val hosts : t -> Host.t list

val host_count : t -> int

val vm_count : t -> int
(** Total VMs across all hosts. *)

val set_host_down : t -> int -> unit
(** Whole-host outage: the coordinator will count it unreachable. *)

val set_host_up : t -> int -> unit

val hosts_in_rack : t -> int -> Host.t list

val distinct_levels : t -> int list
(** Sorted patch levels present across hosts. *)

val shutdown : t -> unit
(** Drain every host engine that was started. *)
