(** The fleet coordinator: fans checking work out to every host and
    merges the answers hierarchically.

    Merge rules, bottom up:

    - {b Within a host}, the host's own pool votes exactly as a
      standalone {!Modchecker.Orchestrator} run would: per-VM majority
      within the host (itself cohort-aware, though a host is homogeneous
      by construction), quorum and deadline policy included. Host-local
      deviant and missing VMs surface in the fleet report tagged with
      their host.
    - {b Across hosts}, each responding host casts one ballot: the
      base-independent fingerprint of its majority agreement class
      ({!Modchecker.Orchestrator.reference_fingerprint} of a
      representative VM). Ballots are grouped by version cohort — hosts
      sharing a patch level — and within each cohort the strict-majority
      fingerprint is trusted; hosts outside it are {e deviant hosts}.
      This is the layer that catches a coordinated pool-wide infection,
      which the host's internal vote cannot see, while a legitimate
      version split across cohorts flags nobody.
    - {b Host faults} fold into the verdict the way VM faults do one
      level down: a host that is down, or whose virtual response time
      exceeds [host_deadline_s] (a slow rack stretches it by the rack's
      latency factor), is unreachable — it casts no ballot, votes in no
      cohort, and counts against [host_quorum]. Below quorum the fleet
      verdict is [Degraded], which outranks [Infected] in exit severity:
      an answer you cannot trust beats a bad answer you can. *)

type config = {
  host_quorum : float;
      (** Fraction of hosts that must respond for a trustworthy verdict
          (default 1.0 — any whole-host outage degrades). *)
  host_deadline_s : float option;
      (** Virtual response-time bound per host; a slow rack can push a
          healthy host past it. *)
  check : Modchecker.Orchestrator.Config.t;
      (** The per-host checking config. Its [incremental] field, when
          set, is replaced by each host's own state ({!Host.incremental})
          — digest caches key on VM indices, which repeat across
          hosts. *)
  use_engines : bool;
      (** Route host work through per-host {!Mc_engine} services
          (started lazily) instead of direct orchestrator calls. Same
          verdicts; engines add coalescing and shared incremental state
          per host, at the cost of dispatcher domains. *)
  workers : int;  (** Coordinator-side fan-out parallelism over hosts. *)
  costs : Mc_hypervisor.Costs.t;  (** Pricing for host response times. *)
}

val default_config : config
(** Sequential fan-out, direct calls, host quorum 1.0, no deadline. *)

type surveyed = {
  sv_survey : Modchecker.Report.survey;  (** The host's own pool survey. *)
  sv_fingerprint : Modchecker.Orchestrator.fingerprint option;
      (** The host's ballot; [None] when every representative fetch
          failed (the host then joins no cohort vote). *)
  sv_elapsed_s : float;
      (** Virtual response time: metered work × rack latency factor. *)
}

type host_outcome = Host_unreachable of string | Host_surveyed of surveyed

type host_vote = {
  hv_host : int;
  hv_name : string;
  hv_rack : int;
  hv_region : int;
  hv_cohort : int;  (** The host's patch level. *)
  hv_outcome : host_outcome;
}

type cohort = {
  ch_level : int;
  ch_hosts : int list;  (** Hosts that cast a ballot in this cohort. *)
  ch_agreement : int list list;
      (** Hosts grouped by identical ballot, largest group first. *)
  ch_deviant_hosts : int list;
      (** Outvoted by their cohort's strict majority; everyone when the
          cohort has no majority. *)
}

type fleet_report = {
  fb_module : string;
  fb_votes : host_vote list;  (** One per host, in host order. *)
  fb_cohorts : cohort list;
  fb_deviant_vms : (int * int) list;  (** (host, VM), host-local findings. *)
  fb_missing_vms : (int * int) list;
      (** (host, VM); a module absent from a whole host is "not deployed
          there" and contributes nothing (single-host fleets keep the
          standalone semantics). *)
  fb_deviant_hosts : int list;  (** Union over cohorts. *)
  fb_unreachable_hosts : (int * string) list;
  fb_hosts_surveyed : int;
  fb_hosts_responded : int;
  fb_fleet_cpu_s : float;  (** Sum of host response times. *)
  fb_critical_path_s : float;
      (** Max host response time — the fan-out floor. *)
  fb_verdict : Modchecker.Report.verdict;
}

val survey :
  ?config:config -> Topology.t -> module_name:string -> fleet_report
(** Survey one module across the whole fleet and merge hierarchically. *)

val check :
  ?config:config ->
  Topology.t ->
  host:int ->
  vm:int ->
  module_name:string ->
  (Modchecker.Orchestrator.outcome, string) result
(** Route a one-VM check to its host (errors when the host is down);
    the comparison set is the host's own pool, exactly as a standalone
    [check_module] there. *)

type host_lists = {
  hl_host : int;
  hl_outcome : (Modchecker.Orchestrator.list_comparison, string) result;
      (** [Error] = host unreachable. *)
}

type fleet_lists = {
  fl_per_host : host_lists list;
  fl_hosts_surveyed : int;
  fl_hosts_responded : int;
  fl_verdict : Modchecker.Report.verdict;
      (** Degraded on host-quorum loss or unreachable list walks inside
          a host; Infected on any within-host discrepancy (the DKOM
          signal is host-local — module names repeat across levels, so
          lists are never compared across hosts). *)
}

val survey_lists : ?config:config -> Topology.t -> fleet_lists

val exit_code : fleet_report -> int
(** {!Modchecker.Exit_code} mapping of the fleet verdict. *)

val exit_code_lists : fleet_lists -> int

val to_table :
  ?costs:Mc_hypervisor.Costs.t -> Topology.t -> fleet_report -> string
(** Per-host vote table (verdict, deviants, response time, local
    clock). *)

val summary : fleet_report -> string
(** One line: ["FLEET INTACT: ..."] / ["FLEET INFECTED: ..."] /
    ["FLEET DEGRADED: ..."]. *)

val to_json : fleet_report -> Mc_util.Json.t
(** Schema [modchecker/federation@1]. *)

val verdict_name : Modchecker.Report.verdict -> string
