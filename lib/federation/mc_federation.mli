(** Multi-host fleet coordination with hierarchical voting.

    The paper validates ModChecker inside a single pool of identical VMs
    on one host. This library scales the idea out instead of up: many
    {!Host}s — each a whole {!Mc_hypervisor.Cloud} with its own clock,
    fault domain, and (on demand) its own {!Mc_engine} — arranged by
    {!Topology} into racks and regions, under a {!Coordinator} that fans
    requests out and merges verdicts hierarchically: host-local majority
    first, then cross-host consensus within each version cohort.

    The identical-VM assumption is dropped along the way: hosts (and
    pools) may mix kernel patch levels, and every vote — VM-level and
    host-level — is grouped by module version before comparison, so a
    legitimate version split never drowns a majority and an infection is
    judged against its own cohort. Host-level faults (a dead host, a
    slow rack) reuse the quorum/[Degraded] machinery: no ballot, no
    cohort seat, and a degraded fleet verdict once host quorum is
    lost. *)

module Host = Host
module Topology = Topology
module Coordinator = Coordinator
