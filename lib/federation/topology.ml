type spec = {
  regions : int;
  racks_per_region : int;
  hosts_per_rack : int;
  vms_per_host : int;
  cores_per_host : int;
  patch_levels : int list;
  slow_racks : (int * float) list;
  seed : int64;
  fault_spec : Mc_memsim.Faultplan.spec option;
}

let default_spec =
  {
    regions = 1;
    racks_per_region = 1;
    hosts_per_rack = 3;
    vms_per_host = 5;
    cores_per_host = 8;
    patch_levels = [];
    slow_racks = [];
    seed = 2012L;
    fault_spec = None;
  }

type t = { spec : spec; hosts : Host.t array }

(* Host 0 gets the fleet seed itself, so a 1-host fleet boots the exact
   cloud a standalone run with that seed would — the parity tests depend
   on it. *)
let host_seed fleet_seed id =
  Int64.add fleet_seed (Int64.mul (Int64.of_int id) 0x1000193L)

let create ?(spec = default_spec) () =
  if spec.regions < 1 || spec.racks_per_region < 1 || spec.hosts_per_rack < 1
  then invalid_arg "Topology.create: empty topology";
  let n = spec.regions * spec.racks_per_region * spec.hosts_per_rack in
  let level_of =
    match spec.patch_levels with
    | [] -> fun _ -> 1
    | l ->
        let a = Array.of_list l in
        fun id -> a.(id mod Array.length a)
  in
  let hosts =
    Array.init n (fun id ->
        let rack = id / spec.hosts_per_rack in
        let region = rack / spec.racks_per_region in
        let latency_factor =
          Option.value ~default:1.0 (List.assoc_opt rack spec.slow_racks)
        in
        (* A small deterministic per-host skew: real fleets never agree
           on the time, and nothing in the verdict path may depend on
           cross-host clock comparison. *)
        let clock_skew_s = float_of_int (id mod 5) *. 0.02 in
        Host.create ~host_id:id ~region ~rack ~patch_level:(level_of id)
          ~latency_factor ~clock_skew_s ~vms:spec.vms_per_host
          ~cores:spec.cores_per_host
          ~seed:(host_seed spec.seed id)
          ?fault_spec:spec.fault_spec ())
  in
  { spec; hosts }

let host t i =
  if i < 0 || i >= Array.length t.hosts then
    invalid_arg (Printf.sprintf "Topology.host: no host index %d" i);
  t.hosts.(i)

let hosts t = Array.to_list t.hosts

let host_count t = Array.length t.hosts

let vm_count t =
  Array.fold_left
    (fun n (h : Host.t) -> n + Mc_hypervisor.Cloud.vm_count h.Host.cloud)
    0 t.hosts

let set_host_down t i = Host.set_up (host t i) false

let set_host_up t i = Host.set_up (host t i) true

let hosts_in_rack t rack =
  List.filter (fun (h : Host.t) -> h.Host.rack = rack) (hosts t)

let distinct_levels t =
  List.sort_uniq compare
    (List.map (fun (h : Host.t) -> h.Host.patch_level) (hosts t))

let shutdown t = Array.iter Host.shutdown t.hosts
