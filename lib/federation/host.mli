(** One physical host of the federation: its own VM pool (a {!Cloud}),
    its own clock, its own fault domain, and — on demand — its own
    {!Mc_engine} service.

    The host is the unit of failure and of placement: it lives in a rack
    within a region, every one of its VMs runs the same patch level (a
    fleet mixes levels {e across} hosts), and when it is marked down the
    coordinator can reach none of its VMs. Its clock is the metered
    virtual time of the work it performed, scaled by its rack's latency
    factor and offset by a fixed skew — no host ever reads another
    host's clock. *)

type t = {
  host_id : int;
  host_name : string;  (** ["host3"] *)
  region : int;
  rack : int;  (** Global rack index. *)
  patch_level : int;  (** Module build every VM of this host runs. *)
  latency_factor : float;
      (** Response-time multiplier (1.0 = nominal; a slow rack > 1). *)
  clock_skew_s : float;  (** Fixed offset of this host's clock. *)
  cloud : Mc_hypervisor.Cloud.t;
  meter : Mc_hypervisor.Meter.t;
      (** Everything ever metered on this host — the host's clock
          source. *)
  mutable up : bool;
  mutable engine : Mc_engine.t option;  (** Started lazily by {!engine}. *)
  mutable incremental : Modchecker.Orchestrator.incremental option;
      (** Host-local carry-over state; per host because digest-cache keys
          are VM indices, which repeat across hosts. *)
}

val create :
  host_id:int ->
  region:int ->
  rack:int ->
  ?patch_level:int ->
  ?latency_factor:float ->
  ?clock_skew_s:float ->
  ?vms:int ->
  ?cores:int ->
  ?seed:int64 ->
  ?fault_spec:Mc_memsim.Faultplan.spec ->
  unit ->
  t
(** [create ~host_id ~region ~rack ()] boots the host's pool: [vms]
    DomUs (default 5) at [patch_level] (default 1), seeded by [seed] so
    distinct hosts randomize module bases differently. *)

val engine : ?config:Modchecker.Orchestrator.Config.t -> t -> Mc_engine.t
(** The host's checking service, started on first use — engines spawn
    dispatcher domains, so a large fleet only pays for the hosts it
    drives through engines. *)

val incremental : t -> Modchecker.Orchestrator.incremental
(** The host's own incremental state, created on first use. *)

val shutdown : t -> unit
(** Drain the host's engine if one was started. Idempotent. *)

val set_up : t -> bool -> unit
(** Mark the host reachable/unreachable (a whole-host outage). *)

val clock_s : Mc_hypervisor.Costs.t -> t -> float
(** The host's local clock: skew + priced meter × latency factor. *)

val describe : t -> string
(** ["host3 (region 0, rack 1, level 2)"], with [", DOWN"] appended when
    unreachable. *)
