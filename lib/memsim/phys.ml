let frame_size = 4096

(* Every Phys instance gets a process-unique id. A reboot or snapshot
   restore builds a fresh instance, so Dom0-side caches keyed on (uid,
   page version) can never confuse two different memories whose version
   counters happen to coincide. *)
let uid_counter = Atomic.make 1

type watch_event = { we_pfn : int; we_at : float; we_version : int }

type t = {
  frames : (int, Bytes.t) Hashtbl.t;
  versions : (int, int) Hashtbl.t;  (** pfn → write version (absent = 0). *)
  dirty : (int, unit) Hashtbl.t;  (** log-dirty bitmap, while enabled. *)
  mutable log_dirty : bool;
  mutable write_gen : int;
  watched : (int, unit) Hashtbl.t;  (** write-protected frames. *)
  traps : watch_event Queue.t;  (** undelivered write-trap events, FIFO. *)
  mutable watch_clock : float;  (** timestamp stamped onto trap events. *)
  uid : int;
  max_frames : int;
  mutable next_pfn : int;
  mutable foreign_shim : (int -> Bytes.t -> Bytes.t) option;
      (** SEVurity-style tampering with the checker's view: when set,
          foreign (Dom0) page mappings pass through this function while
          the guest keeps reading/executing the real bytes. *)
}

let create ?(max_frames = 65536) () =
  {
    frames = Hashtbl.create 1024;
    versions = Hashtbl.create 1024;
    dirty = Hashtbl.create 64;
    log_dirty = false;
    write_gen = 0;
    watched = Hashtbl.create 16;
    traps = Queue.create ();
    watch_clock = 0.0;
    uid = Atomic.fetch_and_add uid_counter 1;
    max_frames;
    next_pfn = 1;
    foreign_shim = None;
  }
(* pfn 0 is reserved (a null physical page), as on real chipsets. *)

let uid t = t.uid

let write_generation t = t.write_gen

let page_version t pfn =
  Option.value ~default:0 (Hashtbl.find_opt t.versions pfn)

let touch t pfn =
  Hashtbl.replace t.versions pfn (page_version t pfn + 1);
  t.write_gen <- t.write_gen + 1;
  if t.log_dirty then Hashtbl.replace t.dirty pfn ();
  if Hashtbl.mem t.watched pfn then begin
    (* The first write faults; the handler records the event and drops
       the write protection so the guest can proceed at full speed.
       Further writes are trap-free until the page is re-armed, so
       repeated writes to a hot page coalesce into one event. *)
    Hashtbl.remove t.watched pfn;
    Queue.add
      { we_pfn = pfn; we_at = t.watch_clock; we_version = page_version t pfn }
      t.traps
  end

let watch_frames t pfns = List.iter (fun pfn -> Hashtbl.replace t.watched pfn ()) pfns

let unwatch_frames t pfns = List.iter (fun pfn -> Hashtbl.remove t.watched pfn) pfns

let watched_frames t =
  List.sort compare (Hashtbl.fold (fun pfn () acc -> pfn :: acc) t.watched [])

let set_watch_clock t now = t.watch_clock <- now

let pending_watch_events t = Queue.length t.traps

let drain_watch_events t =
  let evs = List.of_seq (Queue.to_seq t.traps) in
  Queue.clear t.traps;
  evs

let set_log_dirty t on =
  t.log_dirty <- on;
  if not on then Hashtbl.reset t.dirty

let log_dirty_enabled t = t.log_dirty

let peek_dirty t =
  List.sort compare (Hashtbl.fold (fun pfn () acc -> pfn :: acc) t.dirty [])

let clean_dirty t =
  let pfns = peek_dirty t in
  Hashtbl.reset t.dirty;
  pfns

let alloc_frame t =
  if Hashtbl.length t.frames >= t.max_frames then
    failwith "Phys.alloc_frame: out of physical memory";
  let pfn = t.next_pfn in
  t.next_pfn <- t.next_pfn + 1;
  Hashtbl.replace t.frames pfn (Bytes.make frame_size '\000');
  pfn

let frames_allocated t = Hashtbl.length t.frames

let frame_exists t pfn = Hashtbl.mem t.frames pfn

let rec read t paddr dst dst_off len =
  if len > 0 then begin
    let pfn = paddr / frame_size in
    let off = paddr mod frame_size in
    let chunk = min len (frame_size - off) in
    (match Hashtbl.find_opt t.frames pfn with
    | Some frame -> Bytes.blit frame off dst dst_off chunk
    | None -> Bytes.fill dst dst_off chunk '\000');
    read t (paddr + chunk) dst (dst_off + chunk) (len - chunk)
  end

let rec write t paddr src src_off len =
  if len > 0 then begin
    let pfn = paddr / frame_size in
    let off = paddr mod frame_size in
    let chunk = min len (frame_size - off) in
    (match Hashtbl.find_opt t.frames pfn with
    | Some frame ->
        Bytes.blit src src_off frame off chunk;
        touch t pfn
    | None ->
        invalid_arg
          (Printf.sprintf "Phys.write: unallocated frame 0x%x (paddr 0x%x)" pfn
             paddr));
    write t (paddr + chunk) src (src_off + chunk) (len - chunk)
  end

let read_u32 t paddr =
  let b = Bytes.create 4 in
  read t paddr b 0 4;
  Bytes.get_int32_le b 0

let write_u32 t paddr v =
  let b = Bytes.create 4 in
  Bytes.set_int32_le b 0 v;
  write t paddr b 0 4

let deep_copy t =
  let frames = Hashtbl.create (Hashtbl.length t.frames) in
  Hashtbl.iter (fun pfn data -> Hashtbl.replace frames pfn (Bytes.copy data)) t.frames;
  {
    frames;
    versions = Hashtbl.copy t.versions;
    dirty = Hashtbl.create 64;
    log_dirty = false;
    watched = Hashtbl.create 16;
    traps = Queue.create ();
    watch_clock = 0.0;
    write_gen = t.write_gen;
    uid = Atomic.fetch_and_add uid_counter 1;
    max_frames = t.max_frames;
    next_pfn = t.next_pfn;
    (* Like watches, the shim is a property of the live mapping, not of
       the bytes: a reboot or restore sheds it. *)
    foreign_shim = None;
  }

let read_page t pfn =
  let b = Bytes.create frame_size in
  read t (pfn * frame_size) b 0 frame_size;
  b

let set_foreign_shim t shim = t.foreign_shim <- shim

let foreign_shim_installed t = t.foreign_shim <> None

let read_page_foreign t pfn =
  let b = read_page t pfn in
  match t.foreign_shim with None -> b | Some shim -> shim pfn b
