(** Deterministic, seeded fault injection for the hypervisor interface.

    Real clouds do not answer every introspection request: foreign-page
    mappings fail transiently under memory pressure, ballooned or
    swapped guests leave frames unmappable, a guest writing mid-copy
    tears the mapped snapshot, and pause hypercalls race domain state
    changes. A fault plan injects those failure modes into the simulated
    {!Phys}/Xenctl layer with per-kind probabilities.

    Every decision is a pure hash of (seed, domain salt, fault kind,
    pfn, attempt) — no hidden mutable stream — so the fault pattern is
    independent of read order, page-cache behaviour, and parallel
    scheduling, and a given (domain, pfn, attempt) always faults the
    same way across runs. *)

type spec = {
  transient_rate : float;  (** Per-attempt map failure probability. *)
  paged_out_rate : float;
      (** Per-pfn probability the frame is persistently unmappable. *)
  torn_rate : float;
      (** Per-attempt probability the copy is torn by a concurrent guest
          write (detected and surfaced as a failed map). *)
  pause_fail_rate : float;  (** Per-call pause/unpause failure probability. *)
  fault_seed : int;
}

val none : spec
(** All rates zero — injects nothing. *)

val is_none : spec -> bool

val of_string : string -> (spec, string) result
(** Parse a [--fault-spec] string: comma-separated [key=value] pairs with
    keys [transient], [paged], [torn], [pause], [seed]; omitted keys are
    zero. E.g. ["transient=0.05,paged=0.01,seed=7"]. Rates must lie in
    [[0,1]]. *)

val to_string : spec -> string
(** Canonical [of_string]-parsable rendering. *)

type kind = Transient | Paged_out | Torn

val kind_name : kind -> string
(** ["transient"], ["paged_out"], ["torn"] — telemetry counter suffixes. *)

val retryable : kind -> bool
(** Whether a retry of the same mapping can succeed ([Paged_out] cannot). *)

type t
(** A plan: a spec bound to one domain. *)

val create : ?salt:int -> spec -> t
(** [create ~salt spec] — [salt] (conventionally the domain id) decorrelates
    fault patterns across domains sharing one spec. *)

val spec : t -> spec

val map_outcome : t -> pfn:int -> attempt:int -> kind option
(** [map_outcome t ~pfn ~attempt] decides the fate of the [attempt]-th
    mapping attempt (1-based) of frame [pfn]: [None] means the map
    succeeds. Deterministic in its arguments. *)

val pause_fails : t -> bool
(** Whether the next pause/unpause hypercall fails. This is the one
    sequenced decision (successive calls are distinct trials), so a
    failed pause can succeed on retry. *)
