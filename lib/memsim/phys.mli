(** Guest physical memory.

    Frames (4 KiB) are allocated sparsely on demand, so a 4 GiB guest
    physical address space costs only what the guest actually touches.
    Addresses are guest-physical byte addresses. *)

type t

val frame_size : int
(** 4096. *)

val create : ?max_frames:int -> unit -> t
(** [create ()] makes an empty physical memory; [max_frames] bounds the
    number of allocatable frames (default 65536 = 256 MiB). *)

val uid : t -> int
(** Process-unique id of this physical memory instance. A reboot or
    snapshot restore builds a fresh instance with a fresh uid, so external
    caches keyed on [(uid, page_version)] cannot alias across memories. *)

val write_generation : t -> int
(** Global write counter: bumped once per frame touched by any {!write}.
    Monotonic for the lifetime of the instance. *)

val page_version : t -> int -> int
(** [page_version t pfn] is the frame's write version (0 until first
    written). Bumped by every {!write} that touches the frame — the single
    choke point for all guest mutation. *)

val set_log_dirty : t -> bool -> unit
(** [set_log_dirty t true] starts recording written frames into the dirty
    bitmap (Xen's [SHADOW_OP_ENABLE_LOGDIRTY] analogue); [false] stops and
    clears it. *)

val log_dirty_enabled : t -> bool

val peek_dirty : t -> int list
(** Frames written since log-dirty was enabled or last cleaned, ascending.
    Does not clear the bitmap. *)

val clean_dirty : t -> int list
(** Like {!peek_dirty} but atomically clears the bitmap — Xen's
    peek-and-clean hypercall. *)

type watch_event = {
  we_pfn : int;  (** the frame that was written *)
  we_at : float;  (** the watch clock at the moment of the write *)
  we_version : int;  (** the frame's write version after the write *)
}
(** One write trap: the first guest write to a watched frame. *)

val watch_frames : t -> int list -> unit
(** [watch_frames t pfns] write-protects the given frames. The first
    write to a watched frame enqueues a {!watch_event} and removes the
    protection (one trap per arm cycle — repeated writes coalesce until
    the frame is re-armed). Watching an already-watched frame is a
    no-op. *)

val unwatch_frames : t -> int list -> unit
(** Drop write protection from the given frames without trapping. *)

val watched_frames : t -> int list
(** Currently write-protected frames, ascending. *)

val set_watch_clock : t -> float -> unit
(** Set the timestamp stamped onto subsequent trap events. Phys has no
    clock of its own; the simulation driver advances this alongside its
    virtual clock. *)

val pending_watch_events : t -> int
(** Number of undelivered trap events. *)

val drain_watch_events : t -> watch_event list
(** Return all undelivered trap events in FIFO order and clear the
    queue. Each drained event's frame is no longer watched (the trap
    disarmed it); re-arm with {!watch_frames} after reacting. *)

val alloc_frame : t -> int
(** [alloc_frame t] reserves a fresh zeroed frame and returns its frame
    number (pfn). Raises [Failure] when [max_frames] is exhausted. *)

val frames_allocated : t -> int

val frame_exists : t -> int -> bool
(** [frame_exists t pfn] is true once [pfn] has been allocated. *)

val read : t -> int -> Bytes.t -> int -> int -> unit
(** [read t paddr dst dst_off len] copies guest-physical bytes into [dst];
    the range may cross frame boundaries. Reading an unallocated frame
    yields zeros (as real RAM reads of untouched pages would). *)

val write : t -> int -> Bytes.t -> int -> int -> unit
(** [write t paddr src src_off len] copies bytes into guest memory.
    Writing an unallocated frame raises [Invalid_argument] — the simulated
    MMU only maps allocated frames, so this catches wild writes. *)

val read_u32 : t -> int -> int32

val write_u32 : t -> int -> int32 -> unit

val deep_copy : t -> t
(** [deep_copy t] duplicates the whole physical memory (every allocated
    frame) — the substrate of VM snapshots. The copy gets a fresh {!uid}
    and starts with log-dirty off, no watched frames, and an empty trap
    queue (write protection is a property of the live mapping, not of
    the bytes). *)

val read_page : t -> int -> Bytes.t
(** [read_page t pfn] copies out one whole frame — the unit of access used
    by the hypervisor's foreign-page mapping (and thus by VMI). *)

val set_foreign_shim : t -> (int -> Bytes.t -> Bytes.t) option -> unit
(** [set_foreign_shim t (Some f)] interposes [f] on {!read_page_foreign}:
    every foreign (Dom0) page mapping returns [f pfn bytes] instead of the
    real frame contents, while guest-side reads and writes are untouched.
    This models a SEVurity-style adversary that controls what the checker
    sees without changing what the guest executes. [None] removes it. Like
    write watches, the shim is a property of the live mapping — a
    {!deep_copy} (reboot, snapshot restore) does not carry it over. *)

val foreign_shim_installed : t -> bool

val read_page_foreign : t -> int -> Bytes.t
(** The page as Dom0's foreign mapping sees it: {!read_page} filtered
    through the installed shim, if any. Byte-granular physical reads
    ({!read}) bypass the shim — they model the hypervisor's own debug
    path, which an in-guest adversary cannot intercept. *)
