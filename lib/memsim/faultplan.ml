(* Deterministic fault injection for the simulated hypervisor interface.

   Decisions are stateless: each one is a pure hash of (plan seed, domain
   salt, fault stream, pfn, attempt). That makes the fault pattern
   independent of read order, cache behaviour, and worker scheduling — the
   same (dom, pfn, attempt) triple always faults the same way, whether the
   survey runs sequentially or across a domain pool, so experiments stay
   bit-reproducible. *)

type spec = {
  transient_rate : float;
  paged_out_rate : float;
  torn_rate : float;
  pause_fail_rate : float;
  fault_seed : int;
}

let none =
  {
    transient_rate = 0.0;
    paged_out_rate = 0.0;
    torn_rate = 0.0;
    pause_fail_rate = 0.0;
    fault_seed = 0;
  }

let is_none s =
  s.transient_rate = 0.0 && s.paged_out_rate = 0.0 && s.torn_rate = 0.0
  && s.pause_fail_rate = 0.0

let check_rate what r =
  if not (r >= 0.0 && r <= 1.0) then
    Error (Printf.sprintf "fault spec: %s=%g is not a probability" what r)
  else Ok ()

let validate s =
  let ( let* ) = Result.bind in
  let* () = check_rate "transient" s.transient_rate in
  let* () = check_rate "paged" s.paged_out_rate in
  let* () = check_rate "torn" s.torn_rate in
  let* () = check_rate "pause" s.pause_fail_rate in
  Ok s

(* "transient=0.05,paged=0.01,torn=0.02,pause=0,seed=7" — any subset of
   keys, remaining fields zero. *)
let of_string str =
  let ( let* ) = Result.bind in
  let parts =
    String.split_on_char ',' (String.trim str)
    |> List.map String.trim
    |> List.filter (fun s -> s <> "")
  in
  let parse_field acc part =
    let* acc = acc in
    match String.index_opt part '=' with
    | None -> Error (Printf.sprintf "fault spec: expected key=value, got %S" part)
    | Some i -> (
        let key = String.sub part 0 i in
        let value = String.sub part (i + 1) (String.length part - i - 1) in
        let float_v () =
          match float_of_string_opt value with
          | Some f -> Ok f
          | None -> Error (Printf.sprintf "fault spec: bad number %S for %s" value key)
        in
        match key with
        | "transient" ->
            let* v = float_v () in
            Ok { acc with transient_rate = v }
        | "paged" | "paged_out" ->
            let* v = float_v () in
            Ok { acc with paged_out_rate = v }
        | "torn" ->
            let* v = float_v () in
            Ok { acc with torn_rate = v }
        | "pause" ->
            let* v = float_v () in
            Ok { acc with pause_fail_rate = v }
        | "seed" -> (
            match int_of_string_opt value with
            | Some n -> Ok { acc with fault_seed = n }
            | None ->
                Error (Printf.sprintf "fault spec: bad seed %S" value))
        | _ -> Error (Printf.sprintf "fault spec: unknown key %S" key))
  in
  let* s = List.fold_left parse_field (Ok none) parts in
  validate s

let to_string s =
  Printf.sprintf "transient=%g,paged=%g,torn=%g,pause=%g,seed=%d"
    s.transient_rate s.paged_out_rate s.torn_rate s.pause_fail_rate
    s.fault_seed

type kind = Transient | Paged_out | Torn

let kind_name = function
  | Transient -> "transient"
  | Paged_out -> "paged_out"
  | Torn -> "torn"

(* A paged-out frame stays unmappable however often Dom0 asks; transient
   map failures and torn copies are per-attempt artifacts. *)
let retryable = function Transient | Torn -> true | Paged_out -> false

type t = { t_spec : spec; salt : int; pause_seq : int Atomic.t }

let create ?(salt = 0) spec = { t_spec = spec; salt; pause_seq = Atomic.make 0 }

let spec t = t.t_spec

(* SplitMix64 finalizer — the same mixer Mc_util.Rng streams from. *)
let mix64 x =
  let open Int64 in
  let x = mul (logxor x (shift_right_logical x 30)) 0xBF58476D1CE4E5B9L in
  let x = mul (logxor x (shift_right_logical x 27)) 0x94D049BB133111EBL in
  logxor x (shift_right_logical x 31)

let combine h v =
  mix64 (Int64.add (Int64.mul h 0x9E3779B97F4A7C15L) (Int64.of_int v))

(* Uniform draw in [0,1) from the decision coordinates. *)
let draw t ~stream ~a ~b =
  let h = Int64.of_int t.t_spec.fault_seed in
  let h = combine h t.salt in
  let h = combine h stream in
  let h = combine h a in
  let h = combine h b in
  (* 53 uniform mantissa bits, like Rng.float. *)
  Int64.to_float (Int64.shift_right_logical h 11) *. (1.0 /. 9007199254740992.0)

let hits t rate ~stream ~a ~b = rate > 0.0 && draw t ~stream ~a ~b < rate

let map_outcome t ~pfn ~attempt =
  if is_none t.t_spec then None
  else if hits t t.t_spec.paged_out_rate ~stream:1 ~a:pfn ~b:0 then
    Some Paged_out
  else if hits t t.t_spec.transient_rate ~stream:2 ~a:pfn ~b:attempt then
    Some Transient
  else if hits t t.t_spec.torn_rate ~stream:3 ~a:pfn ~b:attempt then Some Torn
  else None

let pause_fails t =
  t.t_spec.pause_fail_rate > 0.0
  &&
  let n = Atomic.fetch_and_add t.pause_seq 1 in
  hits t t.t_spec.pause_fail_rate ~stream:4 ~a:n ~b:0
