(** A minimal JSON emitter and parser (no external dependency), for
    machine-readable reports consumed by ops pipelines. The parser exists
    so tests can round-trip exported telemetry traces; the tools
    themselves only emit. *)

type t =
  | Null
  | Bool of bool
  | Int of int
  | Float of float
  | String of string
  | List of t list
  | Obj of (string * t) list

val to_string : t -> string
(** [to_string v] is compact single-line JSON. Strings are escaped per RFC
    8259 (quotes, backslashes, control characters); non-finite floats emit
    as [null]. *)

val to_string_pretty : t -> string
(** [to_string_pretty v] is the two-space-indented rendering. *)

val of_string : string -> (t, string) result
(** [of_string s] parses one JSON document (plus surrounding whitespace).
    Numbers without a fractional part become [Int], others [Float];
    [\u] escapes beyond Latin-1 are rejected (the emitter never produces
    them). *)
