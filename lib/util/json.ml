type t =
  | Null
  | Bool of bool
  | Int of int
  | Float of float
  | String of string
  | List of t list
  | Obj of (string * t) list

let escape s =
  let buf = Buffer.create (String.length s + 8) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | '\r' -> Buffer.add_string buf "\\r"
      | '\t' -> Buffer.add_string buf "\\t"
      | c when Char.code c < 0x20 ->
          Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s;
  Buffer.contents buf

let float_repr f =
  if Float.is_finite f then
    (* Shortest roundtrip-ish representation without exponent noise for
       common magnitudes. *)
    let s = Printf.sprintf "%.12g" f in
    s
  else "null"

let rec emit buf ~indent ~level v =
  let pad n = if indent then Buffer.add_string buf (String.make (2 * n) ' ') in
  let newline () = if indent then Buffer.add_char buf '\n' in
  match v with
  | Null -> Buffer.add_string buf "null"
  | Bool b -> Buffer.add_string buf (if b then "true" else "false")
  | Int i -> Buffer.add_string buf (string_of_int i)
  | Float f -> Buffer.add_string buf (float_repr f)
  | String s ->
      Buffer.add_char buf '"';
      Buffer.add_string buf (escape s);
      Buffer.add_char buf '"'
  | List [] -> Buffer.add_string buf "[]"
  | List items ->
      Buffer.add_char buf '[';
      newline ();
      List.iteri
        (fun i item ->
          if i > 0 then begin
            Buffer.add_char buf ',';
            newline ()
          end;
          pad (level + 1);
          emit buf ~indent ~level:(level + 1) item)
        items;
      newline ();
      pad level;
      Buffer.add_char buf ']'
  | Obj [] -> Buffer.add_string buf "{}"
  | Obj fields ->
      Buffer.add_char buf '{';
      newline ();
      List.iteri
        (fun i (key, value) ->
          if i > 0 then begin
            Buffer.add_char buf ',';
            newline ()
          end;
          pad (level + 1);
          Buffer.add_char buf '"';
          Buffer.add_string buf (escape key);
          Buffer.add_string buf (if indent then "\": " else "\":");
          emit buf ~indent ~level:(level + 1) value)
        fields;
      newline ();
      pad level;
      Buffer.add_char buf '}'

let to_string v =
  let buf = Buffer.create 256 in
  emit buf ~indent:false ~level:0 v;
  Buffer.contents buf

let to_string_pretty v =
  let buf = Buffer.create 256 in
  emit buf ~indent:true ~level:0 v;
  Buffer.contents buf

(* --- parsing ----------------------------------------------------------- *)

exception Parse_error of string

let of_string s =
  let n = String.length s in
  let pos = ref 0 in
  let fail msg = raise (Parse_error (Printf.sprintf "%s at offset %d" msg !pos)) in
  let peek () = if !pos < n then Some s.[!pos] else None in
  let advance () = incr pos in
  let skip_ws () =
    while
      !pos < n && (match s.[!pos] with ' ' | '\t' | '\n' | '\r' -> true | _ -> false)
    do
      advance ()
    done
  in
  let expect c =
    if !pos < n && s.[!pos] = c then advance ()
    else fail (Printf.sprintf "expected %C" c)
  in
  let literal word v =
    if !pos + String.length word <= n && String.sub s !pos (String.length word) = word
    then begin
      pos := !pos + String.length word;
      v
    end
    else fail ("expected " ^ word)
  in
  let parse_string () =
    expect '"';
    let buf = Buffer.create 16 in
    let rec loop () =
      if !pos >= n then fail "unterminated string"
      else
        match s.[!pos] with
        | '"' -> advance ()
        | '\\' ->
            advance ();
            (if !pos >= n then fail "unterminated escape"
             else
               match s.[!pos] with
               | '"' -> Buffer.add_char buf '"'; advance ()
               | '\\' -> Buffer.add_char buf '\\'; advance ()
               | '/' -> Buffer.add_char buf '/'; advance ()
               | 'b' -> Buffer.add_char buf '\b'; advance ()
               | 'f' -> Buffer.add_char buf '\012'; advance ()
               | 'n' -> Buffer.add_char buf '\n'; advance ()
               | 'r' -> Buffer.add_char buf '\r'; advance ()
               | 't' -> Buffer.add_char buf '\t'; advance ()
               | 'u' ->
                   advance ();
                   if !pos + 4 > n then fail "truncated \\u escape";
                   let code =
                     try int_of_string ("0x" ^ String.sub s !pos 4)
                     with _ -> fail "bad \\u escape"
                   in
                   pos := !pos + 4;
                   (* The emitter only escapes control characters; decode
                      the Latin-1 range and reject the rest rather than
                      implementing UTF-8 encoding here. *)
                   if code < 0x100 then Buffer.add_char buf (Char.chr code)
                   else fail "\\u escape beyond latin-1"
               | _ -> fail "unknown escape");
            loop ()
        | c ->
            Buffer.add_char buf c;
            advance ();
            loop ()
    in
    loop ();
    Buffer.contents buf
  in
  let parse_number () =
    let start = !pos in
    let numchar c =
      match c with
      | '0' .. '9' | '-' | '+' | '.' | 'e' | 'E' -> true
      | _ -> false
    in
    while !pos < n && numchar s.[!pos] do
      advance ()
    done;
    let tok = String.sub s start (!pos - start) in
    match int_of_string_opt tok with
    | Some i -> Int i
    | None -> (
        match float_of_string_opt tok with
        | Some f -> Float f
        | None -> fail "malformed number")
  in
  let rec parse_value () =
    skip_ws ();
    match peek () with
    | None -> fail "unexpected end of input"
    | Some '"' -> String (parse_string ())
    | Some '{' ->
        advance ();
        skip_ws ();
        if peek () = Some '}' then begin
          advance ();
          Obj []
        end
        else begin
          let rec fields acc =
            skip_ws ();
            let key = parse_string () in
            skip_ws ();
            expect ':';
            let v = parse_value () in
            skip_ws ();
            match peek () with
            | Some ',' ->
                advance ();
                fields ((key, v) :: acc)
            | Some '}' ->
                advance ();
                List.rev ((key, v) :: acc)
            | _ -> fail "expected ',' or '}'"
          in
          Obj (fields [])
        end
    | Some '[' ->
        advance ();
        skip_ws ();
        if peek () = Some ']' then begin
          advance ();
          List []
        end
        else begin
          let rec items acc =
            let v = parse_value () in
            skip_ws ();
            match peek () with
            | Some ',' ->
                advance ();
                items (v :: acc)
            | Some ']' ->
                advance ();
                List.rev (v :: acc)
            | _ -> fail "expected ',' or ']'"
          in
          List (items [])
        end
    | Some 't' -> literal "true" (Bool true)
    | Some 'f' -> literal "false" (Bool false)
    | Some 'n' -> literal "null" Null
    | Some ('-' | '0' .. '9') -> parse_number ()
    | Some c -> fail (Printf.sprintf "unexpected %C" c)
  in
  match parse_value () with
  | v ->
      skip_ws ();
      if !pos <> n then Error (Printf.sprintf "trailing garbage at offset %d" !pos)
      else Ok v
  | exception Parse_error msg -> Error msg
