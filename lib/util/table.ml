let render ~header rows =
  (* Arrays throughout: with [List.nth_opt] per cell this was
     O(rows * columns^2), which blows up on wide ragged tables. *)
  let all = Array.of_list (List.map Array.of_list (header :: rows)) in
  let columns =
    Array.fold_left (fun acc row -> max acc (Array.length row)) 0 all
  in
  let cell row i = if i < Array.length row then row.(i) else "" in
  let widths =
    Array.init columns (fun i ->
        Array.fold_left
          (fun acc row -> max acc (String.length (cell row i)))
          0 all)
  in
  let line =
    "+"
    ^ String.concat "+"
        (List.map (fun w -> String.make (w + 2) '-') (Array.to_list widths))
    ^ "+"
  in
  let format_row row =
    "|"
    ^ String.concat "|"
        (List.mapi
           (fun i w -> Printf.sprintf " %-*s " w (cell row i))
           (Array.to_list widths))
    ^ "|"
  in
  let header = Array.of_list header
  and rows = List.map Array.of_list rows in
  let buf = Buffer.create 256 in
  Buffer.add_string buf (line ^ "\n");
  Buffer.add_string buf (format_row header ^ "\n");
  Buffer.add_string buf (line ^ "\n");
  List.iter (fun row -> Buffer.add_string buf (format_row row ^ "\n")) rows;
  Buffer.add_string buf (line ^ "\n");
  Buffer.contents buf

let glyphs = [| '*'; 'o'; '+'; 'x'; '#'; '@'; '%'; '&' |]

let chart ?(width = 60) ?(height = 16) ~title ~x_label ~y_label series =
  let points = List.concat_map snd series in
  let buf = Buffer.create 1024 in
  Buffer.add_string buf (Printf.sprintf "%s\n" title);
  if points = [] then begin
    Buffer.add_string buf "  (no data)\n";
    Buffer.contents buf
  end
  else begin
    let xs = List.map fst points and ys = List.map snd points in
    let xmin = Stats.minimum xs and xmax = Stats.maximum xs in
    let ymin = min 0.0 (Stats.minimum ys) and ymax = Stats.maximum ys in
    let xspan = if xmax -. xmin < 1e-12 then 1.0 else xmax -. xmin in
    let yspan = if ymax -. ymin < 1e-12 then 1.0 else ymax -. ymin in
    let grid = Array.make_matrix height width ' ' in
    List.iteri
      (fun si (_, pts) ->
        let glyph = glyphs.(si mod Array.length glyphs) in
        List.iter
          (fun (x, y) ->
            let cx =
              int_of_float ((x -. xmin) /. xspan *. float_of_int (width - 1))
            in
            let cy =
              int_of_float ((y -. ymin) /. yspan *. float_of_int (height - 1))
            in
            let cx = max 0 (min (width - 1) cx) in
            let cy = max 0 (min (height - 1) cy) in
            grid.(height - 1 - cy).(cx) <- glyph)
          pts)
      series;
    Buffer.add_string buf
      (Printf.sprintf "%s (max %.3g)\n" y_label ymax);
    Array.iter
      (fun row ->
        Buffer.add_string buf "  |";
        Array.iter (Buffer.add_char buf) row;
        Buffer.add_char buf '\n')
      grid;
    Buffer.add_string buf ("  +" ^ String.make width '-' ^ "\n");
    Buffer.add_string buf
      (Printf.sprintf "   %s: %.3g .. %.3g\n" x_label xmin xmax);
    List.iteri
      (fun si (name, _) ->
        Buffer.add_string buf
          (Printf.sprintf "   %c = %s\n" glyphs.(si mod Array.length glyphs)
             name))
      series;
    Buffer.contents buf
  end
