(* The modchecker command-line tool.

   Because the whole testbed is simulated, every subcommand first builds a
   cloud (VM count, cores, and seed are flags), optionally stages an
   infection, and then runs the requested analysis against it. *)

open Cmdliner

module Cloud = Mc_hypervisor.Cloud
module Orchestrator = Modchecker.Orchestrator
module Report = Modchecker.Report
module Exit_code = Modchecker.Exit_code

(* --- common flags ------------------------------------------------------ *)

let verbose_arg =
  let doc = "Enable debug logging on stderr." in
  Arg.(value & flag & info [ "v"; "verbose" ] ~doc)

let setup_logs verbose =
  Logs.set_reporter (Logs_fmt.reporter ());
  Logs.set_level (Some (if verbose then Logs.Debug else Logs.Warning))

let vms_arg =
  let doc = "Number of DomU guests in the simulated cloud." in
  Arg.(value & opt int 15 & info [ "vms" ] ~docv:"N" ~doc)

let cores_arg =
  let doc = "Physical cores of the simulated host." in
  Arg.(value & opt int 8 & info [ "cores" ] ~docv:"N" ~doc)

let seed_arg =
  let doc = "Deterministic seed for the cloud (module load bases etc.)." in
  Arg.(value & opt int64 2012L & info [ "seed" ] ~docv:"SEED" ~doc)

let module_arg =
  let doc = "Kernel module to check (e.g. hal.dll, http.sys)." in
  Arg.(value & opt string "hal.dll" & info [ "m"; "module" ] ~docv:"NAME" ~doc)

let vm_arg =
  let doc = "Target DomU index, 0-based (Dom1 is index 0)." in
  Arg.(value & opt int 0 & info [ "vm" ] ~docv:"I" ~doc)

let infect_arg =
  let doc =
    "Stage an infection before checking: one of 'opcode', 'hook', 'stub', \
     'dll-inject', 'ptr', 'hide'."
  in
  Arg.(
    value
    & opt (some (enum
           [ ("opcode", `Opcode); ("hook", `Hook); ("stub", `Stub);
             ("dll-inject", `Dll); ("ptr", `Ptr); ("hide", `Hide) ]))
        None
    & info [ "infect" ] ~docv:"TECHNIQUE" ~doc)

let workers_arg =
  let doc = "Dom0 worker domains for parallel checking (1 = sequential)." in
  Arg.(value & opt int 1 & info [ "j"; "workers" ] ~docv:"W" ~doc)

let fault_spec_conv =
  let parse s =
    match Mc_memsim.Faultplan.of_string s with
    | Ok v -> Ok v
    | Error e -> Error (`Msg e)
  in
  let print fmt s =
    Format.pp_print_string fmt (Mc_memsim.Faultplan.to_string s)
  in
  Arg.conv ~docv:"SPEC" (parse, print)

let fault_spec_arg =
  let doc =
    "Arm deterministic fault injection on every DomU. Comma-separated \
     key=value pairs: 'transient', 'paged', 'torn', 'pause' are \
     probabilities in [0,1], 'seed' picks the fault pattern. E.g. \
     'transient=0.05,seed=7'. Faults are absorbed by bounded retries; a \
     VM whose retries are exhausted is excluded from the vote rather \
     than miscounted."
  in
  Arg.(
    value
    & opt (some fault_spec_conv) None
    & info [ "fault-spec" ] ~docv:"SPEC" ~doc)

let quorum_arg =
  let doc =
    "Minimum responding fraction of the surveyed VMs for a verdict to \
     count; below the floor the verdict is DEGRADED (exit code 3, never \
     confused with an infection's exit code 2)."
  in
  Arg.(
    value
    & opt float Modchecker.Report.default_quorum
    & info [ "quorum" ] ~docv:"FRACTION" ~doc)

let deadline_arg =
  let doc =
    "Per-VM introspection deadline in seconds (wall clock); enforced in \
     parallel mode, where a task past the deadline is abandoned and its \
     VM counted unreachable."
  in
  Arg.(
    value & opt (some float) None & info [ "deadline" ] ~docv:"SECONDS" ~doc)

let trace_arg =
  let doc =
    "Enable telemetry and write a JSONL trace (one span or metric point \
     per line) to $(docv)."
  in
  Arg.(value & opt (some string) None & info [ "trace" ] ~docv:"FILE" ~doc)

let metrics_arg =
  let doc =
    "Enable telemetry and print a metrics summary (span totals, counters, \
     histogram quantiles) when done."
  in
  Arg.(value & flag & info [ "metrics" ] ~doc)

(* Export telemetry via [at_exit] so subcommands that [exit 2] on a failed
   verdict still flush their trace. *)
let with_telemetry trace metrics f =
  if trace <> None || metrics then begin
    Mc_telemetry.Registry.set_enabled true;
    at_exit (fun () ->
        let snap = Mc_telemetry.Registry.snapshot () in
        (match trace with
        | Some path -> (
            (* The verdict already happened; a bad trace path must not
               turn it into a crash (or clobber the exit code). *)
            try Mc_telemetry.Export.write ~path snap
            with Sys_error msg ->
              Printf.eprintf "modchecker: cannot write trace: %s\n" msg)
        | None -> ());
        if metrics then print_string (Mc_telemetry.Export.summary snap))
  end;
  f ()

let json_arg =
  let doc = "Emit the result as JSON on stdout instead of tables." in
  Arg.(value & flag & info [ "json" ] ~doc)

let merkle_arg =
  let doc =
    "Memoize per-section Merkle trees (one MD5 leaf per page) instead of \
     flat fingerprints: a VM with k dirty module pages refreshes at the \
     cost of k leaf hashes plus O(log n) interior nodes, and a mismatch \
     is localized to its deviant pages by tree descent. Verdicts and \
     exit codes are identical to full hashing."
  in
  Arg.(value & flag & info [ "merkle" ] ~doc)

let pinpoint_arg =
  let doc =
    "After a .text mismatch, name the patched function(s) using the\n\
     module's symbols (dAnubis-style)."
  in
  Arg.(value & flag & info [ "pinpoint" ] ~doc)

let make_cloud ?fault_spec vms cores seed =
  Cloud.create ~vms ~cores ~seed ?fault_spec ()

let stage_infection cloud vm = function
  | None -> Ok None
  | Some technique ->
      let open Mc_malware.Infect in
      let r =
        match technique with
        | `Opcode -> single_opcode_replacement cloud ~vm
        | `Hook -> inline_hook cloud ~vm
        | `Stub -> stub_modification cloud ~vm
        | `Dll -> dll_injection cloud ~vm
        | `Ptr -> pointer_hook cloud ~vm
        | `Hide -> hide_module cloud ~vm ~module_name:"http.sys"
      in
      Result.map Option.some r

let or_die = function
  | Ok v -> v
  | Error msg ->
      prerr_endline ("error: " ^ msg);
      exit Exit_code.error

(* Every subcommand's knobs meet Orchestrator.Config here, in one place;
   the per-command defaulting this replaces used to drift. *)
let make_check_config ?(canonical = false) ?(merkle = false) ?deadline ~quorum
    () =
  Orchestrator.Config.default
  |> Orchestrator.Config.with_quorum quorum
  |> (if canonical then
        Orchestrator.Config.with_strategy Orchestrator.Canonical
      else Fun.id)
  |> (if merkle then fun c ->
        (* Merkle prints live in the incremental cache; a one-shot command
           creates its own (it still pays off within the run: the O(dirty)
           path serves the escalation re-survey, and serve/patrol share
           theirs across requests/sweeps). *)
        c
        |> Orchestrator.Config.with_incremental
             (Orchestrator.create_incremental ())
        |> Orchestrator.Config.with_merkle true
      else Fun.id)
  |>
  match deadline with
  | Some d -> Orchestrator.Config.with_deadline d
  | None -> Fun.id

(* --- check ------------------------------------------------------------- *)

(* Fetch one VM's module artifacts directly (for pinpointing). *)
let fetch_for_pinpoint cloud vm module_name =
  let dom = Cloud.vm cloud vm in
  let vmi =
    Mc_vmi.Vmi.init dom
      (Mc_vmi.Symbols.of_variant
         (Mc_winkernel.Kernel.os_variant (Mc_hypervisor.Dom.kernel_exn dom)))
  in
  match Modchecker.Searcher.fetch vmi ~name:module_name with
  | None -> None
  | Some (info, buf) -> (
      match Modchecker.Parser.artifacts buf with
      | Ok artifacts -> Some (info, artifacts)
      | Error _ -> None)

(* With --merkle, descend the two .text trees first and hand the deviant
   page spans to the byte-level survey, so pinpointing scans O(deviant
   pages) instead of the whole section. *)
let merkle_pinpoint_ranges ~base1 a1 ~base2 a2 =
  let text arts =
    Modchecker.Artifact.find arts (Modchecker.Artifact.Section_data ".text")
  in
  match (text a1, text a2) with
  | Some t1, Some t2
    when Bytes.length t1.Modchecker.Artifact.data
         = Bytes.length t2.Modchecker.Artifact.data ->
      let d1 = Bytes.copy t1.Modchecker.Artifact.data in
      let d2 = Bytes.copy t2.Modchecker.Artifact.data in
      ignore (Modchecker.Rva.adjust_pair ~base1 ~base2 d1 d2);
      let ranges =
        Modchecker.Checker.deviant_ranges
          (Modchecker.Checker.merkle_of_bytes d1)
          (Modchecker.Checker.merkle_of_bytes d2)
      in
      Printf.printf "pinpoint: merkle descent localized %d deviant page(s)\n"
        (List.length ranges);
      Some ranges
  | _ -> None

let print_pinpoint ?(merkle = false) cloud outcome module_name vm =
  let report = outcome.Orchestrator.report in
  let flagged_text =
    List.exists
      (fun k ->
        Modchecker.Artifact.equal_kind k (Modchecker.Artifact.Section_data ".text"))
      report.Report.flagged_artifacts
  in
  if not flagged_text then
    print_endline "pinpoint: .text is not among the flagged artifacts"
  else begin
    (* Any other VM serves as the reference: the majority of the pool is
       clean whenever the verdict is meaningful. *)
    let peer =
      List.find_opt (fun v -> v <> vm) (List.init (Cloud.vm_count cloud) Fun.id)
    in
    match peer with
    | None -> ()
    | Some peer -> (
        match
          ( fetch_for_pinpoint cloud vm module_name,
            fetch_for_pinpoint cloud peer module_name )
        with
        | Some (i1, a1), Some (i2, a2) -> (
            let symbols =
              Mc_pe.Catalog.symbols (Mc_pe.Catalog.image module_name)
            in
            let base1 = i1.Modchecker.Searcher.mi_base in
            let base2 = i2.Modchecker.Searcher.mi_base in
            let ranges =
              if merkle then merkle_pinpoint_ranges ~base1 a1 ~base2 a2
              else None
            in
            match
              Modchecker.Pinpoint.analyze_text_pair ?ranges ~base1 a1 ~base2
                a2 ~symbols
            with
            | Ok findings ->
                Printf.printf "pinpoint (vs Dom%d):\n" (peer + 1);
                List.iter
                  (fun f ->
                    Printf.printf
                      "  %s (rva 0x%x): %d byte(s) changed, first at rva 0x%x\n"
                      f.Modchecker.Pinpoint.pf_function
                      f.Modchecker.Pinpoint.pf_fn_rva
                      f.Modchecker.Pinpoint.pf_diff_bytes
                      f.Modchecker.Pinpoint.pf_first_diff_rva)
                  findings
            | Error e -> Printf.printf "pinpoint failed: %s\n" e)
        | _ -> print_endline "pinpoint: could not fetch both copies")
  end

let run_check verbose vms cores seed module_name vm infect workers fault_spec
    quorum deadline merkle pinpoint json trace metrics =
  with_telemetry trace metrics @@ fun () ->
  setup_logs verbose;
  let cloud = make_cloud ?fault_spec vms cores seed in
  (match or_die (stage_infection cloud vm infect) with
  | Some inf ->
      Printf.printf "staged: %s on Dom%d (%s)\n" inf.Mc_malware.Infect.technique
        (vm + 1) inf.Mc_malware.Infect.details
  | None -> ());
  let mode =
    if workers <= 1 then Orchestrator.Sequential
    else Orchestrator.Parallel (Mc_parallel.Pool.create workers)
  in
  let config =
    make_check_config ~merkle ~quorum ?deadline ()
    |> Orchestrator.Config.with_mode mode
  in
  let outcome =
    or_die (Orchestrator.check_module ~config cloud ~target_vm:vm ~module_name)
  in
  (match mode with
  | Orchestrator.Parallel pool -> Mc_parallel.Pool.shutdown pool
  | Orchestrator.Sequential -> ());
  if json then
    print_endline (Mc_util.Json.to_string_pretty (Report.to_json outcome.report))
  else begin
    Printf.printf "%s\n" (Report.to_table outcome.report);
    Printf.printf "verdict: %s\n" (Report.verdict_string outcome.report);
    let costs = Mc_hypervisor.Costs.default in
    let p = Orchestrator.phase_seconds costs outcome in
    Printf.printf
      "simulated cost: searcher %.2f ms, parser %.2f ms, checker %.2f ms\n"
      (p.Orchestrator.searcher_s *. 1e3)
      (p.Orchestrator.parser_s *. 1e3)
      (p.Orchestrator.checker_s *. 1e3);
    if pinpoint && outcome.report.Report.verdict = Report.Infected then
      print_pinpoint ~merkle cloud outcome module_name vm
  end;
  Exit_code.exit_with (Exit_code.of_verdict outcome.report.Report.verdict)

let check_cmd =
  let doc = "Check one module's integrity across the VM pool." in
  Cmd.v
    (Cmd.info "check" ~doc)
    Term.(
      const run_check $ verbose_arg $ vms_arg $ cores_arg $ seed_arg
      $ module_arg $ vm_arg $ infect_arg $ workers_arg $ fault_spec_arg
      $ quorum_arg $ deadline_arg $ merkle_arg $ pinpoint_arg
      $ json_arg $ trace_arg $ metrics_arg)

(* --- survey ------------------------------------------------------------ *)

let run_survey vms cores seed module_name infect vm fault_spec quorum merkle
    json trace metrics =
  with_telemetry trace metrics @@ fun () ->
  let cloud = make_cloud ?fault_spec vms cores seed in
  (match or_die (stage_infection cloud vm infect) with
  | Some inf ->
      if not json then
        Printf.printf "staged: %s on Dom%d\n" inf.Mc_malware.Infect.technique
          (vm + 1)
  | None -> ());
  let s =
    Orchestrator.survey ~config:(make_check_config ~merkle ~quorum ()) cloud
      ~module_name
  in
  if json then
    print_endline (Mc_util.Json.to_string_pretty (Report.survey_to_json s))
  else begin
    Printf.printf "module: %s\n" s.Report.survey_module;
    let show name vms =
      Printf.printf "%s: %s\n" name
        (if vms = [] then "(none)"
         else
           String.concat ", "
             (List.map (fun v -> Printf.sprintf "Dom%d" (v + 1)) vms))
    in
    show "missing on" s.Report.missing_on;
    show "deviant (failed majority vote)" s.Report.deviant_vms;
    if s.Report.unreachable_on <> [] then
      show "unreachable (faults)" (List.map fst s.Report.unreachable_on)
  end;
  Exit_code.exit_with (Exit_code.of_survey s)

let survey_cmd =
  let doc = "Full-mesh comparison of one module across every VM." in
  Cmd.v
    (Cmd.info "survey" ~doc)
    Term.(
      const run_survey $ vms_arg $ cores_arg $ seed_arg $ module_arg
      $ infect_arg $ vm_arg $ fault_spec_arg $ quorum_arg $ merkle_arg
      $ json_arg $ trace_arg $ metrics_arg)

(* --- list-modules ------------------------------------------------------ *)

let run_list vms cores seed vm =
  let cloud = make_cloud vms cores seed in
  let vmi =
    Mc_vmi.Vmi.init (Cloud.vm cloud vm) Mc_vmi.Symbols.windows_xp_sp2
  in
  let mods = Modchecker.Searcher.list_modules vmi in
  let rows =
    List.map
      (fun (m : Modchecker.Searcher.module_info) ->
        [
          m.mi_name;
          Printf.sprintf "0x%08x" m.mi_base;
          Printf.sprintf "0x%x" m.mi_size;
          m.mi_full_name;
        ])
      mods
  in
  print_string
    (Mc_util.Table.render ~header:[ "module"; "base"; "size"; "path" ] rows)

let list_cmd =
  let doc = "Walk PsLoadedModuleList of one guest over VMI." in
  Cmd.v
    (Cmd.info "list-modules" ~doc)
    Term.(const run_list $ vms_arg $ cores_arg $ seed_arg $ vm_arg)

(* --- detect (the paper's evaluation suite) ----------------------------- *)

let run_detect vms seed fault_spec =
  print_string
    (Mc_harness.Render.detection_table
       (Mc_harness.Scenario.run_all ~vms ~seed ?faults:fault_spec ()))

let detect_cmd =
  let doc = "Run the paper's four detection experiments plus DKOM hiding." in
  Cmd.v
    (Cmd.info "detect" ~doc)
    Term.(const run_detect $ vms_arg $ seed_arg $ fault_spec_arg)

(* --- figures ------------------------------------------------------------ *)

type which_figure =
  | Fig7 | Fig8 | Fig9 | Ablation | Parallelism | Baselines | Strategy
  | PatrolFig | Incremental | MerkleFig | Faults | EngineFig | FederationFig
  | EventsFig | ReplayFig | EvasionFig
  | All

let which_arg =
  let doc = "Which figure/table to regenerate." in
  Arg.(
    value
    & opt (enum
           [ ("fig7", Fig7); ("fig8", Fig8); ("fig9", Fig9);
             ("ablation", Ablation); ("parallel", Parallelism);
             ("baselines", Baselines); ("strategy", Strategy);
             ("patrol", PatrolFig); ("incremental", Incremental);
             ("merkle", MerkleFig); ("faults", Faults); ("engine", EngineFig);
             ("federation", FederationFig); ("events", EventsFig);
             ("replay", ReplayFig); ("evasion", EvasionFig);
             ("all", All) ])
        All
    & info [ "which" ] ~docv:"WHICH" ~doc)

let run_figures which vms cores seed =
  let max_vms = max 1 (vms - 1) in
  let fig7 () =
    print_string
      (Mc_harness.Render.fig_series ~title:"Fig 7: runtime, mostly idle VMs"
         (Mc_harness.Figures.fig7_idle ~max_vms ~cores ~seed ()))
  in
  let fig8 () =
    print_string
      (Mc_harness.Render.fig_series ~title:"Fig 8: runtime, heavily loaded VMs"
         (Mc_harness.Figures.fig8_loaded ~max_vms ~cores ~seed ()))
  in
  let fig9 () =
    print_string (Mc_harness.Render.fig9 (Mc_harness.Figures.fig9_guest_impact ()))
  in
  let ablation () =
    print_string
      (Mc_harness.Render.ablation_table (Mc_harness.Figures.alignment_ablation ()));
    print_string
      (Mc_harness.Render.cross_pointer_table
         (Mc_harness.Figures.cross_pointer_ablation ()))
  in
  let parallelism () =
    print_string
      (Mc_harness.Render.parallel_table
         (Mc_harness.Figures.parallel_sweep ~vms ~cores ~seed ()))
  in
  let baselines () =
    print_string
      (Mc_harness.Render.baseline_table (Mc_harness.Figures.baseline_table ~seed ()))
  in
  let strategy () =
    print_string
      (Mc_harness.Render.strategy_table
         (Mc_harness.Figures.survey_strategy_table ~vms ~seed ()))
  in
  let patrol_fig () =
    print_string
      (Mc_harness.Render.patrol_table (Mc_harness.Figures.patrol_tradeoff ~seed ()))
  in
  let incremental () =
    print_string
      (Mc_harness.Render.incremental_table
         (Mc_harness.Figures.incremental_steady_state ~seed ()))
  in
  let merkle_fig () =
    print_string
      (Mc_harness.Render.merkle_table
         (Mc_harness.Figures.merkle_dirty_sweep ~seed ()))
  in
  let faults () =
    print_string
      (Mc_harness.Render.fault_table (Mc_harness.Figures.fault_sweep ~seed ()))
  in
  let engine_fig () =
    print_string
      (Mc_harness.Render.engine_table
         (Mc_harness.Figures.engine_throughput ~vms ~seed ()))
  in
  let federation_fig () =
    print_string
      (Mc_harness.Render.federation_table
         (Mc_harness.Figures.federation_scale ~seed ()))
  in
  let events_fig () =
    print_string
      (Mc_harness.Render.events_table
         (Mc_harness.Figures.events_tradeoff ~seed ()))
  in
  let replay_fig () =
    print_string
      (Mc_harness.Render.replay_table
         (Mc_harness.Figures.replay_throughput ~seed ()))
  in
  let evasion_fig () =
    print_string
      (Mc_harness.Render.evasion_table
         (Mc_harness.Figures.evasion_detection ()))
  in
  match which with
  | Fig7 -> fig7 ()
  | Fig8 -> fig8 ()
  | Fig9 -> fig9 ()
  | Ablation -> ablation ()
  | Parallelism -> parallelism ()
  | Baselines -> baselines ()
  | Strategy -> strategy ()
  | PatrolFig -> patrol_fig ()
  | Incremental -> incremental ()
  | MerkleFig -> merkle_fig ()
  | Faults -> faults ()
  | EngineFig -> engine_fig ()
  | FederationFig -> federation_fig ()
  | EventsFig -> events_fig ()
  | ReplayFig -> replay_fig ()
  | EvasionFig -> evasion_fig ()
  | All ->
      fig7 ();
      fig8 ();
      fig9 ();
      ablation ();
      parallelism ();
      baselines ();
      strategy ();
      patrol_fig ();
      incremental ();
      merkle_fig ();
      faults ();
      engine_fig ();
      federation_fig ();
      events_fig ();
      replay_fig ();
      evasion_fig ()

let figures_cmd =
  let doc = "Regenerate the paper's evaluation figures and the extensions." in
  Cmd.v
    (Cmd.info "figures" ~doc)
    Term.(const run_figures $ which_arg $ vms_arg $ cores_arg $ seed_arg)

(* --- health --------------------------------------------------------------- *)

let run_health vms cores seed infect vm canonical json trace metrics =
  with_telemetry trace metrics @@ fun () ->
  let cloud = make_cloud vms cores seed in
  (match or_die (stage_infection cloud vm infect) with
  | Some inf ->
      if not json then
        Printf.printf "staged: %s on Dom%d\n" inf.Mc_malware.Infect.technique
          (vm + 1)
  | None -> ());
  let report =
    Modchecker.Pool_health.assess
      ~config:(make_check_config ~canonical ~quorum:Report.default_quorum ())
      cloud
  in
  if json then
    print_endline
      (Mc_util.Json.to_string_pretty (Modchecker.Pool_health.to_json report))
  else begin
    print_string (Modchecker.Pool_health.to_table report);
    print_endline (Modchecker.Pool_health.summary report)
  end;
  if not report.Modchecker.Pool_health.fr_clean then exit Exit_code.infected

let health_cmd =
  let doc = "Assess every module on every VM: the fleet dashboard." in
  let canonical_arg =
    Arg.(value & flag & info [ "canonical" ]
         ~doc:"Use the O(t) canonical survey strategy.")
  in
  Cmd.v
    (Cmd.info "health" ~doc)
    Term.(
      const run_health $ vms_arg $ cores_arg $ seed_arg $ infect_arg $ vm_arg
      $ canonical_arg $ json_arg $ trace_arg $ metrics_arg)

(* --- federate ------------------------------------------------------------ *)

let int_list_conv =
  let parse s =
    try
      Ok
        (String.split_on_char ',' s
        |> List.filter (fun x -> x <> "")
        |> List.map int_of_string)
    with Failure _ -> Error (`Msg (Printf.sprintf "not an int list: %s" s))
  in
  let print fmt l =
    Format.pp_print_string fmt (String.concat "," (List.map string_of_int l))
  in
  Arg.conv ~docv:"N,N,..." (parse, print)

let slow_rack_conv =
  let parse s =
    match String.split_on_char ':' s with
    | [ rack; factor ] -> (
        try Ok (int_of_string rack, float_of_string factor)
        with Failure _ -> Error (`Msg (Printf.sprintf "bad RACK:FACTOR: %s" s)))
    | _ -> Error (`Msg (Printf.sprintf "expected RACK:FACTOR, got: %s" s))
  in
  let print fmt (r, f) = Format.fprintf fmt "%d:%g" r f in
  Arg.conv ~docv:"RACK:FACTOR" (parse, print)

let run_federate verbose regions racks hosts_per_rack vms cores patch_levels
    slow_racks down host vm infect lists module_name engines workers
    host_quorum host_deadline fault_spec seed json trace metrics =
  with_telemetry trace metrics @@ fun () ->
  setup_logs verbose;
  let module Topo = Mc_federation.Topology in
  let module Co = Mc_federation.Coordinator in
  let spec =
    {
      Topo.regions;
      racks_per_region = racks;
      hosts_per_rack;
      vms_per_host = vms;
      cores_per_host = cores;
      patch_levels;
      slow_racks;
      seed;
      fault_spec;
    }
  in
  let topo = try Topo.create ~spec () with Invalid_argument m ->
    prerr_endline ("error: " ^ m);
    exit Exit_code.error
  in
  (if host >= Topo.host_count topo then begin
     Printf.eprintf "error: no host %d in a %d-host fleet\n" host
       (Topo.host_count topo);
     exit Exit_code.error
   end);
  (match
     stage_infection (Topo.host topo host).Mc_federation.Host.cloud vm infect
   with
  | Ok (Some inf) ->
      if not json then
        Printf.printf "staged: %s on host%d/Dom%d (%s)\n"
          inf.Mc_malware.Infect.technique host (vm + 1)
          inf.Mc_malware.Infect.details
  | Ok None -> ()
  | Error msg ->
      prerr_endline ("error: " ^ msg);
      exit Exit_code.error);
  List.iter
    (fun h ->
      if h < Topo.host_count topo then Topo.set_host_down topo h
      else begin
        Printf.eprintf "error: cannot take down host %d of %d\n" h
          (Topo.host_count topo);
        exit Exit_code.error
      end)
    down;
  let config =
    {
      Co.default_config with
      Co.host_quorum;
      host_deadline_s = host_deadline;
      use_engines = engines;
      workers;
    }
  in
  let code =
    if lists then begin
      let fl = Co.survey_lists ~config topo in
      if json then
        print_endline
          (Mc_util.Json.to_string_pretty
             (Mc_util.Json.Obj
                [
                  ("schema", Mc_util.Json.String "modchecker/federation-lists@1");
                  ("verdict",
                   Mc_util.Json.String (Report.verdict_key fl.Co.fl_verdict));
                  ("hosts_surveyed", Mc_util.Json.Int fl.Co.fl_hosts_surveyed);
                  ("hosts_responded", Mc_util.Json.Int fl.Co.fl_hosts_responded);
                ]))
      else
        List.iter
          (fun (h : Co.host_lists) ->
            match h.Co.hl_outcome with
            | Ok lc ->
                Printf.printf "host%d: %d discrepancies, %d unreachable VMs\n"
                  h.Co.hl_host
                  (List.length lc.Orchestrator.lc_discrepancies)
                  (List.length lc.Orchestrator.lc_unreachable)
            | Error e -> Printf.printf "host%d: UNREACHABLE (%s)\n" h.Co.hl_host e)
          fl.Co.fl_per_host;
      Co.exit_code_lists fl
    end
    else begin
      let r = Co.survey ~config topo ~module_name in
      if json then print_endline (Mc_util.Json.to_string_pretty (Co.to_json r))
      else begin
        print_string (Co.to_table topo r);
        print_endline (Co.summary r)
      end;
      Co.exit_code r
    end
  in
  Topo.shutdown topo;
  Exit_code.exit_with code

let federate_cmd =
  let doc =
    "Survey a module across a simulated multi-host fleet (hosts x racks x \
     regions, mixed kernel builds) and merge verdicts hierarchically."
  in
  let regions_arg =
    Arg.(value & opt int 1 & info [ "regions" ] ~docv:"N" ~doc:"Regions.")
  in
  let racks_arg =
    Arg.(value & opt int 1 & info [ "racks" ] ~docv:"N"
         ~doc:"Racks per region.")
  in
  let hosts_arg =
    Arg.(value & opt int 3 & info [ "hosts-per-rack" ] ~docv:"N"
         ~doc:"Hosts per rack.")
  in
  let fed_vms_arg =
    Arg.(value & opt int 5 & info [ "vms" ] ~docv:"N"
         ~doc:"DomU guests per host.")
  in
  let levels_arg =
    Arg.(value & opt int_list_conv [ 1 ] & info [ "patch-levels" ]
         ~docv:"L,L,..."
         ~doc:"Kernel builds cycled across hosts (host 0 gets the first). \
               Votes are grouped by build, so a mixed fleet never flags a \
               legitimate version split.")
  in
  let slow_rack_arg =
    Arg.(value & opt_all slow_rack_conv [] & info [ "slow-rack" ]
         ~docv:"RACK:FACTOR"
         ~doc:"Stretch every response from the rack's hosts by FACTOR \
               (repeatable).")
  in
  let down_arg =
    Arg.(value & opt int_list_conv [] & info [ "down" ] ~docv:"H,H,..."
         ~doc:"Hosts to take down before surveying (whole-host outage).")
  in
  let fed_host_arg =
    Arg.(value & opt int 0 & info [ "host" ] ~docv:"H"
         ~doc:"Host carrying the staged infection (with --infect).")
  in
  let lists_arg =
    Arg.(value & flag & info [ "lists" ]
         ~doc:"Compare module load lists within each host (DKOM check) \
               instead of surveying one module.")
  in
  let engines_arg =
    Arg.(value & flag & info [ "engines" ]
         ~doc:"Drive each host through its own Mc_engine service instead \
               of direct orchestrator calls.")
  in
  let host_quorum_arg =
    Arg.(value & opt float 1.0 & info [ "host-quorum" ] ~docv:"FRACTION"
         ~doc:"Fraction of hosts that must respond; below it the fleet \
               verdict is DEGRADED (exit 3). Default 1.0: any whole-host \
               outage degrades.")
  in
  let host_deadline_arg =
    Arg.(value & opt (some float) None & info [ "host-deadline" ]
         ~docv:"SECONDS"
         ~doc:"Virtual response-time bound per host; a slow rack can push \
               healthy hosts past it (they count unreachable).")
  in
  Cmd.v
    (Cmd.info "federate" ~doc)
    Term.(
      const run_federate $ verbose_arg $ regions_arg $ racks_arg $ hosts_arg
      $ fed_vms_arg $ cores_arg $ levels_arg $ slow_rack_arg $ down_arg
      $ fed_host_arg $ vm_arg $ infect_arg $ lists_arg $ module_arg
      $ engines_arg $ workers_arg $ host_quorum_arg $ host_deadline_arg
      $ fault_spec_arg $ seed_arg $ json_arg $ trace_arg $ metrics_arg)

(* --- patrol -------------------------------------------------------------- *)

let run_patrol verbose vms cores seed duration interval infect vm infect_at
    canonical incremental merkle event_driven fault_spec quorum deadline trace
    metrics =
  with_telemetry trace metrics @@ fun () ->
  setup_logs verbose;
  let cloud = make_cloud ?fault_spec vms cores seed in
  let events =
    match infect with
    | None -> []
    | Some technique ->
        [
          ( infect_at,
            fun cloud ->
              match stage_infection cloud vm (Some technique) with
              | Ok (Some inf) ->
                  Printf.printf "[t=%6.1fs] staged: %s on Dom%d\n" infect_at
                    inf.Mc_malware.Infect.technique (vm + 1)
              | Ok None -> ()
              | Error e -> prerr_endline ("infection failed: " ^ e) );
        ]
  in
  let config =
    {
      Modchecker.Patrol.default_config with
      Modchecker.Patrol.interval_s = interval;
      (* --merkle implies incremental: the prints live in the patrol's
         shared digest cache (Patrol.run creates it). *)
      incremental = incremental || merkle;
      check =
        make_check_config ~canonical ~quorum ?deadline ()
        |> Orchestrator.Config.with_merkle merkle;
    }
  in
  let o =
    if event_driven then
      Modchecker.Patrol.run_events ~config ~events cloud ~until:duration
    else Modchecker.Patrol.run ~config ~events cloud ~until:duration
  in
  Printf.printf
    "patrol finished: %d sweeps + %d reactions over %.1fs virtual, %.3fs \
     Dom0 CPU (%.3f%% duty), mean sweep %.1f ms\n"
    o.Modchecker.Patrol.sweeps o.Modchecker.Patrol.reactions
    o.Modchecker.Patrol.virtual_elapsed o.Modchecker.Patrol.cpu_spent
    (100.0 *. o.Modchecker.Patrol.cpu_spent
    /. o.Modchecker.Patrol.virtual_elapsed)
    (o.Modchecker.Patrol.mean_sweep_wall *. 1e3);
  (match List.sort compare o.Modchecker.Patrol.latencies_s with
  | [] -> ()
  | ls ->
      let n = List.length ls in
      Printf.printf
        "detection latency: median %.3fs, max %.3fs over %d alarm(s)\n"
        (List.nth ls (n / 2))
        (List.nth ls (n - 1))
        n);
  if o.Modchecker.Patrol.alarms = [] then print_endline "no alarms."
  else begin
    print_endline "alarm log:";
    List.iter
      (fun a ->
        Printf.printf "  [t=%6.1fs] %-25s %s on %s\n" a.Modchecker.Patrol.at
          (Modchecker.Patrol.alarm_kind_string a.Modchecker.Patrol.kind)
          a.Modchecker.Patrol.alarm_module
          (String.concat ","
             (List.map
                (fun v -> Printf.sprintf "Dom%d" (v + 1))
                a.Modchecker.Patrol.alarm_vms)))
      o.Modchecker.Patrol.alarms;
    exit Exit_code.infected
  end

let patrol_cmd =
  let doc = "Run the patrol service on the simulated cloud's clock." in
  let duration_arg =
    Arg.(value & opt float 300.0 & info [ "duration" ] ~docv:"SECONDS"
         ~doc:"Virtual seconds to patrol.")
  in
  let interval_arg =
    Arg.(value & opt float 30.0 & info [ "interval" ] ~docv:"SECONDS"
         ~doc:"Sweep interval.")
  in
  let infect_at_arg =
    Arg.(value & opt float 65.0 & info [ "infect-at" ] ~docv:"SECONDS"
         ~doc:"Virtual time at which to stage the --infect technique.")
  in
  let canonical_arg =
    Arg.(value & flag & info [ "canonical" ]
         ~doc:"Use the O(t) canonical survey strategy.")
  in
  let incremental_arg =
    Arg.(value & flag & info [ "incremental" ]
         ~doc:"Track dirty pages and re-check only what changed between \
               sweeps (log-dirty + digest cache).")
  in
  let event_driven_arg =
    Arg.(value & flag & info [ "event-driven" ]
         ~doc:"Replace polling with hypervisor write traps on the pages \
               backing the watched modules: a guest write triggers an \
               immediate targeted re-check (implies --incremental and \
               --merkle), with a slow full sweep as a safety net. \
               $(b,--interval) then sets the safety-sweep period's base \
               (20x).")
  in
  Cmd.v
    (Cmd.info "patrol" ~doc)
    Term.(
      const run_patrol $ verbose_arg $ vms_arg $ cores_arg $ seed_arg
      $ duration_arg $ interval_arg $ infect_arg $ vm_arg $ infect_at_arg
      $ canonical_arg $ incremental_arg $ merkle_arg $ event_driven_arg
      $ fault_spec_arg $ quorum_arg $ deadline_arg $ trace_arg $ metrics_arg)

(* --- evade --------------------------------------------------------------- *)

module Strategy = Mc_malware.Strategy

let run_evade verbose vms cores seed strategy vm victims module_name func
    start dwell period duration interval incremental merkle event_driven
    quorum deadline trace metrics =
  with_telemetry trace metrics @@ fun () ->
  setup_logs verbose;
  let cloud = make_cloud vms cores seed in
  let machine =
    or_die
      (match strategy with
      | Strategy.Toctou ->
          Strategy.toctou ~module_name ?func cloud ~vm ~start ~dwell ~period
      | Strategy.Pager -> Strategy.pager ~module_name ?func cloud ~vm ~start
      | Strategy.Race ->
          let vs =
            if victims <> [] then victims
            else List.init ((vms / 2) + 1) Fun.id
          in
          Strategy.race ~module_name ?func cloud ~vms:vs ~start
      | Strategy.Tamper ->
          Strategy.tamper ~module_name ?func cloud ~vm ~start)
  in
  Printf.printf
    "adversary: %s on %s, target %s:%s, start %.1fs, dwell %s, period %s\n"
    (Strategy.kind_key (Strategy.kind machine))
    (String.concat ","
       (List.map
          (fun v -> Printf.sprintf "Dom%d" (v + 1))
          (Strategy.vms machine)))
    (Strategy.target machine) (Strategy.func machine)
    (Strategy.start machine)
    (let d = Strategy.dwell machine in
     if d = infinity then "inf" else Printf.sprintf "%.1fs" d)
    (let p = Strategy.period machine in
     if p = infinity then "inf" else Printf.sprintf "%.1fs" p);
  let events = Strategy.events machine ~until:duration in
  let inc = incremental || merkle || event_driven in
  let config =
    {
      Modchecker.Patrol.default_config with
      Modchecker.Patrol.watch = [ module_name ];
      interval_s = interval;
      incremental = inc;
      (* The read-channel anchor audit is what catches the
         checker-tamperer; it rides on the incremental caches, so arm it
         whenever they exist. *)
      audit_anchors = inc;
      check =
        make_check_config ~merkle:(merkle || event_driven) ~quorum ?deadline
          ();
    }
  in
  let o =
    try
      if event_driven then
        Modchecker.Patrol.run_events ~config ~events cloud ~until:duration
      else Modchecker.Patrol.run ~config ~events cloud ~until:duration
    with Failure msg ->
      prerr_endline ("adversary mutation failed: " ^ msg);
      exit Exit_code.error
  in
  Printf.printf
    "patrol finished: %d sweeps + %d reactions over %.1fs virtual; \
     adversary performed %d infection(s), %d restore(s)%s\n"
    o.Modchecker.Patrol.sweeps o.Modchecker.Patrol.reactions
    o.Modchecker.Patrol.virtual_elapsed
    (Strategy.infections machine)
    (Strategy.restores machine)
    (if Strategy.masked machine then " (foreign-read shim still installed)"
     else "");
  (match
     Modchecker.Patrol.time_to_detect o ~module_name ~infected_at:start
   with
  | Some d -> Printf.printf "detected %.3fs after the first infection\n" d
  | None ->
      Printf.printf "EVADED: no integrity alarm named %s after t=%.1fs\n"
        module_name start);
  if o.Modchecker.Patrol.alarms = [] then print_endline "no alarms."
  else begin
    print_endline "alarm log:";
    List.iter
      (fun a ->
        Printf.printf "  [t=%6.1fs] %-25s %s on %s\n" a.Modchecker.Patrol.at
          (Modchecker.Patrol.alarm_kind_string a.Modchecker.Patrol.kind)
          a.Modchecker.Patrol.alarm_module
          (String.concat ","
             (List.map
                (fun v -> Printf.sprintf "Dom%d" (v + 1))
                a.Modchecker.Patrol.alarm_vms)))
      o.Modchecker.Patrol.alarms;
    exit Exit_code.infected
  end

let evade_cmd =
  let doc =
    "Launch an evasive adversary (TOCTOU restorer, pager, coordinated \
     racer, checker-tamperer) against the patrol and report whether it \
     was caught."
  in
  let strategy_arg =
    let strategies =
      Array.to_list
        (Array.map
           (fun k -> (Strategy.kind_key k, k))
           Strategy.all_kinds)
    in
    Arg.(
      value
      & opt (enum strategies) Strategy.Toctou
      & info [ "strategy" ] ~docv:"NAME"
          ~doc:"Adversary strategy: 'toctou' (infect, restore after \
                --dwell, re-infect every --period), 'pager' (hook, then \
                make the victim unmappable from Dom0), 'race' \
                (coordinated opcode patch on --victims to flip the \
                vote), or 'tamper' (foreign-read shim serving clean \
                bytes to the checker).")
  in
  let victims_arg =
    Arg.(value & opt int_list_conv [] & info [ "victims" ] ~docv:"I,I,..."
         ~doc:"VMs the coordinated racer patches (--strategy race); \
               defaults to the smallest strict majority 0,1,...")
  in
  let func_arg =
    Arg.(value & opt (some string) None & info [ "func" ] ~docv:"SYMBOL"
         ~doc:"Exported function to hook (default HalInitSystem).")
  in
  let start_arg =
    Arg.(value & opt float 65.0 & info [ "start" ] ~docv:"SECONDS"
         ~doc:"Virtual time of the first infection.")
  in
  let dwell_arg =
    Arg.(value & opt float 5.0 & info [ "dwell" ] ~docv:"SECONDS"
         ~doc:"TOCTOU dirty-window length before the clean bytes come \
               back.")
  in
  let period_arg =
    Arg.(value & opt float 60.0 & info [ "period" ] ~docv:"SECONDS"
         ~doc:"TOCTOU re-infection period ('inf' for one cycle).")
  in
  let duration_arg =
    Arg.(value & opt float 300.0 & info [ "duration" ] ~docv:"SECONDS"
         ~doc:"Virtual seconds to patrol.")
  in
  let interval_arg =
    Arg.(value & opt float 30.0 & info [ "interval" ] ~docv:"SECONDS"
         ~doc:"Sweep interval (a polling checker only catches a TOCTOU \
               restorer when a sweep lands inside a dirty window).")
  in
  let incremental_arg =
    Arg.(value & flag & info [ "incremental" ]
         ~doc:"Track dirty pages between sweeps; also arms the \
               read-channel anchor audit that catches the \
               checker-tamperer.")
  in
  let event_driven_arg =
    Arg.(value & flag & info [ "event-driven" ]
         ~doc:"Replace polling with hypervisor write traps: the TOCTOU \
               restorer's own restore write triggers the re-check \
               (implies --incremental and --merkle).")
  in
  Cmd.v
    (Cmd.info "evade" ~doc)
    Term.(
      const run_evade $ verbose_arg $ vms_arg $ cores_arg $ seed_arg
      $ strategy_arg $ vm_arg $ victims_arg $ module_arg $ func_arg
      $ start_arg $ dwell_arg $ period_arg $ duration_arg $ interval_arg
      $ incremental_arg $ merkle_arg $ event_driven_arg $ quorum_arg
      $ deadline_arg $ trace_arg $ metrics_arg)

(* --- serve ---------------------------------------------------------------- *)

module Wire = Mc_engine.Wire

let reply_line (reply : Wire.reply) =
  match reply with
  | Wire.Resp r -> (
      let key = Wire.frame_key r.Wire.rs_frame in
      match r.Wire.rs_body with
      | Wire.Report_body rep ->
          Printf.sprintf "%-28s %s" key (Report.verdict_string rep)
      | Wire.Error_body e -> Printf.sprintf "%-28s ERROR: %s" key e
      | Wire.Survey_body s ->
          Printf.sprintf "%-28s %s%s" key
            (Report.verdict_key s.Report.s_verdict)
            (match (s.Report.deviant_vms, s.Report.missing_on) with
            | [], [] -> ""
            | dev, miss ->
                Printf.sprintf " (deviant: %s; missing: %s)"
                  (String.concat "," (List.map string_of_int dev))
                  (String.concat "," (List.map string_of_int miss)))
      | Wire.Lists_body lc ->
          Printf.sprintf "%-28s %d discrepancy(ies)" key
            (List.length lc.Orchestrator.lc_discrepancies))
  | Wire.Busy { b_seq; b_retry_after_s; b_queue_bound } ->
      Printf.sprintf "#%d busy: retry after %.3fs (queue bound %d)" b_seq
        b_retry_after_s b_queue_bound
  | Wire.Draining { d_seq } -> Printf.sprintf "#%d draining" d_seq
  | Wire.Invalid { i_seq; i_error } ->
      Printf.sprintf "#%d invalid: %s" i_seq i_error

let run_serve verbose vms cores seed requests_path stream window ledger_path
    shards workers queue_bound infect vm fault_spec quorum merkle json trace
    metrics =
  with_telemetry trace metrics @@ fun () ->
  setup_logs verbose;
  let cloud = make_cloud ?fault_spec vms cores seed in
  (match or_die (stage_infection cloud vm infect) with
  | Some inf ->
      if not (json || stream) then
        Printf.printf "staged: %s on Dom%d\n" inf.Mc_malware.Infect.technique
          (vm + 1)
  | None -> ());
  let engine =
    (* The engine is always incremental (it substitutes its own shared
       cache), so --merkle only needs the flag. *)
    Mc_engine.create ~shards ~workers_per_shard:workers ~queue_bound
      ~config:
        (make_check_config ~quorum ()
        |> Orchestrator.Config.with_merkle merkle)
      cloud
  in
  let ledger_oc =
    Option.map
      (fun path ->
        try open_out path
        with Sys_error msg ->
          prerr_endline ("error: " ^ msg);
          exit Exit_code.error)
      ledger_path
  in
  let ledger =
    Option.map (fun oc -> Mc_ledger.create ~sink:(output_string oc) ()) ledger_oc
  in
  let with_input k =
    match requests_path with
    | None | Some "-" -> k stdin
    | Some path -> (
        match open_in path with
        | ic -> Fun.protect ~finally:(fun () -> close_in_noerr ic) (fun () -> k ic)
        | exception Sys_error msg ->
            prerr_endline ("error: " ^ msg);
            exit Exit_code.error)
  in
  with_input @@ fun ic ->
  let lineno = ref 0 in
  let next () =
    match input_line ic with
    | exception End_of_file -> None
    | l ->
        incr lineno;
        Some l
  in
  let started = Unix.gettimeofday () in
  let sv, stats =
    if stream then begin
      (* Streaming mode: one compact JSON reply per line, as it happens. *)
      let emit reply =
        print_endline (Mc_util.Json.to_string (Wire.reply_to_json reply))
      in
      let sv = Mc_engine.Serve.run ~window ?ledger ~emit engine ~next in
      (sv, Mc_engine.stats engine)
    end
    else begin
      (* Batch mode: the whole file goes in flight at once (an unbounded
         window — the engine's queue bound is the only backpressure, as
         before) and the ordered replies print at the end. *)
      let replies = ref [] in
      let emit reply =
        match reply with
        | Wire.Resp _ -> replies := reply :: !replies
        | Wire.Invalid { i_error; _ } ->
            prerr_endline
              (Printf.sprintf "error: line %d: %s" !lineno i_error);
            replies := reply :: !replies
        | Wire.Busy _ | Wire.Draining _ ->
            (* Retried internally; the stats line reports the volume. *)
            ()
      in
      let sv = Mc_engine.Serve.run ~window:max_int ?ledger ~emit engine ~next in
      let stats = Mc_engine.stats engine in
      let replies = List.rev !replies in
      if json then
        print_endline
          (Mc_util.Json.to_string_pretty
             (Mc_util.Json.List (List.map Wire.reply_to_json replies)))
      else begin
        List.iter
          (fun r ->
            match r with
            | Wire.Invalid _ -> ()
            | r -> print_endline (reply_line r))
          replies;
        Printf.printf
          "served %d request(s) in %.3fs real: %d coalesced, %d serviced, \
           %d busy, max queue depth %d\n"
          sv.Mc_engine.Serve.sv_requests
          (Unix.gettimeofday () -. started)
          stats.Mc_engine.st_coalesced stats.Mc_engine.st_completed
          sv.Mc_engine.Serve.sv_busy stats.Mc_engine.st_max_queue_depth
      end;
      (sv, stats)
    end
  in
  Mc_engine.drain engine;
  Option.iter close_out ledger_oc;
  if stream then
    Printf.eprintf
      "# served %d request(s) in %.3fs real: %d response(s), %d busy, %d \
       retr%s, %d invalid, %d coalesced, max in-flight %d\n%!"
      sv.Mc_engine.Serve.sv_requests
      (Unix.gettimeofday () -. started)
      sv.Mc_engine.Serve.sv_responses sv.Mc_engine.Serve.sv_busy
      sv.Mc_engine.Serve.sv_retries
      (if sv.Mc_engine.Serve.sv_retries = 1 then "y" else "ies")
      sv.Mc_engine.Serve.sv_invalid stats.Mc_engine.st_coalesced
      sv.Mc_engine.Serve.sv_max_inflight;
  (match (ledger, ledger_path) with
  | Some l, Some path ->
      let note =
        Printf.sprintf "ledger: %d entr%s -> %s, head %s" (Mc_ledger.length l)
          (if Mc_ledger.length l = 1 then "y" else "ies")
          path (Mc_ledger.head l)
      in
      if stream || json then Printf.eprintf "# %s\n%!" note
      else print_endline note
  | _ -> ());
  Exit_code.exit_with sv.Mc_engine.Serve.sv_exit

let serve_cmd =
  let doc =
    "Run check/survey/lists requests through the long-lived checking \
     engine (sharded workers, coalescing, shared caches) -- as a batch, \
     or as a streaming session with windowed backpressure."
  in
  let requests_arg =
    Arg.(
      value
      & opt (some string) None
      & info [ "requests" ] ~docv:"FILE"
          ~doc:
            "Request file: one request per line, \
             'kind vm module [priority]' with '-' for unused fields. \
             Kinds: check, survey, lists; priorities: high, normal \
             (default), low. '#' starts a comment. Omit (or pass '-') \
             to read from stdin.")
  in
  let stream_arg =
    Arg.(
      value & flag
      & info [ "stream" ]
          ~doc:
            "Streaming session: emit one JSON reply line per request as \
             it completes (JSONL, schema-tagged), with Busy/Draining/\
             Invalid answered on the wire; the summary goes to stderr. \
             Without it, replies are collected and printed as a batch.")
  in
  let window_arg =
    Arg.(
      value & opt int 32
      & info [ "window" ] ~docv:"N"
          ~doc:
            "Streaming backpressure window: at most N requests in \
             flight; the oldest settles before the next is admitted.")
  in
  let ledger_arg =
    Arg.(
      value
      & opt (some string) None
      & info [ "ledger" ] ~docv:"FILE"
          ~doc:
            "Append one hash-chained attestation entry per response to \
             FILE (verify offline with $(b,modchecker ledger verify)).")
  in
  let shards_arg =
    Arg.(value & opt int 2 & info [ "shards" ] ~docv:"N"
         ~doc:"Dispatcher shards, each with its own worker pool.")
  in
  let queue_bound_arg =
    Arg.(value & opt int 64 & info [ "queue-bound" ] ~docv:"N"
         ~doc:"Admission bound on queued requests (backpressure).")
  in
  Cmd.v
    (Cmd.info "serve" ~doc)
    Term.(
      const run_serve $ verbose_arg $ vms_arg $ cores_arg $ seed_arg
      $ requests_arg $ stream_arg $ window_arg $ ledger_arg $ shards_arg
      $ workers_arg $ queue_bound_arg $ infect_arg $ vm_arg $ fault_spec_arg
      $ quorum_arg $ merkle_arg $ json_arg $ trace_arg $ metrics_arg)

(* --- ledger -------------------------------------------------------------- *)

let run_ledger_verify path expect_head json =
  match Mc_ledger.verify_file ?expect_head path with
  | Ok s ->
      if json then
        print_endline
          (Mc_util.Json.to_string_pretty
             (Mc_util.Json.Obj
                [
                  ("entries", Mc_util.Json.Int s.Mc_ledger.sum_entries);
                  ("head", Mc_util.Json.String s.Mc_ledger.sum_head);
                  ( "verdicts",
                    Mc_util.Json.Obj
                      (List.map
                         (fun (k, n) -> (k, Mc_util.Json.Int n))
                         s.Mc_ledger.sum_verdicts) );
                  ("root_changes", Mc_util.Json.Int s.Mc_ledger.sum_root_changes);
                ]))
      else begin
        Printf.printf "ledger OK: %d entr%s, head %s\n"
          s.Mc_ledger.sum_entries
          (if s.Mc_ledger.sum_entries = 1 then "y" else "ies")
          s.Mc_ledger.sum_head;
        List.iter
          (fun (k, n) -> Printf.printf "  %-10s %d\n" k n)
          s.Mc_ledger.sum_verdicts;
        if s.Mc_ledger.sum_root_changes > 0 then
          Printf.printf "  root changes: %d\n" s.Mc_ledger.sum_root_changes
      end
  | Error e ->
      prerr_endline
        (Printf.sprintf "ledger verification FAILED at entry %d: %s"
           e.Mc_ledger.ve_index e.Mc_ledger.ve_reason);
      exit Exit_code.error

let ledger_cmd =
  let doc = "Attestation-ledger operations (offline audit)." in
  let file_arg =
    Arg.(
      required
      & pos 0 (some string) None
      & info [] ~docv:"FILE"
          ~doc:"Serialized ledger: one compact JSON entry per line.")
  in
  let expect_head_arg =
    Arg.(
      value
      & opt (some string) None
      & info [ "expect-head" ] ~docv:"HEX"
          ~doc:
            "Externally pinned head hash; a chain that verifies but ends \
             elsewhere (e.g. truncated) fails.")
  in
  let verify =
    let doc =
      "Re-derive the hash chain from genesis and report the first bad \
       entry, if any."
    in
    Cmd.v
      (Cmd.info "verify" ~doc)
      Term.(const run_ledger_verify $ file_arg $ expect_head_arg $ json_arg)
  in
  Cmd.group (Cmd.info "ledger" ~doc) [ verify ]

(* --- disasm --------------------------------------------------------------- *)

let run_disasm vms cores seed vm module_name func count =
  let cloud = make_cloud vms cores seed in
  let dom = Cloud.vm cloud vm in
  let vmi =
    Mc_vmi.Vmi.init dom
      (Mc_vmi.Symbols.of_variant
         (Mc_winkernel.Kernel.os_variant (Mc_hypervisor.Dom.kernel_exn dom)))
  in
  match Modchecker.Searcher.fetch vmi ~name:module_name with
  | None ->
      prerr_endline ("module not found: " ^ module_name);
      exit Exit_code.error
  | Some (info, buf) ->
      let rva =
        match func with
        | None -> (
            match Mc_pe.Read.parse ~layout:Memory buf with
            | Ok image -> image.optional_header.address_of_entry_point
            | Error _ -> 0x1000)
        | Some name -> (
            match
              List.assoc_opt name
                (Mc_pe.Catalog.symbols (Mc_pe.Catalog.image module_name))
            with
            | Some rva -> rva
            | None ->
                prerr_endline ("unknown function: " ^ name);
                exit Exit_code.error)
      in
      Printf.printf "%s!%s in Dom%d at 0x%08x:\n" module_name
        (Option.value ~default:"<entry>" func)
        (vm + 1)
        (info.Modchecker.Searcher.mi_base + rva);
      print_string
        (Mc_pe.Codegen.listing ~base:info.Modchecker.Searcher.mi_base buf
           ~start:rva ~count)

let disasm_cmd =
  let doc = "Disassemble a function of a guest's in-memory module over VMI." in
  let func_arg =
    Arg.(value & opt (some string) None
         & info [ "f"; "function" ] ~docv:"NAME"
             ~doc:"Function name (from the module's symbols); defaults to \
                   the entry point.")
  in
  let count_arg =
    Arg.(value & opt int 12 & info [ "n" ] ~docv:"COUNT"
         ~doc:"Instructions to decode.")
  in
  Cmd.v
    (Cmd.info "disasm" ~doc)
    Term.(
      const run_disasm $ vms_arg $ cores_arg $ seed_arg $ vm_arg $ module_arg
      $ func_arg $ count_arg)

(* --- simtest ------------------------------------------------------------- *)

let run_simtest verbose seed steps campaigns keep_going break_checker
    shrink_budget quorum federation require_coverage script transcript_out =
  setup_logs verbose;
  (* Thousands of deliberate infections later, per-alarm warnings are
     noise; the transcript and the oracle's verdict are the output. *)
  if not verbose then Logs.set_level (Some Logs.Error);
  let write_transcript t =
    match transcript_out with
    | None -> ()
    | Some path ->
        let oc = open_out path in
        output_string oc t;
        close_out oc
  in
  if federation then begin
    let r =
      Mc_simtest.Fedsim.run_campaigns ~keep_going ~shrink_budget ~seed
        ~steps ~campaigns ()
    in
    write_transcript r.Mc_simtest.Fedsim.fc_transcript;
    Printf.printf "%d federation campaign(s), %d sweep(s), %d failure(s)\n"
      r.Mc_simtest.Fedsim.fc_campaigns r.Mc_simtest.Fedsim.fc_sweeps
      (List.length r.Mc_simtest.Fedsim.fc_failures);
    List.iter
      (fun f -> print_endline (Mc_simtest.Fedsim.render_failure f))
      r.Mc_simtest.Fedsim.fc_failures;
    exit
      (if r.Mc_simtest.Fedsim.fc_failures = [] then Exit_code.ok
       else Exit_code.error)
  end;
  match script with
  | Some path ->
      (* Replay an explicit scenario (e.g. a shrunk failure) without the
         generator. *)
      let ic =
        try open_in path
        with Sys_error msg ->
          prerr_endline ("error: " ^ msg);
          exit Exit_code.error
      in
      let src = really_input_string ic (in_channel_length ic) in
      close_in ic;
      (match Mc_simtest.Event.scenario_of_script src with
      | Error e ->
          prerr_endline (Printf.sprintf "error: %s: %s" path e);
          exit Exit_code.error
      | Ok sc -> (
          let r = Mc_simtest.replay ~break_checker ?quorum sc in
          write_transcript r.Mc_simtest.Runner.r_transcript;
          match r.Mc_simtest.Runner.r_failure with
          | None ->
              Printf.printf "replay ok: %d events applied, %d skipped\n"
                r.Mc_simtest.Runner.r_applied r.Mc_simtest.Runner.r_skipped;
              exit Exit_code.ok
          | Some f ->
              Printf.printf "replay FAILED at step %d: %s\n"
                f.Mc_simtest.Runner.f_step f.Mc_simtest.Runner.f_reason;
              exit Exit_code.error))
  | None ->
      let required =
        match require_coverage with
        | None -> []
        | Some "all" -> Mc_simtest.Gen.weighted_classes
        | Some spec ->
            String.split_on_char ',' spec
            |> List.map String.trim
            |> List.filter (fun s -> s <> "")
      in
      let r =
        Mc_simtest.run_campaigns ~break_checker ~keep_going
          ~shrink_budget ?quorum ~require_coverage:required ~seed ~steps
          ~campaigns ()
      in
      write_transcript r.Mc_simtest.cr_transcript;
      Printf.printf
        "%d campaign(s), %d event(s) applied, %d skipped, %d failure(s)\n"
        r.Mc_simtest.cr_campaigns r.Mc_simtest.cr_applied
        r.Mc_simtest.cr_skipped
        (List.length r.Mc_simtest.cr_failures);
      if required <> [] then
        Printf.printf "coverage: %d/%d required class(es) fired\n"
          (List.length required - List.length r.Mc_simtest.cr_starved)
          (List.length required);
      if r.Mc_simtest.cr_starved <> [] then begin
        Printf.printf
          "STARVED generator class(es) — whole families went untested:\n";
        List.iter
          (fun k -> Printf.printf "  %s\n" k)
          r.Mc_simtest.cr_starved
      end;
      List.iter
        (fun cf -> print_string (Mc_simtest.render_failure cf))
        r.Mc_simtest.cr_failures;
      exit
        (if r.Mc_simtest.cr_failures = [] && r.Mc_simtest.cr_starved = []
         then Exit_code.ok
         else Exit_code.error)

let simtest_cmd =
  let doc =
    "Deterministic whole-system simulation testing: random scenarios \
     validated step-by-step against a ground-truth oracle."
  in
  let steps_arg =
    Arg.(value & opt int 50 & info [ "steps" ] ~docv:"K"
         ~doc:"Events per generated scenario.")
  in
  let campaigns_arg =
    Arg.(value & opt int 1 & info [ "campaign" ] ~docv:"M"
         ~doc:"Campaigns to run; campaign $(i,i) uses seed + $(i,i).")
  in
  let keep_going_arg =
    Arg.(value & flag & info [ "keep-going"; "soak" ]
         ~doc:"Soak mode: keep running after a failure instead of \
               stopping at the first one.")
  in
  let break_checker_arg =
    Arg.(value & flag & info [ "break-checker" ]
         ~doc:"Self-test: flip one byte of a cached digest mid-campaign; \
               the oracle must catch the now-lying checker.")
  in
  let shrink_budget_arg =
    Arg.(value & opt int 300 & info [ "shrink-budget" ] ~docv:"N"
         ~doc:"Candidate runs the shrinker may spend per failure \
               (0 disables shrinking).")
  in
  let sim_quorum_arg =
    Arg.(value & opt (some float) None & info [ "quorum" ] ~docv:"FRACTION"
         ~doc:"Override the orchestrator quorum under test.")
  in
  let script_arg =
    Arg.(value & opt (some string) None & info [ "script" ] ~docv:"FILE"
         ~doc:"Replay an explicit scenario script instead of generating \
               one (the shrinker prints failures in this format).")
  in
  let transcript_arg =
    Arg.(value & opt (some string) None & info [ "transcript" ] ~docv:"FILE"
         ~doc:"Write the deterministic run transcript to $(docv); two \
               runs with the same arguments produce identical files.")
  in
  let federation_arg =
    Arg.(value & flag & info [ "federation" ]
         ~doc:"Run federation campaigns instead: host outages, \
               coordinated whole-host infections, and version skew \
               against the fleet-level oracle (Fedsim).")
  in
  let require_coverage_arg =
    Arg.(value & opt (some string) None & info [ "require-coverage" ]
         ~docv:"CLASSES"
         ~doc:"Fail (exit 1) unless every named coverage class fired at \
               least once across the soak: 'all' for the generator's \
               whole universe, or a comma-separated list (e.g. \
               'evade.toctou,infect.hook'). A passing soak with a \
               starved generator proves nothing about the starved \
               family.")
  in
  Cmd.v
    (Cmd.info "simtest" ~doc)
    Term.(
      const run_simtest $ verbose_arg $ seed_arg $ steps_arg $ campaigns_arg
      $ keep_going_arg $ break_checker_arg $ shrink_budget_arg
      $ sim_quorum_arg $ federation_arg $ require_coverage_arg $ script_arg
      $ transcript_arg)

(* --- main --------------------------------------------------------------- *)

let () =
  let doc =
    "kernel module integrity checking across a pool of identical VMs \
     (reproduction of ModChecker, ICPP 2012)"
  in
  let info = Cmd.info "modchecker" ~version:"1.0.0" ~doc in
  exit
    (Cmd.eval
       (Cmd.group info
          [
            check_cmd; survey_cmd; list_cmd; detect_cmd; figures_cmd;
            patrol_cmd; evade_cmd; health_cmd; federate_cmd; serve_cmd;
            ledger_cmd; disasm_cmd; simtest_cmd;
          ]))
